GO ?= go

.PHONY: build test race vet bench check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The scanner and resolver are deliberately concurrent (worker pool ×
# per-domain fan-out × singleflight); the race detector is part of the
# tier-1 verify, not an optional extra.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) run ./cmd/benchreport -bench . -benchtime 1s

# check is the tier-1 verify: everything a PR must keep green.
check: build vet test race
