GO ?= go
FUZZTIME ?= 10s

.PHONY: build test race vet lint bench bench-pdns bench-wire bench-serve bench-stream bench-monitor bench-udp chaos fuzz monitor-smoke check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The scanner and resolver are deliberately concurrent (worker pool ×
# per-domain fan-out × singleflight); the race detector is part of the
# tier-1 verify, not an optional extra.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# lint runs the repo's custom vet pass: tracecheck verifies that every
# trace span started in the resolver, measure, and monitor packages is
# ended on all paths out of the region that started it (see
# internal/tools/tracecheck for the analysis and its limits).
lint:
	$(GO) run ./internal/tools/tracecheck ./internal/resolver ./internal/measure ./internal/monitor

# bench runs the scan-pipeline benchmarks (including the
# parallel-metrics sub-benchmark, which repeats the parallel
# configuration with a live metrics registry — compare the two ns/op
# figures for the instrumentation overhead; the acceptance bar is
# < 3%) and emits a BENCH_<host>.json report with an embedded metrics
# snapshot from an instrumented reference scan.
bench:
	$(GO) run ./cmd/benchreport -bench . -benchtime 1s

# bench-pdns runs the passive-analysis figure/table benchmarks — the
# corpus fast paths alongside the retained view-based reference slow
# paths (BenchmarkFig2PDNSGrowthReference and friends) and the one-time
# BenchmarkCorpusCompile — and emits BENCH_2.json as the before/after
# evidence for the columnar analysis engine, plus the pdns dump-load
# micro-bench. The scan-pipeline overhead gates live in `make bench`
# and are deliberately untouched here.
bench-pdns:
	$(GO) run ./cmd/benchreport -bench 'Fig|Table|Corpus' -benchtime 1s -benchout BENCH_2.json
	$(GO) test -run '^$$' -bench ReadJSONL -benchmem ./internal/pdns

# bench-wire runs the zero-alloc wire-path benchmarks and emits
# BENCH_3.json as the before/after evidence for the pooled codec:
# BenchmarkExchange / BenchmarkDecodeReferral / BenchmarkEncodeResponse
# run the arena path (all must report 0 allocs/op — the hard gate is
# TestWirePathZeroAlloc in internal/dnswire, run by `make test`); the
# *Owned variants and BenchmarkWireEncodeDecode are the allocating
# compatibility path for comparison.
bench-wire:
	$(GO) run ./cmd/benchreport -bench 'Exchange|DecodeReferral|EncodeResponse|WireEncodeDecode' -benchtime 1s -benchout BENCH_3.json

# bench-serve runs the authoritative serving-tier benchmarks and emits
# BENCH_4.json: the repeated-query workload over the in-memory wire path
# and a real loopback UDP socket, each with the response cache on and
# off. The acceptance bar is cache-on ≥ 2x cache-off on the in-memory
# pair with 0 allocs/op on the cached path (hard-gated by
# TestServeCachedZeroAlloc in internal/authserver); the UDP pair records
# the syscall-dominated absolute numbers.
bench-serve:
	$(GO) run ./cmd/benchreport -bench 'ServeInMemory|ServeUDP' -benchtime 1s -benchout BENCH_4.json

# bench-stream compares the streaming scan path against the slice
# reference at a raised scale tier (Scale=0.05 vs the pipeline bench's
# 0.02): identical measurement and serialization work, but the slice
# side retains every result until the final WriteJSONL while the stream
# side holds only the bounded reorder window. BENCH_5.json records
# throughput parity (acceptance: stream within 5% of slice) and the
# retained-bytes/op collapse.
bench-stream:
	$(GO) run ./cmd/benchreport -bench ScanStream -benchtime 2x -benchout BENCH_5.json

# bench-monitor pins the monitoring daemon's per-epoch overhead and
# emits BENCH_6.json with three rungs over the same worldgen population:
# "bare" is the raw checkpointed streaming scan, "traced" adds the
# flight recorder the daemon mandates (the pre-existing span-recording
# cost), and "monitor" is a full Monitor.RunEpoch (per-result diffing
# against the previous epoch, alert-log flushes on every checkpoint,
# atomic state/trace writes at epoch end). The acceptance bar is
# monitor within 3% of traced ns/op — the monitor layer's own machinery
# must be invisible next to measurement latency; the bare/traced gap
# keeps the recording cost visible instead of hidden in the comparator.
bench-monitor:
	$(GO) run ./cmd/benchreport -bench MonitorEpoch -benchtime 10x -benchout BENCH_6.json

# bench-udp races the two real-network transports at matched
# concurrency over the same loopback serving pool and emits
# BENCH_7.json: one dialed socket per exchange (the portable reference
# path, govscan -transport=dial) against udpx.BatchTransport's shared
# sockets, sendmmsg/recvmmsg batches, and QID demultiplexing (the
# default). The acceptance bar is batch ≥ 3x dial qps at 0 allocs/op
# on the batch side (hard-gated by TestBatchExchangeZeroAlloc in
# internal/udpx, run by `make test`); the reported syscalls/query and
# dgrams/recvbatch metrics come from the transport's own udpx_*
# counters. The digest differential pinning batch == dial bit-identical
# lives in internal/measure (TestScanDigestBatchVsDial, run by `make
# test` and `make race`).
bench-udp:
	$(GO) run ./cmd/benchreport -bench 'TransportDialUDP|TransportBatchUDP' -benchtime 3s -benchout BENCH_7.json

# monitor-smoke is the end-to-end daemon drill: two epochs over the
# miniworld with an NS hijack injected between them must produce exactly
# one alert — critical, hijack-pattern, for the hijacked domain — with a
# complete retained span tree in the epoch's trace archive. Part of the
# tier-1 gate.
monitor-smoke:
	$(GO) test -race -run TestMonitorSmoke -count=1 ./internal/monitor

# chaos is the focused fault-injection view of the tier-1 gate: the
# chaos package tests plus the scan-invariance differential harness
# (digest invariance across schedule shapes, per-fault-class transient
# recovery, graceful degradation) under the race detector. `make race`
# already runs all of this — the target exists for fast iteration on
# the resolver/chaos stack.
chaos:
	$(GO) test -race ./internal/chaos
	$(GO) test -race -run 'Chaos|Invariance' ./internal/measure ./internal/resolver

# fuzz gives each wire-level fuzz target a short budget; raise FUZZTIME
# for a real session.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzDecode -fuzztime $(FUZZTIME) ./internal/dnswire
	$(GO) test -run '^$$' -fuzz FuzzEncodeNames -fuzztime $(FUZZTIME) ./internal/dnswire
	$(GO) test -run '^$$' -fuzz FuzzMessageRoundTrip -fuzztime $(FUZZTIME) ./internal/dnswire
	$(GO) test -run '^$$' -fuzz FuzzTCPFraming -fuzztime $(FUZZTIME) ./internal/authserver
	$(GO) test -run '^$$' -fuzz FuzzCheckpointReader -fuzztime $(FUZZTIME) ./internal/measure

# check is the tier-1 verify: everything a PR must keep green. The
# race target runs the whole tree — including the chaos and invariance
# suites and the internal/obs concurrency tests (histogram and counter
# hot paths are lock-free; the race detector is what keeps them honest)
# — under the race detector.
check: build vet lint test race monitor-smoke
