// Command govdns runs the full reproduction study end to end and prints
// every table and figure of the paper with measured-vs-paper context.
//
// Usage:
//
//	govdns [-scale 0.1] [-seed 42] [-concurrency 64] [-timeout 25ms]
//	       [-no-second-round] [-stability-days 7]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"govdns"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "govdns: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	scale := flag.Float64("scale", 0.1, "population scale (1.0 = paper size, ~190k PDNS domains)")
	seed := flag.Int64("seed", 42, "generation seed")
	concurrency := flag.Int("concurrency", 128, "scan worker count")
	timeout := flag.Duration("timeout", 25*time.Millisecond, "per-query timeout")
	noSecondRound := flag.Bool("no-second-round", false, "disable the second measurement round")
	stabilityDays := flag.Int("stability-days", 7, "PDNS stability filter in days (negative disables)")
	flag.Parse()

	start := time.Now()
	fmt.Fprintf(os.Stderr, "generating world (scale %.3f, seed %d)...\n", *scale, *seed)
	study := govdns.New(govdns.Options{
		Seed:               *seed,
		Scale:              *scale,
		Concurrency:        *concurrency,
		QueryTimeout:       *timeout,
		DisableSecondRound: *noSecondRound,
		StabilityDays:      *stabilityDays,
	})
	fmt.Fprintf(os.Stderr, "world ready in %v: %d domain histories, %d PDNS record sets, %d query targets\n",
		time.Since(start).Round(time.Millisecond),
		len(study.World.Domains), study.World.PDNS.Len(), len(study.Active.QueryList))

	scanStart := time.Now()
	fmt.Fprintf(os.Stderr, "scanning %d domains...\n", len(study.Active.QueryList))
	if err := study.RunActive(context.Background()); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "scan finished in %v\n\n", time.Since(scanStart).Round(time.Millisecond))

	return study.WriteReport(os.Stdout)
}
