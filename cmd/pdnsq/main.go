// Command pdnsq queries a passive-DNS dump (pdns.jsonl, as written by
// cmd/worldgen) the way the study queried Farsight's DNSDB: left-hand
// wildcard searches with optional type, year and stability filters, plus
// a per-year counting mode.
//
// Examples:
//
//	pdnsq -db data/pdns.jsonl -search '*.gov.br' -type NS -year 2015
//	pdnsq -db data/pdns.jsonl -search '*.gov.cn' -counts
//	pdnsq -db data/pdns.jsonl -search 'minfin.gov.ua' -stable=false
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"govdns/internal/analysis"
	"govdns/internal/dnsname"
	"govdns/internal/dnswire"
	"govdns/internal/pdns"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "pdnsq: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	dbPath := flag.String("db", "", "pdns.jsonl dump (required)")
	search := flag.String("search", "", "name or left-hand wildcard ('*.gov.br') to search (required)")
	typeStr := flag.String("type", "", "record type filter (NS, A, ...)")
	year := flag.Int("year", 0, "only records active in this year")
	stable := flag.Bool("stable", true, "apply the 7-day stability filter")
	counts := flag.Bool("counts", false, "print per-year distinct-name counts instead of records")
	limit := flag.Int("limit", 50, "maximum records to print (0 = all)")
	flag.Parse()

	if *dbPath == "" || *search == "" {
		flag.Usage()
		return fmt.Errorf("-db and -search are required")
	}

	f, err := os.Open(*dbPath)
	if err != nil {
		return err
	}
	store, err := pdns.ReadJSONL(f)
	closeErr := f.Close()
	if err != nil {
		return fmt.Errorf("loading %s: %w", *dbPath, err)
	}
	if closeErr != nil {
		return closeErr
	}

	var rtype dnswire.Type
	if *typeStr != "" {
		t, ok := dnswire.ParseType(strings.ToUpper(*typeStr))
		if !ok {
			return fmt.Errorf("unknown record type %q", *typeStr)
		}
		rtype = t
	}

	// Wildcard vs exact search, DNSDB-style.
	var sets []pdns.RecordSet
	if suffix, ok := strings.CutPrefix(*search, "*."); ok {
		name, err := dnsname.Parse(suffix)
		if err != nil {
			return fmt.Errorf("bad search suffix: %w", err)
		}
		sets = store.WildcardSearch(name, rtype)
	} else {
		name, err := dnsname.Parse(*search)
		if err != nil {
			return fmt.Errorf("bad search name: %w", err)
		}
		sets = store.Lookup(name, rtype)
	}

	view := pdns.NewView(sets)
	if *stable {
		view = view.Stable(pdns.StabilityFilterDays)
	}
	if *year != 0 {
		from, to := pdns.YearRange(*year)
		view = view.Between(from, to)
	}

	if *counts {
		return printCounts(view)
	}
	printed := 0
	for _, rs := range view.Sets {
		if *limit > 0 && printed >= *limit {
			fmt.Printf("... %d more (raise -limit)\n", len(view.Sets)-printed)
			break
		}
		printed++
		fmt.Printf("%s  %s  %-40s %s .. %s  (count %d)\n",
			rs.RRName, rs.RRType, rs.RData, rs.FirstSeen, rs.LastSeen, rs.Count)
	}
	fmt.Fprintf(os.Stderr, "%d record sets matched\n", len(view.Sets))
	return nil
}

// printCounts emits distinct-name counts per year over the view's whole
// span. The view is compiled once into a columnar corpus whose per-year
// activity bitmaps answer every year at once, instead of re-filtering
// and re-sorting the whole view per year.
func printCounts(view *pdns.View) error {
	if len(view.Sets) == 0 {
		fmt.Println("no matches")
		return nil
	}
	minYear, maxYear := view.Sets[0].FirstSeen.Year(), view.Sets[0].LastSeen.Year()
	for _, rs := range view.Sets {
		if y := rs.FirstSeen.Year(); y < minYear {
			minYear = y
		}
		if y := rs.LastSeen.Year(); y > maxYear {
			maxYear = y
		}
	}
	c := analysis.CompileCorpus(view, nil, minYear, maxYear)
	for i, n := range c.ActiveNamesPerYear() {
		fmt.Printf("%d  %d names\n", minYear+i, n)
	}
	return nil
}
