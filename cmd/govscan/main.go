// Command govscan is the standalone bulk delegation scanner — the
// zdns-style tool the study's pipeline is built on. It reads a domain
// list, runs the Fig. 1 measurement for each (parent discovery, per-
// server NS queries, second round), and writes one JSON result per line.
//
// Two backends:
//
//	-sim        scan the synthetic world (default; domain list optional —
//	            the world's own query list is used when no list is given)
//	-real       scan the actual Internet over UDP from the real root
//	            servers (requires network access; be mindful of rate)
//
// Examples:
//
//	govscan -sim -scale 0.02 -out scan.jsonl
//	govscan -sim -chaos persistent:0.05 -stats -out chaotic.jsonl
//	govscan -real -domains domains.txt -concurrency 16 -timeout 2s
//	govscan -summarize scan.jsonl
//
// With -checkpoint the scan streams: results are emitted to -out in
// input order as workers finish (bounded memory, no in-RAM result
// slice), and a crash-safe checkpoint is written periodically. A killed
// scan restarted with -resume continues at the checkpoint and produces
// output — and a canonical digest — bit-identical to an uninterrupted
// run:
//
//	govscan -sim -scale 1.0 -out scan.jsonl -checkpoint scan.ckpt
//	govscan -sim -scale 1.0 -out scan.jsonl -checkpoint scan.ckpt -resume
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/netip"
	"os"
	"os/signal"
	"syscall"
	"time"

	"govdns/internal/authserver"
	"govdns/internal/chaos"
	"govdns/internal/dnsname"
	"govdns/internal/dnswire"
	"govdns/internal/measure"
	"govdns/internal/obs"
	"govdns/internal/resolver"
	"govdns/internal/stats"
	"govdns/internal/trace"
	"govdns/internal/udpx"
	"govdns/internal/worldgen"
)

// realRoots are the IPv4 addresses of the root servers (a–m), the
// starting hints for -real mode.
var realRoots = []string{
	"198.41.0.4", "170.247.170.2", "192.33.4.12", "199.7.91.13",
	"192.203.230.10", "192.5.5.241", "192.112.36.4", "198.97.190.53",
	"192.36.148.17", "192.58.128.30", "193.0.14.129", "199.7.83.42",
	"202.12.27.33",
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "govscan: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	sim := flag.Bool("sim", true, "scan the synthetic world")
	real := flag.Bool("real", false, "scan the live Internet over UDP (overrides -sim)")
	domainsPath := flag.String("domains", "", "file with one domain per line")
	out := flag.String("out", "", "output JSONL path (default stdout)")
	scale := flag.Float64("scale", 0.02, "synthetic world scale (-sim)")
	seed := flag.Int64("seed", 42, "synthetic world seed (-sim)")
	concurrency := flag.Int("concurrency", measure.DefaultConcurrency, "concurrent domains")
	fanout := flag.Int("fanout", measure.DefaultPerDomainParallelism,
		"per-domain parallelism: concurrent NS-host resolutions and per-address probes within one domain (1 = serial)")
	showStats := flag.Bool("stats", false, "print resolver cache/coalescing statistics after the scan")
	timeout := flag.Duration("timeout", 0, "per-query timeout (default 25ms sim, 2s real)")
	transportKind := flag.String("transport", "batch",
		"real-network UDP transport: batch (shared socket pool, sendmmsg/recvmmsg-style batching, QID demux) or dial (one socket per query; the slow portable reference path)")
	qps := flag.Float64("qps", 0, "global query rate limit (0 = unlimited; recommended for -real)")
	chaosSpec := flag.String("chaos", "",
		"fault-injection profile: off, transient, persistent[:prob], flap[:len], or one class drop|delay|dup|truncate|qid|question|mangle|rcode[:prob]; seeded by -seed")
	metricsAddr := flag.String("metrics", "",
		"serve a metrics snapshot (JSON) and pprof on this address, e.g. :9090")
	progressEvery := flag.Duration("progress", 0,
		"print periodic scan progress (domains done/total, qps, error rates, ETA) at this interval; 0 disables")
	tracePath := flag.String("trace", "",
		"record per-domain resolution traces and write retained exemplars (slowest, Error/Transient, classification flips) as JSONL to this path; render with govtrace")
	traceSlowest := flag.Int("trace-slowest", 0,
		"with -trace: how many slowest-domain exemplars to retain (default 16)")
	traceErrors := flag.Int("trace-errors", 0,
		"with -trace: ring-buffer bound on Error/Transient exemplars (default 512)")
	summarize := flag.String("summarize", "", "summarize an existing JSONL scan and exit")
	checkpointPath := flag.String("checkpoint", "",
		"stream results to -out with periodic crash-safe checkpoints at this path; a killed scan restarted with -resume continues where it left off")
	resume := flag.Bool("resume", false,
		"with -checkpoint: resume an interrupted streaming scan, validating the checkpoint and extending -out in place")
	checkpointEvery := flag.Int("checkpoint-every", 0,
		"with -checkpoint: results between checkpoint records (default 256)")
	flag.Parse()

	if *summarize != "" {
		return summarizeFile(*summarize)
	}

	streaming := *checkpointPath != ""
	if streaming && *out == "" {
		return fmt.Errorf("-checkpoint requires -out (a resumable scan needs a seekable output file)")
	}
	if *resume && !streaming {
		return fmt.Errorf("-resume requires -checkpoint")
	}

	var transport resolver.Transport
	var roots []netip.Addr
	var domains []dnsname.Name
	var world *worldgen.World
	var err error

	var batchTr *udpx.BatchTransport
	switch {
	case *real:
		if *timeout == 0 {
			*timeout = 2 * time.Second
		}
		switch *transportKind {
		case "batch":
			batchTr, err = udpx.New(udpx.Config{Timeout: *timeout})
			if err != nil {
				return fmt.Errorf("batch transport: %w", err)
			}
			defer func() { _ = batchTr.Close() }()
			transport = batchTr
		case "dial":
			transport = &authserver.UDPTransport{}
		default:
			return fmt.Errorf("-transport must be batch or dial, not %q", *transportKind)
		}
		for _, s := range realRoots {
			roots = append(roots, netip.MustParseAddr(s))
		}
		if *domainsPath == "" {
			return fmt.Errorf("-real requires -domains")
		}
	case *sim:
		world = worldgen.Generate(worldgen.Config{Seed: *seed, Scale: *scale})
		active := worldgen.Build(world)
		transport = active.Net
		roots = active.Roots
		if *timeout == 0 {
			*timeout = 25 * time.Millisecond
		}
		if *domainsPath == "" && !streaming {
			domains = active.QueryList
		}
	default:
		return fmt.Errorf("pick -sim or -real")
	}

	// The streaming path pulls domains from an iterator (the worldgen
	// query stream, or the list file read line by line) so the input is
	// never materialized as one slice; the batch path keeps its slice.
	var src measure.DomainSource
	srcTotal := 0
	var srcErr func() error
	switch {
	case *domainsPath != "" && streaming:
		fs, err := openFileSource(*domainsPath)
		if err != nil {
			return err
		}
		defer fs.Close()
		src, srcErr = fs.Next, fs.Err
	case *domainsPath != "":
		domains, err = readDomains(*domainsPath)
		if err != nil {
			return err
		}
	case streaming:
		qs := worldgen.NewQueryStream(world)
		src, srcTotal = qs.Next, qs.Len()
	}
	if !streaming && len(domains) == 0 {
		return fmt.Errorf("no domains to scan")
	}

	if *real && *qps == 0 {
		*qps = 50 // § III-D courtesy: never hammer live infrastructure
	}
	// Chaos wraps the raw transport and the rate limiter wraps chaos, so
	// injected duplicates and delays still count against the query budget
	// the way real wire pathologies would.
	var chaosTr *chaos.Transport
	if rules, err := chaos.ParseProfile(*chaosSpec); err != nil {
		return err
	} else if rules != nil {
		chaosTr = chaos.Wrap(transport, *seed, rules...)
		transport = chaosTr
	}
	transport = resolver.RateLimit(transport, *qps, 10)

	// One registry for the whole pipeline: resolver, chaos, and scanner
	// instruments all land on it, so the HTTP snapshot and the progress
	// reporter see a coherent picture. Attach order matters twice over:
	// the chaos transport binds its counters on first use, and the
	// iterator binds its handles from the client at construction — so
	// both attachments happen before NewIterator and before any query.
	reg := obs.NewRegistry()
	if chaosTr != nil {
		chaosTr.AttachRegistry(reg)
	}
	if batchTr != nil {
		// udpx_* batching/demux counters land next to the resolver's on
		// the shared registry (first-wins, before the first exchange).
		batchTr.AttachRegistry(reg)
	}
	client := resolver.NewClient(transport)
	client.Timeout = *timeout
	// The process has exactly one registry, so binding the shared codec
	// arena pool here is safe under AttachRegistry's first-wins rule and
	// puts dnswire_arena_* checkout/recycle/discard counters on /metrics.
	client.WirePool = dnswire.DefaultPool
	client.SetMetrics(resolver.NewMetrics(reg))
	it := resolver.NewIterator(client, roots)
	scanner := measure.NewScanner(it)
	scanner.Concurrency = *concurrency
	if *fanout <= 0 {
		*fanout = measure.DefaultPerDomainParallelism
	}
	scanner.PerDomainParallelism = *fanout
	scanner.Metrics = measure.NewScanMetrics(reg)
	var flight *trace.FlightRecorder
	if *tracePath != "" {
		flight = trace.NewFlightRecorder(trace.Config{Slowest: *traceSlowest, Errors: *traceErrors})
		flight.AttachRegistry(reg)
		scanner.Trace = flight
	}

	if *metricsAddr != "" {
		// Readiness means "the scan is underway": world built, transports
		// wired, workers about to start. Liveness is process-up.
		health := obs.NewHealth()
		health.SetReady(true)
		go func() {
			srv := &http.Server{Addr: *metricsAddr, Handler: obs.HandlerWith(reg, health)}
			fmt.Fprintf(os.Stderr, "metrics on http://%s/metrics /healthz /readyz (pprof under /debug/pprof/)\n", *metricsAddr)
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "govscan: metrics server: %v\n", err)
			}
		}()
	}

	if streaming {
		fmt.Fprintf(os.Stderr, "streaming scan (timeout %v, concurrency %d, fanout %d) -> %s [checkpoint %s]\n",
			*timeout, *concurrency, *fanout, *out, *checkpointPath)
	} else {
		fmt.Fprintf(os.Stderr, "scanning %d domains (timeout %v, concurrency %d, fanout %d)\n",
			len(domains), *timeout, *concurrency, *fanout)
	}
	ctx := context.Background()
	if streaming {
		// A streaming scan is built to be killed: an interrupt cancels
		// the scan cleanly so Finish writes a final checkpoint covering
		// the emitted prefix (a hard kill loses at most the window since
		// the last periodic checkpoint).
		sctx, stopSignals := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
		defer stopSignals()
		ctx = sctx
	}
	if *progressEvery > 0 {
		progressCtx, stopProgress := context.WithCancel(context.Background())
		defer stopProgress()
		rep := &measure.ProgressReporter{Metrics: scanner.Metrics, Interval: *progressEvery, W: os.Stderr}
		go rep.Run(progressCtx)
	}
	start := time.Now()
	var results []*measure.DomainResult
	if streaming {
		// The scan key names this scan's identity; a checkpoint from a
		// different world, domain list, or chaos profile must refuse to
		// extend this output.
		scanKey := fmt.Sprintf("domains=%s chaos=%s", *domainsPath, *chaosSpec)
		if *domainsPath == "" {
			scanKey = fmt.Sprintf("sim seed=%d scale=%g chaos=%s", *seed, *scale, *chaosSpec)
		}
		cfg := measure.StreamConfig{
			CheckpointPath:  *checkpointPath,
			CheckpointEvery: *checkpointEvery,
			ScanKey:         scanKey,
			Metrics:         scanner.Metrics,
		}
		scanner.Metrics.SetTotal(srcTotal)
		if err := runStream(ctx, scanner, src, cfg, *out, *resume); err != nil {
			return err
		}
		if srcErr != nil {
			if err := srcErr(); err != nil {
				return err
			}
		}
	} else {
		results = scanner.Scan(ctx, domains)
	}
	fmt.Fprintf(os.Stderr, "done in %v\n", time.Since(start).Round(time.Millisecond))
	if *showStats {
		st := it.Stats()
		fmt.Fprintf(os.Stderr,
			"resolver: sent=%d received=%d timeouts=%d; host cache %d hit / %d miss; zone cache %d hit / %d miss; negative hits=%d; coalesced=%d; flight bypasses=%d\n",
			st.Sent, st.Received, st.Timeouts,
			st.HostCacheHits, st.HostCacheMisses,
			st.ZoneCacheHits, st.ZoneCacheMisses,
			st.NegativeHits, st.CoalescedWaits, st.FlightBypasses)
		cs := client.Stats()
		if cs.Mismatches+cs.Truncations+cs.Malformed > 0 {
			fmt.Fprintf(os.Stderr,
				"faults survived: duplicates=%d truncations=%d qid-mismatches=%d question-mismatches=%d malformed=%d\n",
				cs.Duplicates, cs.Truncations, cs.QIDMismatches, cs.QuestionMismatches, cs.Malformed)
		}
		if chaosTr != nil {
			fmt.Fprintf(os.Stderr, "chaos: %s\n", chaosTr.Stats())
		}
	}

	if flight != nil {
		tf, err := os.Create(*tracePath)
		if err != nil {
			return err
		}
		werr := flight.WriteJSONL(tf)
		if cerr := tf.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return fmt.Errorf("writing traces: %w", werr)
		}
		slow, errsN, flipped, offered := flight.Counts()
		fmt.Fprintf(os.Stderr, "traces: %d offered; retained %d slowest, %d error/transient, %d class-flips -> %s\n",
			offered, slow, errsN, flipped, *tracePath)
	}

	if streaming {
		// The results went to -out as they completed; nothing is held in
		// memory to summarize. `govscan -summarize <out>` reads it back.
		return nil
	}
	dest := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := f.Close(); cerr != nil {
				fmt.Fprintf(os.Stderr, "govscan: closing output: %v\n", cerr)
			}
		}()
		dest = f
	}
	if err := measure.WriteJSONL(dest, results); err != nil {
		return err
	}
	printSummary(results)
	return nil
}

// runStream executes the streaming scan against a fresh or resumed
// StreamWriter and reports the emitted count and canonical digest. A
// cancelled scan (interrupt) is not an error: the checkpoint makes it
// resumable, and saying so beats a stack trace.
func runStream(ctx context.Context, scanner *measure.Scanner, src measure.DomainSource, cfg measure.StreamConfig, outPath string, resume bool) error {
	if resume {
		// Resuming before the first checkpoint ever landed is a fresh
		// start — unless output already exists, which would be silently
		// clobbered; make that case explicit.
		if _, err := os.Stat(cfg.CheckpointPath); errors.Is(err, os.ErrNotExist) {
			if _, oerr := os.Stat(outPath); oerr == nil {
				return fmt.Errorf("-resume: no checkpoint at %s but %s exists; remove it or drop -resume", cfg.CheckpointPath, outPath)
			}
			resume = false
		}
	}
	var sw *measure.StreamWriter
	if resume {
		var info measure.ResumeInfo
		var err error
		sw, info, err = measure.ResumeStream(outPath, cfg)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "resuming: %d results already on disk (%d salvaged past the checkpoint, %d torn bytes dropped)\n",
			info.Emitted, info.Salvaged, info.DroppedBytes)
	} else {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := f.Close(); cerr != nil {
				fmt.Fprintf(os.Stderr, "govscan: closing output: %v\n", cerr)
			}
		}()
		sw = measure.NewStreamWriter(f, cfg)
	}
	defer func() { _ = sw.Close() }()
	err := scanner.ScanStream(ctx, src, sw)
	switch {
	case err == nil:
		fmt.Fprintf(os.Stderr, "streamed %d results -> %s (digest %s)\n", sw.Emitted(), outPath, sw.DigestHex())
		return nil
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		fmt.Fprintf(os.Stderr, "interrupted after %d results; checkpoint at %s covers them — rerun with -resume to continue\n",
			sw.Emitted(), cfg.CheckpointPath)
		return nil
	default:
		return err
	}
}

// fileSource streams a domain list file line by line, so a very large
// list never materializes in memory. A parse error stops the stream;
// Err reports it after the scan drains.
type fileSource struct {
	f      *os.File
	sc     *bufio.Scanner
	path   string
	lineNo int
	err    error
}

func openFileSource(path string) (*fileSource, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	return &fileSource{f: f, sc: bufio.NewScanner(f), path: path}, nil
}

func (fs *fileSource) Next() (dnsname.Name, bool) {
	for fs.err == nil && fs.sc.Scan() {
		fs.lineNo++
		line := fs.sc.Text()
		if line == "" || line[0] == '#' {
			continue
		}
		name, err := dnsname.Parse(line)
		if err != nil {
			fs.err = fmt.Errorf("%s:%d: %w", fs.path, fs.lineNo, err)
			return "", false
		}
		return name, true
	}
	if fs.err == nil {
		fs.err = fs.sc.Err()
	}
	return "", false
}

func (fs *fileSource) Err() error   { return fs.err }
func (fs *fileSource) Close() error { return fs.f.Close() }

func readDomains(path string) ([]dnsname.Name, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer func() { _ = f.Close() }()
	var out []dnsname.Name
	sc := bufio.NewScanner(f)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" || line[0] == '#' {
			continue
		}
		name, err := dnsname.Parse(line)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: %w", path, lineNo, err)
		}
		out = append(out, name)
	}
	return out, sc.Err()
}

func summarizeFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer func() { _ = f.Close() }()
	results, err := measure.ReadJSONL(f)
	if err != nil {
		return err
	}
	printSummary(results)
	return nil
}

func printSummary(results []*measure.DomainResult) {
	var parent, data, responsive, partial, full int
	for _, r := range results {
		if r.ParentResponded {
			parent++
		}
		if r.HasData() {
			data++
		}
		if r.Responsive() {
			responsive++
		}
		if r.PartiallyDefective() {
			partial++
		}
		if r.FullyDefective() {
			full++
		}
	}
	fmt.Fprintf(os.Stderr,
		"summary: %d scanned; parent %d (%.1f%%); data %d (%.1f%%); responsive %d (%.1f%%); partial-lame %d (%.1f%%); full-lame %d (%.1f%%)\n",
		len(results),
		parent, stats.Pct(parent, len(results)),
		data, stats.Pct(data, len(results)),
		responsive, stats.Pct(responsive, len(results)),
		partial, stats.Pct(partial, data),
		full, stats.Pct(full, data))
}
