// Command benchreport regenerates every table and figure of the paper
// and prints them alongside the paper's published values, one experiment
// per section. It is the harness behind EXPERIMENTS.md.
//
// With -bench it instead runs the repo's Go benchmarks (go test -bench
// -benchmem) and emits the parsed results as JSON, so perf numbers can be
// committed (BENCH_*.json) and compared across PRs.
//
// Usage:
//
//	benchreport [-scale 0.1] [-seed 42] [-experiment fig9] [-csv]
//	benchreport -bench . [-benchtime 1x] [-benchout BENCH_1.json]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"govdns"
	"govdns/internal/core"
	"govdns/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	scale := flag.Float64("scale", 0.1, "population scale")
	seed := flag.Int64("seed", 42, "generation seed")
	experiment := flag.String("experiment", "", "run one experiment (fig2 fig4 fig6 fig7 fig8 fig9 table1 table2 table3 fig10 fig11 fig13); empty = all")
	csvDir := flag.String("csvdir", "", "also export every experiment as CSV files into this directory")
	listExpectations := flag.Bool("expectations", false, "print the paper's expected values and exit")
	bench := flag.String("bench", "", "run Go benchmarks matching this regexp and emit JSON instead of the report")
	benchtime := flag.String("benchtime", "1x", "benchtime passed to go test when -bench is set")
	benchout := flag.String("benchout", "", "write the -bench JSON to this file (default stdout)")
	flag.Parse()

	if *bench != "" {
		return runBench(*bench, *benchtime, *benchout)
	}

	if *listExpectations {
		keys := make([]string, 0, len(core.PaperExpectations))
		for k := range core.PaperExpectations {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Printf("%-22s %s\n", k, core.PaperExpectations[k])
		}
		return nil
	}

	start := time.Now()
	study, err := govdns.Run(context.Background(), govdns.Options{Seed: *seed, Scale: *scale})
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "study complete in %v\n\n", time.Since(start).Round(time.Millisecond))

	if *csvDir != "" {
		if err := study.WriteCSVs(*csvDir); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "CSV exports written to %s\n", *csvDir)
	}

	if *experiment == "" {
		return study.WriteReport(os.Stdout)
	}
	return writeOne(study, strings.ToLower(*experiment))
}

// writeOne renders a single experiment by id.
func writeOne(study *govdns.Study, id string) error {
	w := os.Stdout
	switch id {
	case "fig2", "fig3":
		for _, y := range study.Fig2And3() {
			fmt.Fprintf(w, "%d domains=%d countries=%d nameservers=%d\n",
				y.Year, y.Domains, y.Countries, y.Nameservers)
		}
	case "fig4":
		counts := study.Fig4()
		for _, code := range sortedByValue(counts) {
			fmt.Fprintf(w, "%s %d\n", code, counts[code])
		}
	case "fig6":
		for _, c := range study.Fig6() {
			fmt.Fprintf(w, "%d total=%d new=%.1f%% from-base=%.1f%% base-gone=%.1f%%\n",
				c.Year, c.Total, c.NewPct(), c.FromBasePct(), c.BaseGonePct())
		}
	case "fig7":
		for _, y := range study.Fig2And3() {
			fmt.Fprintf(w, "%d d1NS-private=%.1f%% all-private=%.1f%%\n",
				y.Year, y.PrivateSinglePct(), y.PrivateAllPct())
		}
	case "fig8", "fig9":
		ar, err := study.Fig8And9()
		if err != nil {
			return err
		}
		fmt.Fprintf(w, ">=2NS=%.1f%% stale-singles=%.1f%% countries-no-single=%d countries>=10%%=%v\n",
			ar.AtLeastTwoPct, ar.SingleStalePct, ar.CountriesNoSingle, ar.CountriesOver10PctSingle)
	case "table1":
		rows, err := study.Table1()
		if err != nil {
			return err
		}
		for _, r := range rows {
			fmt.Fprintf(w, "%-12s n=%-6d ip>1=%.1f%% /24>1=%.1f%% asn>1=%.1f%%\n",
				r.Scope, r.Domains, r.MultiIPPct, r.Multi24Pct, r.MultiASNPct)
		}
	case "table2":
		for _, year := range []int{study.StartYear(), study.EndYear()} {
			fmt.Fprintf(w, "--- %d ---\n", year)
			for _, r := range study.Table2(year) {
				fmt.Fprintf(w, "%-20s domains=%d (%.2f%%) d1P=%d groups=%d\n",
					r.Label, r.Domains, r.DomainsPct, r.SingleProvider, r.SubRegions)
			}
		}
	case "table3":
		for _, year := range []int{study.StartYear(), study.EndYear()} {
			fmt.Fprintf(w, "--- %d ---\n", year)
			for _, r := range study.Table3(year, 11) {
				fmt.Fprintf(w, "%-22s domains=%d (%.2f%%) groups=%d countries=%d\n",
					r.Label, r.Domains, r.DomainsPct, r.SubRegions, r.Countries)
			}
		}
	case "fig10":
		ds, err := study.Fig10()
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "any=%.1f%% partial=%.1f%% full=%.1f%% of %d\n",
			ds.AnyDefectPct(), ds.PartialPct(), ds.FullPct(), ds.WithData)
	case "fig11", "fig12":
		hr, err := study.Fig11And12()
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "available=%d affected=%d countries=%d median=%s\n",
			len(hr.AvailableNSDomains), hr.AffectedDomains, hr.Countries, hr.MedianPrice)
	case "fig13", "fig14":
		cs, err := study.Fig13And14()
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "P=C %.1f%% of %d; P!=C with defect %.1f%%\n",
			cs.EqualPct, cs.Responsive, cs.InconsistentWithDefectPct)
	default:
		return fmt.Errorf("unknown experiment %q", id)
	}
	return nil
}

// benchResult is one parsed benchmark line.
type benchResult struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// benchReport is the JSON document -bench emits.
type benchReport struct {
	Date       string        `json:"date"`
	GoVersion  string        `json:"go_version"`
	GOOS       string        `json:"goos"`
	GOARCH     string        `json:"goarch"`
	NumCPU     int           `json:"num_cpu"`
	Command    string        `json:"command"`
	Benchmarks []benchResult `json:"benchmarks"`
	// MetricsScale is the world scale of the instrumented reference scan
	// whose registry snapshot is embedded below, so per-stage latency
	// distributions and query counts travel with the perf numbers.
	MetricsScale float64               `json:"metrics_scale,omitempty"`
	Metrics      *obs.RegistrySnapshot `json:"metrics,omitempty"`
}

// runBench shells out to go test, parses the standard benchmark output
// format, and writes it as JSON.
func runBench(pattern, benchtime, out string) error {
	args := []string{"test", "-run", "^$", "-bench", pattern, "-benchmem", "-benchtime", benchtime, "."}
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if err != nil {
		return fmt.Errorf("go %s: %w\n%s", strings.Join(args, " "), err, raw)
	}

	report := benchReport{
		Date:      time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Command:   "go " + strings.Join(args, " "),
	}
	for _, line := range strings.Split(string(raw), "\n") {
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name, iteration count, then value/unit pairs.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r := benchResult{
			Name:       strings.TrimSuffix(fields[0], fmt.Sprintf("-%d", runtime.GOMAXPROCS(0))),
			Iterations: iters,
			Metrics:    make(map[string]float64, (len(fields)-2)/2),
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			r.Metrics[fields[i+1]] = v
		}
		report.Benchmarks = append(report.Benchmarks, r)
	}
	if len(report.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines in go test output")
	}

	// Embed an instrumented reference scan's metrics snapshot so each
	// BENCH_*.json carries stage latency histograms and query counts
	// alongside the ns/op numbers.
	const metricsScale = 0.01
	reg := govdns.NewMetricsRegistry()
	if _, err := govdns.Run(context.Background(), govdns.Options{Seed: 42, Scale: metricsScale, Metrics: reg}); err != nil {
		return fmt.Errorf("instrumented reference scan: %w", err)
	}
	snap := reg.Snapshot()
	report.MetricsScale = metricsScale
	report.Metrics = &snap

	enc, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if out == "" {
		_, err = os.Stdout.Write(enc)
		return err
	}
	if err := os.WriteFile(out, enc, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "benchmark report written to %s (%d benchmarks)\n", out, len(report.Benchmarks))
	return nil
}

func sortedByValue(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if m[keys[i]] != m[keys[j]] {
			return m[keys[i]] > m[keys[j]]
		}
		return keys[i] < keys[j]
	})
	return keys
}
