// Command govtrace is the triage tool for resolution-trace JSONL files
// written by govscan -trace (the flight recorder's retained
// exemplars). It renders a recorded domain measurement as an ASCII
// resolution tree — one line per span: stage, server, outcome,
// duration, fault annotations — and structurally diffs two traces of
// the same domain, which is the first stop for any digest-divergence
// or classification-flip report.
//
//	govtrace list traces.jsonl
//	govtrace tree traces.jsonl
//	govtrace tree -domain city.gov.br. traces.jsonl
//	govtrace diff -domain city.gov.br. before.jsonl after.jsonl
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"govdns/internal/dnsname"
	"govdns/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "govtrace: %v\n", err)
		os.Exit(1)
	}
}

func usage() error {
	return fmt.Errorf("usage: govtrace list <traces.jsonl> | tree [-domain name] <traces.jsonl> | diff [-domain name] <a.jsonl> <b.jsonl>")
}

func run(args []string) error {
	if len(args) == 0 {
		return usage()
	}
	switch args[0] {
	case "list":
		return runList(args[1:])
	case "tree":
		return runTree(args[1:])
	case "diff":
		return runDiff(args[1:])
	default:
		return usage()
	}
}

func loadTraces(path string) ([]*trace.DomainTrace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer func() { _ = f.Close() }()
	traces, err := trace.ReadJSONL(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return traces, nil
}

// filterDomain narrows traces to one domain when the flag is set.
func filterDomain(traces []*trace.DomainTrace, domain string, path string) ([]*trace.DomainTrace, error) {
	if domain == "" {
		return traces, nil
	}
	name, err := dnsname.Parse(domain)
	if err != nil {
		return nil, fmt.Errorf("-domain: %w", err)
	}
	var out []*trace.DomainTrace
	for _, dt := range traces {
		if dt.Domain == name {
			out = append(out, dt)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no trace for %s", path, name)
	}
	return out, nil
}

func runList(args []string) error {
	fs := flag.NewFlagSet("list", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return usage()
	}
	traces, err := loadTraces(fs.Arg(0))
	if err != nil {
		return err
	}
	for _, dt := range traces {
		line := fmt.Sprintf("%s class=%s rounds=%d dur=%s spans=%d",
			dt.Domain, dt.Class, dt.Rounds, dt.Duration, len(dt.Spans))
		if dt.Err != "" {
			line += " error"
		}
		if dt.ErrTransient {
			line += " transient"
		}
		if dt.ClassChanged {
			line += " class-changed"
		}
		if len(dt.RetainedFor) > 0 {
			line += " retained=" + strings.Join(dt.RetainedFor, ",")
		}
		fmt.Println(line)
	}
	return nil
}

func runTree(args []string) error {
	fs := flag.NewFlagSet("tree", flag.ContinueOnError)
	domain := fs.String("domain", "", "render only this domain's trace(s)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return usage()
	}
	traces, err := loadTraces(fs.Arg(0))
	if err != nil {
		return err
	}
	traces, err = filterDomain(traces, *domain, fs.Arg(0))
	if err != nil {
		return err
	}
	for i, dt := range traces {
		if i > 0 {
			fmt.Println()
		}
		if err := trace.RenderTree(os.Stdout, dt); err != nil {
			return err
		}
	}
	return nil
}

func runDiff(args []string) error {
	fs := flag.NewFlagSet("diff", flag.ContinueOnError)
	domain := fs.String("domain", "", "diff this domain (required when a file holds several domains)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return usage()
	}
	pick := func(path string) (*trace.DomainTrace, error) {
		traces, err := loadTraces(path)
		if err != nil {
			return nil, err
		}
		traces, err = filterDomain(traces, *domain, path)
		if err != nil {
			return nil, err
		}
		if len(traces) != 1 {
			return nil, fmt.Errorf("%s: %d traces; pick one with -domain", path, len(traces))
		}
		return traces[0], nil
	}
	a, err := pick(fs.Arg(0))
	if err != nil {
		return err
	}
	b, err := pick(fs.Arg(1))
	if err != nil {
		return err
	}
	n, err := trace.Diff(os.Stdout, a, b)
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d difference(s)\n", a.Domain, n)
	return nil
}
