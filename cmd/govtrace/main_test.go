package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"govdns/internal/dnsname"
	"govdns/internal/trace"
)

// writeTraces builds a two-domain JSONL fixture and returns its path.
func writeTraces(t *testing.T) string {
	t.Helper()
	mk := func(domain string, errText string) *trace.DomainTrace {
		return &trace.DomainTrace{
			Domain:   dnsname.Name(domain),
			Start:    time.Unix(1700000000, 0).UTC(),
			Duration: 5 * time.Millisecond,
			Class:    "healthy",
			Rounds:   1,
			Err:      errText,
			Spans: []trace.Span{
				{ID: 0, Parent: trace.NoSpan, Kind: trace.KindDomain, Name: domain, Duration: 5 * time.Millisecond, Outcome: "ok"},
				{ID: 1, Parent: 0, Kind: trace.KindRound, Name: "round 1", Duration: 4 * time.Millisecond, Outcome: "ok"},
			},
		}
	}
	path := filepath.Join(t.TempDir(), "traces.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := trace.WriteJSONL(f, []*trace.DomainTrace{
		mk("a.gov.br.", ""), mk("b.gov.br.", "boom"),
	}); err != nil {
		t.Fatal(err)
	}
	return path
}

// capture runs fn with os.Stdout redirected and returns what it printed.
func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	orig := os.Stdout
	os.Stdout = w
	defer func() { os.Stdout = orig }()
	runErr := fn()
	w.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(out), runErr
}

func TestListTreeDiff(t *testing.T) {
	path := writeTraces(t)

	out, err := capture(t, func() error { return run([]string{"list", path}) })
	if err != nil {
		t.Fatalf("list: %v", err)
	}
	if !strings.Contains(out, "a.gov.br. class=healthy rounds=1") ||
		!strings.Contains(out, "b.gov.br.") || !strings.Contains(out, "error") {
		t.Errorf("list output missing expected lines:\n%s", out)
	}

	out, err = capture(t, func() error { return run([]string{"tree", "-domain", "a.gov.br.", path}) })
	if err != nil {
		t.Fatalf("tree: %v", err)
	}
	if !strings.Contains(out, "└─ domain a.gov.br. ok") || strings.Contains(out, "b.gov.br.") {
		t.Errorf("tree output wrong:\n%s", out)
	}

	out, err = capture(t, func() error {
		return run([]string{"diff", "-domain", "a.gov.br.", path, path})
	})
	if err != nil {
		t.Fatalf("diff: %v", err)
	}
	if !strings.Contains(out, "a.gov.br.: 0 difference(s)") {
		t.Errorf("self-diff should report 0 differences:\n%s", out)
	}
}

func TestErrors(t *testing.T) {
	path := writeTraces(t)
	garbage := filepath.Join(t.TempDir(), "bad.jsonl")
	if err := os.WriteFile(garbage, []byte("not json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := map[string][]string{
		"no command":          {},
		"unknown command":     {"frobnicate", path},
		"missing file":        {"list", filepath.Join(t.TempDir(), "nope.jsonl")},
		"garbage file":        {"list", garbage},
		"unknown domain":      {"tree", "-domain", "zz.gov.br.", path},
		"unparseable domain":  {"tree", "-domain", "..bad..", path},
		"diff needs -domain":  {"diff", path, path},
		"diff wrong arity":    {"diff", path},
		"tree too many files": {"tree", path, path},
	}
	for name, args := range cases {
		if _, err := capture(t, func() error { return run(args) }); err == nil {
			t.Errorf("%s: run(%q) succeeded, want error", name, args)
		}
	}
}
