// Command govmon is the continuous-monitoring daemon built on the
// streaming scanner: it re-scans a domain population on a schedule,
// diffs every epoch against the previous one, and appends
// classification flips, NS-set churn, and hijack-pattern transitions to
// a durable alert log. Every alerted domain's full resolution span tree
// is retained alongside, so triage starts from evidence, not a re-scan.
//
// Subcommands:
//
//	govmon run  -state DIR [-interval 1m] [-epochs N] [-metrics :9090]
//	            run the daemon against the synthetic world; a killed
//	            daemon restarted with the same -state resumes mid-epoch
//	govmon tail -state DIR [-n 10] [-traces]
//	            render the newest alerts (optionally with each alerted
//	            domain's retained span tree inline)
//	govmon demo
//	            two-epoch miniworld demo with an injected NS hijack;
//	            prints the resulting alert and its span tree
//
// With -metrics the daemon also serves /healthz (liveness: the epoch
// failure streak stays under 5), /readyz (ready once the first epoch
// completes), and /metrics?format=prom.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"govdns/internal/measure"
	"govdns/internal/miniworld"
	"govdns/internal/monitor"
	"govdns/internal/obs"
	"govdns/internal/resolver"
	"govdns/internal/trace"
	"govdns/internal/worldgen"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "govmon: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return errors.New("usage: govmon run|tail|demo [flags]")
	}
	switch args[0] {
	case "run":
		return runDaemon(args[1:])
	case "tail":
		return runTail(args[1:])
	case "demo":
		return runDemo(args[1:])
	default:
		return fmt.Errorf("unknown subcommand %q (want run, tail, or demo)", args[0])
	}
}

// maxFailureStreak is the liveness threshold: this many consecutive
// failed epochs means the daemon is wedged, not unlucky.
const maxFailureStreak = 5

func runDaemon(args []string) error {
	fs := flag.NewFlagSet("govmon run", flag.ContinueOnError)
	stateDir := fs.String("state", "", "state directory (required; survives restarts)")
	interval := fs.Duration("interval", time.Minute, "pause between epoch starts (0 = back-to-back)")
	epochs := fs.Int("epochs", 0, "stop after this many completed epochs (0 = run until interrupted)")
	seed := fs.Int64("seed", 42, "synthetic world seed")
	scale := fs.Float64("scale", 0.02, "synthetic world scale")
	concurrency := fs.Int("concurrency", measure.DefaultConcurrency, "concurrent domains per epoch")
	timeout := fs.Duration("timeout", 25*time.Millisecond, "per-query timeout")
	metricsAddr := fs.String("metrics", "", "serve /metrics, /healthz, /readyz, and pprof on this address")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *stateDir == "" {
		return errors.New("govmon run: -state is required")
	}

	world := worldgen.Generate(worldgen.Config{Seed: *seed, Scale: *scale})
	active := worldgen.Build(world)

	reg := obs.NewRegistry()
	m, err := monitor.Open(monitor.Config{
		StateDir: *stateDir,
		ScanKey:  fmt.Sprintf("govmon sim seed=%d scale=%g", *seed, *scale),
		Registry: reg,
	})
	if err != nil {
		return err
	}
	defer func() { _ = m.Close() }()

	health := obs.NewHealth()
	health.AddLiveness("epoch-failures", func() error {
		if n := m.ConsecutiveFailures(); n >= maxFailureStreak {
			return fmt.Errorf("%d consecutive epoch failures", n)
		}
		return nil
	})
	if *metricsAddr != "" {
		go func() {
			srv := &http.Server{Addr: *metricsAddr, Handler: obs.HandlerWith(reg, health)}
			fmt.Fprintf(os.Stderr, "telemetry on http://%s/metrics /healthz /readyz (pprof under /debug/pprof/)\n", *metricsAddr)
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "govmon: metrics server: %v\n", err)
			}
		}()
	}

	// An interrupt cancels the running epoch cleanly: the stream writer
	// checkpoints the emitted prefix and the flushed alerts stay durable,
	// so a restart with the same -state resumes mid-epoch.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	fmt.Fprintf(os.Stderr, "monitoring %d domains (epoch %d, interval %v, state %s)\n",
		len(active.QueryList), m.Epoch(), *interval, *stateDir)
	completed := 0
	for {
		epochStart := time.Now()
		scanner := newSimScanner(active, *concurrency, *timeout, reg)
		qs := worldgen.NewQueryStream(world)
		rep, err := m.RunEpoch(ctx, scanner, qs.Next)
		switch {
		case err == nil:
			resumed := ""
			if rep.Resumed {
				resumed = fmt.Sprintf(" (resumed from %d)", rep.ResumedFrom)
			}
			fmt.Fprintf(os.Stderr, "epoch %d: %d domains%s in %v, %d alerts, %d traces retained (digest %s)\n",
				rep.Epoch, rep.Domains, resumed, time.Since(epochStart).Round(time.Millisecond),
				len(rep.Alerts), rep.Traces, rep.DigestHex)
			for _, a := range rep.Alerts {
				monitor.WriteAlert(os.Stdout, a)
			}
			health.SetReady(true)
			completed++
		case errors.Is(err, context.Canceled):
			// rep is nil on error; m.Epoch() still names the interrupted
			// epoch because a failed RunEpoch does not advance it.
			fmt.Fprintf(os.Stderr, "epoch %d interrupted; state at %s resumes it\n", m.Epoch(), *stateDir)
			return nil
		default:
			fmt.Fprintf(os.Stderr, "epoch %d failed (streak %d): %v\n", m.Epoch(), m.ConsecutiveFailures(), err)
		}
		if *epochs > 0 && completed >= *epochs {
			return nil
		}
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(*interval):
		}
	}
}

func newSimScanner(active *worldgen.Active, concurrency int, timeout time.Duration, reg *obs.Registry) *measure.Scanner {
	client := resolver.NewClient(active.Net)
	client.Timeout = timeout
	client.SetMetrics(resolver.NewMetrics(reg))
	s := measure.NewScanner(resolver.NewIterator(client, active.Roots))
	s.Concurrency = concurrency
	s.Metrics = measure.NewScanMetrics(reg)
	return s
}

func runTail(args []string) error {
	fs := flag.NewFlagSet("govmon tail", flag.ContinueOnError)
	stateDir := fs.String("state", "", "state directory (required)")
	n := fs.Int("n", 10, "newest alerts to show")
	withTraces := fs.Bool("traces", false, "render each alerted domain's retained span tree inline")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *stateDir == "" {
		return errors.New("govmon tail: -state is required")
	}

	// Tail is strictly read-only: a live daemon owns the alert log, so
	// triage reads the files directly instead of opening a Monitor.
	f, err := os.Open(filepath.Join(*stateDir, "alerts.jsonl"))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			fmt.Println("no alerts")
			return nil
		}
		return err
	}
	alerts, err := monitor.ReadAlerts(f)
	_ = f.Close()
	if err != nil {
		return err
	}
	if len(alerts) == 0 {
		fmt.Println("no alerts")
		return nil
	}
	if len(alerts) > *n {
		alerts = alerts[len(alerts)-*n:]
	}
	// Alerts from one epoch share a trace file; load each epoch once.
	traces := map[int]map[string]*trace.DomainTrace{}
	for _, a := range alerts {
		monitor.WriteAlert(os.Stdout, a)
		if !*withTraces {
			continue
		}
		byDomain, ok := traces[a.Epoch]
		if !ok {
			byDomain = loadEpochTraces(filepath.Join(*stateDir, fmt.Sprintf("epoch-%d.traces.jsonl", a.Epoch)))
			traces[a.Epoch] = byDomain
		}
		if dt := byDomain[string(a.Domain)]; dt != nil {
			if err := trace.RenderTree(os.Stdout, dt); err != nil {
				return err
			}
		} else {
			fmt.Printf("  (no retained trace for %s in epoch %d)\n", a.Domain, a.Epoch)
		}
	}
	return nil
}

// loadEpochTraces indexes an epoch's trace archive by domain; a missing
// or unreadable archive just means no inline trees.
func loadEpochTraces(path string) map[string]*trace.DomainTrace {
	f, err := os.Open(path)
	if err != nil {
		return nil
	}
	defer func() { _ = f.Close() }()
	all, err := trace.ReadJSONL(f)
	if err != nil {
		return nil
	}
	out := make(map[string]*trace.DomainTrace, len(all))
	for _, dt := range all {
		out[string(dt.Domain)] = dt
	}
	return out
}

func runDemo(args []string) error {
	fs := flag.NewFlagSet("govmon demo", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	dir, err := os.MkdirTemp("", "govmon-demo-*")
	if err != nil {
		return err
	}
	defer func() { _ = os.RemoveAll(dir) }()

	w := miniworld.Build()
	domains := miniworld.Domains()
	m, err := monitor.Open(monitor.Config{StateDir: dir, ScanKey: "demo"})
	if err != nil {
		return err
	}
	defer func() { _ = m.Close() }()

	ctx := context.Background()
	if _, err := m.RunEpoch(ctx, newMiniScanner(w), measure.SliceSource(domains)); err != nil {
		return err
	}
	fmt.Printf("epoch 0: baseline over %d domains, no alerts\n", len(domains))

	evil := w.HijackCity()
	fmt.Printf("injected: city.gov.br. delegation replaced with %s\n\n", evil)

	rep, err := m.RunEpoch(ctx, newMiniScanner(w), measure.SliceSource(domains))
	if err != nil {
		return err
	}
	traces := loadEpochTraces(m.TracesPath(rep.Epoch))
	for _, a := range rep.Alerts {
		monitor.WriteAlert(os.Stdout, a)
		if dt := traces[string(a.Domain)]; dt != nil {
			if err := trace.RenderTree(os.Stdout, dt); err != nil {
				return err
			}
		}
	}
	return nil
}

func newMiniScanner(w *miniworld.World) *measure.Scanner {
	client := resolver.NewClient(w.Net)
	client.Timeout = 25 * time.Millisecond
	s := measure.NewScanner(resolver.NewIterator(client, w.Roots))
	s.Concurrency = 4
	return s
}
