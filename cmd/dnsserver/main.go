// Command dnsserver loads a zone file and serves it authoritatively over
// real UDP and TCP — the standalone nameserver built on the same engine
// the simulation uses. Query it with any stub resolver:
//
//	dnsserver -zone data/gov.br.zone -origin gov.br -listen 127.0.0.1:5353
//	dig @127.0.0.1 -p 5353 www.gov.br A
//	dig @127.0.0.1 -p 5353 +tcp gov.br AXFR
//
// A secondary bootstraps its zone over AXFR from a running primary
// instead of a zone file:
//
//	dnsserver -origin gov.br -xfr 127.0.0.1:5353 -listen 127.0.0.1:5354
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"govdns/internal/authserver"
	"govdns/internal/dnsname"
	"govdns/internal/dnswire"
	"govdns/internal/obs"
	"govdns/internal/zone"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "dnsserver: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	zonePath := flag.String("zone", "", "zone file to serve (this or -xfr is required)")
	origin := flag.String("origin", "", "zone origin (required)")
	listen := flag.String("listen", "127.0.0.1:5353", "listen address (UDP and TCP)")
	xfr := flag.String("xfr", "", "bootstrap the zone over AXFR from this primary (host:port) instead of -zone")
	tcp := flag.Bool("tcp", true, "also serve TCP (framed queries, pipelining, AXFR)")
	cache := flag.Bool("cache", true, "enable the TTL-aware response cache")
	ednsBuf := flag.Uint("edns-buf", uint(dnswire.DefaultEDNSBufSize), "advertised EDNS0 UDP payload cap")
	tcpIdle := flag.Duration("tcp-idle", authserver.DefaultTCPIdleTimeout, "idle timeout for TCP connections")
	metricsAddr := flag.String("metrics", "", "serve /metrics, /healthz, /readyz, and pprof on this address, e.g. :9090")
	flag.Parse()

	if *origin == "" || (*zonePath == "") == (*xfr == "") {
		flag.Usage()
		return fmt.Errorf("-origin and exactly one of -zone / -xfr are required")
	}
	originName, err := dnsname.Parse(*origin)
	if err != nil {
		return fmt.Errorf("bad origin: %w", err)
	}

	server := authserver.New(originName.MustPrepend("ns1"))
	server.SetEDNSBufSize(uint16(min(*ednsBuf, 0xFFFF)))
	reg := obs.NewRegistry()
	if *cache {
		rc := authserver.NewResponseCache()
		rc.AttachRegistry(reg)
		server.SetCache(rc)
	}

	// Readiness flips on once the zone is loaded and the listeners are
	// up; liveness is process-up (a wedged zone transfer never gets
	// here, so the probe surface reports it as not-ready, not not-live).
	health := obs.NewHealth()
	if *metricsAddr != "" {
		go func() {
			srv := &http.Server{Addr: *metricsAddr, Handler: obs.HandlerWith(reg, health)}
			fmt.Fprintf(os.Stderr, "telemetry on http://%s/metrics /healthz /readyz (pprof under /debug/pprof/)\n", *metricsAddr)
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "dnsserver: metrics server: %v\n", err)
			}
		}()
	}

	switch {
	case *zonePath != "":
		f, err := os.Open(*zonePath)
		if err != nil {
			return err
		}
		z, err := zone.ParseFile(f, originName)
		closeErr := f.Close()
		if err != nil {
			return fmt.Errorf("parsing %s: %w", *zonePath, err)
		}
		if closeErr != nil {
			return closeErr
		}
		for _, problem := range z.Validate() {
			fmt.Fprintf(os.Stderr, "warning: %v\n", problem)
		}
		server.AddZone(z)
	default:
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		err := authserver.SyncZone(ctx, *xfr, originName, server)
		cancel()
		if err != nil {
			return fmt.Errorf("AXFR from %s: %w", *xfr, err)
		}
		fmt.Printf("zone %s transferred from primary %s\n", originName, *xfr)
	}

	udp, err := authserver.ListenUDP(*listen, server)
	if err != nil {
		return err
	}
	transports := "udp"
	var tcpSrv *authserver.TCPServer
	if *tcp {
		tcpSrv, err = authserver.ListenTCPIdle(*listen, server, *tcpIdle)
		if err != nil {
			_ = udp.Close()
			return err
		}
		transports = "udp+tcp"
	}
	z, _ := server.ZoneByOrigin(originName)
	fmt.Printf("serving %s (%d records) on %s (%s, edns-buf %d, cache %v)\n",
		originName, z.Len(), udp.Addr(), transports, *ednsBuf, *cache)
	health.SetReady(true)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	fmt.Println("shutting down")
	if tcpSrv != nil {
		if err := tcpSrv.Close(); err != nil {
			return err
		}
	}
	return udp.Close()
}
