// Command dnsserver loads a zone file and serves it authoritatively over
// real UDP — the standalone nameserver built on the same engine the
// simulation uses. Query it with any stub resolver:
//
//	dnsserver -zone data/gov.br.zone -origin gov.br -listen 127.0.0.1:5353
//	dig @127.0.0.1 -p 5353 www.gov.br A
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"govdns/internal/authserver"
	"govdns/internal/dnsname"
	"govdns/internal/zone"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "dnsserver: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	zonePath := flag.String("zone", "", "zone file to serve (required)")
	origin := flag.String("origin", "", "zone origin (required)")
	listen := flag.String("listen", "127.0.0.1:5353", "UDP listen address")
	flag.Parse()

	if *zonePath == "" || *origin == "" {
		flag.Usage()
		return fmt.Errorf("-zone and -origin are required")
	}
	originName, err := dnsname.Parse(*origin)
	if err != nil {
		return fmt.Errorf("bad origin: %w", err)
	}
	f, err := os.Open(*zonePath)
	if err != nil {
		return err
	}
	z, err := zone.ParseFile(f, originName)
	closeErr := f.Close()
	if err != nil {
		return fmt.Errorf("parsing %s: %w", *zonePath, err)
	}
	if closeErr != nil {
		return closeErr
	}
	for _, problem := range z.Validate() {
		fmt.Fprintf(os.Stderr, "warning: %v\n", problem)
	}

	server := authserver.New(originName.MustPrepend("ns1"))
	server.AddZone(z)
	udp, err := authserver.ListenUDP(*listen, server)
	if err != nil {
		return err
	}
	fmt.Printf("serving %s (%d records) on %s\n", originName, z.Len(), udp.Addr())

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	fmt.Println("shutting down")
	return udp.Close()
}
