// Command worldgen generates the synthetic world and dumps its datasets
// to disk: the passive-DNS history (JSON lines), the GeoIP ASN database
// (CSV), and one zone file per requested government suffix.
//
// Usage:
//
//	worldgen -out ./data [-scale 0.1] [-seed 42] [-zones gov.br,gov.cn]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"govdns/internal/dnsname"
	"govdns/internal/worldgen"
	"govdns/internal/zone"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "worldgen: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	out := flag.String("out", "data", "output directory")
	scale := flag.Float64("scale", 0.1, "population scale")
	seed := flag.Int64("seed", 42, "generation seed")
	zones := flag.String("zones", "", "comma-separated government suffixes whose parent zones to export as zone files")
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}

	w := worldgen.Generate(worldgen.Config{Seed: *seed, Scale: *scale})
	active := worldgen.Build(w)

	pdnsPath := filepath.Join(*out, "pdns.jsonl")
	if err := writeFile(pdnsPath, w.PDNS.WriteJSONL); err != nil {
		return fmt.Errorf("writing %s: %w", pdnsPath, err)
	}
	fmt.Printf("wrote %s (%d record sets)\n", pdnsPath, w.PDNS.Len())

	geoPath := filepath.Join(*out, "geoip-asn.csv")
	if err := writeFile(geoPath, active.Geo.WriteCSV); err != nil {
		return fmt.Errorf("writing %s: %w", geoPath, err)
	}
	fmt.Printf("wrote %s (%d ranges)\n", geoPath, active.Geo.Len())

	listPath := filepath.Join(*out, "querylist.txt")
	if err := writeFile(listPath, func(f io.Writer) error {
		for _, name := range active.QueryList {
			if _, err := fmt.Fprintln(f, name); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return fmt.Errorf("writing %s: %w", listPath, err)
	}
	fmt.Printf("wrote %s (%d names)\n", listPath, len(active.QueryList))

	if *zones == "" {
		return nil
	}
	for _, raw := range strings.Split(*zones, ",") {
		suffix, err := dnsname.Parse(strings.TrimSpace(raw))
		if err != nil {
			return fmt.Errorf("bad suffix %q: %w", raw, err)
		}
		z, err := parentZoneOf(active, suffix)
		if err != nil {
			return err
		}
		zonePath := filepath.Join(*out, strings.TrimSuffix(suffix.String(), ".")+".zone")
		if err := writeFile(zonePath, func(f io.Writer) error { return zone.WriteFile(f, z) }); err != nil {
			return fmt.Errorf("writing %s: %w", zonePath, err)
		}
		fmt.Printf("wrote %s (%d records)\n", zonePath, z.Len())
	}
	return nil
}

// parentZoneOf fetches a government suffix's parent zone by querying its
// primary server directly.
func parentZoneOf(active *worldgen.Active, suffix dnsname.Name) (*zone.Zone, error) {
	primary := suffix.MustPrepend("ns1")
	addrs := active.AddrsOf(primary)
	if len(addrs) == 0 {
		return nil, fmt.Errorf("no server for %s (unknown suffix?)", suffix)
	}
	server, ok := active.Net.ServerAt(addrs[0])
	if !ok {
		return nil, fmt.Errorf("no server attached at %s", addrs[0])
	}
	for _, origin := range server.Zones() {
		if origin == suffix {
			return serverZone(server, origin)
		}
	}
	return nil, fmt.Errorf("server at %s does not host %s", addrs[0], suffix)
}

// serverZone extracts a zone from a server by origin. The authserver API
// does not expose zones directly, so rebuild from Records via a probe —
// the zone model keeps this simple: the server stores the zone pointer.
func serverZone(server interface {
	ZoneByOrigin(dnsname.Name) (*zone.Zone, bool)
}, origin dnsname.Name) (*zone.Zone, error) {
	z, ok := server.ZoneByOrigin(origin)
	if !ok {
		return nil, fmt.Errorf("zone %s not found", origin)
	}
	return z, nil
}

func writeFile(path string, fill func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fill(f); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}
