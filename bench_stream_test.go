package govdns

// BenchmarkScanStream is the memory/throughput differential behind the
// streaming scan path (DESIGN.md § 13): the slice reference retains
// every DomainResult until a final WriteJSONL, while the streaming path
// emits through a bounded reorder window and retains almost nothing.
// Both sides run at a raised scale tier — Scale=0.05 versus the
// pipeline bench's 0.02 — under the same 5ms-RTT latency model, do the
// same measurement and serialization work, and report retained heap
// bytes alongside wall time. The acceptance bar is streaming throughput
// within 5% of the slice path with retained-bytes collapsed to the
// reorder window.
//
// Run: make bench-stream (writes BENCH_5.json)

import (
	"context"
	"io"
	"runtime"
	"sync"
	"testing"
	"time"

	"govdns/internal/measure"
	"govdns/internal/resolver"
	"govdns/internal/worldgen"
)

var (
	streamBenchOnce   sync.Once
	streamBenchActive *worldgen.Active
)

// streamBenchWorld memoizes the raised-tier world: one build serves
// every sub-benchmark, so iteration time measures scanning, not worldgen.
func streamBenchWorld(b *testing.B) *worldgen.Active {
	b.Helper()
	streamBenchOnce.Do(func() {
		w := worldgen.Generate(worldgen.Config{Seed: 42, Scale: 0.05})
		streamBenchActive = worldgen.Build(w)
	})
	return streamBenchActive
}

func newStreamBenchScanner(active *worldgen.Active) *measure.Scanner {
	client := resolver.NewClient(&benchLatencyTransport{active.Net, 5 * time.Millisecond})
	client.Timeout = 25 * time.Millisecond
	client.Retries = 1
	sc := measure.NewScanner(resolver.NewIterator(client, active.Roots))
	sc.Concurrency = measure.DefaultConcurrency
	sc.PerDomainParallelism = measure.DefaultPerDomainParallelism
	return sc
}

func heapInUse() float64 {
	runtime.GC()
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return float64(m.HeapAlloc)
}

func BenchmarkScanStream(b *testing.B) {
	active := streamBenchWorld(b)
	ctx := context.Background()

	b.Run("slice", func(b *testing.B) {
		var retained float64
		for i := 0; i < b.N; i++ {
			before := heapInUse()
			results := newStreamBenchScanner(active).Scan(ctx, active.QueryList)
			if len(results) != len(active.QueryList) {
				b.Fatalf("got %d results for %d domains", len(results), len(active.QueryList))
			}
			if err := measure.WriteJSONL(io.Discard, results); err != nil {
				b.Fatal(err)
			}
			// The slice path's cost: every result is still live here.
			retained += heapInUse() - before
			runtime.KeepAlive(results)
		}
		b.ReportMetric(retained/float64(b.N), "retained-bytes/op")
		b.ReportMetric(float64(len(active.QueryList)), "domains/op")
	})

	b.Run("stream", func(b *testing.B) {
		var retained float64
		for i := 0; i < b.N; i++ {
			before := heapInUse()
			sw := measure.NewStreamWriter(io.Discard, measure.StreamConfig{})
			err := newStreamBenchScanner(active).ScanStream(ctx, measure.SliceSource(active.QueryList), sw)
			if err != nil {
				b.Fatal(err)
			}
			if sw.Emitted() != len(active.QueryList) {
				b.Fatalf("emitted %d results for %d domains", sw.Emitted(), len(active.QueryList))
			}
			// Results were emitted and dropped; only the writer and the
			// drained reorder window remain reachable.
			retained += heapInUse() - before
			runtime.KeepAlive(sw)
		}
		b.ReportMetric(retained/float64(b.N), "retained-bytes/op")
		b.ReportMetric(float64(len(active.QueryList)), "domains/op")
	})
}
