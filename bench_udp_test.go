package govdns

// Real-network transport benchmarks (see DESIGN.md § 15): the
// dial-per-exchange reference transport against udpx.BatchTransport at
// matched concurrency, over the same pool of loopback authoritative
// servers. Both sides run the identical workload — benchUDPWorkers
// goroutines, each cycling cached queries across benchUDPServers
// UDPServer instances — so the only variable is the client transport:
// per-query socket setup plus a connect/send/recv/close syscall
// sequence (dial) versus shared sockets, sendmmsg/recvmmsg batches,
// and QID demultiplexing (batch).
//
// BENCH_7.json records ns/op, allocs/op, a qps metric, and — for the
// batched side, from the udpx_* obs counters — the measured
// syscalls/query and mean datagrams-per-batch. Acceptance bars:
// BenchmarkTransportBatchUDP ≥ 3× the qps of BenchmarkTransportDialUDP,
// at 0 allocs/op steady state on the batch hot path (the hard gate is
// TestBatchExchangeZeroAlloc in internal/udpx, run by `make test`).
//
// Run: make bench-udp

import (
	"context"
	"fmt"
	"net/netip"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"govdns/internal/authserver"
	"govdns/internal/dnsname"
	"govdns/internal/dnswire"
	"govdns/internal/resolver"
	"govdns/internal/udpx"
)

const (
	// benchUDPServers is the loopback serving-pool size: enough distinct
	// destinations that the batched transport spreads load across its
	// socket pool and per-destination QID spaces, as a real scan does.
	benchUDPServers = 8
	// benchUDPWorkers is the matched concurrency: the in-flight exchange
	// count both transports sustain. High enough that the batch side has
	// whole batches to coalesce, low enough that the dial side is not
	// drowned in its own socket churn.
	benchUDPWorkers = 128
)

// benchUDPWorld stands up the serving pool — cached authoritative
// servers on loopback sockets, several read loops each so serving is
// not the bottleneck being measured — and returns the simulated-IP →
// bound-socket override map clients address them through.
func benchUDPWorld(b *testing.B) map[netip.Addr]netip.AddrPort {
	b.Helper()
	override := make(map[netip.Addr]netip.AddrPort, benchUDPServers)
	for i := 0; i < benchUDPServers; i++ {
		us, err := authserver.ListenUDPReaders("127.0.0.1:0", benchServer(b, true), 2)
		if err != nil {
			b.Fatalf("listen server %d: %v", i, err)
		}
		b.Cleanup(func() { _ = us.Close() })
		ap, err := netip.ParseAddrPort(us.Addr().String())
		if err != nil {
			b.Fatal(err)
		}
		override[netip.MustParseAddr(fmt.Sprintf("192.0.2.%d", 10+i))] = ap
	}
	return override
}

// benchUDPWorkload is the transport workload: small-answer shapes
// only (A and NS singletons, no TXT fan-out), so the bytes moved per
// query stay close to a real scan's referral traffic and the
// measurement weighs the transports' per-query machinery rather than
// response rendering and kernel copy costs both sides share.
func benchUDPWorkload(tb testing.TB) [][]byte {
	tb.Helper()
	shapes := []struct {
		name  dnsname.Name
		qtype dnswire.Type
	}{
		{"www.gov.br.", dnswire.TypeA},
		{"mail.gov.br.", dnswire.TypeA},
		{"ns1.gov.br.", dnswire.TypeA},
		{"gov.br.", dnswire.TypeNS},
	}
	queries := make([][]byte, 0, len(shapes))
	for i, sh := range shapes {
		wire, err := dnswire.Encode(dnswire.NewQuery(uint16(0x6000+i), sh.name, sh.qtype))
		if err != nil {
			tb.Fatalf("encode workload query %s: %v", sh.name, err)
		}
		queries = append(queries, wire)
	}
	return queries
}

// benchExchangeUDP drives tr with the matched workload: every worker
// draws the next (server, query) pair from a shared counter, exchanges,
// sanity-checks the response header, and releases the buffer if the
// transport pools them. Reports qps alongside the standard ns/op.
func benchExchangeUDP(b *testing.B, tr resolver.Transport, servers []netip.Addr) {
	queries := benchUDPWorkload(b)
	releaser, _ := tr.(resolver.ResponseReleaser)
	// Real scans always run exchanges under a context deadline; carry
	// one (far enough away never to fire) so both transports pay their
	// deadline machinery — per-socket SetDeadline on dial, the shared
	// timer wheel on batch — instead of skipping it.
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(time.Hour))
	defer cancel()

	warm := func(n int) {
		for i := 0; i < n; i++ {
			resp, err := tr.Exchange(ctx, servers[i%len(servers)], queries[i%len(queries)])
			if err != nil {
				b.Fatalf("warmup exchange: %v", err)
			}
			if releaser != nil {
				releaser.ReleaseResponse(resp)
			}
		}
	}
	warm(4 * benchUDPServers * len(queries))

	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(benchUDPWorkers)
	for w := 0; w < benchUDPWorkers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(b.N) {
					return
				}
				resp, err := tr.Exchange(ctx, servers[i%int64(len(servers))], queries[i%int64(len(queries))])
				if err != nil {
					b.Errorf("exchange %d: %v", i, err)
					return
				}
				if len(resp) < 12 {
					b.Errorf("runt response: %d bytes", len(resp))
				}
				if releaser != nil {
					releaser.ReleaseResponse(resp)
				}
			}
		}()
	}
	wg.Wait()
	b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "qps")
}

func sortedServers(override map[netip.Addr]netip.AddrPort) []netip.Addr {
	servers := make([]netip.Addr, 0, len(override))
	for a := range override {
		servers = append(servers, a)
	}
	for i := 1; i < len(servers); i++ { // insertion sort: deterministic order
		for j := i; j > 0 && servers[j].Less(servers[j-1]); j-- {
			servers[j], servers[j-1] = servers[j-1], servers[j]
		}
	}
	return servers
}

// BenchmarkTransportDialUDP is the reference side: one dialed socket per
// exchange, the slow portable path real scans can fall back to with
// govscan -transport=dial.
func BenchmarkTransportDialUDP(b *testing.B) {
	override := benchUDPWorld(b)
	tr := &authserver.UDPTransport{AddrOverride: override}
	benchExchangeUDP(b, tr, sortedServers(override))
}

// BenchmarkTransportBatchUDP is the batched side: the default
// real-network transport. Beyond qps, it reports the measured
// syscalls/query ((send+recv datagrams − syscalls saved) / exchanges)
// and the mean receive batch size from the transport's own counters.
func BenchmarkTransportBatchUDP(b *testing.B) {
	override := benchUDPWorld(b)
	tr, err := udpx.New(udpx.Config{AddrOverride: override})
	if err != nil {
		b.Fatalf("udpx.New: %v", err)
	}
	defer func() { _ = tr.Close() }()
	benchExchangeUDP(b, tr, sortedServers(override))
	s := tr.Stats()
	if s.Exchanges > 0 {
		syscalls := float64(s.SendDatagrams+s.RecvDatagrams) - float64(s.SyscallsSaved)
		b.ReportMetric(syscalls/float64(s.Exchanges), "syscalls/query")
	}
	if s.RecvBatches > 0 {
		b.ReportMetric(float64(s.RecvDatagrams)/float64(s.RecvBatches), "dgrams/recvbatch")
	}
}
