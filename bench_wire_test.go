package govdns

// Wire-path memory benchmarks (see DESIGN.md § 10): the zero-alloc
// tentpole's headline numbers. BenchmarkExchange is the steady-state
// codec round a scan performs per exchange — build and encode the query,
// decode the referral response, classify it, re-encode for UDP — all on
// one pooled arena; it must report 0 allocs/op (the hard gate lives in
// internal/dnswire's TestWirePathZeroAlloc). The *Owned variants run the
// same work through the allocating compatibility wrappers, giving the
// before/after pair `make bench-wire` records in BENCH_3.json.
//
// Run: make bench-wire

import (
	"net/netip"
	"testing"

	"govdns/internal/dnsname"
	"govdns/internal/dnswire"
)

// benchReferralWire builds the canonical hot-path packet: a delegation
// with two NS authority records and their A glue.
func benchReferralWire(b *testing.B) []byte {
	b.Helper()
	q := dnswire.NewQuery(0x4242, "city.gov.br.", dnswire.TypeNS)
	resp := dnswire.NewResponse(q)
	resp.Authority = []dnswire.RR{
		{Name: "gov.br.", Class: dnswire.ClassIN, TTL: 3600, Data: dnswire.NSData{Host: "ns1.registro.br."}},
		{Name: "gov.br.", Class: dnswire.ClassIN, TTL: 3600, Data: dnswire.NSData{Host: "ns2.registro.br."}},
	}
	resp.Additional = []dnswire.RR{
		{Name: "ns1.registro.br.", Class: dnswire.ClassIN, TTL: 3600, Data: dnswire.AData{Addr: netip.MustParseAddr("203.0.113.10")}},
		{Name: "ns2.registro.br.", Class: dnswire.ClassIN, TTL: 3600, Data: dnswire.AData{Addr: netip.MustParseAddr("203.0.113.11")}},
	}
	wire, err := dnswire.Encode(resp)
	if err != nil {
		b.Fatalf("Encode: %v", err)
	}
	return wire
}

func BenchmarkExchange(b *testing.B) {
	wire := benchReferralWire(b)
	qname := dnsname.MustParse("city.gov.br")
	a := dnswire.DefaultPool.Get()
	defer a.Finish()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := a.NewQuery(uint16(i), qname, dnswire.TypeNS)
		if _, err := a.Encode(q); err != nil {
			b.Fatal(err)
		}
		m, err := a.Decode(wire)
		if err != nil {
			b.Fatal(err)
		}
		if !m.IsReferral() {
			b.Fatal("response no longer classifies as a referral")
		}
		if _, err := a.EncodeUDP(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeReferral(b *testing.B) {
	wire := benchReferralWire(b)
	a := dnswire.DefaultPool.Get()
	defer a.Finish()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Decode(wire); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecodeReferralOwned is the compatibility wrapper: arena
// decode plus the deep copy that owns every name and payload.
func BenchmarkDecodeReferralOwned(b *testing.B) {
	wire := benchReferralWire(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dnswire.Decode(wire); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeResponse(b *testing.B) {
	wire := benchReferralWire(b)
	a := dnswire.DefaultPool.Get()
	defer a.Finish()
	m, err := a.Decode(wire)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.EncodeUDP(m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEncodeResponseOwned is the compatibility wrapper: arena
// encode plus the copy-out to a fresh heap slice.
func BenchmarkEncodeResponseOwned(b *testing.B) {
	wire := benchReferralWire(b)
	m, err := dnswire.Decode(wire)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dnswire.EncodeUDP(m); err != nil {
			b.Fatal(err)
		}
	}
}
