// Quickstart: generate a small synthetic government-DNS world, run the
// paper's active measurement over it, and print the headline numbers.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"govdns"
)

func main() {
	start := time.Now()
	study, err := govdns.Run(context.Background(), govdns.Options{
		Seed:  7,
		Scale: 0.02, // ~4k domains: a few seconds on a laptop
	})
	if err != nil {
		log.Fatalf("study failed: %v", err)
	}

	funnel, err := study.Funnel()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scanned %d domains in %v; %d answered with NS data\n",
		funnel.Queried, time.Since(start).Round(time.Millisecond), funnel.WithData)

	repl, err := study.Fig8And9()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replication: %.1f%% of domains use >= 2 nameservers (paper: 98.4%%)\n",
		repl.AtLeastTwoPct)
	fmt.Printf("stale singles: %.1f%% of single-NS domains never answered (paper: 60.1%%)\n",
		repl.SingleStalePct)

	lame, err := study.Fig10()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("defective delegations: %.1f%% of domains (paper: 29.5%%)\n",
		lame.AnyDefectPct())

	cons, err := study.Fig13And14()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parent/child agreement: %.1f%% (paper: 76.8%%)\n", cons.EqualPct)

	hijack, err := study.Fig11And12()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hijackable: %d registrable nameserver domains behind %d government domains in %d countries (median price %s)\n",
		len(hijack.AvailableNSDomains), hijack.AffectedDomains, hijack.Countries, hijack.MedianPrice)
}
