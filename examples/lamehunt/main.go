// Lamehunt: audit one country's government namespace for defective
// delegations and hijackable dangling records — the § IV-C workflow as a
// standalone tool. It scans only the chosen country's domains and prints
// each broken delegation with its failing nameservers, then the
// registrable nameserver domains an attacker could buy.
//
//	go run ./examples/lamehunt -country tr
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"govdns/internal/analysis"
	"govdns/internal/dnsname"
	"govdns/internal/measure"
	"govdns/internal/resolver"
	"govdns/internal/worldgen"
)

func main() {
	country := flag.String("country", "tr", "ISO country code to audit")
	scale := flag.Float64("scale", 0.02, "world scale")
	flag.Parse()

	// Build the world directly — this example works below the Study
	// facade to show the substrate APIs.
	world := worldgen.Generate(worldgen.Config{Seed: 7, Scale: *scale})
	active := worldgen.Build(world)

	var countries []analysis.Country
	var suffix dnsname.Name
	for _, c := range world.Countries {
		countries = append(countries, analysis.Country{
			Code: c.Code, Name: c.Name, SubRegion: c.SubRegion, Suffix: c.Suffix,
		})
		if c.Code == *country {
			suffix = c.Suffix
		}
	}
	if suffix == "" {
		log.Fatalf("unknown country code %q", *country)
	}
	mapper := analysis.NewMapper(countries)

	// Scan just this country's slice of the query list.
	var targets []dnsname.Name
	for _, name := range active.QueryList {
		if name.IsSubdomainOf(suffix) {
			targets = append(targets, name)
		}
	}
	fmt.Printf("auditing %d domains under %s\n", len(targets), suffix)

	client := resolver.NewClient(active.Net)
	client.Timeout = 25 * time.Millisecond
	scanner := measure.NewScanner(resolver.NewIterator(client, active.Roots))
	results := scanner.Scan(context.Background(), targets)

	defects := 0
	for _, r := range results {
		if !r.HasDefect() {
			continue
		}
		defects++
		kind := "partial"
		if r.FullyDefective() {
			kind = "FULL"
		}
		if defects <= 15 {
			fmt.Printf("  [%s] %s — dead nameservers: %v\n", kind, r.Domain, r.DefectiveServerHosts())
		}
	}
	if defects > 15 {
		fmt.Printf("  ... and %d more\n", defects-15)
	}
	fmt.Printf("%d of %d domains have defective delegations\n", defects, len(targets))

	risk := analysis.HijackRisks(results, mapper, active.Reg)
	if len(risk.AvailableNSDomains) == 0 {
		fmt.Println("no registrable dangling nameserver domains found")
		return
	}
	fmt.Printf("\nhijackable nameserver domains (%d affected government domains):\n", risk.AffectedDomains)
	for _, nsDomain := range risk.AvailableNSDomains {
		fmt.Printf("  %-40s available for %s\n", nsDomain, active.Reg.Price(nsDomain))
	}
}
