// Longitudinal: the passive-DNS side of the study on its own — ten years
// of provider adoption and single-nameserver trends, no active scanning.
// Shows how to work with the pdns.View API directly.
//
//	go run ./examples/longitudinal
package main

import (
	"fmt"
	"os"

	"govdns"
	"govdns/internal/report"
)

func main() {
	// New (without Run) prepares the world and passive views only.
	study := govdns.New(govdns.Options{Seed: 7, Scale: 0.05})

	years := study.Fig2And3()
	fmt.Printf("PDNS 2011-2020: %d -> %d domains, %d -> %d countries with data\n\n",
		years[0].Domains, years[len(years)-1].Domains,
		years[0].Countries, years[len(years)-1].Countries)

	// Cloud adoption over the decade (Table II trajectory).
	table := report.NewTable("Cloud DNS adoption among government domains",
		"year", "AWS DNS", "cloudflare.com", "Azure DNS", "domaincontrol.com")
	for year := study.StartYear(); year <= study.EndYear(); year++ {
		counts := map[string]int{}
		for _, usage := range study.Table2(year) {
			counts[usage.Label] = usage.Domains
		}
		table.AddRow(year, counts["AWS DNS"], counts["cloudflare.com"],
			counts["Azure DNS"], counts["domaincontrol.com"])
	}
	if err := table.Write(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// The d_1NS churn story (Fig. 6).
	churn := study.Fig6()
	last := churn[len(churn)-1]
	fmt.Printf("single-NS domains: %d in %d; only %.0f%% of the %d cohort remains (paper: 21%%)\n",
		last.Total, last.Year, last.FromBasePct(), study.StartYear())

	// Per-country provider concentration: the paper's gov.cn example.
	fmt.Println("\ngov.cn provider shares in 2020 (paper: hichina 38%, xincache 19%, dns-diy 10.8%):")
	shares := study.GovProviderShare(study.EndYear(), "cn")
	for _, label := range []string{"hichina.com", "xincache.com", "dns-diy.com", "DNSPod"} {
		fmt.Printf("  %-14s %5.1f%%\n", label, shares[label])
	}

	// Where the cloud's customers came from: the decade's migrations.
	flows := study.ProviderFlows(study.StartYear(), study.EndYear())
	fmt.Println("\nlargest hosting migrations 2011 -> 2020:")
	for i, f := range flows {
		if i >= 6 {
			break
		}
		fmt.Printf("  %-18s -> %-18s %d domains\n", f.From, f.To, f.Domains)
	}

	// Top providers by reach, then and now (Table III).
	for _, year := range []int{study.StartYear(), study.EndYear()} {
		fmt.Printf("\ntop providers by countries served, %d:\n", year)
		for i, usage := range study.Table3(year, 5) {
			fmt.Printf("  %d. %-22s %3d countries, %d domains\n",
				i+1, usage.Label, usage.Countries, usage.Domains)
		}
	}
}
