// Liveresolve: the DNS engine over real UDP sockets. Builds the
// miniworld fixture (a hand-crafted root, two TLDs, gov.br and its
// children), serves every authoritative server on 127.0.0.1 high ports,
// and runs the iterative resolver against them — the same code path the
// simulation uses, but through the kernel's network stack.
//
//	go run ./examples/liveresolve
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/netip"
	"time"

	"govdns/internal/authserver"
	"govdns/internal/miniworld"
	"govdns/internal/resolver"
)

func main() {
	world := miniworld.Build()
	fmt.Println(world)

	// Serve each simulated server address on a real local UDP socket,
	// and point the UDP transport's port map at them.
	transport := &authserver.UDPTransport{PortOverride: make(map[netip.Addr]int)}
	opened := 0
	for _, server := range world.Servers {
		for _, addr := range serverAddrs(world, server) {
			udp, err := authserver.ListenUDP("127.0.0.1:0", server)
			if err != nil {
				log.Fatalf("listen: %v", err)
			}
			defer func() { _ = udp.Close() }()
			transport.PortOverride[addr] = udp.Addr().(*net.UDPAddr).Port
			opened++
		}
	}
	fmt.Printf("serving %d authoritative endpoints on 127.0.0.1\n\n", opened)

	// The simulated addresses route to 127.0.0.1:port via the port map;
	// the resolver itself is unchanged.
	realTransport := &loopbackTransport{inner: transport}
	client := resolver.NewClient(realTransport)
	client.Timeout = 300 * time.Millisecond
	it := resolver.NewIterator(client, world.Roots)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	for _, domain := range miniworld.Domains() {
		deleg, err := it.Delegation(ctx, domain)
		if err != nil {
			fmt.Printf("%-24s walk failed: %v\n", domain, err)
			continue
		}
		fmt.Printf("%-24s parent=%s NS=%v\n", domain, deleg.Parent.Zone, deleg.Hosts())
	}

	// One full host resolution for good measure.
	addrs, err := it.ResolveHost(ctx, "ns1.provider.com.")
	if err != nil {
		log.Fatalf("ResolveHost: %v", err)
	}
	fmt.Printf("\nns1.provider.com. resolves to %v (over real UDP)\n", addrs)
}

// loopbackTransport maps each simulated destination address to the local
// UDP listener serving it, and blackholes everything else.
type loopbackTransport struct {
	inner *authserver.UDPTransport
}

func (t *loopbackTransport) Exchange(ctx context.Context, server netip.Addr, query []byte) ([]byte, error) {
	port, ok := t.inner.PortOverride[server]
	if !ok {
		// Unserved address (a deliberately dead nameserver): behave
		// like a blackhole, honouring the deadline.
		<-ctx.Done()
		return nil, ctx.Err()
	}
	loop := netip.MustParseAddr("127.0.0.1")
	redirect := &authserver.UDPTransport{PortOverride: map[netip.Addr]int{loop: port}}
	return redirect.Exchange(ctx, loop, query)
}

// serverAddrs finds the simulated addresses a server is attached to.
func serverAddrs(w *miniworld.World, s *authserver.Server) []netip.Addr {
	var out []netip.Addr
	for _, addr := range allFixtureAddrs() {
		if got, ok := w.Net.ServerAt(addr); ok && got == s && !w.Net.IsBlackholed(addr) {
			// Skip servers that drop everything; leaving their ports
			// closed reproduces the lame behaviour over real UDP too.
			if got.Behavior() == authserver.BehaviorUnresponsive {
				continue
			}
			out = append(out, addr)
		}
	}
	return out
}

func allFixtureAddrs() []netip.Addr {
	return []netip.Addr{
		miniworld.RootAddr, miniworld.TLDBrAddr, miniworld.TLDComAddr,
		miniworld.GovNS1Addr, miniworld.GovNS2Addr,
		miniworld.CityNS1Addr, miniworld.CityNS2Addr,
		miniworld.LameOKAddr, miniworld.LameDeadAddr,
		miniworld.DeadAddr, miniworld.SingleAddr,
		miniworld.ProviderNS1Addr, miniworld.ProviderNS2Addr,
		miniworld.IncNS1Addr, miniworld.IncNS3Addr,
	}
}

// Interface compliance.
var _ resolver.Transport = (*loopbackTransport)(nil)
