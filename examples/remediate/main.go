// Remediate: the paper's § V-B remedies in action. Scan the world,
// propose a remediation plan (CSYNC synchronization, stale-delegation
// removal, registry-lock advisories), apply the automatable part, and
// re-scan to show the improvement in consistency and defective
// delegations.
//
//	go run ./examples/remediate [-force]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"govdns/internal/analysis"
	"govdns/internal/measure"
	"govdns/internal/remedy"
	"govdns/internal/resolver"
	"govdns/internal/worldgen"
)

func main() {
	force := flag.Bool("force", false, "apply syncs even without an immediate-flagged CSYNC (out-of-band confirmation)")
	scale := flag.Float64("scale", 0.01, "world scale")
	flag.Parse()

	world := worldgen.Generate(worldgen.Config{Seed: 21, Scale: *scale})
	active := worldgen.Build(world)
	var countries []analysis.Country
	for _, c := range world.Countries {
		countries = append(countries, analysis.Country{
			Code: c.Code, Name: c.Name, SubRegion: c.SubRegion, Suffix: c.Suffix,
		})
	}
	mapper := analysis.NewMapper(countries)

	scan := func() []*measure.DomainResult {
		client := resolver.NewClient(active.Net)
		client.Timeout = 15 * time.Millisecond
		scanner := measure.NewScanner(resolver.NewIterator(client, active.Roots))
		scanner.Concurrency = 128
		return scanner.Scan(context.Background(), active.QueryList)
	}

	fmt.Printf("scanning %d domains...\n", len(active.QueryList))
	before := scan()
	consBefore := analysis.Consistency(before, mapper)
	lameBefore := analysis.Delegations(before, mapper)
	fmt.Printf("before: P=C %.1f%%, defective delegations %.1f%%\n",
		consBefore.EqualPct, lameBefore.AnyDefectPct())

	plan := remedy.Propose(before, mapper, active.Reg)
	counts := plan.Counts()
	fmt.Printf("\nproposed plan: %d sync-parent, %d remove-stale, %d registry-lock advisories\n",
		counts[remedy.ActionSyncParent], counts[remedy.ActionRemoveStale], counts[remedy.ActionRegistryLock])
	shown := 0
	for _, a := range plan.Actions {
		if a.Kind == remedy.ActionRegistryLock && shown < 5 {
			shown++
			fmt.Printf("  LOCK %s (registrable: %v)\n", a.Domain, a.NSDomains)
		}
	}

	client := resolver.NewClient(active.Net)
	client.Timeout = 15 * time.Millisecond
	applier := &remedy.Applier{Active: active, Client: client, Force: *force}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	outcome, err := applier.Apply(ctx, plan)
	if err != nil {
		log.Fatalf("apply: %v", err)
	}
	fmt.Printf("\napplied %d, deferred %d (no immediate CSYNC), %d advisories, %d failed\n",
		outcome.Applied, outcome.NeedsOutOfBand, outcome.Advisory, outcome.Failed)

	after := scan()
	consAfter := analysis.Consistency(after, mapper)
	lameAfter := analysis.Delegations(after, mapper)
	fmt.Printf("\nafter:  P=C %.1f%% (was %.1f%%), defective delegations %.1f%% (was %.1f%%)\n",
		consAfter.EqualPct, consBefore.EqualPct,
		lameAfter.AnyDefectPct(), lameBefore.AnyDefectPct())
	if !*force {
		fmt.Println("re-run with -force to model out-of-band confirmation of the deferred syncs")
	}
}
