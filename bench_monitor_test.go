package govdns

// BenchmarkMonitorEpoch pins the monitoring daemon's per-epoch overhead
// (DESIGN.md § 14) with three rungs over the same worldgen population,
// 5ms-RTT latency model, and fresh per-epoch scanner:
//
//	bare     the raw checkpointed streaming scan the monitor wraps
//	traced   bare plus the flight recorder the daemon mandates (every
//	         domain records its span tree so alerts can retain it) —
//	         the span-recording cost, pre-existing trace subsystem
//	monitor  a full Monitor.RunEpoch with a baseline installed: per-
//	         result summarization and diffing, alert-log flushing on
//	         every checkpoint, atomic state/trace writes at epoch end
//
// The acceptance bar is monitor within 3% of traced: the monitor
// layer's own machinery must be invisible next to measurement latency.
// The bare/traced gap is the recording cost a -trace govscan run pays
// identically; it is reported here so the daemon's total cost over a
// trace-less scan stays visible rather than hidden in the comparator.
//
// Run: make bench-monitor (writes BENCH_6.json)

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"govdns/internal/measure"
	"govdns/internal/monitor"
	"govdns/internal/resolver"
	"govdns/internal/trace"
	"govdns/internal/worldgen"
)

var (
	monitorBenchOnce   sync.Once
	monitorBenchActive *worldgen.Active
)

func monitorBenchWorld(b *testing.B) *worldgen.Active {
	b.Helper()
	monitorBenchOnce.Do(func() {
		w := worldgen.Generate(worldgen.Config{Seed: 42, Scale: 0.002})
		monitorBenchActive = worldgen.Build(w)
	})
	return monitorBenchActive
}

// newMonitorBenchScanner builds the fresh per-epoch scanner both sides
// pay for: re-measuring an epoch requires cold resolver caches.
func newMonitorBenchScanner(active *worldgen.Active) *measure.Scanner {
	client := resolver.NewClient(&benchLatencyTransport{active.Net, 5 * time.Millisecond})
	client.Timeout = 25 * time.Millisecond
	client.Retries = 1
	sc := measure.NewScanner(resolver.NewIterator(client, active.Roots))
	sc.Concurrency = measure.DefaultConcurrency
	sc.PerDomainParallelism = measure.DefaultPerDomainParallelism
	return sc
}

func BenchmarkMonitorEpoch(b *testing.B) {
	active := monitorBenchWorld(b)
	ctx := context.Background()

	// bareEpoch runs one checkpointed streaming scan, optionally with a
	// fresh flight recorder attached (the "traced" rung).
	bareEpoch := func(b *testing.B, dir string, i int, traced bool) {
		b.Helper()
		out, err := os.Create(filepath.Join(dir, fmt.Sprintf("epoch-%d.jsonl", i)))
		if err != nil {
			b.Fatal(err)
		}
		sw := measure.NewStreamWriter(out, measure.StreamConfig{
			CheckpointPath:  filepath.Join(dir, fmt.Sprintf("epoch-%d.ckpt", i)),
			CheckpointEvery: 256,
			ScanKey:         "bench",
		})
		sc := newMonitorBenchScanner(active)
		if traced {
			sc.Trace = trace.NewFlightRecorder(trace.Config{Pinned: 1024})
		}
		if err := sc.ScanStream(ctx, measure.SliceSource(active.QueryList), sw); err != nil {
			b.Fatal(err)
		}
		if sw.Emitted() != len(active.QueryList) {
			b.Fatalf("emitted %d of %d", sw.Emitted(), len(active.QueryList))
		}
		if err := out.Close(); err != nil {
			b.Fatal(err)
		}
	}

	b.Run("bare", func(b *testing.B) {
		dir := b.TempDir()
		for i := 0; i < b.N; i++ {
			bareEpoch(b, dir, i, false)
		}
		b.ReportMetric(float64(len(active.QueryList)), "domains/op")
	})

	b.Run("traced", func(b *testing.B) {
		dir := b.TempDir()
		for i := 0; i < b.N; i++ {
			bareEpoch(b, dir, i, true)
		}
		b.ReportMetric(float64(len(active.QueryList)), "domains/op")
	})

	b.Run("monitor", func(b *testing.B) {
		m, err := monitor.Open(monitor.Config{
			StateDir: b.TempDir(), ScanKey: "bench", CheckpointEvery: 256,
		})
		if err != nil {
			b.Fatal(err)
		}
		defer m.Close()
		// Untimed baseline epoch: timed epochs must run with the differ
		// active, which is the steady state of a long-lived daemon.
		if _, err := m.RunEpoch(ctx, newMonitorBenchScanner(active), measure.SliceSource(active.QueryList)); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rep, err := m.RunEpoch(ctx, newMonitorBenchScanner(active), measure.SliceSource(active.QueryList))
			if err != nil {
				b.Fatal(err)
			}
			if rep.Domains != len(active.QueryList) {
				b.Fatalf("epoch covered %d of %d", rep.Domains, len(active.QueryList))
			}
		}
		b.ReportMetric(float64(len(active.QueryList)), "domains/op")
	})
}
