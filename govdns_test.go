package govdns

import (
	"context"
	"errors"
	"testing"
	"time"

	"govdns/internal/core"
)

func TestRunEndToEnd(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	s, err := Run(ctx, Options{Seed: 3, Scale: 0.005, QueryTimeout: 10 * time.Millisecond})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	funnel, err := s.Funnel()
	if err != nil {
		t.Fatal(err)
	}
	if funnel.Queried == 0 || funnel.WithData == 0 {
		t.Errorf("funnel = %+v", funnel)
	}
}

func TestNewIsPassiveOnly(t *testing.T) {
	s := New(Options{Seed: 3, Scale: 0.005})
	if got := s.Fig2And3(); len(got) != 10 {
		t.Errorf("Fig2And3 years = %d", len(got))
	}
	if _, err := s.Fig10(); !errors.Is(err, core.ErrNotScanned) {
		t.Errorf("Fig10 before scan: %v", err)
	}
}

func TestOptionsPlumbing(t *testing.T) {
	s := New(Options{Seed: 9, Scale: 0.004, Concurrency: 3,
		QueryTimeout: 7 * time.Millisecond, DisableSecondRound: true, StabilityDays: -1})
	if s.Cfg.Seed != 9 || s.Cfg.Concurrency != 3 {
		t.Errorf("cfg = %+v", s.Cfg)
	}
	if s.Cfg.SecondRound {
		t.Error("second round not disabled")
	}
	// StabilityDays < 0 disables filtering: raw and stable views match.
	if len(s.StableView.Sets) != len(s.RawView.Sets) {
		t.Error("negative StabilityDays still filtered")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	a := New(Options{Seed: 5, Scale: 0.004})
	b := New(Options{Seed: 5, Scale: 0.004})
	ya, yb := a.Fig2And3(), b.Fig2And3()
	for i := range ya {
		if ya[i] != yb[i] {
			t.Fatalf("year %d differs: %+v vs %+v", ya[i].Year, ya[i], yb[i])
		}
	}
}

func TestHijackForensicsViaFacade(t *testing.T) {
	s := New(Options{Seed: 5, Scale: 0.01, HijackEvents: 6})
	found, truth := s.HijackForensics()
	if len(truth) != 6 {
		t.Fatalf("injected %d events, want 6", len(truth))
	}
	flagged := make(map[string]bool)
	for _, tr := range found {
		flagged[string(tr.Domain)+"|"+string(tr.NSDomain)] = true
	}
	for _, ev := range truth {
		if !flagged[string(ev.Domain)+"|"+string(ev.AttackerDomain)] {
			t.Errorf("missed injected hijack %+v", ev)
		}
	}
}

func TestProviderFlowsViaFacade(t *testing.T) {
	s := New(Options{Seed: 5, Scale: 0.01})
	flows := s.ProviderFlows(s.StartYear(), s.EndYear())
	if len(flows) == 0 {
		t.Fatal("no flows over the decade")
	}
	for i := 1; i < len(flows); i++ {
		if flows[i].Domains > flows[i-1].Domains {
			t.Fatal("flows not sorted by volume")
		}
	}
}
