package govdns_test

import (
	"context"
	"fmt"
	"log"
	"time"

	"govdns"
)

// ExampleRun executes the full study at a tiny scale and reads one
// headline number.
func ExampleRun() {
	study, err := govdns.Run(context.Background(), govdns.Options{
		Seed:         1,
		Scale:        0.003,
		QueryTimeout: 10 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	years := study.Fig2And3()
	fmt.Println("study years:", len(years))
	repl, err := study.Fig8And9()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("most domains replicated:", repl.AtLeastTwoPct > 90)
	// Output:
	// study years: 10
	// most domains replicated: true
}

// ExampleNew prepares the passive side only — no scan — which is enough
// for the longitudinal analyses.
func ExampleNew() {
	study := govdns.New(govdns.Options{Seed: 1, Scale: 0.003})
	counts := study.Fig4()
	fmt.Println("countries with 2020 data:", len(counts) > 50)
	// Output:
	// countries with 2020 data: true
}
