package govdns

// One benchmark per table and figure of the paper (see DESIGN.md § 3),
// plus the ablation benches for the design choices the paper motivates:
// the 7-day PDNS stability filter, the second measurement round, and the
// mode-of-daily-counts yearly representative. Each bench regenerates its
// experiment's rows from the shared study.
//
// Run: go test -bench=. -benchmem

import (
	"context"
	"net/netip"
	"sync"
	"testing"
	"time"

	"govdns/internal/analysis"
	"govdns/internal/dnswire"
	"govdns/internal/measure"
	"govdns/internal/obs"
	"govdns/internal/pdns"
	"govdns/internal/resolver"
	"govdns/internal/stats"
	"govdns/internal/trace"
)

var (
	benchOnce  sync.Once
	benchStudy *Study
)

// study returns the shared, fully scanned benchmark study.
func study(b *testing.B) *Study {
	b.Helper()
	benchOnce.Do(func() {
		s := New(Options{Seed: 42, Scale: 0.02, QueryTimeout: 10 * time.Millisecond, Concurrency: 128})
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
		defer cancel()
		if err := s.RunActive(ctx); err != nil {
			panic(err)
		}
		benchStudy = s
	})
	return benchStudy
}

func BenchmarkFig2PDNSGrowth(b *testing.B) {
	// Call the corpus directly: the Study memoizes Fig2And3, and this
	// bench must measure the per-call aggregation, not the cache. The
	// corpus itself is compiled outside the timer — that one-time cost
	// is BenchmarkCorpusCompile's subject.
	s := study(b)
	c := s.Corpus()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		years := c.Yearly()
		if years[len(years)-1].Domains == 0 {
			b.Fatal("empty final year")
		}
	}
}

// BenchmarkFig2PDNSGrowthReference measures the retained view-based
// slow path — the before side of the corpus speedup, kept runnable so
// the comparison never goes stale.
func BenchmarkFig2PDNSGrowthReference(b *testing.B) {
	s := study(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		years := analysis.PDNSYearly(s.StableView, s.Mapper, s.StartYear(), s.EndYear())
		if years[len(years)-1].Domains == 0 {
			b.Fatal("empty final year")
		}
	}
}

// BenchmarkCorpusCompile measures the one-time corpus build the fast
// figure paths amortize: interning, rdata parsing, memoized country
// and privateness columns, and the difference-array mode sweep.
func BenchmarkCorpusCompile(b *testing.B) {
	s := study(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := analysis.CompileCorpus(s.StableView, s.Mapper, s.StartYear(), s.EndYear())
		if c.NumDomains() == 0 {
			b.Fatal("empty corpus")
		}
	}
}

func BenchmarkFig3NameserverGrowth(b *testing.B) {
	s := study(b)
	c := s.Corpus()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hosts := c.NameserversPerYear()
		for i, n := range hosts {
			if n == 0 {
				b.Fatalf("no nameservers in %d", s.StartYear()+i)
			}
		}
	}
}

// BenchmarkFig3NameserverGrowthReference measures the extracted
// view-based library implementation (previously an inline loop here).
func BenchmarkFig3NameserverGrowthReference(b *testing.B) {
	s := study(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hosts := analysis.NameserversPerYear(s.StableView, s.StartYear(), s.EndYear())
		for i, n := range hosts {
			if n == 0 {
				b.Fatalf("no nameservers in %d", s.StartYear()+i)
			}
		}
	}
}

func BenchmarkFig4DomainsPerCountry(b *testing.B) {
	s := study(b)
	s.Corpus() // compiled outside the timer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(s.Fig4()) == 0 {
			b.Fatal("no countries")
		}
	}
}

func BenchmarkFig6SingleNSChurn(b *testing.B) {
	s := study(b)
	s.Corpus() // compiled outside the timer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		churn := s.Fig6()
		if len(churn) == 0 {
			b.Fatal("no churn data")
		}
	}
}

func BenchmarkFig7PrivateDeployment(b *testing.B) {
	s := study(b)
	c := s.Corpus()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, y := range c.Yearly() {
			if y.PrivateSinglePct() < y.PrivateAllPct() {
				b.Fatalf("%d: private singles (%.1f%%) below all-domain private (%.1f%%)",
					y.Year, y.PrivateSinglePct(), y.PrivateAllPct())
			}
		}
	}
}

func BenchmarkFig8StaleSingleNS(b *testing.B) {
	s := study(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ar := analysis.ReplicationActive(s.Results, s.Mapper)
		if len(ar.SingleStaleByCountry) == 0 {
			b.Fatal("no per-country stale data")
		}
	}
}

func BenchmarkFig9ReplicationCDF(b *testing.B) {
	s := study(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ar := analysis.ReplicationActive(s.Results, s.Mapper)
		if last := ar.NSCountCDF[len(ar.NSCountCDF)-1]; last.Fraction != 1 {
			b.Fatalf("CDF does not close: %v", last)
		}
	}
}

func BenchmarkTable1Diversity(b *testing.B) {
	s := study(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := s.Table1()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 11 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

func BenchmarkTable2MajorProviders(b *testing.B) {
	s := study(b)
	s.Corpus() // compiled outside the timer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, year := range []int{s.StartYear(), s.EndYear()} {
			if len(s.Table2(year)) != 8 {
				b.Fatal("major provider rows != 8")
			}
		}
	}
}

func BenchmarkTable3TopProviders(b *testing.B) {
	s := study(b)
	s.Corpus() // compiled outside the timer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, year := range []int{s.StartYear(), s.EndYear()} {
			if len(s.Table3(year, 11)) == 0 {
				b.Fatal("no top providers")
			}
		}
	}
}

func BenchmarkFig10DefectiveDelegations(b *testing.B) {
	s := study(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ds, err := s.Fig10()
		if err != nil {
			b.Fatal(err)
		}
		if ds.AnyDefect == 0 {
			b.Fatal("no defects found")
		}
	}
}

func BenchmarkFig11HijackableDomains(b *testing.B) {
	s := study(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hr, err := s.Fig11And12()
		if err != nil {
			b.Fatal(err)
		}
		if len(hr.AvailableNSDomains) == 0 {
			b.Fatal("no hijackable domains")
		}
	}
}

func BenchmarkFig12RegistrationCost(b *testing.B) {
	s := study(b)
	hr, err := s.Fig11And12()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prices := s.Active.Reg.Quote(hr.AvailableNSDomains)
		if len(prices) != len(hr.AvailableNSDomains) {
			b.Fatal("quote length mismatch")
		}
	}
}

func BenchmarkFig13Consistency(b *testing.B) {
	s := study(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cs, err := s.Fig13And14()
		if err != nil {
			b.Fatal(err)
		}
		if cs.Responsive == 0 {
			b.Fatal("no responsive domains")
		}
		if _, err := s.InconsistencyHijacks(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig14DisagreementDistribution(b *testing.B) {
	s := study(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cs, err := s.Fig13And14()
		if err != nil {
			b.Fatal(err)
		}
		rates := make([]float64, 0, len(cs.DisagreementPerCountry))
		for _, pct := range cs.DisagreementPerCountry {
			rates = append(rates, pct)
		}
		if _, ok := stats.Percentile(rates, 90); !ok {
			b.Fatal("no disagreement distribution")
		}
	}
}

// --- Ablations ---

// BenchmarkAblationStabilityFilter compares the PDNS analyses with and
// without the 7-day stability filter; without it, transient records
// inflate the population (§ III-C's motivation).
func BenchmarkAblationStabilityFilter(b *testing.B) {
	s := study(b)
	rawCorpus, stableCorpus := s.RawCorpus(), s.Corpus()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		raw := rawCorpus.Yearly()
		filtered := stableCorpus.Yearly()
		last := len(raw) - 1
		if raw[last].Domains < filtered[last].Domains {
			b.Fatal("filter added domains")
		}
	}
	raw := rawCorpus.Yearly()
	filtered := stableCorpus.Yearly()
	last := len(raw) - 1
	b.ReportMetric(float64(raw[last].Domains-filtered[last].Domains), "transient-domains")
}

// BenchmarkAblationSecondRound measures the lame-delegation
// overestimation when the second measurement round is disabled, over a
// sample of domains (the paper re-ran queries to rule out transient
// failures).
func BenchmarkAblationSecondRound(b *testing.B) {
	s := study(b)
	sample := s.Active.QueryList
	if len(sample) > 300 {
		sample = sample[:300]
	}
	ctx := context.Background()
	newScanner := func(secondRound bool) *measure.Scanner {
		client := resolver.NewClient(s.Active.Net)
		client.Timeout = 10 * time.Millisecond
		client.Retries = 1
		sc := measure.NewScanner(resolver.NewIterator(client, s.Active.Roots))
		sc.Concurrency = 128
		sc.SecondRound = secondRound
		return sc
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		withRetry := newScanner(true).Scan(ctx, sample)
		withoutRetry := newScanner(false).Scan(ctx, sample)
		full1, full2 := 0, 0
		for j := range sample {
			if withRetry[j].FullyDefective() {
				full1++
			}
			if withoutRetry[j].FullyDefective() {
				full2++
			}
		}
		if full2 < full1 {
			b.Fatal("second round increased defect count")
		}
	}
}

// BenchmarkAblationModeVsMax compares the paper's mode-of-daily-counts
// yearly NS representative with a max-based alternative: max overcounts
// replication whenever a domain briefly carried extra records.
func BenchmarkAblationModeVsMax(b *testing.B) {
	s := study(b)
	year := s.EndYear()
	byDomain := make(map[string][]pdns.RecordSet)
	for _, rs := range s.StableView.Sets {
		if rs.RRType == dnswire.TypeNS {
			byDomain[string(rs.RRName)] = append(byDomain[string(rs.RRName)], rs)
		}
	}
	b.ResetTimer()
	var overcounted int
	for i := 0; i < b.N; i++ {
		overcounted = 0
		for _, sets := range byDomain {
			daily := analysis.NSDaily(sets, year)
			if len(daily) == 0 {
				continue
			}
			mode, _ := stats.Mode(daily)
			maxVal := daily[0]
			for _, v := range daily {
				if v > maxVal {
					maxVal = v
				}
			}
			if maxVal < mode {
				b.Fatal("max below mode")
			}
			// Domains whose replication a max-based representative
			// would overcount: migration cache tails briefly double
			// the visible NS set.
			if maxVal > mode {
				overcounted++
			}
		}
	}
	b.ReportMetric(float64(overcounted), "max-overcounted-domains")
}

// benchLatencyTransport models a realistic per-query round-trip on top of
// the zero-latency simnet. Real scans are wait-dominated — RTTs of
// milliseconds to tens of milliseconds, and multi-attempt timeout windows
// on every defective domain — and that waiting is exactly what the scan
// concurrency exists to overlap, so the pipeline benchmark must include
// it to measure anything real.
type benchLatencyTransport struct {
	inner resolver.Transport
	delay time.Duration
}

func (l *benchLatencyTransport) Exchange(ctx context.Context, server netip.Addr, query []byte) ([]byte, error) {
	t := time.NewTimer(l.delay)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-t.C:
	}
	return l.inner.Exchange(ctx, server, query)
}

// BenchmarkScanPipeline measures the full bulk-scan hot path over the
// study's query list at Scale=0.02 under a 5ms-RTT latency model with the
// default 25ms lameness-detection timeout. Each iteration uses a fresh
// iterator so cache warm-up, singleflight coalescing, and the per-domain
// probe pipeline are all measured, exactly as a real scan pays for them.
//
// Sub-benchmarks:
//   - serial: the pre-fan-out pipeline exactly as previously shipped —
//     64 workers, per-domain serial probing, no resolution coalescing,
//     fixed server order, serial zone builds.
//   - serial-c128: the same serial pipeline pushed to 128 workers, to
//     separate what plain worker scaling buys from what the per-domain
//     fan-out buys.
//   - parallel: the current defaults — 128 workers × fan-out 8, with
//     coalescing, adaptive server ordering, and concurrent zone builds.
//
// The serial→parallel delta is the shipped-configuration improvement this
// refactor delivers; serial-c128→parallel isolates the intra-domain
// fan-out itself, whose ceiling is set by the population (defective
// domains with a single nameserver have nothing to overlap — their full
// timeout window is the pipeline's Amdahl floor).
func BenchmarkScanPipeline(b *testing.B) {
	s := study(b)
	ctx := context.Background()
	run := func(b *testing.B, workers, fanout int, seedBaseline, metrics, traced bool) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			client := resolver.NewClient(&benchLatencyTransport{s.Active.Net, 5 * time.Millisecond})
			client.Timeout = 25 * time.Millisecond
			client.Retries = 1
			var reg *obs.Registry
			if metrics {
				reg = obs.NewRegistry()
				client.SetMetrics(resolver.NewMetrics(reg))
			}
			it := resolver.NewIterator(client, s.Active.Roots)
			if seedBaseline {
				it.Coalesce = false
				it.AdaptiveOrder = false
				it.BuildFanout = 1
			}
			sc := measure.NewScanner(it)
			sc.Concurrency = workers
			sc.PerDomainParallelism = fanout
			if metrics {
				sc.Metrics = measure.NewScanMetrics(reg)
			}
			if traced {
				sc.Trace = trace.NewFlightRecorder(trace.Config{})
			}
			results := sc.Scan(ctx, s.Active.QueryList)
			if len(results) != len(s.Active.QueryList) {
				b.Fatalf("got %d results for %d domains", len(results), len(s.Active.QueryList))
			}
			responsive := 0
			for _, r := range results {
				if r.Responsive() {
					responsive++
				}
			}
			if responsive == 0 {
				b.Fatal("no responsive domains")
			}
		}
		b.ReportMetric(float64(len(s.Active.QueryList)), "domains/op")
	}
	b.Run("serial", func(b *testing.B) { run(b, 64, 1, true, false, false) })
	b.Run("serial-c128", func(b *testing.B) { run(b, 128, 1, true, false, false) })
	b.Run("parallel", func(b *testing.B) {
		run(b, measure.DefaultConcurrency, measure.DefaultPerDomainParallelism, false, false, false)
	})
	// parallel-metrics is the observability overhead gate: the same
	// configuration as parallel with the full instrument set attached
	// (resolver RTT histogram, per-server outcomes, stage histograms).
	// The acceptance bar is < 3% regression against parallel.
	b.Run("parallel-metrics", func(b *testing.B) {
		run(b, measure.DefaultConcurrency, measure.DefaultPerDomainParallelism, false, true, false)
	})
	// parallel-traced is the tracing overhead gate: the same configuration
	// as parallel with a default-bucket flight recorder attached, so every
	// domain records a full span tree and offers it for retention. The
	// acceptance bar is < 3% regression against parallel (tracing is also
	// digest-passive; TestTraceDigestInvariance pins that part).
	b.Run("parallel-traced", func(b *testing.B) {
		run(b, measure.DefaultConcurrency, measure.DefaultPerDomainParallelism, false, false, true)
	})
}

// --- Substrate micro-benchmarks ---

func BenchmarkWireEncodeDecode(b *testing.B) {
	query := dnswire.NewQuery(1, "city.gov.br.", dnswire.TypeNS)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wire, err := dnswire.Encode(query)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := dnswire.Decode(wire); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScanDomain(b *testing.B) {
	s := study(b)
	client := resolver.NewClient(s.Active.Net)
	client.Timeout = 10 * time.Millisecond
	scanner := measure.NewScanner(resolver.NewIterator(client, s.Active.Roots))
	// Pick a healthy domain so the bench measures the pipeline, not
	// timeout waits.
	var target = s.Active.QueryList[0]
	for _, d := range s.World.Domains {
		if d.Died == 0 && !d.SingleNS {
			target = d.Name
			break
		}
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := scanner.ScanDomain(ctx, target)
		if !r.ParentResponded {
			b.Fatalf("scan of %s failed: %s", target, r.Err)
		}
	}
}

func BenchmarkIterativeResolve(b *testing.B) {
	s := study(b)
	ctx := context.Background()
	client := resolver.NewClient(s.Active.Net)
	client.Timeout = 10 * time.Millisecond
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Fresh iterator each time: measures uncached full walks.
		it := resolver.NewIterator(client, s.Active.Roots)
		if _, err := it.Delegation(ctx, "gov.br."); err != nil {
			b.Fatal(err)
		}
	}
}
