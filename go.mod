module govdns

go 1.22
