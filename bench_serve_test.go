package govdns

// Serving-tier benchmarks (see DESIGN.md § 11): the authoritative
// server's per-query cost over the two transports the study exercises —
// the in-memory wire path (HandleWireAppend, the same entry the simnet
// and the UDP read loop use) and a real loopback UDP socket round trip.
// Each transport runs the same repeated-query workload with the response
// cache on and off; BENCH_4.json records the pairs, and the acceptance
// bar is cache-on ≥ 2× cache-off on the in-memory pair at 0 allocs/op
// for the cached path (the hard gate is TestServeCachedZeroAlloc in
// internal/authserver, run by `make test`).
//
// Run: make bench-serve

import (
	"fmt"
	"net"
	"net/netip"
	"testing"

	"govdns/internal/authserver"
	"govdns/internal/dnsname"
	"govdns/internal/dnswire"
	"govdns/internal/zone"
)

// benchServeZone is the serving fixture: routine singleton answers plus
// a TXT-heavy name, so the uncached path pays a realistic render (name
// compression, multi-record sections), not a degenerate one-record one.
func benchServeZone(tb testing.TB) *zone.Zone {
	tb.Helper()
	z := zone.New("gov.br.")
	records := []dnswire.RR{
		{Name: "gov.br.", Class: dnswire.ClassIN, TTL: 3600, Data: dnswire.SOAData{
			MName: "ns1.gov.br.", RName: "hostmaster.gov.br.", Serial: 1}},
		{Name: "gov.br.", Class: dnswire.ClassIN, TTL: 3600, Data: dnswire.NSData{Host: "ns1.gov.br."}},
		{Name: "gov.br.", Class: dnswire.ClassIN, TTL: 3600, Data: dnswire.NSData{Host: "ns2.gov.br."}},
		{Name: "ns1.gov.br.", Class: dnswire.ClassIN, TTL: 3600, Data: dnswire.AData{Addr: netip.MustParseAddr("198.51.100.1")}},
		{Name: "ns2.gov.br.", Class: dnswire.ClassIN, TTL: 3600, Data: dnswire.AData{Addr: netip.MustParseAddr("198.51.100.2")}},
		{Name: "www.gov.br.", Class: dnswire.ClassIN, TTL: 300, Data: dnswire.AData{Addr: netip.MustParseAddr("192.0.2.80")}},
		{Name: "mail.gov.br.", Class: dnswire.ClassIN, TTL: 300, Data: dnswire.AData{Addr: netip.MustParseAddr("192.0.2.25")}},
	}
	for i := 0; i < 12; i++ {
		records = append(records, dnswire.RR{
			Name: "api.gov.br.", Class: dnswire.ClassIN, TTL: 300,
			Data: dnswire.TXTData{Strings: []string{fmt.Sprintf("v=bench; endpoint=%02d; some descriptive padding text", i)}},
		})
	}
	for _, rr := range records {
		z.MustAdd(rr)
	}
	return z
}

func benchServer(tb testing.TB, cached bool) *authserver.Server {
	tb.Helper()
	s := authserver.New("ns1.gov.br.")
	s.AddZone(benchServeZone(tb))
	if cached {
		s.SetCache(authserver.NewResponseCache())
	}
	return s
}

// benchWorkload is the repeated-query stream: a small set of distinct
// (name, type, EDNS) shapes cycled with varying IDs, the steady state a
// busy authoritative sees once resolvers converge on the popular names.
func benchWorkload(tb testing.TB) [][]byte {
	tb.Helper()
	shapes := []struct {
		name  dnsname.Name
		qtype dnswire.Type
		edns  uint16
	}{
		{"www.gov.br.", dnswire.TypeA, 0},
		{"api.gov.br.", dnswire.TypeTXT, 1232},
		{"mail.gov.br.", dnswire.TypeA, 1232},
		{"gov.br.", dnswire.TypeNS, 0},
	}
	queries := make([][]byte, 0, len(shapes))
	for i, sh := range shapes {
		q := dnswire.NewQuery(uint16(0x5000+i), sh.name, sh.qtype)
		if sh.edns > 0 {
			q.Additional = append(q.Additional, dnswire.OPTRecord(sh.edns))
		}
		wire, err := dnswire.Encode(q)
		if err != nil {
			tb.Fatalf("encode workload query %s: %v", sh.name, err)
		}
		queries = append(queries, wire)
	}
	return queries
}

func benchServeInMemory(b *testing.B, cached bool) {
	s := benchServer(b, cached)
	queries := benchWorkload(b)
	dst := make([]byte, 0, 2048)
	for _, q := range queries { // warm cache + arena pool
		out, ok := s.HandleWireAppend(dst[:0], q)
		if !ok {
			b.Fatal("warmup query dropped")
		}
		dst = out
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, ok := s.HandleWireAppend(dst[:0], queries[i%len(queries)])
		if !ok {
			b.Fatal("query dropped")
		}
		dst = out
	}
}

func BenchmarkServeInMemoryCached(b *testing.B)   { benchServeInMemory(b, true) }
func BenchmarkServeInMemoryUncached(b *testing.B) { benchServeInMemory(b, false) }

func benchServeUDP(b *testing.B, cached bool) {
	us, err := authserver.ListenUDP("127.0.0.1:0", benchServer(b, cached))
	if err != nil {
		b.Fatalf("listen: %v", err)
	}
	defer func() { _ = us.Close() }()

	// One persistent connected socket: the benchmark measures the serving
	// round trip, not per-query dialing.
	conn, err := net.Dial("udp", us.Addr().String())
	if err != nil {
		b.Fatalf("dial: %v", err)
	}
	defer func() { _ = conn.Close() }()

	queries := benchWorkload(b)
	buf := make([]byte, 4096)
	exchange := func(q []byte) {
		if _, err := conn.Write(q); err != nil {
			b.Fatalf("send: %v", err)
		}
		n, err := conn.Read(buf)
		if err != nil {
			b.Fatalf("recv: %v", err)
		}
		if n < 12 || buf[0] != q[0] || buf[1] != q[1] {
			b.Fatalf("response mismatch: %d bytes, id % x vs % x", n, buf[:2], q[:2])
		}
	}
	for _, q := range queries { // warm cache + arena pool
		exchange(q)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exchange(queries[i%len(queries)])
	}
}

func BenchmarkServeUDPCached(b *testing.B)   { benchServeUDP(b, true) }
func BenchmarkServeUDPUncached(b *testing.B) { benchServeUDP(b, false) }
