// Package govdns reproduces "A Comprehensive, Longitudinal Study of
// Government DNS Deployment at Global Scale" (DSN 2022) as a runnable Go
// library: a synthetic global government-DNS world, a passive-DNS decade
// of history, the paper's active measurement pipeline, and every § IV
// analysis.
//
// The one-call entry point:
//
//	study, err := govdns.Run(context.Background(), govdns.Options{Scale: 0.1})
//	...
//	study.WriteReport(os.Stdout)
//
// Run generates the world (193 countries, calibrated deployment and
// misconfiguration rates), executes the bulk scan against the simulated
// Internet, and returns a Study exposing one method per table and figure
// of the paper. For finer control use the internal packages through the
// Study's fields (World, Active, Results).
package govdns

import (
	"context"
	"fmt"
	"time"

	"govdns/internal/core"
	"govdns/internal/obs"
	"govdns/internal/trace"
)

// Options configures a reproduction run. The zero value runs at 1/10 of
// the paper's scale with the paper's methodology (7-day stability
// filter, second measurement round).
type Options struct {
	// Seed drives all generation; runs with equal seeds are identical.
	Seed int64
	// Scale multiplies the population (1.0 = the paper's ~190k PDNS
	// domains; default 0.1).
	Scale float64
	// Concurrency bounds in-flight scan queries (default 64).
	Concurrency int
	// PerDomainParallelism bounds the scanner's intra-domain fan-out
	// (default 8; 1 = serial per-domain behaviour).
	PerDomainParallelism int
	// QueryTimeout bounds each query attempt (default 25ms against the
	// in-memory network).
	QueryTimeout time.Duration
	// DisableSecondRound turns off the paper's transient-failure retry.
	DisableSecondRound bool
	// StabilityDays overrides the PDNS stability filter (default 7
	// days; negative disables).
	StabilityDays int
	// HijackEvents injects historical takeover episodes into the PDNS
	// record for the hijack-forensics analysis (0 = none).
	HijackEvents int
	// Metrics, when non-nil, instruments the scan pipeline (resolver,
	// iterator, scanner) on the given registry. Recording never changes
	// scan results; serve the registry with obs.Handler or snapshot it
	// with Registry.Snapshot.
	Metrics *obs.Registry
	// Trace, when non-nil, records every domain's measurement as a
	// span tree and retains exemplars (slowest domains, Error/Transient
	// domains, classification flips). Like Metrics it never changes
	// scan results; export retained traces with
	// FlightRecorder.WriteJSONL and render them with cmd/govtrace.
	Trace *FlightRecorder
}

// Study is the completed reproduction: see the methods on core.Study
// (Fig2And3, Table1, Fig10, WriteReport, ...).
type Study = core.Study

// MetricsRegistry is the observability registry the pipeline records
// into (re-exported so callers outside the module can construct one).
type MetricsRegistry = obs.Registry

// NewMetricsRegistry builds an empty registry for Options.Metrics.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// FlightRecorder is the resolution-trace flight recorder (re-exported
// for Options.Trace).
type FlightRecorder = trace.FlightRecorder

// NewFlightRecorder builds a flight recorder with default retention
// (16 slowest domains, 512 Error/Transient exemplars, 128
// classification flips) for Options.Trace.
func NewFlightRecorder() *FlightRecorder { return trace.NewFlightRecorder(trace.Config{}) }

// Config is re-exported for callers constructing studies directly.
type Config = core.Config

// New generates the world and passive views without running the active
// scan (useful for passive-only analyses; active methods return
// core.ErrNotScanned until RunActive).
func New(opts Options) *Study {
	return core.NewStudy(core.Config{
		Seed:                 opts.Seed,
		Scale:                opts.Scale,
		Concurrency:          opts.Concurrency,
		PerDomainParallelism: opts.PerDomainParallelism,
		QueryTimeout:         opts.QueryTimeout,
		Retries:              0,
		SecondRound:          !opts.DisableSecondRound,
		StabilityDays:        opts.StabilityDays,
		HijackEvents:         opts.HijackEvents,
		Metrics:              opts.Metrics,
		Trace:                opts.Trace,
	})
}

// Run executes the full study: generation, passive preparation, and the
// active scan.
func Run(ctx context.Context, opts Options) (*Study, error) {
	s := New(opts)
	if err := s.RunActive(ctx); err != nil {
		return nil, fmt.Errorf("govdns: active scan: %w", err)
	}
	return s, nil
}
