package measure

import (
	"bytes"
	"context"
	"net/netip"
	"sort"
	"sync"
	"testing"
	"time"

	"govdns/internal/dnsname"
	"govdns/internal/dnswire"
	"govdns/internal/miniworld"
	"govdns/internal/resolver"
)

func newScanner(t *testing.T) (*miniworld.World, *Scanner) {
	t.Helper()
	w := miniworld.Build()
	c := resolver.NewClient(w.Net)
	c.Timeout = 20 * time.Millisecond
	c.Retries = 1
	return w, NewScanner(resolver.NewIterator(c, w.Roots))
}

func scanCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestScanHealthyDomain(t *testing.T) {
	_, s := newScanner(t)
	r := s.ScanDomain(scanCtx(t), "city.gov.br.")
	if !r.ParentResponded || !r.HasData() {
		t.Fatalf("result: %+v", r)
	}
	if r.ParentZone != "gov.br." {
		t.Errorf("ParentZone = %q", r.ParentZone)
	}
	if len(r.ParentNS) != 2 {
		t.Fatalf("ParentNS = %v", r.ParentNS)
	}
	if !r.Responsive() || r.HasDefect() {
		t.Errorf("healthy domain flagged defective: %+v", r.Servers)
	}
	child := r.ChildNS()
	if len(child) != 2 || child[0] != "ns1.city.gov.br." {
		t.Errorf("ChildNS = %v", child)
	}
	if r.NSCount() != 2 {
		t.Errorf("NSCount = %d", r.NSCount())
	}
	if got := len(r.AllAddrs()); got != 2 {
		t.Errorf("AllAddrs = %d", got)
	}
	if r.Rounds != 1 {
		t.Errorf("Rounds = %d", r.Rounds)
	}
}

func TestScanPartiallyLame(t *testing.T) {
	_, s := newScanner(t)
	r := s.ScanDomain(scanCtx(t), "lame.gov.br.")
	if !r.PartiallyDefective() {
		t.Fatalf("lame.gov.br not partially defective: %+v", r.Servers)
	}
	if r.FullyDefective() {
		t.Error("lame.gov.br flagged fully defective")
	}
	bad := r.DefectiveServerHosts()
	if len(bad) != 1 || bad[0] != "ns2.lame.gov.br." {
		t.Errorf("DefectiveServerHosts = %v", bad)
	}
}

func TestScanFullyLameRunsSecondRound(t *testing.T) {
	_, s := newScanner(t)
	r := s.ScanDomain(scanCtx(t), "dead.gov.br.")
	if !r.FullyDefective() {
		t.Fatalf("dead.gov.br not fully defective: %+v", r)
	}
	if r.Rounds != 2 {
		t.Errorf("Rounds = %d, want 2 (second-round retry)", r.Rounds)
	}
	if r.Responsive() {
		t.Error("dead domain responsive")
	}
}

func TestScanSecondRoundDisabled(t *testing.T) {
	_, s := newScanner(t)
	s.SecondRound = false
	r := s.ScanDomain(scanCtx(t), "dead.gov.br.")
	if r.Rounds != 1 {
		t.Errorf("Rounds = %d, want 1", r.Rounds)
	}
}

func TestScanSingleNS(t *testing.T) {
	_, s := newScanner(t)
	r := s.ScanDomain(scanCtx(t), "single.gov.br.")
	if r.NSCount() != 1 {
		t.Errorf("NSCount = %d, want 1", r.NSCount())
	}
	if !r.Responsive() {
		t.Error("single.gov.br not responsive")
	}
}

func TestScanInconsistent(t *testing.T) {
	_, s := newScanner(t)
	r := s.ScanDomain(scanCtx(t), "inconsistent.gov.br.")
	if !r.HasData() {
		t.Fatalf("no data: %+v", r)
	}
	p, c := r.ParentNS, r.ChildNS()
	if len(p) != 2 || len(c) != 2 {
		t.Fatalf("P = %v, C = %v", p, c)
	}
	same := len(p) == len(c)
	for i := range p {
		if p[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Errorf("P and C should differ: P=%v C=%v", p, c)
	}
	// ns-count over the union: ns1, ns2 (parent), ns3 (child).
	if r.NSCount() != 3 {
		t.Errorf("NSCount = %d, want 3", r.NSCount())
	}
}

func TestScanDanglingNS(t *testing.T) {
	_, s := newScanner(t)
	r := s.ScanDomain(scanCtx(t), "dangling.gov.br.")
	if !r.HasData() {
		t.Fatalf("no data: %+v", r)
	}
	if !r.FullyDefective() {
		t.Error("dangling.gov.br should be fully defective")
	}
	if addrs := r.Addrs["ns.gone-provider.com."]; addrs != nil {
		t.Errorf("dangling host resolved to %v", addrs)
	}
}

func TestScanRemovedDomain(t *testing.T) {
	_, s := newScanner(t)
	r := s.ScanDomain(scanCtx(t), "neverexisted.gov.br.")
	if !r.ParentResponded {
		t.Error("parent servers answered NXDOMAIN; ParentResponded should be true")
	}
	if r.HasData() {
		t.Error("NXDOMAIN produced data")
	}
}

func TestScanParentDead(t *testing.T) {
	w, s := newScanner(t)
	w.Net.Blackhole(miniworld.GovNS1Addr)
	w.Net.Blackhole(miniworld.GovNS2Addr)
	r := s.ScanDomain(scanCtx(t), "city.gov.br.")
	if r.ParentResponded {
		t.Error("ParentResponded with a dead parent zone")
	}
	if r.Err == "" {
		t.Error("no error recorded")
	}
}

func TestScanBulk(t *testing.T) {
	_, s := newScanner(t)
	s.Concurrency = 4
	domains := miniworld.Domains()
	results := s.Scan(scanCtx(t), domains)
	if len(results) != len(domains) {
		t.Fatalf("got %d results", len(results))
	}
	for i, r := range results {
		if r == nil {
			t.Fatalf("result %d is nil", i)
		}
		if r.Domain != domains[i] {
			t.Errorf("result %d out of order: %s", i, r.Domain)
		}
	}
	// Spot-check aggregate counts over the fixture.
	responsive := 0
	for _, r := range results {
		if r.Responsive() {
			responsive++
		}
	}
	// city, lame, single, hosted, inconsistent respond; dead and
	// dangling do not.
	if responsive != 5 {
		t.Errorf("responsive = %d, want 5", responsive)
	}
}

func TestScanCancelledContext(t *testing.T) {
	_, s := newScanner(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results := s.Scan(ctx, []dnsname.Name{"city.gov.br.", "lame.gov.br."})
	for _, r := range results {
		if r == nil {
			t.Fatal("nil result after cancellation")
		}
		// Cancelled slots are normalized like every other result:
		// downstream code may range over Addrs and divide by Rounds
		// without special-casing an aborted scan.
		if r.Rounds < 1 {
			t.Errorf("%s: Rounds = %d after cancellation, want >= 1", r.Domain, r.Rounds)
		}
		if r.Addrs == nil {
			t.Errorf("%s: nil Addrs map after cancellation", r.Domain)
		}
		if r.Err == "" {
			t.Errorf("%s: cancelled result carries no error", r.Domain)
		}
	}
}

// TestScanMultiGlueChild pins the glue-handling fix: a delegation whose
// single NS host carries several glue A records (inserted at the parent
// in descending address order) must surface them in canonical
// netip.Addr.Less order, sorted once when the glue map is built — not
// per fan-out worker, where concurrent sorts of the shared slice raced.
// Runs with fan-out > 1 so `make race` exercises the concurrent reads.
func TestScanMultiGlueChild(t *testing.T) {
	w := miniworld.Build()
	child := w.AddMultiGlueChild()
	c := resolver.NewClient(w.Net)
	c.Timeout = 20 * time.Millisecond
	c.Retries = 1
	s := NewScanner(resolver.NewIterator(c, w.Roots))
	s.PerDomainParallelism = 4

	r := s.ScanDomain(scanCtx(t), child)
	if r.Err != "" {
		t.Fatalf("scan failed: %s", r.Err)
	}
	got := r.Addrs["ns1.multiglue.gov.br."]
	want := []netip.Addr{miniworld.MultiGlueLowAddr, miniworld.MultiGlueHighAddr}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("glue addrs = %v, want %v (Less order)", got, want)
	}
	if !r.Responsive() {
		t.Errorf("multi-glue child unresponsive: %+v", r.Servers)
	}
	// The same scan must serialize and digest stably regardless of the
	// order glue arrived in.
	if d1, d2 := DigestHex([]*DomainResult{r}), DigestHex([]*DomainResult{r}); d1 != d2 {
		t.Errorf("digest unstable: %s != %s", d1, d2)
	}
}

// TestGlueAddrsSortsOnce checks the map constructor directly: duplicate
// host RRs append to one shared slice that must come out sorted, and
// concurrent readers (as in fanEach) must find it already ordered.
func TestGlueAddrsSortsOnce(t *testing.T) {
	host := dnsname.Name("ns1.multiglue.gov.br.")
	rrs := []dnswire.RR{
		{Name: host, Class: dnswire.ClassIN, TTL: 300, Data: dnswire.AData{Addr: netip.MustParseAddr("4.5.0.9")}},
		{Name: host, Class: dnswire.ClassIN, TTL: 300, Data: dnswire.AData{Addr: netip.MustParseAddr("4.5.0.1")}},
		{Name: host, Class: dnswire.ClassIN, TTL: 300, Data: dnswire.AData{Addr: netip.MustParseAddr("4.5.0.5")}},
	}
	glue := glueAddrs(rrs)
	addrs := glue[host]
	if len(addrs) != 3 {
		t.Fatalf("glue[%s] = %v, want 3 addrs", host, addrs)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if !sort.SliceIsSorted(addrs, func(i, j int) bool { return addrs[i].Less(addrs[j]) }) {
				t.Errorf("glue slice not pre-sorted: %v", addrs)
			}
		}()
	}
	wg.Wait()
	if glueAddrs(nil) != nil {
		t.Error("glueAddrs(nil) != nil")
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	_, s := newScanner(t)
	results := s.Scan(scanCtx(t), miniworld.Domains())

	var buf bytes.Buffer
	if err := WriteJSONL(&buf, results); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	loaded, err := ReadJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	if len(loaded) != len(results) {
		t.Fatalf("round trip changed count: %d -> %d", len(results), len(loaded))
	}
	for i, orig := range results {
		got := loaded[i]
		if got.Domain != orig.Domain || got.ParentResponded != orig.ParentResponded {
			t.Errorf("result %d basics differ", i)
		}
		// Every derived predicate must survive the round trip: the
		// analyses run identically on archived scans.
		if got.Responsive() != orig.Responsive() ||
			got.FullyDefective() != orig.FullyDefective() ||
			got.PartiallyDefective() != orig.PartiallyDefective() ||
			got.NSCount() != orig.NSCount() {
			t.Errorf("result %d predicates differ after round trip", i)
		}
		if len(got.AllAddrs()) != len(orig.AllAddrs()) {
			t.Errorf("result %d addrs differ", i)
		}
	}
}

func TestReadJSONLRejectsGarbage(t *testing.T) {
	if _, err := ReadJSONL(bytes.NewReader([]byte("{oops"))); err == nil {
		t.Error("ReadJSONL accepted garbage")
	}
	if _, err := ReadJSONL(bytes.NewReader([]byte(`{"domain":"x.gov.br.","addrs":{"bad..name":["1.2.3.4"]}}`))); err == nil {
		t.Error("ReadJSONL accepted a bad hostname")
	}
	if _, err := ReadJSONL(bytes.NewReader([]byte(`{"domain":"x.gov.br.","addrs":{"ns1.x.gov.br.":["zap"]}}`))); err == nil {
		t.Error("ReadJSONL accepted a bad address")
	}
}
