package measure

import (
	"bytes"
	"context"
	"testing"
	"time"

	"govdns/internal/dnsname"
	"govdns/internal/miniworld"
	"govdns/internal/resolver"
)

func newScanner(t *testing.T) (*miniworld.World, *Scanner) {
	t.Helper()
	w := miniworld.Build()
	c := resolver.NewClient(w.Net)
	c.Timeout = 20 * time.Millisecond
	c.Retries = 1
	return w, NewScanner(resolver.NewIterator(c, w.Roots))
}

func scanCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestScanHealthyDomain(t *testing.T) {
	_, s := newScanner(t)
	r := s.ScanDomain(scanCtx(t), "city.gov.br.")
	if !r.ParentResponded || !r.HasData() {
		t.Fatalf("result: %+v", r)
	}
	if r.ParentZone != "gov.br." {
		t.Errorf("ParentZone = %q", r.ParentZone)
	}
	if len(r.ParentNS) != 2 {
		t.Fatalf("ParentNS = %v", r.ParentNS)
	}
	if !r.Responsive() || r.HasDefect() {
		t.Errorf("healthy domain flagged defective: %+v", r.Servers)
	}
	child := r.ChildNS()
	if len(child) != 2 || child[0] != "ns1.city.gov.br." {
		t.Errorf("ChildNS = %v", child)
	}
	if r.NSCount() != 2 {
		t.Errorf("NSCount = %d", r.NSCount())
	}
	if got := len(r.AllAddrs()); got != 2 {
		t.Errorf("AllAddrs = %d", got)
	}
	if r.Rounds != 1 {
		t.Errorf("Rounds = %d", r.Rounds)
	}
}

func TestScanPartiallyLame(t *testing.T) {
	_, s := newScanner(t)
	r := s.ScanDomain(scanCtx(t), "lame.gov.br.")
	if !r.PartiallyDefective() {
		t.Fatalf("lame.gov.br not partially defective: %+v", r.Servers)
	}
	if r.FullyDefective() {
		t.Error("lame.gov.br flagged fully defective")
	}
	bad := r.DefectiveServerHosts()
	if len(bad) != 1 || bad[0] != "ns2.lame.gov.br." {
		t.Errorf("DefectiveServerHosts = %v", bad)
	}
}

func TestScanFullyLameRunsSecondRound(t *testing.T) {
	_, s := newScanner(t)
	r := s.ScanDomain(scanCtx(t), "dead.gov.br.")
	if !r.FullyDefective() {
		t.Fatalf("dead.gov.br not fully defective: %+v", r)
	}
	if r.Rounds != 2 {
		t.Errorf("Rounds = %d, want 2 (second-round retry)", r.Rounds)
	}
	if r.Responsive() {
		t.Error("dead domain responsive")
	}
}

func TestScanSecondRoundDisabled(t *testing.T) {
	_, s := newScanner(t)
	s.SecondRound = false
	r := s.ScanDomain(scanCtx(t), "dead.gov.br.")
	if r.Rounds != 1 {
		t.Errorf("Rounds = %d, want 1", r.Rounds)
	}
}

func TestScanSingleNS(t *testing.T) {
	_, s := newScanner(t)
	r := s.ScanDomain(scanCtx(t), "single.gov.br.")
	if r.NSCount() != 1 {
		t.Errorf("NSCount = %d, want 1", r.NSCount())
	}
	if !r.Responsive() {
		t.Error("single.gov.br not responsive")
	}
}

func TestScanInconsistent(t *testing.T) {
	_, s := newScanner(t)
	r := s.ScanDomain(scanCtx(t), "inconsistent.gov.br.")
	if !r.HasData() {
		t.Fatalf("no data: %+v", r)
	}
	p, c := r.ParentNS, r.ChildNS()
	if len(p) != 2 || len(c) != 2 {
		t.Fatalf("P = %v, C = %v", p, c)
	}
	same := len(p) == len(c)
	for i := range p {
		if p[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Errorf("P and C should differ: P=%v C=%v", p, c)
	}
	// ns-count over the union: ns1, ns2 (parent), ns3 (child).
	if r.NSCount() != 3 {
		t.Errorf("NSCount = %d, want 3", r.NSCount())
	}
}

func TestScanDanglingNS(t *testing.T) {
	_, s := newScanner(t)
	r := s.ScanDomain(scanCtx(t), "dangling.gov.br.")
	if !r.HasData() {
		t.Fatalf("no data: %+v", r)
	}
	if !r.FullyDefective() {
		t.Error("dangling.gov.br should be fully defective")
	}
	if addrs := r.Addrs["ns.gone-provider.com."]; addrs != nil {
		t.Errorf("dangling host resolved to %v", addrs)
	}
}

func TestScanRemovedDomain(t *testing.T) {
	_, s := newScanner(t)
	r := s.ScanDomain(scanCtx(t), "neverexisted.gov.br.")
	if !r.ParentResponded {
		t.Error("parent servers answered NXDOMAIN; ParentResponded should be true")
	}
	if r.HasData() {
		t.Error("NXDOMAIN produced data")
	}
}

func TestScanParentDead(t *testing.T) {
	w, s := newScanner(t)
	w.Net.Blackhole(miniworld.GovNS1Addr)
	w.Net.Blackhole(miniworld.GovNS2Addr)
	r := s.ScanDomain(scanCtx(t), "city.gov.br.")
	if r.ParentResponded {
		t.Error("ParentResponded with a dead parent zone")
	}
	if r.Err == "" {
		t.Error("no error recorded")
	}
}

func TestScanBulk(t *testing.T) {
	_, s := newScanner(t)
	s.Concurrency = 4
	domains := miniworld.Domains()
	results := s.Scan(scanCtx(t), domains)
	if len(results) != len(domains) {
		t.Fatalf("got %d results", len(results))
	}
	for i, r := range results {
		if r == nil {
			t.Fatalf("result %d is nil", i)
		}
		if r.Domain != domains[i] {
			t.Errorf("result %d out of order: %s", i, r.Domain)
		}
	}
	// Spot-check aggregate counts over the fixture.
	responsive := 0
	for _, r := range results {
		if r.Responsive() {
			responsive++
		}
	}
	// city, lame, single, hosted, inconsistent respond; dead and
	// dangling do not.
	if responsive != 5 {
		t.Errorf("responsive = %d, want 5", responsive)
	}
}

func TestScanCancelledContext(t *testing.T) {
	_, s := newScanner(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results := s.Scan(ctx, []dnsname.Name{"city.gov.br.", "lame.gov.br."})
	for _, r := range results {
		if r == nil {
			t.Fatal("nil result after cancellation")
		}
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	_, s := newScanner(t)
	results := s.Scan(scanCtx(t), miniworld.Domains())

	var buf bytes.Buffer
	if err := WriteJSONL(&buf, results); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	loaded, err := ReadJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	if len(loaded) != len(results) {
		t.Fatalf("round trip changed count: %d -> %d", len(results), len(loaded))
	}
	for i, orig := range results {
		got := loaded[i]
		if got.Domain != orig.Domain || got.ParentResponded != orig.ParentResponded {
			t.Errorf("result %d basics differ", i)
		}
		// Every derived predicate must survive the round trip: the
		// analyses run identically on archived scans.
		if got.Responsive() != orig.Responsive() ||
			got.FullyDefective() != orig.FullyDefective() ||
			got.PartiallyDefective() != orig.PartiallyDefective() ||
			got.NSCount() != orig.NSCount() {
			t.Errorf("result %d predicates differ after round trip", i)
		}
		if len(got.AllAddrs()) != len(orig.AllAddrs()) {
			t.Errorf("result %d addrs differ", i)
		}
	}
}

func TestReadJSONLRejectsGarbage(t *testing.T) {
	if _, err := ReadJSONL(bytes.NewReader([]byte("{oops"))); err == nil {
		t.Error("ReadJSONL accepted garbage")
	}
	if _, err := ReadJSONL(bytes.NewReader([]byte(`{"domain":"x.gov.br.","addrs":{"bad..name":["1.2.3.4"]}}`))); err == nil {
		t.Error("ReadJSONL accepted a bad hostname")
	}
	if _, err := ReadJSONL(bytes.NewReader([]byte(`{"domain":"x.gov.br.","addrs":{"ns1.x.gov.br.":["zap"]}}`))); err == nil {
		t.Error("ReadJSONL accepted a bad address")
	}
}
