package measure

import (
	"bytes"
	"flag"
	"net/netip"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"govdns/internal/dnsname"
	"govdns/internal/dnswire"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenResults is a fixed result set exercising every serialized field:
// a healthy domain with fault counters from a chaotic-but-recovered
// scan, a transient walk failure, a lame delegation with per-server
// errors, and a minimal no-delegation record.
func goldenResults() []*DomainResult {
	return []*DomainResult{
		{
			Domain:          "city.gov.br.",
			ParentZone:      "gov.br.",
			ParentResponded: true,
			ParentNS:        []dnsname.Name{"ns1.city.gov.br.", "ns2.city.gov.br."},
			Addrs: map[dnsname.Name][]netip.Addr{
				"ns1.city.gov.br.": {netip.MustParseAddr("4.0.0.1")},
				"ns2.city.gov.br.": {netip.MustParseAddr("4.0.1.1")},
				// Multi-address host whose netip.Addr.Less order differs
				// from lexicographic string order ("10.0.0.1" < "9.0.0.2"
				// as strings): pins the canonical address order on disk.
				"ns3.city.gov.br.": {netip.MustParseAddr("9.0.0.2"), netip.MustParseAddr("10.0.0.1")},
			},
			Servers: []ServerResponse{
				{Host: "ns1.city.gov.br.", Addr: netip.MustParseAddr("4.0.0.1"),
					OK: true, Authoritative: true,
					NS: []dnsname.Name{"ns1.city.gov.br.", "ns2.city.gov.br."}},
				{Host: "ns2.city.gov.br.", Addr: netip.MustParseAddr("4.0.1.1"),
					OK: true, Authoritative: true,
					NS: []dnsname.Name{"ns1.city.gov.br.", "ns2.city.gov.br."}},
			},
			Rounds: 2,
			Faults: FaultCounts{
				Duplicates:         1,
				Truncations:        2,
				QIDMismatches:      3,
				QuestionMismatches: 4,
				Malformed:          5,
			},
		},
		{
			Domain:       "flaky.gov.br.",
			Rounds:       2,
			Err:          "resolver: timeout",
			ErrTransient: true,
		},
		{
			Domain:              "lame.gov.br.",
			ParentZone:          "gov.br.",
			ParentResponded:     true,
			ParentAuthoritative: true,
			ParentNS:            []dnsname.Name{"ns1.lame.gov.br.", "ns2.lame.gov.br."},
			Addrs: map[dnsname.Name][]netip.Addr{
				"ns1.lame.gov.br.": {netip.MustParseAddr("4.1.0.1")},
				"ns2.lame.gov.br.": nil,
			},
			Servers: []ServerResponse{
				{Host: "ns1.lame.gov.br.", Addr: netip.MustParseAddr("4.1.0.1"),
					OK: true, RCode: dnswire.RCodeRefused},
			},
			Rounds: 1,
			Faults: FaultCounts{Truncations: 7},
		},
		{
			Domain:          "gone.gov.br.",
			ParentZone:      "gov.br.",
			ParentResponded: true,
			Rounds:          1,
		},
	}
}

// TestJSONLFieldRoundTrip is the table-driven schema check: every
// analysis-relevant field of every golden result must survive
// WriteJSONL→ReadJSONL unchanged, including the chaos-era additions
// (per-class fault counters and the transient-error flag).
func TestJSONLFieldRoundTrip(t *testing.T) {
	results := goldenResults()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, results); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	loaded, err := ReadJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	if len(loaded) != len(results) {
		t.Fatalf("round trip returned %d results, want %d", len(loaded), len(results))
	}

	for i, want := range results {
		got := loaded[i]
		fields := []struct {
			name      string
			got, want any
		}{
			{"Domain", got.Domain, want.Domain},
			{"ParentZone", got.ParentZone, want.ParentZone},
			{"ParentResponded", got.ParentResponded, want.ParentResponded},
			{"ParentNS", got.ParentNS, want.ParentNS},
			{"ParentAuthoritative", got.ParentAuthoritative, want.ParentAuthoritative},
			{"Servers", got.Servers, want.Servers},
			{"Rounds", got.Rounds, want.Rounds},
			{"Err", got.Err, want.Err},
			{"ErrTransient", got.ErrTransient, want.ErrTransient},
			{"Faults", got.Faults, want.Faults},
		}
		for _, f := range fields {
			if !reflect.DeepEqual(f.got, f.want) {
				t.Errorf("%s: %s = %+v after round trip, want %+v", want.Domain, f.name, f.got, f.want)
			}
		}
		// Addrs: nil (unresolvable) and empty entries are equivalent in
		// the schema; compare the address sets per host.
		for host, addrs := range want.Addrs {
			if !reflect.DeepEqual(got.Addrs[host], addrs) && len(got.Addrs[host])+len(addrs) > 0 {
				t.Errorf("%s: Addrs[%s] = %v after round trip, want %v", want.Domain, host, got.Addrs[host], addrs)
			}
		}
		// Derived predicates must agree too — they are what analyses use.
		if got.Classify() != want.Classify() {
			t.Errorf("%s: Classify() = %s after round trip, want %s", want.Domain, got.Classify(), want.Classify())
		}
	}
}

// TestJSONLWriteReadWriteByteIdentity pins the canonicalization fix:
// serialization sorts addresses by netip.Addr.Less (not string order)
// and deserialization re-sorts, so write→read→write is byte-identical
// and the digest survives a round trip — even when the in-memory
// result arrives with addresses out of order, as a legacy
// lexicographically-sorted archive would after loading.
func TestJSONLWriteReadWriteByteIdentity(t *testing.T) {
	results := goldenResults()
	// Present one multi-address host in reversed (former lexicographic)
	// order: the writer must canonicalize rather than trust the caller.
	results[0].Addrs["ns3.city.gov.br."] = []netip.Addr{
		netip.MustParseAddr("10.0.0.1"), netip.MustParseAddr("9.0.0.2"),
	}

	var first bytes.Buffer
	if err := WriteJSONL(&first, results); err != nil {
		t.Fatalf("first WriteJSONL: %v", err)
	}
	loaded, err := ReadJSONL(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	var second bytes.Buffer
	if err := WriteJSONL(&second, loaded); err != nil {
		t.Fatalf("second WriteJSONL: %v", err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Errorf("write→read→write not byte-identical:\nfirst:\n%s\nsecond:\n%s",
			first.Bytes(), second.Bytes())
	}
	if got, want := DigestHex(loaded), DigestHex(results); got != want {
		t.Errorf("digest changed across round trip: %s != %s", got, want)
	}
}

// TestJSONLGolden pins the on-disk schema: the serialization of the
// golden results must match testdata/results.golden.jsonl byte for
// byte, so schema changes are visible in review (regenerate with
// `go test ./internal/measure -run Golden -update`).
func TestJSONLGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, goldenResults()); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	path := filepath.Join("testdata", "results.golden.jsonl")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("serialization diverged from golden file:\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
	// The golden bytes must also load back cleanly.
	if _, err := ReadJSONL(bytes.NewReader(want)); err != nil {
		t.Errorf("golden file does not parse: %v", err)
	}
}
