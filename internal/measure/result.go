// Package measure implements the paper's active measurement pipeline
// (Fig. 1): for each domain, find the authoritative servers of its
// parent zone, ask them for the domain's NS records (the parent view P),
// resolve every delegated nameserver to its IPv4 addresses, and query
// each address for the domain's NS records (the child views C). Domains
// whose delegated servers all fail are retried in a second round.
package measure

import (
	"net/netip"
	"sort"

	"govdns/internal/dnsname"
	"govdns/internal/dnswire"
	"govdns/internal/resolver"
)

// FaultCounts aggregates the resolver's per-query fault traces over one
// domain's probes: how many responses each rejection class discarded.
// The counters describe what the wire did to the measurement, not what
// the measurement concluded — two scans that recover to identical
// conclusions may carry very different fault counts.
type FaultCounts struct {
	Duplicates         uint64 `json:"duplicates,omitempty"`
	Truncations        uint64 `json:"truncations,omitempty"`
	QIDMismatches      uint64 `json:"qid_mismatches,omitempty"`
	QuestionMismatches uint64 `json:"question_mismatches,omitempty"`
	Malformed          uint64 `json:"malformed,omitempty"`
}

// add folds one query trace into the counters.
func (f *FaultCounts) add(tr resolver.Trace) {
	f.Duplicates += uint64(tr.Duplicates)
	f.Truncations += uint64(tr.Truncations)
	f.QIDMismatches += uint64(tr.QIDMismatches)
	f.QuestionMismatches += uint64(tr.QuestionMismatches)
	f.Malformed += uint64(tr.Malformed)
}

// merge folds another domain's counters in (used when the second round
// replaces a first-round result but must not lose its fault history).
func (f *FaultCounts) merge(o FaultCounts) {
	f.Duplicates += o.Duplicates
	f.Truncations += o.Truncations
	f.QIDMismatches += o.QIDMismatches
	f.QuestionMismatches += o.QuestionMismatches
	f.Malformed += o.Malformed
}

// Total sums the counters.
func (f FaultCounts) Total() uint64 {
	return f.Duplicates + f.Truncations + f.QIDMismatches + f.QuestionMismatches + f.Malformed
}

// ServerResponse is the outcome of querying one nameserver address for
// the domain's NS records.
type ServerResponse struct {
	// Host is the NS hostname the address belongs to.
	Host dnsname.Name
	// Addr is the queried address.
	Addr netip.Addr
	// OK reports whether any response arrived.
	OK bool
	// RCode is the response code (when OK).
	RCode dnswire.RCode
	// Authoritative reports the AA bit (when OK).
	Authoritative bool
	// NS is the NS RRset for the domain in the response's answer
	// section, sorted.
	NS []dnsname.Name
	// Err describes the failure (when !OK).
	Err string
}

// Answered reports whether the server gave an authoritative, non-empty
// NS answer for the domain — the test for a *working* delegation.
func (sr *ServerResponse) Answered() bool {
	return sr.OK && sr.Authoritative && sr.RCode == dnswire.RCodeNoError && len(sr.NS) > 0
}

// DomainResult is the complete measurement record for one domain.
type DomainResult struct {
	// Domain is the probed name.
	Domain dnsname.Name
	// ParentZone is the zone holding the delegation (when discovered).
	ParentZone dnsname.Name
	// ParentResponded reports whether any parent-zone server responded
	// to the NS query at all (the 115k-of-147k line in § III-B).
	ParentResponded bool
	// ParentNS is the parent-side NS set P, sorted. Empty with
	// ParentResponded=true means an empty response (NXDOMAIN/NODATA) —
	// the domain is gone from the parent.
	ParentNS []dnsname.Name
	// ParentAuthoritative marks delegations learned from an
	// authoritative answer rather than a referral (parent and child
	// served by the same host).
	ParentAuthoritative bool
	// Addrs maps each nameserver hostname (from P and from child
	// answers) to its resolved IPv4 addresses. Unresolvable hosts map
	// to nil.
	Addrs map[dnsname.Name][]netip.Addr
	// Servers holds one entry per queried (host, address) pair.
	Servers []ServerResponse
	// Rounds is 1, or 2 when the second-round retry ran.
	Rounds int
	// Err records a walk failure (no parent response).
	Err string
	// ErrTransient marks Err as belonging to the transient failure
	// class (resolver.IsTransientErr): a second round may not reproduce
	// it, so analyses should not treat the domain as durably broken.
	ErrTransient bool
	// Faults aggregates the per-query fault traces of every probe made
	// for this domain, across both rounds.
	Faults FaultCounts
}

// Classification buckets a DomainResult for the paper's § IV-C analysis.
type Classification int

const (
	// ClassWalkFailure: the delegation walk itself failed; nothing is
	// known about the domain's servers.
	ClassWalkFailure Classification = iota
	// ClassNoDelegation: the parent answered but returned no NS set —
	// the domain is gone from the parent.
	ClassNoDelegation
	// ClassHealthy: every parent-listed nameserver produced a working
	// authoritative answer.
	ClassHealthy
	// ClassPartiallyLame: some servers answer, some are defective.
	ClassPartiallyLame
	// ClassFullyLame: the delegation exists but no server answers.
	ClassFullyLame
)

// String names the classification for reports and test output.
func (c Classification) String() string {
	switch c {
	case ClassWalkFailure:
		return "walk-failure"
	case ClassNoDelegation:
		return "no-delegation"
	case ClassHealthy:
		return "healthy"
	case ClassPartiallyLame:
		return "partially-lame"
	case ClassFullyLame:
		return "fully-lame"
	}
	return "unknown"
}

// Classify buckets the result. Every result falls into exactly one
// class; chaos can move a domain between classes but never out of the
// partition (the graceful-degradation property the invariance harness
// checks).
func (r *DomainResult) Classify() Classification {
	switch {
	case !r.ParentResponded:
		return ClassWalkFailure
	case !r.HasData():
		return ClassNoDelegation
	case !r.Responsive():
		return ClassFullyLame
	case len(r.DefectiveServerHosts()) > 0:
		return ClassPartiallyLame
	}
	return ClassHealthy
}

// HasData reports whether the parent returned a non-empty NS set (the
// 96k-of-115k line).
func (r *DomainResult) HasData() bool {
	return r.ParentResponded && len(r.ParentNS) > 0
}

// ChildNS returns the union of NS sets returned by the domain's own
// servers (the child view C), sorted.
func (r *DomainResult) ChildNS() []dnsname.Name {
	seen := make(map[dnsname.Name]bool)
	var out []dnsname.Name
	for i := range r.Servers {
		if !r.Servers[i].Answered() {
			continue
		}
		for _, host := range r.Servers[i].NS {
			if !seen[host] {
				seen[host] = true
				out = append(out, host)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return dnsname.Compare(out[i], out[j]) < 0 })
	return out
}

// Responsive reports whether at least one of the domain's authoritative
// servers answered for the domain.
func (r *DomainResult) Responsive() bool {
	for i := range r.Servers {
		if r.Servers[i].Answered() {
			return true
		}
	}
	return false
}

// FullyDefective reports whether the delegation exists but none of the
// delegated servers answers for the zone (§ IV-C).
func (r *DomainResult) FullyDefective() bool {
	return r.HasData() && !r.Responsive()
}

// PartiallyDefective reports whether at least one delegated server fails
// while at least one answers. Per the paper, fully defective delegations
// are also counted as partially defective by the per-server test; this
// predicate is the strict "some but not all" version.
func (r *DomainResult) PartiallyDefective() bool {
	if !r.HasData() {
		return false
	}
	defective := r.DefectiveServerHosts()
	return len(defective) > 0 && r.Responsive()
}

// HasDefect reports whether any delegated nameserver fails to answer
// (partial or full).
func (r *DomainResult) HasDefect() bool {
	return r.HasData() && len(r.DefectiveServerHosts()) > 0
}

// DefectiveServerHosts returns the parent-listed hostnames that did not
// produce a working answer from any address: unresolvable hosts and
// hosts whose every address timed out, refused, or answered
// non-authoritatively.
func (r *DomainResult) DefectiveServerHosts() []dnsname.Name {
	answered := make(map[dnsname.Name]bool)
	for i := range r.Servers {
		if r.Servers[i].Answered() {
			answered[r.Servers[i].Host] = true
		}
	}
	var out []dnsname.Name
	for _, host := range r.ParentNS {
		if !answered[host] {
			out = append(out, host)
		}
	}
	return out
}

// AllAddrs returns the distinct resolved addresses of the domain's
// nameservers, sorted — the IP_ns set of Table I.
func (r *DomainResult) AllAddrs() []netip.Addr {
	seen := make(map[netip.Addr]bool)
	var out []netip.Addr
	for _, addrs := range r.Addrs {
		for _, a := range addrs {
			if !seen[a] {
				seen[a] = true
				out = append(out, a)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// NSCount is the number of distinct delegated nameservers (|P ∪ C|);
// the paper's replication metric uses the combined set.
func (r *DomainResult) NSCount() int {
	seen := make(map[dnsname.Name]bool)
	for _, h := range r.ParentNS {
		seen[h] = true
	}
	for _, h := range r.ChildNS() {
		seen[h] = true
	}
	return len(seen)
}
