package measure

import (
	"context"
	"errors"
	"net/netip"
	"sort"
	"sync"

	"govdns/internal/dnsname"
	"govdns/internal/dnswire"
	"govdns/internal/resolver"
)

// Scanner drives the bulk measurement.
type Scanner struct {
	// Iterator performs delegation walks and host resolution, with
	// shared caching across the whole scan.
	Iterator *resolver.Iterator
	// Concurrency bounds the number of in-flight domains. Defaults to
	// DefaultConcurrency.
	Concurrency int
	// SecondRound enables the paper's retry: when a delegation exists
	// but no delegated server responded, the domain is probed again to
	// rule out transient failures (§ III-B).
	SecondRound bool
}

// DefaultConcurrency is the scanner's default worker count.
const DefaultConcurrency = 64

// NewScanner builds a scanner with the paper's configuration.
func NewScanner(it *resolver.Iterator) *Scanner {
	return &Scanner{Iterator: it, SecondRound: true}
}

// ScanDomain measures a single domain (one Fig. 1 pipeline run,
// including the second round when enabled).
func (s *Scanner) ScanDomain(ctx context.Context, domain dnsname.Name) *DomainResult {
	r := s.scanOnce(ctx, domain)
	if s.SecondRound && r.FullyDefective() {
		retry := s.scanOnce(ctx, domain)
		retry.Rounds = 2
		return retry
	}
	return r
}

func (s *Scanner) scanOnce(ctx context.Context, domain dnsname.Name) *DomainResult {
	r := &DomainResult{
		Domain: domain,
		Addrs:  make(map[dnsname.Name][]netip.Addr),
		Rounds: 1,
	}

	deleg, err := s.Iterator.Delegation(ctx, domain)
	switch {
	case err == nil:
		r.ParentResponded = true
		r.ParentZone = deleg.Parent.Zone
		r.ParentNS = deleg.Hosts()
		r.ParentAuthoritative = deleg.Authoritative
	case errors.Is(err, resolver.ErrNXDomain), errors.Is(err, resolver.ErrNoAnswer):
		// The parent answered: the domain is simply gone (empty
		// response).
		r.ParentResponded = true
		r.Err = err.Error()
		return r
	default:
		r.Err = err.Error()
		return r
	}

	// Resolve every delegated nameserver. Glue from the referral is
	// authoritative enough for the parent's own view; out-of-zone hosts
	// go through full resolution (cached across the scan).
	glue := make(map[dnsname.Name][]netip.Addr)
	for _, rr := range deleg.Glue {
		if a, ok := rr.Data.(dnswire.AData); ok {
			glue[rr.Name] = append(glue[rr.Name], a.Addr)
		}
	}
	for _, host := range r.ParentNS {
		if addrs, ok := glue[host]; ok {
			sort.Slice(addrs, func(i, j int) bool { return addrs[i].Less(addrs[j]) })
			r.Addrs[host] = addrs
			continue
		}
		addrs, err := s.Iterator.ResolveHost(ctx, host)
		if err != nil {
			r.Addrs[host] = nil
			continue
		}
		r.Addrs[host] = addrs
	}

	// Query every address of every delegated nameserver for the
	// domain's NS records.
	client := s.Iterator.Client()
	for _, host := range r.ParentNS {
		for _, addr := range r.Addrs[host] {
			sr := ServerResponse{Host: host, Addr: addr}
			resp, err := client.Query(ctx, addr, domain, dnswire.TypeNS)
			if err != nil {
				sr.Err = err.Error()
			} else {
				sr.OK = true
				sr.RCode = resp.Header.RCode
				sr.Authoritative = resp.Header.Authoritative
				for _, rr := range resp.AnswersOfType(dnswire.TypeNS) {
					if rr.Name != domain {
						continue
					}
					sr.NS = append(sr.NS, rr.Data.(dnswire.NSData).Host)
				}
				sort.Slice(sr.NS, func(i, j int) bool { return dnsname.Compare(sr.NS[i], sr.NS[j]) < 0 })
			}
			r.Servers = append(r.Servers, sr)
		}
	}

	// The child may know servers the parent does not (C ⊃ P): resolve
	// and query those too, so NSCount and consistency see the full
	// picture.
	s.queryChildOnlyHosts(ctx, r)
	return r
}

// queryChildOnlyHosts resolves nameservers that appear only in child
// answers and records their addresses (used by the diversity analysis).
func (s *Scanner) queryChildOnlyHosts(ctx context.Context, r *DomainResult) {
	inParent := make(map[dnsname.Name]bool, len(r.ParentNS))
	for _, h := range r.ParentNS {
		inParent[h] = true
	}
	for _, host := range r.ChildNS() {
		if inParent[host] {
			continue
		}
		if _, done := r.Addrs[host]; done {
			continue
		}
		addrs, err := s.Iterator.ResolveHost(ctx, host)
		if err != nil {
			r.Addrs[host] = nil
			continue
		}
		r.Addrs[host] = addrs
	}
}

// Scan measures every domain in the list concurrently and returns the
// results in input order.
func (s *Scanner) Scan(ctx context.Context, domains []dnsname.Name) []*DomainResult {
	workers := s.Concurrency
	if workers <= 0 {
		workers = DefaultConcurrency
	}
	if workers > len(domains) {
		workers = len(domains)
	}
	results := make([]*DomainResult, len(domains))
	if workers == 0 {
		return results
	}

	var wg sync.WaitGroup
	jobs := make(chan int)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				results[idx] = s.ScanDomain(ctx, domains[idx])
			}
		}()
	}
feed:
	for idx := range domains {
		select {
		case jobs <- idx:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()

	// Fill any unprocessed slots (cancelled scans) with error results.
	for i, r := range results {
		if r == nil {
			results[i] = &DomainResult{Domain: domains[i], Err: "scan cancelled"}
		}
	}
	return results
}
