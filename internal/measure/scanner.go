package measure

import (
	"context"
	"errors"
	"fmt"
	"net/netip"
	"sort"
	"strconv"
	"sync"
	"time"

	"govdns/internal/dnsname"
	"govdns/internal/dnswire"
	"govdns/internal/resolver"
	"govdns/internal/trace"
)

// Scanner drives the bulk measurement.
type Scanner struct {
	// Iterator performs delegation walks and host resolution, with
	// shared caching across the whole scan.
	Iterator *resolver.Iterator
	// Concurrency bounds the number of in-flight domains. Defaults to
	// DefaultConcurrency.
	Concurrency int
	// PerDomainParallelism bounds the fan-out *within* one domain: how
	// many NS-host resolutions and per-address NS probes run at once.
	// Most of a defective domain's scan time is spent waiting out query
	// timeouts on dead servers; overlapping those waits is where the
	// wall-clock win comes from. 0 means DefaultPerDomainParallelism;
	// 1 restores fully serial per-domain behaviour.
	PerDomainParallelism int
	// SecondRound enables the paper's retry: when a delegation exists
	// but no delegated server responded — or the walk itself failed for
	// a transient cause — the domain is probed again to rule out
	// transient failures (§ III-B).
	SecondRound bool
	// Metrics, when non-nil, records per-stage latency histograms and
	// progress counters. It never influences scan behaviour: a
	// metrics-on scan produces bit-identical results (and digests) to a
	// metrics-off one.
	Metrics *ScanMetrics
	// Trace, when non-nil, records each domain's measurement as a span
	// tree and offers it to the flight recorder, which retains the
	// slowest domains, every Error/Transient domain, and any domain
	// whose classification changed between rounds. Like Metrics it is
	// purely passive: a traced scan's digest is bit-identical to an
	// untraced one.
	Trace *trace.FlightRecorder
	// TracePin, when non-nil alongside Trace, is consulted once per
	// scanned domain with its finished result; returning true pins the
	// domain's trace into the flight recorder's pinned ring whatever the
	// built-in retention criteria say. The monitoring daemon sets it to
	// its alert predicate so every alerted domain keeps a complete span
	// tree. It runs on worker goroutines: it must be safe for concurrent
	// use and must not mutate the result.
	TracePin func(*DomainResult) bool
}

// DefaultConcurrency is the scanner's default worker count. Scans are
// wait-dominated (timeouts on defective domains), so workers are cheap;
// the bound used to be 64 because without resolution coalescing more
// workers meant proportionally more stampede duplication, which the
// iterator's singleflight layer has since eliminated.
const DefaultConcurrency = 128

// DefaultPerDomainParallelism is the default intra-domain fan-out width.
const DefaultPerDomainParallelism = 8

func (s *Scanner) fanout() int {
	if s.PerDomainParallelism > 0 {
		return s.PerDomainParallelism
	}
	return DefaultPerDomainParallelism
}

// fanEach runs fn(i) for every i in [0,n), using up to p concurrent
// goroutines. Results must be written by index so ordering stays
// deterministic regardless of completion order.
func fanEach(n, p int, fn func(int)) {
	if p > n {
		p = n
	}
	if p <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < p; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
}

// NewScanner builds a scanner with the paper's configuration.
func NewScanner(it *resolver.Iterator) *Scanner {
	return &Scanner{Iterator: it, SecondRound: true}
}

// ScanDomain measures a single domain (one Fig. 1 pipeline run,
// including the second round when enabled).
func (s *Scanner) ScanDomain(ctx context.Context, domain dnsname.Name) *DomainResult {
	domainStart := time.Now()
	rec := s.Trace.NewRecorder(domain)
	root := trace.NoSpan
	if rec != nil {
		root = rec.StartSpan(trace.NoSpan, trace.KindDomain, string(domain))
		ctx = trace.ContextWith(ctx, rec, root)
	}
	r := s.scanRound(ctx, rec, root, domain, 1)
	classChanged := false
	if s.SecondRound && (r.FullyDefective() || r.ErrTransient) {
		var firstClass Classification
		if rec != nil {
			firstClass = r.Classify()
		}
		retryStart := time.Now()
		retry := s.scanRound(ctx, rec, root, domain, 2)
		s.Metrics.recordSecondRound(retryStart)
		retry.Rounds = 2
		// The retry replaces the result but keeps the full fault
		// history: what the wire did in round one is part of the
		// domain's measurement record even when round two recovers.
		retry.Faults.merge(r.Faults)
		r = retry
		if rec != nil {
			classChanged = r.Classify() != firstClass
		}
	}
	s.Metrics.recordDomain(domainStart, r)
	if rec != nil {
		class := r.Classify().String()
		rec.Annotate(root, trace.Str("class", class))
		rec.EndSpan(root, nil)
		pin := s.TracePin != nil && s.TracePin(r)
		s.Trace.OfferPin(rec.Finish(class, r.Rounds, r.Err, r.ErrTransient, classChanged), pin)
	}
	return r
}

// scanRound wraps one scanOnce pass in a round span, annotated with
// the classification that round produced on its own.
func (s *Scanner) scanRound(ctx context.Context, rec *trace.Recorder, root trace.SpanID, domain dnsname.Name, round int) (r *DomainResult) {
	if rec != nil {
		span := rec.StartSpan(root, trace.KindRound, "round "+strconv.Itoa(round))
		ctx = trace.ContextWith(ctx, rec, span)
		defer func() {
			rec.Annotate(span, trace.Str("class", r.Classify().String()))
			rec.EndSpan(span, nil)
		}()
	}
	return s.scanOnce(ctx, domain)
}

func (s *Scanner) scanOnce(ctx context.Context, domain dnsname.Name) *DomainResult {
	r := &DomainResult{
		Domain: domain,
		Addrs:  make(map[dnsname.Name][]netip.Addr),
		Rounds: 1,
	}

	rec, round := trace.From(ctx)

	walkStart := time.Now()
	wspan := trace.NoSpan
	wctx := ctx
	if rec != nil {
		wspan = rec.StartSpan(round, trace.KindParentWalk, string(domain))
		wctx = trace.ContextWith(ctx, rec, wspan)
	}
	deleg, err := s.Iterator.Delegation(wctx, domain)
	rec.EndSpan(wspan, err)
	s.Metrics.recordParentWalk(walkStart, err != nil &&
		!errors.Is(err, resolver.ErrNXDomain) && !errors.Is(err, resolver.ErrNoAnswer))
	switch {
	case err == nil:
		r.ParentResponded = true
		r.ParentZone = deleg.Parent.Zone
		r.ParentNS = deleg.Hosts()
		r.ParentAuthoritative = deleg.Authoritative
	case errors.Is(err, resolver.ErrNXDomain), errors.Is(err, resolver.ErrNoAnswer):
		// The parent answered: the domain is simply gone (empty
		// response).
		r.ParentResponded = true
		r.Err = err.Error()
		return r
	default:
		r.Err = err.Error()
		// A dead context makes every in-flight query "time out"; only a
		// live-context transient failure says anything about the wire.
		r.ErrTransient = ctx.Err() == nil && resolver.IsTransientErr(err)
		return r
	}

	// Resolve and probe every delegated nameserver. Each host is one
	// pipelined unit — resolve its addresses (glue from the referral is
	// authoritative enough for the parent's own view; out-of-zone hosts
	// go through full resolution, cached and coalesced across the scan),
	// then immediately probe each address for the domain's NS records.
	// Units fan out across hosts, so a host stuck waiting out timeouts
	// on an unresolvable name overlaps its siblings' probes instead of
	// gating them. Results land in pre-sized per-host slices by index,
	// so the fan-out changes nothing about result ordering.
	glue := glueAddrs(deleg.Glue)
	client := s.Iterator.Client()
	resolved := make([][]netip.Addr, len(r.ParentNS))
	perHost := make([][]ServerResponse, len(r.ParentNS))
	faults := make([]FaultCounts, len(r.ParentNS))
	fanEach(len(r.ParentNS), s.fanout(), func(i int) {
		host := r.ParentNS[i]
		fetchStart := time.Now()
		fspan := trace.NoSpan
		fctx := ctx
		if rec != nil {
			fspan = rec.StartSpan(round, trace.KindNSFetch, string(host))
			fctx = trace.ContextWith(ctx, rec, fspan)
		}
		var fetchErr error
		if addrs, ok := glue[host]; ok {
			resolved[i] = addrs
			if rec != nil {
				rec.Annotate(fspan, trace.Bool("glue", true))
			}
		} else if addrs, err := s.Iterator.ResolveHost(fctx, host); err == nil {
			resolved[i] = addrs
		} else {
			fetchErr = err
		}
		if rec != nil {
			rec.Annotate(fspan, trace.Int("addrs", int64(len(resolved[i]))))
			rec.EndSpan(fspan, fetchErr)
		}
		s.Metrics.recordNSFetch(fetchStart)
		probeStart := time.Now()
		cspan := trace.NoSpan
		cctx := ctx
		if rec != nil {
			cspan = rec.StartSpan(round, trace.KindChildProbe, string(host))
			cctx = trace.ContextWith(ctx, rec, cspan)
		}
		perHost[i] = make([]ServerResponse, len(resolved[i]))
		for j, addr := range resolved[i] {
			sr := ServerResponse{Host: host, Addr: addr}
			pspan := trace.NoSpan
			pctx := cctx
			if rec != nil {
				pspan = rec.StartSpan(cspan, trace.KindProbe, addr.String())
				pctx = trace.ContextWith(cctx, rec, pspan)
			}
			resp, qtr, err := client.QueryTraced(pctx, addr, domain, dnswire.TypeNS)
			faults[i].add(qtr)
			if rec != nil {
				rec.Annotate(pspan, faultAttrs(qtr)...)
				rec.EndSpan(pspan, err)
			}
			if err != nil {
				sr.Err = err.Error()
			} else {
				sr.OK = true
				sr.RCode = resp.Header.RCode
				sr.Authoritative = resp.Header.Authoritative
				for _, rr := range resp.AnswersOfType(dnswire.TypeNS) {
					if rr.Name != domain {
						continue
					}
					sr.NS = append(sr.NS, rr.Data.(dnswire.NSData).Host)
				}
				sort.Slice(sr.NS, func(a, b int) bool { return dnsname.Compare(sr.NS[a], sr.NS[b]) < 0 })
			}
			perHost[i][j] = sr
		}
		rec.EndSpan(cspan, nil)
		s.Metrics.recordChildProbe(probeStart, len(resolved[i]))
	})
	for i, host := range r.ParentNS {
		r.Addrs[host] = resolved[i]
		r.Servers = append(r.Servers, perHost[i]...)
		r.Faults.merge(faults[i])
	}

	// The child may know servers the parent does not (C ⊃ P): resolve
	// and query those too, so NSCount and consistency see the full
	// picture.
	s.queryChildOnlyHosts(ctx, r)
	return r
}

// glueAddrs builds the per-host address map from a referral's glue
// records. Each slice is sorted into netip.Addr.Less order here, once,
// before the per-host fan-out aliases the map's slices: sorting lazily
// inside the workers would run two concurrent in-place sorts on the
// same slice whenever one host appears twice in ParentNS.
func glueAddrs(rrs []dnswire.RR) map[dnsname.Name][]netip.Addr {
	if len(rrs) == 0 {
		return nil
	}
	glue := make(map[dnsname.Name][]netip.Addr)
	for _, rr := range rrs {
		if a, ok := rr.Data.(dnswire.AData); ok {
			glue[rr.Name] = append(glue[rr.Name], a.Addr)
		}
	}
	for _, addrs := range glue {
		sort.Slice(addrs, func(i, j int) bool { return addrs[i].Less(addrs[j]) })
	}
	return glue
}

// faultAttrs renders one probe's per-query fault trace as span
// attributes, keyed exactly like FaultCounts' JSON fields. The
// accounting contract (pinned by TestTraceFaultAccounting): summing
// these attributes over every probe span in a domain's trace
// reproduces the domain's FaultCounts, because FaultCounts aggregates
// precisely the child-probe query traces — across both rounds — and
// nothing else.
func faultAttrs(tr resolver.Trace) []trace.Attr {
	attrs := make([]trace.Attr, 0, 6)
	attrs = append(attrs, trace.Int("attempts", int64(tr.Attempts)))
	if tr.Duplicates > 0 {
		attrs = append(attrs, trace.Int("duplicates", int64(tr.Duplicates)))
	}
	if tr.Truncations > 0 {
		attrs = append(attrs, trace.Int("truncations", int64(tr.Truncations)))
	}
	if tr.QIDMismatches > 0 {
		attrs = append(attrs, trace.Int("qid_mismatches", int64(tr.QIDMismatches)))
	}
	if tr.QuestionMismatches > 0 {
		attrs = append(attrs, trace.Int("question_mismatches", int64(tr.QuestionMismatches)))
	}
	if tr.Malformed > 0 {
		attrs = append(attrs, trace.Int("malformed", int64(tr.Malformed)))
	}
	return attrs
}

// queryChildOnlyHosts resolves nameservers that appear only in child
// answers and records their addresses (used by the diversity analysis).
func (s *Scanner) queryChildOnlyHosts(ctx context.Context, r *DomainResult) {
	inParent := make(map[dnsname.Name]bool, len(r.ParentNS))
	for _, h := range r.ParentNS {
		inParent[h] = true
	}
	var hosts []dnsname.Name
	for _, host := range r.ChildNS() {
		if inParent[host] {
			continue
		}
		if _, done := r.Addrs[host]; done {
			continue
		}
		hosts = append(hosts, host)
	}
	rec, round := trace.From(ctx)
	resolved := make([][]netip.Addr, len(hosts))
	fanEach(len(hosts), s.fanout(), func(i int) {
		fetchStart := time.Now()
		fspan := trace.NoSpan
		fctx := ctx
		if rec != nil {
			fspan = rec.StartSpan(round, trace.KindNSFetch, string(hosts[i]))
			fctx = trace.ContextWith(ctx, rec, fspan)
		}
		addrs, err := s.Iterator.ResolveHost(fctx, hosts[i])
		if err == nil {
			resolved[i] = addrs
		}
		if rec != nil {
			rec.Annotate(fspan, trace.Int("addrs", int64(len(resolved[i]))),
				trace.Bool("child_only", true))
			rec.EndSpan(fspan, err)
		}
		s.Metrics.recordNSFetch(fetchStart)
	})
	for i, host := range hosts {
		r.Addrs[host] = resolved[i]
	}
}

// Scan measures every domain in the list concurrently and returns the
// results in input order.
func (s *Scanner) Scan(ctx context.Context, domains []dnsname.Name) []*DomainResult {
	s.Metrics.setTotal(len(domains))
	workers := s.Concurrency
	if workers <= 0 {
		workers = DefaultConcurrency
	}
	if workers > len(domains) {
		workers = len(domains)
	}
	results := make([]*DomainResult, len(domains))
	if workers == 0 {
		return results
	}

	var wg sync.WaitGroup
	jobs := make(chan int)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				results[idx] = s.ScanDomain(ctx, domains[idx])
			}
		}()
	}
feed:
	for idx := range domains {
		select {
		case jobs <- idx:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()

	// Fill any unprocessed slots (cancelled scans) with error results
	// that carry the context's own error, so callers can tell a deadline
	// from an explicit cancel.
	cancelErr := ctx.Err()
	if cancelErr == nil {
		cancelErr = context.Canceled
	}
	cancelMsg := fmt.Errorf("scan cancelled: %w", cancelErr).Error()
	for i, r := range results {
		if r == nil {
			results[i] = cancelledResult(domains[i], cancelMsg)
		}
	}
	return results
}

// cancelledResult fills a slot whose domain was never scanned. It holds
// the invariants every scanned result holds — Rounds >= 1 and a non-nil
// Addrs map — so downstream consumers (aggregations that write into
// Addrs, JSONL round-trips, the invariance harness) never special-case
// cancellation.
func cancelledResult(domain dnsname.Name, msg string) *DomainResult {
	return &DomainResult{
		Domain: domain,
		Addrs:  make(map[dnsname.Name][]netip.Addr),
		Rounds: 1,
		Err:    msg,
	}
}

// DomainSource feeds domains to ScanStream one at a time, in canonical
// scan order, returning ok=false when exhausted. Sources are pulled
// from a single goroutine, so they need no locking. worldgen's
// QueryStream.Next satisfies this signature directly.
type DomainSource func() (dnsname.Name, bool)

// SliceSource adapts a domain slice to a DomainSource.
func SliceSource(domains []dnsname.Name) DomainSource {
	i := 0
	return func() (dnsname.Name, bool) {
		if i >= len(domains) {
			return "", false
		}
		d := domains[i]
		i++
		return d, true
	}
}

// ScanStream measures every domain the source yields and emits results
// to sw in input order, holding only a bounded out-of-order window in
// memory. It is the streaming counterpart of Scan — the reference
// implementation it stays differentially pinned against: a completed
// stream's bytes and digest are bit-identical to WriteJSONL/Digest over
// Scan's slice for the same input.
//
// When sw was opened with ResumeStream, the first sw.Emitted() domains
// from the source are skipped without scanning (counted as resumed
// skips) and emission continues where the interrupted scan left off.
//
// On cancellation the output stops at the last contiguous genuinely
// measured result: a result observed after ctx is done is discarded
// rather than emitted, because a dead context poisons any still-running
// measurement and "scan cancelled" artifacts must never reach an
// archive a resumed scan will extend. ScanStream then returns ctx's
// error; Finish has still flushed and checkpointed the clean prefix, so
// a follow-up ResumeStream continues from it.
func (s *Scanner) ScanStream(ctx context.Context, src DomainSource, sw *StreamWriter) error {
	workers := s.Concurrency
	if workers <= 0 {
		workers = DefaultConcurrency
	}
	// Cancellation must release workers blocked in Offer even after the
	// feed loop below has already returned — without this, a dropped
	// result's gap would leave the writer waiting for a line that will
	// never arrive.
	stopCancel := context.AfterFunc(ctx, sw.Cancel)
	defer stopCancel()

	type job struct {
		idx    int
		domain dnsname.Name
	}
	jobs := make(chan job)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				r := s.ScanDomain(ctx, j.domain)
				if ctx.Err() != nil {
					// The measurement may have been cut short by the
					// cancel; dropping it leaves a gap at j.idx, which
					// caps the contiguous prefix Finish keeps.
					continue
				}
				sw.Offer(j.idx, r)
			}
		}()
	}

	skip := sw.Emitted()
	idx := 0
feed:
	for {
		d, ok := src()
		if !ok {
			break
		}
		if idx < skip {
			idx++
			s.Metrics.recordResumedSkip()
			continue
		}
		select {
		case jobs <- job{idx: idx, domain: d}:
			idx++
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	if err := sw.Finish(); err != nil {
		return err
	}
	return ctx.Err()
}
