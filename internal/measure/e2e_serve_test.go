package measure

// End-to-end differential for the serving tier: the chaos-profiled
// scanner runs twice over the same miniworld servers — once through the
// in-memory simulated network, once through real UDP sockets fronting
// the same authserver instances — and the scan digests must be
// bit-identical. Anything the socket path adds (kernel buffers, real
// read deadlines, the UDP serving loop's buffer reuse) must be invisible
// to the measurement.

import (
	"context"
	"fmt"
	"net/netip"
	"testing"
	"time"

	"govdns/internal/authserver"
	"govdns/internal/chaos"
	"govdns/internal/dnsname"
	"govdns/internal/miniworld"
	"govdns/internal/simnet"
)

// normalizedUDP adapts the real-socket transport to simnet's failure
// semantics so error *text* — which feeds the digest — matches exactly:
// any socket-level failure (read timeout above all) blocks until the
// context expires and then reports simnet's dropped-packet error, byte
// for byte. Addresses with no socket behave like simnet blackholes.
type normalizedUDP struct {
	inner *authserver.UDPTransport
}

func (n *normalizedUDP) Exchange(ctx context.Context, server netip.Addr, query []byte) ([]byte, error) {
	if _, ok := n.inner.AddrOverride[server]; !ok {
		<-ctx.Done()
		return nil, fmt.Errorf("%w: %v", simnet.ErrDropped, ctx.Err())
	}
	resp, err := n.inner.Exchange(ctx, server, query)
	if err != nil {
		<-ctx.Done()
		return nil, fmt.Errorf("%w: %v", simnet.ErrDropped, ctx.Err())
	}
	return resp, nil
}

// serveWorldOverride stands every miniworld server up on a loopback
// UDP socket and returns the simulated-IP → bound-socket override map
// both real transports (dial and batch) address servers through.
func serveWorldOverride(t *testing.T, w *miniworld.World) map[netip.Addr]netip.AddrPort {
	t.Helper()
	override := make(map[netip.Addr]netip.AddrPort)
	for _, ep := range w.ServerEndpoints() {
		if _, dup := override[ep.Addr]; dup {
			continue
		}
		us, err := authserver.ListenUDP("127.0.0.1:0", ep.Server)
		if err != nil {
			t.Fatalf("listen for %s at %s: %v", ep.Hostname, ep.Addr, err)
		}
		t.Cleanup(func() { _ = us.Close() })
		ap, err := netip.ParseAddrPort(us.Addr().String())
		if err != nil {
			t.Fatalf("parse bound addr %s: %v", us.Addr(), err)
		}
		override[ep.Addr] = ap
	}
	return override
}

// serveWorldUDP is serveWorldOverride behind the dial-per-exchange
// reference transport.
func serveWorldUDP(t *testing.T, w *miniworld.World) *normalizedUDP {
	t.Helper()
	return &normalizedUDP{inner: &authserver.UDPTransport{AddrOverride: serveWorldOverride(t, w)}}
}

// e2eDeadline leaves loopback exchanges far from scheduling noise while
// keeping the dead-server probes (which pay it in full) cheap enough for
// tier-1.
const e2eDeadline = 100 * time.Millisecond

func TestScanDigestRealUDPServing(t *testing.T) {
	w := miniworld.Build()
	domains := miniworld.Domains()

	// Clean differential: simulated network vs real sockets.
	simClean := scanTuned(t, w.Net, w.Roots, domains, 1, 1, true, e2eDeadline, 1)
	realClean := scanTuned(t, serveWorldUDP(t, w), w.Roots, domains, 1, 1, true, e2eDeadline, 1)
	if sim, real := DigestHex(simClean), DigestHex(realClean); sim != real {
		t.Errorf("clean scan digest over real UDP sockets = %s, want simnet's %s", real, sim)
		for i, r := range realClean {
			t.Logf("  real %s: class=%s err=%q | sim err=%q",
				r.Domain, r.Classify(), r.Err, simClean[i].Err)
		}
	}

	// Chaos differential: the same content-keyed fault schedule wrapped
	// around both transports. Only timing-independent classes, so the
	// draw sequence — and each damaged response — is a pure function of
	// the serial query stream both runs share.
	profile := map[dnsname.Name][]chaos.Rule{
		"ns1.city.gov.br.":   {chaos.Persistent(chaos.Truncate, 1)},
		"ns2.city.gov.br.":   {chaos.Persistent(chaos.CorruptQID, 1)},
		"ns1.single.gov.br.": {chaos.Persistent(chaos.Drop, 1)},
		"ns1.provider.com.":  {chaos.Persistent(chaos.FlipRCode, 1)},
	}
	const chaosSeed = 11

	simTr := chaos.Wrap(w.Net, chaosSeed, w.ChaosRules(profile)...)
	simChaos := scanTuned(t, simTr, w.Roots, domains, 1, 1, true, e2eDeadline, 1)
	if simTr.Stats().Total() == 0 {
		t.Fatal("chaos injected nothing on the simnet run; the test is vacuous")
	}

	realTr := chaos.Wrap(serveWorldUDP(t, w), chaosSeed, w.ChaosRules(profile)...)
	realChaos := scanTuned(t, realTr, w.Roots, domains, 1, 1, true, e2eDeadline, 1)
	if realTr.Stats().Total() == 0 {
		t.Fatal("chaos injected nothing on the real-socket run; the test is vacuous")
	}

	if sim, real := DigestHex(simChaos), DigestHex(realChaos); sim != real {
		t.Errorf("chaos scan digest over real UDP sockets = %s, want simnet's %s", real, sim)
		for i, r := range realChaos {
			t.Logf("  real %s: class=%s err=%q faults=%+v | sim class=%s err=%q",
				r.Domain, r.Classify(), r.Err, r.Faults,
				simChaos[i].Classify(), simChaos[i].Err)
		}
	}
}
