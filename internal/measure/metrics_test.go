package measure

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/netip"
	"testing"
	"time"

	"govdns/internal/dnsname"
	"govdns/internal/miniworld"
	"govdns/internal/obs"
	"govdns/internal/resolver"
)

// These tests pin the observability layer's two load-bearing promises:
// metrics are *free* (a metrics-on scan digests bit-identical to a
// metrics-off one) and metrics are *honest* (stage histograms account
// for the scan's wall clock, and the HTTP snapshot reconciles with the
// resolver's own Stats).

// scanInstrumented is scanWith with a live metrics registry wired
// through the whole pipeline: resolver counters and RTT histogram on
// the client, stage histograms and progress counters on the scanner.
// SetMetrics runs before NewIterator because the iterator binds its
// counter handles at construction.
func scanInstrumented(t *testing.T, tr resolver.Transport, roots []netip.Addr, domains []dnsname.Name, workers, fanout int) ([]*DomainResult, *resolver.Client, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	client := resolver.NewClient(tr)
	client.Timeout = 10 * time.Millisecond
	client.Retries = 1
	client.SetMetrics(resolver.NewMetrics(reg))
	it := resolver.NewIterator(client, roots)
	it.AdaptiveOrder = true
	s := NewScanner(it)
	s.Concurrency = workers
	s.PerDomainParallelism = fanout
	s.Metrics = NewScanMetrics(reg)
	return s.Scan(context.Background(), domains), client, reg
}

// slowTransport adds a fixed per-exchange delay, honouring the context
// so timed-out attempts still abort on schedule. The stage-accounting
// test uses it to make wire waits dominate scan time, which turns
// "stage sums ≈ wall clock" into a robust assertion instead of a race
// against scheduler noise.
type slowTransport struct {
	inner resolver.Transport
	d     time.Duration
}

func (s slowTransport) Exchange(ctx context.Context, server netip.Addr, query []byte) ([]byte, error) {
	timer := time.NewTimer(s.d)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-timer.C:
	}
	return s.inner.Exchange(ctx, server, query)
}

// TestScanMetricsDigestBitIdentical: instrumenting a scan must not
// change what it measures. Same world, same schedule shape, fresh
// caches both times — the digests must match bit for bit.
func TestScanMetricsDigestBitIdentical(t *testing.T) {
	w := miniworld.Build()
	domains := miniworld.Domains()

	off := scanWith(t, w.Net, w.Roots, domains, 4, 2, true)
	on, _, _ := scanInstrumented(t, w.Net, w.Roots, domains, 4, 2)

	if a, b := DigestHex(off), DigestHex(on); a != b {
		t.Errorf("metrics-on digest %s != metrics-off digest %s", b, a)
	}
}

// TestScanMetricsStageAccounting runs a fully serial scan over a
// delay-dominated transport and checks the stage histograms against
// ground truth: counts match the scan's structure, and — because every
// recorded stage interval nests inside its domain's interval, and
// serial domains partition the scan's wall clock — the sums obey
// stages ≤ domains ≤ wall clock, with the delay making the inequalities
// tight.
func TestScanMetricsStageAccounting(t *testing.T) {
	w := miniworld.Build()
	domains := miniworld.Domains()
	tr := slowTransport{inner: w.Net, d: 2 * time.Millisecond}

	start := time.Now()
	results, _, reg := scanInstrumented(t, tr, w.Roots, domains, 1, 1)
	wall := time.Since(start)

	parentWalk := reg.Histogram("scan_stage_parent_walk")
	nsFetch := reg.Histogram("scan_stage_ns_fetch")
	childProbe := reg.Histogram("scan_stage_child_probe")
	secondRound := reg.Histogram("scan_stage_second_round")
	domainHist := reg.Histogram("scan_domain_duration")

	var secondRounds uint64
	for _, r := range results {
		if r.Rounds == 2 {
			secondRounds++
		}
	}
	if secondRounds == 0 {
		t.Fatal("no domain took a second round; the fixture should include at least one fully defective domain")
	}
	if got := secondRound.Count(); got != secondRounds {
		t.Errorf("second-round histogram count = %d, want %d (results with Rounds==2)", got, secondRounds)
	}
	if got := reg.Counter("scan_second_rounds_total").Load(); got != secondRounds {
		t.Errorf("scan_second_rounds_total = %d, want %d", got, secondRounds)
	}
	// Each round's scanOnce records exactly one parent walk, so the walk
	// histogram counts first rounds plus retries.
	if got, want := parentWalk.Count(), uint64(len(domains))+secondRounds; got != want {
		t.Errorf("parent-walk histogram count = %d, want %d (%d domains + %d second rounds)", got, want, len(domains), secondRounds)
	}
	if got := domainHist.Count(); got != uint64(len(domains)) {
		t.Errorf("domain histogram count = %d, want %d", got, len(domains))
	}
	if got := reg.Counter("scan_domains_done_total").Load(); got != uint64(len(domains)) {
		t.Errorf("scan_domains_done_total = %d, want %d", got, len(domains))
	}
	if got := reg.Gauge("scan_domains_total").Load(); got != int64(len(domains)) {
		t.Errorf("scan_domains_total gauge = %d, want %d", got, len(domains))
	}

	// Sum accounting. The second-round histogram is excluded from the
	// stage sum: its interval *contains* the retry's walk/fetch/probe
	// intervals, which are already counted.
	stages := parentWalk.Sum() + nsFetch.Sum() + childProbe.Sum()
	domainsSum := domainHist.Sum()
	if stages > domainsSum {
		t.Errorf("stage sums (%v) exceed domain-duration sum (%v); stage intervals must nest inside their domain", stages, domainsSum)
	}
	if domainsSum > wall {
		t.Errorf("domain-duration sum (%v) exceeds scan wall clock (%v); serial domains must partition the scan", domainsSum, wall)
	}
	// Tightness: with a 2ms floor under every exchange, time outside the
	// recorded stages is bookkeeping noise.
	if float64(stages) < 0.8*float64(domainsSum) {
		t.Errorf("stage sums (%v) cover only %.0f%% of domain time (%v); want ≥ 80%% under a delay-dominated transport",
			stages, 100*float64(stages)/float64(domainsSum), domainsSum)
	}
	if float64(domainsSum) < 0.8*float64(wall) {
		t.Errorf("domain time (%v) covers only %.0f%% of wall clock (%v); want ≥ 80%% for a serial scan",
			domainsSum, 100*float64(domainsSum)/float64(wall), wall)
	}
}

// TestMetricsHandlerReconcilesWithStats serves a post-scan registry
// over the same HTTP handler govscan's -metrics flag mounts, and checks
// the snapshot a client would download against resolver.Stats. The two
// views read the same atomics, so any drift means the migration left a
// counter behind.
func TestMetricsHandlerReconcilesWithStats(t *testing.T) {
	w := miniworld.Build()
	_, client, reg := scanInstrumented(t, w.Net, w.Roots, miniworld.Domains(), 4, 2)

	srv := httptest.NewServer(obs.Handler(reg))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	var snap obs.RegistrySnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("decoding /metrics snapshot: %v", err)
	}

	stats := client.Stats()
	checks := []struct {
		name string
		want uint64
	}{
		{"resolver_sent_total", stats.Sent},
		{"resolver_received_total", stats.Received},
		{"resolver_timeouts_total", stats.Timeouts},
		{"resolver_mismatches_total", stats.Mismatches},
		{"resolver_truncations_total", stats.Truncations},
	}
	for _, c := range checks {
		got, ok := snap.Counters[c.name]
		if !ok {
			t.Errorf("snapshot missing counter %q", c.name)
			continue
		}
		if got != c.want {
			t.Errorf("snapshot %s = %d, want %d (resolver.Stats)", c.name, got, c.want)
		}
	}
	if snap.Counters["resolver_sent_total"] == 0 {
		t.Error("resolver_sent_total = 0 after a full scan; registry not wired through the client")
	}
}
