package measure

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/netip"
	"strings"
	"testing"
	"time"

	"govdns/internal/dnsname"
	"govdns/internal/miniworld"
	"govdns/internal/obs"
	"govdns/internal/resolver"
)

// These tests pin the observability layer's two load-bearing promises:
// metrics are *free* (a metrics-on scan digests bit-identical to a
// metrics-off one) and metrics are *honest* (stage histograms account
// for the scan's wall clock, and the HTTP snapshot reconciles with the
// resolver's own Stats).

// scanInstrumented is scanWith with a live metrics registry wired
// through the whole pipeline: resolver counters and RTT histogram on
// the client, stage histograms and progress counters on the scanner.
// SetMetrics runs before NewIterator because the iterator binds its
// counter handles at construction.
func scanInstrumented(t *testing.T, tr resolver.Transport, roots []netip.Addr, domains []dnsname.Name, workers, fanout int) ([]*DomainResult, *resolver.Client, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	client := resolver.NewClient(tr)
	client.Timeout = 10 * time.Millisecond
	client.Retries = 1
	client.SetMetrics(resolver.NewMetrics(reg))
	it := resolver.NewIterator(client, roots)
	it.AdaptiveOrder = true
	s := NewScanner(it)
	s.Concurrency = workers
	s.PerDomainParallelism = fanout
	s.Metrics = NewScanMetrics(reg)
	return s.Scan(context.Background(), domains), client, reg
}

// slowTransport adds a fixed per-exchange delay, honouring the context
// so timed-out attempts still abort on schedule. The stage-accounting
// test uses it to make wire waits dominate scan time, which turns
// "stage sums ≈ wall clock" into a robust assertion instead of a race
// against scheduler noise.
type slowTransport struct {
	inner resolver.Transport
	d     time.Duration
}

func (s slowTransport) Exchange(ctx context.Context, server netip.Addr, query []byte) ([]byte, error) {
	timer := time.NewTimer(s.d)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-timer.C:
	}
	return s.inner.Exchange(ctx, server, query)
}

// TestScanMetricsDigestBitIdentical: instrumenting a scan must not
// change what it measures. Same world, same schedule shape, fresh
// caches both times — the digests must match bit for bit.
func TestScanMetricsDigestBitIdentical(t *testing.T) {
	w := miniworld.Build()
	domains := miniworld.Domains()

	off := scanWith(t, w.Net, w.Roots, domains, 4, 2, true)
	on, _, _ := scanInstrumented(t, w.Net, w.Roots, domains, 4, 2)

	if a, b := DigestHex(off), DigestHex(on); a != b {
		t.Errorf("metrics-on digest %s != metrics-off digest %s", b, a)
	}
}

// TestScanMetricsStageAccounting runs a fully serial scan over a
// delay-dominated transport and checks the stage histograms against
// ground truth: counts match the scan's structure, and — because every
// recorded stage interval nests inside its domain's interval, and
// serial domains partition the scan's wall clock — the sums obey
// stages ≤ domains ≤ wall clock, with the delay making the inequalities
// tight.
func TestScanMetricsStageAccounting(t *testing.T) {
	w := miniworld.Build()
	domains := miniworld.Domains()
	tr := slowTransport{inner: w.Net, d: 2 * time.Millisecond}

	start := time.Now()
	results, _, reg := scanInstrumented(t, tr, w.Roots, domains, 1, 1)
	wall := time.Since(start)

	parentWalk := reg.Histogram("scan_stage_parent_walk")
	nsFetch := reg.Histogram("scan_stage_ns_fetch")
	childProbe := reg.Histogram("scan_stage_child_probe")
	secondRound := reg.Histogram("scan_stage_second_round")
	domainHist := reg.Histogram("scan_domain_duration")

	var secondRounds uint64
	for _, r := range results {
		if r.Rounds == 2 {
			secondRounds++
		}
	}
	if secondRounds == 0 {
		t.Fatal("no domain took a second round; the fixture should include at least one fully defective domain")
	}
	if got := secondRound.Count(); got != secondRounds {
		t.Errorf("second-round histogram count = %d, want %d (results with Rounds==2)", got, secondRounds)
	}
	if got := reg.Counter("scan_second_rounds_total").Load(); got != secondRounds {
		t.Errorf("scan_second_rounds_total = %d, want %d", got, secondRounds)
	}
	// Each round's scanOnce records exactly one parent walk, so the walk
	// histogram counts first rounds plus retries.
	if got, want := parentWalk.Count(), uint64(len(domains))+secondRounds; got != want {
		t.Errorf("parent-walk histogram count = %d, want %d (%d domains + %d second rounds)", got, want, len(domains), secondRounds)
	}
	if got := domainHist.Count(); got != uint64(len(domains)) {
		t.Errorf("domain histogram count = %d, want %d", got, len(domains))
	}
	if got := reg.Counter("scan_domains_done_total").Load(); got != uint64(len(domains)) {
		t.Errorf("scan_domains_done_total = %d, want %d", got, len(domains))
	}
	if got := reg.Gauge("scan_domains_total").Load(); got != int64(len(domains)) {
		t.Errorf("scan_domains_total gauge = %d, want %d", got, len(domains))
	}

	// Sum accounting. The second-round histogram is excluded from the
	// stage sum: its interval *contains* the retry's walk/fetch/probe
	// intervals, which are already counted.
	stages := parentWalk.Sum() + nsFetch.Sum() + childProbe.Sum()
	domainsSum := domainHist.Sum()
	if stages > domainsSum {
		t.Errorf("stage sums (%v) exceed domain-duration sum (%v); stage intervals must nest inside their domain", stages, domainsSum)
	}
	if domainsSum > wall {
		t.Errorf("domain-duration sum (%v) exceeds scan wall clock (%v); serial domains must partition the scan", domainsSum, wall)
	}
	// Tightness: with a 2ms floor under every exchange, time outside the
	// recorded stages is bookkeeping noise.
	if float64(stages) < 0.8*float64(domainsSum) {
		t.Errorf("stage sums (%v) cover only %.0f%% of domain time (%v); want ≥ 80%% under a delay-dominated transport",
			stages, 100*float64(stages)/float64(domainsSum), domainsSum)
	}
	if float64(domainsSum) < 0.8*float64(wall) {
		t.Errorf("domain time (%v) covers only %.0f%% of wall clock (%v); want ≥ 80%% for a serial scan",
			domainsSum, 100*float64(domainsSum)/float64(wall), wall)
	}
}

// TestMetricsHandlerReconcilesWithStats serves a post-scan registry
// over the same HTTP handler govscan's -metrics flag mounts, and checks
// the snapshot a client would download against resolver.Stats. The two
// views read the same atomics, so any drift means the migration left a
// counter behind.
func TestMetricsHandlerReconcilesWithStats(t *testing.T) {
	w := miniworld.Build()
	_, client, reg := scanInstrumented(t, w.Net, w.Roots, miniworld.Domains(), 4, 2)

	srv := httptest.NewServer(obs.Handler(reg))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	var snap obs.RegistrySnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("decoding /metrics snapshot: %v", err)
	}

	stats := client.Stats()
	checks := []struct {
		name string
		want uint64
	}{
		{"resolver_sent_total", stats.Sent},
		{"resolver_received_total", stats.Received},
		{"resolver_timeouts_total", stats.Timeouts},
		{"resolver_mismatches_total", stats.Mismatches},
		{"resolver_truncations_total", stats.Truncations},
	}
	for _, c := range checks {
		got, ok := snap.Counters[c.name]
		if !ok {
			t.Errorf("snapshot missing counter %q", c.name)
			continue
		}
		if got != c.want {
			t.Errorf("snapshot %s = %d, want %d (resolver.Stats)", c.name, got, c.want)
		}
	}
	if snap.Counters["resolver_sent_total"] == 0 {
		t.Error("resolver_sent_total = 0 after a full scan; registry not wired through the client")
	}
}

// TestProgressETAEWMA drives the progress reporter's rate estimator
// with a synthetic clock through the scenario the EWMA exists for: a
// fast first phase, then the second round kicks in and the completion
// rate collapses. The ETA must converge to the current rate instead of
// the cumulative average, which still remembers the fast phase.
func TestProgressETAEWMA(t *testing.T) {
	base := time.Unix(1700000000, 0)
	const total = 10000
	const tick = 10 * time.Second

	st := &progressState{lastAt: base}
	now := base
	var done uint64

	// A zero-progress first window primes the rate at 0: no basis for
	// an ETA yet.
	now = now.Add(tick)
	line := progressLine(st, now, done, total, 0, 0, 0, 0, 0, 0)
	if !strings.Contains(line, "eta ?") {
		t.Errorf("zero-progress line should have no ETA: %q", line)
	}

	// Fast phase: 50 domains per 10s tick (5/s) for 20 ticks — over
	// three tau, enough to converge up from the zero-primed start.
	for i := 0; i < 20; i++ {
		done += 50
		now = now.Add(tick)
		line = progressLine(st, now, done, total, 0, 0, 0, 0, 0, 0)
	}
	if st.rate < 4.5 || st.rate > 5.0 {
		t.Fatalf("fast-phase rate = %.2f, want ~5/s", st.rate)
	}

	// Second round kicks in: 5 domains per tick (0.5/s) for 6 minutes
	// (6 tau), long enough for the fast phase to be forgotten.
	for i := 0; i < 36; i++ {
		done += 5
		now = now.Add(tick)
		line = progressLine(st, now, done, total, 0, 0, 0, 0, 0, 0)
	}
	if st.rate < 0.5 || st.rate > 0.6 {
		t.Errorf("slow-phase rate = %.3f/s, want ~0.5/s (EWMA must forget the fast phase)", st.rate)
	}

	// The cumulative average is still dominated by the fast phase —
	// the misestimate this estimator replaces. Guard the test's own
	// premise so the scenario stays meaningful if constants change.
	cumulative := float64(done) / now.Sub(base).Seconds()
	if cumulative < 2*st.rate {
		t.Fatalf("scenario too gentle: cumulative %.3f/s vs EWMA %.3f/s", cumulative, st.rate)
	}

	// The printed ETA is remaining/EWMA-rate, nowhere near the
	// cumulative extrapolation.
	wantETA := time.Duration(float64(total-done) / st.rate * float64(time.Second)).Round(time.Second)
	if !strings.Contains(line, "eta "+wantETA.String()) {
		t.Errorf("line %q should carry eta %s", line, wantETA)
	}

	// Finished scans stop predicting.
	now = now.Add(tick)
	line = progressLine(st, now, total, total, 0, 0, 0, 0, 0, 0)
	if !strings.Contains(line, "eta ?") {
		t.Errorf("completed scan should print no ETA: %q", line)
	}
}

// TestProgressLineCounters: rates and percentages come from the window
// deltas and done counts, and a non-advancing clock cannot divide by
// zero.
func TestProgressLineCounters(t *testing.T) {
	base := time.Unix(1700000000, 0)
	st := &progressState{lastAt: base}
	line := progressLine(st, base.Add(10*time.Second), 40, 100, 800, 10, 5, 0, 0, 0)
	for _, want := range []string{"40/100 domains", "(4.0/s, 80 qps)", "errors 25.0%", "transient 12.5%"} {
		if !strings.Contains(line, want) {
			t.Errorf("line %q missing %q", line, want)
		}
	}
	// Same timestamp again: window clamps to 1s instead of dividing by
	// zero; deltas are zero so rates read 0.
	line = progressLine(st, base.Add(10*time.Second), 40, 100, 800, 10, 5, 0, 0, 0)
	if !strings.Contains(line, "(0.0/s, 0 qps)") {
		t.Errorf("zero-window line = %q", line)
	}
}

// TestProgressLineStreamed: the streamed-path tail appears only when the
// stream writer has been active, and the checkpoint age is computed from
// the synthetic clock, not the wall clock.
func TestProgressLineStreamed(t *testing.T) {
	base := time.Unix(1700000000, 0)

	// Slice path: no streamed results, no checkpoint — no tail.
	st := &progressState{lastAt: base}
	line := progressLine(st, base.Add(10*time.Second), 40, 100, 0, 0, 0, 0, 0, 0)
	if strings.Contains(line, "stream") || strings.Contains(line, "ckpt") {
		t.Errorf("slice-path line grew a streaming tail: %q", line)
	}

	// Streaming with a checkpoint 73s ago on the synthetic clock.
	st = &progressState{lastAt: base}
	now := base.Add(10 * time.Second)
	ckptNS := now.Add(-73 * time.Second).UnixNano()
	line = progressLine(st, now, 40, 100, 0, 0, 0, 37, 9, ckptNS)
	if want := "| stream 37 emitted buf 9 ckpt age 1m13s"; !strings.Contains(line, want) {
		t.Errorf("line %q missing %q", line, want)
	}

	// Streaming before the first checkpoint: tail present, age "none".
	st = &progressState{lastAt: base}
	line = progressLine(st, now, 40, 100, 0, 0, 0, 5, 2, 0)
	if want := "| stream 5 emitted buf 2 ckpt age none"; !strings.Contains(line, want) {
		t.Errorf("line %q missing %q", line, want)
	}

	// Resume-only window: checkpoint exists but nothing emitted yet this
	// run (the writer re-checkpointed on resume) — tail still shown.
	st = &progressState{lastAt: base}
	line = progressLine(st, now, 0, 100, 0, 0, 0, 0, 0, ckptNS)
	if !strings.Contains(line, "stream 0 emitted") {
		t.Errorf("resume-only line missing tail: %q", line)
	}
}
