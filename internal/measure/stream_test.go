package measure

import (
	"bytes"
	"context"
	"fmt"
	"net/netip"
	"os"
	"path/filepath"
	"testing"

	"govdns/internal/chaos"
	"govdns/internal/dnsname"
	"govdns/internal/obs"
	"govdns/internal/resolver"
	"govdns/internal/worldgen"
)

// streamWorld builds the small differential world shared by the
// streaming tests — same (seed, scale) pair the invariance harness
// uses, so the slice-path behaviour here is already pinned elsewhere.
func streamWorld(t *testing.T) *worldgen.Active {
	t.Helper()
	w := worldgen.Generate(worldgen.Config{Seed: 42, Scale: 0.002})
	return worldgen.Build(w)
}

// streamScanner builds a fresh scanner — fresh client and iterator per
// run, so no resolver cache state leaks between the interrupted and
// resumed halves of a scan. Adaptive ordering stays off: resume
// determinism is defined over content-pure behaviour, and health
// feedback would reorder server choices across the restart.
func streamScanner(tr resolver.Transport, roots []netip.Addr, workers, fanout int) *Scanner {
	client := resolver.NewClient(tr)
	client.Timeout = worldDeadline
	client.Retries = 0
	it := resolver.NewIterator(client, roots)
	it.AdaptiveOrder = false
	s := NewScanner(it)
	s.Concurrency = workers
	s.PerDomainParallelism = fanout
	return s
}

// canonicalJSONL renders results exactly as the slice path archives
// them; the streaming path is pinned byte-for-byte against this.
func canonicalJSONL(t testing.TB, results []*DomainResult) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, results); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	return buf.Bytes()
}

// TestScanStreamMatchesSlice is the tentpole differential: for the same
// world and input order, ScanStream's output bytes and digest must be
// bit-identical to WriteJSONL/Digest over the slice-based Scan — from
// both a SliceSource and worldgen's streaming QueryStream emitter.
func TestScanStreamMatchesSlice(t *testing.T) {
	active := streamWorld(t)
	slice := scanTuned(t, active.Net, active.Roots, active.QueryList, 8, 2, false, worldDeadline, 0)
	wantBytes := canonicalJSONL(t, slice)
	wantDigest := DigestHex(slice)

	sources := []struct {
		name string
		src  DomainSource
	}{
		{"SliceSource", SliceSource(active.QueryList)},
		{"QueryStream", worldgen.NewQueryStream(active.World).Next},
	}
	for _, tc := range sources {
		t.Run(tc.name, func(t *testing.T) {
			var got bytes.Buffer
			sw := NewStreamWriter(&got, StreamConfig{})
			s := streamScanner(active.Net, active.Roots, 8, 2)
			if err := s.ScanStream(context.Background(), tc.src, sw); err != nil {
				t.Fatalf("ScanStream: %v", err)
			}
			if sw.Emitted() != len(active.QueryList) {
				t.Fatalf("emitted %d results, want %d", sw.Emitted(), len(active.QueryList))
			}
			if !bytes.Equal(got.Bytes(), wantBytes) {
				t.Error("streamed bytes differ from slice-path WriteJSONL")
			}
			if sw.DigestHex() != wantDigest {
				t.Errorf("streamed digest %s != slice digest %s", sw.DigestHex(), wantDigest)
			}
		})
	}
}

// TestStreamWriterReorders: results offered out of index order come out
// in index order, the reorder window's highwater is tracked, and the
// final bytes match the slice path.
func TestStreamWriterReorders(t *testing.T) {
	results := goldenResults()
	var buf bytes.Buffer
	sw := NewStreamWriter(&buf, StreamConfig{MaxBuffer: 8})
	for _, idx := range []int{2, 1, 0, 3} {
		if err := sw.Offer(idx, results[idx]); err != nil {
			t.Fatalf("Offer(%d): %v", idx, err)
		}
	}
	if err := sw.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), canonicalJSONL(t, results)) {
		t.Error("reordered emission differs from canonical bytes")
	}
	// Occupancy peaks when index 0 lands next to buffered 1 and 2, the
	// instant before the contiguous run drains.
	if sw.Highwater() != 3 {
		t.Errorf("highwater = %d, want 3", sw.Highwater())
	}
	if sw.DigestHex() != DigestHex(results) {
		t.Error("streamed digest differs from slice digest")
	}
}

// TestStreamWriterBackpressure: with a window of one, an offer for a
// non-cursor index blocks until the cursor advances — and completes
// once it does, rather than deadlocking or dropping.
func TestStreamWriterBackpressure(t *testing.T) {
	results := goldenResults()
	var buf bytes.Buffer
	sw := NewStreamWriter(&buf, StreamConfig{MaxBuffer: 1})
	if err := sw.Offer(2, results[2]); err != nil { // fills the window
		t.Fatalf("Offer(2): %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- sw.Offer(1, results[1]) }() // must block: window full, 1 != cursor
	select {
	case err := <-done:
		t.Fatalf("Offer(1) did not block on a full window (err=%v)", err)
	default:
	}
	if err := sw.Offer(0, results[0]); err != nil { // cursor index always admitted
		t.Fatalf("Offer(0): %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("blocked Offer(1) failed after drain: %v", err)
	}
	if err := sw.Offer(3, results[3]); err != nil {
		t.Fatalf("Offer(3): %v", err)
	}
	if err := sw.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), canonicalJSONL(t, results)) {
		t.Error("backpressured emission differs from canonical bytes")
	}
}

// TestStreamWriterRejectsMisuse: nil results, duplicate indices, and
// indices behind the cursor are programming errors, reported as a
// sticky error rather than silently corrupting the archive.
func TestStreamWriterRejectsMisuse(t *testing.T) {
	results := goldenResults()
	cases := []struct {
		name  string
		drive func(sw *StreamWriter) error
	}{
		{"nil result", func(sw *StreamWriter) error { return sw.Offer(0, nil) }},
		{"duplicate pending", func(sw *StreamWriter) error {
			if err := sw.Offer(1, results[1]); err != nil {
				return fmt.Errorf("setup: %w", err)
			}
			return sw.Offer(1, results[1])
		}},
		{"behind cursor", func(sw *StreamWriter) error {
			if err := sw.Offer(0, results[0]); err != nil {
				return fmt.Errorf("setup: %w", err)
			}
			return sw.Offer(0, results[0])
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sw := NewStreamWriter(&bytes.Buffer{}, StreamConfig{})
			if err := tc.drive(sw); err == nil {
				t.Error("misuse accepted")
			}
			if sw.Err() == nil {
				t.Error("misuse did not stick as the writer error")
			}
		})
	}
}

// killResumeRoundTrip runs the full crash drill against a reference
// scan: stream with checkpoints, cancel after killAt results, resume
// from the checkpoint with a fresh scanner, and require the merged
// output bytes and digest to be bit-identical to the uninterrupted
// run's. newScanner must return a *fresh* scanner (and, under chaos, a
// fresh deterministic transport) on every call.
func killResumeRoundTrip(t *testing.T, domains []dnsname.Name, newScanner func() *Scanner, killAt int, wantBytes []byte, wantDigest string) {
	t.Helper()
	dir := t.TempDir()
	outPath := filepath.Join(dir, "scan.jsonl")
	ckPath := filepath.Join(dir, "scan.ckpt")
	cfg := StreamConfig{CheckpointPath: ckPath, CheckpointEvery: 4, ScanKey: "kill-resume"}

	// Interrupted run: cancel once killAt results have been emitted.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	n := 0
	killCfg := cfg
	killCfg.OnResult = func(*DomainResult) {
		n++
		if n == killAt {
			cancel()
		}
	}
	f, err := os.Create(outPath)
	if err != nil {
		t.Fatal(err)
	}
	sw := NewStreamWriter(f, killCfg)
	err = newScanner().ScanStream(ctx, SliceSource(domains), sw)
	if closeErr := f.Close(); closeErr != nil {
		t.Fatal(closeErr)
	}
	if err == nil {
		t.Fatal("interrupted scan returned no error")
	}
	emitted := sw.Emitted()
	if emitted < killAt || emitted >= len(domains) {
		t.Fatalf("kill landed at %d emitted of %d total (killAt=%d): not a mid-scan interruption",
			emitted, len(domains), killAt)
	}

	// Resumed run: fresh writer from the checkpoint, fresh scanner.
	sw2, info, err := ResumeStream(outPath, cfg)
	if err != nil {
		t.Fatalf("ResumeStream: %v", err)
	}
	defer sw2.Close()
	if info.Emitted != emitted {
		t.Fatalf("resume found %d emitted, writer reported %d", info.Emitted, emitted)
	}
	if err := newScanner().ScanStream(context.Background(), SliceSource(domains), sw2); err != nil {
		t.Fatalf("resumed ScanStream: %v", err)
	}
	if sw2.Emitted() != len(domains) {
		t.Fatalf("resumed scan emitted %d of %d", sw2.Emitted(), len(domains))
	}

	got, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, wantBytes) {
		t.Error("merged output differs from uninterrupted run")
	}
	if sw2.DigestHex() != wantDigest {
		t.Errorf("merged digest %s != uninterrupted %s", sw2.DigestHex(), wantDigest)
	}
	// The final checkpoint must agree with the completed archive.
	ck, err := LoadCheckpoint(ckPath)
	if err != nil {
		t.Fatalf("final checkpoint: %v", err)
	}
	if ck.Emitted != uint64(len(domains)) {
		t.Errorf("final checkpoint emitted = %d, want %d", ck.Emitted, len(domains))
	}
}

// TestScanStreamKillAtNResumeClean: killing a clean-world streaming
// scan after N results and resuming from the checkpoint reproduces the
// uninterrupted archive bit for bit, including at an N that is not a
// checkpoint-interval multiple.
func TestScanStreamKillAtNResumeClean(t *testing.T) {
	active := streamWorld(t)
	slice := scanTuned(t, active.Net, active.Roots, active.QueryList, 8, 2, false, worldDeadline, 0)
	wantBytes := canonicalJSONL(t, slice)
	wantDigest := DigestHex(slice)

	for _, killAt := range []int{3, 10} { // off and on checkpoint-boundary-ish
		t.Run(fmt.Sprintf("killAt%d", killAt), func(t *testing.T) {
			killResumeRoundTrip(t, active.QueryList,
				func() *Scanner { return streamScanner(active.Net, active.Roots, 8, 2) },
				killAt, wantBytes, wantDigest)
		})
	}
}

// TestScanStreamKillAtNResumeChaos is the crash drill under serial
// persistent chaos: with one worker, content-keyed persistent faults
// are a pure function of the bytes on the wire, so a killed-and-resumed
// scan must reproduce the uninterrupted archive exactly even though
// every query can be dropped, truncated, or mangled. Duplicate/Flap
// (stateful rules) stay out, and adaptive ordering stays off, exactly
// as in the serial-reproducibility invariance test.
func TestScanStreamKillAtNResumeChaos(t *testing.T) {
	active := streamWorld(t)
	rules := []chaos.Rule{
		chaos.Persistent(chaos.Drop, 0.03),
		chaos.Persistent(chaos.Truncate, 0.05),
		chaos.Persistent(chaos.FlipRCode, 0.05),
		chaos.Persistent(chaos.CorruptQID, 0.02),
		chaos.Persistent(chaos.MismatchQuestion, 0.02),
		chaos.Persistent(chaos.Mangle, 0.02),
	}
	ref := chaos.Wrap(active.Net, 7, rules...)
	slice := scanTuned(t, ref, active.Roots, active.QueryList, 1, 1, false, worldDeadline, 0)
	if ref.Stats().Total() == 0 {
		t.Fatal("chaos injected nothing; the test is vacuous")
	}
	wantBytes := canonicalJSONL(t, slice)
	wantDigest := DigestHex(slice)

	killResumeRoundTrip(t, active.QueryList,
		func() *Scanner {
			tr := chaos.Wrap(active.Net, 7, rules...)
			return streamScanner(tr, active.Roots, 1, 1)
		},
		5, wantBytes, wantDigest)
}

// writeCheckpointedPrefix streams results[0:prefix] into outPath with a
// checkpoint covering exactly that prefix, then abandons the writer
// without Finish — the on-disk state of a process killed mid-scan.
func writeCheckpointedPrefix(t testing.TB, outPath, ckPath, key string, results []*DomainResult, prefix int) {
	t.Helper()
	f, err := os.Create(outPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sw := NewStreamWriter(f, StreamConfig{CheckpointPath: ckPath, CheckpointEvery: prefix, ScanKey: key})
	for i := 0; i < prefix; i++ {
		if err := sw.Offer(i, results[i]); err != nil {
			t.Fatalf("Offer(%d): %v", i, err)
		}
	}
	if sw.Emitted() != prefix {
		t.Fatalf("emitted %d, want %d (checkpoint interval missed)", sw.Emitted(), prefix)
	}
	if _, err := LoadCheckpoint(ckPath); err != nil {
		t.Fatalf("prefix checkpoint not written: %v", err)
	}
	// No Finish, no Flush: anything past the checkpoint is whatever the
	// test appends to the file by hand.
}

// TestResumeSalvagesCanonicalTail: lines written after the last
// checkpoint survive a crash when they are complete and canonical —
// resume verifies and keeps them — while a torn final line is
// truncated away. The completed archive is still bit-identical.
func TestResumeSalvagesCanonicalTail(t *testing.T) {
	results := goldenResults()
	want := canonicalJSONL(t, results)
	dir := t.TempDir()
	outPath := filepath.Join(dir, "scan.jsonl")
	ckPath := filepath.Join(dir, "scan.ckpt")

	writeCheckpointedPrefix(t, outPath, ckPath, "salvage", results, 2)

	// The crash got result 2 fully to disk and half of result 3.
	line2 := canonicalJSONL(t, results[2:3])
	line3 := canonicalJSONL(t, results[3:4])
	torn := line3[:10]
	f, err := os.OpenFile(outPath, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(append(append([]byte(nil), line2...), torn...)); err != nil {
		t.Fatal(err)
	}
	f.Close()

	cfg := StreamConfig{CheckpointPath: ckPath, CheckpointEvery: 2, ScanKey: "salvage"}
	sw, info, err := ResumeStream(outPath, cfg)
	if err != nil {
		t.Fatalf("ResumeStream: %v", err)
	}
	defer sw.Close()
	if info.Emitted != 3 || info.Salvaged != 1 || info.DroppedBytes != int64(len(torn)) {
		t.Fatalf("ResumeInfo = %+v, want emitted 3, salvaged 1, dropped %d", info, len(torn))
	}
	if err := sw.Offer(3, results[3]); err != nil {
		t.Fatalf("Offer(3): %v", err)
	}
	if err := sw.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
	got, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("salvaged archive differs from canonical bytes:\ngot:\n%s\nwant:\n%s", got, want)
	}
	if sw.DigestHex() != DigestHex(results) {
		t.Error("salvaged digest differs from slice digest")
	}
	ck, err := LoadCheckpoint(ckPath)
	if err != nil {
		t.Fatalf("final checkpoint: %v", err)
	}
	if ck.Emitted != uint64(len(results)) {
		t.Errorf("final checkpoint emitted = %d, want %d", ck.Emitted, len(results))
	}
}

// TestResumeDropsGarbageTail: a non-canonical tail (text that is not a
// result line) is truncated, not salvaged and not silently skipped
// past — the archive returns to exactly the checkpointed prefix.
func TestResumeDropsGarbageTail(t *testing.T) {
	results := goldenResults()
	dir := t.TempDir()
	outPath := filepath.Join(dir, "scan.jsonl")
	ckPath := filepath.Join(dir, "scan.ckpt")
	writeCheckpointedPrefix(t, outPath, ckPath, "garbage", results, 2)
	prefix, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}

	garbage := []byte("{\"domain\":\"x.gov.br.\",\"unknown\":true}\nnot json at all\n")
	f, err := os.OpenFile(outPath, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(garbage); err != nil {
		t.Fatal(err)
	}
	f.Close()

	cfg := StreamConfig{CheckpointPath: ckPath, ScanKey: "garbage"}
	sw, info, err := ResumeStream(outPath, cfg)
	if err != nil {
		t.Fatalf("ResumeStream: %v", err)
	}
	defer sw.Close()
	if info.Emitted != 2 || info.Salvaged != 0 || info.DroppedBytes != int64(len(garbage)) {
		t.Fatalf("ResumeInfo = %+v, want emitted 2, salvaged 0, dropped %d", info, len(garbage))
	}
	if err := sw.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
	got, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, prefix) {
		t.Error("garbage tail not truncated back to the checkpointed prefix")
	}
}

// TestResumeRejectsCorruption: every way the on-disk pair can be
// inconsistent — corrupted checkpoint, mismatched scan key, output
// shorter than the checkpoint claims, or a rewritten byte inside the
// checkpointed prefix — must fail resume loudly.
func TestResumeRejectsCorruption(t *testing.T) {
	results := goldenResults()
	setup := func(t *testing.T, key string) (outPath, ckPath string) {
		dir := t.TempDir()
		outPath = filepath.Join(dir, "scan.jsonl")
		ckPath = filepath.Join(dir, "scan.ckpt")
		writeCheckpointedPrefix(t, outPath, ckPath, key, results, 3)
		return outPath, ckPath
	}
	flipByte := func(t *testing.T, path string, off int64) {
		t.Helper()
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if off < 0 {
			off += int64(len(data))
		}
		data[off] ^= 0x01
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	t.Run("corrupt checkpoint", func(t *testing.T) {
		_, ckPath := setup(t, "k")
		flipByte(t, ckPath, 40)
		if _, err := LoadCheckpoint(ckPath); err == nil {
			t.Error("corrupted checkpoint accepted")
		}
	})
	t.Run("truncated checkpoint", func(t *testing.T) {
		outPath, ckPath := setup(t, "k")
		data, err := os.ReadFile(ckPath)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(ckPath, data[:len(data)/2], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := ResumeStream(outPath, StreamConfig{CheckpointPath: ckPath, ScanKey: "k"}); err == nil {
			t.Error("torn checkpoint accepted")
		}
	})
	t.Run("scan key mismatch", func(t *testing.T) {
		outPath, ckPath := setup(t, "k")
		if _, _, err := ResumeStream(outPath, StreamConfig{CheckpointPath: ckPath, ScanKey: "other"}); err == nil {
			t.Error("resume accepted a checkpoint from a different scan")
		}
	})
	t.Run("output shorter than checkpoint", func(t *testing.T) {
		outPath, ckPath := setup(t, "k")
		info, err := os.Stat(outPath)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Truncate(outPath, info.Size()-5); err != nil {
			t.Fatal(err)
		}
		if _, _, err := ResumeStream(outPath, StreamConfig{CheckpointPath: ckPath, ScanKey: "k"}); err == nil {
			t.Error("resume accepted an output shorter than the checkpointed offset")
		}
	})
	t.Run("prefix rewritten", func(t *testing.T) {
		outPath, ckPath := setup(t, "k")
		flipByte(t, outPath, 20)
		if _, _, err := ResumeStream(outPath, StreamConfig{CheckpointPath: ckPath, ScanKey: "k"}); err == nil {
			t.Error("resume accepted a modified checkpointed prefix")
		}
	})
	t.Run("missing output", func(t *testing.T) {
		outPath, ckPath := setup(t, "k")
		if err := os.Remove(outPath); err != nil {
			t.Fatal(err)
		}
		if _, _, err := ResumeStream(outPath, StreamConfig{CheckpointPath: ckPath, ScanKey: "k"}); err == nil {
			t.Error("resume accepted a missing output file")
		}
	})
}

// TestScanStreamMetrics: the streaming counters observable via obs —
// results streamed, checkpoints written, resumed skips, and the buffer
// highwater gauge — reflect what actually happened.
func TestScanStreamMetrics(t *testing.T) {
	active := streamWorld(t)
	dir := t.TempDir()
	outPath := filepath.Join(dir, "scan.jsonl")
	ckPath := filepath.Join(dir, "scan.ckpt")

	reg := obs.NewRegistry()
	m := NewScanMetrics(reg)
	cfg := StreamConfig{CheckpointPath: ckPath, CheckpointEvery: 4, ScanKey: "metrics", Metrics: m}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	n := 0
	killCfg := cfg
	killCfg.OnResult = func(*DomainResult) {
		n++
		if n == 6 {
			cancel()
		}
	}
	f, err := os.Create(outPath)
	if err != nil {
		t.Fatal(err)
	}
	s := streamScanner(active.Net, active.Roots, 8, 2)
	s.Metrics = m
	sw := NewStreamWriter(f, killCfg)
	if err := s.ScanStream(ctx, SliceSource(active.QueryList), sw); err == nil {
		t.Fatal("interrupted scan returned no error")
	}
	f.Close()
	emitted := sw.Emitted()
	if got := reg.Counter("scan_results_streamed_total").Load(); got != uint64(emitted) {
		t.Errorf("scan_results_streamed_total = %d, want %d", got, emitted)
	}
	if got := reg.Counter("scan_checkpoints_written_total").Load(); got < 1 {
		t.Errorf("scan_checkpoints_written_total = %d, want >= 1", got)
	}
	if got := reg.Gauge("scan_stream_buffer_highwater").Load(); got != int64(sw.Highwater()) {
		t.Errorf("scan_stream_buffer_highwater = %d, want %d", got, sw.Highwater())
	}

	sw2, _, err := ResumeStream(outPath, cfg)
	if err != nil {
		t.Fatalf("ResumeStream: %v", err)
	}
	defer sw2.Close()
	s2 := streamScanner(active.Net, active.Roots, 8, 2)
	s2.Metrics = m
	if err := s2.ScanStream(context.Background(), SliceSource(active.QueryList), sw2); err != nil {
		t.Fatalf("resumed ScanStream: %v", err)
	}
	if got := reg.Counter("scan_resumed_skips_total").Load(); got != uint64(emitted) {
		t.Errorf("scan_resumed_skips_total = %d, want %d", got, emitted)
	}
	if got := reg.Counter("scan_results_streamed_total").Load(); got != uint64(len(active.QueryList)) {
		t.Errorf("scan_results_streamed_total = %d after resume, want %d", got, len(active.QueryList))
	}
}
