package measure

import (
	"context"
	"net/netip"
	"testing"
	"time"

	"govdns/internal/chaos"
	"govdns/internal/dnsname"
	"govdns/internal/dnswire"
	"govdns/internal/miniworld"
	"govdns/internal/resolver"
	"govdns/internal/worldgen"
)

// The differential harness: a scan's digest must be a function of the
// world alone — not of worker count, per-domain fan-out, or transient
// wire damage the second round can outlast. These tests are the
// correctness gate later performance work is measured against.

// scanConfigs are the concurrency/fan-out shapes every invariance
// property is checked across: fully serial, moderately parallel, and
// wider-than-the-world.
var scanConfigs = []struct {
	workers, fanout int
}{
	{1, 1},
	{8, 2},
	{64, 8},
}

// scanWith runs one full scan of domains over transport with the given
// schedule shape. Each call builds a fresh client and iterator so no
// cache state leaks between scans. The tight 10ms deadline and single
// retry give the miniworld recovery test exact fault-window arithmetic.
func scanWith(t *testing.T, tr resolver.Transport, roots []netip.Addr, domains []dnsname.Name, workers, fanout int, adaptive bool) []*DomainResult {
	return scanTuned(t, tr, roots, domains, workers, fanout, adaptive, 10*time.Millisecond, 1)
}

// scanTuned is scanWith with an explicit deadline and retry budget. The
// worldgen-scale tests use a roomier deadline and no retry: hundreds of
// goroutines park on dead-server timers there, and a deadline within
// scheduling noise of zero would let wall-clock pressure time out a
// *live* exchange and break digest invariance for real.
func scanTuned(t *testing.T, tr resolver.Transport, roots []netip.Addr, domains []dnsname.Name, workers, fanout int, adaptive bool, timeout time.Duration, retries int) []*DomainResult {
	return scanPooled(t, tr, roots, domains, workers, fanout, adaptive, timeout, retries, nil)
}

// scanPooled is scanTuned with an explicit codec-arena pool on the
// client (nil uses dnswire.DefaultPool), for the pooled-vs-unpooled
// invariance check.
func scanPooled(t *testing.T, tr resolver.Transport, roots []netip.Addr, domains []dnsname.Name, workers, fanout int, adaptive bool, timeout time.Duration, retries int, pool *dnswire.Pool) []*DomainResult {
	t.Helper()
	client := resolver.NewClient(tr)
	client.Timeout = timeout
	client.Retries = retries
	client.WirePool = pool
	it := resolver.NewIterator(client, roots)
	it.AdaptiveOrder = adaptive
	s := NewScanner(it)
	s.Concurrency = workers
	s.PerDomainParallelism = fanout
	return s.Scan(context.Background(), domains)
}

// assertResultInvariants checks the shape every DomainResult must hold
// no matter how the scan ended — completed, degraded, or cancelled:
// non-nil, at least one round attempted, and a non-nil Addrs map.
// Downstream analyses rely on these without re-checking per result.
func assertResultInvariants(t *testing.T, results []*DomainResult) {
	t.Helper()
	for i, r := range results {
		if r == nil {
			t.Fatalf("result %d is nil", i)
		}
		if r.Rounds < 1 {
			t.Errorf("%s: Rounds = %d, want >= 1", r.Domain, r.Rounds)
		}
		if r.Addrs == nil {
			t.Errorf("%s: nil Addrs map", r.Domain)
		}
	}
}

// worldDeadline is the per-query deadline for worldgen-scale scans —
// the simulator's default, far enough from scheduling noise that a
// *live* exchange cannot time out just because hundreds of goroutines
// are parked on dead-server timers.
const worldDeadline = 25 * time.Millisecond

// TestScanInvarianceAcrossConfigs: the same (seed, scale) world scanned
// under three different concurrency/fan-out configurations must produce
// bit-identical digests.
func TestScanInvarianceAcrossConfigs(t *testing.T) {
	w := worldgen.Generate(worldgen.Config{Seed: 42, Scale: 0.002})
	active := worldgen.Build(w)

	var want string
	for _, cfg := range scanConfigs {
		results := scanTuned(t, active.Net, active.Roots, active.QueryList, cfg.workers, cfg.fanout, true, worldDeadline, 0)
		assertResultInvariants(t, results)
		got := DigestHex(results)
		if want == "" {
			want = got
			continue
		}
		if got != want {
			t.Errorf("config (workers=%d fanout=%d): digest %s != %s",
				cfg.workers, cfg.fanout, got, want)
		}
	}
}

// TestScanInvariancePersistentChaosReproducibleAndMonotone: two
// properties that persistent, content-keyed chaos must satisfy at world
// scale. First, a serial scan is fully reproducible: rerunning the same
// (world seed, chaos seed) pair digests identically, because with one
// worker the query stream — and thus every content-keyed fault draw — is
// a pure function of the world. Second, degradation is monotone across
// every schedule shape: chaos can only withhold or damage answers, so no
// domain may classify *healthier* under chaos than in a clean scan.
// Bit-identical cross-config digests are deliberately not asserted here:
// a walk's query set depends on zone-cache warm-up order (a warm cache
// skips ancestor queries a cold one must issue), so under faults the
// per-domain outcome legitimately varies with scheduling even though
// every individual query is answered deterministically. AdaptiveOrder is
// off so health feedback does not additionally reorder server choices.
func TestScanInvariancePersistentChaosReproducibleAndMonotone(t *testing.T) {
	w := worldgen.Generate(worldgen.Config{Seed: 42, Scale: 0.002})
	active := worldgen.Build(w)

	rules := []chaos.Rule{
		chaos.Persistent(chaos.Drop, 0.03),
		chaos.Persistent(chaos.Truncate, 0.05),
		chaos.Persistent(chaos.FlipRCode, 0.05),
		chaos.Persistent(chaos.CorruptQID, 0.02),
		chaos.Persistent(chaos.MismatchQuestion, 0.02),
		chaos.Persistent(chaos.Mangle, 0.02),
	}

	clean := scanTuned(t, active.Net, active.Roots, active.QueryList, 8, 2, false, worldDeadline, 0)
	cleanClass := make(map[dnsname.Name]Classification, len(clean))
	for _, r := range clean {
		cleanClass[r.Domain] = r.Classify()
	}

	var serial string
	for _, cfg := range scanConfigs {
		tr := chaos.Wrap(active.Net, 7, rules...)
		results := scanTuned(t, tr, active.Roots, active.QueryList, cfg.workers, cfg.fanout, false, worldDeadline, 0)
		if tr.Stats().Total() == 0 {
			t.Fatal("chaos injected nothing; the test is vacuous")
		}
		if len(results) != len(active.QueryList) {
			t.Fatalf("config (workers=%d fanout=%d): %d results for %d domains",
				cfg.workers, cfg.fanout, len(results), len(active.QueryList))
		}
		if cfg.workers == 1 && cfg.fanout == 1 {
			serial = DigestHex(results)
		}
		assertResultInvariants(t, results)
		for _, r := range results {
			if c := r.Classify(); c == ClassHealthy && cleanClass[r.Domain] != ClassHealthy {
				t.Errorf("config (workers=%d fanout=%d): %s classified healthy under chaos but %s clean",
					cfg.workers, cfg.fanout, r.Domain, cleanClass[r.Domain])
			}
		}
	}

	// Reproducibility: a second serial run must digest identically to the
	// serial run above.
	tr := chaos.Wrap(active.Net, 7, rules...)
	rerun := scanTuned(t, tr, active.Roots, active.QueryList, 1, 1, false, worldDeadline, 0)
	if got := DigestHex(rerun); got != serial {
		t.Errorf("serial persistent-chaos scan not reproducible: digest %s != %s", got, serial)
	}
}

// TestScanInvariancePooledVsUnpooled: arena recycling on the wire path
// is pure memory management, so a scan must digest identically whether
// the client's codec arenas come from the shared default pool, a
// dedicated pool, or a pool that never recycles (every exchange on a
// fresh arena). Checked twice: a clean parallel scan, and a serial scan
// under persistent content-keyed chaos — the latter pushes every decode
// error path (mangled packets, corrupted IDs, truncation) through the
// arena decoder, whose error strings feed the digest.
func TestScanInvariancePooledVsUnpooled(t *testing.T) {
	w := worldgen.Generate(worldgen.Config{Seed: 42, Scale: 0.002})
	active := worldgen.Build(w)

	pools := []struct {
		name string
		pool func() *dnswire.Pool
	}{
		{"default", func() *dnswire.Pool { return nil }},
		{"dedicated", dnswire.NewPool},
		{"norecycle", func() *dnswire.Pool { return &dnswire.Pool{NoRecycle: true} }},
	}
	rules := []chaos.Rule{
		chaos.Persistent(chaos.Drop, 0.03),
		chaos.Persistent(chaos.Truncate, 0.05),
		chaos.Persistent(chaos.FlipRCode, 0.05),
		chaos.Persistent(chaos.CorruptQID, 0.02),
		chaos.Persistent(chaos.MismatchQuestion, 0.02),
		chaos.Persistent(chaos.Mangle, 0.02),
	}

	var wantClean, wantChaos string
	for _, pc := range pools {
		pool := pc.pool()
		clean := scanPooled(t, active.Net, active.Roots, active.QueryList, 8, 2, true, worldDeadline, 0, pool)
		if got := DigestHex(clean); wantClean == "" {
			wantClean = got
		} else if got != wantClean {
			t.Errorf("clean scan with %s pool: digest %s != %s", pc.name, got, wantClean)
		}
		if pc.name == "dedicated" {
			// The pooled path must actually have engaged: arenas checked
			// out and recycled, not silently bypassed.
			if s := pool.Stats(); s.Checkouts == 0 || s.Recycles == 0 {
				t.Errorf("dedicated pool never cycled an arena: %+v", s)
			}
		}

		tr := chaos.Wrap(active.Net, 7, rules...)
		damaged := scanPooled(t, tr, active.Roots, active.QueryList, 1, 1, false, worldDeadline, 0, pc.pool())
		if tr.Stats().Total() == 0 {
			t.Fatal("chaos injected nothing; the test is vacuous")
		}
		if got := DigestHex(damaged); wantChaos == "" {
			wantChaos = got
		} else if got != wantChaos {
			t.Errorf("serial chaos scan with %s pool: digest %s != %s", pc.name, got, wantChaos)
		}
	}
}

// transientSchedules gives, per fault class, a windowed schedule sized to
// knock out the whole first round of a probe (client budget: 2 attempts,
// each discarding up to resolver.DefaultMaxDiscards rejected responses)
// and then go quiet, plus the round count the scanner is expected to
// report. Duplicate is the exception: a duplicate of the attempt's own
// re-sent query carries the current transaction ID and the right answer,
// so the client absorbs it within round one.
var transientSchedules = []struct {
	class  chaos.Class
	rules  []chaos.Rule
	rounds int
}{
	{chaos.Drop, []chaos.Rule{chaos.Transient(chaos.Drop, 2)}, 2},
	{chaos.Delay, []chaos.Rule{{Class: chaos.Delay, Count: 2, Delay: 60 * time.Millisecond}}, 2},
	{chaos.Duplicate, []chaos.Rule{chaos.Transient(chaos.Duplicate, 2)}, 1},
	{chaos.Truncate, []chaos.Rule{chaos.Transient(chaos.Truncate, 2)}, 2},
	{chaos.CorruptQID, []chaos.Rule{chaos.Transient(chaos.CorruptQID, 10)}, 2},
	{chaos.MismatchQuestion, []chaos.Rule{chaos.Transient(chaos.MismatchQuestion, 10)}, 2},
	{chaos.Mangle, []chaos.Rule{chaos.Transient(chaos.Mangle, 10)}, 2},
	{chaos.FlipRCode, []chaos.Rule{chaos.Transient(chaos.FlipRCode, 1)}, 2},
	{chaos.Flap, []chaos.Rule{chaos.FlapOutage(0, 2)}, 2},
}

// TestScanInvarianceTransientChaosRecovery: for every fault class, a
// scan whose probe targets are disturbed only transiently must converge
// — via the second round — to the digest of an undisturbed scan. The
// schedule targets the probe-only servers of city.gov.br (two NS) and
// single.gov.br (one NS), so delegation walks stay clean and the window
// arithmetic is exact; the scan runs serially because windowed rules
// depend on arrival order.
func TestScanInvarianceTransientChaosRecovery(t *testing.T) {
	w := miniworld.Build()
	domains := miniworld.Domains()

	clean := scanWith(t, w.Net, w.Roots, domains, 1, 1, true)
	want := DigestHex(clean)
	for _, r := range clean {
		if r.Domain == "city.gov.br." || r.Domain == "single.gov.br." {
			if !r.Responsive() || r.Rounds != 1 {
				t.Fatalf("clean scan: %s not healthy in one round", r.Domain)
			}
		}
	}

	for _, tc := range transientSchedules {
		t.Run(tc.class.String(), func(t *testing.T) {
			tr := w.ChaosProfile(3, map[dnsname.Name][]chaos.Rule{
				"ns1.city.gov.br.":   tc.rules,
				"ns2.city.gov.br.":   tc.rules,
				"ns1.single.gov.br.": tc.rules,
			})
			results := scanWith(t, tr, w.Roots, domains, 1, 1, true)
			if tr.Stats().Injected[tc.class] == 0 {
				t.Fatalf("no %s faults injected; the test is vacuous", tc.class)
			}
			if got := DigestHex(results); got != want {
				t.Errorf("digest under transient %s = %s, want clean %s", tc.class, got, want)
				for _, r := range results {
					t.Logf("  %s: rounds=%d class=%s err=%q faults=%+v",
						r.Domain, r.Rounds, r.Classify(), r.Err, r.Faults)
				}
			}
			for _, r := range results {
				if r.Domain != "city.gov.br." && r.Domain != "single.gov.br." {
					continue
				}
				if !r.Responsive() {
					t.Errorf("%s not recovered under transient %s", r.Domain, tc.class)
				}
				if r.Rounds != tc.rounds {
					t.Errorf("%s under transient %s: rounds=%d, want %d",
						r.Domain, tc.class, r.Rounds, tc.rounds)
				}
				// Only rejection classes leave fault traces: timeouts
				// (Drop, Delay, Flap) and accepted-but-useless answers
				// (FlipRCode) are visible in Stats, not in Trace.
				if tc.rounds == 2 && r.Faults.Total() == 0 &&
					tc.class != chaos.Drop && tc.class != chaos.Delay &&
					tc.class != chaos.Flap && tc.class != chaos.FlipRCode {
					t.Errorf("%s under transient %s: no faults recorded", r.Domain, tc.class)
				}
			}
			// Fault-accounting self-consistency: the per-domain counters
			// merged across rounds can never exceed what the transport
			// actually injected — a second round that re-counted round
			// one's faults would push the sum past the injected total.
			if field := faultField(tc.class); field != nil {
				var sum uint64
				for _, r := range results {
					sum += field(r.Faults)
				}
				if injected := tr.Stats().Injected[tc.class]; sum > injected {
					t.Errorf("merged %s faults across domains = %d > %d injected; rounds double-counted",
						tc.class, sum, injected)
				}
			}
		})
	}
}

// faultField maps a chaos class to the FaultCounts field its injections
// land in when the client rejects the damaged response. Classes the
// client experiences as silence (Drop, Delay, Flap) or accepts as a
// well-formed answer (FlipRCode) have no trace field and return nil.
func faultField(c chaos.Class) func(FaultCounts) uint64 {
	switch c {
	case chaos.Duplicate:
		return func(f FaultCounts) uint64 { return f.Duplicates }
	case chaos.Truncate:
		return func(f FaultCounts) uint64 { return f.Truncations }
	case chaos.CorruptQID:
		return func(f FaultCounts) uint64 { return f.QIDMismatches }
	case chaos.MismatchQuestion:
		return func(f FaultCounts) uint64 { return f.QuestionMismatches }
	default:
		return nil
	}
}

// TestScanInvariancePersistentChaosDegradesGracefully: when probe
// targets are *persistently* damaged, recovery is impossible — the scan
// must still terminate, classify the damaged domains as defective (never
// healthy), and leave undisturbed domains exactly as a clean scan found
// them.
func TestScanInvariancePersistentChaosDegradesGracefully(t *testing.T) {
	cases := []struct {
		name  string
		rules []chaos.Rule
	}{
		{"truncate", []chaos.Rule{chaos.Persistent(chaos.Truncate, 1)}},
		{"qid", []chaos.Rule{chaos.Persistent(chaos.CorruptQID, 1)}},
		{"mangle", []chaos.Rule{chaos.Persistent(chaos.Mangle, 1)}},
		{"rcode", []chaos.Rule{chaos.Persistent(chaos.FlipRCode, 1)}},
		{"drop", []chaos.Rule{chaos.Persistent(chaos.Drop, 1)}},
	}
	w := miniworld.Build()
	domains := miniworld.Domains()

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr := w.ChaosProfile(5, map[dnsname.Name][]chaos.Rule{
				"ns1.city.gov.br.":   tc.rules,
				"ns2.city.gov.br.":   tc.rules,
				"ns1.single.gov.br.": tc.rules,
			})
			results := scanWith(t, tr, w.Roots, domains, 4, 2, true)
			if tr.Stats().Total() == 0 {
				t.Fatal("chaos injected nothing; the test is vacuous")
			}
			byDomain := make(map[dnsname.Name]*DomainResult, len(results))
			for _, r := range results {
				if r == nil {
					t.Fatal("nil result in scan output")
				}
				byDomain[r.Domain] = r
			}
			for _, d := range []dnsname.Name{"city.gov.br.", "single.gov.br."} {
				r := byDomain[d]
				if c := r.Classify(); c != ClassFullyLame {
					t.Errorf("%s under persistent %s classified %s, want %s",
						d, tc.name, c, ClassFullyLame)
				}
				if r.Rounds != 2 {
					t.Errorf("%s under persistent %s: rounds=%d, want 2 (retry must run and fail)",
						d, tc.name, r.Rounds)
				}
			}
			// Collateral check: domains whose servers were not targeted
			// keep their clean-world classification.
			for d, wantClass := range map[dnsname.Name]Classification{
				"lame.gov.br.":   ClassPartiallyLame,
				"dead.gov.br.":   ClassFullyLame,
				"hosted.gov.br.": ClassHealthy,
			} {
				if c := byDomain[d].Classify(); c != wantClass {
					t.Errorf("%s under persistent %s classified %s, want %s", d, tc.name, c, wantClass)
				}
			}
		})
	}
}
