package measure

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding"
	"encoding/base64"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// This file is the streaming side of the scan pipeline (DESIGN.md §13):
// StreamWriter emits results as ordered JSONL with a bounded
// out-of-order reorder window, periodically writing an atomic
// checkpoint record, and ResumeStream restarts a killed scan from the
// last checkpoint so the final output — and its canonical digest — is
// bit-identical to an uninterrupted run.

// DefaultStreamMaxBuffer bounds the out-of-order reorder window: how
// many completed-but-not-yet-flushable results the writer holds while
// waiting for an earlier index. Together with the worker count it caps
// the streaming scan's in-flight memory at O(buffer + workers), however
// many domains the source yields.
const DefaultStreamMaxBuffer = 1024

// DefaultCheckpointEvery is how many emitted results separate two
// checkpoint records when StreamConfig.CheckpointEvery is unset.
const DefaultCheckpointEvery = 256

// StreamConfig configures a StreamWriter.
type StreamConfig struct {
	// CheckpointPath, when set, enables crash-safe progress records:
	// every CheckpointEvery results the output is flushed and fsynced
	// and a checkpoint is written atomically (temp file + rename)
	// beside it. Empty disables checkpointing (pure ordered emission).
	CheckpointPath string
	// CheckpointEvery is the emission interval between checkpoints.
	// Zero or negative means DefaultCheckpointEvery.
	CheckpointEvery int
	// MaxBuffer bounds the reorder window. Zero or negative means
	// DefaultStreamMaxBuffer.
	MaxBuffer int
	// ScanKey names the scan's identity (world seed/scale, domain list,
	// chaos profile). It is stored in every checkpoint and verified on
	// resume, so a checkpoint can never silently extend a different
	// scan's output.
	ScanKey string
	// Metrics, when non-nil, receives the streaming counters
	// (results_streamed, buffer_highwater, checkpoints_written).
	Metrics *ScanMetrics
	// OnResult, when non-nil, observes each result as it is emitted, in
	// emission order. It runs under the writer's lock: keep it cheap.
	OnResult func(*DomainResult)
	// OnCheckpoint, when non-nil, fires after each checkpoint record
	// lands durably, with the emitted count it covers. It runs under the
	// writer's lock, after the output has been flushed and fsynced and
	// the checkpoint atomically replaced — the hook a dependent durable
	// stream (the monitor's alert log) uses to commit exactly the
	// records whose scan results are now crash-safe.
	OnCheckpoint func(emitted int)
}

func (c *StreamConfig) maxBuffer() int {
	if c.MaxBuffer > 0 {
		return c.MaxBuffer
	}
	return DefaultStreamMaxBuffer
}

func (c *StreamConfig) checkpointEvery() int {
	if c.CheckpointEvery > 0 {
		return c.CheckpointEvery
	}
	return DefaultCheckpointEvery
}

// StreamWriter emits scan results as JSONL in input order while
// concurrent workers complete them in completion order. Offer blocks
// when the reorder window is full — except for the result the cursor is
// waiting on, which is always accepted, so the pipeline cannot
// deadlock: the worker holding the cursor's result is by construction
// never one of the waiting ones.
//
// The bytes written are exactly WriteJSONL's for the same results, and
// the digest it accumulates is exactly Digest over them — both pinned
// by the stream-vs-slice differential tests.
type StreamWriter struct {
	cfg      StreamConfig
	file     *os.File // non-nil when the destination is a file (fsync before checkpoints)
	ownsFile bool     // ResumeStream opened it; Close closes it

	mu        sync.Mutex
	cond      *sync.Cond
	bw        *bufio.Writer
	enc       *json.Encoder
	offset    int64     // bytes encoded so far (== file size after a flush)
	byteHash  hash.Hash // SHA-256 over every output byte, checkpointed for resume verification
	digest    *DigestAccumulator
	next      int // index the output is waiting on; also the emitted count
	pending   map[int]*DomainResult
	highwater int
	sinceCkpt int
	cancelled bool
	finished  bool
	err       error // sticky I/O error
}

// NewStreamWriter starts a fresh stream onto w. When w is an *os.File
// the writer fsyncs it before each checkpoint; checkpointing onto a
// non-file destination still works but only orders the records, it
// cannot make them durable.
func NewStreamWriter(w io.Writer, cfg StreamConfig) *StreamWriter {
	sw := &StreamWriter{
		cfg:      cfg,
		byteHash: sha256.New(),
		digest:   NewDigestAccumulator(),
		pending:  make(map[int]*DomainResult),
	}
	sw.file, _ = w.(*os.File)
	sw.cond = sync.NewCond(&sw.mu)
	sw.bw = bufio.NewWriter(w)
	sw.enc = json.NewEncoder(&tapWriter{w: sw.bw, h: sw.byteHash, n: &sw.offset})
	return sw
}

// tapWriter counts and hashes everything written through it, so the
// checkpoint can record (offset, byte-hash state) pairs that a resume
// verifies against the file.
type tapWriter struct {
	w io.Writer
	h hash.Hash
	n *int64
}

func (t *tapWriter) Write(p []byte) (int, error) {
	n, err := t.w.Write(p)
	t.h.Write(p[:n])
	*t.n += int64(n)
	return n, err
}

// Offer hands the writer result idx. It blocks while the reorder window
// is full and idx is not the next index in sequence; it returns the
// writer's sticky I/O error, if any. After Cancel, offers are dropped
// and return immediately.
func (sw *StreamWriter) Offer(idx int, r *DomainResult) error {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	for !sw.cancelled && sw.err == nil && idx != sw.next && len(sw.pending) >= sw.cfg.maxBuffer() {
		sw.cond.Wait()
	}
	if sw.cancelled || sw.err != nil {
		return sw.err
	}
	if r == nil || idx < sw.next || sw.pending[idx] != nil {
		sw.err = fmt.Errorf("measure: stream offer %d is nil, duplicated, or precedes cursor %d", idx, sw.next)
		sw.cond.Broadcast()
		return sw.err
	}
	sw.pending[idx] = r
	if len(sw.pending) > sw.highwater {
		sw.highwater = len(sw.pending)
		sw.cfg.Metrics.recordBufferHighwater(sw.highwater)
	}
	sw.drainLocked()
	sw.cond.Broadcast()
	return sw.err
}

// drainLocked flushes the contiguous run of pending results at the
// cursor and writes a checkpoint whenever one falls due.
func (sw *StreamWriter) drainLocked() {
	for sw.err == nil && !sw.cancelled {
		r, ok := sw.pending[sw.next]
		if !ok {
			return
		}
		delete(sw.pending, sw.next)
		sw.emitLocked(r)
		if sw.err == nil && sw.cfg.CheckpointPath != "" && sw.sinceCkpt >= sw.cfg.checkpointEvery() {
			sw.checkpointLocked()
		}
	}
}

func (sw *StreamWriter) emitLocked(r *DomainResult) {
	out := toResultJSON(r)
	if err := sw.enc.Encode(&out); err != nil {
		sw.err = fmt.Errorf("measure: encoding streamed result %d: %w", sw.next, err)
		return
	}
	sw.digest.Add(r)
	sw.next++
	sw.sinceCkpt++
	sw.cfg.Metrics.recordStreamed()
	if sw.cfg.OnResult != nil {
		sw.cfg.OnResult(r)
	}
}

// Cancel puts the writer into drop mode: buffered and future offers are
// discarded and workers blocked in Offer are released. Everything
// already emitted stays valid — Finish still flushes and checkpoints
// the contiguous prefix — so Cancel plus Finish is the crash-consistent
// way to stop early. ScanStream arms it via context.AfterFunc.
func (sw *StreamWriter) Cancel() {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	sw.cancelled = true
	sw.cond.Broadcast()
}

// Finish drains what the cursor can reach, flushes the output, and —
// when checkpointing is enabled — records a final checkpoint covering
// exactly the emitted prefix. It returns the writer's sticky error.
// Results still buffered beyond a gap (a cancelled scan's discarded
// indices) are dropped: they are beyond the prefix a resume can extend.
func (sw *StreamWriter) Finish() error {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	if sw.finished {
		return sw.err
	}
	sw.finished = true
	if !sw.cancelled {
		sw.drainLocked()
	}
	sw.pending = make(map[int]*DomainResult)
	if sw.err == nil {
		if err := sw.flushLocked(); err != nil {
			sw.err = err
		}
	}
	if sw.err == nil && sw.cfg.CheckpointPath != "" {
		sw.checkpointLocked()
	}
	sw.cond.Broadcast()
	return sw.err
}

// Close releases the output file when the writer owns it (ResumeStream
// opened it). For writers built on a caller-provided destination it is
// a no-op: the destination stays the caller's to close.
func (sw *StreamWriter) Close() error {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	if sw.ownsFile && sw.file != nil {
		err := sw.file.Close()
		sw.file = nil
		return err
	}
	return nil
}

// Emitted returns the number of results written so far — the stream
// cursor. A resumed writer starts at the checkpointed count, which is
// how ScanStream knows how many source domains to skip.
func (sw *StreamWriter) Emitted() int {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return sw.next
}

// Digest returns the canonical scan digest over every emitted result —
// the streaming equivalent of Digest over a result slice.
func (sw *StreamWriter) Digest() [sha256.Size]byte {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return sw.digest.Sum()
}

// DigestHex is Digest rendered as hex.
func (sw *StreamWriter) DigestHex() string {
	d := sw.Digest()
	return hex.EncodeToString(d[:])
}

// Err returns the writer's sticky I/O error.
func (sw *StreamWriter) Err() error {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return sw.err
}

// Highwater returns the reorder window's high-water mark.
func (sw *StreamWriter) Highwater() int {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return sw.highwater
}

func (sw *StreamWriter) flushLocked() error {
	if err := sw.bw.Flush(); err != nil {
		return err
	}
	if sw.file != nil {
		if err := sw.file.Sync(); err != nil {
			return err
		}
	}
	return nil
}

// --- checkpoint records -------------------------------------------------

const (
	checkpointMagic   = "govdns-scan-checkpoint"
	checkpointVersion = 1
)

// checkpointJSON is the on-disk checkpoint record. The checksum covers
// every other field, so a torn or tampered record is detected rather
// than trusted; the file itself is replaced atomically (temp + rename),
// so a crash leaves either the old record or the new one, never a mix.
type checkpointJSON struct {
	Magic    string `json:"magic"`
	Version  int    `json:"version"`
	ScanKey  string `json:"scan_key,omitempty"`
	Emitted  uint64 `json:"emitted"`
	Offset   int64  `json:"offset"`
	Digest   string `json:"digest_state"`
	ByteHash string `json:"byte_hash_state"`
	Checksum string `json:"checksum"`
}

func (c *checkpointJSON) sum() string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00%d\x00%s\x00%d\x00%d\x00%s\x00%s",
		c.Magic, c.Version, c.ScanKey, c.Emitted, c.Offset, c.Digest, c.ByteHash)
	return hex.EncodeToString(h.Sum(nil))
}

func (sw *StreamWriter) checkpointLocked() {
	if err := sw.flushLocked(); err != nil {
		sw.err = err
		return
	}
	ck := &checkpointJSON{
		Magic:   checkpointMagic,
		Version: checkpointVersion,
		ScanKey: sw.cfg.ScanKey,
		Emitted: uint64(sw.next),
		Offset:  sw.offset,
	}
	dst, err := sw.digest.MarshalBinary()
	if err != nil {
		sw.err = fmt.Errorf("measure: checkpoint digest state: %w", err)
		return
	}
	bst, err := sw.byteHash.(encoding.BinaryMarshaler).MarshalBinary()
	if err != nil {
		sw.err = fmt.Errorf("measure: checkpoint byte-hash state: %w", err)
		return
	}
	ck.Digest = base64.StdEncoding.EncodeToString(dst)
	ck.ByteHash = base64.StdEncoding.EncodeToString(bst)
	ck.Checksum = ck.sum()
	data, err := json.Marshal(ck)
	if err != nil {
		sw.err = fmt.Errorf("measure: checkpoint encode: %w", err)
		return
	}
	if err := writeFileAtomic(sw.cfg.CheckpointPath, append(data, '\n')); err != nil {
		sw.err = fmt.Errorf("measure: checkpoint write: %w", err)
		return
	}
	sw.sinceCkpt = 0
	sw.cfg.Metrics.recordCheckpoint()
	if sw.cfg.OnCheckpoint != nil {
		sw.cfg.OnCheckpoint(sw.next)
	}
}

// writeFileAtomic writes data so a crash at any instant leaves either
// the previous file or the complete new one: write to a temp file in
// the same directory, fsync, rename over the target, fsync the
// directory (best effort — not every filesystem supports it).
func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	_, werr := f.Write(data)
	if serr := f.Sync(); werr == nil {
		werr = serr
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp, path)
	}
	if werr != nil {
		_ = os.Remove(tmp)
		return werr
	}
	if dir, err := os.Open(filepath.Dir(path)); err == nil {
		_ = dir.Sync()
		_ = dir.Close()
	}
	return nil
}

// Checkpoint is a validated, decoded checkpoint record.
type Checkpoint struct {
	ScanKey string
	Emitted uint64
	Offset  int64

	digest   *DigestAccumulator
	byteHash hash.Hash
}

// LoadCheckpoint reads and fully validates a checkpoint. Any corruption
// — torn JSON, wrong magic or version, checksum mismatch, undecodable
// hash states — is an explicit error: a resume must abort on a bad
// checkpoint, never silently skip it (FuzzCheckpointReader pins this).
func LoadCheckpoint(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var c checkpointJSON
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("measure: checkpoint %s: %w", path, err)
	}
	if c.Magic != checkpointMagic {
		return nil, fmt.Errorf("measure: checkpoint %s: bad magic %q", path, c.Magic)
	}
	if c.Version != checkpointVersion {
		return nil, fmt.Errorf("measure: checkpoint %s: unsupported version %d", path, c.Version)
	}
	if c.Checksum != c.sum() {
		return nil, fmt.Errorf("measure: checkpoint %s: checksum mismatch (torn or corrupted record)", path)
	}
	dst, err := base64.StdEncoding.DecodeString(c.Digest)
	if err != nil {
		return nil, fmt.Errorf("measure: checkpoint %s: digest state: %w", path, err)
	}
	bst, err := base64.StdEncoding.DecodeString(c.ByteHash)
	if err != nil {
		return nil, fmt.Errorf("measure: checkpoint %s: byte-hash state: %w", path, err)
	}
	ck := &Checkpoint{ScanKey: c.ScanKey, Emitted: c.Emitted, Offset: c.Offset}
	ck.digest = &DigestAccumulator{}
	if err := ck.digest.UnmarshalBinary(dst); err != nil {
		return nil, fmt.Errorf("measure: checkpoint %s: %w", path, err)
	}
	if ck.digest.Count() != c.Emitted {
		return nil, fmt.Errorf("measure: checkpoint %s: digest count %d != emitted %d", path, ck.digest.Count(), c.Emitted)
	}
	ck.byteHash = sha256.New()
	if err := ck.byteHash.(encoding.BinaryUnmarshaler).UnmarshalBinary(bst); err != nil {
		return nil, fmt.Errorf("measure: checkpoint %s: byte-hash state: %w", path, err)
	}
	if c.Offset < 0 {
		return nil, fmt.Errorf("measure: checkpoint %s: negative offset %d", path, c.Offset)
	}
	return ck, nil
}

// ResumeInfo reports what ResumeStream found on disk.
type ResumeInfo struct {
	// Emitted is the total number of results already in the output —
	// the checkpointed count plus any salvaged tail lines. ScanStream
	// skips this many source domains.
	Emitted int
	// Salvaged counts complete, canonical JSONL lines found past the
	// checkpoint offset (results the crash wrote but never
	// checkpointed) that were verified and kept.
	Salvaged int
	// DroppedBytes is how much torn or non-canonical tail was truncated
	// away.
	DroppedBytes int64
}

// ResumeStream reopens an interrupted streaming scan: it validates the
// checkpoint, verifies the checkpointed output prefix byte-for-byte
// against the recorded hash state, salvages any complete results
// written after the last checkpoint, truncates the torn tail, and
// returns a writer positioned to continue. Feeding the returned writer
// the same scan (same world, same order, same chaos profile) yields a
// final file and digest bit-identical to an uninterrupted run.
//
// Every failure mode is an explicit error — a corrupt checkpoint or a
// mismatched output must abort, never be silently skipped.
func ResumeStream(outPath string, cfg StreamConfig) (*StreamWriter, ResumeInfo, error) {
	var info ResumeInfo
	if cfg.CheckpointPath == "" {
		return nil, info, fmt.Errorf("measure: resume requires a checkpoint path")
	}
	ck, err := LoadCheckpoint(cfg.CheckpointPath)
	if err != nil {
		return nil, info, err
	}
	if ck.ScanKey != cfg.ScanKey {
		return nil, info, fmt.Errorf("measure: checkpoint is for scan %q, not %q: refusing to extend a different scan's output", ck.ScanKey, cfg.ScanKey)
	}
	f, err := os.OpenFile(outPath, os.O_RDWR, 0)
	if err != nil {
		return nil, info, fmt.Errorf("measure: resume: %w", err)
	}
	sw, info, err := resumeOnto(f, ck, cfg)
	if err != nil {
		_ = f.Close()
		return nil, info, err
	}
	return sw, info, nil
}

func resumeOnto(f *os.File, ck *Checkpoint, cfg StreamConfig) (*StreamWriter, ResumeInfo, error) {
	var info ResumeInfo
	st, err := f.Stat()
	if err != nil {
		return nil, info, err
	}
	if st.Size() < ck.Offset {
		return nil, info, fmt.Errorf("measure: resume: output is %d bytes but checkpoint covers %d: output truncated after checkpoint", st.Size(), ck.Offset)
	}

	// Verify the checkpointed prefix byte-for-byte: its fresh SHA-256
	// must equal the sum of the checkpointed midstream state.
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, info, err
	}
	fresh := sha256.New()
	if _, err := io.CopyN(fresh, f, ck.Offset); err != nil {
		return nil, info, fmt.Errorf("measure: resume: reading checkpointed prefix: %w", err)
	}
	if !bytes.Equal(fresh.Sum(nil), ck.byteHash.Sum(nil)) {
		return nil, info, fmt.Errorf("measure: resume: output prefix does not match checkpoint byte hash: file modified or checkpoint/output pair mismatched")
	}

	// Anything past the offset was written after the last checkpoint.
	// A complete line that decodes and re-encodes byte-identically is a
	// genuine result the crash didn't get to checkpoint: salvage it,
	// extending both hash states, instead of re-scanning its domain.
	// The first torn or non-canonical line — and everything after it —
	// is truncated away.
	tail, err := io.ReadAll(f)
	if err != nil {
		return nil, info, fmt.Errorf("measure: resume: reading tail: %w", err)
	}
	keep := ck.Offset
	for len(tail) > 0 {
		nl := bytes.IndexByte(tail, '\n')
		if nl < 0 {
			break
		}
		line := tail[:nl+1]
		r, ok := decodeCanonicalLine(line)
		if !ok {
			break
		}
		ck.digest.Add(r)
		ck.byteHash.Write(line)
		ck.Emitted++
		keep += int64(len(line))
		info.Salvaged++
		tail = tail[nl+1:]
	}
	info.DroppedBytes = st.Size() - keep
	if err := f.Truncate(keep); err != nil {
		return nil, info, fmt.Errorf("measure: resume: truncating torn tail: %w", err)
	}
	if _, err := f.Seek(keep, io.SeekStart); err != nil {
		return nil, info, err
	}
	info.Emitted = int(ck.Emitted)

	sw := &StreamWriter{
		cfg:      cfg,
		file:     f,
		ownsFile: true,
		byteHash: ck.byteHash,
		digest:   ck.digest,
		offset:   keep,
		next:     int(ck.Emitted),
		pending:  make(map[int]*DomainResult),
	}
	sw.cond = sync.NewCond(&sw.mu)
	sw.bw = bufio.NewWriter(f)
	sw.enc = json.NewEncoder(&tapWriter{w: sw.bw, h: sw.byteHash, n: &sw.offset})

	// Re-checkpoint immediately: the salvage may have advanced past the
	// on-disk record, and a consistent (checkpoint, output) pair should
	// exist before any new result extends it.
	sw.mu.Lock()
	sw.checkpointLocked()
	err = sw.err
	sw.mu.Unlock()
	if err != nil {
		return nil, info, err
	}
	return sw, info, nil
}

// decodeCanonicalLine accepts a JSONL line only if it parses as a
// result and re-encodes to exactly the same bytes — the only tail lines
// a resume may trust without a covering checkpoint.
func decodeCanonicalLine(line []byte) (*DomainResult, bool) {
	var in resultJSON
	if err := json.Unmarshal(line, &in); err != nil {
		return nil, false
	}
	r, err := fromResultJSON(&in)
	if err != nil {
		return nil, false
	}
	out := toResultJSON(r)
	reenc, err := json.Marshal(&out)
	if err != nil {
		return nil, false
	}
	if !bytes.Equal(append(reenc, '\n'), line) {
		return nil, false
	}
	return r, true
}
