package measure

import (
	"testing"

	"govdns/internal/chaos"
	"govdns/internal/dnsname"
	"govdns/internal/miniworld"
)

// TestDigestExcludesJourneyFields pins the digest's deliberate scope:
// Rounds and Faults describe how hard the scan worked, not what it
// concluded, and mutating them arbitrarily must leave the digest
// bit-identical. If a future field ever leaks journey state into the
// canonical serialization, the transient-recovery equivalence (round-two
// scans digesting equal to clean ones) silently stops being checkable —
// this test fails first.
func TestDigestExcludesJourneyFields(t *testing.T) {
	w := miniworld.Build()
	results := scanWith(t, w.Net, w.Roots, miniworld.Domains(), 1, 1, true)
	want := DigestHex(results)

	for i, r := range results {
		r.Rounds += 1 + i
		r.Faults.Duplicates += 3
		r.Faults.Truncations += 17
		r.Faults.QIDMismatches += 5
		r.Faults.QuestionMismatches += 7
		r.Faults.Malformed += 11
	}
	if got := DigestHex(results); got != want {
		t.Errorf("digest changed after mutating Rounds/Faults: %s != %s", got, want)
	}
}

// TestSecondRoundFaultMergeExact checks the merge arithmetic end to end
// with a window sized so the expected count is exact: a Transient
// (Truncate, 2) schedule against single.gov.br's only nameserver burns
// exactly the first round's two attempts (client budget: 1 retry = 2
// attempts) and goes quiet, so round one traces exactly 2 truncations
// and round two traces 0. The merged result must say 2 — a 4 would mean
// the retry re-counted round-one faults (double-counting), a 0 that the
// merge dropped the history.
func TestSecondRoundFaultMergeExact(t *testing.T) {
	w := miniworld.Build()
	tr := w.ChaosProfile(3, map[dnsname.Name][]chaos.Rule{
		"ns1.single.gov.br.": {chaos.Transient(chaos.Truncate, 2)},
	})
	results := scanWith(t, tr, w.Roots, miniworld.Domains(), 1, 1, true)

	if n := tr.Stats().Injected[chaos.Truncate]; n != 2 {
		t.Fatalf("injected truncations = %d, want exactly 2 (window arithmetic drifted; fix the schedule before trusting the merge check)", n)
	}
	var got *DomainResult
	for _, r := range results {
		if r.Domain == "single.gov.br." {
			got = r
		}
	}
	if got == nil {
		t.Fatal("single.gov.br. missing from results")
	}
	if got.Rounds != 2 || !got.Responsive() {
		t.Fatalf("single.gov.br.: rounds=%d responsive=%v, want recovery in round 2", got.Rounds, got.Responsive())
	}
	if got.Faults.Truncations != 2 {
		t.Errorf("merged Truncations = %d, want exactly 2 (4 = double-counted, 0 = history lost)", got.Faults.Truncations)
	}
	if total := got.Faults.Total(); total != 2 {
		t.Errorf("merged Faults.Total() = %d, want 2, faults %+v", total, got.Faults)
	}
}
