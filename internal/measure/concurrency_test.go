package measure

import (
	"context"
	"strings"
	"testing"
	"time"

	"govdns/internal/dnsname"
	"govdns/internal/miniworld"
	"govdns/internal/resolver"
)

// TestScanSharedProviderResolvesOnce scans many domains that all delegate
// to one provider NS set and verifies — via resolver.Stats — that the
// shared hosts were resolved exactly once for the whole scan, with every
// other request served by the cache or coalesced onto the in-flight
// resolution.
func TestScanSharedProviderResolvesOnce(t *testing.T) {
	w := miniworld.Build()
	hosted := w.AddHostedChildren(12)
	c := resolver.NewClient(w.Net)
	c.Timeout = 20 * time.Millisecond
	c.Retries = 1
	it := resolver.NewIterator(c, w.Roots)
	s := NewScanner(it)
	s.Concurrency = len(hosted)

	results := s.Scan(scanCtx(t), hosted)
	for i, r := range results {
		if !r.Responsive() {
			t.Fatalf("%s not responsive: %+v", hosted[i], r)
		}
	}

	st := it.Stats()
	// The only glue-less hosts in these walks are ns1/ns2.provider.com:
	// exactly one full lookup each, no matter how many domains share them.
	if st.HostCacheMisses != 2 {
		t.Errorf("HostCacheMisses = %d, want 2 (shared provider hosts resolved once)", st.HostCacheMisses)
	}
	// Each of the 12 domains resolves both hosts: 24 requests total, 2 of
	// which did the work; the other 22 hit the cache or coalesced.
	want := uint64(2*len(hosted) - 2)
	if got := st.HostCacheHits + st.CoalescedWaits; got != want {
		t.Errorf("hits+coalesced = %d, want %d", got, want)
	}
}

// TestFanOutPreservesOrdering runs the same scan serially and with the
// full per-domain fan-out and checks that Servers and Addrs come out
// identical: the concurrency must be invisible in the results.
func TestFanOutPreservesOrdering(t *testing.T) {
	scan := func(fanout int) []*DomainResult {
		w := miniworld.Build()
		c := resolver.NewClient(w.Net)
		c.Timeout = 20 * time.Millisecond
		c.Retries = 1
		s := NewScanner(resolver.NewIterator(c, w.Roots))
		s.Concurrency = 4
		s.PerDomainParallelism = fanout
		return s.Scan(scanCtx(t), miniworld.Domains())
	}
	serial := scan(1)
	parallel := scan(DefaultPerDomainParallelism)

	for i := range serial {
		a, b := serial[i], parallel[i]
		if a.Domain != b.Domain {
			t.Fatalf("result %d domain mismatch: %s vs %s", i, a.Domain, b.Domain)
		}
		if len(a.Servers) != len(b.Servers) {
			t.Fatalf("%s: server count %d vs %d", a.Domain, len(a.Servers), len(b.Servers))
		}
		for j := range a.Servers {
			sa, sb := &a.Servers[j], &b.Servers[j]
			if sa.Host != sb.Host || sa.Addr != sb.Addr {
				t.Errorf("%s server %d: (%s,%s) vs (%s,%s)",
					a.Domain, j, sa.Host, sa.Addr, sb.Host, sb.Addr)
			}
			if sa.OK != sb.OK || sa.RCode != sb.RCode || sa.Authoritative != sb.Authoritative {
				t.Errorf("%s server %d outcome differs: %+v vs %+v", a.Domain, j, sa, sb)
			}
			if len(sa.NS) != len(sb.NS) {
				t.Errorf("%s server %d NS sets differ", a.Domain, j)
				continue
			}
			for k := range sa.NS {
				if sa.NS[k] != sb.NS[k] {
					t.Errorf("%s server %d NS[%d]: %s vs %s", a.Domain, j, k, sa.NS[k], sb.NS[k])
				}
			}
		}
		if len(a.Addrs) != len(b.Addrs) {
			t.Fatalf("%s: addr map size %d vs %d", a.Domain, len(a.Addrs), len(b.Addrs))
		}
		for host, aa := range a.Addrs {
			ba, ok := b.Addrs[host]
			if !ok || len(aa) != len(ba) {
				t.Errorf("%s: addrs for %s differ: %v vs %v", a.Domain, host, aa, ba)
				continue
			}
			for k := range aa {
				if aa[k] != ba[k] {
					t.Errorf("%s: addrs[%s][%d]: %s vs %s", a.Domain, host, k, aa[k], ba[k])
				}
			}
		}
	}
}

// TestScanCancelledCarriesContextError verifies that unprocessed slots
// report the context's actual error, distinguishing cancel from deadline.
func TestScanCancelledCarriesContextError(t *testing.T) {
	domains := []dnsname.Name{"city.gov.br.", "lame.gov.br."}

	_, s := newScanner(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, r := range s.Scan(ctx, domains) {
		if !strings.Contains(r.Err, context.Canceled.Error()) {
			t.Errorf("cancelled scan Err = %q, want it to mention %q", r.Err, context.Canceled)
		}
	}

	_, s = newScanner(t)
	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer dcancel()
	for _, r := range s.Scan(dctx, domains) {
		if !strings.Contains(r.Err, context.DeadlineExceeded.Error()) {
			t.Errorf("deadline scan Err = %q, want it to mention %q", r.Err, context.DeadlineExceeded)
		}
	}
}
