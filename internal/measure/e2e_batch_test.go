package measure

// End-to-end differential for the batched UDP transport: the same
// miniworld loopback serving tier is scanned through the
// dial-per-exchange reference transport and through udpx.BatchTransport
// — shared sockets, sendmmsg/recvmmsg batching, QID rewriting, timer
// wheel — and the scan digests must be bit-identical, clean and under
// content-keyed chaos, and across a kill/checkpoint/resume. Everything
// the batched path does differently (its own wire transaction IDs, the
// demux table, pooled buffers recycled through ReleaseResponse) must be
// invisible to the measurement.

import (
	"context"
	"fmt"
	"net/netip"
	"testing"

	"govdns/internal/authserver"
	"govdns/internal/chaos"
	"govdns/internal/dnsname"
	"govdns/internal/miniworld"
	"govdns/internal/resolver"
	"govdns/internal/simnet"
	"govdns/internal/udpx"
)

// normalizedBatch adapts udpx.BatchTransport to simnet's failure
// semantics, exactly as normalizedUDP does for the dial transport: any
// transport-level failure blocks until the context expires and then
// reports simnet's dropped-packet error byte for byte, and addresses
// with no serving socket behave like simnet blackholes. Buffer releases
// forward to the pooled transport.
type normalizedBatch struct {
	inner    *udpx.BatchTransport
	override map[netip.Addr]netip.AddrPort
}

func (n *normalizedBatch) Exchange(ctx context.Context, server netip.Addr, query []byte) ([]byte, error) {
	if _, ok := n.override[server]; !ok {
		<-ctx.Done()
		return nil, fmt.Errorf("%w: %v", simnet.ErrDropped, ctx.Err())
	}
	resp, err := n.inner.Exchange(ctx, server, query)
	if err != nil {
		<-ctx.Done()
		return nil, fmt.Errorf("%w: %v", simnet.ErrDropped, ctx.Err())
	}
	return resp, nil
}

func (n *normalizedBatch) ReleaseResponse(buf []byte) { n.inner.ReleaseResponse(buf) }

var _ resolver.ResponseReleaser = (*normalizedBatch)(nil)

// batchOver builds a normalized batch transport over an
// already-standing override map. portable forces the per-datagram
// syscall loops so both I/O paths face the differential.
func batchOver(t *testing.T, override map[netip.Addr]netip.AddrPort, portable bool) *normalizedBatch {
	t.Helper()
	tr, err := udpx.New(udpx.Config{
		AddrOverride: override,
		Portable:     portable,
		// The resolver's attempt context carries the real deadline; the
		// wheel is the backstop right behind it.
		Timeout: 2 * e2eDeadline,
	})
	if err != nil {
		t.Fatalf("udpx.New: %v", err)
	}
	t.Cleanup(func() { _ = tr.Close() })
	return &normalizedBatch{inner: tr, override: override}
}

// batchChaosProfile is the serving-tier differential's content-keyed
// fault schedule, reused verbatim: timing-independent classes only, so
// under a serial scan the draw sequence is a pure function of the query
// stream every transport shares.
func batchChaosProfile() map[dnsname.Name][]chaos.Rule {
	return map[dnsname.Name][]chaos.Rule{
		"ns1.city.gov.br.":   {chaos.Persistent(chaos.Truncate, 1)},
		"ns2.city.gov.br.":   {chaos.Persistent(chaos.CorruptQID, 1)},
		"ns1.single.gov.br.": {chaos.Persistent(chaos.Drop, 1)},
		"ns1.provider.com.":  {chaos.Persistent(chaos.FlipRCode, 1)},
	}
}

const batchChaosSeed = 11

// TestScanDigestBatchVsDial is the tentpole differential: over one
// shared set of loopback servers, the dial-per-exchange scan and the
// batched scan must produce bit-identical digests — clean, and under
// the content-keyed chaos profile. The batched run covers both of its
// I/O paths: the OS sendmmsg/recvmmsg batches and the portable
// per-datagram loops.
func TestScanDigestBatchVsDial(t *testing.T) {
	w := miniworld.Build()
	domains := miniworld.Domains()
	override := serveWorldOverride(t, w)
	rules := w.ChaosRules(batchChaosProfile())

	dial := &normalizedUDP{inner: &authserver.UDPTransport{AddrOverride: override}}
	dialClean := scanTuned(t, dial, w.Roots, domains, 1, 1, true, e2eDeadline, 1)
	wantClean := DigestHex(dialClean)

	dialChaosTr := chaos.Wrap(dial, batchChaosSeed, rules...)
	dialChaos := scanTuned(t, dialChaosTr, w.Roots, domains, 1, 1, true, e2eDeadline, 1)
	if dialChaosTr.Stats().Total() == 0 {
		t.Fatal("chaos injected nothing on the dial run; the test is vacuous")
	}
	wantChaos := DigestHex(dialChaos)

	for _, tc := range []struct {
		name     string
		portable bool
	}{
		{"os", false},
		{"portable", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			batch := batchOver(t, override, tc.portable)
			batchClean := scanTuned(t, batch, w.Roots, domains, 1, 1, true, e2eDeadline, 1)
			if got := DigestHex(batchClean); got != wantClean {
				t.Errorf("clean batch scan digest = %s, want dial's %s", got, wantClean)
				for i, r := range batchClean {
					t.Logf("  batch %s: class=%s err=%q | dial err=%q",
						r.Domain, r.Classify(), r.Err, dialClean[i].Err)
				}
			}

			batchChaosTr := chaos.Wrap(batchOver(t, override, tc.portable), batchChaosSeed, rules...)
			batchChaos := scanTuned(t, batchChaosTr, w.Roots, domains, 1, 1, true, e2eDeadline, 1)
			if batchChaosTr.Stats().Total() == 0 {
				t.Fatal("chaos injected nothing on the batch run; the test is vacuous")
			}
			if got := DigestHex(batchChaos); got != wantChaos {
				t.Errorf("chaos batch scan digest = %s, want dial's %s", got, wantChaos)
				for i, r := range batchChaos {
					t.Logf("  batch %s: class=%s err=%q faults=%+v | dial class=%s err=%q",
						r.Domain, r.Classify(), r.Err, r.Faults,
						dialChaos[i].Classify(), dialChaos[i].Err)
				}
			}
		})
	}
}

// batchStreamScanner is streamScanner at the e2e deadline: fresh client
// and iterator per run (no resolver cache leaks across the kill),
// adaptive ordering off, serial schedule.
func batchStreamScanner(tr resolver.Transport, roots []netip.Addr) *Scanner {
	client := resolver.NewClient(tr)
	client.Timeout = e2eDeadline
	client.Retries = 0
	it := resolver.NewIterator(client, roots)
	it.AdaptiveOrder = false
	s := NewScanner(it)
	s.Concurrency = 1
	s.PerDomainParallelism = 1
	return s
}

// TestScanStreamKillResumeBatchUDP closes the differential triangle:
// the batched transport under the PR 8 checkpoint pipeline. A streamed
// scan over real sockets is killed mid-flight and resumed from its
// checkpoint, and the merged archive must be bit-identical to the
// uninterrupted batched run — clean and under the content-keyed chaos
// profile (fresh deterministic chaos wrap per scanner, shared batch
// transport and servers underneath).
func TestScanStreamKillResumeBatchUDP(t *testing.T) {
	w := miniworld.Build()
	domains := miniworld.Domains()
	override := serveWorldOverride(t, w)
	batch := batchOver(t, override, false)

	t.Run("clean", func(t *testing.T) {
		ref := scanTuned(t, batch, w.Roots, domains, 1, 1, false, e2eDeadline, 0)
		killResumeRoundTrip(t, domains,
			func() *Scanner { return batchStreamScanner(batch, w.Roots) },
			3, canonicalJSONL(t, ref), DigestHex(ref))
	})

	t.Run("chaos", func(t *testing.T) {
		rules := w.ChaosRules(batchChaosProfile())
		refTr := chaos.Wrap(batch, batchChaosSeed, rules...)
		ref := scanTuned(t, refTr, w.Roots, domains, 1, 1, false, e2eDeadline, 0)
		if refTr.Stats().Total() == 0 {
			t.Fatal("chaos injected nothing on the reference run; the test is vacuous")
		}
		killResumeRoundTrip(t, domains,
			func() *Scanner {
				return batchStreamScanner(chaos.Wrap(batch, batchChaosSeed, rules...), w.Roots)
			},
			3, canonicalJSONL(t, ref), DigestHex(ref))
	})
}
