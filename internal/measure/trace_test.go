package measure

import (
	"bytes"
	"context"
	"net/netip"
	"testing"

	"govdns/internal/chaos"
	"govdns/internal/dnsname"
	"govdns/internal/resolver"
	"govdns/internal/trace"
	"govdns/internal/worldgen"
)

// The tracing acceptance gate: recording is purely passive (a traced
// scan digests bit-identically to an untraced one), and the recorded
// span trees are trustworthy (complete, and their fault annotations
// reproduce the scan's own fault accounting exactly).

// scanTraced is scanTuned with a flight recorder attached, using the
// same deadline/retry shape as the chaos invariance tests.
func scanTraced(t *testing.T, tr resolver.Transport, roots []netip.Addr, domains []dnsname.Name, workers, fanout int, adaptive bool, flight *trace.FlightRecorder) []*DomainResult {
	t.Helper()
	client := resolver.NewClient(tr)
	client.Timeout = worldDeadline
	client.Retries = 0
	it := resolver.NewIterator(client, roots)
	it.AdaptiveOrder = adaptive
	s := NewScanner(it)
	s.Concurrency = workers
	s.PerDomainParallelism = fanout
	s.Trace = flight
	return s.Scan(context.Background(), domains)
}

// chaosRules is the persistent fault mix used by the tracing tests —
// the same classes the invariance suite uses, so every FaultCounts
// field can light up.
func chaosRules() []chaos.Rule {
	return []chaos.Rule{
		chaos.Persistent(chaos.Drop, 0.03),
		chaos.Persistent(chaos.Truncate, 0.05),
		chaos.Persistent(chaos.FlipRCode, 0.05),
		chaos.Persistent(chaos.CorruptQID, 0.02),
		chaos.Persistent(chaos.MismatchQuestion, 0.02),
		chaos.Persistent(chaos.Duplicate, 0.03),
		chaos.Persistent(chaos.Mangle, 0.02),
	}
}

// TestTraceDigestInvariance: attaching the flight recorder must not
// change scan results by a single bit — clean or under chaos. The
// chaos leg runs serially because that is where a persistent-chaos
// scan is reproducible at all (see the invariance suite); any digest
// drift there is tracing leaking into resolution.
func TestTraceDigestInvariance(t *testing.T) {
	w := worldgen.Generate(worldgen.Config{Seed: 42, Scale: 0.002})
	active := worldgen.Build(w)

	clean := scanTuned(t, active.Net, active.Roots, active.QueryList, 8, 2, true, worldDeadline, 0)
	traced := scanTraced(t, active.Net, active.Roots, active.QueryList, 8, 2, true,
		trace.NewFlightRecorder(trace.Config{}))
	if a, b := DigestHex(clean), DigestHex(traced); a != b {
		t.Errorf("clean scan: traced digest %s != untraced %s", b, a)
	}

	untracedChaos := scanTuned(t, chaos.Wrap(active.Net, 7, chaosRules()...),
		active.Roots, active.QueryList, 1, 1, false, worldDeadline, 0)
	flight := trace.NewFlightRecorder(trace.Config{})
	tracedChaos := scanTraced(t, chaos.Wrap(active.Net, 7, chaosRules()...),
		active.Roots, active.QueryList, 1, 1, false, flight)
	if a, b := DigestHex(untracedChaos), DigestHex(tracedChaos); a != b {
		t.Errorf("chaos scan: traced digest %s != untraced %s", b, a)
	}
	if _, _, _, offered := flight.Counts(); offered != uint64(len(active.QueryList)) {
		t.Errorf("flight recorder offered %d traces for %d domains", offered, len(active.QueryList))
	}
}

// TestTraceFaultAccounting is the pinning test for the fault-attribute
// contract (see faultAttrs): after a chaos-perturbed scan, the
// JSONL-exported trace of every Error/Transient domain must be a
// complete span tree — every span ended, parents before children,
// nothing dropped — whose per-probe fault annotations sum to exactly
// the domain's merged FaultCounts.
func TestTraceFaultAccounting(t *testing.T) {
	w := worldgen.Generate(worldgen.Config{Seed: 42, Scale: 0.002})
	active := worldgen.Build(w)
	tr := chaos.Wrap(active.Net, 7, chaosRules()...)

	// Every bucket sized to the whole scan: with Slowest covering the
	// full query list the recorder retains every domain, so the
	// fault-sum contract is checked for all of them — fault-carrying
	// domains usually classify lame without erroring and would
	// otherwise slip past retention.
	flight := trace.NewFlightRecorder(trace.Config{
		Slowest: len(active.QueryList), Errors: len(active.QueryList), Flipped: len(active.QueryList),
	})
	results := scanTraced(t, tr, active.Roots, active.QueryList, 8, 2, false, flight)
	if tr.Stats().Total() == 0 {
		t.Fatal("chaos injected nothing; the test is vacuous")
	}

	// Round-trip through the JSONL export: the acceptance property is
	// about what a triage session reads back, not in-memory state.
	var buf bytes.Buffer
	if err := flight.WriteJSONL(&buf); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	traces, err := trace.ReadJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	byDomain := make(map[dnsname.Name]*trace.DomainTrace, len(traces))
	for _, dt := range traces {
		byDomain[dt.Domain] = dt
	}

	// Every Error/Transient domain must have been retained. (These are
	// walk failures: their probe stage never ran, so their FaultCounts
	// are zero and the sum check below holds trivially for them; the
	// class-flip and slowest exemplars are where it bites.)
	errorDomains := 0
	resultOf := make(map[dnsname.Name]*DomainResult, len(results))
	for _, r := range results {
		resultOf[r.Domain] = r
		if r.Err == "" && !r.ErrTransient {
			continue
		}
		errorDomains++
		if byDomain[r.Domain] == nil {
			t.Errorf("%s: Error/Transient but no retained trace", r.Domain)
		}
	}

	withFaults := 0
	for _, dt := range traces {
		r := resultOf[dt.Domain]
		if r == nil {
			t.Errorf("%s: retained trace for a domain the scan never measured", dt.Domain)
			continue
		}

		// Header must mirror the scan result.
		if dt.Class != r.Classify().String() || dt.Rounds != r.Rounds ||
			dt.Err != r.Err || dt.ErrTransient != r.ErrTransient {
			t.Errorf("%s: trace header (class=%s rounds=%d err=%q transient=%v) != result (%s %d %q %v)",
				r.Domain, dt.Class, dt.Rounds, dt.Err, dt.ErrTransient,
				r.Classify(), r.Rounds, r.Err, r.ErrTransient)
		}

		// Completeness: a sealed trace has no open spans, no dropped
		// spans, one domain root, and parents that precede children.
		if dt.DroppedSpans != 0 {
			t.Errorf("%s: %d spans dropped; arena limit too small for this world", r.Domain, dt.DroppedSpans)
		}
		for i := range dt.Spans {
			sp := &dt.Spans[i]
			if !sp.Ended() {
				t.Errorf("%s: span %d (%s %s) left open", r.Domain, sp.ID, sp.Kind, sp.Name)
			}
			if i == 0 {
				if sp.Kind != trace.KindDomain || sp.Parent != trace.NoSpan {
					t.Errorf("%s: span 0 is %s parent=%d, want domain root", r.Domain, sp.Kind, sp.Parent)
				}
			} else if sp.Parent < 0 || int(sp.Parent) >= i {
				t.Errorf("%s: span %d has parent %d", r.Domain, i, sp.Parent)
			}
		}

		// The fault-accounting contract: probe-span annotations sum to
		// the domain's merged FaultCounts, both rounds included.
		var sum FaultCounts
		var attempts uint64
		probes := 0
		for i := range dt.Spans {
			sp := &dt.Spans[i]
			if sp.Kind != trace.KindProbe {
				continue
			}
			probes++
			for _, a := range sp.Attrs {
				v := uint64(a.Int)
				switch a.Key {
				case "attempts":
					attempts += v
				case "duplicates":
					sum.Duplicates += v
				case "truncations":
					sum.Truncations += v
				case "qid_mismatches":
					sum.QIDMismatches += v
				case "question_mismatches":
					sum.QuestionMismatches += v
				case "malformed":
					sum.Malformed += v
				}
			}
		}
		if sum != r.Faults {
			t.Errorf("%s: probe-span fault attrs sum to %+v, FaultCounts %+v", r.Domain, sum, r.Faults)
		}
		if probes > 0 && attempts == 0 {
			t.Errorf("%s: %d probe spans but zero attempts recorded", r.Domain, probes)
		}
		if r.Faults.Total() > 0 {
			withFaults++
		}
	}
	if errorDomains == 0 {
		t.Fatal("no Error/Transient domains under chaos; the test is vacuous")
	}
	if withFaults == 0 {
		t.Error("no retained domain carried fault counts; the sum check never bit")
	}

	// Retention bookkeeping: every retained-for-error trace really was
	// an error, and offered covers the whole scan.
	_, _, _, offered := flight.Counts()
	if offered != uint64(len(results)) {
		t.Errorf("offered %d, want %d", offered, len(results))
	}
	for _, dt := range traces {
		for _, reason := range dt.RetainedFor {
			if reason == trace.RetainError && dt.Err == "" && !dt.ErrTransient {
				t.Errorf("%s: retained for %q without an error", dt.Domain, reason)
			}
		}
	}
}
