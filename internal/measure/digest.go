package measure

import (
	"crypto/sha256"
	"encoding"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"
	"net/netip"
	"sort"

	"govdns/internal/dnsname"
)

// The digest condenses a scan's results into one SHA-256 over a
// canonical serialization. Two scans of the same world digest equal iff
// they reached the same measurement conclusions for every domain, which
// is the differential harness's equality test: results must be
// bit-identical per (seed, scale) no matter how the scan was scheduled
// (worker count, per-domain fan-out), and after transient chaos the
// recovered scan must digest equal to an undisturbed one.
//
// The digest deliberately excludes Rounds and Faults: they describe the
// *journey* (how hard the scan had to work), while the digest fixes the
// *destination*. A domain recovered in round two with a dozen discarded
// datagrams digests identically to one answered cleanly — that is the
// recovery property, not a loophole.
//
// The result count is hashed after the per-result records, not before:
// a streaming scan does not know its total until the stream ends, and
// hashing the count last is what lets DigestAccumulator compute the
// exact same digest incrementally (and checkpoint its midstream state).

// DigestAccumulator computes the canonical scan digest one result at a
// time. Add results in emission order, then Sum. The accumulator's
// state round-trips through MarshalBinary/UnmarshalBinary, which is how
// a checkpointed stream resumes digesting where it left off.
type DigestAccumulator struct {
	h hash.Hash
	n uint64
}

// NewDigestAccumulator returns an empty accumulator: Sum of zero Adds
// equals Digest(nil).
func NewDigestAccumulator() *DigestAccumulator {
	return &DigestAccumulator{h: sha256.New()}
}

// Add folds one result (nil allowed, hashed as an absent record) into
// the digest.
func (a *DigestAccumulator) Add(r *DomainResult) {
	digestResult(a.h, r)
	a.n++
}

// Count returns how many results have been added.
func (a *DigestAccumulator) Count() uint64 { return a.n }

// Sum finalizes a snapshot of the digest over everything added so far.
// The accumulator itself is not consumed: more Adds may follow.
func (a *DigestAccumulator) Sum() [sha256.Size]byte {
	h := cloneSHA256(a.h)
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], a.n)
	h.Write(buf[:])
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}

// MarshalBinary captures the accumulator — result count plus the
// midstream SHA-256 state — for checkpointing.
func (a *DigestAccumulator) MarshalBinary() ([]byte, error) {
	st, err := a.h.(encoding.BinaryMarshaler).MarshalBinary()
	if err != nil {
		return nil, err
	}
	out := make([]byte, 8+len(st))
	binary.BigEndian.PutUint64(out, a.n)
	copy(out[8:], st)
	return out, nil
}

// UnmarshalBinary restores a checkpointed accumulator. The SHA-256
// state carries its own magic and length checks, so torn or garbage
// states are rejected rather than silently producing a wrong digest.
func (a *DigestAccumulator) UnmarshalBinary(data []byte) error {
	if len(data) < 8 {
		return fmt.Errorf("measure: digest state too short (%d bytes)", len(data))
	}
	h := sha256.New()
	if err := h.(encoding.BinaryUnmarshaler).UnmarshalBinary(data[8:]); err != nil {
		return fmt.Errorf("measure: digest state: %w", err)
	}
	a.h = h
	a.n = binary.BigEndian.Uint64(data)
	return nil
}

// cloneSHA256 duplicates a midstream SHA-256 via its binary state, so a
// snapshot can be finalized without consuming the original.
func cloneSHA256(h hash.Hash) hash.Hash {
	st, err := h.(encoding.BinaryMarshaler).MarshalBinary()
	if err != nil {
		panic("measure: sha256 state marshal: " + err.Error())
	}
	c := sha256.New()
	if err := c.(encoding.BinaryUnmarshaler).UnmarshalBinary(st); err != nil {
		panic("measure: sha256 state unmarshal: " + err.Error())
	}
	return c
}

// Digest condenses a result slice into the canonical scan digest. It is
// defined as — and differentially pinned to — the accumulator run over
// the slice in order.
func Digest(results []*DomainResult) [sha256.Size]byte {
	acc := NewDigestAccumulator()
	for _, r := range results {
		acc.Add(r)
	}
	return acc.Sum()
}

// digestResult folds one result record into h.
func digestResult(h hash.Hash, r *DomainResult) {
	var buf [8]byte
	u64 := func(v uint64) {
		binary.BigEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	str := func(s string) {
		u64(uint64(len(s)))
		h.Write([]byte(s))
	}
	name := func(n dnsname.Name) { str(string(n)) }
	boolean := func(b bool) {
		if b {
			h.Write([]byte{1})
		} else {
			h.Write([]byte{0})
		}
	}
	addr := func(a netip.Addr) {
		b := a.As16()
		h.Write(b[:])
	}
	names := func(ns []dnsname.Name) {
		u64(uint64(len(ns)))
		for _, n := range ns {
			name(n)
		}
	}

	if r == nil {
		u64(0)
		return
	}
	u64(1)
	name(r.Domain)
	name(r.ParentZone)
	boolean(r.ParentResponded)
	boolean(r.ParentAuthoritative)
	names(r.ParentNS)

	hosts := make([]dnsname.Name, 0, len(r.Addrs))
	for host := range r.Addrs {
		hosts = append(hosts, host)
	}
	sort.Slice(hosts, func(i, j int) bool { return dnsname.Compare(hosts[i], hosts[j]) < 0 })
	u64(uint64(len(hosts)))
	for _, host := range hosts {
		name(host)
		addrs := append([]netip.Addr(nil), r.Addrs[host]...)
		sort.Slice(addrs, func(i, j int) bool { return addrs[i].Less(addrs[j]) })
		u64(uint64(len(addrs)))
		for _, a := range addrs {
			addr(a)
		}
	}

	u64(uint64(len(r.Servers)))
	for i := range r.Servers {
		digestServer(h, u64, str, boolean, &r.Servers[i])
	}
	str(r.Err)
	boolean(r.ErrTransient)
}

func digestServer(h hash.Hash, u64 func(uint64), str func(string), boolean func(bool), sr *ServerResponse) {
	str(string(sr.Host))
	b := sr.Addr.As16()
	h.Write(b[:])
	boolean(sr.OK)
	u64(uint64(sr.RCode))
	boolean(sr.Authoritative)
	u64(uint64(len(sr.NS)))
	for _, n := range sr.NS {
		str(string(n))
	}
	str(sr.Err)
}

// DigestHex is Digest rendered as a hex string, for logs and test
// failure messages.
func DigestHex(results []*DomainResult) string {
	d := Digest(results)
	return hex.EncodeToString(d[:])
}
