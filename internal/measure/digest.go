package measure

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"net/netip"
	"sort"

	"govdns/internal/dnsname"
)

// Digest condenses a scan's results into one SHA-256 over a canonical
// serialization. Two scans of the same world digest equal iff they
// reached the same measurement conclusions for every domain, which is
// the differential harness's equality test: results must be bit-identical
// per (seed, scale) no matter how the scan was scheduled (worker count,
// per-domain fan-out), and after transient chaos the recovered scan must
// digest equal to an undisturbed one.
//
// The digest deliberately excludes Rounds and Faults: they describe the
// *journey* (how hard the scan had to work), while the digest fixes the
// *destination*. A domain recovered in round two with a dozen discarded
// datagrams digests identically to one answered cleanly — that is the
// recovery property, not a loophole.
func Digest(results []*DomainResult) [sha256.Size]byte {
	h := sha256.New()
	var buf [8]byte
	u64 := func(v uint64) {
		binary.BigEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	str := func(s string) {
		u64(uint64(len(s)))
		h.Write([]byte(s))
	}
	name := func(n dnsname.Name) { str(string(n)) }
	boolean := func(b bool) {
		if b {
			h.Write([]byte{1})
		} else {
			h.Write([]byte{0})
		}
	}
	addr := func(a netip.Addr) {
		b := a.As16()
		h.Write(b[:])
	}
	names := func(ns []dnsname.Name) {
		u64(uint64(len(ns)))
		for _, n := range ns {
			name(n)
		}
	}

	u64(uint64(len(results)))
	for _, r := range results {
		if r == nil {
			u64(0)
			continue
		}
		u64(1)
		name(r.Domain)
		name(r.ParentZone)
		boolean(r.ParentResponded)
		boolean(r.ParentAuthoritative)
		names(r.ParentNS)

		hosts := make([]dnsname.Name, 0, len(r.Addrs))
		for host := range r.Addrs {
			hosts = append(hosts, host)
		}
		sort.Slice(hosts, func(i, j int) bool { return dnsname.Compare(hosts[i], hosts[j]) < 0 })
		u64(uint64(len(hosts)))
		for _, host := range hosts {
			name(host)
			addrs := append([]netip.Addr(nil), r.Addrs[host]...)
			sort.Slice(addrs, func(i, j int) bool { return addrs[i].Less(addrs[j]) })
			u64(uint64(len(addrs)))
			for _, a := range addrs {
				addr(a)
			}
		}

		u64(uint64(len(r.Servers)))
		for i := range r.Servers {
			digestServer(h, u64, str, boolean, &r.Servers[i])
		}
		str(r.Err)
		boolean(r.ErrTransient)
	}
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}

func digestServer(h hash.Hash, u64 func(uint64), str func(string), boolean func(bool), sr *ServerResponse) {
	str(string(sr.Host))
	b := sr.Addr.As16()
	h.Write(b[:])
	boolean(sr.OK)
	u64(uint64(sr.RCode))
	boolean(sr.Authoritative)
	u64(uint64(len(sr.NS)))
	for _, n := range sr.NS {
		str(string(n))
	}
	str(sr.Err)
}

// DigestHex is Digest rendered as a hex string, for logs and test
// failure messages.
func DigestHex(results []*DomainResult) string {
	d := Digest(results)
	return hex.EncodeToString(d[:])
}
