package measure

import (
	"context"
	"fmt"
	"io"
	"math"
	"time"

	"govdns/internal/obs"
)

// ScanMetrics holds the scanner's instrument handles on an obs.Registry:
// per-stage latency histograms for the paper's Fig. 1 pipeline
// (parent-zone poll → NS fetch → child probe → second round) and the
// progress counters the reporter and HTTP endpoint read. A nil
// *ScanMetrics is a valid no-op recorder, so the scanner's hot path
// never branches on "is observability on" beyond one nil check inside
// each record method.
type ScanMetrics struct {
	reg *obs.Registry

	// Stage histograms. parentWalk is the delegation walk (Fig. 1 steps
	// 1-2); nsFetch is per-host nameserver address resolution (step 3,
	// including child-only hosts); childProbe is one host's sequence of
	// per-address NS queries (step 4); secondRound is a full retry pass
	// (§ III-B); domain is the whole-domain wall clock including any
	// second round.
	parentWalk, nsFetch, childProbe *obs.Histogram
	secondRound, domain             *obs.Histogram

	domainsTotal *obs.Gauge
	domainsDone  *obs.Counter
	walkFailures *obs.Counter
	errDomains   *obs.Counter
	transients   *obs.Counter
	secondRounds *obs.Counter
	probeQueries *obs.Counter

	// Streaming-path instruments (ScanStream + StreamWriter): results
	// flushed to the output in order, the high-water mark of the
	// out-of-order reorder buffer, checkpoint records written, and
	// domains skipped on resume because a previous run already emitted
	// them.
	streamed     *obs.Counter
	bufferHigh   *obs.Gauge
	checkpoints  *obs.Counter
	resumedSkips *obs.Counter
	lastCkptNS   *obs.Gauge

	// sent is the resolver's own query counter on the same registry,
	// read (never written) by the progress reporter for its QPS line.
	sent *obs.Counter
}

// NewScanMetrics builds the scanner's instruments on r. Instruments are
// get-or-create, so sharing r with the resolver's Metrics gives one
// coherent registry for the whole pipeline.
func NewScanMetrics(r *obs.Registry) *ScanMetrics {
	return &ScanMetrics{
		reg:          r,
		parentWalk:   r.Histogram("scan_stage_parent_walk"),
		nsFetch:      r.Histogram("scan_stage_ns_fetch"),
		childProbe:   r.Histogram("scan_stage_child_probe"),
		secondRound:  r.Histogram("scan_stage_second_round"),
		domain:       r.Histogram("scan_domain_duration"),
		domainsTotal: r.Gauge("scan_domains_total"),
		domainsDone:  r.Counter("scan_domains_done_total"),
		walkFailures: r.Counter("scan_walk_failures_total"),
		errDomains:   r.Counter("scan_error_domains_total"),
		transients:   r.Counter("scan_transient_domains_total"),
		secondRounds: r.Counter("scan_second_rounds_total"),
		probeQueries: r.Counter("scan_probe_queries_total"),
		streamed:     r.Counter("scan_results_streamed_total"),
		bufferHigh:   r.Gauge("scan_stream_buffer_highwater"),
		checkpoints:  r.Counter("scan_checkpoints_written_total"),
		resumedSkips: r.Counter("scan_resumed_skips_total"),
		lastCkptNS:   r.Gauge("scan_last_checkpoint_unix_ns"),
		sent:         r.Counter("resolver_sent_total"),
	}
}

// Registry returns the registry the instruments live on.
func (m *ScanMetrics) Registry() *obs.Registry {
	if m == nil {
		return nil
	}
	return m.reg
}

// The record methods below are the scanner's only interface to the
// metrics; every one tolerates a nil receiver so an uninstrumented
// scanner pays a single predictable branch.

func (m *ScanMetrics) recordParentWalk(start time.Time, failed bool) {
	if m == nil {
		return
	}
	m.parentWalk.ObserveSince(start)
	if failed {
		m.walkFailures.Inc()
	}
}

func (m *ScanMetrics) recordNSFetch(start time.Time) {
	if m == nil {
		return
	}
	m.nsFetch.ObserveSince(start)
}

func (m *ScanMetrics) recordChildProbe(start time.Time, queries int) {
	if m == nil {
		return
	}
	m.childProbe.ObserveSince(start)
	m.probeQueries.Add(uint64(queries))
}

func (m *ScanMetrics) recordSecondRound(start time.Time) {
	if m == nil {
		return
	}
	m.secondRound.ObserveSince(start)
	m.secondRounds.Inc()
}

func (m *ScanMetrics) recordDomain(start time.Time, r *DomainResult) {
	if m == nil {
		return
	}
	m.domain.ObserveSince(start)
	m.domainsDone.Inc()
	if r.Err != "" {
		m.errDomains.Inc()
	}
	if r.ErrTransient {
		m.transients.Inc()
	}
}

func (m *ScanMetrics) setTotal(n int) {
	if m == nil {
		return
	}
	m.domainsTotal.Set(int64(n))
}

// SetTotal records the expected domain count for progress reporting.
// Scan sets it itself from its slice; streaming callers that know their
// source's length (e.g. a worldgen QueryStream) set it here, since
// ScanStream cannot know how long its iterator runs.
func (m *ScanMetrics) SetTotal(n int) { m.setTotal(n) }

func (m *ScanMetrics) recordStreamed() {
	if m == nil {
		return
	}
	m.streamed.Inc()
}

func (m *ScanMetrics) recordBufferHighwater(n int) {
	if m == nil {
		return
	}
	m.bufferHigh.Set(int64(n))
}

func (m *ScanMetrics) recordCheckpoint() {
	if m == nil {
		return
	}
	m.checkpoints.Inc()
	m.lastCkptNS.Set(time.Now().UnixNano())
}

func (m *ScanMetrics) recordResumedSkip() {
	if m == nil {
		return
	}
	m.resumedSkips.Inc()
}

// ProgressReporter periodically prints one-line scan progress — domains
// done/total, domain and query rates, error and transient rates, and an
// ETA extrapolated from the done-rate — from a ScanMetrics. Run it in
// its own goroutine; it stops when the context ends.
type ProgressReporter struct {
	Metrics *ScanMetrics
	// Interval between reports. Zero or negative defaults to 10s.
	Interval time.Duration
	// W receives the report lines (defaults to io.Discard if nil, which
	// makes a misconfigured reporter harmless).
	W io.Writer
}

// progressEWMATau is the time constant of the done-rate EWMA the ETA
// extrapolates from: windows much shorter than tau barely move the
// estimate, and history older than a few tau is forgotten. 60s tracks a
// scan's phase changes (the second round kicking in, the tail draining)
// within a couple of reports without jittering on every tick.
const progressEWMATau = 60 * time.Second

// progressState carries the reporter's inter-tick state. It is a plain
// struct updated by progressLine — a pure function of (state, counter
// values, clock) — so tests drive it with a synthetic clock.
type progressState struct {
	lastDone uint64
	lastSent uint64
	lastAt   time.Time
	rate     float64 // EWMA of the domain completion rate (domains/sec)
	primed   bool    // rate holds a real observation
}

// Run reports until ctx is cancelled, then emits one final line.
func (p *ProgressReporter) Run(ctx context.Context) {
	if p.Metrics == nil || p.W == nil {
		return
	}
	interval := p.Interval
	if interval <= 0 {
		interval = 10 * time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	st := &progressState{lastAt: time.Now()}
	for {
		select {
		case <-ctx.Done():
			p.report(st, time.Now())
			return
		case now := <-t.C:
			p.report(st, now)
		}
	}
}

func (p *ProgressReporter) report(st *progressState, now time.Time) {
	m := p.Metrics
	fmt.Fprintln(p.W, progressLine(st, now,
		m.domainsDone.Load(), m.domainsTotal.Load(),
		m.sent.Load(), m.errDomains.Load(), m.transients.Load(),
		m.streamed.Load(), m.bufferHigh.Load(), m.lastCkptNS.Load()))
}

// progressLine advances st to now and renders one progress report. The
// ETA extrapolates from an EWMA of the recent completion rate rather
// than the cumulative average: when the scan changes phase — most
// visibly when second-round retries start and the done-rate drops —
// the cumulative average still remembers the fast early phase and
// promises an ETA the scan cannot meet, while the EWMA converges to
// the current rate within a few tau.
// The streamed-path tail (emitted count, reorder-buffer highwater,
// checkpoint age) appears only when the stream writer is active —
// results have been emitted or a checkpoint exists — so the slice
// path's line is unchanged.
func progressLine(st *progressState, now time.Time, done uint64, total int64, sent, errs, trans, streamed uint64, bufHigh, ckptNS int64) string {
	window := now.Sub(st.lastAt).Seconds()
	if window <= 0 {
		window = 1
	}
	qps := float64(sent-st.lastSent) / window
	domRate := float64(done-st.lastDone) / window
	st.lastDone, st.lastSent, st.lastAt = done, sent, now

	// Window-aware smoothing: alpha = 1 - exp(-window/tau) gives the
	// same decay per unit time whatever the tick spacing, so a delayed
	// report (long window) weighs its observation proportionally more.
	alpha := 1 - math.Exp(-window/progressEWMATau.Seconds())
	if !st.primed {
		st.rate, st.primed = domRate, true
	} else {
		st.rate += alpha * (domRate - st.rate)
	}

	eta := "?"
	if total > 0 && uint64(total) > done && st.rate > 0 {
		eta = time.Duration(float64(uint64(total)-done) / st.rate * float64(time.Second)).Round(time.Second).String()
	}
	pct := func(n uint64) float64 {
		if done == 0 {
			return 0
		}
		return 100 * float64(n) / float64(done)
	}
	line := fmt.Sprintf("scan: %d/%d domains (%.1f/s, %.0f qps) errors %.1f%% transient %.1f%% eta %s",
		done, total, domRate, qps, pct(errs), pct(trans), eta)
	if streamed > 0 || ckptNS > 0 {
		age := "none"
		if ckptNS > 0 {
			age = now.Sub(time.Unix(0, ckptNS)).Round(time.Second).String()
		}
		line += fmt.Sprintf(" | stream %d emitted buf %d ckpt age %s", streamed, bufHigh, age)
	}
	return line
}
