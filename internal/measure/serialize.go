package measure

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/netip"
	"sort"

	"govdns/internal/dnsname"
	"govdns/internal/dnswire"
)

// The JSONL schema mirrors what bulk scanners like zdns emit: one domain
// result per line, self-contained, so scans can be archived and analyses
// re-run without re-measuring.

// resultJSON is the serialization shape of DomainResult.
type resultJSON struct {
	Domain              dnsname.Name        `json:"domain"`
	ParentZone          dnsname.Name        `json:"parent_zone,omitempty"`
	ParentResponded     bool                `json:"parent_responded"`
	ParentNS            []dnsname.Name      `json:"parent_ns,omitempty"`
	ParentAuthoritative bool                `json:"parent_aa,omitempty"`
	Addrs               map[string][]string `json:"addrs,omitempty"`
	Servers             []serverJSON        `json:"servers,omitempty"`
	Rounds              int                 `json:"rounds"`
	Err                 string              `json:"error,omitempty"`
	ErrTransient        bool                `json:"error_transient,omitempty"`
	Faults              *FaultCounts        `json:"faults,omitempty"`
}

type serverJSON struct {
	Host          dnsname.Name   `json:"host"`
	Addr          string         `json:"addr"`
	OK            bool           `json:"ok"`
	RCode         uint8          `json:"rcode,omitempty"`
	Authoritative bool           `json:"aa,omitempty"`
	NS            []dnsname.Name `json:"ns,omitempty"`
	Err           string         `json:"error,omitempty"`
}

// WriteJSONL streams results as JSON lines.
func WriteJSONL(w io.Writer, results []*DomainResult) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i, r := range results {
		if r == nil {
			continue
		}
		out := resultJSON{
			Domain:              r.Domain,
			ParentZone:          r.ParentZone,
			ParentResponded:     r.ParentResponded,
			ParentNS:            r.ParentNS,
			ParentAuthoritative: r.ParentAuthoritative,
			Rounds:              r.Rounds,
			Err:                 r.Err,
			ErrTransient:        r.ErrTransient,
		}
		if r.Faults != (FaultCounts{}) {
			f := r.Faults
			out.Faults = &f
		}
		if len(r.Addrs) > 0 {
			out.Addrs = make(map[string][]string, len(r.Addrs))
			for host, addrs := range r.Addrs {
				strs := make([]string, len(addrs))
				for j, a := range addrs {
					strs[j] = a.String()
				}
				sort.Strings(strs)
				out.Addrs[string(host)] = strs
			}
		}
		for _, sr := range r.Servers {
			sj := serverJSON{
				Host: sr.Host, OK: sr.OK, RCode: uint8(sr.RCode),
				Authoritative: sr.Authoritative, NS: sr.NS, Err: sr.Err,
			}
			if sr.Addr.IsValid() {
				sj.Addr = sr.Addr.String()
			}
			out.Servers = append(out.Servers, sj)
		}
		if err := enc.Encode(&out); err != nil {
			return fmt.Errorf("measure: encoding result %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadJSONL loads results written by WriteJSONL.
func ReadJSONL(r io.Reader) ([]*DomainResult, error) {
	dec := json.NewDecoder(bufio.NewReader(r))
	var results []*DomainResult
	line := 0
	for dec.More() {
		line++
		var in resultJSON
		if err := dec.Decode(&in); err != nil {
			return nil, fmt.Errorf("measure: decoding result %d: %w", line, err)
		}
		out := &DomainResult{
			Domain:              in.Domain,
			ParentZone:          in.ParentZone,
			ParentResponded:     in.ParentResponded,
			ParentNS:            in.ParentNS,
			ParentAuthoritative: in.ParentAuthoritative,
			Addrs:               make(map[dnsname.Name][]netip.Addr, len(in.Addrs)),
			Rounds:              in.Rounds,
			Err:                 in.Err,
			ErrTransient:        in.ErrTransient,
		}
		if in.Faults != nil {
			out.Faults = *in.Faults
		}
		for host, strs := range in.Addrs {
			name, err := dnsname.Parse(host)
			if err != nil {
				return nil, fmt.Errorf("measure: result %d host %q: %w", line, host, err)
			}
			var addrs []netip.Addr
			for _, s := range strs {
				a, err := netip.ParseAddr(s)
				if err != nil {
					return nil, fmt.Errorf("measure: result %d addr %q: %w", line, s, err)
				}
				addrs = append(addrs, a)
			}
			out.Addrs[name] = addrs
		}
		for _, sj := range in.Servers {
			sr := ServerResponse{
				Host: sj.Host, OK: sj.OK, RCode: dnswireRCode(sj.RCode),
				Authoritative: sj.Authoritative, NS: sj.NS, Err: sj.Err,
			}
			if sj.Addr != "" {
				a, err := netip.ParseAddr(sj.Addr)
				if err != nil {
					return nil, fmt.Errorf("measure: result %d server addr %q: %w", line, sj.Addr, err)
				}
				sr.Addr = a
			}
			out.Servers = append(out.Servers, sr)
		}
		results = append(results, out)
	}
	return results, nil
}

// dnswireRCode converts the serialized rcode byte back to the typed
// value.
func dnswireRCode(v uint8) dnswire.RCode { return dnswire.RCode(v) }
