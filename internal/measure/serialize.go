package measure

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/netip"
	"sort"

	"govdns/internal/dnsname"
	"govdns/internal/dnswire"
)

// The JSONL schema mirrors what bulk scanners like zdns emit: one domain
// result per line, self-contained, so scans can be archived and analyses
// re-run without re-measuring.

// resultJSON is the serialization shape of DomainResult.
type resultJSON struct {
	Domain              dnsname.Name        `json:"domain"`
	ParentZone          dnsname.Name        `json:"parent_zone,omitempty"`
	ParentResponded     bool                `json:"parent_responded"`
	ParentNS            []dnsname.Name      `json:"parent_ns,omitempty"`
	ParentAuthoritative bool                `json:"parent_aa,omitempty"`
	Addrs               map[string][]string `json:"addrs,omitempty"`
	Servers             []serverJSON        `json:"servers,omitempty"`
	Rounds              int                 `json:"rounds"`
	Err                 string              `json:"error,omitempty"`
	ErrTransient        bool                `json:"error_transient,omitempty"`
	Faults              *FaultCounts        `json:"faults,omitempty"`
}

type serverJSON struct {
	Host          dnsname.Name   `json:"host"`
	Addr          string         `json:"addr"`
	OK            bool           `json:"ok"`
	RCode         uint8          `json:"rcode,omitempty"`
	Authoritative bool           `json:"aa,omitempty"`
	NS            []dnsname.Name `json:"ns,omitempty"`
	Err           string         `json:"error,omitempty"`
}

// toResultJSON builds the serialization shape of r. Address lists are
// emitted in netip.Addr.Less order — the same canonical order the
// scanner holds them in memory — so that write → read → write is a
// byte identity and a reloaded scan digests identically to the live one
// (an earlier lexicographic string sort here reordered e.g. 9.0.0.2
// before 10.0.0.1 and quietly broke both properties).
func toResultJSON(r *DomainResult) resultJSON {
	out := resultJSON{
		Domain:              r.Domain,
		ParentZone:          r.ParentZone,
		ParentResponded:     r.ParentResponded,
		ParentNS:            r.ParentNS,
		ParentAuthoritative: r.ParentAuthoritative,
		Rounds:              r.Rounds,
		Err:                 r.Err,
		ErrTransient:        r.ErrTransient,
	}
	if r.Faults != (FaultCounts{}) {
		f := r.Faults
		out.Faults = &f
	}
	if len(r.Addrs) > 0 {
		out.Addrs = make(map[string][]string, len(r.Addrs))
		for host, addrs := range r.Addrs {
			sorted := append([]netip.Addr(nil), addrs...)
			sort.Slice(sorted, func(i, j int) bool { return sorted[i].Less(sorted[j]) })
			strs := make([]string, len(sorted))
			for j, a := range sorted {
				strs[j] = a.String()
			}
			out.Addrs[string(host)] = strs
		}
	}
	for _, sr := range r.Servers {
		sj := serverJSON{
			Host: sr.Host, OK: sr.OK, RCode: uint8(sr.RCode),
			Authoritative: sr.Authoritative, NS: sr.NS, Err: sr.Err,
		}
		if sr.Addr.IsValid() {
			sj.Addr = sr.Addr.String()
		}
		out.Servers = append(out.Servers, sj)
	}
	return out
}

// fromResultJSON rebuilds an in-memory result. Address lists are
// re-sorted into netip.Addr.Less order on the way in, so archives
// written before the order was canonicalized still load canonically.
func fromResultJSON(in *resultJSON) (*DomainResult, error) {
	out := &DomainResult{
		Domain:              in.Domain,
		ParentZone:          in.ParentZone,
		ParentResponded:     in.ParentResponded,
		ParentNS:            in.ParentNS,
		ParentAuthoritative: in.ParentAuthoritative,
		Addrs:               make(map[dnsname.Name][]netip.Addr, len(in.Addrs)),
		Rounds:              in.Rounds,
		Err:                 in.Err,
		ErrTransient:        in.ErrTransient,
	}
	if in.Faults != nil {
		out.Faults = *in.Faults
	}
	for host, strs := range in.Addrs {
		name, err := dnsname.Parse(host)
		if err != nil {
			return nil, fmt.Errorf("host %q: %w", host, err)
		}
		var addrs []netip.Addr
		for _, s := range strs {
			a, err := netip.ParseAddr(s)
			if err != nil {
				return nil, fmt.Errorf("addr %q: %w", s, err)
			}
			addrs = append(addrs, a)
		}
		sort.Slice(addrs, func(i, j int) bool { return addrs[i].Less(addrs[j]) })
		out.Addrs[name] = addrs
	}
	for _, sj := range in.Servers {
		sr := ServerResponse{
			Host: sj.Host, OK: sj.OK, RCode: dnswireRCode(sj.RCode),
			Authoritative: sj.Authoritative, NS: sj.NS, Err: sj.Err,
		}
		if sj.Addr != "" {
			a, err := netip.ParseAddr(sj.Addr)
			if err != nil {
				return nil, fmt.Errorf("server addr %q: %w", sj.Addr, err)
			}
			sr.Addr = a
		}
		out.Servers = append(out.Servers, sr)
	}
	return out, nil
}

// WriteJSONL streams results as JSON lines. The bytes are identical to
// what a StreamWriter fed the same results emits, which is what the
// slice-vs-stream differential pins.
func WriteJSONL(w io.Writer, results []*DomainResult) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i, r := range results {
		if r == nil {
			continue
		}
		out := toResultJSON(r)
		if err := enc.Encode(&out); err != nil {
			return fmt.Errorf("measure: encoding result %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadJSONL loads results written by WriteJSONL.
func ReadJSONL(r io.Reader) ([]*DomainResult, error) {
	dec := json.NewDecoder(bufio.NewReader(r))
	var results []*DomainResult
	line := 0
	for dec.More() {
		line++
		var in resultJSON
		if err := dec.Decode(&in); err != nil {
			return nil, fmt.Errorf("measure: decoding result %d: %w", line, err)
		}
		out, err := fromResultJSON(&in)
		if err != nil {
			return nil, fmt.Errorf("measure: result %d: %w", line, err)
		}
		results = append(results, out)
	}
	return results, nil
}

// dnswireRCode converts the serialized rcode byte back to the typed
// value.
func dnswireRCode(v uint8) dnswire.RCode { return dnswire.RCode(v) }
