package measure

// FuzzCheckpointReader throws arbitrary bytes at the resume path as
// both the checkpoint record and the output tail past the checkpointed
// prefix: torn and truncated checkpoints, garbage JSON, bit-flipped
// states, half-written JSONL lines. The contract under fuzz is the one
// LoadCheckpoint documents — corruption is an explicit error, never a
// silent skip — and on the accept side every byte kept must be
// accounted for: the archive parses, the counts match ResumeInfo, and
// resuming a second time finds a fully-checkpointed archive with
// nothing further to salvage or drop.

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func FuzzCheckpointReader(f *testing.F) {
	results := goldenResults()
	base := f.TempDir()
	baseOut := filepath.Join(base, "scan.jsonl")
	baseCk := filepath.Join(base, "scan.ckpt")
	writeCheckpointedPrefix(f, baseOut, baseCk, "fuzz", results, 2)
	prefix, err := os.ReadFile(baseOut)
	if err != nil {
		f.Fatal(err)
	}
	validCk, err := os.ReadFile(baseCk)
	if err != nil {
		f.Fatal(err)
	}
	tailLine := canonicalJSONL(f, results[2:3])

	f.Add(validCk, tailLine)                      // clean salvage
	f.Add(validCk, tailLine[:len(tailLine)/2])    // torn tail
	f.Add(validCk, []byte(nil))                   // exact checkpoint
	f.Add(validCk, []byte("not a result line\n")) // garbage tail
	f.Add(validCk[:len(validCk)/2], tailLine)     // torn checkpoint
	f.Add([]byte("{}"), []byte(nil))              // empty object
	f.Add([]byte(nil), tailLine)                  // empty checkpoint
	mutated := append([]byte(nil), validCk...)
	mutated[len(mutated)/2] ^= 0x20
	f.Add(mutated, tailLine) // bit-flipped state

	f.Fuzz(func(t *testing.T, ckpt, tail []byte) {
		dir := t.TempDir()
		outPath := filepath.Join(dir, "scan.jsonl")
		ckPath := filepath.Join(dir, "scan.ckpt")
		if err := os.WriteFile(outPath, append(append([]byte(nil), prefix...), tail...), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(ckPath, ckpt, 0o644); err != nil {
			t.Fatal(err)
		}
		cfg := StreamConfig{CheckpointPath: ckPath, ScanKey: "fuzz"}
		sw, info, err := ResumeStream(outPath, cfg)
		if err != nil {
			return // loud rejection is a correct outcome for corrupted input
		}
		defer sw.Close()
		if sw.Emitted() != info.Emitted {
			t.Fatalf("writer cursor %d != ResumeInfo.Emitted %d", sw.Emitted(), info.Emitted)
		}
		if info.Salvaged < 0 || info.DroppedBytes < 0 || info.Emitted < info.Salvaged {
			t.Fatalf("impossible ResumeInfo: %+v", info)
		}
		if err := sw.Finish(); err != nil {
			t.Fatalf("Finish after accepted resume: %v", err)
		}
		data, err := os.ReadFile(outPath)
		if err != nil {
			t.Fatal(err)
		}
		loaded, err := ReadJSONL(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("accepted archive does not parse: %v", err)
		}
		if len(loaded) != info.Emitted {
			t.Fatalf("archive holds %d results, resume reported %d", len(loaded), info.Emitted)
		}
		digest := sw.DigestHex()
		if err := sw.Close(); err != nil {
			t.Fatal(err)
		}

		// Idempotence: the post-Finish checkpoint covers the whole
		// archive, so a second resume has nothing to salvage or drop
		// and reconstructs the same digest state.
		sw2, info2, err := ResumeStream(outPath, cfg)
		if err != nil {
			t.Fatalf("second resume rejected what the first accepted: %v", err)
		}
		defer sw2.Close()
		if info2.Emitted != info.Emitted || info2.Salvaged != 0 || info2.DroppedBytes != 0 {
			t.Fatalf("second resume not a fixed point: %+v after %+v", info2, info)
		}
		if sw2.DigestHex() != digest {
			t.Fatalf("digest changed across idempotent resume: %s != %s", sw2.DigestHex(), digest)
		}
	})
}
