package trace

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestRenderTreeGolden pins govtrace's tree view of the full-featured
// fixture (regenerate with `go test ./internal/trace -run Golden -update`).
func TestRenderTreeGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := RenderTree(&buf, goldenTrace()); err != nil {
		t.Fatalf("RenderTree: %v", err)
	}
	path := filepath.Join("testdata", "tree.golden.txt")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("tree rendering diverged from golden file:\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// TestRenderTreeOrphanSpan: spans whose parent is out of range render
// as roots instead of disappearing — a truncated arena (DroppedSpans)
// must still show everything it kept.
func TestRenderTreeOrphanSpan(t *testing.T) {
	dt := &DomainTrace{
		Domain: "x.gov.", Duration: time.Millisecond, Class: "ok", Rounds: 1,
		Spans: []Span{
			{ID: 0, Parent: 99, Kind: KindQuery, Name: "orphan",
				Start: 0, Duration: 1, Outcome: "ok"},
		},
	}
	var buf bytes.Buffer
	if err := RenderTree(&buf, dt); err != nil {
		t.Fatalf("RenderTree: %v", err)
	}
	if !strings.Contains(buf.String(), "orphan") {
		t.Errorf("orphan span vanished from rendering:\n%s", buf.String())
	}
}

// TestSpanLineShapes covers the one-line renderer's outcome states.
func TestSpanLineShapes(t *testing.T) {
	cases := []struct {
		name string
		span Span
		want string
	}{
		{"ok with attrs",
			Span{Kind: KindQuery, Name: "x. NS @1.2.3.4", Duration: 5 * time.Microsecond,
				Outcome: "ok", Attrs: []Attr{Int("attempts", 1)}},
			"query x. NS @1.2.3.4 ok 5µs attempts=1"},
		{"error",
			Span{Kind: KindExchange, Name: "1.2.3.4", Duration: time.Microsecond, Outcome: "timeout"},
			`exchange 1.2.3.4 err="timeout" 1µs`},
		{"open",
			Span{Kind: KindRound, Name: "round 2", Duration: -1},
			"round round 2 open"},
		{"event",
			Span{Kind: KindCacheHit, Name: "gov.", Event: true,
				Attrs: []Attr{Str("layer", "zone"), Bool("negative", true)}},
			"cache_hit gov. layer=zone negative=true"},
	}
	for _, tc := range cases {
		if got := SpanLine(&tc.span); got != tc.want {
			t.Errorf("%s: SpanLine = %q, want %q", tc.name, got, tc.want)
		}
	}
}

// alteredTrace is the "second run" for diff tests: same domain, but the
// truncated attempt never happened (chaos off), one probe flipped from
// timeout to ok, the adaptive reorder picked a different first server,
// and round 2 never ran.
func alteredTrace() *DomainTrace {
	us := func(n int64) time.Duration { return time.Duration(n) * time.Microsecond }
	return &DomainTrace{
		Domain:   "city.gov.br.",
		Start:    time.Date(2026, 8, 5, 13, 0, 0, 0, time.UTC),
		Duration: us(400),
		Class:    "healthy",
		Rounds:   1,
		Spans: []Span{
			{ID: 0, Parent: NoSpan, Kind: KindDomain, Name: "city.gov.br.",
				Start: us(0), Duration: us(390), Outcome: "ok",
				Attrs: []Attr{Str("class", "healthy")}},
			{ID: 1, Parent: 0, Kind: KindRound, Name: "round 1",
				Start: us(1), Duration: us(380), Outcome: "ok",
				Attrs: []Attr{Str("class", "healthy")}},
			{ID: 2, Parent: 1, Kind: KindParentWalk, Name: "city.gov.br.",
				Start: us(2), Duration: us(150), Outcome: "ok"},
			{ID: 3, Parent: 2, Kind: KindReferral, Name: ".",
				Start: us(3), Duration: us(70), Outcome: "ok",
				Attrs: []Attr{Str("next", "gov.br.")}},
			{ID: 4, Parent: 3, Kind: KindReorder, Name: ".", Event: true,
				Start: us(4), Attrs: []Attr{Str("first", "1.0.2.1")}},
			{ID: 5, Parent: 3, Kind: KindQuery, Name: "city.gov.br. NS @1.0.1.1",
				Start: us(5), Duration: us(40), Outcome: "ok",
				Attrs: []Attr{Int("attempts", 1)}},
			{ID: 6, Parent: 5, Kind: KindAttempt, Name: "attempt 1",
				Start: us(6), Duration: us(20), Outcome: "ok"},
			{ID: 7, Parent: 6, Kind: KindExchange, Name: "1.0.1.1",
				Start: us(7), Duration: us(18), Outcome: "ok",
				Attrs: []Attr{Dur("rtt", us(15))}},
			{ID: 8, Parent: 3, Kind: KindZoneBuild, Name: "gov.br.",
				Start: us(70), Duration: us(10), Outcome: "ok",
				Attrs: []Attr{Int("hosts", 2), Int("glueless", 1)}},
			{ID: 9, Parent: 2, Kind: KindCacheHit, Name: "gov.br.", Event: true,
				Start: us(100), Attrs: []Attr{Str("layer", "zone"), Bool("negative", false)}},
			{ID: 10, Parent: 1, Kind: KindNSFetch, Name: "ns1.city.gov.br.",
				Start: us(210), Duration: us(40), Outcome: "ok",
				Attrs: []Attr{Bool("glue", true), Int("addrs", 1)}},
			{ID: 11, Parent: 10, Kind: KindHostResolve, Name: "ns1.city.gov.br.",
				Start: us(211), Duration: us(30), Outcome: "ok",
				Attrs: []Attr{Int("addrs", 1)}},
			{ID: 12, Parent: 11, Kind: KindFlightWait, Name: "ns1.city.gov.br.", Event: true,
				Start: us(212), Attrs: []Attr{Str("layer", "host")}},
			{ID: 13, Parent: 1, Kind: KindChildProbe, Name: "ns1.city.gov.br.",
				Start: us(270), Duration: us(80), Outcome: "ok"},
			{ID: 14, Parent: 13, Kind: KindProbe, Name: "4.0.0.1",
				Start: us(271), Duration: us(75), Outcome: "ok",
				Attrs: []Attr{Int("attempts", 1), Int("duplicates", 0),
					Int("truncations", 0), Int("qid_mismatches", 0),
					Int("question_mismatches", 0), Int("malformed", 0)}},
		},
	}
}

// TestDiffGolden pins the structural diff of the chaotic fixture
// against its clean second run: header changes, the vanished truncated
// attempt and its chaos event, the flipped probe outcome, the reorder
// attr change, and the missing round 2.
func TestDiffGolden(t *testing.T) {
	var buf bytes.Buffer
	n, err := Diff(&buf, goldenTrace(), alteredTrace())
	if err != nil {
		t.Fatalf("Diff: %v", err)
	}
	if wantLines := strings.Count(buf.String(), "\n"); n != wantLines {
		t.Errorf("Diff count %d != %d reported lines", n, wantLines)
	}
	path := filepath.Join("testdata", "diff.golden.txt")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("diff output diverged from golden file:\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// TestDiffIdentical: a trace diffed against itself reports nothing.
func TestDiffIdentical(t *testing.T) {
	var buf bytes.Buffer
	n, err := Diff(&buf, goldenTrace(), goldenTrace())
	if err != nil {
		t.Fatalf("Diff: %v", err)
	}
	if n != 0 || buf.Len() != 0 {
		t.Errorf("self-diff reported %d differences:\n%s", n, buf.String())
	}
}
