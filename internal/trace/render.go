// ASCII tree rendering: one line per span — stage, name (server/zone/
// host), outcome, duration, attributes — indented into the resolution
// tree. This is govtrace's triage view of a flight-recorder exemplar.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// RenderTree writes dt as an indented ASCII resolution tree. Children
// render in start order (ties broken by ID), so a trace renders
// identically however it was stored.
func RenderTree(w io.Writer, dt *DomainTrace) error {
	if _, err := fmt.Fprintln(w, headerLine(dt)); err != nil {
		return err
	}
	children := childIndex(dt)
	roots := children[NoSpan]
	for i, id := range roots {
		if err := renderSpan(w, dt, children, id, "", i == len(roots)-1); err != nil {
			return err
		}
	}
	return nil
}

func headerLine(dt *DomainTrace) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s class=%s rounds=%d dur=%s", dt.Domain, dt.Class, dt.Rounds, dt.Duration)
	if dt.Err != "" {
		fmt.Fprintf(&b, " err=%q", dt.Err)
	}
	if dt.ErrTransient {
		b.WriteString(" transient")
	}
	if dt.ClassChanged {
		b.WriteString(" class-changed")
	}
	if dt.DroppedSpans > 0 {
		fmt.Fprintf(&b, " dropped=%d", dt.DroppedSpans)
	}
	if len(dt.RetainedFor) > 0 {
		fmt.Fprintf(&b, " retained=%s", strings.Join(dt.RetainedFor, ","))
	}
	return b.String()
}

// childIndex maps parent -> child IDs sorted by (Start, ID). Spans
// with out-of-range parents are treated as roots so a hand-built trace
// still renders rather than vanishing.
func childIndex(dt *DomainTrace) map[SpanID][]SpanID {
	children := make(map[SpanID][]SpanID)
	for i := range dt.Spans {
		sp := &dt.Spans[i]
		parent := sp.Parent
		if parent < NoSpan || int(parent) >= len(dt.Spans) {
			parent = NoSpan
		}
		children[parent] = append(children[parent], sp.ID)
	}
	for _, ids := range children {
		sort.Slice(ids, func(a, b int) bool {
			sa, sb := &dt.Spans[ids[a]], &dt.Spans[ids[b]]
			if sa.Start != sb.Start {
				return sa.Start < sb.Start
			}
			return sa.ID < sb.ID
		})
	}
	return children
}

func renderSpan(w io.Writer, dt *DomainTrace, children map[SpanID][]SpanID, id SpanID, prefix string, last bool) error {
	branch, childPrefix := "├─ ", prefix+"│  "
	if last {
		branch, childPrefix = "└─ ", prefix+"   "
	}
	if _, err := fmt.Fprintf(w, "%s%s%s\n", prefix, branch, SpanLine(&dt.Spans[id])); err != nil {
		return err
	}
	kids := children[id]
	for i, kid := range kids {
		if err := renderSpan(w, dt, children, kid, childPrefix, i == len(kids)-1); err != nil {
			return err
		}
	}
	return nil
}

// SpanLine renders one span as a single line: kind, name, outcome,
// duration, attributes. Events render without outcome or duration.
func SpanLine(sp *Span) string {
	var b strings.Builder
	b.WriteString(sp.Kind.String())
	if sp.Name != "" {
		b.WriteByte(' ')
		b.WriteString(sp.Name)
	}
	if !sp.Event {
		switch {
		case sp.Outcome == "ok":
			b.WriteString(" ok")
		case sp.Outcome != "":
			fmt.Fprintf(&b, " err=%q", sp.Outcome)
		default:
			b.WriteString(" open")
		}
		if sp.Duration >= 0 {
			b.WriteByte(' ')
			b.WriteString(sp.Duration.String())
		}
	}
	for _, a := range sp.Attrs {
		fmt.Fprintf(&b, " %s=%s", a.Key, a.Value())
	}
	return b.String()
}
