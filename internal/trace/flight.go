// The flight recorder: bounded retention of exemplar domain traces.
//
// Recording every domain's span tree at scan scale would cost more
// memory than the scan itself, so the FlightRecorder keeps only the
// traces a triage session would actually open: the N slowest domains
// (scan-latency outliers), every domain that ended in an error or a
// transient fault (ring buffer — the paper's Error/Transient buckets),
// every domain whose classification changed between rounds (the
// digest-divergence suspects), and every trace the caller explicitly
// pinned (OfferPin — the monitoring daemon's alert-worthy domains).
// Everything else is offered, counted, and dropped; the per-domain
// arena it occupied is garbage the moment Offer returns.
package trace

import (
	"io"
	"sort"
	"sync"

	"govdns/internal/dnsname"
	"govdns/internal/obs"
)

// Retention bucket labels reported in DomainTrace.RetainedFor.
const (
	RetainSlowest   = "slowest"
	RetainError     = "error"
	RetainClassFlip = "class-flip"
	RetainPinned    = "pinned"
)

// Config bounds the flight recorder's four retention buckets.
type Config struct {
	// Slowest is how many slowest-domain exemplars to keep (default 16).
	Slowest int
	// Errors bounds the Error/Transient ring buffer (default 512).
	Errors int
	// Flipped bounds the classification-changed ring buffer (default 128).
	Flipped int
	// Pinned bounds the caller-pinned ring buffer (default 256): traces
	// retained because the caller's own predicate — not the recorder's
	// built-in criteria — demanded them via OfferPin. The monitoring
	// daemon pins every alert-worthy domain here so each alert links to
	// a complete trace even when the domain was fast, error-free, and
	// stable within the epoch.
	Pinned int
	// SpanLimit caps spans per domain (default DefaultSpanLimit).
	SpanLimit int
}

func (c Config) withDefaults() Config {
	if c.Slowest <= 0 {
		c.Slowest = 16
	}
	if c.Errors <= 0 {
		c.Errors = 512
	}
	if c.Flipped <= 0 {
		c.Flipped = 128
	}
	if c.Pinned <= 0 {
		c.Pinned = 256
	}
	if c.SpanLimit <= 0 {
		c.SpanLimit = DefaultSpanLimit
	}
	return c
}

// FlightRecorder retains exemplar DomainTraces under fixed memory
// bounds. A nil *FlightRecorder is tracing-off: NewRecorder returns a
// nil *Recorder and Offer is a no-op, mirroring obs's nil-instrument
// contract.
type FlightRecorder struct {
	cfg Config

	mu       sync.Mutex
	slowest  []*DomainTrace // sorted descending by Duration, len <= cfg.Slowest
	errs     []*DomainTrace // ring buffer
	errNext  int
	flipped  []*DomainTrace // ring buffer
	flipNext int
	pinned   []*DomainTrace // ring buffer
	pinNext  int
	offered  uint64

	// arenas recycles the span slices of traces Offer declined to
	// retain: at scan scale almost every offer is dropped, and without
	// reuse each domain pays a fresh arena allocation.
	arenas sync.Pool

	// Registry handles; nil until AttachRegistry, and nil-safe like
	// every obs instrument.
	mOffered      *obs.Counter
	mRetained     *obs.Counter
	mDroppedSpans *obs.Counter
	gSlowest      *obs.Gauge
	gErrors       *obs.Gauge
	gFlipped      *obs.Gauge
	gPinned       *obs.Gauge
}

// NewFlightRecorder builds a flight recorder; zero-value Config fields
// take the documented defaults.
func NewFlightRecorder(cfg Config) *FlightRecorder {
	return &FlightRecorder{cfg: cfg.withDefaults()}
}

// AttachRegistry binds the recorder's retention counts to reg:
//
//	trace_domains_offered_total    domains whose trace was offered
//	trace_domains_retained_total   offers that landed in >= 1 bucket
//	trace_spans_dropped_total      spans lost to per-domain arena caps
//	trace_retained_slowest         current slowest-bucket occupancy
//	trace_retained_errors          current error-ring occupancy
//	trace_retained_flipped         current class-flip-ring occupancy
//	trace_retained_pinned          current caller-pinned-ring occupancy
func (f *FlightRecorder) AttachRegistry(reg *obs.Registry) {
	if f == nil || reg == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.mOffered = reg.Counter("trace_domains_offered_total")
	f.mRetained = reg.Counter("trace_domains_retained_total")
	f.mDroppedSpans = reg.Counter("trace_spans_dropped_total")
	f.gSlowest = reg.Gauge("trace_retained_slowest")
	f.gErrors = reg.Gauge("trace_retained_errors")
	f.gFlipped = reg.Gauge("trace_retained_flipped")
	f.gPinned = reg.Gauge("trace_retained_pinned")
}

// NewRecorder starts a per-domain recorder, or nil when f is nil so
// the whole recording path short-circuits. The recorder's arena is
// recycled from a previously dropped trace when one is available.
func (f *FlightRecorder) NewRecorder(domain dnsname.Name) *Recorder {
	if f == nil {
		return nil
	}
	if sp, ok := f.arenas.Get().(*[]Span); ok {
		return newRecorder(domain, f.cfg.SpanLimit, (*sp)[:0])
	}
	return NewRecorder(domain, f.cfg.SpanLimit)
}

// Offer presents a sealed trace for retention. The trace is kept if it
// is among the slowest seen so far, ended Error/Transient, or changed
// classification between rounds; otherwise it is dropped.
func (f *FlightRecorder) Offer(dt *DomainTrace) {
	f.OfferPin(dt, false)
}

// OfferPin is Offer with a caller-side retention demand: pin forces the
// trace into the pinned ring whatever the built-in criteria say. This
// is the targeted-retention API the monitoring daemon keys by its
// alert predicate — the recorder stays ignorant of what "alert-worthy"
// means, the caller stays ignorant of retention bookkeeping.
func (f *FlightRecorder) OfferPin(dt *DomainTrace, pin bool) {
	if f == nil || dt == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.offered++
	f.mOffered.Inc()
	if dt.DroppedSpans > 0 {
		f.mDroppedSpans.Add(uint64(dt.DroppedSpans))
	}

	retained := false
	// Slowest bucket: insertion sort into a small descending slice.
	if len(f.slowest) < f.cfg.Slowest || dt.Duration > f.slowest[len(f.slowest)-1].Duration {
		i := sort.Search(len(f.slowest), func(i int) bool {
			return f.slowest[i].Duration < dt.Duration
		})
		if len(f.slowest) < f.cfg.Slowest {
			f.slowest = append(f.slowest, nil)
		}
		copy(f.slowest[i+1:], f.slowest[i:])
		f.slowest[i] = dt
		retained = true
	}
	if dt.Err != "" || dt.ErrTransient {
		if len(f.errs) < f.cfg.Errors {
			f.errs = append(f.errs, dt)
		} else {
			f.errs[f.errNext] = dt
			f.errNext = (f.errNext + 1) % f.cfg.Errors
		}
		retained = true
	}
	if dt.ClassChanged {
		if len(f.flipped) < f.cfg.Flipped {
			f.flipped = append(f.flipped, dt)
		} else {
			f.flipped[f.flipNext] = dt
			f.flipNext = (f.flipNext + 1) % f.cfg.Flipped
		}
		retained = true
	}
	if pin {
		if len(f.pinned) < f.cfg.Pinned {
			f.pinned = append(f.pinned, dt)
		} else {
			f.pinned[f.pinNext] = dt
			f.pinNext = (f.pinNext + 1) % f.cfg.Pinned
		}
		retained = true
	}
	if retained {
		f.mRetained.Inc()
	} else {
		// Nobody holds the trace: clear the spans (they pin name and
		// outcome strings) and recycle the arena for the next domain.
		spans := dt.Spans
		clear(spans)
		spans = spans[:0]
		f.arenas.Put(&spans)
		dt.Spans = nil
	}
	f.gSlowest.Set(int64(len(f.slowest)))
	f.gErrors.Set(int64(len(f.errs)))
	f.gFlipped.Set(int64(len(f.flipped)))
	f.gPinned.Set(int64(len(f.pinned)))
}

// Counts reports current bucket occupancy and the total offered.
func (f *FlightRecorder) Counts() (slowest, errors, flipped int, offered uint64) {
	if f == nil {
		return 0, 0, 0, 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.slowest), len(f.errs), len(f.flipped), f.offered
}

// PinnedCount reports the pinned ring's occupancy.
func (f *FlightRecorder) PinnedCount() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.pinned)
}

// Retained returns the deduplicated set of retained traces, each
// annotated with the buckets that kept it, sorted by (Domain, Start)
// so exports are deterministic for a deterministic scan.
func (f *FlightRecorder) Retained() []*DomainTrace {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	reasons := make(map[*DomainTrace][]string)
	order := make([]*DomainTrace, 0, len(f.slowest)+len(f.errs)+len(f.flipped)+len(f.pinned))
	add := func(dts []*DomainTrace, reason string) {
		for _, dt := range dts {
			if _, ok := reasons[dt]; !ok {
				order = append(order, dt)
			}
			reasons[dt] = append(reasons[dt], reason)
		}
	}
	add(f.slowest, RetainSlowest)
	add(f.errs, RetainError)
	add(f.flipped, RetainClassFlip)
	add(f.pinned, RetainPinned)
	for _, dt := range order {
		dt.RetainedFor = reasons[dt]
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].Domain != order[j].Domain {
			return order[i].Domain < order[j].Domain
		}
		return order[i].Start.Before(order[j].Start)
	})
	return order
}

// WriteJSONL exports every retained trace, one JSON object per line.
func (f *FlightRecorder) WriteJSONL(w io.Writer) error {
	return WriteJSONL(w, f.Retained())
}
