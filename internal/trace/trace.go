// Package trace is the scan pipeline's flight recorder. Where
// internal/obs answers "how is the scan doing in aggregate", trace
// answers "why did THIS domain take THIS path through the Fig. 1
// pipeline": every layer of a domain's measurement — scanner stages
// (parent walk, NS fetch, child probe, second round), iterator steps
// (referral, glue chase, zone build, cache hits, singleflight waits,
// adaptive reorder), client attempts (retry, discard, fault class,
// RTT), and transport-level chaos injections — records a span into a
// per-domain tree.
//
// The design mirrors obs's nil-safety contract: a nil *Recorder is a
// valid recorder whose every method is a no-op, so tracing-off call
// sites pay only a nil check. Recording call sites that would build a
// label string (fmt.Sprintf, addr.String()) must guard with
// `if rec != nil` so the tracing-off path stays allocation-free; the
// recorder itself is one append into a per-domain arena under a
// mutex.
//
// Span timestamps are monotonic offsets from the recorder's creation
// (time.Since on the creation time, which carries Go's monotonic
// reading), so a trace is internally consistent even across wall-clock
// steps; only the DomainTrace root carries a wall-clock start.
package trace

import (
	"context"
	"strconv"
	"sync"
	"time"

	"govdns/internal/dnsname"
)

// SpanID indexes a span within its domain's arena. IDs are dense and
// allocation order equals start order.
type SpanID int32

// NoSpan is the parent of root spans and the ID returned by a nil or
// saturated recorder; every Recorder method accepts it and no-ops.
const NoSpan SpanID = -1

// DefaultSpanLimit bounds one domain's arena. A healthy domain records
// a few dozen spans; a pathological walk under chaos a few hundred.
// The cap exists so a resolution loop can never hold the scan's memory
// hostage — overflow increments DroppedSpans instead of growing.
const DefaultSpanLimit = 8192

// Kind classifies a span by pipeline layer. Kinds serialize as the
// strings in kindNames; ReadJSONL rejects unknown kinds.
type Kind uint8

const (
	// Scanner stages (internal/measure).
	KindDomain     Kind = iota // root: one whole domain measurement
	KindRound                  // one scan round (1 or 2)
	KindParentWalk             // delegation walk from the root
	KindNSFetch                // resolving one NS host to addresses
	KindChildProbe             // probing one NS host's addresses
	KindProbe                  // one child NS query to one address

	// Client layer (internal/resolver client).
	KindQuery    // one QueryTraced call (all attempts)
	KindAttempt  // one retry attempt
	KindExchange // one wire exchange (send + recv/discard loop entry)

	// Iterator layer (internal/resolver iterate).
	KindReferral    // one step of the delegation walk
	KindZoneBuild   // building a zone's server set from a referral
	KindHostResolve // resolving one NS hostname (glue chase)

	// Events (zero-duration annotations).
	KindCacheHit   // host/zone cache hit (attr negative=true for cached failures)
	KindFlightWait // received another chain's singleflight result (coalesce)
	KindReorder    // adaptive ordering changed the server try order
	KindChaos      // a chaos injection hit the enclosing exchange

	numKinds
)

var kindNames = [numKinds]string{
	"domain", "round", "parent_walk", "ns_fetch", "child_probe", "probe",
	"query", "attempt", "exchange",
	"referral", "zone_build", "host_resolve",
	"cache_hit", "flight_wait", "reorder", "chaos",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "kind(" + strconv.Itoa(int(k)) + ")"
}

// KindFromString is the inverse of Kind.String for deserialization.
func KindFromString(s string) (Kind, bool) {
	for i, n := range kindNames {
		if n == s {
			return Kind(i), true
		}
	}
	return 0, false
}

// AttrKind types an attribute value. Attrs are a flat tagged union
// rather than interface{} so recording never boxes.
type AttrKind uint8

const (
	AttrStr AttrKind = iota
	AttrInt
	AttrDur
	AttrBool
)

// Attr is one typed key/value annotation on a span.
type Attr struct {
	Key  string
	Kind AttrKind
	Str  string
	Int  int64
}

// Str builds a string attribute.
func Str(key, v string) Attr { return Attr{Key: key, Kind: AttrStr, Str: v} }

// Int builds an integer attribute.
func Int(key string, v int64) Attr { return Attr{Key: key, Kind: AttrInt, Int: v} }

// Dur builds a duration attribute.
func Dur(key string, d time.Duration) Attr { return Attr{Key: key, Kind: AttrDur, Int: int64(d)} }

// Bool builds a boolean attribute.
func Bool(key string, v bool) Attr {
	a := Attr{Key: key, Kind: AttrBool}
	if v {
		a.Int = 1
	}
	return a
}

// Value renders the attribute value as a string (for trees and diffs).
func (a Attr) Value() string {
	switch a.Kind {
	case AttrStr:
		return a.Str
	case AttrInt:
		return strconv.FormatInt(a.Int, 10)
	case AttrDur:
		return time.Duration(a.Int).String()
	case AttrBool:
		if a.Int != 0 {
			return "true"
		}
		return "false"
	default:
		return "?"
	}
}

// Span is one node of a domain's resolution tree. Start is the offset
// from the domain recorder's creation; Duration is -1 while the span
// is open and >= 0 once ended. Events (Event == true) are instant
// annotations: zero duration, no outcome.
type Span struct {
	ID       SpanID
	Parent   SpanID
	Kind     Kind
	Name     string
	Event    bool
	Start    time.Duration
	Duration time.Duration
	Outcome  string // "" while open; "ok" or the error text once ended
	Attrs    []Attr
}

// Ended reports whether the span was closed (events count as ended).
func (s *Span) Ended() bool { return s.Event || s.Duration >= 0 }

// Recorder collects one domain's spans into an arena. All methods are
// safe on a nil receiver and safe for concurrent use — the per-domain
// fan-out and glue chases record from many goroutines.
type Recorder struct {
	limit  int
	start  time.Time // carries the monotonic reading for offsets
	domain dnsname.Name

	mu      sync.Mutex
	spans   []Span
	dropped int
}

// NewRecorder starts a recorder for one domain. limit <= 0 means
// DefaultSpanLimit.
func NewRecorder(domain dnsname.Name, limit int) *Recorder {
	return newRecorder(domain, limit, make([]Span, 0, 64))
}

// newRecorder is NewRecorder over a caller-supplied arena — the flight
// recorder recycles dropped traces' arenas through here.
func newRecorder(domain dnsname.Name, limit int, arena []Span) *Recorder {
	if limit <= 0 {
		limit = DefaultSpanLimit
	}
	return &Recorder{limit: limit, start: time.Now(), domain: domain, spans: arena}
}

// StartSpan opens a span under parent (NoSpan for a root) and returns
// its ID. Returns NoSpan on a nil recorder or a full arena.
func (r *Recorder) StartSpan(parent SpanID, kind Kind, name string) SpanID {
	if r == nil {
		return NoSpan
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.spans) >= r.limit {
		r.dropped++
		return NoSpan
	}
	id := SpanID(len(r.spans))
	r.spans = append(r.spans, Span{
		ID: id, Parent: parent, Kind: kind, Name: name,
		Start: time.Since(r.start), Duration: -1,
	})
	return id
}

// EndSpan closes a span with "ok" or the error's text. Ending NoSpan
// or an already-ended span is a no-op, so straight-line call sites can
// end unconditionally on every path.
func (r *Recorder) EndSpan(id SpanID, err error) {
	if r == nil || id < 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if int(id) >= len(r.spans) {
		return
	}
	sp := &r.spans[id]
	if sp.Ended() {
		return
	}
	if d := time.Since(r.start) - sp.Start; d > 0 {
		sp.Duration = d
	} else {
		sp.Duration = 0
	}
	if err != nil {
		sp.Outcome = err.Error()
	} else {
		sp.Outcome = "ok"
	}
}

// Annotate appends attributes to an open or ended span.
func (r *Recorder) Annotate(id SpanID, attrs ...Attr) {
	if r == nil || id < 0 || len(attrs) == 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if int(id) >= len(r.spans) {
		return
	}
	sp := &r.spans[id]
	sp.Attrs = append(sp.Attrs, attrs...)
}

// Event records an instant zero-duration span under parent: cache
// hits, singleflight waits, reorders, chaos injections.
func (r *Recorder) Event(parent SpanID, kind Kind, name string, attrs ...Attr) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.spans) >= r.limit {
		r.dropped++
		return
	}
	id := SpanID(len(r.spans))
	r.spans = append(r.spans, Span{
		ID: id, Parent: parent, Kind: kind, Name: name, Event: true,
		Start: time.Since(r.start), Attrs: attrs,
	})
}

// Finish seals the recorder into an exportable DomainTrace. The
// classification, round count, and error disposition come from the
// scan result; ClassChanged marks a domain whose classification
// differed between rounds (one of the flight recorder's retention
// triggers).
//
// Finish transfers the span arena to the returned trace rather than
// copying it — at scan scale the copy would double tracing's
// allocation bill. The recorder is left empty: recording after Finish
// is safe but lands in a fresh arena invisible to the sealed trace.
func (r *Recorder) Finish(class string, rounds int, errText string, transient, classChanged bool) *DomainTrace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	dt := &DomainTrace{
		Domain:       r.domain,
		Start:        r.start,
		Duration:     time.Since(r.start),
		Class:        class,
		Rounds:       rounds,
		Err:          errText,
		ErrTransient: transient,
		ClassChanged: classChanged,
		DroppedSpans: r.dropped,
		Spans:        r.spans,
	}
	r.spans = nil
	return dt
}

// DomainTrace is one domain's sealed span tree plus the scan-result
// summary that decided its retention.
type DomainTrace struct {
	Domain       dnsname.Name
	Start        time.Time
	Duration     time.Duration
	Class        string
	Rounds       int
	Err          string
	ErrTransient bool
	ClassChanged bool
	DroppedSpans int
	// RetainedFor lists the flight-recorder buckets that kept this
	// trace ("slowest", "error", "class-flip"); empty until the trace
	// passes through FlightRecorder.Retained.
	RetainedFor []string
	Spans       []Span
}

// scope carries the active recorder and parent span through a context.
// One key holds both so tracing adds a single context value per layer.
type scopeKey struct{}

type scope struct {
	rec  *Recorder
	span SpanID
}

// ContextWith returns ctx scoped to (rec, span); a nil rec returns ctx
// unchanged so tracing-off paths add no context layers.
func ContextWith(ctx context.Context, rec *Recorder, span SpanID) context.Context {
	if rec == nil {
		return ctx
	}
	return context.WithValue(ctx, scopeKey{}, scope{rec: rec, span: span})
}

// From extracts the active recorder and parent span from ctx; (nil,
// NoSpan) when the request is untraced.
func From(ctx context.Context) (*Recorder, SpanID) {
	if s, ok := ctx.Value(scopeKey{}).(scope); ok {
		return s.rec, s.span
	}
	return nil, NoSpan
}
