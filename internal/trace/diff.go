// Structural diff of two traces of the same domain — the triage tool
// for a digest-divergence report: given a trace from each of two runs,
// show where the resolution trees took different paths, changed
// outcome, or picked up different fault annotations. Durations are
// expected to differ between runs and are shown as context on changed
// spans, never flagged on their own.
package trace

import (
	"fmt"
	"io"
	"strings"
)

// Diff writes a line-per-difference structural diff of a and b and
// returns the number of differences. Spans are matched within each
// sibling group by (kind, name) in start order; unmatched spans report
// as one difference each ("-" only in a, "+" only in b), matched spans
// whose outcome or attributes differ report as "~".
func Diff(w io.Writer, a, b *DomainTrace) (int, error) {
	d := &differ{w: w}
	if a.Domain != b.Domain {
		d.reportf("~ domain: %s vs %s", a.Domain, b.Domain)
	}
	if a.Class != b.Class {
		d.reportf("~ class: %s -> %s", a.Class, b.Class)
	}
	if a.Rounds != b.Rounds {
		d.reportf("~ rounds: %d -> %d", a.Rounds, b.Rounds)
	}
	if a.Err != b.Err {
		d.reportf("~ error: %q -> %q", a.Err, b.Err)
	}
	d.children(a, b, childIndex(a), childIndex(b), NoSpan, NoSpan, "")
	return d.count, d.err
}

type differ struct {
	w     io.Writer
	count int
	err   error
}

func (d *differ) reportf(format string, args ...any) {
	d.count++
	if d.err == nil {
		_, d.err = fmt.Fprintf(d.w, format+"\n", args...)
	}
}

// key matches sibling spans across runs: same layer, same subject.
func spanKey(sp *Span) string { return sp.Kind.String() + " " + sp.Name }

func spanPath(prefix string, sp *Span) string {
	if prefix == "" {
		return spanKey(sp)
	}
	return prefix + "/" + spanKey(sp)
}

func (d *differ) children(a, b *DomainTrace, ca, cb map[SpanID][]SpanID, pa, pb SpanID, prefix string) {
	akids, bkids := ca[pa], cb[pb]
	// Greedy in-order matching by (kind, name): for each span on the
	// left, take the first unmatched right-hand sibling with the same
	// key. Start order is deterministic per run, so repeated keys
	// (e.g. two attempts against the same server) pair first-to-first.
	used := make([]bool, len(bkids))
	for _, aid := range akids {
		asp := &a.Spans[aid]
		match := -1
		for j, bid := range bkids {
			if !used[j] && spanKey(&b.Spans[bid]) == spanKey(asp) {
				match = j
				break
			}
		}
		if match < 0 {
			d.reportf("- %s (%s)", spanPath(prefix, asp), describe(asp))
			continue
		}
		used[match] = true
		bsp := &b.Spans[bkids[match]]
		d.compare(asp, bsp, spanPath(prefix, asp))
		d.children(a, b, ca, cb, asp.ID, bsp.ID, spanPath(prefix, asp))
	}
	for j, bid := range bkids {
		if !used[j] {
			bsp := &b.Spans[bid]
			d.reportf("+ %s (%s)", spanPath(prefix, bsp), describe(bsp))
		}
	}
}

func (d *differ) compare(asp, bsp *Span, path string) {
	if asp.Outcome != bsp.Outcome {
		d.reportf("~ %s: outcome %s -> %s (%s -> %s)",
			path, outcomeText(asp), outcomeText(bsp), asp.Duration, bsp.Duration)
	}
	if aa, ba := attrText(asp), attrText(bsp); aa != ba {
		d.reportf("~ %s: attrs [%s] -> [%s]", path, aa, ba)
	}
}

func outcomeText(sp *Span) string {
	switch {
	case sp.Event:
		return "event"
	case sp.Outcome == "ok":
		return "ok"
	case sp.Outcome != "":
		return fmt.Sprintf("err=%q", sp.Outcome)
	default:
		return "open"
	}
}

func attrText(sp *Span) string {
	parts := make([]string, len(sp.Attrs))
	for i, a := range sp.Attrs {
		parts[i] = a.Key + "=" + a.Value()
	}
	return strings.Join(parts, " ")
}

func describe(sp *Span) string {
	if sp.Event {
		s := attrText(sp)
		if s == "" {
			return "event"
		}
		return "event " + s
	}
	if sp.Duration < 0 {
		return outcomeText(sp)
	}
	return outcomeText(sp) + " " + sp.Duration.String()
}
