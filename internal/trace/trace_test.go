package trace

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"govdns/internal/dnsname"
	"govdns/internal/obs"
)

// TestNilRecorderNoOps pins the tracing-off contract: every method of a
// nil *Recorder and nil *FlightRecorder is a safe no-op, because that
// is what every call site in the resolver and scanner relies on.
func TestNilRecorderNoOps(t *testing.T) {
	var r *Recorder
	if id := r.StartSpan(NoSpan, KindDomain, "x"); id != NoSpan {
		t.Errorf("nil StartSpan = %d, want NoSpan", id)
	}
	r.EndSpan(NoSpan, nil)
	r.EndSpan(0, errors.New("boom"))
	r.Annotate(0, Str("k", "v"))
	r.Event(NoSpan, KindChaos, "drop")
	if dt := r.Finish("ok", 1, "", false, false); dt != nil {
		t.Errorf("nil Finish = %+v, want nil", dt)
	}

	var f *FlightRecorder
	if rec := f.NewRecorder("x.gov."); rec != nil {
		t.Errorf("nil FlightRecorder.NewRecorder = %v, want nil", rec)
	}
	f.Offer(nil)
	f.AttachRegistry(obs.NewRegistry())
	if s, e, fl, o := f.Counts(); s+e+fl != 0 || o != 0 {
		t.Errorf("nil Counts = %d %d %d %d", s, e, fl, o)
	}
	if got := f.Retained(); got != nil {
		t.Errorf("nil Retained = %v, want nil", got)
	}
}

// TestRecorderSpanTree exercises the arena: parents, outcomes,
// annotation, events, and idempotent EndSpan.
func TestRecorderSpanTree(t *testing.T) {
	r := NewRecorder("x.gov.", 0)
	root := r.StartSpan(NoSpan, KindDomain, "x.gov.")
	child := r.StartSpan(root, KindQuery, "x.gov. NS @1.2.3.4")
	r.Annotate(child, Int("attempts", 3), Dur("rtt", 5*time.Millisecond))
	r.EndSpan(child, errors.New("timeout"))
	r.EndSpan(child, nil) // idempotent: must not overwrite the error
	r.Event(root, KindCacheHit, "gov.", Str("layer", "zone"), Bool("negative", true))
	r.EndSpan(root, nil)

	dt := r.Finish("walk-failure", 2, "timeout", true, true)
	if dt.Domain != "x.gov." || dt.Class != "walk-failure" || dt.Rounds != 2 {
		t.Fatalf("Finish header = %+v", dt)
	}
	if !dt.ErrTransient || !dt.ClassChanged {
		t.Errorf("flags not carried: %+v", dt)
	}
	if len(dt.Spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(dt.Spans))
	}

	rootSp, childSp, ev := &dt.Spans[0], &dt.Spans[1], &dt.Spans[2]
	if rootSp.Parent != NoSpan || childSp.Parent != root || ev.Parent != root {
		t.Errorf("parents wrong: %d %d %d", rootSp.Parent, childSp.Parent, ev.Parent)
	}
	if rootSp.Outcome != "ok" {
		t.Errorf("root outcome = %q, want ok", rootSp.Outcome)
	}
	if childSp.Outcome != "timeout" {
		t.Errorf("child outcome = %q, want timeout (idempotent EndSpan)", childSp.Outcome)
	}
	if !childSp.Ended() || childSp.Duration < 0 {
		t.Errorf("child not ended: %+v", childSp)
	}
	if len(childSp.Attrs) != 2 || childSp.Attrs[0].Value() != "3" || childSp.Attrs[1].Value() != "5ms" {
		t.Errorf("attrs = %+v", childSp.Attrs)
	}
	if !ev.Event || !ev.Ended() || ev.Duration != 0 || ev.Outcome != "" {
		t.Errorf("event malformed: %+v", ev)
	}
	if ev.Kind != KindCacheHit || ev.Attrs[1].Value() != "true" {
		t.Errorf("event attrs = %+v", ev)
	}
}

// TestRecorderSpanLimit: the arena cap turns overflow into DroppedSpans
// instead of growth, and ending a dropped (NoSpan) span is harmless.
func TestRecorderSpanLimit(t *testing.T) {
	r := NewRecorder("x.gov.", 2)
	a := r.StartSpan(NoSpan, KindDomain, "a")
	b := r.StartSpan(a, KindRound, "b")
	c := r.StartSpan(b, KindQuery, "c") // over the cap
	if c != NoSpan {
		t.Fatalf("over-limit StartSpan = %d, want NoSpan", c)
	}
	r.Event(b, KindChaos, "also dropped")
	r.EndSpan(c, nil)
	r.EndSpan(b, nil)
	r.EndSpan(a, nil)
	dt := r.Finish("ok", 1, "", false, false)
	if len(dt.Spans) != 2 || dt.DroppedSpans != 2 {
		t.Errorf("spans=%d dropped=%d, want 2 and 2", len(dt.Spans), dt.DroppedSpans)
	}
}

// TestRecorderConcurrent hammers one recorder from many goroutines the
// way the scanner's intra-domain fan-out does; run under -race this is
// the data-race check, and the span count must come out exact.
func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder("x.gov.", 0)
	root := r.StartSpan(NoSpan, KindDomain, "x.gov.")
	const workers, each = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				id := r.StartSpan(root, KindProbe, fmt.Sprintf("w%d-%d", w, i))
				r.Annotate(id, Int("i", int64(i)))
				r.EndSpan(id, nil)
			}
		}(w)
	}
	wg.Wait()
	r.EndSpan(root, nil)
	dt := r.Finish("ok", 1, "", false, false)
	if want := 1 + workers*each; len(dt.Spans) != want {
		t.Errorf("got %d spans, want %d", len(dt.Spans), want)
	}
	for i := range dt.Spans {
		if sp := &dt.Spans[i]; !sp.Ended() {
			t.Errorf("span %d (%s) not ended", sp.ID, sp.Name)
		}
		if int(dt.Spans[i].ID) != i {
			t.Errorf("span %d has ID %d; arena must stay dense", i, dt.Spans[i].ID)
		}
	}
}

// TestContextPlumbing: ContextWith/From carry the (recorder, span)
// scope, and a nil recorder adds no context layer at all.
func TestContextPlumbing(t *testing.T) {
	ctx := context.Background()
	if rec, span := From(ctx); rec != nil || span != NoSpan {
		t.Errorf("empty ctx From = %v %d", rec, span)
	}
	if got := ContextWith(ctx, nil, 7); got != ctx {
		t.Error("ContextWith(nil rec) must return ctx unchanged")
	}
	r := NewRecorder("x.gov.", 0)
	id := r.StartSpan(NoSpan, KindDomain, "x.gov.")
	ctx2 := ContextWith(ctx, r, id)
	if rec, span := From(ctx2); rec != r || span != id {
		t.Errorf("From = %v %d, want %v %d", rec, span, r, id)
	}
}

// mkTrace builds a minimal sealed trace for retention tests.
func mkTrace(domain string, dur time.Duration, errText string, transient, flipped bool) *DomainTrace {
	return &DomainTrace{
		Domain: dnsname.Name("d" + domain + ".gov."), Start: time.Unix(1700000000, 0).UTC(),
		Duration: dur, Class: "ok", Rounds: 1,
		Err: errText, ErrTransient: transient, ClassChanged: flipped,
	}
}

// TestFlightRecorderRetention pins the three buckets: slowest-N kept in
// descending order with eviction, error and class-flip rings wrapping,
// and Retained() deduplicating a trace kept for several reasons.
func TestFlightRecorderRetention(t *testing.T) {
	f := NewFlightRecorder(Config{Slowest: 2, Errors: 2, Flipped: 2})
	f.Offer(mkTrace("a", 30*time.Millisecond, "", false, false))
	f.Offer(mkTrace("b", 10*time.Millisecond, "", false, false))
	f.Offer(mkTrace("c", 20*time.Millisecond, "", false, false)) // evicts b
	f.Offer(mkTrace("d", 1*time.Millisecond, "", false, false))  // too fast: dropped
	// Error ring wraps: e1 is overwritten by e3.
	f.Offer(mkTrace("e1", 2*time.Millisecond, "timeout", true, false))
	f.Offer(mkTrace("e2", 2*time.Millisecond, "refused", false, false))
	f.Offer(mkTrace("e3", 2*time.Millisecond, "servfail", true, false))
	// Slow AND flipped: retained once with two reasons.
	f.Offer(mkTrace("f", 40*time.Millisecond, "", false, true))

	slow, errs, flip, offered := f.Counts()
	if slow != 2 || errs != 2 || flip != 1 || offered != 8 {
		t.Fatalf("Counts = %d %d %d %d, want 2 2 1 8", slow, errs, flip, offered)
	}
	got := f.Retained()
	byDomain := map[string]*DomainTrace{}
	for _, dt := range got {
		byDomain[string(dt.Domain)] = dt
	}
	if len(got) != 4 { // f + a (slowest), e2 + e3 (ring); f's flip dedups
		var names []string
		for _, dt := range got {
			names = append(names, string(dt.Domain))
		}
		t.Fatalf("Retained %d traces (%s), want 4", len(got), strings.Join(names, ","))
	}
	for domain, reasons := range map[string][]string{
		"df.gov.":  {RetainSlowest, RetainClassFlip},
		"da.gov.":  {RetainSlowest},
		"de2.gov.": {RetainError},
		"de3.gov.": {RetainError},
	} {
		dt := byDomain[domain]
		if dt == nil {
			t.Errorf("%s not retained", domain)
			continue
		}
		if fmt.Sprint(dt.RetainedFor) != fmt.Sprint(reasons) {
			t.Errorf("%s RetainedFor = %v, want %v", domain, dt.RetainedFor, reasons)
		}
	}
	if byDomain["de1.gov."] != nil {
		t.Error("e1 should have been evicted by the ring wrap")
	}
	if byDomain["db.gov."] != nil || byDomain["dd.gov."] != nil {
		t.Error("fast non-error traces must be dropped")
	}
}

// TestFlightRecorderMetrics: AttachRegistry surfaces retention in obs.
func TestFlightRecorderMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	f := NewFlightRecorder(Config{Slowest: 1})
	f.AttachRegistry(reg)
	f.Offer(mkTrace("a", 5*time.Millisecond, "", false, false))
	f.Offer(mkTrace("b", 1*time.Millisecond, "boom", false, false))
	f.Offer(mkTrace("c", 1*time.Millisecond, "", false, false)) // dropped
	snap := reg.Snapshot()
	for name, want := range map[string]uint64{
		"trace_domains_offered_total":  3,
		"trace_domains_retained_total": 2,
	} {
		if got := snap.Counters[name]; got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	for name, want := range map[string]int64{
		"trace_retained_slowest": 1,
		"trace_retained_errors":  1,
		"trace_retained_flipped": 0,
	} {
		if got := snap.Gauges[name]; got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
}

// TestKindStringRoundTrip: every kind has a distinct wire name and
// KindFromString inverts String, so serialized traces stay readable.
func TestKindStringRoundTrip(t *testing.T) {
	seen := map[string]bool{}
	for k := Kind(0); k < numKinds; k++ {
		s := k.String()
		if seen[s] {
			t.Errorf("duplicate kind name %q", s)
		}
		seen[s] = true
		got, ok := KindFromString(s)
		if !ok || got != k {
			t.Errorf("KindFromString(%q) = %v %v, want %v true", s, got, ok, k)
		}
	}
	if _, ok := KindFromString("warp_drive"); ok {
		t.Error("unknown kind name must not resolve")
	}
}

// TestFlightRecorderPinned covers the caller-keyed retention bucket:
// OfferPin(dt, true) retains a trace every built-in criterion would
// drop, the pinned ring wraps at Config.Pinned, an unpinned OfferPin is
// exactly Offer, and the trace_retained_pinned gauge tracks occupancy.
func TestFlightRecorderPinned(t *testing.T) {
	reg := obs.NewRegistry()
	f := NewFlightRecorder(Config{Slowest: 1, Pinned: 2})
	f.AttachRegistry(reg)
	f.Offer(mkTrace("slow", 50*time.Millisecond, "", false, false))
	// Fast, clean, stable traces: without a pin they are dropped.
	f.OfferPin(mkTrace("p1", time.Millisecond, "", false, false), true)
	f.OfferPin(mkTrace("p2", time.Millisecond, "", false, false), true)
	f.OfferPin(mkTrace("p3", time.Millisecond, "", false, false), true) // ring wraps: evicts p1
	f.OfferPin(mkTrace("un", time.Millisecond, "", false, false), false)

	if n := f.PinnedCount(); n != 2 {
		t.Fatalf("PinnedCount = %d, want 2", n)
	}
	byDomain := map[string]*DomainTrace{}
	for _, dt := range f.Retained() {
		byDomain[string(dt.Domain)] = dt
	}
	for _, domain := range []string{"dp2.gov.", "dp3.gov."} {
		dt := byDomain[domain]
		if dt == nil {
			t.Errorf("%s not retained", domain)
			continue
		}
		if fmt.Sprint(dt.RetainedFor) != fmt.Sprint([]string{RetainPinned}) {
			t.Errorf("%s RetainedFor = %v, want [%s]", domain, dt.RetainedFor, RetainPinned)
		}
	}
	if byDomain["dp1.gov."] != nil {
		t.Error("p1 should have been evicted by the pinned ring wrap")
	}
	if byDomain["dun.gov."] != nil {
		t.Error("unpinned fast trace must be dropped")
	}
	snap := reg.Snapshot()
	if got := snap.Gauges["trace_retained_pinned"]; got != 2 {
		t.Errorf("trace_retained_pinned = %d, want 2", got)
	}
}
