// JSONL serialization for domain traces, mirroring measure's
// WriteJSONL/ReadJSONL: one JSON object per line, and a strict reader
// that rejects garbage rather than resurrecting a half-broken trace —
// a corrupt flight-recorder file should fail loudly in govtrace, not
// render a plausible-looking wrong tree.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"govdns/internal/dnsname"
)

type attrJSON struct {
	Key  string `json:"k"`
	Type string `json:"t,omitempty"` // "s" (default), "i", "d", "b"
	Str  string `json:"s,omitempty"`
	Int  int64  `json:"i,omitempty"`
}

type spanJSON struct {
	ID      int32      `json:"id"`
	Parent  int32      `json:"parent"`
	Kind    string     `json:"kind"`
	Name    string     `json:"name,omitempty"`
	Event   bool       `json:"event,omitempty"`
	StartNS int64      `json:"start_ns"`
	DurNS   int64      `json:"dur_ns"`
	Outcome string     `json:"outcome,omitempty"`
	Attrs   []attrJSON `json:"attrs,omitempty"`
}

type traceJSON struct {
	Domain       dnsname.Name `json:"domain"`
	Start        time.Time    `json:"start"`
	DurNS        int64        `json:"dur_ns"`
	Class        string       `json:"class,omitempty"`
	Rounds       int          `json:"rounds"`
	Err          string       `json:"error,omitempty"`
	ErrTransient bool         `json:"error_transient,omitempty"`
	ClassChanged bool         `json:"class_changed,omitempty"`
	DroppedSpans int          `json:"dropped_spans,omitempty"`
	RetainedFor  []string     `json:"retained_for,omitempty"`
	Spans        []spanJSON   `json:"spans"`
}

var attrTypeNames = map[AttrKind]string{AttrStr: "s", AttrInt: "i", AttrDur: "d", AttrBool: "b"}

func toAttrJSON(a Attr) attrJSON {
	j := attrJSON{Key: a.Key}
	switch a.Kind {
	case AttrStr:
		j.Str = a.Str
	default:
		j.Type = attrTypeNames[a.Kind]
		j.Int = a.Int
	}
	return j
}

func fromAttrJSON(j attrJSON) (Attr, error) {
	switch j.Type {
	case "", "s":
		return Str(j.Key, j.Str), nil
	case "i":
		return Int(j.Key, j.Int), nil
	case "d":
		return Dur(j.Key, time.Duration(j.Int)), nil
	case "b":
		return Bool(j.Key, j.Int != 0), nil
	default:
		return Attr{}, fmt.Errorf("unknown attr type %q", j.Type)
	}
}

func toJSON(dt *DomainTrace) traceJSON {
	j := traceJSON{
		Domain:       dt.Domain,
		Start:        dt.Start,
		DurNS:        int64(dt.Duration),
		Class:        dt.Class,
		Rounds:       dt.Rounds,
		Err:          dt.Err,
		ErrTransient: dt.ErrTransient,
		ClassChanged: dt.ClassChanged,
		DroppedSpans: dt.DroppedSpans,
		RetainedFor:  dt.RetainedFor,
		Spans:        make([]spanJSON, len(dt.Spans)),
	}
	for i, sp := range dt.Spans {
		sj := spanJSON{
			ID:      int32(sp.ID),
			Parent:  int32(sp.Parent),
			Kind:    sp.Kind.String(),
			Name:    sp.Name,
			Event:   sp.Event,
			StartNS: int64(sp.Start),
			DurNS:   int64(sp.Duration),
			Outcome: sp.Outcome,
		}
		if len(sp.Attrs) > 0 {
			sj.Attrs = make([]attrJSON, len(sp.Attrs))
			for k, a := range sp.Attrs {
				sj.Attrs[k] = toAttrJSON(a)
			}
		}
		j.Spans[i] = sj
	}
	return j
}

func fromJSON(j traceJSON) (*DomainTrace, error) {
	if j.Domain == "" {
		return nil, fmt.Errorf("missing domain")
	}
	if _, err := dnsname.Parse(string(j.Domain)); err != nil {
		return nil, fmt.Errorf("bad domain %q: %w", j.Domain, err)
	}
	if j.DurNS < 0 {
		return nil, fmt.Errorf("negative duration")
	}
	dt := &DomainTrace{
		Domain:       j.Domain,
		Start:        j.Start,
		Duration:     time.Duration(j.DurNS),
		Class:        j.Class,
		Rounds:       j.Rounds,
		Err:          j.Err,
		ErrTransient: j.ErrTransient,
		ClassChanged: j.ClassChanged,
		DroppedSpans: j.DroppedSpans,
		RetainedFor:  j.RetainedFor,
		Spans:        make([]Span, len(j.Spans)),
	}
	for i, sj := range j.Spans {
		if int(sj.ID) != i {
			return nil, fmt.Errorf("span %d: id %d out of order", i, sj.ID)
		}
		if sj.Parent < int32(NoSpan) || sj.Parent >= sj.ID {
			return nil, fmt.Errorf("span %d: bad parent %d", i, sj.Parent)
		}
		kind, ok := KindFromString(sj.Kind)
		if !ok {
			return nil, fmt.Errorf("span %d: unknown kind %q", i, sj.Kind)
		}
		if sj.StartNS < 0 {
			return nil, fmt.Errorf("span %d: negative start", i)
		}
		sp := Span{
			ID: SpanID(sj.ID), Parent: SpanID(sj.Parent), Kind: kind,
			Name: sj.Name, Event: sj.Event,
			Start: time.Duration(sj.StartNS), Duration: time.Duration(sj.DurNS),
			Outcome: sj.Outcome,
		}
		if len(sj.Attrs) > 0 {
			sp.Attrs = make([]Attr, len(sj.Attrs))
			for k, aj := range sj.Attrs {
				a, err := fromAttrJSON(aj)
				if err != nil {
					return nil, fmt.Errorf("span %d attr %d: %w", i, k, err)
				}
				sp.Attrs[k] = a
			}
		}
		dt.Spans[i] = sp
	}
	return dt, nil
}

// WriteJSONL writes one trace per line.
func WriteJSONL(w io.Writer, traces []*DomainTrace) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, dt := range traces {
		if err := enc.Encode(toJSON(dt)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a trace JSONL stream, validating every span: dense
// in-order IDs, parents that precede their children, known kinds and
// attribute types. Any violation aborts the read with a line-numbered
// error.
func ReadJSONL(r io.Reader) ([]*DomainTrace, error) {
	var out []*DomainTrace
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var j traceJSON
		if err := json.Unmarshal(line, &j); err != nil {
			return nil, fmt.Errorf("trace line %d: %w", lineNo, err)
		}
		dt, err := fromJSON(j)
		if err != nil {
			return nil, fmt.Errorf("trace line %d: %w", lineNo, err)
		}
		out = append(out, dt)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
