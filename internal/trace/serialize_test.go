package trace

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenTrace is a hand-built two-round trace exercising every span
// kind, attribute type, and edge the renderer and serializer handle:
// nested query/attempt/exchange chains, a chaos injection, instant
// events, fault-annotated probes, and one span left open (a crash
// would leave exactly this shape).
func goldenTrace() *DomainTrace {
	us := func(n int64) time.Duration { return time.Duration(n) * time.Microsecond }
	return &DomainTrace{
		Domain:       "city.gov.br.",
		Start:        time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC),
		Duration:     us(900),
		Class:        "walk-failure",
		Rounds:       2,
		Err:          `resolver: timeout: city.gov.br. NS @4.0.0.1`,
		ErrTransient: true,
		ClassChanged: true,
		DroppedSpans: 3,
		RetainedFor:  []string{RetainError, RetainClassFlip},
		Spans: []Span{
			{ID: 0, Parent: NoSpan, Kind: KindDomain, Name: "city.gov.br.",
				Start: us(0), Duration: us(890), Outcome: "ok",
				Attrs: []Attr{Str("class", "walk-failure")}},
			{ID: 1, Parent: 0, Kind: KindRound, Name: "round 1",
				Start: us(1), Duration: us(500), Outcome: "ok",
				Attrs: []Attr{Str("class", "lame-delegation")}},
			{ID: 2, Parent: 1, Kind: KindParentWalk, Name: "city.gov.br.",
				Start: us(2), Duration: us(200), Outcome: "ok"},
			{ID: 3, Parent: 2, Kind: KindReferral, Name: ".",
				Start: us(3), Duration: us(90), Outcome: "ok",
				Attrs: []Attr{Str("next", "gov.br.")}},
			{ID: 4, Parent: 3, Kind: KindReorder, Name: ".", Event: true,
				Start: us(4), Attrs: []Attr{Str("first", "1.0.1.1")}},
			{ID: 5, Parent: 3, Kind: KindQuery, Name: "city.gov.br. NS @1.0.1.1",
				Start: us(5), Duration: us(60), Outcome: "ok",
				Attrs: []Attr{Int("attempts", 2)}},
			{ID: 6, Parent: 5, Kind: KindAttempt, Name: "attempt 1",
				Start: us(6), Duration: us(30),
				Outcome: "resolver: response truncated: city.gov.br. NS @1.0.1.1",
				Attrs:   []Attr{Int("discarded", 1)}},
			{ID: 7, Parent: 6, Kind: KindExchange, Name: "1.0.1.1",
				Start: us(7), Duration: us(25),
				Outcome: "resolver: response truncated: city.gov.br. NS @1.0.1.1",
				Attrs:   []Attr{Dur("rtt", us(20))}},
			{ID: 8, Parent: 7, Kind: KindChaos, Name: "truncate", Event: true,
				Start: us(8)},
			{ID: 9, Parent: 5, Kind: KindAttempt, Name: "attempt 2",
				Start: us(40), Duration: us(20), Outcome: "ok"},
			{ID: 10, Parent: 9, Kind: KindExchange, Name: "1.0.1.1",
				Start: us(41), Duration: us(18), Outcome: "ok",
				Attrs: []Attr{Dur("rtt", us(15))}},
			{ID: 11, Parent: 3, Kind: KindZoneBuild, Name: "gov.br.",
				Start: us(70), Duration: us(10), Outcome: "ok",
				Attrs: []Attr{Int("hosts", 2), Int("glueless", 1)}},
			{ID: 12, Parent: 2, Kind: KindCacheHit, Name: "gov.br.", Event: true,
				Start: us(100), Attrs: []Attr{Str("layer", "zone"), Bool("negative", false)}},
			{ID: 13, Parent: 1, Kind: KindNSFetch, Name: "ns1.city.gov.br.",
				Start: us(210), Duration: us(50), Outcome: "ok",
				Attrs: []Attr{Bool("glue", true), Int("addrs", 1)}},
			{ID: 14, Parent: 13, Kind: KindHostResolve, Name: "ns1.city.gov.br.",
				Start: us(211), Duration: us(40), Outcome: "ok",
				Attrs: []Attr{Int("addrs", 1)}},
			{ID: 15, Parent: 14, Kind: KindFlightWait, Name: "ns1.city.gov.br.", Event: true,
				Start: us(212), Attrs: []Attr{Str("layer", "host")}},
			{ID: 16, Parent: 1, Kind: KindChildProbe, Name: "ns1.city.gov.br.",
				Start: us(270), Duration: us(100), Outcome: "ok"},
			{ID: 17, Parent: 16, Kind: KindProbe, Name: "4.0.0.1",
				Start: us(271), Duration: us(95),
				Outcome: "resolver: timeout: city.gov.br. NS @4.0.0.1",
				Attrs: []Attr{Int("attempts", 3), Int("duplicates", 1),
					Int("truncations", 0), Int("qid_mismatches", 0),
					Int("question_mismatches", 0), Int("malformed", 2)}},
			{ID: 18, Parent: 0, Kind: KindRound, Name: "round 2",
				Start: us(510), Duration: -1}, // left open: renders as "open"
		},
	}
}

// TestJSONLRoundTrip: a full-featured trace must survive
// WriteJSONL→ReadJSONL with every span, attribute, and flag intact.
func TestJSONLRoundTrip(t *testing.T) {
	want := goldenTrace()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, []*DomainTrace{want}); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	got, err := ReadJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	if len(got) != 1 {
		t.Fatalf("got %d traces, want 1", len(got))
	}
	if !reflect.DeepEqual(got[0], want) {
		t.Errorf("round trip diverged:\ngot  %+v\nwant %+v", got[0], want)
	}
}

// TestJSONLGolden pins the wire schema byte for byte (regenerate with
// `go test ./internal/trace -run Golden -update`).
func TestJSONLGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, []*DomainTrace{goldenTrace()}); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	path := filepath.Join("testdata", "trace.golden.jsonl")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("serialization diverged from golden file:\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
	if _, err := ReadJSONL(bytes.NewReader(want)); err != nil {
		t.Errorf("golden file does not parse: %v", err)
	}
}

// TestReadJSONLRejectsGarbage: the reader is strict — every class of
// corruption aborts with a line-numbered error instead of producing a
// plausible-looking wrong trace.
func TestReadJSONLRejectsGarbage(t *testing.T) {
	valid := func() string {
		var buf bytes.Buffer
		if err := WriteJSONL(&buf, []*DomainTrace{goldenTrace()}); err != nil {
			t.Fatal(err)
		}
		return strings.TrimSuffix(buf.String(), "\n")
	}()

	cases := []struct {
		name, input, wantErr string
	}{
		{"not json", "{nope", "line 1"},
		{"wrong type", `["a","b"]`, "line 1"},
		{"missing domain", `{"start":"2026-08-05T12:00:00Z","dur_ns":1,"rounds":1,"spans":[]}`,
			"missing domain"},
		{"unparseable domain", `{"domain":"..bad..","dur_ns":1,"rounds":1,"spans":[]}`,
			"bad domain"},
		{"negative duration", `{"domain":"x.gov.","dur_ns":-5,"rounds":1,"spans":[]}`,
			"negative duration"},
		{"span id out of order",
			`{"domain":"x.gov.","dur_ns":1,"rounds":1,"spans":[{"id":1,"parent":-1,"kind":"domain","start_ns":0,"dur_ns":0}]}`,
			"id 1 out of order"},
		{"parent not before child",
			`{"domain":"x.gov.","dur_ns":1,"rounds":1,"spans":[{"id":0,"parent":0,"kind":"domain","start_ns":0,"dur_ns":0}]}`,
			"bad parent"},
		{"parent below NoSpan",
			`{"domain":"x.gov.","dur_ns":1,"rounds":1,"spans":[{"id":0,"parent":-2,"kind":"domain","start_ns":0,"dur_ns":0}]}`,
			"bad parent"},
		{"unknown span kind",
			`{"domain":"x.gov.","dur_ns":1,"rounds":1,"spans":[{"id":0,"parent":-1,"kind":"warp_drive","start_ns":0,"dur_ns":0}]}`,
			`unknown kind "warp_drive"`},
		{"negative span start",
			`{"domain":"x.gov.","dur_ns":1,"rounds":1,"spans":[{"id":0,"parent":-1,"kind":"domain","start_ns":-1,"dur_ns":0}]}`,
			"negative start"},
		{"unknown attr type",
			`{"domain":"x.gov.","dur_ns":1,"rounds":1,"spans":[{"id":0,"parent":-1,"kind":"domain","start_ns":0,"dur_ns":0,"attrs":[{"k":"x","t":"z"}]}]}`,
			`unknown attr type "z"`},
		{"garbage after valid line", valid + "\n{nope", "line 2"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadJSONL(strings.NewReader(tc.input))
			if err == nil {
				t.Fatalf("ReadJSONL accepted %s", tc.name)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}

	// Blank lines are tolerated — they are not corruption.
	got, err := ReadJSONL(strings.NewReader("\n" + valid + "\n\n"))
	if err != nil || len(got) != 1 {
		t.Errorf("blank lines: got %d traces, err %v; want 1, nil", len(got), err)
	}
}
