// Package report renders analysis results as aligned text tables, CSV,
// and simple ASCII charts, so every table and figure of the paper can be
// regenerated on a terminal.
package report

import (
	"fmt"
	"io"
	"strings"

	"govdns/internal/stats"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.1f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Write renders the table.
func (t *Table) Write(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV renders the table as CSV.
func (t *Table) WriteCSV(w io.Writer) error {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				cell = `"` + strings.ReplaceAll(cell, `"`, `""`) + `"`
			}
			b.WriteString(cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// BarChart renders labeled values as horizontal ASCII bars.
type BarChart struct {
	Title string
	// Width is the maximum bar width in characters (default 50).
	Width  int
	labels []string
	values []float64
}

// NewBarChart creates a chart.
func NewBarChart(title string) *BarChart {
	return &BarChart{Title: title, Width: 50}
}

// Add appends one bar.
func (c *BarChart) Add(label string, value float64) {
	c.labels = append(c.labels, label)
	c.values = append(c.values, value)
}

// Write renders the chart.
func (c *BarChart) Write(w io.Writer) error {
	width := c.Width
	if width <= 0 {
		width = 50
	}
	maxVal, maxLabel := 0.0, 0
	for i, v := range c.values {
		if v > maxVal {
			maxVal = v
		}
		if len(c.labels[i]) > maxLabel {
			maxLabel = len(c.labels[i])
		}
	}
	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	for i, v := range c.values {
		bar := 0
		if maxVal > 0 {
			bar = int(v / maxVal * float64(width))
		}
		fmt.Fprintf(&b, "%-*s %10.2f |%s\n", maxLabel, c.labels[i], v, strings.Repeat("#", bar))
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCDF renders an empirical CDF as a two-column table with an ASCII
// fraction bar, suitable for the paper's CDF figures.
func WriteCDF(w io.Writer, title string, points []stats.CDFPoint) error {
	t := NewTable(title, "value", "P(X<=value)", "")
	for _, p := range points {
		bar := strings.Repeat("#", int(p.Fraction*40))
		t.AddRow(fmt.Sprintf("%.2f", p.Value), fmt.Sprintf("%.4f", p.Fraction), bar)
	}
	return t.Write(w)
}

// Series renders a year-indexed line of values, one row per year.
func Series(w io.Writer, title string, years []int, series map[string][]float64, order []string) error {
	headers := append([]string{"year"}, order...)
	t := NewTable(title, headers...)
	for i, year := range years {
		cells := make([]interface{}, 0, len(order)+1)
		cells = append(cells, year)
		for _, key := range order {
			vals := series[key]
			if i < len(vals) {
				cells = append(cells, vals[i])
			} else {
				cells = append(cells, "")
			}
		}
		t.AddRow(cells...)
	}
	return t.Write(w)
}
