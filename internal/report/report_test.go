package report

import (
	"bytes"
	"strings"
	"testing"

	"govdns/internal/stats"
)

func TestTableWrite(t *testing.T) {
	tbl := NewTable("Demo", "name", "count", "pct")
	tbl.AddRow("alpha", 10, 12.345)
	tbl.AddRow("beta-longer", 2, 0.5)
	var buf bytes.Buffer
	if err := tbl.Write(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Demo") || !strings.Contains(out, "beta-longer") {
		t.Errorf("output missing content:\n%s", out)
	}
	if !strings.Contains(out, "12.3") {
		t.Errorf("float not formatted:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title + header + separator + 2 rows.
	if len(lines) != 5 {
		t.Errorf("line count = %d:\n%s", len(lines), out)
	}
}

func TestTableWriteCSV(t *testing.T) {
	tbl := NewTable("", "a", "b")
	tbl.AddRow(`with "quote"`, "x,y")
	var buf bytes.Buffer
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n\"with \"\"quote\"\"\",\"x,y\"\n"
	if buf.String() != want {
		t.Errorf("CSV = %q, want %q", buf.String(), want)
	}
}

func TestBarChart(t *testing.T) {
	c := NewBarChart("Bars")
	c.Add("one", 1)
	c.Add("two", 2)
	var buf bytes.Buffer
	if err := c.Write(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d:\n%s", len(lines), buf.String())
	}
	oneBar := strings.Count(lines[1], "#")
	twoBar := strings.Count(lines[2], "#")
	if twoBar != 2*oneBar {
		t.Errorf("bar scaling wrong: %d vs %d", oneBar, twoBar)
	}
}

func TestBarChartZeroValues(t *testing.T) {
	c := NewBarChart("Empty")
	c.Add("zero", 0)
	var buf bytes.Buffer
	if err := c.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "#") {
		t.Error("zero value produced a bar")
	}
}

func TestWriteCDF(t *testing.T) {
	points := stats.IntCDF([]int{1, 2, 2, 4})
	var buf bytes.Buffer
	if err := WriteCDF(&buf, "CDF", points); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "1.0000") {
		t.Errorf("CDF output:\n%s", buf.String())
	}
}

func TestSeries(t *testing.T) {
	var buf bytes.Buffer
	err := Series(&buf, "S", []int{2011, 2012}, map[string][]float64{
		"a": {1, 2},
		"b": {3},
	}, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "2011") || !strings.Contains(out, "2012") {
		t.Errorf("Series output:\n%s", out)
	}
}
