package nettopo

import (
	"net/netip"
	"testing"
	"testing/quick"
)

func TestIPv4Conversions(t *testing.T) {
	cases := []struct {
		v uint32
		s string
	}{
		{0x01020304, "1.2.3.4"},
		{0xC0000201, "192.0.2.1"},
		{0x0A000001, "10.0.0.1"},
	}
	for _, tc := range cases {
		if got := IPv4(tc.v); got != netip.MustParseAddr(tc.s) {
			t.Errorf("IPv4(%#x) = %v, want %s", tc.v, got, tc.s)
		}
		if got := IPv4Value(netip.MustParseAddr(tc.s)); got != tc.v {
			t.Errorf("IPv4Value(%s) = %#x, want %#x", tc.s, got, tc.v)
		}
	}
}

func TestIPv4RoundTripProperty(t *testing.T) {
	f := func(v uint32) bool { return IPv4Value(IPv4(v)) == v }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPrefix24(t *testing.T) {
	a := netip.MustParseAddr("203.0.113.77")
	b := netip.MustParseAddr("203.0.113.200")
	c := netip.MustParseAddr("203.0.114.77")
	if Prefix24(a) != Prefix24(b) {
		t.Error("addresses in the same /24 got different prefixes")
	}
	if Prefix24(a) == Prefix24(c) {
		t.Error("addresses in different /24s got the same prefix")
	}
}

func TestAddASIdempotent(t *testing.T) {
	topo := NewTopology()
	a1 := topo.AddAS(65001, "Example Org")
	a2 := topo.AddAS(65001, "Example Org Again")
	if a1 != a2 {
		t.Error("AddAS created a second AS for the same ASN")
	}
	if topo.NumASes() != 1 {
		t.Errorf("NumASes = %d, want 1", topo.NumASes())
	}
}

func TestAllocIPUnknownAS(t *testing.T) {
	topo := NewTopology()
	if _, err := topo.AllocIP(99); err == nil {
		t.Error("AllocIP on unregistered AS succeeded")
	}
}

func TestAllocIPSame24ByDefault(t *testing.T) {
	topo := NewTopology()
	topo.AddAS(65001, "Org")
	a, err := topo.AllocIP(65001)
	if err != nil {
		t.Fatal(err)
	}
	b, err := topo.AllocIP(65001)
	if err != nil {
		t.Fatal(err)
	}
	if Prefix24(a) != Prefix24(b) {
		t.Errorf("sequential allocations %v, %v not in same /24", a, b)
	}
	if a == b {
		t.Error("duplicate address allocated")
	}
}

func TestAllocIPNew24(t *testing.T) {
	topo := NewTopology()
	topo.AddAS(65001, "Org")
	a, _ := topo.AllocIP(65001)
	b, err := topo.AllocIPNew24(65001)
	if err != nil {
		t.Fatal(err)
	}
	if Prefix24(a) == Prefix24(b) {
		t.Errorf("AllocIPNew24 stayed in the same /24: %v, %v", a, b)
	}
}

func TestAllocSkipsDotZero(t *testing.T) {
	topo := NewTopology()
	topo.AddAS(65001, "Org")
	for i := 0; i < 600; i++ {
		addr, err := topo.AllocIPNew24(65001)
		if err != nil {
			t.Fatal(err)
		}
		if addr.As4()[3] == 0 {
			t.Fatalf("allocated a .0 address: %v", addr)
		}
	}
}

func TestAllocationsUniqueAcrossASes(t *testing.T) {
	topo := NewTopology()
	seen := make(map[netip.Addr]bool)
	for asn := uint32(1); asn <= 20; asn++ {
		topo.AddAS(asn, "Org")
		for i := 0; i < 500; i++ {
			addr, err := topo.AllocIP(asn)
			if err != nil {
				t.Fatal(err)
			}
			if seen[addr] {
				t.Fatalf("address %v allocated twice", addr)
			}
			seen[addr] = true
		}
	}
}

func TestASGrowsBlocksWhenExhausted(t *testing.T) {
	topo := NewTopology()
	topo.AddAS(65001, "Org")
	// Force >256 distinct /24s: a /16 has 256, so this spills into a
	// second /16 block.
	prefixes := make(map[uint32]bool)
	for i := 0; i < 300; i++ {
		addr, err := topo.AllocIPNew24(65001)
		if err != nil {
			t.Fatal(err)
		}
		prefixes[Prefix24(addr)] = true
	}
	if len(prefixes) != 300 {
		t.Errorf("got %d distinct /24s, want 300", len(prefixes))
	}
	as, _ := topo.AS(65001)
	if len(as.blocks) < 2 {
		t.Errorf("AS has %d blocks, want >=2", len(as.blocks))
	}
}

func TestRangesSortedAndDisjoint(t *testing.T) {
	topo := NewTopology()
	for asn := uint32(1); asn <= 10; asn++ {
		topo.AddAS(asn, "Org")
		if _, err := topo.AllocIP(asn); err != nil {
			t.Fatal(err)
		}
	}
	ranges := topo.Ranges()
	if len(ranges) < 10 {
		t.Fatalf("Ranges returned %d entries", len(ranges))
	}
	for i := 1; i < len(ranges); i++ {
		if ranges[i].Start <= ranges[i-1].End {
			t.Fatalf("ranges overlap or unsorted: %+v then %+v", ranges[i-1], ranges[i])
		}
	}
}
