// Package nettopo builds the synthetic Internet topology underlying the
// simulated world: autonomous systems with IPv4 prefix blocks, and address
// allocation with controllable /24-prefix and AS diversity. The GeoIP
// substitute (internal/geoip) is generated from this topology, mirroring
// how the paper used MaxMind's GeoIP2 ASN database.
package nettopo

import (
	"errors"
	"fmt"
	"net/netip"
	"sort"
	"sync"
)

// Topology errors.
var (
	// ErrExhausted indicates an AS or prefix ran out of addresses.
	ErrExhausted = errors.New("nettopo: address space exhausted")
	// ErrUnknownAS indicates an allocation request for an AS that was
	// never registered.
	ErrUnknownAS = errors.New("nettopo: unknown AS")
)

// IPv4 converts a uint32 to a netip.Addr.
func IPv4(v uint32) netip.Addr {
	return netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)})
}

// IPv4Value converts an IPv4 netip.Addr to its uint32 value.
func IPv4Value(a netip.Addr) uint32 {
	b := a.As4()
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

// Prefix24 returns the /24 prefix containing addr, as its uint32 network
// value. The paper's Table I counts distinct /24 prefixes per domain.
func Prefix24(addr netip.Addr) uint32 {
	return IPv4Value(addr) &^ 0xFF
}

// AS is an autonomous system in the synthetic topology.
type AS struct {
	Number uint32
	Org    string
	// blocks are the /16 allocations owned by this AS, as uint32 network
	// values (e.g. 0x0A010000 for 10.1.0.0/16).
	blocks []uint32
	// next is the allocation cursor: index into blocks and offset within.
	nextBlock  int
	nextOffset uint32
}

// Range is a contiguous IPv4 range owned by an AS, used to export the
// topology into the GeoIP database.
type Range struct {
	Start, End uint32 // inclusive
	ASN        uint32
	Org        string
}

// Topology is a registry of ASes and allocated addresses. It is safe for
// concurrent use.
type Topology struct {
	mu        sync.Mutex
	ases      map[uint32]*AS
	nextBlock uint32 // global /16 allocator, walks 1.0.0.0 .. 223.255.0.0
	allocated map[uint32]bool
}

// NewTopology creates an empty topology. /16 blocks are handed out
// starting from 1.0.0.0, skipping nothing else; the synthetic world never
// needs reserved-range awareness.
func NewTopology() *Topology {
	return &Topology{
		ases:      make(map[uint32]*AS),
		nextBlock: 0x01000000,
		allocated: make(map[uint32]bool),
	}
}

// AddAS registers a new AS with the given number and organisation name and
// assigns it an initial /16 block. Registering an existing AS number
// returns the existing AS.
func (t *Topology) AddAS(asn uint32, org string) *AS {
	t.mu.Lock()
	defer t.mu.Unlock()
	if as, ok := t.ases[asn]; ok {
		return as
	}
	as := &AS{Number: asn, Org: org}
	as.blocks = append(as.blocks, t.takeBlockLocked())
	t.ases[asn] = as
	return as
}

// takeBlockLocked hands out the next free /16. Requires t.mu held.
func (t *Topology) takeBlockLocked() uint32 {
	for {
		block := t.nextBlock
		t.nextBlock += 0x00010000
		if t.nextBlock >= 0xE0000000 {
			// The synthetic world is far smaller than the IPv4 space;
			// wrapping indicates a bug, so fail loudly.
			panic("nettopo: global /16 space exhausted")
		}
		if !t.allocated[block] {
			t.allocated[block] = true
			return block
		}
	}
}

// AS returns the AS with the given number, if registered.
func (t *Topology) AS(asn uint32) (*AS, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	as, ok := t.ases[asn]
	return as, ok
}

// NumASes returns the number of registered ASes.
func (t *Topology) NumASes() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.ases)
}

// AllocIP allocates a fresh address inside the given AS. Addresses within
// an AS are handed out sequentially, so consecutive allocations tend to
// share a /24 — callers use AllocIPNew24 to force prefix diversity.
func (t *Topology) AllocIP(asn uint32) (netip.Addr, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	as, ok := t.ases[asn]
	if !ok {
		return netip.Addr{}, fmt.Errorf("%w: AS%d", ErrUnknownAS, asn)
	}
	return t.allocLocked(as, false)
}

// AllocIPNew24 allocates an address in the AS guaranteed to be in a /24
// prefix that no previous allocation in this AS used.
func (t *Topology) AllocIPNew24(asn uint32) (netip.Addr, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	as, ok := t.ases[asn]
	if !ok {
		return netip.Addr{}, fmt.Errorf("%w: AS%d", ErrUnknownAS, asn)
	}
	return t.allocLocked(as, true)
}

// allocLocked performs allocation within as. If new24 is set, the cursor
// first skips to the next /24 boundary. Requires t.mu held.
func (t *Topology) allocLocked(as *AS, new24 bool) (netip.Addr, error) {
	if new24 && as.nextOffset%256 != 0 {
		as.nextOffset = (as.nextOffset/256 + 1) * 256
	}
	// Skip .0 (network-looking) addresses for realism.
	if as.nextOffset%256 == 0 {
		as.nextOffset++
	}
	if as.nextOffset >= 0x10000 {
		as.nextBlock++
		as.nextOffset = 1
	}
	if as.nextBlock >= len(as.blocks) {
		as.blocks = append(as.blocks, t.takeBlockLocked())
	}
	addr := IPv4(as.blocks[as.nextBlock] | as.nextOffset)
	as.nextOffset++
	return addr, nil
}

// Ranges exports every allocated /16 block as a Range, sorted by start
// address. This is the input to the GeoIP database builder.
func (t *Topology) Ranges() []Range {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []Range
	for _, as := range t.ases {
		for _, block := range as.blocks {
			out = append(out, Range{
				Start: block,
				End:   block | 0xFFFF,
				ASN:   as.Number,
				Org:   as.Org,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}
