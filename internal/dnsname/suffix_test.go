package dnsname

import "testing"

func newTestSet() *SuffixSet {
	return NewSuffixSet("gov.br", "gov.cn", "gov.uk", "gob.mx", "com")
}

func TestSuffixSetContains(t *testing.T) {
	s := newTestSet()
	if !s.Contains("gov.br.") {
		t.Error("Contains(gov.br.) = false")
	}
	if s.Contains("www.gov.br.") {
		t.Error("Contains(www.gov.br.) = true for a non-suffix")
	}
	if s.Len() != 5 {
		t.Errorf("Len = %d, want 5", s.Len())
	}
}

func TestLongestSuffix(t *testing.T) {
	s := newTestSet()
	got, ok := s.LongestSuffix("www.prefeitura.gov.br.")
	if !ok || got != "gov.br." {
		t.Errorf("LongestSuffix = %q, %v", got, ok)
	}
	// A suffix is not under itself.
	if _, ok := s.LongestSuffix("gov.br."); ok {
		t.Error("LongestSuffix(gov.br.) matched itself")
	}
	if _, ok := s.LongestSuffix("example.org."); ok {
		t.Error("LongestSuffix matched an unknown TLD")
	}
}

func TestRegisteredDomain(t *testing.T) {
	s := newTestSet()
	tests := []struct {
		in   Name
		want Name
		ok   bool
	}{
		{"www.prefeitura.gov.br.", "prefeitura.gov.br.", true},
		{"deep.www.city.gov.cn.", "city.gov.cn.", true},
		{"ns1.example.com.", "example.com.", true},
		// Fallback: unknown suffix uses top two labels.
		{"a.b.example.org.", "example.org.", true},
		{"org.", "", false},
	}
	for _, tt := range tests {
		got, ok := s.RegisteredDomain(tt.in)
		if ok != tt.ok || got != tt.want {
			t.Errorf("RegisteredDomain(%q) = %q, %v; want %q, %v", tt.in, got, ok, tt.want, tt.ok)
		}
	}
}

func TestSuffixesDeterministicOrder(t *testing.T) {
	s := newTestSet()
	first := s.Suffixes()
	second := s.Suffixes()
	if len(first) != 5 || len(second) != 5 {
		t.Fatalf("Suffixes lengths = %d, %d", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("Suffixes order differs at %d: %q vs %q", i, first[i], second[i])
		}
	}
	for i := 1; i < len(first); i++ {
		if Compare(first[i-1], first[i]) >= 0 {
			t.Errorf("Suffixes not sorted: %q before %q", first[i-1], first[i])
		}
	}
}

func TestHostnameInDomain(t *testing.T) {
	if !HostnameInDomain("ns1.gov.br.", "gov.cn.", "gov.br.") {
		t.Error("HostnameInDomain missed a matching apex")
	}
	if HostnameInDomain("ns1.cloudflare.com.", "gov.br.") {
		t.Error("HostnameInDomain matched a third-party host")
	}
}

func TestTrimOrigin(t *testing.T) {
	tests := []struct {
		n, origin Name
		want      string
		ok        bool
	}{
		{"gov.br.", "gov.br.", "@", true},
		{"www.gov.br.", "gov.br.", "www", true},
		{"a.b.gov.br.", "gov.br.", "a.b", true},
		{"gov.cn.", "gov.br.", "", false},
		{"example.com.", Root, "example.com", true},
	}
	for _, tt := range tests {
		got, ok := TrimOrigin(tt.n, tt.origin)
		if got != tt.want || ok != tt.ok {
			t.Errorf("TrimOrigin(%q, %q) = %q, %v; want %q, %v", tt.n, tt.origin, got, ok, tt.want, tt.ok)
		}
	}
}

func TestSuffixSetAddOnZeroValue(t *testing.T) {
	var s SuffixSet
	s.Add("gov.au.")
	if !s.Contains("gov.au.") {
		t.Error("Add on zero-value SuffixSet did not register the suffix")
	}
}
