package dnsname

import "strings"

// SuffixSet is a small public-suffix-style table. The study needs to answer
// two questions about a name: what its registered (registrable) domain is,
// and whether it falls under a suffix reserved for government use.
//
// The zero value is an empty set. SuffixSet is not safe for concurrent
// mutation; build it fully before sharing.
type SuffixSet struct {
	suffixes map[Name]bool
}

// NewSuffixSet builds a set from presentation-form suffixes
// (e.g. "com", "gov.br", "co.uk"). Invalid entries are skipped.
func NewSuffixSet(suffixes ...string) *SuffixSet {
	s := &SuffixSet{suffixes: make(map[Name]bool, len(suffixes))}
	for _, raw := range suffixes {
		n, err := Parse(raw)
		if err != nil {
			continue
		}
		s.suffixes[n] = true
	}
	return s
}

// Add inserts a suffix into the set.
func (s *SuffixSet) Add(n Name) {
	if s.suffixes == nil {
		s.suffixes = make(map[Name]bool)
	}
	s.suffixes[n] = true
}

// Contains reports whether n itself is a registered suffix.
func (s *SuffixSet) Contains(n Name) bool { return s.suffixes[n] }

// Len returns the number of suffixes in the set.
func (s *SuffixSet) Len() int { return len(s.suffixes) }

// LongestSuffix returns the longest suffix in the set that n is strictly
// below, and whether one exists. "gov.br." is not considered under suffix
// "gov.br." (a suffix is not under itself).
func (s *SuffixSet) LongestSuffix(n Name) (Name, bool) {
	best, found := Root, false
	for cur := n.Parent(); !cur.IsRoot(); cur = cur.Parent() {
		if s.suffixes[cur] {
			best, found = cur, true
			// Keep walking: a longer suffix is closer to n, and we walk
			// from n upward, so the first hit is the longest.
			return best, found
		}
	}
	return best, found
}

// RegisteredDomain returns the registrable domain of n with respect to the
// suffix set: the label immediately below the longest matching suffix, plus
// that suffix. If no suffix matches, the top two labels are used as a
// fallback (mirroring how the paper fell back to registered domains when a
// government suffix could not be verified). Returns false for names too
// short to have a registered domain.
func (s *SuffixSet) RegisteredDomain(n Name) (Name, bool) {
	if suffix, ok := s.LongestSuffix(n); ok {
		want := suffix.Level() + 1
		return n.AncestorAtLevel(want)
	}
	if n.Level() < 2 {
		return "", false
	}
	return n.AncestorAtLevel(2)
}

// Suffixes returns all suffixes in deterministic (canonical) order.
func (s *SuffixSet) Suffixes() []Name {
	out := make([]Name, 0, len(s.suffixes))
	for n := range s.suffixes {
		out = append(out, n)
	}
	sortNames(out)
	return out
}

func sortNames(names []Name) {
	// Insertion sort is fine for the small sets used here, but use the
	// canonical comparison so output ordering is stable across runs.
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && Compare(names[j], names[j-1]) < 0; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
}

// HostnameInDomain reports whether host's name lies at or below any of the
// given apex domains. The paper uses this to classify a nameserver as a
// "private" (in-house) deployment: the NS hostname is within the same
// government domain it serves.
func HostnameInDomain(host Name, apexes ...Name) bool {
	for _, apex := range apexes {
		if host.IsSubdomainOf(apex) {
			return true
		}
	}
	return false
}

// TrimOrigin returns n relative to origin in presentation form without a
// trailing dot, or "@" when n equals origin. It reports false when n is
// not below origin. Used by the zone-file serialiser.
func TrimOrigin(n, origin Name) (string, bool) {
	if n == origin {
		return "@", true
	}
	if !n.IsSubdomainOf(origin) {
		return "", false
	}
	if origin.IsRoot() {
		return strings.TrimSuffix(string(n), "."), true
	}
	return strings.TrimSuffix(string(n), "."+string(origin)), true
}
