// Package dnsname provides domain-name parsing, validation, and algebra
// used throughout the measurement pipeline.
//
// Names are handled in canonical form: lowercase, fully qualified, with a
// trailing dot (e.g. "www.gov.br."). The root is the single dot ".".
package dnsname

import (
	"errors"
	"fmt"
	"strings"
)

// RFC 1035 size limits.
const (
	// MaxNameLen is the maximum length of a domain name in presentation
	// form, excluding the trailing dot.
	MaxNameLen = 253
	// MaxLabelLen is the maximum length of a single label.
	MaxLabelLen = 63
)

var (
	// ErrEmpty indicates an empty input where a domain name was required.
	ErrEmpty = errors.New("dnsname: empty name")
	// ErrTooLong indicates the name exceeds MaxNameLen.
	ErrTooLong = errors.New("dnsname: name too long")
	// ErrBadLabel indicates a label that is empty, too long, or contains
	// forbidden characters.
	ErrBadLabel = errors.New("dnsname: bad label")
)

// Name is a canonical, fully qualified, lowercase domain name with a
// trailing dot. The zero value is invalid; use Parse or MustParse.
type Name string

// Root is the DNS root name.
const Root Name = "."

// Parse canonicalizes and validates s into a Name. It accepts names with
// or without a trailing dot and is case-insensitive. The root may be given
// as "." or "".
func Parse(s string) (Name, error) {
	if s == "" || s == "." {
		return Root, nil
	}
	s = strings.ToLower(s)
	trimmed := strings.TrimSuffix(s, ".")
	if len(trimmed) > MaxNameLen {
		return "", fmt.Errorf("%w: %q has %d bytes", ErrTooLong, s, len(trimmed))
	}
	for _, label := range strings.Split(trimmed, ".") {
		if err := checkLabel(label); err != nil {
			return "", fmt.Errorf("%w in %q", err, s)
		}
	}
	return Name(trimmed + "."), nil
}

// MustParse is like Parse but panics on error. It is intended for
// compile-time constant names in tests and generators.
func MustParse(s string) Name {
	n, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return n
}

// checkLabel validates a single label. Per measurement practice we accept
// LDH labels plus underscore (seen in the wild for service records) and
// the bare "*" wildcard label of RFC 1034 §4.3.3.
func checkLabel(label string) error {
	if label == "" {
		return fmt.Errorf("%w: empty", ErrBadLabel)
	}
	if label == "*" {
		return nil
	}
	if len(label) > MaxLabelLen {
		return fmt.Errorf("%w: %q has %d bytes", ErrBadLabel, label, len(label))
	}
	for i := 0; i < len(label); i++ {
		c := label[i]
		switch {
		case c >= 'a' && c <= 'z':
		case c >= '0' && c <= '9':
		case c == '-' || c == '_':
		default:
			return fmt.Errorf("%w: %q contains %q", ErrBadLabel, label, c)
		}
	}
	return nil
}

// String returns the canonical presentation form, including the trailing dot.
func (n Name) String() string { return string(n) }

// IsRoot reports whether n is the DNS root.
func (n Name) IsRoot() bool { return n == Root }

// Labels returns the labels of n from most to least specific. The root has
// no labels.
func (n Name) Labels() []string {
	if n.IsRoot() || n == "" {
		return nil
	}
	return strings.Split(strings.TrimSuffix(string(n), "."), ".")
}

// Level returns the number of labels in n. The root is level 0; "gov.br."
// is level 2; "www.gov.br." is level 3. The paper classifies domains by
// this DNS-hierarchy level.
func (n Name) Level() int {
	if n.IsRoot() || n == "" {
		return 0
	}
	return strings.Count(string(n), ".")
}

// Parent returns the name with the leftmost label removed. The parent of a
// top-level domain is the root; the parent of the root is the root.
func (n Name) Parent() Name {
	if n.IsRoot() || n == "" {
		return Root
	}
	idx := strings.IndexByte(string(n), '.')
	if idx == len(n)-1 {
		return Root
	}
	return n[idx+1:]
}

// IsSubdomainOf reports whether n is equal to or below ancestor.
// Every name is a subdomain of the root.
func (n Name) IsSubdomainOf(ancestor Name) bool {
	if ancestor.IsRoot() {
		return true
	}
	if n == ancestor {
		return true
	}
	return strings.HasSuffix(string(n), "."+string(ancestor))
}

// IsStrictSubdomainOf reports whether n is strictly below ancestor.
func (n Name) IsStrictSubdomainOf(ancestor Name) bool {
	return n != ancestor && n.IsSubdomainOf(ancestor)
}

// Prepend returns label + "." + n, validating the new label.
func (n Name) Prepend(label string) (Name, error) {
	if err := checkLabel(strings.ToLower(label)); err != nil {
		return "", err
	}
	child := strings.ToLower(label) + "."
	if !n.IsRoot() && n != "" {
		child += string(n)
	}
	if len(child)-1 > MaxNameLen {
		return "", fmt.Errorf("%w: %q", ErrTooLong, child)
	}
	return Name(child), nil
}

// MustPrepend is like Prepend but panics on error.
func (n Name) MustPrepend(label string) Name {
	c, err := n.Prepend(label)
	if err != nil {
		panic(err)
	}
	return c
}

// AncestorAtLevel returns the ancestor of n with exactly level labels.
// It returns false if n has fewer labels than requested.
func (n Name) AncestorAtLevel(level int) (Name, bool) {
	cur := n.Level()
	if cur < level {
		return "", false
	}
	for cur > level {
		n = n.Parent()
		cur--
	}
	return n, true
}

// CommonAncestor returns the deepest name that is an ancestor of both a
// and b (possibly the root).
func CommonAncestor(a, b Name) Name {
	al, bl := a.Labels(), b.Labels()
	i, j := len(al)-1, len(bl)-1
	n := 0
	for i >= 0 && j >= 0 && al[i] == bl[j] {
		n++
		i--
		j--
	}
	if n == 0 {
		return Root
	}
	return Name(strings.Join(al[len(al)-n:], ".") + ".")
}

// Compare orders names by their reversed label sequence (DNSSEC canonical
// ordering), which groups zones with their parents. It returns -1, 0, or 1.
func Compare(a, b Name) int {
	al, bl := a.Labels(), b.Labels()
	i, j := len(al)-1, len(bl)-1
	for i >= 0 && j >= 0 {
		if al[i] != bl[j] {
			if al[i] < bl[j] {
				return -1
			}
			return 1
		}
		i--
		j--
	}
	switch {
	case i < 0 && j < 0:
		return 0
	case i < 0:
		return -1
	default:
		return 1
	}
}
