package dnsname

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseCanonicalizes(t *testing.T) {
	tests := []struct {
		in   string
		want Name
	}{
		{"", Root},
		{".", Root},
		{"GOV.BR", "gov.br."},
		{"gov.br.", "gov.br."},
		{"WwW.Gov.Au.", "www.gov.au."},
		{"xn--p1ai", "xn--p1ai."},
		{"_dmarc.gov.uk", "_dmarc.gov.uk."},
	}
	for _, tt := range tests {
		got, err := Parse(tt.in)
		if err != nil {
			t.Errorf("Parse(%q) error: %v", tt.in, err)
			continue
		}
		if got != tt.want {
			t.Errorf("Parse(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestParseRejectsInvalid(t *testing.T) {
	tests := []struct {
		in      string
		wantErr error
	}{
		{"bad..label", ErrBadLabel},
		{".leading.dot", ErrBadLabel},
		{"space in.label", ErrBadLabel},
		{"exclaim!.com", ErrBadLabel},
		{strings.Repeat("a", 64) + ".com", ErrBadLabel},
		{strings.Repeat("abcd.", 60) + "com", ErrTooLong},
	}
	for _, tt := range tests {
		if _, err := Parse(tt.in); !errors.Is(err, tt.wantErr) {
			t.Errorf("Parse(%q) error = %v, want %v", tt.in, err, tt.wantErr)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse did not panic on invalid input")
		}
	}()
	MustParse("!!")
}

func TestLevelAndLabels(t *testing.T) {
	tests := []struct {
		name   Name
		level  int
		labels int
	}{
		{Root, 0, 0},
		{"br.", 1, 1},
		{"gov.br.", 2, 2},
		{"www.prefeitura.gov.br.", 4, 4},
	}
	for _, tt := range tests {
		if got := tt.name.Level(); got != tt.level {
			t.Errorf("%q.Level() = %d, want %d", tt.name, got, tt.level)
		}
		if got := len(tt.name.Labels()); got != tt.labels {
			t.Errorf("%q.Labels() has %d labels, want %d", tt.name, got, tt.labels)
		}
	}
}

func TestParent(t *testing.T) {
	tests := []struct {
		in, want Name
	}{
		{"www.gov.br.", "gov.br."},
		{"gov.br.", "br."},
		{"br.", Root},
		{Root, Root},
	}
	for _, tt := range tests {
		if got := tt.in.Parent(); got != tt.want {
			t.Errorf("%q.Parent() = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestIsSubdomainOf(t *testing.T) {
	tests := []struct {
		child, parent Name
		want          bool
	}{
		{"www.gov.br.", "gov.br.", true},
		{"gov.br.", "gov.br.", true},
		{"gov.br.", "www.gov.br.", false},
		{"notgov.br.", "gov.br.", false},
		{"xgov.br.", "gov.br.", false}, // suffix match must be label-aligned
		{"anything.example.", Root, true},
	}
	for _, tt := range tests {
		if got := tt.child.IsSubdomainOf(tt.parent); got != tt.want {
			t.Errorf("%q.IsSubdomainOf(%q) = %v, want %v", tt.child, tt.parent, got, tt.want)
		}
	}
	if Name("gov.br.").IsStrictSubdomainOf("gov.br.") {
		t.Error("a name must not be a strict subdomain of itself")
	}
}

func TestPrepend(t *testing.T) {
	n := MustParse("gov.br")
	child, err := n.Prepend("WWW")
	if err != nil {
		t.Fatalf("Prepend: %v", err)
	}
	if child != "www.gov.br." {
		t.Errorf("Prepend = %q", child)
	}
	if _, err := n.Prepend("bad label"); err == nil {
		t.Error("Prepend accepted a label with a space")
	}
	if tld := Root.MustPrepend("br"); tld != "br." {
		t.Errorf("Prepend on root = %q, want %q", tld, "br.")
	}
}

func TestAncestorAtLevel(t *testing.T) {
	n := MustParse("a.b.gov.cn")
	got, ok := n.AncestorAtLevel(2)
	if !ok || got != "gov.cn." {
		t.Errorf("AncestorAtLevel(2) = %q, %v", got, ok)
	}
	if _, ok := n.AncestorAtLevel(5); ok {
		t.Error("AncestorAtLevel(5) should fail for a 4-label name")
	}
	if got, _ := n.AncestorAtLevel(4); got != n {
		t.Errorf("AncestorAtLevel(own level) = %q, want %q", got, n)
	}
}

func TestCommonAncestor(t *testing.T) {
	tests := []struct {
		a, b, want Name
	}{
		{"x.gov.br.", "y.gov.br.", "gov.br."},
		{"x.gov.br.", "x.gov.cn.", Root},
		{"a.b.c.", "b.c.", "b.c."},
	}
	for _, tt := range tests {
		if got := CommonAncestor(tt.a, tt.b); got != tt.want {
			t.Errorf("CommonAncestor(%q, %q) = %q, want %q", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestCompare(t *testing.T) {
	if Compare("gov.br.", "gov.br.") != 0 {
		t.Error("Compare of equal names != 0")
	}
	if Compare("br.", "a.br.") != -1 {
		t.Error("parent should sort before child")
	}
	if Compare("a.br.", "a.cn.") != -1 {
		t.Error("expected br subtree before cn subtree")
	}
}

func TestCompareIsAntisymmetric(t *testing.T) {
	f := func(a, b uint8) bool {
		x := Name(strings.Repeat("a", int(a%5)+1) + ".example.")
		y := Name(strings.Repeat("b", int(b%5)+1) + ".example.")
		return Compare(x, y) == -Compare(y, x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseRoundTripProperty(t *testing.T) {
	// Any parsed name re-parses to itself.
	labels := []string{"gov", "www", "ns1", "example", "br", "cn", "x_y", "a-b"}
	f := func(i, j, k uint8) bool {
		s := labels[int(i)%len(labels)] + "." + labels[int(j)%len(labels)] + "." + labels[int(k)%len(labels)]
		n1, err := Parse(s)
		if err != nil {
			return false
		}
		n2, err := Parse(n1.String())
		return err == nil && n1 == n2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
