package dnsname

import (
	"strings"
	"unsafe"
)

// This file is the borrow-aware construction path for Name. The wire
// decoder (internal/dnswire) builds canonical name bytes into a recycled
// arena and hands them out as Names without copying; the price is that
// such a Name aliases the arena and is only valid until the arena is
// recycled. The rules (see DESIGN.md §10):
//
//   - A borrowed Name is indistinguishable from an owned one in use:
//     comparison, Parent, map lookup, fmt formatting (which copies) all
//     work. Only *retention* is restricted.
//   - Anything that outlives the packet — cache keys, published
//     ZoneServers, trace span labels — must pass through Own at its
//     choke point.
//   - Own is idempotent in effect: owning an owned name is a plain small
//     copy, so choke points call it unconditionally.

// BorrowCanonical wraps b as a Name without copying. b must already hold
// a canonical name — lowercase, fully qualified, trailing dot — that the
// caller has validated against the same rules as Parse; BorrowCanonical
// itself performs no validation. The result aliases b's backing array
// and is only valid while that array is neither rewritten nor recycled.
func BorrowCanonical(b []byte) Name {
	if len(b) == 0 {
		return ""
	}
	return Name(unsafe.String(&b[0], len(b)))
}

// Own returns a Name backed by its own heap allocation, detached from
// any arena the receiver may borrow. It is the release half of the
// borrow contract: call it wherever a name must outlive the packet it
// was decoded from.
func (n Name) Own() Name {
	return Name(strings.Clone(string(n)))
}

// CanonicalLabelByte maps c to its canonical (lowercase) form and
// reports whether it may appear inside an ordinary label: the LDH set
// plus underscore, exactly the characters checkLabel accepts. The "*"
// wildcard is valid only as a whole label and is the caller's special
// case.
func CanonicalLabelByte(c byte) (byte, bool) {
	switch {
	case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '-', c == '_':
		return c, true
	case c >= 'A' && c <= 'Z':
		return c + ('a' - 'A'), true
	default:
		return c, false
	}
}
