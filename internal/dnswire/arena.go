package dnswire

import (
	"sync"

	"govdns/internal/dnsname"
	"govdns/internal/obs"
)

// This file is the zero-alloc wire path's memory model: a recycled
// exchange Arena holding every buffer the codec needs, checked out of a
// Pool per exchange and returned with Finish. Messages decoded or built
// on an arena *borrow* it — their names alias the arena's scratch, their
// record sections alias its backing arrays — and are valid only until
// the next Decode on the same arena or Finish, whichever comes first.
// Anything that must outlive the packet goes through Message.Owned,
// CloneRRs, or dnsname.Name.Own at a choke point. The design follows the
// trace flight recorder's span arenas (PR 4); the rules are written up
// in DESIGN.md §10.

// Retention caps: an arena that served an unusually large message is
// discarded rather than recycled, so one 64 KiB monster doesn't pin its
// buffers in the pool forever. Typical referral exchanges sit far below
// all three.
const (
	maxRetainedBytes = 64 << 10
	maxRetainedRRs   = 512
	maxRetainedQs    = 16
)

// Arena is the reusable scratch space for one DNS exchange: the encoder
// output buffer, the decoded-name and RDATA scratch, backing arrays for
// question and record sections, two message slots (one for the query
// built with NewQuery/NewResponse, one for the message Decode fills),
// and the encoder's compression table. The zero value is usable; arenas
// obtained from a Pool recycle their buffers across exchanges.
//
// An arena is not safe for concurrent use, and holds at most one live
// decoded message at a time: Decode resets the scratch and section
// arrays, invalidating every borrowed view of the previous message.
type Arena struct {
	out     []byte // encoder output; Encode results alias this
	scratch []byte // canonical name bytes and opaque RDATA copies
	rrs     []RR   // backing array for the decoded record sections
	qs      []Question
	types   []Type     // CSYNC encode scratch
	slabs   rdataSlabs // decoded RDATA payload cells
	comp    compTable

	qq    [1]Question // question slot for NewQuery
	qslot Message     // NewQuery / NewResponse slot
	rslot Message     // Decode slot

	pool *Pool // recycling destination; nil after Finish
}

// Pool hands out recycled arenas via sync.Pool. The zero value works; use
// one shared Pool (or DefaultPool) per pipeline so arenas recirculate.
type Pool struct {
	// NoRecycle, when set before first use, makes every Get return a
	// fresh arena and Finish discard it. Pooling must be pure memory
	// management; the measure invariance harness scans with recycling on
	// and off and requires bit-identical digests.
	NoRecycle bool

	p sync.Pool

	// Counters live on an obs.Registry — a private one by default, or a
	// shared pipeline registry when AttachRegistry runs first (the same
	// first-wins contract as chaos.Transport and resolver.Client).
	metricsOnce sync.Once
	checkouts   *obs.Counter
	recycles    *obs.Counter
	discards    *obs.Counter
}

// DefaultPool backs the package-level Decode/Encode compatibility
// wrappers and any client without an explicit pool.
var DefaultPool = NewPool()

// NewPool returns an empty pool.
func NewPool() *Pool { return &Pool{} }

// AttachRegistry binds the pool's counters onto r
// (dnswire_arena_checkouts_total, dnswire_arena_recycles_total,
// dnswire_arena_discards_total). Call it before the pool's first Get;
// afterwards the pool has already bound a private registry and the call
// is a no-op.
func (p *Pool) AttachRegistry(r *obs.Registry) {
	p.metricsOnce.Do(func() { p.bind(r) })
}

func (p *Pool) metrics() {
	p.metricsOnce.Do(func() { p.bind(obs.NewRegistry()) })
}

func (p *Pool) bind(r *obs.Registry) {
	p.checkouts = r.Counter("dnswire_arena_checkouts_total")
	p.recycles = r.Counter("dnswire_arena_recycles_total")
	p.discards = r.Counter("dnswire_arena_discards_total")
}

// PoolStats is a snapshot of pool counters.
type PoolStats struct {
	// Checkouts counts Get calls; Recycles counts arenas returned to the
	// pool by Finish; Discards counts arenas Finish dropped for
	// exceeding the retention caps. Checkouts - Recycles - Discards is
	// the number of arenas currently checked out (plus any discarded by
	// NoRecycle, which counts neither recycle nor discard).
	Checkouts, Recycles, Discards uint64
}

// Stats returns the current counter snapshot.
func (p *Pool) Stats() PoolStats {
	p.metrics()
	return PoolStats{
		Checkouts: p.checkouts.Load(),
		Recycles:  p.recycles.Load(),
		Discards:  p.discards.Load(),
	}
}

// Get checks an arena out of the pool, allocating a fresh one when the
// pool is empty (or NoRecycle is set). Release it with Finish.
func (p *Pool) Get() *Arena {
	p.metrics()
	p.checkouts.Inc()
	if !p.NoRecycle {
		if a, ok := p.p.Get().(*Arena); ok && a != nil {
			a.pool = p
			return a
		}
	}
	return &Arena{pool: p}
}

// Finish releases the arena back to its pool, invalidating every message
// and name still borrowing it. Finish on nil or an already-finished
// arena is a no-op, so it is safe to defer unconditionally. Arenas whose
// buffers grew past the retention caps are discarded instead of pooled.
func (a *Arena) Finish() {
	if a == nil || a.pool == nil {
		return
	}
	p := a.pool
	a.pool = nil
	if p.NoRecycle {
		return
	}
	if cap(a.out) > maxRetainedBytes || cap(a.scratch) > maxRetainedBytes ||
		cap(a.rrs) > maxRetainedRRs || cap(a.qs) > maxRetainedQs ||
		!a.slabs.recycle() {
		p.discards.Inc()
		return
	}
	// Drop references into message payloads so a pooled arena doesn't
	// pin names and RDATA from its last exchange while idle.
	clear(a.rrs[:cap(a.rrs)])
	clear(a.qs[:cap(a.qs)])
	a.rrs, a.qs = a.rrs[:0], a.qs[:0]
	a.qq[0] = Question{}
	a.qslot = Message{}
	a.rslot = Message{}
	p.recycles.Inc()
	p.p.Put(a)
}

// NewQuery is Message NewQuery built in the arena's query slot: no heap
// allocation, valid until the next NewQuery/NewResponse on this arena or
// Finish. The name is retained as given; callers own its lifetime.
func (a *Arena) NewQuery(id uint16, name dnsname.Name, qtype Type) *Message {
	a.qq[0] = Question{Name: name, Type: qtype, Class: ClassIN}
	a.qslot = Message{
		Header:    Header{ID: id, Opcode: OpcodeQuery},
		Questions: a.qq[:1],
	}
	return &a.qslot
}

// NewResponse is Message NewResponse built in the arena's query slot,
// sharing q's question section rather than copying it. On a server, q is
// the arena-decoded query (the decode slot), so both messages ride the
// same arena through the exchange.
func (a *Arena) NewResponse(q *Message) *Message {
	a.qslot = Message{
		Header: Header{
			ID:               q.Header.ID,
			Response:         true,
			Opcode:           q.Header.Opcode,
			RecursionDesired: q.Header.RecursionDesired,
		},
		Questions: q.Questions,
	}
	return &a.qslot
}

// Owned returns a deep copy of m with every name and payload buffer on
// the Go heap, safe to retain after the arena that produced m is reused
// or finished. It is the message-granularity release of the borrow
// contract (see CloneRRs for section granularity).
func (m *Message) Owned() *Message {
	out := &Message{Header: m.Header}
	if len(m.Questions) > 0 {
		out.Questions = make([]Question, len(m.Questions))
		for i, q := range m.Questions {
			q.Name = q.Name.Own()
			out.Questions[i] = q
		}
	}
	out.Answers = CloneRRs(m.Answers)
	out.Authority = CloneRRs(m.Authority)
	out.Additional = CloneRRs(m.Additional)
	return out
}

// CloneRRs deep-copies a record slice, owning every name and payload
// buffer. It returns nil for an empty input, preserving section
// nil-ness. Resolver choke points use it where arena-decoded records
// escape into long-lived structures (Delegation, zone builds).
func CloneRRs(rrs []RR) []RR {
	if len(rrs) == 0 {
		return nil
	}
	out := make([]RR, len(rrs))
	for i, rr := range rrs {
		rr.Name = rr.Name.Own()
		rr.Data = cloneRData(rr.Data)
		out[i] = rr
	}
	return out
}

// cloneRData owns the payload's retained storage: names for the name
// types, the byte image for opaque RDATA, and slice headers for TXT and
// CSYNC (whose elements the decoder already owns). Every case must
// return the copied value v, never d: a decoded payload's interface
// data word points into an arena slab (rdatabox.go), so even a type
// with no internal pointers — AData, AAAAData — needs the re-boxing
// that `return v` performs to move the cell off the slab.
func cloneRData(d RData) RData {
	switch v := d.(type) {
	case NSData:
		v.Host = v.Host.Own()
		return v
	case CNAMEData:
		v.Target = v.Target.Own()
		return v
	case PTRData:
		v.Target = v.Target.Own()
		return v
	case AData:
		return v
	case AAAAData:
		return v
	case MXData:
		v.Exchange = v.Exchange.Own()
		return v
	case SOAData:
		v.MName = v.MName.Own()
		v.RName = v.RName.Own()
		return v
	case TXTData:
		v.Strings = append([]string(nil), v.Strings...)
		return v
	case CSYNCData:
		v.Types = append([]Type(nil), v.Types...)
		return v
	case OpaqueData:
		v.Bytes = append([]byte(nil), v.Bytes...)
		return v
	default:
		return d
	}
}
