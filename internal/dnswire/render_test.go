package dnswire

import (
	"net/netip"
	"strings"
	"testing"
)

func TestRDataStringRendering(t *testing.T) {
	cases := []struct {
		data RData
		want string
	}{
		{NSData{Host: "ns1.gov.br."}, "ns1.gov.br."},
		{AData{Addr: netip.MustParseAddr("192.0.2.1")}, "192.0.2.1"},
		{AAAAData{Addr: netip.MustParseAddr("2001:db8::1")}, "2001:db8::1"},
		{CNAMEData{Target: "www.gov.br."}, "www.gov.br."},
		{PTRData{Target: "host.gov.br."}, "host.gov.br."},
		{MXData{Preference: 10, Exchange: "mx.gov.br."}, "10 mx.gov.br."},
		{TXTData{Strings: []string{"a", "b c"}}, `"a" "b c"`},
		{SOAData{MName: "ns.gov.br.", RName: "h.gov.br.", Serial: 1, Refresh: 2, Retry: 3, Expire: 4, Minimum: 5},
			"ns.gov.br. h.gov.br. 1 2 3 4 5"},
		{OpaqueData{RRType: Type(99), Bytes: []byte{0xDE, 0xAD}}, `\# 2 dead`},
		{CSYNCData{Serial: 9, Flags: 3, Types: []Type{TypeNS, TypeA}}, "9 3 NS A"},
	}
	for _, tc := range cases {
		if got := tc.data.String(); got != tc.want {
			t.Errorf("%T.String() = %q, want %q", tc.data, got, tc.want)
		}
	}
}

func TestRRStringAndType(t *testing.T) {
	rr := RR{Name: "x.gov.br.", Class: ClassIN, TTL: 300, Data: AData{Addr: netip.MustParseAddr("192.0.2.1")}}
	s := rr.String()
	for _, want := range []string{"x.gov.br.", "300", "IN", "A", "192.0.2.1"} {
		if !strings.Contains(s, want) {
			t.Errorf("RR.String() = %q missing %q", s, want)
		}
	}
	var empty RR
	if empty.Type() != 0 {
		t.Errorf("nil-payload RR type = %v", empty.Type())
	}
}

func TestRREqualSemantics(t *testing.T) {
	a := RR{Name: "x.gov.br.", Class: ClassIN, TTL: 300, Data: AData{Addr: netip.MustParseAddr("192.0.2.1")}}
	b := a
	b.TTL = 999 // TTL is not part of RRset identity
	if !a.Equal(b) {
		t.Error("TTL change broke Equal")
	}
	c := a
	c.Data = AData{Addr: netip.MustParseAddr("192.0.2.2")}
	if a.Equal(c) {
		t.Error("different RDATA compared equal")
	}
	d := a
	d.Data = NSData{Host: "ns.gov.br."}
	if a.Equal(d) {
		t.Error("different type compared equal")
	}
	var nilData RR
	nilData.Name = a.Name
	nilData.Class = a.Class
	if a.Equal(nilData) {
		t.Error("nil payload compared equal to non-nil")
	}
}

func TestMessageHelpers(t *testing.T) {
	q := NewQuery(5, "x.gov.br.", TypeNS)
	if got := q.Question(); got.Name != "x.gov.br." || got.Type != TypeNS {
		t.Errorf("Question = %v", got)
	}
	var empty Message
	if got := empty.Question(); got != (Question{}) {
		t.Errorf("empty Question = %v", got)
	}

	resp := NewResponse(q)
	resp.Answers = []RR{
		{Name: "x.gov.br.", Class: ClassIN, Data: NSData{Host: "ns1.x.gov.br."}},
		{Name: "x.gov.br.", Class: ClassIN, Data: TXTData{Strings: []string{"note"}}},
	}
	resp.Additional = []RR{
		{Name: "ns1.x.gov.br.", Class: ClassIN, Data: AData{Addr: netip.MustParseAddr("192.0.2.1")}},
	}
	if got := len(resp.AnswersOfType(TypeNS)); got != 1 {
		t.Errorf("AnswersOfType(NS) = %d", got)
	}
	if got := len(resp.AdditionalOfType(TypeA)); got != 1 {
		t.Errorf("AdditionalOfType(A) = %d", got)
	}
	if got := len(resp.AuthorityOfType(TypeNS)); got != 0 {
		t.Errorf("AuthorityOfType(NS) = %d", got)
	}

	// String renders all sections.
	s := resp.String()
	for _, want := range []string{"response", "question", "answer", "additional"} {
		if !strings.Contains(s, want) {
			t.Errorf("Message.String() missing %q:\n%s", want, s)
		}
	}
}

func TestClassAndRCodeStrings(t *testing.T) {
	if ClassIN.String() != "IN" || ClassANY.String() != "ANY" || Class(3).String() != "CLASS3" {
		t.Error("Class mnemonics wrong")
	}
	for rc, want := range map[RCode]string{
		RCodeNoError: "NOERROR", RCodeFormErr: "FORMERR", RCodeServFail: "SERVFAIL",
		RCodeNXDomain: "NXDOMAIN", RCodeNotImp: "NOTIMP", RCodeRefused: "REFUSED",
		RCode(15): "RCODE15",
	} {
		if rc.String() != want {
			t.Errorf("RCode(%d).String() = %q, want %q", rc, rc.String(), want)
		}
	}
	if Type(4242).String() != "TYPE4242" {
		t.Errorf("unknown type mnemonic = %q", Type(4242).String())
	}
}
