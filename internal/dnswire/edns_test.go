package dnswire

import (
	"bytes"
	"fmt"
	"net/netip"
	"testing"

	"govdns/internal/dnsname"
)

func TestOPTRecordRoundTrip(t *testing.T) {
	q := NewQuery(7, "www.gov.br.", TypeA)
	q.Additional = append(q.Additional, OPTRecord(4096))
	wire, err := Encode(q)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := Decode(wire)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	size, ok := got.EDNS()
	if !ok || size != 4096 {
		t.Fatalf("EDNS() = (%d, %v), want (4096, true)", size, ok)
	}
	if len(got.Additional) != 1 {
		t.Fatalf("additional count = %d, want 1", len(got.Additional))
	}
	rr := got.Additional[0]
	if rr.Name != dnsname.Root || rr.Type() != TypeOPT || rr.TTL != 0 {
		t.Errorf("decoded OPT = %v, want root-owned TYPE41 TTL 0", rr)
	}
	// Re-encoding the decoded form must be bit-identical.
	again, err := Encode(got)
	if err != nil {
		t.Fatalf("re-Encode: %v", err)
	}
	if !bytes.Equal(wire, again) {
		t.Error("OPT round trip not bit-identical")
	}
}

func TestEDNSAbsent(t *testing.T) {
	q := NewQuery(7, "www.gov.br.", TypeA)
	if size, ok := q.EDNS(); ok || size != 0 {
		t.Errorf("EDNS() on plain query = (%d, %v), want (0, false)", size, ok)
	}
}

// bulkResponse builds a response whose answer section holds n A records
// plus authority/additional padding, for truncation tests.
func bulkResponse(t *testing.T, n int, withOPT bool) *Message {
	t.Helper()
	q := NewQuery(9, "big.gov.br.", TypeA)
	m := NewResponse(q)
	m.Header.Authoritative = true
	for i := 0; i < n; i++ {
		m.Answers = append(m.Answers, RR{
			Name: "big.gov.br.", Class: ClassIN, TTL: 300,
			Data: AData{Addr: netip.MustParseAddr(fmt.Sprintf("192.0.2.%d", i+1))},
		})
	}
	m.Authority = append(m.Authority, RR{
		Name: "gov.br.", Class: ClassIN, TTL: 3600,
		Data: NSData{Host: "ns1.gov.br."},
	})
	m.Additional = append(m.Additional, RR{
		Name: "ns1.gov.br.", Class: ClassIN, TTL: 3600,
		Data: AData{Addr: netip.MustParseAddr("198.51.100.1")},
	})
	if withOPT {
		m.Additional = append(m.Additional, OPTRecord(1232))
	}
	return m
}

func TestEncodeLimitFitsUnchanged(t *testing.T) {
	m := bulkResponse(t, 3, true)
	a := DefaultPool.Get()
	defer a.Finish()
	full, err := a.Encode(m)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	fullCopy := append([]byte(nil), full...)
	limited, err := a.EncodeLimit(m, MaxUDPPayload)
	if err != nil {
		t.Fatalf("EncodeLimit: %v", err)
	}
	if !bytes.Equal(fullCopy, limited) {
		t.Error("EncodeLimit of a fitting message differs from Encode")
	}
}

func TestEncodeLimitTruncatesAtRRBoundary(t *testing.T) {
	m := bulkResponse(t, 60, true) // ~60 A records: well over 512 bytes
	a := DefaultPool.Get()
	defer a.Finish()
	wire, err := a.EncodeLimit(m, MaxUDPPayload)
	if err != nil {
		t.Fatalf("EncodeLimit: %v", err)
	}
	if len(wire) > MaxUDPPayload {
		t.Fatalf("EncodeLimit produced %d bytes > %d", len(wire), MaxUDPPayload)
	}
	got, err := Decode(wire)
	if err != nil {
		t.Fatalf("truncated message does not decode: %v", err)
	}
	if !got.Header.Truncated {
		t.Error("TC bit clear on truncated message")
	}
	if len(got.Questions) != 1 {
		t.Errorf("question count = %d, want 1 (questions are never dropped)", len(got.Questions))
	}
	if len(got.Answers) == 0 || len(got.Answers) >= 60 {
		t.Errorf("answer count = %d, want a proper non-empty prefix of 60", len(got.Answers))
	}
	// Kept answers must be the untouched prefix of the original set.
	for i, rr := range got.Answers {
		if !rr.Equal(m.Answers[i]) {
			t.Fatalf("answer %d mutated by truncation: %v != %v", i, rr, m.Answers[i])
		}
	}
	// The OPT tail survives even though plain additional records dropped.
	if size, ok := got.EDNS(); !ok || size != 1232 {
		t.Errorf("EDNS() on truncated message = (%d, %v), want (1232, true)", size, ok)
	}
	for _, rr := range got.Additional {
		if rr.Type() != TypeOPT {
			t.Errorf("plain additional record %v survived while answers were truncated", rr)
		}
	}
}

func TestEncodeLimitDropsSectionsInOrder(t *testing.T) {
	// A limit that fits the answers but not the padding: additional
	// drops before authority, authority before answers.
	m := bulkResponse(t, 4, false)
	a := DefaultPool.Get()
	defer a.Finish()
	full, err := a.Encode(m)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	// Choose a limit excluding only the final (additional) record.
	limit := len(full) - 1
	wire, err := a.EncodeLimit(m, limit)
	if err != nil {
		t.Fatalf("EncodeLimit: %v", err)
	}
	got, err := Decode(wire)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if len(got.Answers) != 4 || len(got.Authority) != 1 || len(got.Additional) != 0 {
		t.Errorf("sections = %d/%d/%d, want 4/1/0 (additional drops first)",
			len(got.Answers), len(got.Authority), len(got.Additional))
	}
	if !got.Header.Truncated {
		t.Error("TC bit clear")
	}
}

func TestEncodeLimitTCPCeiling(t *testing.T) {
	m := bulkResponse(t, 60, true)
	a := DefaultPool.Get()
	defer a.Finish()
	wire, err := a.EncodeLimit(m, MaxTCPPayload)
	if err != nil {
		t.Fatalf("EncodeLimit: %v", err)
	}
	got, err := Decode(wire)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.Header.Truncated || len(got.Answers) != 60 {
		t.Errorf("TCP-limit encode truncated (TC=%v, %d answers), want complete",
			got.Header.Truncated, len(got.Answers))
	}
}
