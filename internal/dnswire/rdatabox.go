package dnswire

import "unsafe"

// Plain interface boxing (`RData(NSData{...})`) copies the payload to a
// fresh heap cell — one allocation per decoded record, the last
// allocations on the wire path. The decoder instead appends payloads to
// per-type slabs on the arena and assembles the interface value by hand:
// the itab word is taken from a real boxed value of the same concrete
// type (itabs are canonicalized, so every (RData, NSData) pair shares
// one), and the data word points at the slab cell. To every consumer —
// type assertions, type switches, method calls, interface comparison —
// the result is indistinguishable from ordinary boxing; the only
// difference is where the cell lives, which is exactly the arena borrow
// contract: valid until the next Decode or Finish, copied out by
// cloneRData at the choke points.
//
// The GC treats the data word as an ordinary (interior) pointer, so a
// retained RData keeps its slab alive even after the arena moves on.

// iface mirrors the runtime layout of a non-empty interface value.
type iface struct {
	tab  unsafe.Pointer
	data unsafe.Pointer
}

// itabFor extracts the itab shared by every RData holding concrete type
// T, by boxing one zero value the ordinary way.
func itabFor[T RData]() unsafe.Pointer {
	var zero T
	var d RData = zero
	return (*iface)(unsafe.Pointer(&d)).tab
}

var (
	nsItab     = itabFor[NSData]()
	cnameItab  = itabFor[CNAMEData]()
	ptrItab    = itabFor[PTRData]()
	aItab      = itabFor[AData]()
	aaaaItab   = itabFor[AAAAData]()
	mxItab     = itabFor[MXData]()
	txtItab    = itabFor[TXTData]()
	soaItab    = itabFor[SOAData]()
	csyncItab  = itabFor[CSYNCData]()
	opaqueItab = itabFor[OpaqueData]()
)

// boxInto appends v to the slab and returns an RData for the stored
// cell, allocating only when the slab itself grows.
func boxInto[T RData](slab *[]T, tab unsafe.Pointer, v T) RData {
	*slab = append(*slab, v)
	var d RData
	e := (*iface)(unsafe.Pointer(&d))
	e.tab = tab
	e.data = unsafe.Pointer(&(*slab)[len(*slab)-1])
	return d
}

// rdataSlabs is the arena's payload storage, one slab per concrete
// payload type so every cell is a properly typed, GC-scannable object.
type rdataSlabs struct {
	ns     []NSData
	cname  []CNAMEData
	ptr    []PTRData
	a      []AData
	aaaa   []AAAAData
	mx     []MXData
	txt    []TXTData
	soa    []SOAData
	csync  []CSYNCData
	opaque []OpaqueData
}

// reset truncates all slabs for the next decode. Cells stay allocated;
// their previous contents are dead under the borrow contract.
func (s *rdataSlabs) reset() {
	s.ns = s.ns[:0]
	s.cname = s.cname[:0]
	s.ptr = s.ptr[:0]
	s.a = s.a[:0]
	s.aaaa = s.aaaa[:0]
	s.mx = s.mx[:0]
	s.txt = s.txt[:0]
	s.soa = s.soa[:0]
	s.csync = s.csync[:0]
	s.opaque = s.opaque[:0]
}

// recycle clears cell contents (dropping name and slice references a
// pooled arena would otherwise pin) and reports whether the slabs are
// small enough to retain.
func (s *rdataSlabs) recycle() bool {
	if cap(s.ns) > maxRetainedRRs || cap(s.cname) > maxRetainedRRs ||
		cap(s.ptr) > maxRetainedRRs || cap(s.a) > maxRetainedRRs ||
		cap(s.aaaa) > maxRetainedRRs || cap(s.mx) > maxRetainedRRs ||
		cap(s.txt) > maxRetainedRRs || cap(s.soa) > maxRetainedRRs ||
		cap(s.csync) > maxRetainedRRs || cap(s.opaque) > maxRetainedRRs {
		return false
	}
	clear(s.ns[:cap(s.ns)])
	clear(s.cname[:cap(s.cname)])
	clear(s.ptr[:cap(s.ptr)])
	clear(s.mx[:cap(s.mx)])
	clear(s.txt[:cap(s.txt)])
	clear(s.soa[:cap(s.soa)])
	clear(s.csync[:cap(s.csync)])
	clear(s.opaque[:cap(s.opaque)])
	s.reset()
	return true
}
