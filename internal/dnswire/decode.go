package dnswire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
	"strings"

	"govdns/internal/dnsname"
)

// Decoding errors.
var (
	// ErrTruncatedMessage indicates the buffer ended before a complete
	// message was read.
	ErrTruncatedMessage = errors.New("dnswire: truncated message")
	// ErrBadPointer indicates a compression pointer that is forward,
	// self-referential, or forms a loop.
	ErrBadPointer = errors.New("dnswire: bad compression pointer")
	// ErrBadName indicates a wire-format name that does not decode to a
	// valid domain name.
	ErrBadName = errors.New("dnswire: bad name")
)

// decoder walks a wire-format message.
type decoder struct {
	buf []byte
	pos int
}

// Decode parses a wire-format DNS message.
func Decode(wire []byte) (*Message, error) {
	d := &decoder{buf: wire}
	m := &Message{}

	qd, an, ns, ar, err := d.header(&m.Header)
	if err != nil {
		return nil, err
	}
	for i := 0; i < int(qd); i++ {
		q, err := d.question()
		if err != nil {
			return nil, fmt.Errorf("question %d: %w", i, err)
		}
		m.Questions = append(m.Questions, q)
	}
	sections := []struct {
		count int
		dst   *[]RR
		name  string
	}{
		{int(an), &m.Answers, "answer"},
		{int(ns), &m.Authority, "authority"},
		{int(ar), &m.Additional, "additional"},
	}
	for _, s := range sections {
		for i := 0; i < s.count; i++ {
			rr, err := d.record()
			if err != nil {
				return nil, fmt.Errorf("%s %d: %w", s.name, i, err)
			}
			*s.dst = append(*s.dst, rr)
		}
	}
	return m, nil
}

func (d *decoder) header(h *Header) (qd, an, ns, ar uint16, err error) {
	if len(d.buf) < 12 {
		return 0, 0, 0, 0, fmt.Errorf("%w: %d-byte header", ErrTruncatedMessage, len(d.buf))
	}
	h.ID = binary.BigEndian.Uint16(d.buf[0:])
	flags := binary.BigEndian.Uint16(d.buf[2:])
	h.Response = flags&(1<<15) != 0
	h.Opcode = Opcode(flags >> 11 & 0xF)
	h.Authoritative = flags&(1<<10) != 0
	h.Truncated = flags&(1<<9) != 0
	h.RecursionDesired = flags&(1<<8) != 0
	h.RecursionAvailable = flags&(1<<7) != 0
	h.RCode = RCode(flags & 0xF)

	qd = binary.BigEndian.Uint16(d.buf[4:])
	an = binary.BigEndian.Uint16(d.buf[6:])
	ns = binary.BigEndian.Uint16(d.buf[8:])
	ar = binary.BigEndian.Uint16(d.buf[10:])
	d.pos = 12
	return qd, an, ns, ar, nil
}

func (d *decoder) question() (Question, error) {
	name, err := d.name()
	if err != nil {
		return Question{}, err
	}
	t, err := d.uint16()
	if err != nil {
		return Question{}, err
	}
	c, err := d.uint16()
	if err != nil {
		return Question{}, err
	}
	return Question{Name: name, Type: Type(t), Class: Class(c)}, nil
}

func (d *decoder) record() (RR, error) {
	name, err := d.name()
	if err != nil {
		return RR{}, err
	}
	t, err := d.uint16()
	if err != nil {
		return RR{}, err
	}
	c, err := d.uint16()
	if err != nil {
		return RR{}, err
	}
	ttl, err := d.uint32()
	if err != nil {
		return RR{}, err
	}
	rdlen, err := d.uint16()
	if err != nil {
		return RR{}, err
	}
	end := d.pos + int(rdlen)
	if end > len(d.buf) {
		return RR{}, fmt.Errorf("%w: RDATA of %d bytes at offset %d", ErrTruncatedMessage, rdlen, d.pos)
	}
	data, err := d.rdata(Type(t), end)
	if err != nil {
		return RR{}, err
	}
	if d.pos != end {
		return RR{}, fmt.Errorf("%w: RDATA for %s under-read (%d of %d bytes)",
			ErrTruncatedMessage, Type(t), d.pos-(end-int(rdlen)), rdlen)
	}
	return RR{Name: name, Class: Class(c), TTL: ttl, Data: data}, nil
}

func (d *decoder) rdata(t Type, end int) (RData, error) {
	switch t {
	case TypeNS:
		host, err := d.name()
		return NSData{Host: host}, err
	case TypeCNAME:
		target, err := d.name()
		return CNAMEData{Target: target}, err
	case TypePTR:
		target, err := d.name()
		return PTRData{Target: target}, err
	case TypeA:
		if end-d.pos != 4 {
			return nil, fmt.Errorf("%w: A RDATA of %d bytes", ErrTruncatedMessage, end-d.pos)
		}
		var a4 [4]byte
		copy(a4[:], d.buf[d.pos:])
		d.pos += 4
		return AData{Addr: netip.AddrFrom4(a4)}, nil
	case TypeAAAA:
		if end-d.pos != 16 {
			return nil, fmt.Errorf("%w: AAAA RDATA of %d bytes", ErrTruncatedMessage, end-d.pos)
		}
		var a16 [16]byte
		copy(a16[:], d.buf[d.pos:])
		d.pos += 16
		return AAAAData{Addr: netip.AddrFrom16(a16)}, nil
	case TypeMX:
		pref, err := d.uint16()
		if err != nil {
			return nil, err
		}
		exch, err := d.name()
		return MXData{Preference: pref, Exchange: exch}, err
	case TypeTXT:
		var strs []string
		for d.pos < end {
			slen := int(d.buf[d.pos])
			d.pos++
			if d.pos+slen > end {
				return nil, fmt.Errorf("%w: TXT string of %d bytes", ErrTruncatedMessage, slen)
			}
			strs = append(strs, string(d.buf[d.pos:d.pos+slen]))
			d.pos += slen
		}
		return TXTData{Strings: strs}, nil
	case TypeSOA:
		mname, err := d.name()
		if err != nil {
			return nil, err
		}
		rname, err := d.name()
		if err != nil {
			return nil, err
		}
		var vals [5]uint32
		for i := range vals {
			vals[i], err = d.uint32()
			if err != nil {
				return nil, err
			}
		}
		return SOAData{
			MName: mname, RName: rname,
			Serial: vals[0], Refresh: vals[1], Retry: vals[2],
			Expire: vals[3], Minimum: vals[4],
		}, nil
	case TypeCSYNC:
		return d.decodeCSYNC(end)
	default:
		raw := make([]byte, end-d.pos)
		copy(raw, d.buf[d.pos:end])
		d.pos = end
		return OpaqueData{RRType: t, Bytes: raw}, nil
	}
}

// name decodes a possibly-compressed domain name starting at d.pos,
// leaving d.pos just past the name's in-place bytes.
func (d *decoder) name() (dnsname.Name, error) {
	var labels []string
	pos := d.pos
	followed := false // whether we have jumped through a pointer yet
	jumps := 0

	for {
		if pos >= len(d.buf) {
			return "", fmt.Errorf("%w: name runs past buffer", ErrTruncatedMessage)
		}
		b := d.buf[pos]
		switch {
		case b == 0:
			if !followed {
				d.pos = pos + 1
			}
			return joinLabels(labels)
		case b&0xC0 == 0xC0:
			if pos+1 >= len(d.buf) {
				return "", fmt.Errorf("%w: pointer at end of buffer", ErrTruncatedMessage)
			}
			target := int(binary.BigEndian.Uint16(d.buf[pos:]) & 0x3FFF)
			if target >= pos {
				return "", fmt.Errorf("%w: forward pointer %d at offset %d", ErrBadPointer, target, pos)
			}
			if jumps++; jumps > 32 {
				return "", fmt.Errorf("%w: >32 jumps", ErrBadPointer)
			}
			if !followed {
				d.pos = pos + 2
				followed = true
			}
			pos = target
		case b&0xC0 != 0:
			return "", fmt.Errorf("%w: reserved label type %#x", ErrBadName, b&0xC0)
		default:
			if pos+1+int(b) > len(d.buf) {
				return "", fmt.Errorf("%w: label of %d bytes", ErrTruncatedMessage, b)
			}
			labels = append(labels, string(d.buf[pos+1:pos+1+int(b)]))
			if len(labels) > 127 {
				return "", fmt.Errorf("%w: too many labels", ErrBadName)
			}
			pos += 1 + int(b)
		}
	}
}

func joinLabels(labels []string) (dnsname.Name, error) {
	if len(labels) == 0 {
		return dnsname.Root, nil
	}
	n, err := dnsname.Parse(strings.Join(labels, "."))
	if err != nil {
		return "", fmt.Errorf("%w: %v", ErrBadName, err)
	}
	return n, nil
}

func (d *decoder) uint16() (uint16, error) {
	if d.pos+2 > len(d.buf) {
		return 0, fmt.Errorf("%w: reading uint16 at %d", ErrTruncatedMessage, d.pos)
	}
	v := binary.BigEndian.Uint16(d.buf[d.pos:])
	d.pos += 2
	return v, nil
}

func (d *decoder) uint32() (uint32, error) {
	if d.pos+4 > len(d.buf) {
		return 0, fmt.Errorf("%w: reading uint32 at %d", ErrTruncatedMessage, d.pos)
	}
	v := binary.BigEndian.Uint32(d.buf[d.pos:])
	d.pos += 4
	return v, nil
}
