package dnswire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
	"net/netip"
	"strings"

	"govdns/internal/dnsname"
)

// Decoding errors.
var (
	// ErrTruncatedMessage indicates the buffer ended before a complete
	// message was read.
	ErrTruncatedMessage = errors.New("dnswire: truncated message")
	// ErrBadPointer indicates a compression pointer that is forward,
	// self-referential, or forms a loop.
	ErrBadPointer = errors.New("dnswire: bad compression pointer")
	// ErrBadName indicates a wire-format name that does not decode to a
	// valid domain name.
	ErrBadName = errors.New("dnswire: bad name")
)

// decoder walks a wire-format message, building names and opaque RDATA
// into the arena scratch.
type decoder struct {
	a   *Arena
	buf []byte
	pos int
}

// Decode parses a wire-format DNS message into an owned Message, safe to
// retain indefinitely. It is the allocating convenience form of
// Arena.Decode; hot paths check an arena out of a Pool and decode onto
// it directly.
func Decode(wire []byte) (*Message, error) {
	a := DefaultPool.Get()
	defer a.Finish()
	m, err := a.Decode(wire)
	if err != nil {
		return nil, err
	}
	return m.Owned(), nil
}

// Decode parses a wire-format DNS message into the arena. The returned
// message borrows the arena: its names alias the arena scratch and its
// sections alias the arena record array, so it is valid only until the
// next Decode on this arena or Finish. Retain it with Message.Owned (or
// its parts with CloneRRs / Name.Own).
//
// An arena holds one decoded message at a time; Decode invalidates the
// previous one.
func (a *Arena) Decode(wire []byte) (*Message, error) {
	a.scratch = a.scratch[:0]
	a.rrs = a.rrs[:0]
	a.qs = a.qs[:0]
	a.slabs.reset()
	a.rslot = Message{}
	m := &a.rslot

	d := decoder{a: a, buf: wire}
	qd, an, ns, ar, err := d.header(&m.Header)
	if err != nil {
		return nil, err
	}
	// Section counts are attacker-controlled; append rather than
	// preallocating so a forged header cannot demand gigantic arrays.
	for i := 0; i < int(qd); i++ {
		q, err := d.question()
		if err != nil {
			return nil, fmt.Errorf("question %d: %w", i, err)
		}
		a.qs = append(a.qs, q)
	}
	anEnd, err := d.section(int(an), "answer")
	if err != nil {
		return nil, err
	}
	nsEnd, err := d.section(int(ns), "authority")
	if err != nil {
		return nil, err
	}
	arEnd, err := d.section(int(ar), "additional")
	if err != nil {
		return nil, err
	}
	// Slice the sections only now: the append loops may have grown the
	// backing arrays. Capacities are clamped so an append on one section
	// can never clobber the next.
	if len(a.qs) > 0 {
		m.Questions = a.qs[0:len(a.qs):len(a.qs)]
	}
	m.Answers = sectionSlice(a.rrs, 0, anEnd)
	m.Authority = sectionSlice(a.rrs, anEnd, nsEnd)
	m.Additional = sectionSlice(a.rrs, nsEnd, arEnd)
	return m, nil
}

// section decodes count records into the arena record array, returning
// the end index of this section.
func (d *decoder) section(count int, name string) (int, error) {
	for i := 0; i < count; i++ {
		rr, err := d.record()
		if err != nil {
			return 0, fmt.Errorf("%s %d: %w", name, i, err)
		}
		d.a.rrs = append(d.a.rrs, rr)
	}
	return len(d.a.rrs), nil
}

func sectionSlice(rrs []RR, start, end int) []RR {
	if start == end {
		return nil
	}
	return rrs[start:end:end]
}

// PeekQuestion decodes wire on a pooled arena and returns an owned copy
// of its first question. ok is false when wire does not decode as a full
// message or carries no question; the decode outcome is identical to
// Decode's, so callers keying behaviour on the question (the chaos
// transport) classify exactly the packets Decode would accept.
func PeekQuestion(wire []byte) (Question, bool) {
	a := DefaultPool.Get()
	defer a.Finish()
	m, err := a.Decode(wire)
	if err != nil || len(m.Questions) == 0 {
		return Question{}, false
	}
	q := m.Questions[0]
	q.Name = q.Name.Own()
	return q, true
}

func (d *decoder) header(h *Header) (qd, an, ns, ar uint16, err error) {
	if len(d.buf) < 12 {
		return 0, 0, 0, 0, fmt.Errorf("%w: %d-byte header", ErrTruncatedMessage, len(d.buf))
	}
	h.ID = binary.BigEndian.Uint16(d.buf[0:])
	flags := binary.BigEndian.Uint16(d.buf[2:])
	h.Response = flags&(1<<15) != 0
	h.Opcode = Opcode(flags >> 11 & 0xF)
	h.Authoritative = flags&(1<<10) != 0
	h.Truncated = flags&(1<<9) != 0
	h.RecursionDesired = flags&(1<<8) != 0
	h.RecursionAvailable = flags&(1<<7) != 0
	h.RCode = RCode(flags & 0xF)

	qd = binary.BigEndian.Uint16(d.buf[4:])
	an = binary.BigEndian.Uint16(d.buf[6:])
	ns = binary.BigEndian.Uint16(d.buf[8:])
	ar = binary.BigEndian.Uint16(d.buf[10:])
	d.pos = 12
	return qd, an, ns, ar, nil
}

func (d *decoder) question() (Question, error) {
	name, err := d.name()
	if err != nil {
		return Question{}, err
	}
	t, err := d.uint16()
	if err != nil {
		return Question{}, err
	}
	c, err := d.uint16()
	if err != nil {
		return Question{}, err
	}
	return Question{Name: name, Type: Type(t), Class: Class(c)}, nil
}

func (d *decoder) record() (RR, error) {
	name, err := d.name()
	if err != nil {
		return RR{}, err
	}
	t, err := d.uint16()
	if err != nil {
		return RR{}, err
	}
	c, err := d.uint16()
	if err != nil {
		return RR{}, err
	}
	ttl, err := d.uint32()
	if err != nil {
		return RR{}, err
	}
	rdlen, err := d.uint16()
	if err != nil {
		return RR{}, err
	}
	end := d.pos + int(rdlen)
	if end > len(d.buf) {
		return RR{}, fmt.Errorf("%w: RDATA of %d bytes at offset %d", ErrTruncatedMessage, rdlen, d.pos)
	}
	data, err := d.rdata(Type(t), end)
	if err != nil {
		return RR{}, err
	}
	if d.pos != end {
		return RR{}, fmt.Errorf("%w: RDATA for %s under-read (%d of %d bytes)",
			ErrTruncatedMessage, Type(t), d.pos-(end-int(rdlen)), rdlen)
	}
	return RR{Name: name, Class: Class(c), TTL: ttl, Data: data}, nil
}

func (d *decoder) rdata(t Type, end int) (RData, error) {
	slabs := &d.a.slabs
	switch t {
	case TypeNS:
		host, err := d.name()
		return boxInto(&slabs.ns, nsItab, NSData{Host: host}), err
	case TypeCNAME:
		target, err := d.name()
		return boxInto(&slabs.cname, cnameItab, CNAMEData{Target: target}), err
	case TypePTR:
		target, err := d.name()
		return boxInto(&slabs.ptr, ptrItab, PTRData{Target: target}), err
	case TypeA:
		if end-d.pos != 4 {
			return nil, fmt.Errorf("%w: A RDATA of %d bytes", ErrTruncatedMessage, end-d.pos)
		}
		var a4 [4]byte
		copy(a4[:], d.buf[d.pos:])
		d.pos += 4
		return boxInto(&slabs.a, aItab, AData{Addr: netip.AddrFrom4(a4)}), nil
	case TypeAAAA:
		if end-d.pos != 16 {
			return nil, fmt.Errorf("%w: AAAA RDATA of %d bytes", ErrTruncatedMessage, end-d.pos)
		}
		var a16 [16]byte
		copy(a16[:], d.buf[d.pos:])
		d.pos += 16
		return boxInto(&slabs.aaaa, aaaaItab, AAAAData{Addr: netip.AddrFrom16(a16)}), nil
	case TypeMX:
		pref, err := d.uint16()
		if err != nil {
			return nil, err
		}
		exch, err := d.name()
		return boxInto(&slabs.mx, mxItab, MXData{Preference: pref, Exchange: exch}), err
	case TypeTXT:
		// TXT strings stay individually heap-owned: they are rare on the
		// scan path and borrowing them would push per-element clone
		// obligations into every retainer.
		var strs []string
		for d.pos < end {
			slen := int(d.buf[d.pos])
			d.pos++
			if d.pos+slen > end {
				return nil, fmt.Errorf("%w: TXT string of %d bytes", ErrTruncatedMessage, slen)
			}
			strs = append(strs, string(d.buf[d.pos:d.pos+slen]))
			d.pos += slen
		}
		return boxInto(&slabs.txt, txtItab, TXTData{Strings: strs}), nil
	case TypeSOA:
		mname, err := d.name()
		if err != nil {
			return nil, err
		}
		rname, err := d.name()
		if err != nil {
			return nil, err
		}
		var vals [5]uint32
		for i := range vals {
			vals[i], err = d.uint32()
			if err != nil {
				return nil, err
			}
		}
		return boxInto(&slabs.soa, soaItab, SOAData{
			MName: mname, RName: rname,
			Serial: vals[0], Refresh: vals[1], Retry: vals[2],
			Expire: vals[3], Minimum: vals[4],
		}), nil
	case TypeCSYNC:
		data, err := d.decodeCSYNC(end)
		if err != nil {
			return nil, err
		}
		return boxInto(&slabs.csync, csyncItab, data), nil
	default:
		off := len(d.a.scratch)
		d.a.scratch = append(d.a.scratch, d.buf[d.pos:end]...)
		d.pos = end
		return boxInto(&slabs.opaque, opaqueItab, OpaqueData{
			RRType: t,
			Bytes:  d.a.scratch[off:len(d.a.scratch):len(d.a.scratch)],
		}), nil
	}
}

// name decodes a possibly-compressed domain name starting at d.pos,
// leaving d.pos just past the name's in-place bytes. The canonical bytes
// land in the arena scratch and the returned Name borrows them. Inputs
// the fast path cannot canonicalise byte-for-byte — any character
// outside the LDH+underscore set (dots inside wire labels, arbitrary
// binary) or a name over the length limit — are re-decoded through the
// original strings.Join/Parse pipeline, so accepted names and error text
// stay bit-identical with the pre-arena decoder.
func (d *decoder) name() (dnsname.Name, error) {
	start := len(d.a.scratch)
	startPos := d.pos
	clean := true
	labels := 0
	pos := d.pos
	followed := false // whether we have jumped through a pointer yet
	jumps := 0

	for {
		if pos >= len(d.buf) {
			return "", fmt.Errorf("%w: name runs past buffer", ErrTruncatedMessage)
		}
		b := d.buf[pos]
		switch {
		case b == 0:
			if !followed {
				d.pos = pos + 1
			}
			return d.finishName(start, startPos, labels, clean)
		case b&0xC0 == 0xC0:
			if pos+1 >= len(d.buf) {
				return "", fmt.Errorf("%w: pointer at end of buffer", ErrTruncatedMessage)
			}
			target := int(binary.BigEndian.Uint16(d.buf[pos:]) & 0x3FFF)
			if target >= pos {
				return "", fmt.Errorf("%w: forward pointer %d at offset %d", ErrBadPointer, target, pos)
			}
			if jumps++; jumps > 32 {
				return "", fmt.Errorf("%w: >32 jumps", ErrBadPointer)
			}
			if !followed {
				d.pos = pos + 2
				followed = true
			}
			pos = target
		case b&0xC0 != 0:
			return "", fmt.Errorf("%w: reserved label type %#x", ErrBadName, b&0xC0)
		default:
			if pos+1+int(b) > len(d.buf) {
				return "", fmt.Errorf("%w: label of %d bytes", ErrTruncatedMessage, b)
			}
			lab := d.buf[pos+1 : pos+1+int(b)]
			if len(lab) == 1 && lab[0] == '*' {
				// The wildcard is valid only as a whole label.
				d.a.scratch = append(d.a.scratch, '*', '.')
			} else {
				for _, c := range lab {
					cc, ok := dnsname.CanonicalLabelByte(c)
					if !ok {
						clean = false
					}
					d.a.scratch = append(d.a.scratch, cc)
				}
				d.a.scratch = append(d.a.scratch, '.')
			}
			labels++
			if labels > 127 {
				return "", fmt.Errorf("%w: too many labels", ErrBadName)
			}
			pos += 1 + int(b)
		}
	}
}

// finishName turns the canonical bytes accumulated since start into a
// borrowed Name, or falls back to the legacy parse for inputs the fast
// path could not canonicalise.
func (d *decoder) finishName(start, startPos, labels int, clean bool) (dnsname.Name, error) {
	if labels == 0 {
		return dnsname.Root, nil
	}
	nb := d.a.scratch[start:]
	// len(nb)-1 strips the trailing dot, matching Parse's length check.
	if clean && len(nb)-1 <= dnsname.MaxNameLen {
		return dnsname.BorrowCanonical(nb), nil
	}
	d.a.scratch = d.a.scratch[:start]
	return nameSlow(d.buf, startPos)
}

// nameSlow is the pre-arena name decoder, kept verbatim as the fallback
// for names outside the fast path's charset or length. The structural
// walk has already succeeded by the time it runs, so only label
// collection and the Parse outcome matter — both byte-identical to the
// legacy decoder, including error text.
func nameSlow(buf []byte, pos int) (dnsname.Name, error) {
	var labels []string
	jumps := 0
	for {
		if pos >= len(buf) {
			return "", fmt.Errorf("%w: name runs past buffer", ErrTruncatedMessage)
		}
		b := buf[pos]
		switch {
		case b == 0:
			return joinLabels(labels)
		case b&0xC0 == 0xC0:
			if pos+1 >= len(buf) {
				return "", fmt.Errorf("%w: pointer at end of buffer", ErrTruncatedMessage)
			}
			target := int(binary.BigEndian.Uint16(buf[pos:]) & 0x3FFF)
			if target >= pos {
				return "", fmt.Errorf("%w: forward pointer %d at offset %d", ErrBadPointer, target, pos)
			}
			if jumps++; jumps > 32 {
				return "", fmt.Errorf("%w: >32 jumps", ErrBadPointer)
			}
			pos = target
		case b&0xC0 != 0:
			return "", fmt.Errorf("%w: reserved label type %#x", ErrBadName, b&0xC0)
		default:
			if pos+1+int(b) > len(buf) {
				return "", fmt.Errorf("%w: label of %d bytes", ErrTruncatedMessage, b)
			}
			labels = append(labels, string(buf[pos+1:pos+1+int(b)]))
			if len(labels) > 127 {
				return "", fmt.Errorf("%w: too many labels", ErrBadName)
			}
			pos += 1 + int(b)
		}
	}
}

func joinLabels(labels []string) (dnsname.Name, error) {
	if len(labels) == 0 {
		return dnsname.Root, nil
	}
	n, err := dnsname.Parse(strings.Join(labels, "."))
	if err != nil {
		return "", fmt.Errorf("%w: %v", ErrBadName, err)
	}
	return n, nil
}

func (d *decoder) uint16() (uint16, error) {
	if d.pos+2 > len(d.buf) {
		return 0, fmt.Errorf("%w: reading uint16 at %d", ErrTruncatedMessage, d.pos)
	}
	v := binary.BigEndian.Uint16(d.buf[d.pos:])
	d.pos += 2
	return v, nil
}

func (d *decoder) uint32() (uint32, error) {
	if d.pos+4 > len(d.buf) {
		return 0, fmt.Errorf("%w: reading uint32 at %d", ErrTruncatedMessage, d.pos)
	}
	v := binary.BigEndian.Uint32(d.buf[d.pos:])
	d.pos += 4
	return v, nil
}

// decodeCSYNC parses a CSYNC RDATA ending at end. The bitmap is walked
// twice: a validating pass that counts set bits (so Types is allocated
// exactly once, at size), then the collection pass.
func (d *decoder) decodeCSYNC(end int) (CSYNCData, error) {
	serial, err := d.uint32()
	if err != nil {
		return CSYNCData{}, err
	}
	flags, err := d.uint16()
	if err != nil {
		return CSYNCData{}, err
	}
	data := CSYNCData{Serial: serial, Flags: flags}
	n := 0
	for pos := d.pos; pos < end; {
		if pos+2 > end {
			return CSYNCData{}, fmt.Errorf("%w: CSYNC bitmap header", ErrTruncatedMessage)
		}
		window := d.buf[pos]
		length := int(d.buf[pos+1])
		pos += 2
		if length == 0 || length > 32 || pos+length > end {
			return CSYNCData{}, fmt.Errorf("%w: CSYNC bitmap window %d length %d", ErrTruncatedMessage, window, length)
		}
		for octet := 0; octet < length; octet++ {
			n += bits.OnesCount8(d.buf[pos+octet])
		}
		pos += length
	}
	if n > 0 {
		data.Types = make([]Type, 0, n)
	}
	for d.pos < end {
		window := d.buf[d.pos]
		length := int(d.buf[d.pos+1])
		d.pos += 2
		for octet := 0; octet < length; octet++ {
			b := d.buf[d.pos+octet]
			for bit := 0; bit < 8; bit++ {
				if b&(0x80>>bit) != 0 {
					data.Types = append(data.Types,
						Type(uint16(window)<<8|uint16(octet*8+bit)))
				}
			}
		}
		d.pos += length
	}
	return data, nil
}
