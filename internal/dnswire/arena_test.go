package dnswire

import (
	"bytes"
	"fmt"
	"net/netip"
	"strings"
	"sync"
	"testing"

	"govdns/internal/dnsname"
)

// referralResponse builds the canonical hot-path message: a delegation
// with NS authority records and A glue, as every zone cut in a scan
// serves it.
func referralResponse() *Message {
	q := NewQuery(0x4242, dnsname.MustParse("city.gov.br"), TypeNS)
	resp := NewResponse(q)
	resp.Authority = []RR{
		{Name: "gov.br.", Class: ClassIN, TTL: 3600, Data: NSData{Host: "ns1.registro.br."}},
		{Name: "gov.br.", Class: ClassIN, TTL: 3600, Data: NSData{Host: "ns2.registro.br."}},
	}
	resp.Additional = []RR{
		{Name: "ns1.registro.br.", Class: ClassIN, TTL: 3600, Data: AData{Addr: netip.MustParseAddr("203.0.113.10")}},
		{Name: "ns2.registro.br.", Class: ClassIN, TTL: 3600, Data: AData{Addr: netip.MustParseAddr("203.0.113.11")}},
	}
	return resp
}

func mustEncode(t *testing.T, m *Message) []byte {
	t.Helper()
	wire, err := Encode(m)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	return wire
}

// TestWirePathZeroAlloc is the tentpole regression gate: steady-state
// decode+encode of a typical referral response — and building+encoding
// the query that elicits it — must not touch the heap. It runs in the
// ordinary `make check` test pass; under -race the allocation counter is
// not meaningful and the gate is skipped (the race pass covers the pool
// with TestPoolConcurrentExchange instead).
func TestWirePathZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	wire := mustEncode(t, referralResponse())
	qname := dnsname.MustParse("city.gov.br")

	a := DefaultPool.Get()
	defer a.Finish()

	// Warm the arena so buffer growth is behind us, then measure.
	for i := 0; i < 4; i++ {
		if _, err := a.Decode(wire); err != nil {
			t.Fatalf("Decode: %v", err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		q := a.NewQuery(0x4242, qname, TypeNS)
		if _, err := a.Encode(q); err != nil {
			t.Fatalf("Encode query: %v", err)
		}
		m, err := a.Decode(wire)
		if err != nil {
			t.Fatalf("Decode: %v", err)
		}
		if !m.IsReferral() {
			t.Fatal("response no longer classifies as a referral")
		}
		if _, err := a.EncodeUDP(m); err != nil {
			t.Fatalf("EncodeUDP: %v", err)
		}
	})
	if allocs != 0 {
		t.Fatalf("wire path allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestArenaDecodeMatchesOwnedDecode pins the arena fast path to the
// compatibility wrapper (which is itself arena + deep copy): both views
// of the same packet must be identical, including for names the fast
// path canonicalises inline (uppercase labels) or punts to the legacy
// parser (wildcards are fine; dots inside labels re-split).
func TestArenaDecodeMatchesOwnedDecode(t *testing.T) {
	msgs := []*Message{
		referralResponse(),
		sampleMessage(),
	}
	for i, msg := range msgs {
		wire := mustEncode(t, msg)
		owned, err := Decode(wire)
		if err != nil {
			t.Fatalf("msg %d: Decode: %v", i, err)
		}
		a := NewPool().Get()
		borrowed, err := a.Decode(wire)
		if err != nil {
			t.Fatalf("msg %d: arena Decode: %v", i, err)
		}
		assertMessagesEqual(t, borrowed, owned)
		a.Finish()
	}
}

// TestDecodeCanonicalisesCase checks the fast path lowercases uppercase
// wire labels exactly as the Parse-based decoder did.
func TestDecodeCanonicalisesCase(t *testing.T) {
	wire := mustEncode(t, NewQuery(7, dnsname.MustParse("city.gov.br"), TypeNS))
	// Uppercase the qname bytes in place: "city" starts after the header.
	idx := bytes.Index(wire, []byte("city"))
	if idx < 0 {
		t.Fatal("qname not found in wire image")
	}
	copy(wire[idx:], "CITY")
	m, err := Decode(wire)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got := m.Question().Name; got != "city.gov.br." {
		t.Fatalf("decoded name %q, want %q", got, "city.gov.br.")
	}
}

// TestDecodeSlowPathParity exercises names the fast path cannot take —
// a dot inside a wire label (legacy Parse re-splits and accepts it) and
// a forbidden character (legacy Parse rejects with specific text) — and
// asserts the arena decoder preserves both outcomes.
func TestDecodeSlowPathParity(t *testing.T) {
	// Hand-build a query whose qname is the single 5-byte label "a.b.c".
	header := []byte{0x00, 0x01, 0x00, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00}
	name := append([]byte{5}, []byte("a.b.c")...)
	wire := append(append(append([]byte{}, header...), name...), 0x00, 0x00, 0x02, 0x00, 0x01)
	m, err := Decode(wire)
	if err != nil {
		t.Fatalf("Decode dotted label: %v", err)
	}
	if got := m.Question().Name; got != "a.b.c." {
		t.Fatalf("dotted label decoded to %q, want %q", got, "a.b.c.")
	}

	bad := append([]byte{}, wire...)
	copy(bad[13:], "a!b.c")
	if _, err := Decode(bad); err == nil {
		t.Fatal("Decode accepted a label with '!'")
	} else if want := `contains '!'`; !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not preserve legacy text %q", err, want)
	}
}

// TestArenaAliasSafety is the borrow-contract regression test: names
// decoded from a packet must not alias the packet (mutating the source
// buffer after decode changes nothing), and Own()/Owned() copies must
// survive the arena being reused and recycled.
func TestArenaAliasSafety(t *testing.T) {
	pool := NewPool()
	wire := mustEncode(t, referralResponse())

	a := pool.Get()
	m, err := a.Decode(wire)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	borrowedHost := m.Authority[0].Data.(NSData).Host
	ownedHost := borrowedHost.Own()
	ownedMsg := m.Owned()
	ownedGlue := CloneRRs(m.Additional)

	// Mutate the source packet: decoded names live in the arena, not the
	// packet, so even borrowed views must be unaffected.
	for i := range wire {
		wire[i] = 0xFF
	}
	if borrowedHost != "ns1.registro.br." {
		t.Fatalf("borrowed name changed with its source packet: %q", borrowedHost)
	}

	// Reuse the arena: borrowed views are now invalid, owned copies must
	// hold. Decode a different message so the scratch is rewritten, then
	// one carrying different A records so the payload slabs are rewritten
	// too — a cloned AData whose interface cell still pointed into the
	// slab (the PR 6 re-boxing bug) flips to the new address here.
	other := mustEncode(t, NewQuery(9, dnsname.MustParse("zzzzzzzzzzzzzzz.example"), TypeA))
	if _, err := a.Decode(other); err != nil {
		t.Fatalf("Decode other: %v", err)
	}
	overwrite := NewResponse(NewQuery(10, "slab.example.", TypeA))
	overwrite.Answers = []RR{
		{Name: "slab.example.", Class: ClassIN, TTL: 1, Data: AData{Addr: netip.MustParseAddr("192.0.2.99")}},
		{Name: "slab.example.", Class: ClassIN, TTL: 1, Data: AData{Addr: netip.MustParseAddr("192.0.2.100")}},
	}
	if _, err := a.Decode(mustEncode(t, overwrite)); err != nil {
		t.Fatalf("Decode overwrite: %v", err)
	}
	a.Finish()

	if ownedHost != "ns1.registro.br." {
		t.Fatalf("owned name did not survive arena reuse: %q", ownedHost)
	}
	if got := ownedMsg.Authority[0].Data.(NSData).Host; got != "ns1.registro.br." {
		t.Fatalf("Owned() message did not survive arena reuse: %q", got)
	}
	if got := ownedMsg.Additional[0].Name; got != "ns1.registro.br." {
		t.Fatalf("Owned() record name did not survive arena reuse: %q", got)
	}
	for i, want := range []string{"203.0.113.10", "203.0.113.11"} {
		if got := ownedGlue[i].Data.(AData).Addr; got != netip.MustParseAddr(want) {
			t.Fatalf("CloneRRs glue %d did not survive slab rewrite: %v (want %s)", i, got, want)
		}
		if got := ownedMsg.Additional[i].Data.(AData).Addr; got != netip.MustParseAddr(want) {
			t.Fatalf("Owned() glue %d did not survive slab rewrite: %v (want %s)", i, got, want)
		}
	}
}

// TestPoolCountersAndDiscard covers the pool's obs counters: checkouts
// and recycles on the normal cycle, discard of an arena whose buffers
// outgrew the retention caps, and NoRecycle bypassing both.
func TestPoolCountersAndDiscard(t *testing.T) {
	pool := NewPool()
	a := pool.Get()
	a.Finish()
	if s := pool.Stats(); s.Checkouts != 1 || s.Recycles != 1 || s.Discards != 0 {
		t.Fatalf("after one cycle: %+v", s)
	}

	// Grow the output buffer past the retention cap: encoding a >64 KiB
	// message fails with ErrMessageTooLarge, but the buffer has grown.
	big := &Message{Header: Header{Response: true}}
	for i := 0; i < 300; i++ {
		big.Answers = append(big.Answers, RR{
			Name:  dnsname.MustParse(fmt.Sprintf("h%d.example", i)),
			Class: ClassIN,
			Data:  TXTData{Strings: []string{strings.Repeat("x", 255)}},
		})
	}
	a = pool.Get()
	if _, err := a.Encode(big); err != ErrMessageTooLarge {
		t.Fatalf("Encode: err=%v, want ErrMessageTooLarge", err)
	}
	a.Finish()
	if s := pool.Stats(); s.Checkouts != 2 || s.Recycles != 1 || s.Discards != 1 {
		t.Fatalf("after oversize cycle: %+v", s)
	}

	// Finish is idempotent.
	a.Finish()
	if s := pool.Stats(); s.Recycles != 1 || s.Discards != 1 {
		t.Fatalf("double Finish moved counters: %+v", s)
	}

	nr := &Pool{NoRecycle: true}
	b := nr.Get()
	b.Finish()
	if s := nr.Stats(); s.Checkouts != 1 || s.Recycles != 0 || s.Discards != 0 {
		t.Fatalf("NoRecycle cycle: %+v", s)
	}
}

// TestPoolConcurrentExchange hammers one pool from many goroutines under
// the race detector: every exchange checks out its own arena, so decodes
// and encodes must never observe each other.
func TestPoolConcurrentExchange(t *testing.T) {
	pool := NewPool()
	wire := mustEncode(t, referralResponse())
	qname := dnsname.MustParse("city.gov.br")

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				a := pool.Get()
				q := a.NewQuery(uint16(i), qname, TypeNS)
				if _, err := a.Encode(q); err != nil {
					t.Errorf("Encode query: %v", err)
				}
				m, err := a.Decode(wire)
				if err != nil {
					t.Errorf("Decode: %v", err)
				} else if got := m.Authority[0].Data.(NSData).Host; got != "ns1.registro.br." {
					t.Errorf("decoded host %q, want ns1.registro.br.", got)
				}
				a.Finish()
			}
		}()
	}
	wg.Wait()
	if s := pool.Stats(); s.Checkouts != 8*500 {
		t.Fatalf("checkouts %d, want %d", s.Checkouts, 8*500)
	}
}
