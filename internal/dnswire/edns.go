package dnswire

import "govdns/internal/dnsname"

// EDNS0 (RFC 6891) support, scoped to what the serving tier negotiates:
// the UDP payload size carried in an OPT pseudo-record's CLASS field.
// The OPT record rides the additional section with the root as its owner
// name; its TTL packs the extended RCODE, version, and flags, all of
// which this codebase leaves zero (plain RCODEs, version 0, DO clear),
// and its RDATA carries options we neither send nor interpret. Decoded
// OPT records travel through the generic OpaqueData path, so no slab or
// clone machinery needed to learn a new shape.

// DefaultEDNSBufSize is the payload size a reasonable initiator
// advertises: the DNS-flag-day value chosen to avoid IP fragmentation.
const DefaultEDNSBufSize = 1232

// OPTRecord builds an EDNS0 OPT pseudo-record advertising the given UDP
// payload size, with version 0, no flags, and no options — the shape
// both the serving tier's echo and a minimal client advertisement use.
func OPTRecord(udpSize uint16) RR {
	return RR{
		Name:  dnsname.Root,
		Class: Class(udpSize),
		TTL:   0,
		Data:  OpaqueData{RRType: TypeOPT},
	}
}

// EDNS returns the UDP payload size advertised by m's OPT pseudo-record,
// or ok=false when the additional section carries none. Values below
// MaxUDPPayload are returned as-is; clamping is the negotiating server's
// policy, not the codec's.
func (m *Message) EDNS() (udpSize uint16, ok bool) {
	for _, rr := range m.Additional {
		if rr.Type() == TypeOPT {
			return uint16(rr.Class), true
		}
	}
	return 0, false
}
