package dnswire

import (
	"errors"
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"

	"govdns/internal/dnsname"
)

func sampleMessage() *Message {
	m := NewQuery(0x1234, dnsname.MustParse("city.gov.br"), TypeNS)
	resp := NewResponse(m)
	resp.Header.Authoritative = true
	resp.Answers = []RR{
		{Name: "city.gov.br.", Class: ClassIN, TTL: 3600, Data: NSData{Host: "ns1.city.gov.br."}},
		{Name: "city.gov.br.", Class: ClassIN, TTL: 3600, Data: NSData{Host: "ns2.city.gov.br."}},
	}
	resp.Authority = []RR{
		{Name: "city.gov.br.", Class: ClassIN, TTL: 900, Data: SOAData{
			MName: "ns1.city.gov.br.", RName: "hostmaster.city.gov.br.",
			Serial: 2021040100, Refresh: 7200, Retry: 3600, Expire: 1209600, Minimum: 900,
		}},
	}
	resp.Additional = []RR{
		{Name: "ns1.city.gov.br.", Class: ClassIN, TTL: 3600, Data: AData{Addr: netip.MustParseAddr("203.0.113.5")}},
		{Name: "ns2.city.gov.br.", Class: ClassIN, TTL: 3600, Data: AData{Addr: netip.MustParseAddr("203.0.113.6")}},
		{Name: "ns1.city.gov.br.", Class: ClassIN, TTL: 3600, Data: AAAAData{Addr: netip.MustParseAddr("2001:db8::5")}},
		{Name: "city.gov.br.", Class: ClassIN, TTL: 60, Data: TXTData{Strings: []string{"v=spf1 -all", "b"}}},
		{Name: "city.gov.br.", Class: ClassIN, TTL: 60, Data: MXData{Preference: 10, Exchange: "mail.city.gov.br."}},
		{Name: "alias.city.gov.br.", Class: ClassIN, TTL: 60, Data: CNAMEData{Target: "www.city.gov.br."}},
		{Name: "5.113.0.203.in-addr.arpa.", Class: ClassIN, TTL: 60, Data: PTRData{Target: "ns1.city.gov.br."}},
	}
	return resp
}

func assertMessagesEqual(t *testing.T, got, want *Message) {
	t.Helper()
	if got.Header != want.Header {
		t.Fatalf("header mismatch:\n got %+v\nwant %+v", got.Header, want.Header)
	}
	if len(got.Questions) != len(want.Questions) {
		t.Fatalf("question count %d, want %d", len(got.Questions), len(want.Questions))
	}
	for i := range want.Questions {
		if got.Questions[i] != want.Questions[i] {
			t.Fatalf("question %d = %v, want %v", i, got.Questions[i], want.Questions[i])
		}
	}
	sections := []struct {
		name      string
		got, want []RR
	}{
		{"answer", got.Answers, want.Answers},
		{"authority", got.Authority, want.Authority},
		{"additional", got.Additional, want.Additional},
	}
	for _, s := range sections {
		if len(s.got) != len(s.want) {
			t.Fatalf("%s count %d, want %d", s.name, len(s.got), len(s.want))
		}
		for i := range s.want {
			if !s.got[i].Equal(s.want[i]) || s.got[i].TTL != s.want[i].TTL {
				t.Errorf("%s %d = %v, want %v", s.name, i, s.got[i], s.want[i])
			}
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	msg := sampleMessage()
	wire, err := Encode(msg)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := Decode(wire)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	assertMessagesEqual(t, got, msg)
}

func TestCompressionShrinksMessage(t *testing.T) {
	msg := sampleMessage()
	wire, err := Encode(msg)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	// Rough uncompressed size: every name spelled out fully.
	uncompressed := 12
	for _, q := range msg.Questions {
		uncompressed += len(q.Name) + 1 + 4
	}
	for _, rr := range append(append(append([]RR{}, msg.Answers...), msg.Authority...), msg.Additional...) {
		uncompressed += len(rr.Name) + 1 + 10 + 24
	}
	if len(wire) >= uncompressed {
		t.Errorf("compressed size %d not smaller than crude uncompressed estimate %d", len(wire), uncompressed)
	}
}

func TestDecodeRejectsShortHeader(t *testing.T) {
	if _, err := Decode(make([]byte, 11)); !errors.Is(err, ErrTruncatedMessage) {
		t.Errorf("Decode(short) error = %v, want ErrTruncatedMessage", err)
	}
}

func TestDecodeRejectsPointerLoop(t *testing.T) {
	// Header claiming one question, then a name that points at itself.
	wire := make([]byte, 12)
	wire[5] = 1 // QDCOUNT = 1
	wire = append(wire, 0xC0, 12)
	if _, err := Decode(wire); !errors.Is(err, ErrBadPointer) {
		t.Errorf("Decode(self-pointer) error = %v, want ErrBadPointer", err)
	}
}

func TestDecodeRejectsForwardPointer(t *testing.T) {
	wire := make([]byte, 12)
	wire[5] = 1
	wire = append(wire, 0xC0, 20) // points past itself
	if _, err := Decode(wire); !errors.Is(err, ErrBadPointer) {
		t.Errorf("Decode(forward pointer) error = %v, want ErrBadPointer", err)
	}
}

func TestDecodeRejectsTruncatedRDATA(t *testing.T) {
	msg := NewQuery(1, "example.com.", TypeA)
	resp := NewResponse(msg)
	resp.Answers = []RR{{Name: "example.com.", Class: ClassIN, TTL: 60,
		Data: AData{Addr: netip.MustParseAddr("192.0.2.1")}}}
	wire, err := Encode(resp)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if _, err := Decode(wire[:len(wire)-2]); !errors.Is(err, ErrTruncatedMessage) {
		t.Errorf("Decode(cut RDATA) error = %v, want ErrTruncatedMessage", err)
	}
}

func TestEncodeRejectsNilRData(t *testing.T) {
	msg := NewQuery(1, "example.com.", TypeA)
	resp := NewResponse(msg)
	resp.Answers = []RR{{Name: "example.com.", Class: ClassIN}}
	if _, err := Encode(resp); !errors.Is(err, ErrBadRecord) {
		t.Errorf("Encode(nil RDATA) error = %v, want ErrBadRecord", err)
	}
}

func TestEncodeRejectsMismatchedAddressFamilies(t *testing.T) {
	v6 := RR{Name: "x.example.", Class: ClassIN, Data: AData{Addr: netip.MustParseAddr("2001:db8::1")}}
	v4 := RR{Name: "x.example.", Class: ClassIN, Data: AAAAData{Addr: netip.MustParseAddr("192.0.2.1")}}
	for _, rr := range []RR{v6, v4} {
		m := &Message{Answers: []RR{rr}}
		if _, err := Encode(m); !errors.Is(err, ErrBadRecord) {
			t.Errorf("Encode(%v) error = %v, want ErrBadRecord", rr, err)
		}
	}
}

func TestEncodeUDPTruncates(t *testing.T) {
	msg := NewQuery(7, "big.example.", TypeTXT)
	resp := NewResponse(msg)
	for i := 0; i < 20; i++ {
		resp.Answers = append(resp.Answers, RR{
			Name: "big.example.", Class: ClassIN, TTL: 60,
			Data: TXTData{Strings: []string{string(make([]byte, 200))}},
		})
	}
	wire, err := EncodeUDP(resp)
	if err != nil {
		t.Fatalf("EncodeUDP: %v", err)
	}
	if len(wire) > MaxUDPPayload {
		t.Fatalf("EncodeUDP produced %d bytes > %d", len(wire), MaxUDPPayload)
	}
	got, err := Decode(wire)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !got.Header.Truncated {
		t.Error("TC bit not set on truncated response")
	}
	if len(got.Answers) != 0 {
		t.Errorf("truncated response carries %d answers", len(got.Answers))
	}
}

func TestOpaqueRoundTrip(t *testing.T) {
	msg := NewQuery(9, "x.example.", Type(99))
	resp := NewResponse(msg)
	resp.Answers = []RR{{Name: "x.example.", Class: ClassIN, TTL: 30,
		Data: OpaqueData{RRType: Type(99), Bytes: []byte{1, 2, 3, 4}}}}
	wire, err := Encode(resp)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := Decode(wire)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !got.Answers[0].Equal(resp.Answers[0]) {
		t.Errorf("opaque RR round trip: got %v, want %v", got.Answers[0], resp.Answers[0])
	}
}

func TestIsReferral(t *testing.T) {
	q := NewQuery(3, "sub.gov.cn.", TypeNS)
	ref := NewResponse(q)
	ref.Authority = []RR{{Name: "sub.gov.cn.", Class: ClassIN, TTL: 3600, Data: NSData{Host: "ns.sub.gov.cn."}}}
	if !ref.IsReferral() {
		t.Error("referral not recognized")
	}
	ans := NewResponse(q)
	ans.Header.Authoritative = true
	ans.Answers = ref.Authority
	if ans.IsReferral() {
		t.Error("authoritative answer misclassified as referral")
	}
}

// randomName builds a parseable random name from a seed.
func randomName(rng *rand.Rand) dnsname.Name {
	labels := []string{"ns1", "www", "city", "gov", "example", "br", "cn", "org", "a-b", "x_1"}
	depth := 1 + rng.Intn(4)
	n := dnsname.Root
	for i := 0; i < depth; i++ {
		n = n.MustPrepend(labels[rng.Intn(len(labels))])
	}
	return n
}

func TestQuickRoundTripRandomMessages(t *testing.T) {
	f := func(seed int64, idVal uint16, ttl uint32, nRecords uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		msg := NewQuery(idVal, randomName(rng), TypeNS)
		resp := NewResponse(msg)
		resp.Header.Authoritative = rng.Intn(2) == 0
		resp.Header.RCode = RCode(rng.Intn(6))
		for i := 0; i < int(nRecords%16); i++ {
			var data RData
			switch rng.Intn(4) {
			case 0:
				data = NSData{Host: randomName(rng)}
			case 1:
				data = AData{Addr: netip.AddrFrom4([4]byte{byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))})}
			case 2:
				data = CNAMEData{Target: randomName(rng)}
			default:
				data = TXTData{Strings: []string{"probe"}}
			}
			resp.Answers = append(resp.Answers, RR{Name: randomName(rng), Class: ClassIN, TTL: ttl, Data: data})
		}
		wire, err := Encode(resp)
		if err != nil {
			return false
		}
		got, err := Decode(wire)
		if err != nil {
			return false
		}
		if got.Header != resp.Header || len(got.Answers) != len(resp.Answers) {
			return false
		}
		for i := range resp.Answers {
			if !got.Answers[i].Equal(resp.Answers[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickDecodeNeverPanics(t *testing.T) {
	// Decoding arbitrary bytes must return an error or a message, never panic.
	f := func(raw []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Decode panicked on %x: %v", raw, r)
			}
		}()
		_, _ = Decode(raw)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestTypeStringRoundTrip(t *testing.T) {
	for _, typ := range []Type{TypeA, TypeNS, TypeCNAME, TypeSOA, TypePTR, TypeMX, TypeTXT, TypeAAAA, TypeANY} {
		got, ok := ParseType(typ.String())
		if !ok || got != typ {
			t.Errorf("ParseType(%q) = %v, %v", typ.String(), got, ok)
		}
	}
	if _, ok := ParseType("NOPE"); ok {
		t.Error("ParseType accepted an unknown mnemonic")
	}
}
