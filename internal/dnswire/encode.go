package dnswire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"

	"govdns/internal/dnsname"
)

// Encoding errors.
var (
	// ErrMessageTooLarge indicates the encoded message would exceed the
	// 64 KiB DNS message limit even before UDP truncation.
	ErrMessageTooLarge = errors.New("dnswire: message exceeds 64KiB")
	// ErrBadRecord indicates a record that cannot be encoded (e.g. nil
	// payload).
	ErrBadRecord = errors.New("dnswire: unencodable record")
)

// compSlots sizes the flat compression table. Each stored suffix is
// followed by at least two emitted bytes (its length octet and first
// label byte), so any message the serving tier can actually send over
// UDP (≤ MaxUDPPayload before truncation handling) stores at most ~256
// suffixes — the table cannot fill on those, keeping output
// byte-identical to the unbounded map it replaces. Must be a power of
// two.
const compSlots = 512

type compEntry struct {
	gen  uint64
	off  uint16
	name dnsname.Name
}

// compTable is a linear-probe map from canonical name suffix to the
// offset of its first occurrence, the compression-pointer target of
// RFC 1035 §4.1.4. Reset is O(1): bumping gen invalidates every entry
// without clearing it. Stale entries may pin arena-borrowed names from
// a previous message; they are never read (the generation check runs
// first) and the bytes they alias stay allocated with the arena, so the
// dangling references are memory-safe by construction.
type compTable struct {
	gen     uint64
	entries [compSlots]compEntry
}

// reset invalidates all entries. The zero table has gen 0, matching the
// zero entries, so the first reset must run before any lookup — Encode
// always resets up front.
func (t *compTable) reset() { t.gen++ }

// find probes for n. It returns its stored offset if present; otherwise
// slot is the insertion slot for n, or -1 when the table is full.
func (t *compTable) find(n dnsname.Name) (off int, found bool, slot int) {
	h := hashName(n)
	for i := 0; i < compSlots; i++ {
		idx := (h + uint32(i)) & (compSlots - 1)
		e := &t.entries[idx]
		if e.gen != t.gen {
			return 0, false, int(idx)
		}
		if e.name == n {
			return int(e.off), true, -1
		}
	}
	return 0, false, -1
}

// store records n at slot, as returned by find.
func (t *compTable) store(slot int, n dnsname.Name, off int) {
	t.entries[slot] = compEntry{gen: t.gen, off: uint16(off), name: n}
}

// hashName is FNV-1a over the name bytes.
func hashName(n dnsname.Name) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(n); i++ {
		h ^= uint32(n[i])
		h *= 16777619
	}
	return h
}

// encoder serialises a message with RFC 1035 §4.1.4 name compression,
// writing into its arena's output buffer.
type encoder struct {
	a *Arena
}

// Encode serialises m into an owned buffer. It is the allocating
// convenience form of Arena.Encode; hot paths encode on a pooled arena.
// The result may exceed MaxUDPPayload; callers sending over UDP should
// use EncodeUDP.
func Encode(m *Message) ([]byte, error) {
	a := DefaultPool.Get()
	defer a.Finish()
	wire, err := a.Encode(m)
	if err != nil {
		return nil, err
	}
	return append([]byte(nil), wire...), nil
}

// EncodeUDP is the allocating convenience form of Arena.EncodeUDP.
func EncodeUDP(m *Message) ([]byte, error) {
	a := DefaultPool.Get()
	defer a.Finish()
	wire, err := a.EncodeUDP(m)
	if err != nil {
		return nil, err
	}
	return append([]byte(nil), wire...), nil
}

// Encode serialises m into the arena's output buffer. The result aliases
// the arena and is valid until the next Encode on this arena or Finish
// (sending it on the wire or hashing it is fine; retaining it is not).
// The result may exceed MaxUDPPayload; callers sending over UDP should
// use EncodeUDP.
func (a *Arena) Encode(m *Message) ([]byte, error) {
	a.out = a.out[:0]
	a.comp.reset()
	e := encoder{a: a}
	if err := e.message(m); err != nil {
		return nil, err
	}
	if len(a.out) > 0xFFFF {
		return nil, ErrMessageTooLarge
	}
	return a.out, nil
}

// EncodeUDP serialises m for a UDP datagram on the arena. If the full
// encoding exceeds MaxUDPPayload, the answer/authority/additional
// sections are emptied and the TC bit is set, as an RFC 1035 server
// would. The result borrows the arena like Encode's.
func (a *Arena) EncodeUDP(m *Message) ([]byte, error) {
	wire, err := a.Encode(m)
	if err != nil {
		return nil, err
	}
	if len(wire) <= MaxUDPPayload {
		return wire, nil
	}
	truncated := Message{Header: m.Header, Questions: m.Questions}
	truncated.Header.Truncated = true
	return a.Encode(&truncated)
}

// EncodeLimit serialises m for a transport whose payload limit is max
// bytes. A message that fits encodes bit-identically to Encode.
// Otherwise the TC bit is set and whole records are dropped — the
// additional section first, then authority, then answers, each losing
// records from its tail — until the message fits, so the truncated
// output still decodes cleanly and every surviving RRset prefix is
// intact. A trailing OPT pseudo-record survives truncation (the client
// must still learn the responder's EDNS0 buffer size); the question
// section is never dropped, which cannot overflow any max >=
// MaxUDPPayload. The result borrows the arena like Encode's.
//
// This is the RFC-faithful alternative to EncodeUDP's empty-all-sections
// truncation: EncodeUDP keeps the legacy resolver-facing behaviour (its
// output is pinned by scan digests), EncodeLimit is the serving tier's
// encoder for negotiated EDNS0 limits and TCP.
func (a *Arena) EncodeLimit(m *Message, max int) ([]byte, error) {
	wire, err := a.Encode(m)
	if err != nil || len(wire) <= max {
		return wire, err
	}

	// Split a trailing OPT off the additional section so it can be
	// re-appended after the droppable records. (The serving tier always
	// places its OPT last; an OPT anywhere else is droppable like any
	// other additional record.)
	var opt []RR
	add := m.Additional
	if n := len(add); n > 0 && add[n-1].Type() == TypeOPT {
		opt = add[n-1 : n : n]
		add = add[: n-1 : n-1]
	}

	// encodeKept serialises m with only the first k records (in
	// answer/authority/additional section order) plus the OPT tail.
	// Dropping from the tail keeps every surviving record's compression
	// context intact, so encoded size is monotone in k.
	encodeKept := func(k int) ([]byte, error) {
		t := Message{Header: m.Header, Questions: m.Questions}
		t.Header.Truncated = true
		na := min(k, len(m.Answers))
		k -= na
		nu := min(k, len(m.Authority))
		k -= nu
		nd := min(k, len(add))
		t.Answers = m.Answers[:na]
		t.Authority = m.Authority[:nu]
		switch {
		case opt == nil:
			t.Additional = add[:nd]
		case nd == len(add):
			t.Additional = m.Additional // contiguous: plain records + OPT
		case nd == 0:
			t.Additional = opt
		default:
			t.Additional = append(append([]RR(nil), add[:nd]...), opt...)
		}
		return a.Encode(&t)
	}

	// Binary-search the largest record count that fits. lo is always a
	// known-fitting count (0 fits for any practical limit; if even the
	// header+question+OPT overflow max, best effort returns that).
	total := len(m.Answers) + len(m.Authority) + len(add)
	lo, hi := 0, total
	for lo < hi {
		mid := (lo + hi + 1) / 2
		w, err := encodeKept(mid)
		if err != nil {
			return nil, err
		}
		if len(w) <= max {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return encodeKept(lo)
}

func (e *encoder) message(m *Message) error {
	e.header(m)
	for _, q := range m.Questions {
		if err := e.question(q); err != nil {
			return err
		}
	}
	for _, section := range [][]RR{m.Answers, m.Authority, m.Additional} {
		for _, rr := range section {
			if err := e.record(rr); err != nil {
				return err
			}
		}
	}
	return nil
}

func (e *encoder) header(m *Message) {
	var flags uint16
	if m.Header.Response {
		flags |= 1 << 15
	}
	flags |= uint16(m.Header.Opcode&0xF) << 11
	if m.Header.Authoritative {
		flags |= 1 << 10
	}
	if m.Header.Truncated {
		flags |= 1 << 9
	}
	if m.Header.RecursionDesired {
		flags |= 1 << 8
	}
	if m.Header.RecursionAvailable {
		flags |= 1 << 7
	}
	flags |= uint16(m.Header.RCode & 0xF)

	e.uint16(m.Header.ID)
	e.uint16(flags)
	e.uint16(uint16(len(m.Questions)))
	e.uint16(uint16(len(m.Answers)))
	e.uint16(uint16(len(m.Authority)))
	e.uint16(uint16(len(m.Additional)))
}

func (e *encoder) question(q Question) error {
	if err := e.name(q.Name); err != nil {
		return err
	}
	e.uint16(uint16(q.Type))
	e.uint16(uint16(q.Class))
	return nil
}

func (e *encoder) record(rr RR) error {
	if rr.Data == nil {
		return fmt.Errorf("%w: nil RDATA for %q", ErrBadRecord, rr.Name)
	}
	if err := e.name(rr.Name); err != nil {
		return err
	}
	e.uint16(uint16(rr.Type()))
	e.uint16(uint16(rr.Class))
	e.uint32(rr.TTL)

	// Reserve RDLENGTH, encode RDATA, then patch the length in.
	lenAt := len(e.a.out)
	e.uint16(0)
	start := len(e.a.out)
	if err := e.rdata(rr.Data); err != nil {
		return err
	}
	rdlen := len(e.a.out) - start
	if rdlen > 0xFFFF {
		return fmt.Errorf("%w: RDATA of %q is %d bytes", ErrBadRecord, rr.Name, rdlen)
	}
	binary.BigEndian.PutUint16(e.a.out[lenAt:], uint16(rdlen))
	return nil
}

func (e *encoder) rdata(data RData) error {
	switch d := data.(type) {
	case NSData:
		return e.name(d.Host)
	case CNAMEData:
		return e.name(d.Target)
	case PTRData:
		return e.name(d.Target)
	case AData:
		if !d.Addr.Is4() {
			return fmt.Errorf("%w: A record with non-IPv4 address %s", ErrBadRecord, d.Addr)
		}
		a4 := d.Addr.As4()
		e.a.out = append(e.a.out, a4[:]...)
		return nil
	case AAAAData:
		if !d.Addr.Is6() || d.Addr.Is4() {
			return fmt.Errorf("%w: AAAA record with non-IPv6 address %s", ErrBadRecord, d.Addr)
		}
		a16 := d.Addr.As16()
		e.a.out = append(e.a.out, a16[:]...)
		return nil
	case MXData:
		e.uint16(d.Preference)
		return e.name(d.Exchange)
	case TXTData:
		if len(d.Strings) == 0 {
			return fmt.Errorf("%w: TXT record with no strings", ErrBadRecord)
		}
		for _, s := range d.Strings {
			if len(s) > 255 {
				return fmt.Errorf("%w: TXT string of %d bytes", ErrBadRecord, len(s))
			}
			e.a.out = append(e.a.out, byte(len(s)))
			e.a.out = append(e.a.out, s...)
		}
		return nil
	case SOAData:
		if err := e.name(d.MName); err != nil {
			return err
		}
		if err := e.name(d.RName); err != nil {
			return err
		}
		e.uint32(d.Serial)
		e.uint32(d.Refresh)
		e.uint32(d.Retry)
		e.uint32(d.Expire)
		e.uint32(d.Minimum)
		return nil
	case CSYNCData:
		return e.encodeCSYNC(d)
	case OpaqueData:
		e.a.out = append(e.a.out, d.Bytes...)
		return nil
	default:
		return fmt.Errorf("%w: unsupported RDATA type %T", ErrBadRecord, data)
	}
}

// name encodes a domain name with compression: the longest previously
// emitted suffix is replaced by a two-byte pointer.
func (e *encoder) name(n dnsname.Name) error {
	if n == "" {
		return fmt.Errorf("%w: empty name", ErrBadRecord)
	}
	for !n.IsRoot() {
		off, found, slot := e.a.comp.find(n)
		if found {
			e.uint16(0xC000 | uint16(off))
			return nil
		}
		// Only offsets below 0x3FFF fit in a pointer; beyond that the
		// suffix is emitted but not remembered, as the map did.
		if slot >= 0 && len(e.a.out) < 0x3FFF {
			e.a.comp.store(slot, n, len(e.a.out))
		}
		label := string(n)[:strings.IndexByte(string(n), '.')]
		e.a.out = append(e.a.out, byte(len(label)))
		e.a.out = append(e.a.out, label...)
		n = n.Parent()
	}
	e.a.out = append(e.a.out, 0)
	return nil
}

func (e *encoder) uint16(v uint16) {
	e.a.out = binary.BigEndian.AppendUint16(e.a.out, v)
}

func (e *encoder) uint32(v uint32) {
	e.a.out = binary.BigEndian.AppendUint32(e.a.out, v)
}
