package dnswire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"

	"govdns/internal/dnsname"
)

// Encoding errors.
var (
	// ErrMessageTooLarge indicates the encoded message would exceed the
	// 64 KiB DNS message limit even before UDP truncation.
	ErrMessageTooLarge = errors.New("dnswire: message exceeds 64KiB")
	// ErrBadRecord indicates a record that cannot be encoded (e.g. nil
	// payload).
	ErrBadRecord = errors.New("dnswire: unencodable record")
)

// encoder serialises a message with RFC 1035 §4.1.4 name compression.
type encoder struct {
	buf []byte
	// offsets maps a canonical name to the offset of its first occurrence,
	// for compression-pointer targets. Only offsets < 0x3FFF are usable.
	offsets map[dnsname.Name]int
}

// Encode serialises m into wire format. The result may exceed
// MaxUDPPayload; callers sending over UDP should use EncodeUDP.
func Encode(m *Message) ([]byte, error) {
	e := &encoder{
		buf:     make([]byte, 0, 512),
		offsets: make(map[dnsname.Name]int, 8),
	}
	if err := e.message(m); err != nil {
		return nil, err
	}
	if len(e.buf) > 0xFFFF {
		return nil, ErrMessageTooLarge
	}
	return e.buf, nil
}

// EncodeUDP serialises m for a UDP datagram. If the full encoding exceeds
// MaxUDPPayload, the answer/authority/additional sections are emptied and
// the TC bit is set, as an RFC 1035 server would.
func EncodeUDP(m *Message) ([]byte, error) {
	wire, err := Encode(m)
	if err != nil {
		return nil, err
	}
	if len(wire) <= MaxUDPPayload {
		return wire, nil
	}
	truncated := &Message{Header: m.Header, Questions: m.Questions}
	truncated.Header.Truncated = true
	return Encode(truncated)
}

func (e *encoder) message(m *Message) error {
	e.header(m)
	for _, q := range m.Questions {
		if err := e.question(q); err != nil {
			return err
		}
	}
	for _, section := range [][]RR{m.Answers, m.Authority, m.Additional} {
		for _, rr := range section {
			if err := e.record(rr); err != nil {
				return err
			}
		}
	}
	return nil
}

func (e *encoder) header(m *Message) {
	var flags uint16
	if m.Header.Response {
		flags |= 1 << 15
	}
	flags |= uint16(m.Header.Opcode&0xF) << 11
	if m.Header.Authoritative {
		flags |= 1 << 10
	}
	if m.Header.Truncated {
		flags |= 1 << 9
	}
	if m.Header.RecursionDesired {
		flags |= 1 << 8
	}
	if m.Header.RecursionAvailable {
		flags |= 1 << 7
	}
	flags |= uint16(m.Header.RCode & 0xF)

	e.uint16(m.Header.ID)
	e.uint16(flags)
	e.uint16(uint16(len(m.Questions)))
	e.uint16(uint16(len(m.Answers)))
	e.uint16(uint16(len(m.Authority)))
	e.uint16(uint16(len(m.Additional)))
}

func (e *encoder) question(q Question) error {
	if err := e.name(q.Name); err != nil {
		return err
	}
	e.uint16(uint16(q.Type))
	e.uint16(uint16(q.Class))
	return nil
}

func (e *encoder) record(rr RR) error {
	if rr.Data == nil {
		return fmt.Errorf("%w: nil RDATA for %q", ErrBadRecord, rr.Name)
	}
	if err := e.name(rr.Name); err != nil {
		return err
	}
	e.uint16(uint16(rr.Type()))
	e.uint16(uint16(rr.Class))
	e.uint32(rr.TTL)

	// Reserve RDLENGTH, encode RDATA, then patch the length in.
	lenAt := len(e.buf)
	e.uint16(0)
	start := len(e.buf)
	if err := e.rdata(rr.Data); err != nil {
		return err
	}
	rdlen := len(e.buf) - start
	if rdlen > 0xFFFF {
		return fmt.Errorf("%w: RDATA of %q is %d bytes", ErrBadRecord, rr.Name, rdlen)
	}
	binary.BigEndian.PutUint16(e.buf[lenAt:], uint16(rdlen))
	return nil
}

func (e *encoder) rdata(data RData) error {
	switch d := data.(type) {
	case NSData:
		return e.name(d.Host)
	case CNAMEData:
		return e.name(d.Target)
	case PTRData:
		return e.name(d.Target)
	case AData:
		if !d.Addr.Is4() {
			return fmt.Errorf("%w: A record with non-IPv4 address %s", ErrBadRecord, d.Addr)
		}
		a4 := d.Addr.As4()
		e.buf = append(e.buf, a4[:]...)
		return nil
	case AAAAData:
		if !d.Addr.Is6() || d.Addr.Is4() {
			return fmt.Errorf("%w: AAAA record with non-IPv6 address %s", ErrBadRecord, d.Addr)
		}
		a16 := d.Addr.As16()
		e.buf = append(e.buf, a16[:]...)
		return nil
	case MXData:
		e.uint16(d.Preference)
		return e.name(d.Exchange)
	case TXTData:
		if len(d.Strings) == 0 {
			return fmt.Errorf("%w: TXT record with no strings", ErrBadRecord)
		}
		for _, s := range d.Strings {
			if len(s) > 255 {
				return fmt.Errorf("%w: TXT string of %d bytes", ErrBadRecord, len(s))
			}
			e.buf = append(e.buf, byte(len(s)))
			e.buf = append(e.buf, s...)
		}
		return nil
	case SOAData:
		if err := e.name(d.MName); err != nil {
			return err
		}
		if err := e.name(d.RName); err != nil {
			return err
		}
		e.uint32(d.Serial)
		e.uint32(d.Refresh)
		e.uint32(d.Retry)
		e.uint32(d.Expire)
		e.uint32(d.Minimum)
		return nil
	case CSYNCData:
		return e.encodeCSYNC(d)
	case OpaqueData:
		e.buf = append(e.buf, d.Bytes...)
		return nil
	default:
		return fmt.Errorf("%w: unsupported RDATA type %T", ErrBadRecord, data)
	}
}

// name encodes a domain name with compression: the longest previously
// emitted suffix is replaced by a two-byte pointer.
func (e *encoder) name(n dnsname.Name) error {
	if n == "" {
		return fmt.Errorf("%w: empty name", ErrBadRecord)
	}
	for !n.IsRoot() {
		if off, ok := e.offsets[n]; ok {
			e.uint16(0xC000 | uint16(off))
			return nil
		}
		if len(e.buf) < 0x3FFF {
			e.offsets[n] = len(e.buf)
		}
		label := string(n)[:strings.IndexByte(string(n), '.')]
		e.buf = append(e.buf, byte(len(label)))
		e.buf = append(e.buf, label...)
		n = n.Parent()
	}
	e.buf = append(e.buf, 0)
	return nil
}

func (e *encoder) uint16(v uint16) {
	e.buf = binary.BigEndian.AppendUint16(e.buf, v)
}

func (e *encoder) uint32(v uint32) {
	e.buf = binary.BigEndian.AppendUint32(e.buf, v)
}
