// This file is an external test package so it can seed the fuzzer with
// chaos-mangled wire images: chaos imports dnswire, so the corpus
// builders cannot live in package dnswire itself.
package dnswire_test

import (
	"net/netip"
	"testing"

	"govdns/internal/chaos"
	"govdns/internal/dnswire"
)

// chaosCorpusMessage is a response exercising every section and the
// name-compression paths: question, answers (A + NS), authority (SOA),
// additional glue.
func chaosCorpusMessage() *dnswire.Message {
	q := dnswire.NewQuery(0x4d2, "www.city.gov.br.", dnswire.TypeA)
	resp := dnswire.NewResponse(q)
	resp.Header.Authoritative = true
	resp.Answers = []dnswire.RR{
		{Name: "www.city.gov.br.", Class: dnswire.ClassIN, TTL: 300,
			Data: dnswire.AData{Addr: netip.MustParseAddr("4.0.0.9")}},
		{Name: "city.gov.br.", Class: dnswire.ClassIN, TTL: 3600,
			Data: dnswire.NSData{Host: "ns1.city.gov.br."}},
	}
	resp.Authority = []dnswire.RR{
		{Name: "city.gov.br.", Class: dnswire.ClassIN, TTL: 3600,
			Data: dnswire.SOAData{MName: "ns1.city.gov.br.", RName: "hostmaster.city.gov.br.",
				Serial: 2026010100, Refresh: 7200, Retry: 1800, Expire: 604800, Minimum: 300}},
	}
	resp.Additional = []dnswire.RR{
		{Name: "ns1.city.gov.br.", Class: dnswire.ClassIN, TTL: 3600,
			Data: dnswire.AData{Addr: netip.MustParseAddr("4.0.0.1")}},
	}
	return resp
}

// FuzzMessageRoundTrip round-trips whole messages — all four sections —
// through Decode→Encode→Decode. The seed corpus is the chaos package's
// own wire mutators applied to a realistic response, so the fuzzer
// starts exactly on the damage shapes the resolver must survive:
// flipped transaction IDs, TC-bit truncation, RCODE rewrites, question
// rewrites, and multi-byte mangling.
func FuzzMessageRoundTrip(f *testing.F) {
	msg := chaosCorpusMessage()
	wire, err := dnswire.Encode(msg)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(wire)
	f.Add(chaos.CorruptQIDWire(wire))
	f.Add(chaos.TruncateWire(wire))
	f.Add(chaos.FlipRCodeWire(wire, dnswire.RCodeServFail))
	f.Add(chaos.MismatchQuestionWire(wire))
	for h := uint64(0); h < 8; h++ {
		f.Add(chaos.MangleWire(h*0x9e3779b97f4a7c15+1, wire))
	}
	query, err := dnswire.Encode(dnswire.NewQuery(9, "single.gov.br.", dnswire.TypeNS))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(query)
	f.Add(chaos.MangleWire(42, query))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := dnswire.Decode(data)
		if err != nil {
			return // rejection is fine; panics are not
		}
		rewire, err := dnswire.Encode(m)
		if err != nil {
			return // un-encodable decodes must fail cleanly, not panic
		}
		m2, err := dnswire.Decode(rewire)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if m.Header != m2.Header {
			t.Fatalf("headers differ after round trip: %+v vs %+v", m.Header, m2.Header)
		}
		if len(m.Questions) != len(m2.Questions) {
			t.Fatalf("question counts differ: %d vs %d", len(m.Questions), len(m2.Questions))
		}
		for i := range m.Questions {
			if m.Questions[i] != m2.Questions[i] {
				t.Fatalf("question %d differs: %v vs %v", i, m.Questions[i], m2.Questions[i])
			}
		}
		sections := []struct {
			name string
			a, b []dnswire.RR
		}{
			{"answer", m.Answers, m2.Answers},
			{"authority", m.Authority, m2.Authority},
			{"additional", m.Additional, m2.Additional},
		}
		for _, s := range sections {
			if len(s.a) != len(s.b) {
				t.Fatalf("%s counts differ: %d vs %d", s.name, len(s.a), len(s.b))
			}
			for i := range s.a {
				if !s.a[i].Equal(s.b[i]) {
					t.Fatalf("%s record %d differs: %v vs %v", s.name, i, s.a[i], s.b[i])
				}
			}
		}
	})
}
