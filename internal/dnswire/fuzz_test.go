package dnswire

import (
	"bytes"
	"testing"

	"govdns/internal/dnsname"
)

// FuzzDecode drives the wire decoder with arbitrary bytes. Without -fuzz
// it runs the seed corpus as regular tests; with
// `go test -fuzz=FuzzDecode ./internal/dnswire` it explores further. The
// invariants: never panic, and anything that decodes must re-encode and
// decode again to an equal message (up to compression differences).
func FuzzDecode(f *testing.F) {
	// Seed corpus: a healthy response, a referral, and tricky inputs.
	msg := sampleMessage()
	wire, err := Encode(msg)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(wire)
	f.Add([]byte{})
	f.Add(make([]byte, 12))
	f.Add([]byte{0, 1, 0x80, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0xC0, 12})
	query, err := Encode(NewQuery(7, "x.gov.br.", TypeNS))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(query)

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			return // rejection is fine; panics are not
		}
		// Re-encode what decoded. Encoding may legitimately fail for
		// messages whose section counts exceed what the body carried
		// opaquely, but must not panic.
		rewire, err := Encode(m)
		if err != nil {
			return
		}
		m2, err := Decode(rewire)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if m.Header != m2.Header {
			t.Fatalf("headers differ after round trip: %+v vs %+v", m.Header, m2.Header)
		}
		if len(m.Answers) != len(m2.Answers) {
			t.Fatalf("answer counts differ: %d vs %d", len(m.Answers), len(m2.Answers))
		}
		for i := range m.Answers {
			if !m.Answers[i].Equal(m2.Answers[i]) {
				t.Fatalf("answer %d differs", i)
			}
		}
	})
}

// FuzzZoneFileRoundTrip is in package zone; this companion checks that
// name compression in Encode never produces output Decode rejects for
// messages built from decoded-then-valid names.
func FuzzEncodeNames(f *testing.F) {
	f.Add([]byte("www.gov.br"), []byte("ns1.city.gov.br"))
	f.Fuzz(func(t *testing.T, a, b []byte) {
		// Only printable ASCII inputs form candidate names.
		if bytes.ContainsFunc(a, func(r rune) bool { return r < '!' || r > '~' }) ||
			bytes.ContainsFunc(b, func(r rune) bool { return r < '!' || r > '~' }) {
			return
		}
		nameA, errA := dnsname.Parse(string(a))
		nameB, errB := dnsname.Parse(string(b))
		if errA != nil || errB != nil {
			return
		}
		msg := NewQuery(1, nameA, TypeNS)
		resp := NewResponse(msg)
		resp.Answers = []RR{{Name: nameA, Class: ClassIN, TTL: 60, Data: NSData{Host: nameB}}}
		wire, err := Encode(resp)
		if err != nil {
			t.Fatalf("Encode of valid names failed: %v", err)
		}
		got, err := Decode(wire)
		if err != nil {
			t.Fatalf("Decode of own encoding failed: %v", err)
		}
		if got.Answers[0].Name != nameA || got.Answers[0].Data.(NSData).Host != nameB {
			t.Fatal("names corrupted in round trip")
		}
	})
}
