// Package dnswire implements the DNS message wire format of RFC 1035:
// header, question and resource-record encoding and decoding, including
// domain-name compression. It supports the record types the measurement
// study needs (A, NS, CNAME, SOA, PTR, MX, TXT, AAAA) and degrades
// gracefully on unknown types by carrying their RDATA opaquely.
package dnswire

import "fmt"

// Type is a DNS RR type code.
type Type uint16

// Resource record types used by the study.
const (
	TypeA     Type = 1
	TypeNS    Type = 2
	TypeCNAME Type = 5
	TypeSOA   Type = 6
	TypePTR   Type = 12
	TypeMX    Type = 15
	TypeTXT   Type = 16
	TypeAAAA  Type = 28
	// TypeOPT is the EDNS0 OPT pseudo-record (RFC 6891). It never lives
	// in a zone; it rides the additional section to negotiate the UDP
	// payload size (see edns.go).
	TypeOPT Type = 41
	// TypeAXFR is the full-zone-transfer QTYPE (meta query type only;
	// answered over TCP, see internal/authserver xfr.go).
	TypeAXFR Type = 252
	// TypeANY is the QTYPE "*" (meta query type only).
	TypeANY Type = 255
)

// String returns the standard mnemonic for t.
func (t Type) String() string {
	switch t {
	case TypeA:
		return "A"
	case TypeNS:
		return "NS"
	case TypeCNAME:
		return "CNAME"
	case TypeSOA:
		return "SOA"
	case TypePTR:
		return "PTR"
	case TypeMX:
		return "MX"
	case TypeTXT:
		return "TXT"
	case TypeAAAA:
		return "AAAA"
	case TypeCSYNC:
		return "CSYNC"
	case TypeOPT:
		return "OPT"
	case TypeAXFR:
		return "AXFR"
	case TypeANY:
		return "ANY"
	default:
		return fmt.Sprintf("TYPE%d", uint16(t))
	}
}

// ParseType maps a mnemonic back to a Type. It reports false for unknown
// mnemonics.
func ParseType(s string) (Type, bool) {
	switch s {
	case "A":
		return TypeA, true
	case "NS":
		return TypeNS, true
	case "CNAME":
		return TypeCNAME, true
	case "SOA":
		return TypeSOA, true
	case "PTR":
		return TypePTR, true
	case "MX":
		return TypeMX, true
	case "TXT":
		return TypeTXT, true
	case "AAAA":
		return TypeAAAA, true
	case "CSYNC":
		return TypeCSYNC, true
	case "OPT":
		return TypeOPT, true
	case "AXFR":
		return TypeAXFR, true
	case "ANY":
		return TypeANY, true
	default:
		return 0, false
	}
}

// Class is a DNS class code. Only IN is used in practice.
type Class uint16

// Classes.
const (
	ClassIN  Class = 1
	ClassANY Class = 255
)

// String returns the mnemonic for c.
func (c Class) String() string {
	switch c {
	case ClassIN:
		return "IN"
	case ClassANY:
		return "ANY"
	default:
		return fmt.Sprintf("CLASS%d", uint16(c))
	}
}

// RCode is a DNS response code.
type RCode uint8

// Response codes (RFC 1035 §4.1.1).
const (
	RCodeNoError  RCode = 0
	RCodeFormErr  RCode = 1
	RCodeServFail RCode = 2
	RCodeNXDomain RCode = 3
	RCodeNotImp   RCode = 4
	RCodeRefused  RCode = 5
)

// String returns the mnemonic for rc.
func (rc RCode) String() string {
	switch rc {
	case RCodeNoError:
		return "NOERROR"
	case RCodeFormErr:
		return "FORMERR"
	case RCodeServFail:
		return "SERVFAIL"
	case RCodeNXDomain:
		return "NXDOMAIN"
	case RCodeNotImp:
		return "NOTIMP"
	case RCodeRefused:
		return "REFUSED"
	default:
		return fmt.Sprintf("RCODE%d", uint8(rc))
	}
}

// Opcode is a DNS operation code.
type Opcode uint8

// Opcodes. Only standard queries appear in the study.
const (
	OpcodeQuery  Opcode = 0
	OpcodeStatus Opcode = 2
)

// MaxUDPPayload is the classic DNS-over-UDP payload limit. The codec
// truncates answers beyond this and sets the TC bit, which the resolver
// surfaces as an error (the study's lookups all fit comfortably).
// EDNS0 raises the limit per-exchange (see edns.go); TC-bit fallback to
// TCP lifts it to MaxTCPPayload.
const MaxUDPPayload = 512

// MaxTCPPayload is the DNS message size limit over TCP, fixed by the
// two-byte length prefix of RFC 1035 §4.2.2 framing.
const MaxTCPPayload = 0xFFFF
