package dnswire

import (
	"fmt"
	"strings"

	"govdns/internal/dnsname"
)

// Header is the fixed 12-byte DNS message header in decoded form.
type Header struct {
	ID                 uint16
	Response           bool
	Opcode             Opcode
	Authoritative      bool
	Truncated          bool
	RecursionDesired   bool
	RecursionAvailable bool
	RCode              RCode
}

// Question is the single entry of a DNS question section.
type Question struct {
	Name  dnsname.Name
	Type  Type
	Class Class
}

// String renders the question dig-style.
func (q Question) String() string {
	return fmt.Sprintf("%s %s %s", q.Name, q.Class, q.Type)
}

// Message is a decoded DNS message.
type Message struct {
	Header     Header
	Questions  []Question
	Answers    []RR
	Authority  []RR
	Additional []RR
}

// NewQuery builds a standard query message for (name, type) with the given
// transaction ID. Queries to authoritative servers do not request
// recursion, matching the measurement client's behaviour.
func NewQuery(id uint16, name dnsname.Name, qtype Type) *Message {
	return &Message{
		Header: Header{
			ID:     id,
			Opcode: OpcodeQuery,
		},
		Questions: []Question{{Name: name, Type: qtype, Class: ClassIN}},
	}
}

// NewResponse builds a response skeleton for query q, copying the ID,
// question, and recursion-desired flag.
func NewResponse(q *Message) *Message {
	resp := &Message{
		Header: Header{
			ID:               q.Header.ID,
			Response:         true,
			Opcode:           q.Header.Opcode,
			RecursionDesired: q.Header.RecursionDesired,
		},
	}
	resp.Questions = append(resp.Questions, q.Questions...)
	return resp
}

// Question returns the first question, or a zero Question if none exists.
// Virtually all real DNS messages carry exactly one question.
func (m *Message) Question() Question {
	if len(m.Questions) == 0 {
		return Question{}
	}
	return m.Questions[0]
}

// AnswersOfType returns the answer-section records of the given type.
func (m *Message) AnswersOfType(t Type) []RR {
	return recordsOfType(m.Answers, t)
}

// AuthorityOfType returns the authority-section records of the given type.
func (m *Message) AuthorityOfType(t Type) []RR {
	return recordsOfType(m.Authority, t)
}

// AdditionalOfType returns the additional-section records of the given type.
func (m *Message) AdditionalOfType(t Type) []RR {
	return recordsOfType(m.Additional, t)
}

// recordsOfType counts matches first so the result is allocated exactly
// once at size, and returns nil when nothing matches — referral
// classification calls this on every delegation response.
func recordsOfType(rrs []RR, t Type) []RR {
	n := 0
	for _, rr := range rrs {
		if rr.Type() == t {
			n++
		}
	}
	if n == 0 {
		return nil
	}
	out := make([]RR, 0, n)
	for _, rr := range rrs {
		if rr.Type() == t {
			out = append(out, rr)
		}
	}
	return out
}

// hasType reports whether any record in rrs has type t, without
// materialising the filtered slice.
func hasType(rrs []RR, t Type) bool {
	for _, rr := range rrs {
		if rr.Type() == t {
			return true
		}
	}
	return false
}

// IsReferral reports whether m is a delegation response: no answers, but NS
// records in the authority section for a zone below the queried server's
// apex, and the AA bit clear on the delegation point.
func (m *Message) IsReferral() bool {
	return m.Header.Response &&
		m.Header.RCode == RCodeNoError &&
		len(m.Answers) == 0 &&
		hasType(m.Authority, TypeNS)
}

// String renders a dig-like multi-line summary, useful in logs and
// examples.
func (m *Message) String() string {
	var b strings.Builder
	kind := "query"
	if m.Header.Response {
		kind = "response"
	}
	fmt.Fprintf(&b, ";; %s id=%d opcode=%d rcode=%s aa=%v tc=%v rd=%v ra=%v\n",
		kind, m.Header.ID, m.Header.Opcode, m.Header.RCode,
		m.Header.Authoritative, m.Header.Truncated,
		m.Header.RecursionDesired, m.Header.RecursionAvailable)
	for _, q := range m.Questions {
		fmt.Fprintf(&b, ";; question: %s\n", q)
	}
	writeSection(&b, "answer", m.Answers)
	writeSection(&b, "authority", m.Authority)
	writeSection(&b, "additional", m.Additional)
	return b.String()
}

func writeSection(b *strings.Builder, label string, rrs []RR) {
	for _, rr := range rrs {
		fmt.Fprintf(b, ";; %s: %s\n", label, rr)
	}
}
