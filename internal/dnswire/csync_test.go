package dnswire

import (
	"testing"
	"testing/quick"
)

func TestCSYNCRoundTrip(t *testing.T) {
	data := CSYNCData{
		Serial: 2021041501,
		Flags:  CSYNCImmediate | CSYNCSOAMinimum,
		Types:  []Type{TypeNS, TypeA, TypeAAAA},
	}
	msg := NewQuery(1, "child.gov.br.", TypeCSYNC)
	resp := NewResponse(msg)
	resp.Answers = []RR{{Name: "child.gov.br.", Class: ClassIN, TTL: 60, Data: data}}

	wire, err := Encode(resp)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := Decode(wire)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !got.Answers[0].Equal(resp.Answers[0]) {
		t.Errorf("round trip: got %v, want %v", got.Answers[0], resp.Answers[0])
	}
	gotData := got.Answers[0].Data.(CSYNCData)
	if !gotData.Immediate() {
		t.Error("Immediate flag lost")
	}
	if !gotData.Covers(TypeNS) || gotData.Covers(TypeTXT) {
		t.Errorf("Covers wrong: %v", gotData.Types)
	}
}

func TestCSYNCEmptyTypeSet(t *testing.T) {
	data := CSYNCData{Serial: 7, Flags: 0}
	msg := &Message{Answers: []RR{{Name: "x.example.", Class: ClassIN, Data: data}}}
	wire, err := Encode(msg)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := Decode(wire)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	gotData := got.Answers[0].Data.(CSYNCData)
	if gotData.Serial != 7 || len(gotData.Types) != 0 {
		t.Errorf("got %+v", gotData)
	}
}

func TestCSYNCHighTypeWindow(t *testing.T) {
	// Type 257 (CAA) lives in bitmap window 1.
	data := CSYNCData{Serial: 1, Types: []Type{TypeNS, Type(257)}}
	msg := &Message{Answers: []RR{{Name: "x.example.", Class: ClassIN, Data: data}}}
	wire, err := Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	gotData := got.Answers[0].Data.(CSYNCData)
	if len(gotData.Types) != 2 || gotData.Types[0] != TypeNS || gotData.Types[1] != Type(257) {
		t.Errorf("Types = %v", gotData.Types)
	}
}

func TestCSYNCQuickRoundTrip(t *testing.T) {
	f := func(serial uint32, flags uint16, raw []uint16) bool {
		seen := make(map[Type]bool)
		var types []Type
		for _, r := range raw {
			typ := Type(r % 300)
			if !seen[typ] {
				seen[typ] = true
				types = append(types, typ)
			}
		}
		data := CSYNCData{Serial: serial, Flags: flags, Types: types}
		msg := &Message{Answers: []RR{{Name: "x.example.", Class: ClassIN, Data: data}}}
		wire, err := Encode(msg)
		if err != nil {
			return false
		}
		got, err := Decode(wire)
		if err != nil {
			return false
		}
		gotData, ok := got.Answers[0].Data.(CSYNCData)
		if !ok || gotData.Serial != serial || gotData.Flags != flags {
			return false
		}
		if len(gotData.Types) != len(types) {
			return false
		}
		for _, typ := range types {
			if !gotData.Covers(typ) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCSYNCTypeString(t *testing.T) {
	if TypeCSYNC.String() != "CSYNC" {
		t.Errorf("String = %q", TypeCSYNC.String())
	}
	typ, ok := ParseType("CSYNC")
	if !ok || typ != TypeCSYNC {
		t.Errorf("ParseType = %v, %v", typ, ok)
	}
}
