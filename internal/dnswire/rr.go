package dnswire

import (
	"fmt"
	"net/netip"
	"strings"

	"govdns/internal/dnsname"
)

// RData is the type-specific payload of a resource record.
type RData interface {
	// Type returns the RR type this payload belongs to.
	Type() Type
	// String returns the zone-file presentation of the payload.
	String() string
	// equal reports deep equality with another payload of the same type.
	equal(RData) bool
}

// RR is a DNS resource record.
type RR struct {
	Name  dnsname.Name
	Class Class
	TTL   uint32
	Data  RData
}

// Type returns the record's type, derived from its payload. Records with a
// nil payload report type 0.
func (rr RR) Type() Type {
	if rr.Data == nil {
		return 0
	}
	return rr.Data.Type()
}

// String renders the record in zone-file form.
func (rr RR) String() string {
	return fmt.Sprintf("%s %d %s %s %s", rr.Name, rr.TTL, rr.Class, rr.Type(), rr.Data)
}

// Equal reports whether two records have the same name, class, type and
// payload. TTL is ignored, matching RRset semantics.
func (rr RR) Equal(other RR) bool {
	if rr.Name != other.Name || rr.Class != other.Class || rr.Type() != other.Type() {
		return false
	}
	if rr.Data == nil || other.Data == nil {
		return rr.Data == other.Data
	}
	return rr.Data.equal(other.Data)
}

// NSData is the payload of an NS record.
type NSData struct {
	Host dnsname.Name
}

// Type implements RData.
func (NSData) Type() Type { return TypeNS }

// String implements RData.
func (d NSData) String() string { return d.Host.String() }

func (d NSData) equal(o RData) bool {
	od, ok := o.(NSData)
	return ok && od.Host == d.Host
}

// AData is the payload of an A record.
type AData struct {
	Addr netip.Addr
}

// Type implements RData.
func (AData) Type() Type { return TypeA }

// String implements RData.
func (d AData) String() string { return d.Addr.String() }

func (d AData) equal(o RData) bool {
	od, ok := o.(AData)
	return ok && od.Addr == d.Addr
}

// AAAAData is the payload of an AAAA record.
type AAAAData struct {
	Addr netip.Addr
}

// Type implements RData.
func (AAAAData) Type() Type { return TypeAAAA }

// String implements RData.
func (d AAAAData) String() string { return d.Addr.String() }

func (d AAAAData) equal(o RData) bool {
	od, ok := o.(AAAAData)
	return ok && od.Addr == d.Addr
}

// CNAMEData is the payload of a CNAME record.
type CNAMEData struct {
	Target dnsname.Name
}

// Type implements RData.
func (CNAMEData) Type() Type { return TypeCNAME }

// String implements RData.
func (d CNAMEData) String() string { return d.Target.String() }

func (d CNAMEData) equal(o RData) bool {
	od, ok := o.(CNAMEData)
	return ok && od.Target == d.Target
}

// PTRData is the payload of a PTR record.
type PTRData struct {
	Target dnsname.Name
}

// Type implements RData.
func (PTRData) Type() Type { return TypePTR }

// String implements RData.
func (d PTRData) String() string { return d.Target.String() }

func (d PTRData) equal(o RData) bool {
	od, ok := o.(PTRData)
	return ok && od.Target == d.Target
}

// MXData is the payload of an MX record.
type MXData struct {
	Preference uint16
	Exchange   dnsname.Name
}

// Type implements RData.
func (MXData) Type() Type { return TypeMX }

// String implements RData.
func (d MXData) String() string { return fmt.Sprintf("%d %s", d.Preference, d.Exchange) }

func (d MXData) equal(o RData) bool {
	od, ok := o.(MXData)
	return ok && od == d
}

// TXTData is the payload of a TXT record (one or more character strings).
type TXTData struct {
	Strings []string
}

// Type implements RData.
func (TXTData) Type() Type { return TypeTXT }

// String implements RData.
func (d TXTData) String() string {
	parts := make([]string, len(d.Strings))
	for i, s := range d.Strings {
		parts[i] = fmt.Sprintf("%q", s)
	}
	return strings.Join(parts, " ")
}

func (d TXTData) equal(o RData) bool {
	od, ok := o.(TXTData)
	if !ok || len(od.Strings) != len(d.Strings) {
		return false
	}
	for i := range d.Strings {
		if d.Strings[i] != od.Strings[i] {
			return false
		}
	}
	return true
}

// SOAData is the payload of an SOA record. The study's provider
// identification inspects MName and RName.
type SOAData struct {
	MName   dnsname.Name
	RName   dnsname.Name
	Serial  uint32
	Refresh uint32
	Retry   uint32
	Expire  uint32
	Minimum uint32
}

// Type implements RData.
func (SOAData) Type() Type { return TypeSOA }

// String implements RData.
func (d SOAData) String() string {
	return fmt.Sprintf("%s %s %d %d %d %d %d",
		d.MName, d.RName, d.Serial, d.Refresh, d.Retry, d.Expire, d.Minimum)
}

func (d SOAData) equal(o RData) bool {
	od, ok := o.(SOAData)
	return ok && od == d
}

// OpaqueData carries RDATA of a type the codec does not interpret.
type OpaqueData struct {
	RRType Type
	Bytes  []byte
}

// Type implements RData.
func (d OpaqueData) Type() Type { return d.RRType }

// String implements RData.
func (d OpaqueData) String() string { return fmt.Sprintf("\\# %d %x", len(d.Bytes), d.Bytes) }

func (d OpaqueData) equal(o RData) bool {
	od, ok := o.(OpaqueData)
	if !ok || od.RRType != d.RRType || len(od.Bytes) != len(d.Bytes) {
		return false
	}
	for i := range d.Bytes {
		if d.Bytes[i] != od.Bytes[i] {
			return false
		}
	}
	return true
}

// Interface compliance checks.
var (
	_ RData = NSData{}
	_ RData = AData{}
	_ RData = AAAAData{}
	_ RData = CNAMEData{}
	_ RData = PTRData{}
	_ RData = MXData{}
	_ RData = TXTData{}
	_ RData = SOAData{}
	_ RData = OpaqueData{}
)
