package dnswire

import (
	"fmt"
	"slices"
	"strings"
)

// TypeCSYNC is the Child-to-Parent Synchronization record (RFC 7477),
// which the paper's § V-B discusses as a remedy for parent/child
// inconsistency: a child zone publishes which of its records the parent
// should copy.
const TypeCSYNC Type = 62

// CSYNC flag bits (RFC 7477 § 2.1.1).
const (
	// CSYNCImmediate allows the parent to act without out-of-band
	// confirmation.
	CSYNCImmediate uint16 = 1 << 0
	// CSYNCSOAMinimum requires the child SOA serial to be at least the
	// CSYNC SOA serial before processing.
	CSYNCSOAMinimum uint16 = 1 << 1
)

// CSYNCData is the RDATA of a CSYNC record: the child's SOA serial at
// publication, processing flags, and the set of record types the parent
// should synchronize (typically NS, A, AAAA).
type CSYNCData struct {
	Serial uint32
	Flags  uint16
	// Types is the sorted list of types to synchronize.
	Types []Type
}

// Type implements RData.
func (CSYNCData) Type() Type { return TypeCSYNC }

// Immediate reports whether the parent may synchronize without
// out-of-band confirmation.
func (d CSYNCData) Immediate() bool { return d.Flags&CSYNCImmediate != 0 }

// Covers reports whether t is listed for synchronization.
func (d CSYNCData) Covers(t Type) bool {
	for _, listed := range d.Types {
		if listed == t {
			return true
		}
	}
	return false
}

// String implements RData.
func (d CSYNCData) String() string {
	parts := make([]string, 0, len(d.Types)+2)
	parts = append(parts, fmt.Sprint(d.Serial), fmt.Sprint(d.Flags))
	for _, t := range d.Types {
		parts = append(parts, t.String())
	}
	return strings.Join(parts, " ")
}

// equal compares the type lists as sets: the wire format stores them as
// a bitmap, so order carries no meaning.
func (d CSYNCData) equal(o RData) bool {
	od, ok := o.(CSYNCData)
	if !ok || od.Serial != d.Serial || od.Flags != d.Flags || len(od.Types) != len(d.Types) {
		return false
	}
	set := make(map[Type]bool, len(d.Types))
	for _, t := range d.Types {
		set[t] = true
	}
	for _, t := range od.Types {
		if !set[t] {
			return false
		}
	}
	return true
}

var _ RData = CSYNCData{}

// encodeCSYNC serialises the RDATA: serial, flags, then an RFC 4034
// § 4.1.2-style type bitmap. The sort scratch lives on the arena, and
// windows are grouped by walking consecutive runs of the sorted list —
// ascending window order, exactly the first-seen order the old
// per-record map produced from a sorted input.
func (e *encoder) encodeCSYNC(d CSYNCData) error {
	e.uint32(d.Serial)
	e.uint16(d.Flags)

	types := append(e.a.types[:0], d.Types...)
	e.a.types = types
	slices.Sort(types)
	for i := 0; i < len(types); {
		w := byte(uint16(types[i]) >> 8)
		var bitmap [32]byte
		maxOctet := 0
		j := i
		for ; j < len(types) && byte(uint16(types[j])>>8) == w; j++ {
			low := byte(uint16(types[j]) & 0xFF)
			octet := int(low / 8)
			bitmap[octet] |= 0x80 >> (low % 8)
			if octet+1 > maxOctet {
				maxOctet = octet + 1
			}
		}
		e.a.out = append(e.a.out, w, byte(maxOctet))
		e.a.out = append(e.a.out, bitmap[:maxOctet]...)
		i = j
	}
	return nil
}
