package dnswire

import (
	"fmt"
	"sort"
	"strings"
)

// TypeCSYNC is the Child-to-Parent Synchronization record (RFC 7477),
// which the paper's § V-B discusses as a remedy for parent/child
// inconsistency: a child zone publishes which of its records the parent
// should copy.
const TypeCSYNC Type = 62

// CSYNC flag bits (RFC 7477 § 2.1.1).
const (
	// CSYNCImmediate allows the parent to act without out-of-band
	// confirmation.
	CSYNCImmediate uint16 = 1 << 0
	// CSYNCSOAMinimum requires the child SOA serial to be at least the
	// CSYNC SOA serial before processing.
	CSYNCSOAMinimum uint16 = 1 << 1
)

// CSYNCData is the RDATA of a CSYNC record: the child's SOA serial at
// publication, processing flags, and the set of record types the parent
// should synchronize (typically NS, A, AAAA).
type CSYNCData struct {
	Serial uint32
	Flags  uint16
	// Types is the sorted list of types to synchronize.
	Types []Type
}

// Type implements RData.
func (CSYNCData) Type() Type { return TypeCSYNC }

// Immediate reports whether the parent may synchronize without
// out-of-band confirmation.
func (d CSYNCData) Immediate() bool { return d.Flags&CSYNCImmediate != 0 }

// Covers reports whether t is listed for synchronization.
func (d CSYNCData) Covers(t Type) bool {
	for _, listed := range d.Types {
		if listed == t {
			return true
		}
	}
	return false
}

// String implements RData.
func (d CSYNCData) String() string {
	parts := make([]string, 0, len(d.Types)+2)
	parts = append(parts, fmt.Sprint(d.Serial), fmt.Sprint(d.Flags))
	for _, t := range d.Types {
		parts = append(parts, t.String())
	}
	return strings.Join(parts, " ")
}

// equal compares the type lists as sets: the wire format stores them as
// a bitmap, so order carries no meaning.
func (d CSYNCData) equal(o RData) bool {
	od, ok := o.(CSYNCData)
	if !ok || od.Serial != d.Serial || od.Flags != d.Flags || len(od.Types) != len(d.Types) {
		return false
	}
	set := make(map[Type]bool, len(d.Types))
	for _, t := range d.Types {
		set[t] = true
	}
	for _, t := range od.Types {
		if !set[t] {
			return false
		}
	}
	return true
}

var _ RData = CSYNCData{}

// encodeCSYNC serialises the RDATA: serial, flags, then an RFC 4034
// § 4.1.2-style type bitmap.
func (e *encoder) encodeCSYNC(d CSYNCData) error {
	e.uint32(d.Serial)
	e.uint16(d.Flags)

	// Group types by window (high byte).
	types := append([]Type(nil), d.Types...)
	sort.Slice(types, func(i, j int) bool { return types[i] < types[j] })
	byWindow := make(map[byte][]Type)
	var windows []byte
	for _, t := range types {
		w := byte(uint16(t) >> 8)
		if _, seen := byWindow[w]; !seen {
			windows = append(windows, w)
		}
		byWindow[w] = append(byWindow[w], t)
	}
	for _, w := range windows {
		var bitmap [32]byte
		maxOctet := 0
		for _, t := range byWindow[w] {
			low := byte(uint16(t) & 0xFF)
			octet := int(low / 8)
			bitmap[octet] |= 0x80 >> (low % 8)
			if octet+1 > maxOctet {
				maxOctet = octet + 1
			}
		}
		e.buf = append(e.buf, w, byte(maxOctet))
		e.buf = append(e.buf, bitmap[:maxOctet]...)
	}
	return nil
}

// decodeCSYNC parses a CSYNC RDATA ending at end.
func (d *decoder) decodeCSYNC(end int) (RData, error) {
	serial, err := d.uint32()
	if err != nil {
		return nil, err
	}
	flags, err := d.uint16()
	if err != nil {
		return nil, err
	}
	data := CSYNCData{Serial: serial, Flags: flags}
	for d.pos < end {
		if d.pos+2 > end {
			return nil, fmt.Errorf("%w: CSYNC bitmap header", ErrTruncatedMessage)
		}
		window := d.buf[d.pos]
		length := int(d.buf[d.pos+1])
		d.pos += 2
		if length == 0 || length > 32 || d.pos+length > end {
			return nil, fmt.Errorf("%w: CSYNC bitmap window %d length %d", ErrTruncatedMessage, window, length)
		}
		for octet := 0; octet < length; octet++ {
			b := d.buf[d.pos+octet]
			for bit := 0; bit < 8; bit++ {
				if b&(0x80>>bit) != 0 {
					data.Types = append(data.Types,
						Type(uint16(window)<<8|uint16(octet*8+bit)))
				}
			}
		}
		d.pos += length
	}
	return data, nil
}
