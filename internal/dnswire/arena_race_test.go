//go:build race

package dnswire

// raceEnabled gates allocation-count assertions, which the race
// detector's instrumentation would spuriously trip.
const raceEnabled = true
