package core

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"govdns/internal/analysis"
)

// testStudy runs the complete pipeline once per test binary at a small
// scale; the study is deterministic so read-only sharing is safe.
var _testStudy *Study

func fullStudy(t *testing.T) *Study {
	t.Helper()
	if _testStudy != nil {
		return _testStudy
	}
	s := NewStudy(Config{
		Seed:         11,
		Scale:        0.02,
		QueryTimeout: 10 * time.Millisecond,
		Concurrency:  128,
		SecondRound:  true,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()
	if err := s.RunActive(ctx); err != nil {
		t.Fatalf("RunActive: %v", err)
	}
	_testStudy = s
	return s
}

func TestActiveAnalysesRequireScan(t *testing.T) {
	s := NewStudy(Config{Seed: 1, Scale: 0.002})
	if _, err := s.Table1(); !errors.Is(err, ErrNotScanned) {
		t.Errorf("Table1 before scan: %v", err)
	}
	if _, err := s.Fig10(); !errors.Is(err, ErrNotScanned) {
		t.Errorf("Fig10 before scan: %v", err)
	}
}

func TestStudyFunnelShape(t *testing.T) {
	s := fullStudy(t)
	f, err := s.Funnel()
	if err != nil {
		t.Fatal(err)
	}
	if f.Queried == 0 {
		t.Fatal("nothing queried")
	}
	// Paper funnel: 147k -> 115k (78%) -> 96k (65%).
	if f.ParentResponded >= f.Queried {
		t.Errorf("funnel: parent %d !< queried %d (ghosts must fail)", f.ParentResponded, f.Queried)
	}
	if f.WithData >= f.ParentResponded {
		t.Errorf("funnel: data %d !< parent %d (recently-dead answer empty)", f.WithData, f.ParentResponded)
	}
	if f.Responsive >= f.WithData {
		t.Errorf("funnel: responsive %d !< data %d (stale delegations)", f.Responsive, f.WithData)
	}
}

func TestStudyFig9Shape(t *testing.T) {
	s := fullStudy(t)
	ar, err := s.Fig8And9()
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 98.4% >= 2 NS. Shape: clearly above 90%.
	if ar.AtLeastTwoPct < 90 {
		t.Errorf("AtLeastTwoPct = %.1f, want > 90", ar.AtLeastTwoPct)
	}
	// Paper: 60.1% of singles stale. Shape: a majority.
	if ar.SingleStalePct < 40 || ar.SingleStalePct > 85 {
		t.Errorf("SingleStalePct = %.1f, want near 60", ar.SingleStalePct)
	}
	// Paper: over half the countries have no d_1NS.
	if ar.CountriesNoSingle < 50 {
		t.Errorf("CountriesNoSingle = %d", ar.CountriesNoSingle)
	}
}

func TestStudyTable1Shape(t *testing.T) {
	s := fullStudy(t)
	rows, err := s.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 11 {
		t.Fatalf("rows = %d, want Total + 10 countries", len(rows))
	}
	total := rows[0]
	// Paper: 89.8 / 71.5 / 32.9. Shape bands:
	if total.MultiIPPct < 80 || total.MultiIPPct > 97 {
		t.Errorf("MultiIPPct = %.1f, want near 89.8", total.MultiIPPct)
	}
	if total.Multi24Pct < 60 || total.Multi24Pct > 85 {
		t.Errorf("Multi24Pct = %.1f, want near 71.5", total.Multi24Pct)
	}
	if total.MultiASNPct < 20 || total.MultiASNPct > 48 {
		t.Errorf("MultiASNPct = %.1f, want near 32.9", total.MultiASNPct)
	}
	// Ordering invariant everywhere.
	for _, r := range rows {
		if r.Domains == 0 {
			continue
		}
		if r.MultiIPPct < r.Multi24Pct || r.Multi24Pct < r.MultiASNPct {
			t.Errorf("%s: diversity not monotone: %+v", r.Scope, r)
		}
	}
	// Country shapes: Thailand lowest multi-IP; Australia/India lowest
	// multi-ASN among the top-10 (paper Table I).
	byScope := map[string]int{}
	for i, r := range rows {
		byScope[r.Scope] = i
	}
	thailand := rows[byScope["Thailand"]]
	if thailand.MultiIPPct > 50 {
		t.Errorf("Thailand MultiIPPct = %.1f, want near 36", thailand.MultiIPPct)
	}
	china := rows[byScope["China"]]
	if china.MultiASNPct < thailand.MultiASNPct {
		t.Errorf("China multi-ASN (%.1f) should exceed Thailand's (%.1f)", china.MultiASNPct, thailand.MultiASNPct)
	}
}

func TestStudyFig10Shape(t *testing.T) {
	s := fullStudy(t)
	ds, err := s.Fig10()
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 29.5% any defect, 25.4% partial. Shape band:
	if pct := ds.AnyDefectPct(); pct < 15 || pct > 45 {
		t.Errorf("AnyDefectPct = %.1f, want near 29.5", pct)
	}
	if ds.Partial <= ds.Full {
		t.Errorf("partial (%d) should dominate full (%d)", ds.Partial, ds.Full)
	}
}

func TestStudyFig13Shape(t *testing.T) {
	s := fullStudy(t)
	cs, err := s.Fig13And14()
	if err != nil {
		t.Fatal(err)
	}
	// Paper: P=C for 76.8% of responsive domains.
	if cs.EqualPct < 60 || cs.EqualPct > 92 {
		t.Errorf("EqualPct = %.1f, want near 76.8", cs.EqualPct)
	}
	// Level 2 (the d_gov apexes) must be more consistent than level 3.
	if l2, ok := cs.ByLevel[2]; ok {
		if l3, ok3 := cs.ByLevel[3]; ok3 && l2 < l3 {
			t.Errorf("level-2 consistency (%.1f) below level-3 (%.1f)", l2, l3)
		}
	}
}

func TestStudyHijackShape(t *testing.T) {
	s := fullStudy(t)
	hr, err := s.Fig11And12()
	if err != nil {
		t.Fatal(err)
	}
	if len(hr.AvailableNSDomains) == 0 {
		t.Fatal("no available NS domains found")
	}
	if hr.AffectedDomains < len(hr.AvailableNSDomains) {
		t.Errorf("affected domains (%d) < available NS domains (%d)",
			hr.AffectedDomains, len(hr.AvailableNSDomains))
	}
	if hr.Countries == 0 {
		t.Error("no countries affected")
	}
	if hr.MedianPrice <= 0 {
		t.Errorf("median price = %v", hr.MedianPrice)
	}
}

func TestStudyTable2CloudGrowth(t *testing.T) {
	s := fullStudy(t)
	first := map[string]int{}
	for _, r := range s.Table2(s.StartYear()) {
		first[r.Label] = r.Domains
	}
	last := map[string]int{}
	for _, r := range s.Table2(s.EndYear()) {
		last[r.Label] = r.Domains
	}
	for _, cloud := range []string{"AWS DNS", "cloudflare.com", "Azure DNS"} {
		if last[cloud] <= first[cloud] {
			t.Errorf("%s did not grow: %d -> %d", cloud, first[cloud], last[cloud])
		}
	}
	if last["AWS DNS"] < 5*max(first["AWS DNS"], 1) {
		t.Errorf("AWS growth not multiple-fold: %d -> %d", first["AWS DNS"], last["AWS DNS"])
	}
}

func TestStudyTable3ReachGrowth(t *testing.T) {
	s := fullStudy(t)
	top2011 := s.Table3(s.StartYear(), 1)
	top2020 := s.Table3(s.EndYear(), 1)
	if len(top2011) == 0 || len(top2020) == 0 {
		t.Fatal("empty Table III")
	}
	// Paper: max reach grows 60% (52 -> 85 countries).
	if top2020[0].Countries <= top2011[0].Countries {
		t.Errorf("top provider reach did not grow: %d -> %d",
			top2011[0].Countries, top2020[0].Countries)
	}
}

func TestStudyWriteReport(t *testing.T) {
	s := fullStudy(t)
	var buf bytes.Buffer
	if err := s.WriteReport(&buf); err != nil {
		t.Fatalf("WriteReport: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"Fig. 2 & 3", "Fig. 4", "Fig. 6", "Fig. 7", "Fig. 8", "Fig. 9",
		"Table I", "Table II", "Table III", "Fig. 10", "Fig. 11", "Fig. 12",
		"Fig. 13", "Fig. 14",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestStudyRemediationRoundTrip(t *testing.T) {
	// A dedicated small study: remediation mutates the world.
	s := NewStudy(Config{Seed: 23, Scale: 0.005, QueryTimeout: 10 * time.Millisecond, Concurrency: 128})
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	if err := s.RunActive(ctx); err != nil {
		t.Fatal(err)
	}
	before, err := s.Fig13And14()
	if err != nil {
		t.Fatal(err)
	}
	plan, err := s.ProposeRemediation()
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Actions) == 0 {
		t.Fatal("empty remediation plan")
	}
	outcome, err := s.ApplyRemediation(ctx, plan, true)
	if err != nil {
		t.Fatal(err)
	}
	if outcome.Applied == 0 {
		t.Fatalf("nothing applied: %+v", outcome)
	}
	if err := s.RunActive(ctx); err != nil {
		t.Fatal(err)
	}
	after, err := s.Fig13And14()
	if err != nil {
		t.Fatal(err)
	}
	if after.EqualPct <= before.EqualPct {
		t.Errorf("consistency %.1f%% -> %.1f%%; remediation had no effect", before.EqualPct, after.EqualPct)
	}
}

func TestWriteCSVs(t *testing.T) {
	s := fullStudy(t)
	dir := t.TempDir()
	if err := s.WriteCSVs(dir); err != nil {
		t.Fatalf("WriteCSVs: %v", err)
	}
	for _, want := range []string{
		"fig2_3_7_pdns_yearly.csv", "fig4_domains_per_country.csv",
		"fig6_single_ns_churn.csv", "fig8_stale_singles.csv",
		"fig9_replication_cdf.csv", "table1_diversity.csv",
		"table2_major_providers_2011.csv", "table2_major_providers_2020.csv",
		"table3_top_providers_2020.csv", "fig10_defective_delegations.csv",
		"fig11_hijackable.csv", "fig12_registration_costs.csv",
		"fig13_consistency.csv", "fig14_disagreement.csv",
	} {
		info, err := os.Stat(filepath.Join(dir, want))
		if err != nil {
			t.Errorf("missing %s: %v", want, err)
			continue
		}
		if info.Size() == 0 {
			t.Errorf("%s is empty", want)
		}
	}
}

func TestCompareVantage(t *testing.T) {
	// A dedicated study: CompareVantage mutates the world's ACLs.
	s := NewStudy(Config{Seed: 31, Scale: 0.005, QueryTimeout: 10 * time.Millisecond, Concurrency: 128})
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	diff, err := s.CompareVantage(ctx, "ua", 40)
	if err != nil {
		t.Fatalf("CompareVantage: %v", err)
	}
	// Geo-fencing makes in-country-hosted domains visible only from the
	// domestic vantage.
	if diff.OnlyB == 0 {
		t.Errorf("no domestically-visible domains: %+v", diff)
	}
	if diff.OnlyA != 0 {
		t.Errorf("domains visible only from outside a geo-fence: %+v", diff)
	}
	if _, err := s.CompareVantage(ctx, "zz", 1); err == nil {
		t.Error("CompareVantage accepted an unknown country")
	}
}

// TestStudyCorpusMatchesReference is the study-level differential: on
// a generated world (not just the random stores the analysis package's
// harness uses), every corpus-backed Study method must return exactly
// what the retained view-based reference implementation returns.
func TestStudyCorpusMatchesReference(t *testing.T) {
	s := NewStudy(Config{Seed: 7, Scale: 0.01, HijackEvents: 5})
	start, end := s.StartYear(), s.EndYear()

	if got, want := s.Fig2And3(), analysis.PDNSYearly(s.StableView, s.Mapper, start, end); !reflect.DeepEqual(got, want) {
		t.Errorf("Fig2And3 diverges from PDNSYearly:\n got %+v\nwant %+v", got, want)
	}
	if got, want := s.NameserversPerYear(), analysis.NameserversPerYear(s.StableView, start, end); !reflect.DeepEqual(got, want) {
		t.Errorf("NameserversPerYear diverges:\n got %v\nwant %v", got, want)
	}
	if got, want := s.Fig4(), analysis.DomainsPerCountry(s.StableView, s.Mapper, end); !reflect.DeepEqual(got, want) {
		t.Errorf("Fig4 diverges from DomainsPerCountry:\n got %v\nwant %v", got, want)
	}
	if got, want := s.Fig6(), analysis.SingleNSChurn(s.StableView, start, end); !reflect.DeepEqual(got, want) {
		t.Errorf("Fig6 diverges from SingleNSChurn:\n got %+v\nwant %+v", got, want)
	}
	for _, year := range []int{start, end} {
		if got, want := s.Table2(year), s.pa.MajorProviders(s.StableView, year); !reflect.DeepEqual(got, want) {
			t.Errorf("Table2(%d) diverges:\n got %+v\nwant %+v", year, got, want)
		}
		if got, want := s.Table3(year, 11), s.pa.TopProviders(s.StableView, year, 11); !reflect.DeepEqual(got, want) {
			t.Errorf("Table3(%d) diverges:\n got %+v\nwant %+v", year, got, want)
		}
	}
	code := s.Top10()[0]
	if got, want := s.GovProviderShare(end, code), s.pa.GovProviderShare(s.StableView, end, code); !reflect.DeepEqual(got, want) {
		t.Errorf("GovProviderShare(%s) diverges:\n got %v\nwant %v", code, got, want)
	}
	if got, want := s.ProviderFlows(start, end), analysis.ProviderFlows(s.StableView, s.Mapper, s.Catalog, start, end); !reflect.DeepEqual(got, want) {
		t.Errorf("ProviderFlows diverges:\n got %+v\nwant %+v", got, want)
	}
	found, _ := s.HijackForensics()
	if want := analysis.SuspiciousTransitions(s.RawView, s.Mapper, s.Catalog, analysis.HijackForensicsConfig{}); !reflect.DeepEqual(found, want) {
		t.Errorf("HijackForensics diverges:\n got %+v\nwant %+v", found, want)
	}
}
