package core

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"govdns/internal/report"
)

// WriteCSVs exports every experiment's data as CSV files under dir (one
// file per table/figure), for plotting with external tooling. The active
// experiments require RunActive.
func (s *Study) WriteCSVs(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}

	write := func(name string, t *report.Table) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		if err := t.WriteCSV(f); err != nil {
			_ = f.Close()
			return fmt.Errorf("core: writing %s: %w", name, err)
		}
		return f.Close()
	}

	// Figs. 2, 3, 7: yearly PDNS series.
	years := s.Fig2And3()
	yearly := report.NewTable("", "year", "domains", "countries", "nameservers",
		"single_ns", "single_ns_private_pct", "all_private_pct")
	for _, y := range years {
		yearly.AddRow(y.Year, y.Domains, y.Countries, y.Nameservers,
			y.SingleNS, y.PrivateSinglePct(), y.PrivateAllPct())
	}
	if err := write("fig2_3_7_pdns_yearly.csv", yearly); err != nil {
		return err
	}

	// Fig. 4: per-country counts.
	counts := s.Fig4()
	f4 := report.NewTable("", "country", "domains")
	for _, code := range sortedKeysByValue(counts) {
		f4.AddRow(code, counts[code])
	}
	if err := write("fig4_domains_per_country.csv", f4); err != nil {
		return err
	}

	// Fig. 6: churn.
	f6 := report.NewTable("", "year", "single_ns", "new_pct", "from_base_pct", "base_gone_pct")
	for _, c := range s.Fig6() {
		f6.AddRow(c.Year, c.Total, c.NewPct(), c.FromBasePct(), c.BaseGonePct())
	}
	if err := write("fig6_single_ns_churn.csv", f6); err != nil {
		return err
	}

	// Tables II and III per year.
	for _, year := range []int{s.StartYear(), s.EndYear()} {
		t2 := report.NewTable("", "provider", "domains", "domains_pct", "d1p", "d1p_pct", "groups", "groups_pct")
		for _, r := range s.Table2(year) {
			t2.AddRow(r.Label, r.Domains, r.DomainsPct, r.SingleProvider, r.SingleProviderPct, r.SubRegions, r.SubRegionsPct)
		}
		if err := write(fmt.Sprintf("table2_major_providers_%d.csv", year), t2); err != nil {
			return err
		}
		t3 := report.NewTable("", "provider", "domains", "domains_pct", "groups", "countries")
		for _, r := range s.Table3(year, 0) {
			t3.AddRow(r.Label, r.Domains, r.DomainsPct, r.SubRegions, r.Countries)
		}
		if err := write(fmt.Sprintf("table3_top_providers_%d.csv", year), t3); err != nil {
			return err
		}
	}

	if s.Results == nil {
		return nil // passive-only study: skip the scan-based exports
	}

	// Fig. 9 CDF.
	ar, err := s.Fig8And9()
	if err != nil {
		return err
	}
	f9 := report.NewTable("", "ns_count", "cdf")
	for _, p := range ar.NSCountCDF {
		f9.AddRow(p.Value, fmt.Sprintf("%.6f", p.Fraction))
	}
	if err := write("fig9_replication_cdf.csv", f9); err != nil {
		return err
	}

	// Fig. 8 per-country stale singles.
	f8 := report.NewTable("", "country", "stale_single_pct")
	for _, code := range sortedKeys(ar.SingleStaleByCountry) {
		f8.AddRow(code, ar.SingleStaleByCountry[code])
	}
	if err := write("fig8_stale_singles.csv", f8); err != nil {
		return err
	}

	// Table I.
	rows, err := s.Table1()
	if err != nil {
		return err
	}
	t1 := report.NewTable("", "scope", "domains", "multi_ip_pct", "multi_24_pct", "multi_asn_pct")
	for _, r := range rows {
		t1.AddRow(r.Scope, r.Domains, r.MultiIPPct, r.Multi24Pct, r.MultiASNPct)
	}
	if err := write("table1_diversity.csv", t1); err != nil {
		return err
	}

	// Fig. 10 per-country defects.
	ds, err := s.Fig10()
	if err != nil {
		return err
	}
	f10 := report.NewTable("", "country", "domains", "any_defect", "partial", "full", "any_defect_pct")
	for _, code := range sortedKeys(ds.PerCountry) {
		e := ds.PerCountry[code]
		f10.AddRow(code, e.Domains, e.AnyDefect, e.Partial, e.Full, e.AnyDefectPct())
	}
	if err := write("fig10_defective_delegations.csv", f10); err != nil {
		return err
	}

	// Figs. 11 and 12.
	hr, err := s.Fig11And12()
	if err != nil {
		return err
	}
	f11 := report.NewTable("", "country", "affected_domains", "available_ns_domains")
	for _, code := range sortedKeys(hr.PerCountry) {
		e := hr.PerCountry[code]
		f11.AddRow(code, e.AffectedDomains, e.AvailableNSDomains)
	}
	if err := write("fig11_hijackable.csv", f11); err != nil {
		return err
	}
	f12 := report.NewTable("", "ns_domain", "price_usd")
	for _, nsDomain := range hr.AvailableNSDomains {
		f12.AddRow(nsDomain.String(), fmt.Sprintf("%.2f", s.Active.Reg.Price(nsDomain).Dollars()))
	}
	if err := write("fig12_registration_costs.csv", f12); err != nil {
		return err
	}

	// Figs. 13 and 14.
	cs, err := s.Fig13And14()
	if err != nil {
		return err
	}
	f13 := report.NewTable("", "class", "domains")
	classes := make([]string, 0, len(cs.Counts))
	byName := map[string]int{}
	for class, n := range cs.Counts {
		classes = append(classes, class.String())
		byName[class.String()] = n
	}
	sort.Strings(classes)
	for _, class := range classes {
		f13.AddRow(class, byName[class])
	}
	if err := write("fig13_consistency.csv", f13); err != nil {
		return err
	}
	f14 := report.NewTable("", "country", "disagreement_pct")
	for _, code := range sortedKeys(cs.DisagreementPerCountry) {
		f14.AddRow(code, cs.DisagreementPerCountry[code])
	}
	return write("fig14_disagreement.csv", f14)
}

// sortedKeys returns map keys sorted lexically.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// sortedKeysByValue returns keys sorted by descending value then key.
func sortedKeysByValue(m map[string]int) []string {
	keys := sortedKeys(m)
	sort.SliceStable(keys, func(i, j int) bool { return m[keys[i]] > m[keys[j]] })
	return keys
}
