package core

import (
	"fmt"
	"io"
	"sort"

	"govdns/internal/analysis"

	"govdns/internal/report"
	"govdns/internal/stats"
)

// PaperExpectations carries the paper's published numbers so reports can
// print measured-vs-paper side by side. Only shape comparisons are
// meaningful: the substrate is a calibrated simulator.
var PaperExpectations = map[string]string{
	"fig2.growth":         "113.5k (2011) -> 192.6k (2020), dip 2019->2020",
	"fig6.base-overlap":   "21% of 2011 d_1NS still active in 2020; 14-23% new/yr; 16-26% gone/yr",
	"fig7.private":        ">71% of d_1NS private; <34% of all domains private",
	"fig8.stale-singles":  "60.1% of d_1NS with no authoritative response",
	"fig9.replication":    "98.4% of domains with >=2 NS; 109 countries with no d_1NS; 15 countries >=10%",
	"table1.diversity":    "Total: 89.8% multi-IP, 71.5% multi-/24, 32.9% multi-ASN",
	"table2.cloud-growth": "Amazon 5 -> 5193 (2.7%), Cloudflare 12 -> 4136 (2.1%), Azure 0 -> 1574",
	"table3.reach":        "max country reach 52 (websitewelcome 2011) -> 85 (cloudflare 2020): +60%",
	"fig10.defective":     "29.5% any defect; 25.4% partial",
	"fig11.hijack":        "805 available NS domains; 1,121 domains; 49 countries; 625 fully unresponsive; 2 multi-country",
	"fig12.prices":        "0.01 - 20,000 USD, median 11.99",
	"fig13.consistency":   "P=C for 76.8%; level 2: 93.5% vs <=77% deeper; 40.9% of P!=C partially defective",
	"fig13.inc-hijack":    "13 available NS domains; 26 domains; 7 countries; min 300 USD",
	"sect3.levels":        "<1% level 2, 85.4% level 3, 10.9% level 4",
}

// WriteReport renders every table and figure of the study to w. The
// active experiments require RunActive to have completed.
func (s *Study) WriteReport(w io.Writer) error {
	for _, section := range []func(io.Writer) error{
		s.writeFunnel,
		s.writeFig2And3,
		s.writeFig4,
		s.writeFig6,
		s.writeFig7,
		s.writeFig8,
		s.writeFig9,
		s.writeTable1,
		s.writeTable2,
		s.writeTable3,
		s.writeFig10,
		s.writeFig11And12,
		s.writeFig13And14,
	} {
		if err := section(w); err != nil {
			return err
		}
	}
	return nil
}

func (s *Study) writeFunnel(w io.Writer) error {
	f, err := s.Funnel()
	if err != nil {
		return err
	}
	t := report.NewTable("Data-collection funnel (paper § III-B: 147k queried, 115k parent response, 96k with data)",
		"stage", "domains", "pct of queried")
	t.AddRow("queried", f.Queried, 100.0)
	t.AddRow("parent responded", f.ParentResponded, stats.Pct(f.ParentResponded, f.Queried))
	t.AddRow("non-empty NS data", f.WithData, stats.Pct(f.WithData, f.Queried))
	t.AddRow("responsive", f.Responsive, stats.Pct(f.Responsive, f.Queried))
	return t.Write(w)
}

func (s *Study) writeFig2And3(w io.Writer) error {
	years := s.Fig2And3()
	t := report.NewTable(fmt.Sprintf("Fig. 2 & 3 — PDNS growth (paper: %s)", PaperExpectations["fig2.growth"]),
		"year", "domains", "countries", "nameservers")
	for _, y := range years {
		t.AddRow(y.Year, y.Domains, y.Countries, y.Nameservers)
	}
	return t.Write(w)
}

func (s *Study) writeFig4(w io.Writer) error {
	counts := s.Fig4()
	type kv struct {
		code string
		n    int
	}
	var rows []kv
	for code, n := range counts {
		rows = append(rows, kv{code, n})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].n != rows[j].n {
			return rows[i].n > rows[j].n
		}
		return rows[i].code < rows[j].code
	})
	c := report.NewBarChart(fmt.Sprintf("Fig. 4 — domains per country, %d (top 20 of %d countries with data)",
		s.EndYear(), len(rows)))
	for i, row := range rows {
		if i >= 20 {
			break
		}
		c.Add(row.code, float64(row.n))
	}
	return c.Write(w)
}

func (s *Study) writeFig6(w io.Writer) error {
	churn := s.Fig6()
	t := report.NewTable(fmt.Sprintf("Fig. 6 — d_1NS churn vs %d (paper: %s)", s.StartYear(), PaperExpectations["fig6.base-overlap"]),
		"year", "d_1NS", "new %", "from-base %", "base-gone %")
	for _, c := range churn {
		t.AddRow(c.Year, c.Total, c.NewPct(), c.FromBasePct(), c.BaseGonePct())
	}
	return t.Write(w)
}

func (s *Study) writeFig7(w io.Writer) error {
	years := s.Fig2And3()
	t := report.NewTable(fmt.Sprintf("Fig. 7 — private ADNS deployments (paper: %s)", PaperExpectations["fig7.private"]),
		"year", "d_1NS private %", "all domains private %")
	for _, y := range years {
		t.AddRow(y.Year, y.PrivateSinglePct(), y.PrivateAllPct())
	}
	return t.Write(w)
}

func (s *Study) writeFig8(w io.Writer) error {
	ar, err := s.Fig8And9()
	if err != nil {
		return err
	}
	type kv struct {
		code string
		pct  float64
	}
	var rows []kv
	for code, pct := range ar.SingleStaleByCountry {
		rows = append(rows, kv{code, pct})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].pct != rows[j].pct {
			return rows[i].pct > rows[j].pct
		}
		return rows[i].code < rows[j].code
	})
	c := report.NewBarChart(fmt.Sprintf(
		"Fig. 8 — %% of d_1NS with no authoritative response (overall %.1f%%; paper: %s)",
		ar.SingleStalePct, PaperExpectations["fig8.stale-singles"]))
	for i, row := range rows {
		if i >= 15 {
			break
		}
		c.Add(row.code, row.pct)
	}
	return c.Write(w)
}

func (s *Study) writeFig9(w io.Writer) error {
	ar, err := s.Fig8And9()
	if err != nil {
		return err
	}
	if err := report.WriteCDF(w, fmt.Sprintf(
		"Fig. 9 — CDF of ADNS per domain (>=2 NS: %.1f%%; paper: %s)",
		ar.AtLeastTwoPct, PaperExpectations["fig9.replication"]), ar.NSCountCDF); err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "countries with no d_1NS: %d; countries with >=10%% d_1NS: %d (%v)\n\n",
		ar.CountriesNoSingle, len(ar.CountriesOver10PctSingle), ar.CountriesOver10PctSingle)
	return err
}

func (s *Study) writeTable1(w io.Writer) error {
	rows, err := s.Table1()
	if err != nil {
		return err
	}
	t := report.NewTable(fmt.Sprintf("Table I — nameserver diversity (paper: %s)", PaperExpectations["table1.diversity"]),
		"scope", "domains", "|IP|>1 %", "|/24|>1 %", "|ASN|>1 %")
	for _, r := range rows {
		t.AddRow(r.Scope, r.Domains, r.MultiIPPct, r.Multi24Pct, r.MultiASNPct)
	}
	if err := t.Write(w); err != nil {
		return err
	}
	byLevel, err := s.DiversityByLevel()
	if err != nil {
		return err
	}
	dist, err := s.LevelDistribution()
	if err != nil {
		return err
	}
	lt := report.NewTable(fmt.Sprintf("By DNS level (paper: %s; multi-/24 87.1%% at level 2 vs <80%% deeper)",
		PaperExpectations["sect3.levels"]),
		"level", "% of domains", "|/24|>1 %")
	var levels []int
	for level := range dist {
		levels = append(levels, level)
	}
	sort.Ints(levels)
	for _, level := range levels {
		lt.AddRow(level, dist[level], byLevel[level].Multi24Pct)
	}
	return lt.Write(w)
}

func (s *Study) writeTable2(w io.Writer) error {
	for _, year := range []int{s.StartYear(), s.EndYear()} {
		rows := s.Table2(year)
		t := report.NewTable(fmt.Sprintf("Table II — major providers, %d (paper: %s)", year, PaperExpectations["table2.cloud-growth"]),
			"provider", "domains", "%", "d_1P", "d_1P %", "groups", "groups %")
		for _, r := range rows {
			t.AddRow(r.Label, r.Domains, r.DomainsPct, r.SingleProvider, r.SingleProviderPct, r.SubRegions, r.SubRegionsPct)
		}
		if err := t.Write(w); err != nil {
			return err
		}
	}
	return nil
}

func (s *Study) writeTable3(w io.Writer) error {
	for _, year := range []int{s.StartYear(), s.EndYear()} {
		rows := s.Table3(year, 11)
		t := report.NewTable(fmt.Sprintf("Table III — top providers by country reach, %d (paper: %s)", year, PaperExpectations["table3.reach"]),
			"provider", "domains", "%", "groups", "countries")
		for _, r := range rows {
			t.AddRow(r.Label, r.Domains, r.DomainsPct, r.SubRegions, r.Countries)
		}
		if err := t.Write(w); err != nil {
			return err
		}
	}
	return nil
}

func (s *Study) writeFig10(w io.Writer) error {
	ds, err := s.Fig10()
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w,
		"Fig. 10 — defective delegations: any %.1f%%, partial %.1f%%, full %.1f%% of %d domains (paper: %s)\n",
		ds.AnyDefectPct(), ds.PartialPct(), ds.FullPct(), ds.WithData, PaperExpectations["fig10.defective"]); err != nil {
		return err
	}
	type kv struct {
		code  string
		entry float64
		n     int
	}
	var rows []kv
	for code, entry := range ds.PerCountry {
		if entry.AnyDefect > 0 {
			rows = append(rows, kv{code, entry.AnyDefectPct(), entry.AnyDefect})
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].n != rows[j].n {
			return rows[i].n > rows[j].n
		}
		return rows[i].code < rows[j].code
	})
	c := report.NewBarChart("top 20 countries by defective delegations (% of country's domains)")
	for i, row := range rows {
		if i >= 20 {
			break
		}
		c.Add(fmt.Sprintf("%s (n=%d)", row.code, row.n), row.entry)
	}
	return c.Write(w)
}

func (s *Study) writeFig11And12(w io.Writer) error {
	hr, err := s.Fig11And12()
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w,
		"Fig. 11 — hijackable: %d available NS domains; %d affected domains in %d countries; %d fully unresponsive; %d multi-country (paper: %s)\n",
		len(hr.AvailableNSDomains), hr.AffectedDomains, hr.Countries,
		hr.FullyUnresponsiveAffected, hr.MultiCountryNSDomains, PaperExpectations["fig11.hijack"]); err != nil {
		return err
	}
	if len(hr.Prices) == 0 {
		_, err := fmt.Fprintln(w, "Fig. 12 — no available NS domains to price")
		return err
	}
	prices := make([]float64, len(hr.Prices))
	for i, p := range hr.Prices {
		prices[i] = p.Dollars()
	}
	minP, maxP := prices[0], prices[len(prices)-1]
	_, err = fmt.Fprintf(w,
		"Fig. 12 — registration cost: min %.2f, median %s, max %.2f USD over %d domains (paper: %s)\n\n",
		minP, hr.MedianPrice, maxP, len(prices), PaperExpectations["fig12.prices"])
	return err
}

func (s *Study) writeFig13And14(w io.Writer) error {
	cs, err := s.Fig13And14()
	if err != nil {
		return err
	}
	t := report.NewTable(fmt.Sprintf("Fig. 13 — parent/child consistency over %d responsive domains (paper: %s)",
		cs.Responsive, PaperExpectations["fig13.consistency"]),
		"class", "domains", "%")
	for _, cls := range []analysis.ConsistencyClass{
		analysis.ClassEqual, analysis.ClassParentSuperset, analysis.ClassChildSuperset,
		analysis.ClassIntersect, analysis.ClassDisjointIPOverlap, analysis.ClassDisjoint,
	} {
		if n, ok := cs.Counts[cls]; ok {
			t.AddRow(cls.String(), n, stats.Pct(n, cs.Responsive))
		}
	}
	if err := t.Write(w); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "P!=C domains with a partial defect: %.1f%% (paper: 40.9%%)\n", cs.InconsistentWithDefectPct); err != nil {
		return err
	}
	var levels []int
	for level := range cs.ByLevel {
		levels = append(levels, level)
	}
	sort.Ints(levels)
	for _, level := range levels {
		if _, err := fmt.Fprintf(w, "  level %d consistency: %.1f%%\n", level, cs.ByLevel[level]); err != nil {
			return err
		}
	}

	// Fig. 14: distribution of per-country disagreement.
	var rates []float64
	for _, pct := range cs.DisagreementPerCountry {
		rates = append(rates, pct)
	}
	sort.Float64s(rates)
	med, _ := stats.Percentile(rates, 50)
	p90, _ := stats.Percentile(rates, 90)
	if _, err := fmt.Fprintf(w, "Fig. 14 — disagreement per country: median %.1f%%, p90 %.1f%% over %d countries\n",
		med, p90, len(rates)); err != nil {
		return err
	}

	ih, err := s.InconsistencyHijacks()
	if err != nil {
		return err
	}
	minPrice := "n/a"
	if len(ih.Prices) > 0 {
		minPrice = ih.MinPrice.String()
	}
	_, err = fmt.Fprintf(w,
		"Inconsistency-only dangling: %d available NS domains; %d domains in %d countries; min price %s (paper: %s)\n\n",
		len(ih.AvailableNSDomains), ih.AffectedDomains, ih.Countries, minPrice, PaperExpectations["fig13.inc-hijack"])
	return err
}
