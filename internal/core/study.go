// Package core orchestrates the full reproduction study: world
// generation, passive-DNS preparation, the active scan, and every § IV
// analysis, exposing one method per table and figure of the paper.
package core

import (
	"context"
	"errors"
	"sync"
	"time"

	"govdns/internal/analysis"
	"govdns/internal/dnsname"
	"govdns/internal/measure"
	"govdns/internal/obs"
	"govdns/internal/pdns"
	"govdns/internal/providers"
	"govdns/internal/remedy"
	"govdns/internal/resolver"
	"govdns/internal/trace"
	"govdns/internal/worldgen"
)

// Config controls a study run.
type Config struct {
	// Seed drives world generation and network behaviour.
	Seed int64
	// Scale multiplies the paper's population sizes (default 0.1).
	Scale float64
	// Concurrency bounds the scanner's in-flight domains.
	Concurrency int
	// PerDomainParallelism bounds the scanner's intra-domain fan-out
	// (NS-host resolutions and per-address probes per domain). Default
	// measure.DefaultPerDomainParallelism; 1 means serial.
	PerDomainParallelism int
	// QueryTimeout bounds each DNS query attempt (default 25ms — the
	// simulated network answers in microseconds, so this is purely the
	// lameness-detection budget).
	QueryTimeout time.Duration
	// Retries is the per-query retry count (default 1).
	Retries int
	// SecondRound enables the paper's second measurement round.
	SecondRound bool
	// StabilityDays is the PDNS stability filter threshold (default 7;
	// set negative to disable filtering — used by the ablation bench).
	StabilityDays int
	// HijackEvents injects that many historical takeover episodes into
	// the PDNS record for the § V-A forensics analysis (0 = none).
	HijackEvents int
	// Metrics, when non-nil, is the shared observability registry:
	// RunActive instruments its client, iterator, and scanner on it, so
	// one snapshot covers the whole pipeline. Nil disables recording
	// (each client still keeps a private registry for Stats).
	Metrics *obs.Registry
	// Trace, when non-nil, is the flight recorder RunActive's scanner
	// offers every domain's span tree to. Nil disables tracing.
	Trace *trace.FlightRecorder
}

func (c Config) withDefaults() Config {
	if c.Scale == 0 {
		c.Scale = 0.1
	}
	if c.QueryTimeout == 0 {
		c.QueryTimeout = 25 * time.Millisecond
	}
	if c.Concurrency == 0 {
		c.Concurrency = measure.DefaultConcurrency
	}
	if c.PerDomainParallelism == 0 {
		c.PerDomainParallelism = measure.DefaultPerDomainParallelism
	}
	if c.Retries == 0 {
		c.Retries = 1
	}
	if c.StabilityDays == 0 {
		c.StabilityDays = pdns.StabilityFilterDays
	}
	return c
}

// ErrNotScanned is returned by active analyses before RunActive.
var ErrNotScanned = errors.New("core: active scan has not run")

// Study holds the full reproduction state.
type Study struct {
	Cfg     Config
	World   *worldgen.World
	Active  *worldgen.Active
	Mapper  *analysis.Mapper
	Catalog *providers.Catalog
	// StableView is the PDNS view after the stability filter.
	StableView *pdns.View
	// RawView is the unfiltered PDNS view (for the filter ablation).
	RawView *pdns.View
	// Results is the active scan output (nil before RunActive).
	Results []*measure.DomainResult

	top10 []string
	pa    *analysis.ProviderAnalysis

	mu         sync.Mutex
	cacheYears []analysis.YearStats
	cacheRepl  *analysis.ActiveReplication
	// corpStable/corpRaw are the compiled columnar corpora of the two
	// PDNS views, built on first use and shared by every passive
	// analysis (the views are immutable after NewStudy, so the corpora
	// never invalidate).
	corpStable *analysis.Corpus
	corpRaw    *analysis.Corpus
}

// NewStudy generates the world and prepares the passive views. The
// active scan is run separately (RunActive) because it dominates run
// time.
func NewStudy(cfg Config) *Study {
	cfg = cfg.withDefaults()
	w := worldgen.Generate(worldgen.Config{Seed: cfg.Seed, Scale: cfg.Scale, HijackEvents: cfg.HijackEvents})
	s := &Study{
		Cfg:     cfg,
		World:   w,
		Active:  worldgen.Build(w),
		Catalog: providers.Default(),
	}

	countries := make([]analysis.Country, len(w.Countries))
	for i, c := range w.Countries {
		countries[i] = analysis.Country{
			Code: c.Code, Name: c.Name, SubRegion: c.SubRegion, Suffix: c.Suffix,
		}
	}
	s.Mapper = analysis.NewMapper(countries)

	s.RawView = pdns.NewView(w.PDNS.Snapshot())
	if cfg.StabilityDays > 0 {
		s.StableView = s.RawView.Stable(cfg.StabilityDays)
	} else {
		s.StableView = s.RawView
	}

	// The paper's top-10 countries (by PDNS records) become singleton
	// groups in Tables II/III.
	for _, c := range worldgen.TopByWeight(w.Countries, 10) {
		s.top10 = append(s.top10, c.Code)
	}
	s.pa = analysis.NewProviderAnalysis(s.Catalog, s.Mapper, s.top10)
	return s
}

// StartYear and EndYear expose the study period.
func (s *Study) StartYear() int { return s.World.Cfg.StartYear }

// EndYear returns the final PDNS study year.
func (s *Study) EndYear() int { return s.World.Cfg.EndYear }

// Top10 returns the country codes treated as singleton groups.
func (s *Study) Top10() []string { return append([]string(nil), s.top10...) }

// RunActive executes the paper's Fig. 1 measurement over the query list.
// Cached analysis results are invalidated.
func (s *Study) RunActive(ctx context.Context) error {
	s.mu.Lock()
	s.cacheRepl = nil
	s.mu.Unlock()
	client := resolver.NewClient(s.Active.Net)
	client.Timeout = s.Cfg.QueryTimeout
	client.Retries = s.Cfg.Retries
	if s.Cfg.Metrics != nil {
		// SetMetrics must precede NewIterator: the iterator binds its
		// counter handles from the client's metrics at construction.
		client.SetMetrics(resolver.NewMetrics(s.Cfg.Metrics))
	}
	it := resolver.NewIterator(client, s.Active.Roots)
	scanner := measure.NewScanner(it)
	scanner.Concurrency = s.Cfg.Concurrency
	scanner.PerDomainParallelism = s.Cfg.PerDomainParallelism
	scanner.SecondRound = s.Cfg.SecondRound
	if s.Cfg.Metrics != nil {
		scanner.Metrics = measure.NewScanMetrics(s.Cfg.Metrics)
	}
	scanner.Trace = s.Cfg.Trace
	s.Results = scanner.Scan(ctx, s.Active.QueryList)
	return ctx.Err()
}

// --- Passive experiments (PDNS) ---

// Corpus returns the compiled columnar analysis corpus of the stable
// PDNS view, building it on first use. Every passive figure and table
// consumes this shared corpus instead of re-indexing the raw view.
func (s *Study) Corpus() *analysis.Corpus {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.corpusLocked()
}

func (s *Study) corpusLocked() *analysis.Corpus {
	if s.corpStable == nil {
		s.corpStable = analysis.CompileCorpus(s.StableView, s.Mapper, s.StartYear(), s.EndYear())
	}
	return s.corpStable
}

// RawCorpus returns the corpus of the unfiltered view (the hijack
// forensics run on it: the stability filter would erase the evidence).
func (s *Study) RawCorpus() *analysis.Corpus {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.corpRaw == nil {
		s.corpRaw = analysis.CompileCorpus(s.RawView, s.Mapper, s.StartYear(), s.EndYear())
	}
	return s.corpRaw
}

// Fig2And3 returns the yearly PDNS statistics behind Figures 2 (domains
// and countries) and 3 (nameservers), plus the Fig. 7 private-deployment
// series.
// The result is memoized: the report consumes it several times.
func (s *Study) Fig2And3() []analysis.YearStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cacheYears == nil {
		s.cacheYears = s.corpusLocked().Yearly()
	}
	return s.cacheYears
}

// NameserversPerYear returns Fig. 3's distinct-nameserver series over
// the whole stable view (no per-domain mode gating, unlike the
// YearStats.Nameservers column).
func (s *Study) NameserversPerYear() []int {
	return s.Corpus().NameserversPerYear()
}

// Fig4 returns the per-country domain counts for the final year.
func (s *Study) Fig4() map[string]int {
	return s.Corpus().DomainsPerCountry(s.EndYear())
}

// Fig6 returns the d_1NS churn/overlap series.
func (s *Study) Fig6() []analysis.ChurnStats {
	return s.Corpus().SingleNSChurn()
}

// Table2 returns the major-provider usage rows for the given year.
func (s *Study) Table2(year int) []analysis.ProviderUsage {
	return s.pa.MajorProvidersCorpus(s.Corpus(), year)
}

// Table3 returns the top providers by country reach for the given year.
func (s *Study) Table3(year, n int) []analysis.ProviderUsage {
	return s.pa.TopProvidersCorpus(s.Corpus(), year, n)
}

// GovProviderShare exposes the per-country provider mix (the gov.cn
// hichina/xincache/dns-diy observation).
func (s *Study) GovProviderShare(year int, code string) map[string]float64 {
	return s.pa.GovProviderShareCorpus(s.Corpus(), year, code)
}

// --- Active experiments (scan) ---

func (s *Study) requireScan() error {
	if s.Results == nil {
		return ErrNotScanned
	}
	return nil
}

// Fig8And9 returns the active replication analysis (stale singles per
// country and the NS-count CDF).
// The result is memoized until the next RunActive.
func (s *Study) Fig8And9() (*analysis.ActiveReplication, error) {
	if err := s.requireScan(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cacheRepl == nil {
		s.cacheRepl = analysis.ReplicationActive(s.Results, s.Mapper)
	}
	return s.cacheRepl, nil
}

// Table1 returns the diversity rows (Total + top-10 countries).
func (s *Study) Table1() ([]analysis.DiversityRow, error) {
	if err := s.requireScan(); err != nil {
		return nil, err
	}
	return analysis.Diversity(s.Results, s.Active.Geo, s.Mapper, s.top10), nil
}

// DiversityByLevel returns the per-hierarchy-level diversity comparison.
func (s *Study) DiversityByLevel() (map[int]analysis.DiversityRow, error) {
	if err := s.requireScan(); err != nil {
		return nil, err
	}
	return analysis.DiversityByLevel(s.Results, s.Active.Geo), nil
}

// LevelDistribution returns the share of scanned domains per DNS level.
func (s *Study) LevelDistribution() (map[int]float64, error) {
	if err := s.requireScan(); err != nil {
		return nil, err
	}
	return analysis.LevelDistribution(s.Results), nil
}

// Fig10 returns the defective-delegation statistics.
func (s *Study) Fig10() (*analysis.DelegationStats, error) {
	if err := s.requireScan(); err != nil {
		return nil, err
	}
	return analysis.Delegations(s.Results, s.Mapper), nil
}

// Fig11And12 returns the hijack-risk analysis (available nameserver
// domains and registration costs).
func (s *Study) Fig11And12() (*analysis.HijackRisk, error) {
	if err := s.requireScan(); err != nil {
		return nil, err
	}
	return analysis.HijackRisks(s.Results, s.Mapper, s.Active.Reg), nil
}

// Fig13And14 returns the parent/child consistency analysis.
func (s *Study) Fig13And14() (*analysis.ConsistencyStats, error) {
	if err := s.requireScan(); err != nil {
		return nil, err
	}
	return analysis.Consistency(s.Results, s.Mapper), nil
}

// InconsistencyHijacks returns § IV-D's non-defective dangling analysis.
func (s *Study) InconsistencyHijacks() (*analysis.InconsistencyHijack, error) {
	if err := s.requireScan(); err != nil {
		return nil, err
	}
	return analysis.InconsistencyHijacks(s.Results, s.Mapper, s.Active.Reg), nil
}

// Funnel summarizes the § III-B data-collection funnel.
type Funnel struct {
	Queried, ParentResponded, WithData, Responsive int
}

// Funnel computes the scan funnel.
func (s *Study) Funnel() (*Funnel, error) {
	if err := s.requireScan(); err != nil {
		return nil, err
	}
	f := &Funnel{}
	for _, r := range s.Results {
		f.Queried++
		if !r.ParentResponded {
			continue
		}
		f.ParentResponded++
		if !r.HasData() {
			continue
		}
		f.WithData++
		if r.Responsive() {
			f.Responsive++
		}
	}
	return f, nil
}

// ScanDomainNames lists the probed names (for examples).
func (s *Study) ScanDomainNames() []dnsname.Name {
	return append([]dnsname.Name(nil), s.Active.QueryList...)
}

// PctAtLeastTwoNS is a convenience accessor for the headline Fig. 9
// number.
func (s *Study) PctAtLeastTwoNS() (float64, error) {
	ar, err := s.Fig8And9()
	if err != nil {
		return 0, err
	}
	return ar.AtLeastTwoPct, nil
}

// --- Remediation (§ V-B) ---

// ProposeRemediation derives a § V-B remediation plan from the scan:
// CSYNC-style parent synchronization for inconsistent delegations,
// removal of stale delegations, and registry-lock advisories for
// delegations involving registrable nameserver domains.
func (s *Study) ProposeRemediation() (*remedy.Plan, error) {
	if err := s.requireScan(); err != nil {
		return nil, err
	}
	return remedy.Propose(s.Results, s.Mapper, s.Active.Reg), nil
}

// ApplyRemediation executes a plan against the world's parent zones.
// With force false, synchronizations honour RFC 7477: they run only when
// the child publishes an immediate-flagged CSYNC record. Re-run
// RunActive afterwards to measure the improvement.
func (s *Study) ApplyRemediation(ctx context.Context, plan *remedy.Plan, force bool) (*remedy.Outcome, error) {
	client := resolver.NewClient(s.Active.Net)
	client.Timeout = s.Cfg.QueryTimeout
	client.Retries = s.Cfg.Retries
	applier := &remedy.Applier{Active: s.Active, Client: client, Force: force}
	return applier.Apply(ctx, plan)
}

// HijackForensics runs the § V-A historical-takeover detector over the
// RAW passive-DNS view (the stability filter would erase the evidence)
// and returns the candidates alongside the injected ground truth.
func (s *Study) HijackForensics() ([]analysis.SuspiciousTransition, []worldgen.HijackEvent) {
	found := analysis.SuspiciousTransitionsCorpus(s.RawCorpus(), s.Catalog, analysis.HijackForensicsConfig{})
	return found, append([]worldgen.HijackEvent(nil), s.World.Hijacks...)
}

// ProviderFlows returns the hosting-migration matrix between two study
// years (who the cloud providers' customers came from).
func (s *Study) ProviderFlows(yearA, yearB int) []analysis.ProviderFlow {
	return s.Corpus().ProviderFlows(s.Catalog, yearA, yearB)
}

// CompareVantage geo-fences the given country's government nameservers
// and scans that country's domains twice — once from the study's default
// vantage and once from a domestic one — returning the visibility diff
// (§ V-A's multi-vantage future work). The geo-fence persists on the
// world afterwards; use a dedicated Study when the main results must
// stay untouched.
func (s *Study) CompareVantage(ctx context.Context, code string, maxDomains int) (*analysis.VantageDiff, error) {
	if err := s.Active.GeoFence(code); err != nil {
		return nil, err
	}
	domestic, err := s.Active.DomesticVantage(code)
	if err != nil {
		return nil, err
	}
	var country analysis.Country
	for _, c := range s.Mapper.Countries() {
		if c.Code == code {
			country = c
			break
		}
	}
	var targets []dnsname.Name
	for _, name := range s.Active.QueryList {
		if maxDomains > 0 && len(targets) >= maxDomains {
			break
		}
		if name.IsSubdomainOf(country.Suffix) {
			targets = append(targets, name)
		}
	}

	scan := func(transport resolver.Transport) []*measure.DomainResult {
		client := resolver.NewClient(transport)
		client.Timeout = s.Cfg.QueryTimeout
		client.Retries = s.Cfg.Retries
		sc := measure.NewScanner(resolver.NewIterator(client, s.Active.Roots))
		sc.Concurrency = s.Cfg.Concurrency
		sc.PerDomainParallelism = s.Cfg.PerDomainParallelism
		sc.SecondRound = false
		return sc.Scan(ctx, targets)
	}
	outside := scan(s.Active.Net)
	inside := scan(s.Active.Net.Vantage(domestic))
	return analysis.CompareVantages(outside, inside), ctx.Err()
}
