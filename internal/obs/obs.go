// Package obs is the scan pipeline's metrics substrate: atomic counters,
// gauges, and fixed log-spaced-bucket latency histograms behind a
// Registry. It exists so a weeks-long bulk scan (the paper ran its
// Fig. 1 pipeline against ~147k domains for years) can be watched live —
// where time goes per stage, what each server's outcome mix looks like,
// how far along the scan is — without perturbing the measurement.
//
// Design constraints, in order:
//
//  1. The hot path is free. Instruments are plain atomics behind
//     pointer handles; callers resolve a handle once (Registry lookup)
//     and then Inc/Observe costs one atomic op, zero allocations, and no
//     locks. Histogram bucketing is a bits.Len64, not a float search.
//  2. Instruments are nil-safe. Every method no-ops on a nil receiver,
//     so instrumented code paths need no "metrics enabled?" branches —
//     an unset handle is an off switch.
//  3. Reads never stop writers. Snapshot walks the registry under a
//     read lock and loads each atomic individually; it is a point-in-
//     time-ish view, not a consistent cut, exactly like resolver.Stats.
//
// The registry's get-or-create semantics mean two components asking for
// the same name share one instrument — that is deliberate: a process has
// one "resolver_sent_total", no matter how many layers can see it.
package obs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64. The zero value is ready
// to use; a nil *Counter silently discards updates.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Load returns the current value (0 for nil).
func (c *Counter) Load() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable int64. The zero value is ready to use; a nil
// *Gauge silently discards updates.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add adjusts the value by n (negative to decrease).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Load returns the current value (0 for nil).
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// CounterVec is a family of counters distinguished by one label value —
// per-server outcomes, per-fault-class injections. Handles returned by
// With are stable and may be cached by callers for a lock-free hot path.
type CounterVec struct {
	name string
	key  string // Prometheus label key; "" renders as "label"
	mu   sync.RWMutex
	m    map[string]*Counter
}

// labelKey returns the Prometheus label key the vec's members are
// exposed under.
func (v *CounterVec) labelKey() string {
	if v == nil || v.key == "" {
		return "label"
	}
	return v.key
}

// With returns the counter for the given label value, creating it on
// first use. Safe for concurrent use; nil-safe (returns nil, whose
// methods no-op).
func (v *CounterVec) With(label string) *Counter {
	if v == nil {
		return nil
	}
	v.mu.RLock()
	c := v.m[label]
	v.mu.RUnlock()
	if c != nil {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c := v.m[label]; c != nil {
		return c
	}
	if v.m == nil {
		v.m = make(map[string]*Counter)
	}
	c = &Counter{}
	v.m[label] = c
	return c
}

// Registry is a named collection of instruments. Lookups are
// get-or-create: the first caller allocates the instrument, later
// callers (of the matching kind) share it. A name registered as one
// kind and requested as another panics — that is a programming error,
// not a runtime condition.
type Registry struct {
	mu      sync.RWMutex
	byName  map[string]any // *Counter | *Gauge | *Histogram | *CounterVec
	ordered []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]any)}
}

// lookup returns the instrument registered under name, creating it with
// mk on first use.
func (r *Registry) lookup(name string, mk func() any) any {
	r.mu.RLock()
	inst := r.byName[name]
	r.mu.RUnlock()
	if inst != nil {
		return inst
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if inst := r.byName[name]; inst != nil {
		return inst
	}
	inst = mk()
	r.byName[name] = inst
	r.ordered = append(r.ordered, name)
	return inst
}

// Counter returns the counter registered under name. Nil-safe: a nil
// registry returns a nil handle, which discards updates.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	c, ok := r.lookup(name, func() any { return &Counter{} }).(*Counter)
	if !ok {
		panic(fmt.Sprintf("obs: %q is not a counter", name))
	}
	return c
}

// Gauge returns the gauge registered under name.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	g, ok := r.lookup(name, func() any { return &Gauge{} }).(*Gauge)
	if !ok {
		panic(fmt.Sprintf("obs: %q is not a gauge", name))
	}
	return g
}

// Histogram returns the latency histogram registered under name.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	h, ok := r.lookup(name, func() any { return &Histogram{} }).(*Histogram)
	if !ok {
		panic(fmt.Sprintf("obs: %q is not a histogram", name))
	}
	return h
}

// CounterVec returns the labelled counter family registered under name.
func (r *Registry) CounterVec(name string) *CounterVec {
	return r.CounterVecKeyed(name, "")
}

// CounterVecKeyed is CounterVec with an explicit Prometheus label key
// ("class", "severity", ...), used by the text exposition; the JSON
// snapshot flattens members as name{label} regardless. Get-or-create is
// first-wins: the key of the first registration sticks, and "" falls
// back to the generic key "label".
func (r *Registry) CounterVecKeyed(name, key string) *CounterVec {
	if r == nil {
		return nil
	}
	v, ok := r.lookup(name, func() any { return &CounterVec{name: name, key: key} }).(*CounterVec)
	if !ok {
		panic(fmt.Sprintf("obs: %q is not a counter vec", name))
	}
	return v
}

// names returns the registered names, sorted, under the read lock.
func (r *Registry) names() []string {
	r.mu.RLock()
	out := append([]string(nil), r.ordered...)
	r.mu.RUnlock()
	sort.Strings(out)
	return out
}

// get returns the instrument under name, or nil.
func (r *Registry) get(name string) any {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.byName[name]
}
