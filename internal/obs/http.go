package obs

import (
	"net/http"
	"net/http/pprof"
)

// Handler serves the registry over HTTP with no health surface wired in
// — /healthz and /readyz always answer 200. Processes with real
// lifecycle state use HandlerWith.
func Handler(r *Registry) http.Handler {
	return HandlerWith(r, nil)
}

// HandlerWith serves the registry and health surface over HTTP:
//
//	GET /metrics             the RegistrySnapshot as JSON
//	GET /metrics?format=prom Prometheus text exposition (version 0.0.4)
//	GET /healthz             liveness probe (h's liveness checks)
//	GET /readyz              readiness probe (SetReady gate + checks)
//	GET /debug/pprof/*       the standard Go profiling endpoints
//
// A nil h keeps both probes unconditionally healthy, so every existing
// Handler caller gains the routes without gaining state to manage.
//
// The pprof routes are mounted explicitly rather than through the
// net/http/pprof side-effect import, so the endpoint works on a private
// mux and importing this package never mutates http.DefaultServeMux.
func HandlerWith(r *Registry, h *Health) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("format") == "prom" {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			if err := r.WriteProm(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := r.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/healthz", healthHandler(h.Liveness))
	mux.HandleFunc("/readyz", healthHandler(h.Readiness))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
