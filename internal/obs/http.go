package obs

import (
	"net/http"
	"net/http/pprof"
)

// Handler serves the registry over HTTP:
//
//	GET /metrics        the RegistrySnapshot as JSON
//	GET /debug/pprof/*  the standard Go profiling endpoints
//
// The pprof routes are mounted explicitly rather than through the
// net/http/pprof side-effect import, so the endpoint works on a private
// mux and importing this package never mutates http.DefaultServeMux.
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := r.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
