package obs

import (
	"bytes"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

// TestWritePromGolden pins the Prometheus exposition byte-for-byte for a
// registry covering every instrument kind: counters, a keyed vec with a
// label value needing escaping, a gauge, and a duration histogram whose
// buckets must come out cumulative with an exact +Inf/_sum/_count
// tail. The exposition is a public wire contract (scrapers parse it);
// any byte drift is a deliberate format change, not noise.
func TestWritePromGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("scan_domains_done_total").Add(42)
	r.Gauge("scan_domains_total").Set(100)
	vec := r.CounterVecKeyed("chaos_injected_total", "class")
	vec.With("drop").Add(7)
	vec.With(`weird"label\n`).Inc()
	h := r.Histogram("scan_domain_duration")
	h.Observe(500 * time.Nanosecond) // bucket le=1µs
	h.Observe(3 * time.Microsecond)  // bucket le=4µs
	h.Observe(3 * time.Microsecond)
	h.Observe(100 * time.Millisecond) // bucket le=131072µs

	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatalf("WriteProm: %v", err)
	}
	want := strings.Join([]string{
		`# TYPE chaos_injected_total counter`,
		`chaos_injected_total{class="drop"} 7`,
		`chaos_injected_total{class="weird\"label\\n"} 1`,
		`# TYPE scan_domain_duration_seconds histogram`,
		`scan_domain_duration_seconds_bucket{le="1e-06"} 1`,
		`scan_domain_duration_seconds_bucket{le="4e-06"} 3`,
		`scan_domain_duration_seconds_bucket{le="0.131072"} 4`,
		`scan_domain_duration_seconds_bucket{le="+Inf"} 4`,
		`scan_domain_duration_seconds_sum 0.1000065`,
		`scan_domain_duration_seconds_count 4`,
		`# TYPE scan_domains_done_total counter`,
		`scan_domains_done_total 42`,
		`# TYPE scan_domains_total gauge`,
		`scan_domains_total 100`,
	}, "\n") + "\n"
	if got := buf.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	// Determinism: a second render of the same state is bit-identical.
	var again bytes.Buffer
	if err := r.WriteProm(&again); err != nil {
		t.Fatalf("WriteProm again: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Error("two renders of the same registry state differ")
	}
}

// TestWritePromCumulativeBuckets checks the histogram invariant a
// scraper depends on: bucket counts are non-decreasing in le order and
// the +Inf bucket equals _count.
func TestWritePromCumulativeBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h")
	for i := 0; i < 100; i++ {
		h.Observe(time.Duration(i) * 37 * time.Microsecond)
	}
	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatalf("WriteProm: %v", err)
	}
	var last uint64
	var infSeen bool
	for _, line := range strings.Split(buf.String(), "\n") {
		if !strings.HasPrefix(line, "h_seconds_bucket") {
			continue
		}
		n, err := strconv.ParseUint(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
		if err != nil {
			t.Fatalf("parsing %q: %v", line, err)
		}
		if n < last {
			t.Errorf("bucket counts not cumulative: %q after %d", line, last)
		}
		last = n
		if strings.Contains(line, `le="+Inf"`) {
			infSeen = true
			if n != h.Count() {
				t.Errorf("+Inf bucket %d != count %d", n, h.Count())
			}
		}
	}
	if !infSeen {
		t.Error("no +Inf bucket emitted")
	}
}

// TestWritePromNil: a nil registry writes nothing and does not panic.
func TestWritePromNil(t *testing.T) {
	var r *Registry
	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatalf("nil WriteProm: %v", err)
	}
	if buf.Len() != 0 {
		t.Errorf("nil registry wrote %q", buf.String())
	}
}

// TestHandlerPromFormat: /metrics?format=prom serves the exposition with
// the versioned content type, while bare /metrics stays JSON.
func TestHandlerPromFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total").Inc()
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/metrics?format=prom")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type %q", ct)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if want := "# TYPE c_total counter\nc_total 1\n"; buf.String() != want {
		t.Errorf("body %q, want %q", buf.String(), want)
	}

	jresp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET json: %v", err)
	}
	defer jresp.Body.Close()
	if ct := jresp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("json content type %q", ct)
	}
}
