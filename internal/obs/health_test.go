package obs

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func getProbe(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestHealthLifecycle walks the daemon lifecycle the probes exist for:
// alive-but-unready at start, ready after the warm-up flip, unhealthy
// when a liveness check starts failing, unready again when a readiness
// check degrades.
func TestHealthLifecycle(t *testing.T) {
	h := NewHealth()
	var liveErr, readyErr error
	h.AddLiveness("epoch-streak", func() error { return liveErr })
	h.AddReadiness("baseline", func() error { return readyErr })
	srv := httptest.NewServer(HandlerWith(NewRegistry(), h))
	defer srv.Close()

	if code, body := getProbe(t, srv, "/healthz"); code != http.StatusOK || !strings.HasPrefix(body, "ok\n") {
		t.Errorf("fresh /healthz = %d %q, want 200 ok", code, body)
	}
	if code, body := getProbe(t, srv, "/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "ready: not ready") {
		t.Errorf("fresh /readyz = %d %q, want 503 not-ready", code, body)
	}

	h.SetReady(true)
	if code, _ := getProbe(t, srv, "/readyz"); code != http.StatusOK {
		t.Errorf("ready /readyz = %d, want 200", code)
	}

	liveErr = fmt.Errorf("5 consecutive epoch failures")
	if code, body := getProbe(t, srv, "/healthz"); code != http.StatusServiceUnavailable ||
		!strings.Contains(body, "epoch-streak: 5 consecutive epoch failures") {
		t.Errorf("failing /healthz = %d %q", code, body)
	}
	liveErr = nil

	readyErr = fmt.Errorf("baseline missing")
	if code, body := getProbe(t, srv, "/readyz"); code != http.StatusServiceUnavailable ||
		!strings.Contains(body, "baseline: baseline missing") {
		t.Errorf("degraded /readyz = %d %q", code, body)
	}
}

// TestHealthNil: Handler (nil Health) keeps both probes green — the
// compatibility contract for existing callers.
func TestHealthNil(t *testing.T) {
	srv := httptest.NewServer(Handler(NewRegistry()))
	defer srv.Close()
	for _, path := range []string{"/healthz", "/readyz"} {
		if code, body := getProbe(t, srv, path); code != http.StatusOK || body != "ok\n" {
			t.Errorf("nil-health %s = %d %q, want 200 ok", path, code, body)
		}
	}

	// Nil receiver methods are no-ops, not panics.
	var h *Health
	h.SetReady(true)
	h.AddLiveness("x", func() error { return nil })
	h.AddReadiness("x", func() error { return nil })
	if ok, _ := h.Liveness(); !ok {
		t.Error("nil Health not alive")
	}
	if ok, _ := h.Readiness(); !ok {
		t.Error("nil Health not ready")
	}
}

// TestHealthCheckOrder: probe bodies list checks in sorted name order,
// so two probes of the same state render identically.
func TestHealthCheckOrder(t *testing.T) {
	h := NewHealth()
	h.SetReady(true)
	for _, name := range []string{"zeta", "alpha", "mid"} {
		h.AddReadiness(name, func() error { return nil })
	}
	srv := httptest.NewServer(HandlerWith(NewRegistry(), h))
	defer srv.Close()
	_, body := getProbe(t, srv, "/readyz")
	want := "ok\nalpha: ok\nmid: ok\nzeta: ok\n"
	if body != want {
		t.Errorf("body %q, want %q", body, want)
	}
}
