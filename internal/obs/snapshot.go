package obs

import (
	"encoding/json"
	"io"
	"sort"
	"time"
)

// RegistrySnapshot is the point-in-time JSON form of a registry: every
// counter (vec members flattened as name{label}), gauge, and histogram.
// Counters are sampled individually, not as a consistent cut — the same
// contract as resolver.Stats.
type RegistrySnapshot struct {
	// TakenAt stamps the snapshot (UTC).
	TakenAt time.Time `json:"taken_at"`
	// Counters maps counter names — and vec members as "name{label}" —
	// to their values. Zero-valued instruments are included so the
	// schema is stable across runs.
	Counters map[string]uint64 `json:"counters,omitempty"`
	// Gauges maps gauge names to their values.
	Gauges map[string]int64 `json:"gauges,omitempty"`
	// Histograms maps histogram names to their summarized state.
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures every instrument in the registry. Nil-safe: a nil
// registry yields an empty snapshot.
func (r *Registry) Snapshot() RegistrySnapshot {
	s := RegistrySnapshot{TakenAt: time.Now().UTC()}
	if r == nil {
		return s
	}
	for _, name := range r.names() {
		switch inst := r.get(name).(type) {
		case *Counter:
			if s.Counters == nil {
				s.Counters = make(map[string]uint64)
			}
			s.Counters[name] = inst.Load()
		case *Gauge:
			if s.Gauges == nil {
				s.Gauges = make(map[string]int64)
			}
			s.Gauges[name] = inst.Load()
		case *Histogram:
			if s.Histograms == nil {
				s.Histograms = make(map[string]HistogramSnapshot)
			}
			s.Histograms[name] = inst.SnapshotHistogram()
		case *CounterVec:
			if s.Counters == nil {
				s.Counters = make(map[string]uint64)
			}
			inst.mu.RLock()
			labels := make([]string, 0, len(inst.m))
			for label := range inst.m {
				labels = append(labels, label)
			}
			sort.Strings(labels)
			for _, label := range labels {
				s.Counters[name+"{"+label+"}"] = inst.m[label].Load()
			}
			inst.mu.RUnlock()
		}
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON (map keys sorted by
// encoding/json, so output is diff-stable).
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
