package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"sort"
	"time"
)

// RegistrySnapshot is the point-in-time JSON form of a registry: every
// counter (vec members flattened as name{label}), gauge, and histogram.
// Counters are sampled individually, not as a consistent cut — the same
// contract as resolver.Stats.
type RegistrySnapshot struct {
	// TakenAt stamps the snapshot (UTC).
	TakenAt time.Time `json:"taken_at"`
	// Counters maps counter names — and vec members as "name{label}" —
	// to their values. Zero-valued instruments are included so the
	// schema is stable across runs.
	Counters map[string]uint64 `json:"counters,omitempty"`
	// Gauges maps gauge names to their values.
	Gauges map[string]int64 `json:"gauges,omitempty"`
	// Histograms maps histogram names to their summarized state.
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures every instrument in the registry. Nil-safe: a nil
// registry yields an empty snapshot.
func (r *Registry) Snapshot() RegistrySnapshot {
	s := RegistrySnapshot{TakenAt: time.Now().UTC()}
	if r == nil {
		return s
	}
	for _, name := range r.names() {
		switch inst := r.get(name).(type) {
		case *Counter:
			if s.Counters == nil {
				s.Counters = make(map[string]uint64)
			}
			s.Counters[name] = inst.Load()
		case *Gauge:
			if s.Gauges == nil {
				s.Gauges = make(map[string]int64)
			}
			s.Gauges[name] = inst.Load()
		case *Histogram:
			if s.Histograms == nil {
				s.Histograms = make(map[string]HistogramSnapshot)
			}
			s.Histograms[name] = inst.SnapshotHistogram()
		case *CounterVec:
			if s.Counters == nil {
				s.Counters = make(map[string]uint64)
			}
			inst.mu.RLock()
			labels := make([]string, 0, len(inst.m))
			for label := range inst.m {
				labels = append(labels, label)
			}
			sort.Strings(labels)
			for _, label := range labels {
				s.Counters[name+"{"+label+"}"] = inst.m[label].Load()
			}
			inst.mu.RUnlock()
		}
	}
	return s
}

// MarshalJSON emits the snapshot with metric and label keys in sorted
// order as an explicit contract — snapshots are embedded in committed
// BENCH_*.json files, so two snapshots of the same registry state must
// be byte-identical for the diff to be readable. (encoding/json happens
// to sort map keys today; this makes the ordering deliberate and pinned
// by TestSnapshotJSONDeterministic rather than inherited.)
func (s RegistrySnapshot) MarshalJSON() ([]byte, error) {
	var b bytes.Buffer
	b.WriteString(`{"taken_at":`)
	if err := appendJSON(&b, s.TakenAt); err != nil {
		return nil, err
	}
	if err := appendSortedMap(&b, "counters", s.Counters); err != nil {
		return nil, err
	}
	if err := appendSortedMap(&b, "gauges", s.Gauges); err != nil {
		return nil, err
	}
	if err := appendSortedMap(&b, "histograms", s.Histograms); err != nil {
		return nil, err
	}
	b.WriteByte('}')
	return b.Bytes(), nil
}

func appendJSON(b *bytes.Buffer, v any) error {
	raw, err := json.Marshal(v)
	if err != nil {
		return err
	}
	b.Write(raw)
	return nil
}

// appendSortedMap writes `,"field":{...}` with keys in sorted order,
// omitting the field entirely when the map is empty (matching the
// struct tags' omitempty).
func appendSortedMap[V any](b *bytes.Buffer, field string, m map[string]V) error {
	if len(m) == 0 {
		return nil
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	b.WriteString(`,"` + field + `":{`)
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		if err := appendJSON(b, k); err != nil {
			return err
		}
		b.WriteByte(':')
		if err := appendJSON(b, m[k]); err != nil {
			return err
		}
	}
	b.WriteByte('}')
	return nil
}

// WriteJSON writes the snapshot as indented JSON (keys sorted by
// RegistrySnapshot.MarshalJSON, so output is diff-stable).
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
