package obs

import (
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
)

// Health is the liveness/readiness surface a long-running process hangs
// off its ops mux: /healthz answers "is the process wedged" (liveness)
// and /readyz answers "should traffic/scrapes trust it yet" (readiness).
// Both run a set of pluggable named checks; readiness additionally gates
// on an explicit SetReady flip, so a daemon stays unready through its
// first warm-up epoch however healthy its internals look.
//
// The zero value is usable; a nil *Health is "always healthy, always
// ready" (the Handler wiring for processes that don't care). Checks must
// be safe for concurrent use — they are called from HTTP handlers.
type Health struct {
	ready atomic.Bool

	mu          sync.RWMutex
	liveChecks  map[string]func() error
	readyChecks map[string]func() error
}

// NewHealth returns a Health that is alive but not yet ready.
func NewHealth() *Health {
	return &Health{}
}

// SetReady flips the explicit readiness gate.
func (h *Health) SetReady(ok bool) {
	if h != nil {
		h.ready.Store(ok)
	}
}

// AddLiveness registers a named liveness check; a non-nil error marks
// the process unhealthy. Re-registering a name replaces the check.
func (h *Health) AddLiveness(name string, check func() error) {
	if h == nil || check == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.liveChecks == nil {
		h.liveChecks = make(map[string]func() error)
	}
	h.liveChecks[name] = check
}

// AddReadiness registers a named readiness check, consulted alongside
// the SetReady gate.
func (h *Health) AddReadiness(name string, check func() error) {
	if h == nil || check == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.readyChecks == nil {
		h.readyChecks = make(map[string]func() error)
	}
	h.readyChecks[name] = check
}

// CheckResult is one named check's outcome.
type CheckResult struct {
	Name string
	Err  error
}

// Liveness runs every liveness check and reports overall health plus
// per-check results in sorted name order. A nil Health is healthy.
func (h *Health) Liveness() (bool, []CheckResult) {
	if h == nil {
		return true, nil
	}
	return h.run(func() map[string]func() error { return h.liveChecks })
}

// Readiness runs every readiness check; the process is ready only when
// SetReady(true) has been called and every check passes. A nil Health
// is ready.
func (h *Health) Readiness() (bool, []CheckResult) {
	if h == nil {
		return true, nil
	}
	ok, results := h.run(func() map[string]func() error { return h.readyChecks })
	if !h.ready.Load() {
		ok = false
		results = append(results, CheckResult{Name: "ready", Err: fmt.Errorf("not ready")})
	}
	return ok, results
}

func (h *Health) run(pick func() map[string]func() error) (bool, []CheckResult) {
	h.mu.RLock()
	m := pick()
	names := make([]string, 0, len(m))
	checks := make([]func() error, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		checks = append(checks, m[name])
	}
	h.mu.RUnlock()

	ok := true
	results := make([]CheckResult, len(names))
	for i, name := range names {
		err := checks[i]()
		results[i] = CheckResult{Name: name, Err: err}
		if err != nil {
			ok = false
		}
	}
	return ok, results
}

// healthHandler renders one probe: 200 "ok" plus per-check lines when
// everything passes, 503 with the failing checks otherwise. The body is
// plain text for humans and `kubectl describe`; machines key on the
// status code.
func healthHandler(probe func() (bool, []CheckResult)) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		ok, results := probe()
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if !ok {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		if ok {
			fmt.Fprintln(w, "ok")
		} else {
			fmt.Fprintln(w, "unavailable")
		}
		for _, r := range results {
			if r.Err != nil {
				fmt.Fprintf(w, "%s: %v\n", r.Name, r.Err)
			} else {
				fmt.Fprintf(w, "%s: ok\n", r.Name)
			}
		}
	}
}
