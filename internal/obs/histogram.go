package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the number of histogram slots. Bucket 0 holds sub-
// microsecond observations; bucket i (i >= 1) holds durations in
// [2^(i-1), 2^i) microseconds. 38 slots reach 2^37 µs ≈ 38 hours, far
// past any single query, stage, or scan round this pipeline times; the
// last bucket absorbs overflow.
const histBuckets = 38

// Histogram is a fixed log2-spaced latency histogram. Observe costs two
// atomic adds, a CAS-bounded max update, and a bits.Len64 — no floats,
// no locks, no allocations — so it can sit on the resolver's per-attempt
// path without showing up in a profile. The zero value is ready to use;
// a nil *Histogram discards observations.
//
// Bucket bounds double, so any quantile estimate is exact to within a
// factor of two of the true order statistic and interpolation inside the
// bucket does much better in practice; that resolution is plenty for the
// p50/p90/p99 questions the scan dashboards ask ("is this server 1ms or
// 30ms or timing out"), and what it buys is a histogram that is a single
// fixed-size array shared by every producer.
type Histogram struct {
	counts [histBuckets]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // nanoseconds
	max    atomic.Uint64 // nanoseconds
}

// bucketIndex maps a duration to its bucket.
func bucketIndex(d time.Duration) int {
	us := d.Microseconds()
	if us <= 0 {
		return 0
	}
	idx := bits.Len64(uint64(us))
	if idx >= histBuckets {
		return histBuckets - 1
	}
	return idx
}

// bucketBounds returns the value range [lo, hi) of bucket idx.
func bucketBounds(idx int) (lo, hi time.Duration) {
	if idx == 0 {
		return 0, time.Microsecond
	}
	return time.Duration(1<<(idx-1)) * time.Microsecond,
		time.Duration(uint64(1)<<idx) * time.Microsecond
}

// Observe records one duration. Negative durations count as zero.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	h.counts[bucketIndex(d)].Add(1)
	h.count.Add(1)
	h.sum.Add(uint64(d))
	for {
		cur := h.max.Load()
		if uint64(d) <= cur || h.max.CompareAndSwap(cur, uint64(d)) {
			return
		}
	}
}

// ObserveSince records the time elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) {
	if h != nil {
		h.Observe(time.Since(start))
	}
}

// Count returns the number of observations (0 for nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total observed duration (0 for nil).
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sum.Load())
}

// Max returns the largest observation (0 for nil).
func (h *Histogram) Max() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.max.Load())
}

// Quantile estimates the q-th quantile (q in [0, 1]) by locating the
// bucket holding the target rank and interpolating linearly inside it.
// The estimate is bounded by the bucket's true value range. Returns 0
// when no observations have been recorded.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h == nil {
		return 0
	}
	var counts [histBuckets]uint64
	var total uint64
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, n := range counts {
		if n == 0 {
			continue
		}
		if cum+n < rank {
			cum += n
			continue
		}
		lo, hi := bucketBounds(i)
		// Position of the target rank inside this bucket, treating its
		// n observations as evenly spread over [lo, hi).
		pos := (float64(rank-cum) - 0.5) / float64(n)
		est := time.Duration(float64(lo) + pos*float64(hi-lo))
		// The true order statistic cannot exceed the recorded maximum.
		if m := h.Max(); est > m && m > 0 {
			est = m
		}
		return est
	}
	return h.Max()
}

// BucketCount is one non-empty histogram bucket in a snapshot: Le is
// the exclusive upper bound of the bucket's value range, N the number
// of observations that fell inside it.
type BucketCount struct {
	Le time.Duration `json:"le_ns"`
	N  uint64        `json:"n"`
}

// HistogramSnapshot is the serializable view of a histogram.
type HistogramSnapshot struct {
	Count   uint64        `json:"count"`
	SumNS   int64         `json:"sum_ns"`
	MaxNS   int64         `json:"max_ns"`
	P50NS   int64         `json:"p50_ns"`
	P90NS   int64         `json:"p90_ns"`
	P99NS   int64         `json:"p99_ns"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// SnapshotHistogram captures the histogram's current state. Loads are
// per-bucket atomic, not a consistent cut across buckets.
func (h *Histogram) SnapshotHistogram() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Count: h.Count(),
		SumNS: int64(h.Sum()),
		MaxNS: int64(h.Max()),
		P50NS: int64(h.Quantile(0.50)),
		P90NS: int64(h.Quantile(0.90)),
		P99NS: int64(h.Quantile(0.99)),
	}
	for i := range h.counts {
		if n := h.counts[i].Load(); n > 0 {
			_, hi := bucketBounds(i)
			s.Buckets = append(s.Buckets, BucketCount{Le: hi, N: n})
		}
	}
	return s
}
