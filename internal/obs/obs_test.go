package obs

import (
	"encoding/json"
	"math/rand"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeNilSafety(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Load() != 0 {
		t.Error("nil counter should load 0")
	}
	var g *Gauge
	g.Set(3)
	g.Add(-1)
	if g.Load() != 0 {
		t.Error("nil gauge should load 0")
	}
	var h *Histogram
	h.Observe(time.Second)
	if h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Error("nil histogram should stay empty")
	}
	var v *CounterVec
	v.With("x").Inc()
	var r *Registry
	r.Counter("a").Inc()
	r.Gauge("b").Set(1)
	r.Histogram("c").Observe(time.Second)
	if s := r.Snapshot(); len(s.Counters) != 0 {
		t.Error("nil registry snapshot should be empty")
	}
}

func TestRegistryGetOrCreateShares(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total")
	b := r.Counter("x_total")
	if a != b {
		t.Fatal("same name must return the same counter")
	}
	a.Inc()
	if b.Load() != 1 {
		t.Fatal("shared handle did not observe the increment")
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Fatal("requesting a counter name as a gauge must panic")
		}
	}()
	r.Gauge("x")
}

func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{-time.Second, 0},
		{500 * time.Nanosecond, 0},  // sub-µs
		{time.Microsecond, 1},       // [1µs, 2µs)
		{1999 * time.Nanosecond, 1}, // still 1µs when truncated
		{2 * time.Microsecond, 2},   // [2µs, 4µs)
		{3 * time.Microsecond, 2},   //
		{4 * time.Microsecond, 3},   // [4µs, 8µs)
		{1024 * time.Microsecond, 11},
		{time.Hour, bucketIndex(time.Hour)},
	}
	for _, tc := range cases {
		if got := bucketIndex(tc.d); got != tc.want {
			t.Errorf("bucketIndex(%v) = %d, want %d", tc.d, got, tc.want)
		}
	}
	// Every bucket's bounds must tile the range contiguously.
	for i := 1; i < histBuckets; i++ {
		_, prevHi := bucketBounds(i - 1)
		lo, hi := bucketBounds(i)
		if lo != prevHi {
			t.Errorf("bucket %d: lo %v != previous hi %v", i, lo, prevHi)
		}
		if hi <= lo {
			t.Errorf("bucket %d: hi %v <= lo %v", i, hi, lo)
		}
		// An observation at the exact lower bound lands in bucket i, and
		// one just below it in bucket i-1.
		if got := bucketIndex(lo); got != i {
			t.Errorf("bucketIndex(lo of %d) = %d", i, got)
		}
		if got := bucketIndex(lo - time.Microsecond); lo > time.Microsecond && got != i-1 {
			t.Errorf("bucketIndex(just below lo of %d) = %d", i, got)
		}
	}
}

// TestHistogramQuantilesKnownDistribution checks the percentile math
// against distributions whose order statistics are known exactly. The
// estimate must land within the true value's bucket (factor-of-two
// resolution is the structural guarantee).
func TestHistogramQuantilesKnownDistribution(t *testing.T) {
	// Uniform: 1..1000 µs, one observation each.
	h := &Histogram{}
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	checks := []struct {
		q    float64
		true time.Duration
	}{
		{0.50, 500 * time.Microsecond},
		{0.90, 900 * time.Microsecond},
		{0.99, 990 * time.Microsecond},
	}
	for _, c := range checks {
		got := h.Quantile(c.q)
		lo, hi := bucketBounds(bucketIndex(c.true))
		if got < lo || got >= hi {
			t.Errorf("uniform p%.0f = %v, want within [%v, %v)", c.q*100, got, lo, hi)
		}
	}
	if h.Count() != 1000 {
		t.Errorf("count = %d, want 1000", h.Count())
	}
	if h.Max() != 1000*time.Microsecond {
		t.Errorf("max = %v, want 1ms", h.Max())
	}
	wantSum := time.Duration(1000*1001/2) * time.Microsecond
	if h.Sum() != wantSum {
		t.Errorf("sum = %v, want %v", h.Sum(), wantSum)
	}

	// Bimodal: 90% fast (100µs), 10% slow (50ms) — the healthy-servers-
	// plus-timeouts shape a real scan produces. p50 must sit in the fast
	// mode's bucket, p99 in the slow mode's.
	b := &Histogram{}
	for i := 0; i < 900; i++ {
		b.Observe(100 * time.Microsecond)
	}
	for i := 0; i < 100; i++ {
		b.Observe(50 * time.Millisecond)
	}
	if got := b.Quantile(0.50); bucketIndex(got) != bucketIndex(100*time.Microsecond) {
		t.Errorf("bimodal p50 = %v, want in the 100µs bucket", got)
	}
	if got := b.Quantile(0.99); bucketIndex(got) != bucketIndex(50*time.Millisecond) {
		t.Errorf("bimodal p99 = %v, want in the 50ms bucket", got)
	}

	// Single observation: every quantile is that observation's bucket,
	// clamped by the recorded max.
	s := &Histogram{}
	s.Observe(7 * time.Millisecond)
	for _, q := range []float64{0, 0.5, 1} {
		if got := s.Quantile(q); got > 7*time.Millisecond || got < 4*time.Millisecond {
			t.Errorf("single-obs q%.1f = %v, want within (4ms, 7ms]", q, got)
		}
	}

	// Empty histogram.
	if got := (&Histogram{}).Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %v, want 0", got)
	}
}

// TestHistogramQuantileMonotone: quantile estimates must be monotone in
// q for arbitrary distributions.
func TestHistogramQuantileMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h := &Histogram{}
	for i := 0; i < 5000; i++ {
		h.Observe(time.Duration(rng.Int63n(int64(2 * time.Second))))
	}
	prev := time.Duration(-1)
	for q := 0.0; q <= 1.0; q += 0.01 {
		got := h.Quantile(q)
		if got < prev {
			t.Fatalf("quantile not monotone: q=%.2f gave %v after %v", q, got, prev)
		}
		prev = got
	}
}

// TestConcurrentIncrements hammers every instrument kind from many
// goroutines; run under -race this is the data-race gate, and the final
// totals check that no increment is lost.
func TestConcurrentIncrements(t *testing.T) {
	r := NewRegistry()
	const goroutines = 16
	const perG = 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := r.Counter("c_total")
			h := r.Histogram("h_seconds")
			v := r.CounterVec("v_total")
			gauge := r.Gauge("g")
			for i := 0; i < perG; i++ {
				c.Inc()
				h.Observe(time.Duration(i) * time.Microsecond)
				v.With("a").Inc()
				if g%2 == 0 {
					v.With("b").Inc()
				}
				gauge.Add(1)
				if i%64 == 0 {
					_ = r.Snapshot()
					_ = h.Quantile(0.9)
				}
			}
		}(g)
	}
	wg.Wait()

	if got := r.Counter("c_total").Load(); got != goroutines*perG {
		t.Errorf("counter = %d, want %d", got, goroutines*perG)
	}
	if got := r.Histogram("h_seconds").Count(); got != goroutines*perG {
		t.Errorf("histogram count = %d, want %d", got, goroutines*perG)
	}
	if got := r.CounterVec("v_total").With("a").Load(); got != goroutines*perG {
		t.Errorf("vec[a] = %d, want %d", got, goroutines*perG)
	}
	if got := r.Gauge("g").Load(); got != goroutines*perG {
		t.Errorf("gauge = %d, want %d", got, goroutines*perG)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("scan_domains_done_total").Add(42)
	r.Gauge("scan_domains_total").Set(100)
	r.Histogram("rtt").Observe(3 * time.Millisecond)
	r.CounterVec("outcome_total").With("ok").Add(7)

	s := r.Snapshot()
	if s.Counters["scan_domains_done_total"] != 42 {
		t.Errorf("counter snapshot = %d", s.Counters["scan_domains_done_total"])
	}
	if s.Counters["outcome_total{ok}"] != 7 {
		t.Errorf("vec snapshot = %d", s.Counters["outcome_total{ok}"])
	}
	if s.Gauges["scan_domains_total"] != 100 {
		t.Errorf("gauge snapshot = %d", s.Gauges["scan_domains_total"])
	}
	hs := s.Histograms["rtt"]
	if hs.Count != 1 || hs.SumNS != int64(3*time.Millisecond) {
		t.Errorf("histogram snapshot = %+v", hs)
	}

	raw, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back RegistrySnapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["outcome_total{ok}"] != 7 || back.Histograms["rtt"].Count != 1 {
		t.Errorf("round trip lost data: %+v", back)
	}
}

func TestHTTPHandlerServesSnapshotAndPprof(t *testing.T) {
	r := NewRegistry()
	r.Counter("resolver_sent_total").Add(9)
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != 200 {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	var s RegistrySnapshot
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		t.Fatal(err)
	}
	if s.Counters["resolver_sent_total"] != 9 {
		t.Errorf("served counter = %d, want 9", s.Counters["resolver_sent_total"])
	}

	pp, err := srv.Client().Get(srv.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	_ = pp.Body.Close()
	if pp.StatusCode != 200 {
		t.Errorf("/debug/pprof/cmdline status = %d", pp.StatusCode)
	}
}

// TestSnapshotJSONDeterministic pins the snapshot serialization
// contract: metric and label keys are emitted in sorted order, so two
// snapshots of identical registry state — e.g. embedded in committed
// BENCH_*.json files — are byte-identical and diff cleanly.
func TestSnapshotJSONDeterministic(t *testing.T) {
	build := func() RegistrySnapshot {
		r := NewRegistry()
		// Register in deliberately unsorted order; serialization must
		// not care.
		r.Counter("zeta_total").Add(3)
		r.Counter("alpha_total").Add(1)
		r.Gauge("mid_gauge").Set(-7)
		r.Gauge("another_gauge").Set(9)
		vec := r.CounterVec("outcome_total")
		vec.With("timeout").Add(2)
		vec.With("ok").Add(5)
		vec.With("malformed").Add(1)
		s := r.Snapshot()
		s.TakenAt = time.Unix(1700000000, 0).UTC() // fix the timestamp
		return s
	}

	a, err := json.Marshal(build())
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(build())
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Errorf("identical registries serialized differently:\n%s\n%s", a, b)
	}

	want := `{"taken_at":"2023-11-14T22:13:20Z",` +
		`"counters":{"alpha_total":1,"outcome_total{malformed}":1,"outcome_total{ok}":5,` +
		`"outcome_total{timeout}":2,"zeta_total":3},` +
		`"gauges":{"another_gauge":9,"mid_gauge":-7}}`
	if string(a) != want {
		t.Errorf("snapshot serialization changed:\ngot  %s\nwant %s", a, want)
	}

	// The explicit ordering must stay schema-compatible with the struct
	// tags the reader side uses.
	var back RegistrySnapshot
	if err := json.Unmarshal(a, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["outcome_total{ok}"] != 5 || back.Gauges["mid_gauge"] != -7 {
		t.Errorf("round trip lost data: %+v", back)
	}
}
