package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Prometheus text exposition (format version 0.0.4) for the registry,
// served next to the JSON snapshot. The JSON form is the repo's own
// archival format (embedded in BENCH_*.json); this one exists so a
// stock Prometheus/Grafana stack can scrape a running daemon without a
// translation shim.
//
// Mapping:
//
//   - Counter        -> `# TYPE name counter` + one sample
//   - Gauge          -> `# TYPE name gauge` + one sample
//   - CounterVec     -> counter samples `name{key="label"} v`, labels in
//     sorted order; key is the vec's label key (see CounterVecKeyed)
//   - Histogram      -> `name_seconds` histogram with cumulative
//     `_bucket{le="..."}` samples, `+Inf`, `_sum`, `_count`. Histograms
//     in this codebase observe time.Durations, so bounds and sums are
//     converted from nanoseconds to the seconds base unit Prometheus
//     expects. Bucket bounds are this registry's exclusive upper bounds
//     reused as Prometheus's inclusive `le`; an observation exactly on a
//     power-of-two boundary is attributed one bucket higher than a
//     native Prometheus histogram would place it, which is within the
//     factor-of-two resolution the buckets promise anyway.
//
// Output is deterministic for a given registry state: metrics in sorted
// name order, labels sorted, floats in Go's shortest-round-trip form —
// pinned byte-for-byte by TestWritePromGolden.

// WriteProm writes every instrument in Prometheus text exposition
// format. Nil-safe: a nil registry writes nothing.
func (r *Registry) WriteProm(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	for _, name := range r.names() {
		switch inst := r.get(name).(type) {
		case *Counter:
			fmt.Fprintf(bw, "# TYPE %s counter\n%s %d\n", name, name, inst.Load())
		case *Gauge:
			fmt.Fprintf(bw, "# TYPE %s gauge\n%s %d\n", name, name, inst.Load())
		case *CounterVec:
			writePromVec(bw, name, inst)
		case *Histogram:
			writePromHistogram(bw, name, inst.SnapshotHistogram())
		}
	}
	return bw.Flush()
}

func writePromVec(bw *bufio.Writer, name string, vec *CounterVec) {
	key := vec.labelKey()
	fmt.Fprintf(bw, "# TYPE %s counter\n", name)
	vec.mu.RLock()
	labels := make([]string, 0, len(vec.m))
	for label := range vec.m {
		labels = append(labels, label)
	}
	counts := make(map[string]uint64, len(vec.m))
	for label, c := range vec.m {
		counts[label] = c.Load()
	}
	vec.mu.RUnlock()
	sort.Strings(labels)
	for _, label := range labels {
		fmt.Fprintf(bw, "%s{%s=\"%s\"} %d\n", name, key, escapeLabelValue(label), counts[label])
	}
}

func writePromHistogram(bw *bufio.Writer, name string, s HistogramSnapshot) {
	hname := name + "_seconds"
	fmt.Fprintf(bw, "# TYPE %s histogram\n", hname)
	var cum uint64
	for _, b := range s.Buckets {
		cum += b.N
		fmt.Fprintf(bw, "%s_bucket{le=\"%s\"} %d\n", hname, promFloat(b.Le.Seconds()), cum)
	}
	fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", hname, s.Count)
	fmt.Fprintf(bw, "%s_sum %s\n", hname, promFloat(time.Duration(s.SumNS).Seconds()))
	fmt.Fprintf(bw, "%s_count %d\n", hname, s.Count)
}

// promFloat renders a float in Go's shortest form that round-trips —
// the same value every run, so the golden test can pin exposition bytes.
func promFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// escapeLabelValue escapes a label value per the exposition format:
// backslash, double quote, and line feed.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}
