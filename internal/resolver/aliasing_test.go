package resolver

import (
	"net/netip"
	"reflect"
	"testing"

	"govdns/internal/dnsname"
	"govdns/internal/miniworld"
)

// TestResolveHostReturnsUnaliasedSlice is the regression test for the
// cache-aliasing bug: ResolveHost used to hand back the cache entry's
// own slice (and, under coalescing, the very slice every flight waiter
// shares), so a caller sorting or overwriting its "result" silently
// corrupted what every later cache hit saw.
func TestResolveHostReturnsUnaliasedSlice(t *testing.T) {
	_, _, it := newFixture(t)
	ctx := ctxWithTimeout(t)

	first, err := it.ResolveHost(ctx, "ns1.city.gov.br.")
	if err != nil || len(first) != 1 {
		t.Fatalf("ResolveHost = %v, %v", first, err)
	}

	// Mutate the returned slice the way a careless caller would.
	bogus := netip.MustParseAddr("203.0.113.99")
	first[0] = bogus

	second, err := it.ResolveHost(ctx, "ns1.city.gov.br.")
	if err != nil {
		t.Fatalf("second ResolveHost: %v", err)
	}
	if len(second) != 1 || second[0] != miniworld.CityNS1Addr {
		t.Errorf("cache hit after caller mutation = %v, want [%v]: returned slice aliases the cache", second, miniworld.CityNS1Addr)
	}
	if len(first) > 0 && len(second) > 0 && &first[0] == &second[0] {
		t.Error("two ResolveHost calls share a backing array")
	}
}

// TestZoneServersCachedAliasing pins the other half of the contract:
// the resolver never mutates a ZoneServers after publishing it. A deep
// snapshot of a delegation's parent-zone view must survive arbitrary
// further traffic through the same zones bit-for-bit.
func TestZoneServersCachedAliasing(t *testing.T) {
	_, _, it := newFixture(t)
	ctx := ctxWithTimeout(t)

	d, err := it.Delegation(ctx, "city.gov.br.")
	if err != nil {
		t.Fatalf("Delegation: %v", err)
	}
	snap := deepCopyZoneServers(&d.Parent)

	// Traffic that revisits gov.br. and its hosts from several angles.
	if _, err := it.Delegation(ctx, "single.gov.br."); err != nil {
		t.Fatalf("Delegation(single): %v", err)
	}
	if _, err := it.ResolveHost(ctx, "ns1.city.gov.br."); err != nil {
		t.Fatalf("ResolveHost: %v", err)
	}
	d2, err := it.Delegation(ctx, "city.gov.br.")
	if err != nil {
		t.Fatalf("second Delegation: %v", err)
	}

	for _, got := range []*ZoneServers{&d.Parent, &d2.Parent} {
		if got.Zone != snap.Zone || !reflect.DeepEqual(got.Hosts, snap.Hosts) || !reflect.DeepEqual(got.Addrs, snap.Addrs) {
			t.Errorf("published ZoneServers changed after further traffic:\n got %+v\nwant %+v", got, snap)
		}
	}
}

func deepCopyZoneServers(zs *ZoneServers) *ZoneServers {
	out := &ZoneServers{
		Zone:  zs.Zone,
		Hosts: append([]dnsname.Name(nil), zs.Hosts...),
		Addrs: make(map[dnsname.Name][]netip.Addr, len(zs.Addrs)),
	}
	for h, addrs := range zs.Addrs {
		out.Addrs[h] = append([]netip.Addr(nil), addrs...)
	}
	return out
}
