package resolver

import (
	"context"
	"errors"
	"net/netip"
	"strings"
	"sync"
	"testing"
	"time"

	"govdns/internal/dnsname"
	"govdns/internal/dnswire"
	"govdns/internal/miniworld"
	"govdns/internal/obs"
)

// slowTransport delays every exchange, keeping resolutions in flight long
// enough for concurrent callers to pile onto the singleflight entry.
type slowTransport struct {
	inner Transport
	delay time.Duration
}

func (s *slowTransport) Exchange(ctx context.Context, server netip.Addr, query []byte) ([]byte, error) {
	t := time.NewTimer(s.delay)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-t.C:
	}
	return s.inner.Exchange(ctx, server, query)
}

func TestResolveHostSingleflight(t *testing.T) {
	w := miniworld.Build()
	c := NewClient(&slowTransport{inner: w.Net, delay: 20 * time.Millisecond})
	c.Timeout = 500 * time.Millisecond
	c.Retries = 1
	it := NewIterator(c, w.Roots)
	ctx := ctxWithTimeout(t)

	const callers = 16
	addrs := make([][]netip.Addr, callers)
	errs := make([]error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			addrs[i], errs[i] = it.ResolveHost(ctx, "ns1.provider.com.")
		}(i)
	}
	wg.Wait()

	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if len(addrs[i]) != 1 || addrs[i][0] != miniworld.ProviderNS1Addr {
			t.Errorf("caller %d got %v", i, addrs[i])
		}
	}

	st := it.Stats()
	if st.HostCacheMisses != 1 {
		t.Errorf("HostCacheMisses = %d, want 1 (one shared lookup)", st.HostCacheMisses)
	}
	// Every other caller either joined the in-flight resolution or, if it
	// arrived after completion, hit the cache.
	if got := st.HostCacheHits + st.CoalescedWaits; got != callers-1 {
		t.Errorf("hits+coalesced = %d, want %d", got, callers-1)
	}
	if st.CoalescedWaits == 0 {
		t.Error("no caller coalesced despite a 20ms-per-query transport")
	}
}

func TestNegativeZoneCaching(t *testing.T) {
	w, c, it := newFixture(t)
	children := w.BreakIntermediateZone(2)
	ctx := ctxWithTimeout(t)

	if _, err := it.Delegation(ctx, children[0]); !errors.Is(err, ErrNoServers) {
		t.Fatalf("first walk: err = %v, want ErrNoServers", err)
	}
	st1 := it.Stats()
	sent1 := c.Stats().Sent

	// The second child sits under the same broken zone: the cached
	// negative entry must answer without another build or extra queries
	// beyond the parent referral itself.
	if _, err := it.Delegation(ctx, children[1]); !errors.Is(err, ErrNoServers) {
		t.Fatalf("second walk: err = %v, want ErrNoServers", err)
	}
	st2 := it.Stats()

	if st2.ZoneCacheMisses != st1.ZoneCacheMisses {
		t.Errorf("second walk rebuilt the broken zone: misses %d -> %d",
			st1.ZoneCacheMisses, st2.ZoneCacheMisses)
	}
	if st2.NegativeHits <= st1.NegativeHits {
		t.Errorf("negative hits did not grow: %d -> %d", st1.NegativeHits, st2.NegativeHits)
	}
	// One referral query to reach the cached failure; no re-walk of
	// gone-provider.com.
	if extra := c.Stats().Sent - sent1; extra > 2 {
		t.Errorf("second walk sent %d queries, want <= 2", extra)
	}
}

func TestIteratorStatsCounters(t *testing.T) {
	_, _, it := newFixture(t)
	ctx := ctxWithTimeout(t)

	if _, err := it.ResolveHost(ctx, "ns1.provider.com."); err != nil {
		t.Fatalf("first resolve: %v", err)
	}
	if _, err := it.ResolveHost(ctx, "ns1.provider.com."); err != nil {
		t.Fatalf("second resolve: %v", err)
	}
	if _, err := it.ResolveHost(ctx, "ns.gone-provider.com."); err == nil {
		t.Fatal("dangling host resolved")
	}
	if _, err := it.ResolveHost(ctx, "ns.gone-provider.com."); err == nil {
		t.Fatal("dangling host resolved from cache")
	}

	st := it.Stats()
	if st.HostCacheMisses != 2 {
		t.Errorf("HostCacheMisses = %d, want 2", st.HostCacheMisses)
	}
	if st.HostCacheHits != 1 {
		t.Errorf("HostCacheHits = %d, want 1", st.HostCacheHits)
	}
	if st.NegativeHits != 1 {
		t.Errorf("NegativeHits = %d, want 1", st.NegativeHits)
	}
	if st.ZoneCacheMisses == 0 {
		t.Error("no zone builds recorded")
	}
	if st.Sent == 0 || st.Received == 0 {
		t.Errorf("client counters missing from iterator stats: %+v", st)
	}
}

// TestConcurrentWalksShareZones drives many concurrent delegation walks
// under one parent and checks the zone chain was built exactly once per
// zone — the stampede the singleflight layer exists to prevent.
func TestConcurrentWalksShareZones(t *testing.T) {
	w := miniworld.Build()
	hosted := w.AddHostedChildren(8)
	c := NewClient(&slowTransport{inner: w.Net, delay: 5 * time.Millisecond})
	c.Timeout = 500 * time.Millisecond
	c.Retries = 1
	it := NewIterator(c, w.Roots)
	ctx := ctxWithTimeout(t)

	var wg sync.WaitGroup
	errs := make([]error, len(hosted))
	for i, name := range hosted {
		wg.Add(1)
		go func(i int, name dnsname.Name) {
			defer wg.Done()
			_, errs[i] = it.Delegation(ctx, name)
		}(i, name)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("walk %d: %v", i, err)
		}
	}

	// br. and gov.br. are the only zones those walks build.
	if st := it.Stats(); st.ZoneCacheMisses != 2 {
		t.Errorf("ZoneCacheMisses = %d, want 2 (br., gov.br.)", st.ZoneCacheMisses)
	}
}

func TestFlightGroupBoundedWaitFallsBack(t *testing.T) {
	var g flightGroup[int]
	g.coalesced, g.bypassed = new(obs.Counter), new(obs.Counter)
	block := make(chan struct{})
	started := make(chan struct{})
	leaderDone := make(chan struct{})
	var leaderVal int
	var leaderErr error
	go func() {
		defer close(leaderDone)
		leaderVal, leaderErr = g.do(context.Background(), "k.", 0, func() (int, error) {
			close(started)
			<-block
			return 1, nil
		})
	}()
	<-started

	// A bounded waiter must give up on the stuck leader and run its own
	// fn, without counting as a useful coalesce.
	got, err := g.do(context.Background(), "k.", 5*time.Millisecond, func() (int, error) { return 2, nil })
	if err != nil || got != 2 {
		t.Fatalf("bounded wait fallback = (%d, %v), want (2, nil)", got, err)
	}
	if n := g.bypassed.Load(); n != 1 {
		t.Errorf("bypassed = %d, want 1", n)
	}
	if n := g.coalesced.Load(); n != 0 {
		t.Errorf("coalesced = %d, want 0 (fallback received nothing from the leader)", n)
	}

	close(block)
	<-leaderDone
	if leaderErr != nil || leaderVal != 1 {
		t.Errorf("leader = (%d, %v), want (1, nil)", leaderVal, leaderErr)
	}
}

func TestFlightGroupAbandonedWait(t *testing.T) {
	var g flightGroup[int]
	g.coalesced, g.bypassed = new(obs.Counter), new(obs.Counter)
	block := make(chan struct{})
	started := make(chan struct{})
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		g.do(context.Background(), "k.", 0, func() (int, error) {
			close(started)
			<-block
			return 1, nil
		})
	}()
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := g.do(ctx, "k.", 0, func() (int, error) { return 2, nil })
	if !errors.Is(err, context.Canceled) {
		t.Errorf("abandoned wait error = %v, want wrapped context.Canceled", err)
	}
	if err == nil || !strings.Contains(err.Error(), "abandoned") {
		t.Errorf("abandoned wait error %q does not identify the abandoned wait", err)
	}
	if n := g.coalesced.Load(); n != 0 {
		t.Errorf("coalesced = %d, want 0 (the waiter received no result)", n)
	}

	close(block)
	<-leaderDone
}

// gateTransport holds queries matching hold until release is closed (or
// the query's context ends), passing everything else straight through.
type gateTransport struct {
	inner   Transport
	release chan struct{}
	hold    func(q *dnswire.Message) bool
}

func (g *gateTransport) Exchange(ctx context.Context, server netip.Addr, query []byte) ([]byte, error) {
	if q, err := dnswire.Decode(query); err == nil && g.hold(q) {
		select {
		case <-g.release:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return g.inner.Exchange(ctx, server, query)
}

// TestCrossFlightCycleDoesNotDeadlock reproduces the host-flight ↔
// zone-flight wait cycle: goroutine A leads the host flight for a
// glue-less in-bailiwick NS host and walks into the host's own zone,
// while goroutine B leads that zone's flight and resolves the host.
// Without bounded flight waits both block on each other forever (plus
// every caller coalesced behind them); with them, one side bypasses its
// wait, fails at the depth limit — the delegation is genuinely circular
// and unresolvable — and unwinds the other.
func TestCrossFlightCycleDoesNotDeadlock(t *testing.T) {
	w := miniworld.Build()
	zoneName, host, child := w.AddGluelessZone()
	gate := make(chan struct{})
	tr := &gateTransport{
		inner:   w.Net,
		release: gate,
		hold: func(q *dnswire.Message) bool {
			return len(q.Questions) > 0 && q.Questions[0].Name == host && q.Questions[0].Type == dnswire.TypeA
		},
	}
	c := NewClient(tr)
	c.Timeout = 300 * time.Millisecond
	c.Retries = -1 // single attempt, so the flight-wait bound stays small
	it := NewIterator(c, w.Roots)
	ctx := ctxWithTimeout(t)

	busy := func(check func() bool, what string) {
		t.Helper()
		for i := 0; i < 2000; i++ {
			if check() {
				return
			}
			time.Sleep(time.Millisecond)
		}
		t.Fatalf("%s never became in-flight", what)
	}

	done := make(chan error, 2)
	// A: leads the host flight; its first query is gated so it cannot
	// populate the cache before B is wedged into the cycle.
	go func() {
		_, err := it.ResolveHost(ctx, host)
		done <- err
	}()
	busy(func() bool {
		it.hostFlight.mu.Lock()
		defer it.hostFlight.mu.Unlock()
		_, ok := it.hostFlight.inflight[host]
		return ok
	}, "host flight")

	// B: walks to the child, leads the zone flight, and joins A's host
	// flight from inside the zone build.
	go func() {
		_, err := it.Delegation(ctx, child)
		done <- err
	}()
	busy(func() bool {
		it.zoneFlight.mu.Lock()
		defer it.zoneFlight.mu.Unlock()
		_, ok := it.zoneFlight.inflight[zoneName]
		return ok
	}, "zone flight")
	time.Sleep(20 * time.Millisecond) // let B reach the host-flight join
	close(gate)                       // A now walks into B's zone flight

	for i := 0; i < 2; i++ {
		select {
		case err := <-done:
			if err == nil {
				t.Error("resolution through a circular glue-less delegation unexpectedly succeeded")
			}
		case <-time.After(10 * time.Second):
			t.Fatal("cross-flight deadlock: resolution never completed")
		}
	}
	if st := it.Stats(); st.FlightBypasses == 0 {
		t.Error("FlightBypasses = 0, want > 0 (someone must break the host/zone wait cycle)")
	}
}

// TestTransientZoneFailureNotNegativeCached checks that a zone build
// that failed only because of query timeouts is re-attempted by the next
// walk instead of being replayed from the negative cache — the second
// scan round exists to rule out exactly such transient failures.
func TestTransientZoneFailureNotNegativeCached(t *testing.T) {
	w, _, it := newFixture(t)
	children := w.BreakIntermediateZoneTransient(2)
	ctx := ctxWithTimeout(t)

	_, err := it.Delegation(ctx, children[0])
	if !errors.Is(err, ErrNoServers) {
		t.Fatalf("first walk: err = %v, want ErrNoServers", err)
	}
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("first walk: err = %v, should carry the ErrTimeout cause", err)
	}
	st1 := it.Stats()

	// The second child triggers a fresh build of the flaky zone (a zone
	// cache miss, not a negative hit) — even though the dead host's own
	// failure is served from the host cache, whose stored cause keeps the
	// rebuild classified as transient too.
	_, err = it.Delegation(ctx, children[1])
	if !errors.Is(err, ErrNoServers) {
		t.Fatalf("second walk: err = %v, want ErrNoServers", err)
	}
	st2 := it.Stats()
	if st2.ZoneCacheMisses <= st1.ZoneCacheMisses {
		t.Errorf("timeout-rooted zone failure was negative-cached: misses %d -> %d",
			st1.ZoneCacheMisses, st2.ZoneCacheMisses)
	}
}
