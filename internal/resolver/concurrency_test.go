package resolver

import (
	"context"
	"errors"
	"net/netip"
	"sync"
	"testing"
	"time"

	"govdns/internal/dnsname"
	"govdns/internal/miniworld"
)

// slowTransport delays every exchange, keeping resolutions in flight long
// enough for concurrent callers to pile onto the singleflight entry.
type slowTransport struct {
	inner Transport
	delay time.Duration
}

func (s *slowTransport) Exchange(ctx context.Context, server netip.Addr, query []byte) ([]byte, error) {
	t := time.NewTimer(s.delay)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-t.C:
	}
	return s.inner.Exchange(ctx, server, query)
}

func TestResolveHostSingleflight(t *testing.T) {
	w := miniworld.Build()
	c := NewClient(&slowTransport{inner: w.Net, delay: 20 * time.Millisecond})
	c.Timeout = 500 * time.Millisecond
	c.Retries = 1
	it := NewIterator(c, w.Roots)
	ctx := ctxWithTimeout(t)

	const callers = 16
	addrs := make([][]netip.Addr, callers)
	errs := make([]error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			addrs[i], errs[i] = it.ResolveHost(ctx, "ns1.provider.com.")
		}(i)
	}
	wg.Wait()

	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if len(addrs[i]) != 1 || addrs[i][0] != miniworld.ProviderNS1Addr {
			t.Errorf("caller %d got %v", i, addrs[i])
		}
	}

	st := it.Stats()
	if st.HostCacheMisses != 1 {
		t.Errorf("HostCacheMisses = %d, want 1 (one shared lookup)", st.HostCacheMisses)
	}
	// Every other caller either joined the in-flight resolution or, if it
	// arrived after completion, hit the cache.
	if got := st.HostCacheHits + st.CoalescedWaits; got != callers-1 {
		t.Errorf("hits+coalesced = %d, want %d", got, callers-1)
	}
	if st.CoalescedWaits == 0 {
		t.Error("no caller coalesced despite a 20ms-per-query transport")
	}
}

func TestNegativeZoneCaching(t *testing.T) {
	w, c, it := newFixture(t)
	children := w.BreakIntermediateZone(2)
	ctx := ctxWithTimeout(t)

	if _, err := it.Delegation(ctx, children[0]); !errors.Is(err, ErrNoServers) {
		t.Fatalf("first walk: err = %v, want ErrNoServers", err)
	}
	st1 := it.Stats()
	sent1 := c.Stats().Sent

	// The second child sits under the same broken zone: the cached
	// negative entry must answer without another build or extra queries
	// beyond the parent referral itself.
	if _, err := it.Delegation(ctx, children[1]); !errors.Is(err, ErrNoServers) {
		t.Fatalf("second walk: err = %v, want ErrNoServers", err)
	}
	st2 := it.Stats()

	if st2.ZoneCacheMisses != st1.ZoneCacheMisses {
		t.Errorf("second walk rebuilt the broken zone: misses %d -> %d",
			st1.ZoneCacheMisses, st2.ZoneCacheMisses)
	}
	if st2.NegativeHits <= st1.NegativeHits {
		t.Errorf("negative hits did not grow: %d -> %d", st1.NegativeHits, st2.NegativeHits)
	}
	// One referral query to reach the cached failure; no re-walk of
	// gone-provider.com.
	if extra := c.Stats().Sent - sent1; extra > 2 {
		t.Errorf("second walk sent %d queries, want <= 2", extra)
	}
}

func TestIteratorStatsCounters(t *testing.T) {
	_, _, it := newFixture(t)
	ctx := ctxWithTimeout(t)

	if _, err := it.ResolveHost(ctx, "ns1.provider.com."); err != nil {
		t.Fatalf("first resolve: %v", err)
	}
	if _, err := it.ResolveHost(ctx, "ns1.provider.com."); err != nil {
		t.Fatalf("second resolve: %v", err)
	}
	if _, err := it.ResolveHost(ctx, "ns.gone-provider.com."); err == nil {
		t.Fatal("dangling host resolved")
	}
	if _, err := it.ResolveHost(ctx, "ns.gone-provider.com."); err == nil {
		t.Fatal("dangling host resolved from cache")
	}

	st := it.Stats()
	if st.HostCacheMisses != 2 {
		t.Errorf("HostCacheMisses = %d, want 2", st.HostCacheMisses)
	}
	if st.HostCacheHits != 1 {
		t.Errorf("HostCacheHits = %d, want 1", st.HostCacheHits)
	}
	if st.NegativeHits != 1 {
		t.Errorf("NegativeHits = %d, want 1", st.NegativeHits)
	}
	if st.ZoneCacheMisses == 0 {
		t.Error("no zone builds recorded")
	}
	if st.Sent == 0 || st.Received == 0 {
		t.Errorf("client counters missing from iterator stats: %+v", st)
	}
}

// TestConcurrentWalksShareZones drives many concurrent delegation walks
// under one parent and checks the zone chain was built exactly once per
// zone — the stampede the singleflight layer exists to prevent.
func TestConcurrentWalksShareZones(t *testing.T) {
	w := miniworld.Build()
	hosted := w.AddHostedChildren(8)
	c := NewClient(&slowTransport{inner: w.Net, delay: 5 * time.Millisecond})
	c.Timeout = 500 * time.Millisecond
	c.Retries = 1
	it := NewIterator(c, w.Roots)
	ctx := ctxWithTimeout(t)

	var wg sync.WaitGroup
	errs := make([]error, len(hosted))
	for i, name := range hosted {
		wg.Add(1)
		go func(i int, name dnsname.Name) {
			defer wg.Done()
			_, errs[i] = it.Delegation(ctx, name)
		}(i, name)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("walk %d: %v", i, err)
		}
	}

	// br. and gov.br. are the only zones those walks build.
	if st := it.Stats(); st.ZoneCacheMisses != 2 {
		t.Errorf("ZoneCacheMisses = %d, want 2 (br., gov.br.)", st.ZoneCacheMisses)
	}
}
