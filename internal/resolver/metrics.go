package resolver

import (
	"net/netip"
	"sync"
	"time"

	"govdns/internal/obs"
)

// Metrics holds the resolver's instrument handles on an obs.Registry.
// It is the single counter system behind both the programmatic Stats
// snapshot and the registry's JSON/HTTP form: every counter the resolver
// maintained as a private atomic now lives here, plus the distributions
// only a registry can express — per-attempt RTT histograms and
// per-server outcome counters (ZDNS-style per-query visibility, and the
// per-server latency/outcome view Septiadi et al. build their resilience
// analysis on).
//
// A Client without explicit metrics lazily creates a private registry,
// so zero-configured clients keep working and Stats stays cheap; share
// one registry across components (client, scanner, chaos) by building a
// Metrics over it and attaching with Client.SetMetrics before first use.
type Metrics struct {
	reg *obs.Registry

	// Query-load counters (the former Client atomics).
	sent, received, timeouts, mismatches   *obs.Counter
	duplicates, truncations, qidMismatches *obs.Counter
	questionMismatches, malformed          *obs.Counter

	// Iterator cache and coalescing counters (the former Iterator
	// atomics; the flight counters are shared by the host and zone
	// flight groups).
	hostHits, hostMisses, zoneHits, zoneMisses *obs.Counter
	negHits, coalesced, bypassed               *obs.Counter

	// rtt is the per-attempt round-trip latency of every transport
	// exchange, successful or not (a timeout observes the full wait).
	rtt *obs.Histogram

	// outcomes is the per-server outcome family, flattened into the
	// registry as resolver_server_outcome_total{addr/outcome}. The
	// per-address handle cache keeps addr.String() off the hot path.
	outcomes  *obs.CounterVec
	serversMu sync.RWMutex
	servers   map[netip.Addr]*serverCounters
}

// serverCounters are one server address's outcome handles.
type serverCounters struct {
	ok, timeout, reject *obs.Counter
}

// NewMetrics builds the resolver's instruments on r. Instruments are
// get-or-create, so two Metrics over the same registry share counters.
func NewMetrics(r *obs.Registry) *Metrics {
	return &Metrics{
		reg:                r,
		sent:               r.Counter("resolver_sent_total"),
		received:           r.Counter("resolver_received_total"),
		timeouts:           r.Counter("resolver_timeouts_total"),
		mismatches:         r.Counter("resolver_mismatches_total"),
		duplicates:         r.Counter("resolver_duplicates_total"),
		truncations:        r.Counter("resolver_truncations_total"),
		qidMismatches:      r.Counter("resolver_qid_mismatches_total"),
		questionMismatches: r.Counter("resolver_question_mismatches_total"),
		malformed:          r.Counter("resolver_malformed_total"),
		hostHits:           r.Counter("resolver_host_cache_hits_total"),
		hostMisses:         r.Counter("resolver_host_cache_misses_total"),
		zoneHits:           r.Counter("resolver_zone_cache_hits_total"),
		zoneMisses:         r.Counter("resolver_zone_cache_misses_total"),
		negHits:            r.Counter("resolver_negative_hits_total"),
		coalesced:          r.Counter("resolver_coalesced_waits_total"),
		bypassed:           r.Counter("resolver_flight_bypasses_total"),
		rtt:                r.Histogram("resolver_attempt_rtt"),
		outcomes:           r.CounterVecKeyed("resolver_server_outcome_total", "outcome"),
		servers:            make(map[netip.Addr]*serverCounters),
	}
}

// Registry returns the registry the instruments live on (for snapshots
// and the HTTP endpoint).
func (m *Metrics) Registry() *obs.Registry { return m.reg }

// server returns the outcome handles for addr, creating and caching
// them on first sight of the address.
func (m *Metrics) server(addr netip.Addr) *serverCounters {
	m.serversMu.RLock()
	sc := m.servers[addr]
	m.serversMu.RUnlock()
	if sc != nil {
		return sc
	}
	m.serversMu.Lock()
	defer m.serversMu.Unlock()
	if sc := m.servers[addr]; sc != nil {
		return sc
	}
	a := addr.String()
	sc = &serverCounters{
		ok:      m.outcomes.With(a + "/ok"),
		timeout: m.outcomes.With(a + "/timeout"),
		reject:  m.outcomes.With(a + "/reject"),
	}
	m.servers[addr] = sc
	return sc
}

// observeRTT records one transport exchange's round-trip time.
func (m *Metrics) observeRTT(start time.Time) {
	m.rtt.ObserveSince(start)
}
