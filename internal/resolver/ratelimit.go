package resolver

import (
	"context"
	"net/netip"
	"sync"
	"time"
)

// RateLimit wraps a transport with a global token-bucket limiter, the
// § III-D courtesy the paper applied to its measurements ("we also
// limited the rate of our queries"). qps bounds the long-run query rate;
// burst extra queries may pass back-to-back before pacing kicks in.
// A qps of zero or less returns the transport unchanged.
func RateLimit(t Transport, qps float64, burst int) Transport {
	if qps <= 0 {
		return t
	}
	if burst < 1 {
		burst = 1
	}
	rl := &rateLimited{
		inner:    t,
		interval: time.Duration(float64(time.Second) / qps),
		tokens:   float64(burst),
		burst:    float64(burst),
		last:     time.Now(),
	}
	rl.releaser, _ = t.(ResponseReleaser)
	return rl
}

// rateLimited is a token bucket: tokens refill at 1/interval and each
// exchange spends one, waiting when the bucket is empty.
type rateLimited struct {
	inner    Transport
	releaser ResponseReleaser
	interval time.Duration

	mu     sync.Mutex
	tokens float64
	burst  float64
	last   time.Time
}

// Exchange implements Transport.
func (r *rateLimited) Exchange(ctx context.Context, server netip.Addr, query []byte) ([]byte, error) {
	if err := r.wait(ctx); err != nil {
		return nil, err
	}
	return r.inner.Exchange(ctx, server, query)
}

func (r *rateLimited) wait(ctx context.Context) error {
	r.mu.Lock()
	now := time.Now()
	r.tokens += float64(now.Sub(r.last)) / float64(r.interval)
	if r.tokens > r.burst {
		r.tokens = r.burst
	}
	r.last = now
	if r.tokens >= 1 {
		r.tokens--
		r.mu.Unlock()
		return nil
	}
	// Reserve the next token by going into debt, and sleep until the
	// refill covers it; concurrent waiters queue up behind the debt.
	r.tokens--
	delay := time.Duration(-r.tokens * float64(r.interval))
	r.mu.Unlock()

	timer := time.NewTimer(delay)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		// The reservation was never used: refund it, or the debt of
		// every cancelled waiter would keep pacing queries that no
		// longer exist and depress the steady-state rate below qps.
		// Refilling happens on demand from elapsed time, so putting
		// the token back is exact; the bucket was below 1 when we
		// reserved, so the refund cannot overflow burst by itself,
		// but clamp anyway in case the timer raced a long idle gap.
		r.mu.Lock()
		r.tokens++
		if r.tokens > r.burst {
			r.tokens = r.burst
		}
		r.mu.Unlock()
		return ctx.Err()
	case <-timer.C:
		return nil
	}
}

// ReleaseResponse forwards pooled buffers to the transport that
// produced them; on a non-pooling inner transport it is absent from
// the limiter too (the client checks the cached assertion, but a
// forwarder that silently dropped buffers would mask a wiring bug, so
// forward only when inner pools).
func (r *rateLimited) ReleaseResponse(buf []byte) {
	if r.releaser != nil {
		r.releaser.ReleaseResponse(buf)
	}
}

var _ Transport = (*rateLimited)(nil)
var _ ResponseReleaser = (*rateLimited)(nil)
