package resolver

import (
	"context"
	"testing"
	"time"

	"govdns/internal/dnswire"
	"govdns/internal/miniworld"
)

func TestRateLimitPacesQueries(t *testing.T) {
	w := miniworld.Build()
	limited := RateLimit(w.Net, 100, 1) // 100 qps, no burst headroom
	c := NewClient(limited)
	c.Timeout = 50 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	start := time.Now()
	const n = 12
	for i := 0; i < n; i++ {
		if _, err := c.Query(ctx, miniworld.GovNS1Addr, "gov.br.", dnswire.TypeNS); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
	elapsed := time.Since(start)
	// 12 queries at 100 qps need >= ~110ms (first is free).
	if elapsed < 100*time.Millisecond {
		t.Errorf("%d queries in %v; rate limit not applied", n, elapsed)
	}
}

func TestRateLimitBurst(t *testing.T) {
	w := miniworld.Build()
	limited := RateLimit(w.Net, 10, 8) // slow rate but a burst allowance
	c := NewClient(limited)
	c.Timeout = 50 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	start := time.Now()
	for i := 0; i < 8; i++ {
		if _, err := c.Query(ctx, miniworld.GovNS1Addr, "gov.br.", dnswire.TypeNS); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
	if elapsed := time.Since(start); elapsed > 300*time.Millisecond {
		t.Errorf("burst of 8 took %v; burst allowance not honoured", elapsed)
	}
}

func TestRateLimitZeroDisables(t *testing.T) {
	w := miniworld.Build()
	if got := RateLimit(w.Net, 0, 5); got != Transport(w.Net) {
		t.Error("qps <= 0 should return the transport unchanged")
	}
}

func TestRateLimitHonoursCancellation(t *testing.T) {
	w := miniworld.Build()
	limited := RateLimit(w.Net, 0.5, 1) // one query per 2s
	c := NewClient(limited)
	c.Timeout = 5 * time.Second
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()

	// First query consumes the token; the second must give up on ctx.
	_, _ = c.Query(ctx, miniworld.GovNS1Addr, "gov.br.", dnswire.TypeNS)
	start := time.Now()
	_, err := c.Query(ctx, miniworld.GovNS1Addr, "gov.br.", dnswire.TypeNS)
	if err == nil {
		t.Fatal("second query succeeded despite exhausted context")
	}
	if time.Since(start) > time.Second {
		t.Error("cancelled wait did not return promptly")
	}
}
