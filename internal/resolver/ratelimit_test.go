package resolver

import (
	"context"
	"net/netip"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"govdns/internal/chaos"
	"govdns/internal/dnswire"
	"govdns/internal/miniworld"
)

func TestRateLimitPacesQueries(t *testing.T) {
	w := miniworld.Build()
	limited := RateLimit(w.Net, 100, 1) // 100 qps, no burst headroom
	c := NewClient(limited)
	c.Timeout = 50 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	start := time.Now()
	const n = 12
	for i := 0; i < n; i++ {
		if _, err := c.Query(ctx, miniworld.GovNS1Addr, "gov.br.", dnswire.TypeNS); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
	elapsed := time.Since(start)
	// 12 queries at 100 qps need >= ~110ms (first is free).
	if elapsed < 100*time.Millisecond {
		t.Errorf("%d queries in %v; rate limit not applied", n, elapsed)
	}
}

func TestRateLimitBurst(t *testing.T) {
	w := miniworld.Build()
	limited := RateLimit(w.Net, 10, 8) // slow rate but a burst allowance
	c := NewClient(limited)
	c.Timeout = 50 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	start := time.Now()
	for i := 0; i < 8; i++ {
		if _, err := c.Query(ctx, miniworld.GovNS1Addr, "gov.br.", dnswire.TypeNS); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
	if elapsed := time.Since(start); elapsed > 300*time.Millisecond {
		t.Errorf("burst of 8 took %v; burst allowance not honoured", elapsed)
	}
}

func TestRateLimitZeroDisables(t *testing.T) {
	w := miniworld.Build()
	if got := RateLimit(w.Net, 0, 5); got != Transport(w.Net) {
		t.Error("qps <= 0 should return the transport unchanged")
	}
}

func TestRateLimitHonoursCancellation(t *testing.T) {
	w := miniworld.Build()
	limited := RateLimit(w.Net, 0.5, 1) // one query per 2s
	c := NewClient(limited)
	c.Timeout = 5 * time.Second
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()

	// First query consumes the token; the second must give up on ctx.
	_, _ = c.Query(ctx, miniworld.GovNS1Addr, "gov.br.", dnswire.TypeNS)
	start := time.Now()
	_, err := c.Query(ctx, miniworld.GovNS1Addr, "gov.br.", dnswire.TypeNS)
	if err == nil {
		t.Fatal("second query succeeded despite exhausted context")
	}
	if time.Since(start) > time.Second {
		t.Error("cancelled wait did not return promptly")
	}
}

// TestRateLimitRefundsCancelledWaiters is the regression test for the
// lost-reservation bug: a waiter that reserved a token by going into
// debt and was then ctx-cancelled never spent its reservation, but the
// debt stayed on the bucket, so every cancelled waiter permanently
// pushed real traffic one interval further into the future. After a
// burst of cancellations, steady-state throughput must come straight
// back to the configured rate.
func TestRateLimitRefundsCancelledWaiters(t *testing.T) {
	const qps = 200.0 // 5ms interval
	limited := RateLimit(nopTransport{}, qps, 1).(*rateLimited)
	interval := limited.interval

	// Consume the single burst token so every later waiter reserves debt.
	if err := limited.wait(context.Background()); err != nil {
		t.Fatalf("priming wait: %v", err)
	}

	// Pile up cancelled waiters. Each reserves a token and must refund
	// it on the ctx.Done() path.
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	const n = 50
	for i := 0; i < n; i++ {
		if err := limited.wait(cancelled); err == nil {
			t.Fatal("cancelled waiter was admitted")
		}
	}

	// Steady state: k paced waits should take about k intervals. Without
	// the refund the n dead reservations add n intervals (~250ms) of
	// debt in front of them.
	const k = 5
	start := time.Now()
	for i := 0; i < k; i++ {
		if err := limited.wait(context.Background()); err != nil {
			t.Fatalf("post-cancel wait %d: %v", i, err)
		}
	}
	elapsed := time.Since(start)
	if max := time.Duration(3*k) * interval; elapsed > max {
		t.Errorf("%d waits after %d cancellations took %v (> %v); reservations not refunded", k, n, elapsed, max)
	}
	// The refund must not mint tokens either: the waits stay paced.
	if min := time.Duration(k-2) * interval; elapsed < min {
		t.Errorf("%d waits took only %v (< %v); refund over-credited the bucket", k, elapsed, min)
	}
}

// nopTransport satisfies Transport without doing anything; tests that
// exercise the limiter's wait path directly never reach it.
type nopTransport struct{}

func (nopTransport) Exchange(context.Context, netip.Addr, []byte) ([]byte, error) {
	return nil, nil
}

// admissionCounter counts how many exchanges the rate limiter lets
// through to the transport beneath it.
type admissionCounter struct {
	inner Transport
	n     atomic.Int64
}

func (a *admissionCounter) Exchange(ctx context.Context, server netip.Addr, query []byte) ([]byte, error) {
	a.n.Add(1)
	return a.inner.Exchange(ctx, server, query)
}

// TestRateLimitUnderConcurrentChaos hammers the limiter from many
// goroutines through a chaotic transport — duplicated responses, delay
// spikes, and short per-call deadlines that abandon waits mid-flight —
// and checks the token-bucket bound: admissions can never exceed
// burst + qps×elapsed, no matter how clients misbehave. Abandoned waits
// refund their reservation, but must never mint tokens beyond it.
func TestRateLimitUnderConcurrentChaos(t *testing.T) {
	w := miniworld.Build()
	tr := chaos.Wrap(w.Net, 11,
		chaos.Persistent(chaos.Duplicate, 0.3),
		chaos.DelaySpike(5*time.Millisecond, 0.5),
	)
	counted := &admissionCounter{inner: tr}
	const (
		qps   = 500.0
		burst = 20
	)
	limited := RateLimit(counted, qps, burst)

	const goroutines = 8
	const perG = 25
	start := time.Now()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				wire, err := dnswire.Encode(dnswire.NewQuery(uint16(g*perG+i), "gov.br.", dnswire.TypeNS))
				if err != nil {
					t.Error(err)
					return
				}
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
				_, _ = limited.Exchange(ctx, miniworld.GovNS1Addr, wire)
				cancel()
			}
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(start)

	admitted := counted.n.Load()
	if admitted == 0 {
		t.Fatal("no exchanges admitted; the test is vacuous")
	}
	if tr.Stats().Total() == 0 {
		t.Fatal("chaos injected nothing; the test is vacuous")
	}
	// elapsed is measured past the last admission, so the bound needs no
	// slack beyond one token of measurement skew.
	bound := float64(burst) + qps*elapsed.Seconds() + 1
	if float64(admitted) > bound {
		t.Errorf("limiter over-admitted: %d exchanges in %v exceeds burst %d + %.0f qps (bound %.1f)",
			admitted, elapsed, burst, qps, bound)
	}
}
