// Package resolver implements the DNS query client used by the
// measurement pipeline: single-server queries with retries and timeouts,
// and full iterative resolution from root hints (referral chasing, glue
// handling, out-of-bailiwick nameserver resolution with caching).
package resolver

import (
	"context"
	"errors"
	"fmt"
	"net/netip"
	"sync/atomic"
	"time"

	"govdns/internal/dnsname"
	"govdns/internal/dnswire"
)

// Transport carries wire-format DNS messages to a server address. It is
// implemented by simnet.Network (in-memory) and authserver.UDPTransport
// (real sockets).
type Transport interface {
	Exchange(ctx context.Context, server netip.Addr, query []byte) ([]byte, error)
}

// Client errors.
var (
	// ErrTimeout indicates no response was received after all retries.
	// A server that times out for a zone is the defining signal of a
	// defective (lame) delegation.
	ErrTimeout = errors.New("resolver: query timed out")
	// ErrMismatch indicates a response whose ID or question does not
	// match the query.
	ErrMismatch = errors.New("resolver: response mismatch")
	// ErrTruncated indicates a response with the TC bit set. The study's
	// NS lookups fit in 512 bytes, so truncation signals something wrong
	// rather than a need for TCP fallback.
	ErrTruncated = errors.New("resolver: response truncated")
)

// Defaults for Client fields left zero.
const (
	DefaultTimeout = 500 * time.Millisecond
	DefaultRetries = 2
)

// Client sends DNS queries to explicit server addresses.
type Client struct {
	// Transport carries the messages. Required.
	Transport Transport
	// Timeout bounds each individual attempt. Defaults to
	// DefaultTimeout.
	Timeout time.Duration
	// Retries is the number of additional attempts after the first
	// times out. Defaults to DefaultRetries. Non-timeout errors
	// (e.g. FORMERR responses) are returned immediately.
	Retries int

	nextID atomic.Uint32

	// Load accounting (§ III-D: the paper tracked and limited the load
	// its measurements placed on operators).
	sent       atomic.Uint64
	received   atomic.Uint64
	timeouts   atomic.Uint64
	mismatches atomic.Uint64
}

// Stats is a snapshot of resolver counters. Client.Stats fills the
// query-load fields; Iterator.Stats additionally fills the cache and
// coalescing fields. All counters are maintained atomically.
type Stats struct {
	// Sent counts query attempts put on the wire (retries included).
	Sent uint64
	// Received counts validated responses.
	Received uint64
	// Timeouts counts attempts that got no answer.
	Timeouts uint64
	// Mismatches counts responses rejected by validation.
	Mismatches uint64

	// HostCacheHits counts host resolutions served from cache;
	// HostCacheMisses counts full lookups actually performed.
	HostCacheHits, HostCacheMisses uint64
	// ZoneCacheHits counts zone-server sets served from cache;
	// ZoneCacheMisses counts zone builds actually performed.
	ZoneCacheHits, ZoneCacheMisses uint64
	// NegativeHits counts host or zone requests answered from a cached
	// failure.
	NegativeHits uint64
	// CoalescedWaits counts resolutions that joined another caller's
	// in-flight work and received its result instead of duplicating it
	// (singleflight). Abandoned or bypassed waits are not counted.
	CoalescedWaits uint64
	// FlightBypasses counts singleflight waits abandoned at the
	// deadlock-avoidance bound, where the waiter fell back to doing the
	// work itself (see flightGroup.do). Nonzero values are expected only
	// on pathological shapes like a zone whose in-bailiwick NS host has
	// no glue.
	FlightBypasses uint64
}

// Stats returns the current counter snapshot.
func (c *Client) Stats() Stats {
	return Stats{
		Sent:       c.sent.Load(),
		Received:   c.received.Load(),
		Timeouts:   c.timeouts.Load(),
		Mismatches: c.mismatches.Load(),
	}
}

// NewClient returns a client over t with default timeout and retries.
func NewClient(t Transport) *Client {
	return &Client{Transport: t}
}

func (c *Client) timeout() time.Duration {
	if c.Timeout > 0 {
		return c.Timeout
	}
	return DefaultTimeout
}

func (c *Client) retries() int {
	if c.Retries > 0 {
		return c.Retries
	}
	if c.Retries < 0 {
		return 0
	}
	return DefaultRetries
}

// Query sends (name, qtype) to the server and returns the decoded,
// validated response. Timeouts are retried up to c.Retries times; the
// returned error wraps ErrTimeout when every attempt timed out.
func (c *Client) Query(ctx context.Context, server netip.Addr, name dnsname.Name, qtype dnswire.Type) (*dnswire.Message, error) {
	attempts := 1 + c.retries()
	var lastErr error
	for i := 0; i < attempts; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		resp, err := c.attempt(ctx, server, name, qtype)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		// Only timeouts are worth retrying; anything else (a decoded
		// but mismatched response, a transport failure that is not a
		// deadline) is deterministic.
		if !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, ErrTimeout) {
			return nil, err
		}
	}
	return nil, fmt.Errorf("%w: %s %s @%s after %d attempts: %v",
		ErrTimeout, name, qtype, server, attempts, lastErr)
}

func (c *Client) attempt(ctx context.Context, server netip.Addr, name dnsname.Name, qtype dnswire.Type) (*dnswire.Message, error) {
	id := uint16(c.nextID.Add(1))
	query := dnswire.NewQuery(id, name, qtype)
	wire, err := dnswire.Encode(query)
	if err != nil {
		return nil, fmt.Errorf("resolver: encoding query: %w", err)
	}

	attemptCtx, cancel := context.WithTimeout(ctx, c.timeout())
	defer cancel()
	c.sent.Add(1)
	respWire, err := c.Transport.Exchange(attemptCtx, server, wire)
	if err != nil {
		c.timeouts.Add(1)
		if attemptCtx.Err() != nil && ctx.Err() == nil {
			return nil, fmt.Errorf("%w: attempt deadline: %v", context.DeadlineExceeded, err)
		}
		return nil, err
	}
	resp, err := dnswire.Decode(respWire)
	if err != nil {
		c.mismatches.Add(1)
		return nil, fmt.Errorf("resolver: decoding response: %w", err)
	}
	if err := validate(query, resp); err != nil {
		c.mismatches.Add(1)
		return nil, err
	}
	if resp.Header.Truncated {
		c.mismatches.Add(1)
		return nil, fmt.Errorf("%w: %s %s @%s", ErrTruncated, name, qtype, server)
	}
	c.received.Add(1)
	return resp, nil
}

// validate checks the response against its query per classic resolver
// rules: matching ID, QR set, matching question.
func validate(query, resp *dnswire.Message) error {
	if resp.Header.ID != query.Header.ID {
		return fmt.Errorf("%w: id %d != %d", ErrMismatch, resp.Header.ID, query.Header.ID)
	}
	if !resp.Header.Response {
		return fmt.Errorf("%w: QR bit clear", ErrMismatch)
	}
	if len(resp.Questions) > 0 {
		got, want := resp.Questions[0], query.Questions[0]
		if got.Name != want.Name || got.Type != want.Type || got.Class != want.Class {
			return fmt.Errorf("%w: question %v != %v", ErrMismatch, got, want)
		}
	}
	return nil
}
