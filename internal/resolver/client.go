// Package resolver implements the DNS query client used by the
// measurement pipeline: single-server queries with retries and timeouts,
// and full iterative resolution from root hints (referral chasing, glue
// handling, out-of-bailiwick nameserver resolution with caching).
package resolver

import (
	"context"
	"errors"
	"fmt"
	"net/netip"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"govdns/internal/dnsname"
	"govdns/internal/dnswire"
	"govdns/internal/obs"
	"govdns/internal/trace"
)

// Transport carries wire-format DNS messages to a server address. It is
// implemented by simnet.Network (in-memory), authserver.UDPTransport
// (dial-per-exchange real sockets — the slow, portable reference path),
// and udpx.BatchTransport (the shared-socket batched path real-network
// scans default to). The returned response buffer is owned by the
// caller unless the transport also implements ResponseReleaser, in
// which case the caller returns it once decoded.
type Transport interface {
	Exchange(ctx context.Context, server netip.Addr, query []byte) ([]byte, error)
}

// ResponseReleaser is optionally implemented by transports that pool
// their response buffers (udpx.BatchTransport, authserver.UDPTransport).
// The client calls ReleaseResponse exactly once per successful Exchange,
// right after decoding the wire image — Arena.Decode copies every byte
// the decoded message retains, so the buffer is dead the moment decode
// returns. Wrapping transports (chaos, rate limiting) forward the call
// to the transport that produced the buffer.
type ResponseReleaser interface {
	ReleaseResponse(buf []byte)
}

// Client errors.
var (
	// ErrTimeout indicates no response was received after all retries.
	// A server that times out for a zone is the defining signal of a
	// defective (lame) delegation.
	ErrTimeout = errors.New("resolver: query timed out")
	// ErrMismatch indicates a response whose ID or question does not
	// match the query.
	ErrMismatch = errors.New("resolver: response mismatch")
	// ErrTruncated indicates a response with the TC bit set. The study's
	// NS lookups fit in 512 bytes, so truncation signals something wrong
	// rather than a need for TCP fallback.
	ErrTruncated = errors.New("resolver: response truncated")
)

// Defaults for Client fields left zero.
const (
	DefaultTimeout = 500 * time.Millisecond
	DefaultRetries = 2
	// DefaultMaxDiscards bounds how many rejected datagrams one attempt
	// will discard before giving up on the attempt. A UDP client that
	// stopped listening after the first stray packet would be trivially
	// jammed by any duplicate on the path.
	DefaultMaxDiscards = 4
)

// acceptedRing is how many recently accepted transaction IDs are kept
// per server, to tell a late duplicate of a past answer from fresh QID
// corruption.
const acceptedRing = 8

// Client sends DNS queries to explicit server addresses.
type Client struct {
	// Transport carries the messages. Required.
	Transport Transport
	// Timeout bounds each individual attempt. Defaults to
	// DefaultTimeout.
	Timeout time.Duration
	// Retries is the number of additional attempts after the first
	// fails transiently (timeout, rejected responses, truncation).
	// Defaults to DefaultRetries. Other errors are returned immediately.
	Retries int
	// MaxDiscards bounds how many rejected responses a single attempt
	// discards before the attempt fails with ErrMismatch. Defaults to
	// DefaultMaxDiscards; negative disables discarding (first rejected
	// response fails the attempt).
	MaxDiscards int

	// WirePool supplies the codec arenas queries encode and decode on.
	// Defaults to dnswire.DefaultPool; set an explicit pool to isolate
	// the client's arena traffic or to run with recycling disabled
	// (dnswire.Pool.NoRecycle) in invariance tests.
	WirePool *dnswire.Pool

	nextID atomic.Uint32

	// releaser caches the Transport's ResponseReleaser assertion so the
	// hot path pays a nil check, not an interface assertion, per
	// exchange.
	releaserOnce sync.Once
	releaser     ResponseReleaser

	// Load accounting (§ III-D: the paper tracked and limited the load
	// its measurements placed on operators) lives on an obs registry —
	// a private one unless SetMetrics attached a shared one first.
	metricsOnce sync.Once
	m           *Metrics

	// accepted remembers the last few transaction IDs validated per
	// server so a replayed old answer is classified as a duplicate
	// rather than QID corruption.
	acceptedMu sync.Mutex
	accepted   map[netip.Addr][]uint16
}

// Stats is a snapshot of resolver counters. Client.Stats fills the
// query-load fields; Iterator.Stats additionally fills the cache and
// coalescing fields. All counters are maintained atomically.
type Stats struct {
	// Sent counts query attempts put on the wire (retries included).
	Sent uint64
	// Received counts validated responses.
	Received uint64
	// Timeouts counts attempts that got no answer.
	Timeouts uint64
	// Mismatches counts responses rejected by validation (the sum of
	// the per-class counters below).
	Mismatches uint64
	// Duplicates counts rejected responses whose transaction ID matched
	// a recently accepted answer from the same server — late or
	// replayed datagrams.
	Duplicates uint64
	// Truncations counts responses rejected for carrying the TC bit.
	Truncations uint64
	// QIDMismatches counts responses rejected for an unknown
	// transaction ID.
	QIDMismatches uint64
	// QuestionMismatches counts responses whose echoed question did not
	// match the query.
	QuestionMismatches uint64
	// Malformed counts responses that failed to decode or arrived with
	// the QR bit clear.
	Malformed uint64

	// HostCacheHits counts host resolutions served from cache;
	// HostCacheMisses counts full lookups actually performed.
	HostCacheHits, HostCacheMisses uint64
	// ZoneCacheHits counts zone-server sets served from cache;
	// ZoneCacheMisses counts zone builds actually performed.
	ZoneCacheHits, ZoneCacheMisses uint64
	// NegativeHits counts host or zone requests answered from a cached
	// failure.
	NegativeHits uint64
	// CoalescedWaits counts resolutions that joined another caller's
	// in-flight work and received its result instead of duplicating it
	// (singleflight). Abandoned or bypassed waits are not counted.
	CoalescedWaits uint64
	// FlightBypasses counts singleflight waits abandoned at the
	// deadlock-avoidance bound, where the waiter fell back to doing the
	// work itself (see flightGroup.do). Nonzero values are expected only
	// on pathological shapes like a zone whose in-bailiwick NS host has
	// no glue.
	FlightBypasses uint64
}

// Stats returns the current counter snapshot.
func (c *Client) Stats() Stats {
	m := c.metrics()
	return Stats{
		Sent:               m.sent.Load(),
		Received:           m.received.Load(),
		Timeouts:           m.timeouts.Load(),
		Mismatches:         m.mismatches.Load(),
		Duplicates:         m.duplicates.Load(),
		Truncations:        m.truncations.Load(),
		QIDMismatches:      m.qidMismatches.Load(),
		QuestionMismatches: m.questionMismatches.Load(),
		Malformed:          m.malformed.Load(),
	}
}

// SetMetrics attaches externally built instruments (a shared registry)
// to the client. It must be called before the client's first query or
// Stats call; afterwards the lazily created private registry has
// already won and the call is a no-op.
func (c *Client) SetMetrics(m *Metrics) {
	c.metricsOnce.Do(func() {
		c.m = m
		// An explicitly configured pool joins the shared registry so its
		// arena counters land next to the query-load counters. The shared
		// DefaultPool keeps its own registry: it may serve several
		// pipelines at once.
		if c.WirePool != nil {
			c.WirePool.AttachRegistry(m.reg)
		}
	})
}

// metrics returns the client's instruments, creating them on a private
// registry when none were attached.
func (c *Client) metrics() *Metrics {
	c.metricsOnce.Do(func() { c.m = NewMetrics(obs.NewRegistry()) })
	return c.m
}

// NewClient returns a client over t with default timeout and retries.
func NewClient(t Transport) *Client {
	return &Client{Transport: t}
}

func (c *Client) timeout() time.Duration {
	if c.Timeout > 0 {
		return c.Timeout
	}
	return DefaultTimeout
}

// wirePool returns the arena pool queries run on.
func (c *Client) wirePool() *dnswire.Pool {
	if c.WirePool != nil {
		return c.WirePool
	}
	return dnswire.DefaultPool
}

func (c *Client) retries() int {
	if c.Retries > 0 {
		return c.Retries
	}
	if c.Retries < 0 {
		return 0
	}
	return DefaultRetries
}

// Trace is the per-query fault breakdown filled by QueryTraced: how many
// attempts the query took and how many responses each rejection class
// discarded along the way. The measurement layer aggregates traces into
// per-domain fault counters.
type Trace struct {
	// Attempts counts query attempts made (1 for a clean first answer).
	Attempts int
	// Duplicates, Truncations, QIDMismatches, QuestionMismatches, and
	// Malformed count rejected responses by class, mirroring the
	// like-named Stats fields.
	Duplicates         int
	Truncations        int
	QIDMismatches      int
	QuestionMismatches int
	Malformed          int
}

// Rejects sums the rejected-response counters.
func (tr Trace) Rejects() int {
	return tr.Duplicates + tr.Truncations + tr.QIDMismatches + tr.QuestionMismatches + tr.Malformed
}

// Query sends (name, qtype) to the server and returns the decoded,
// validated response. Transient failures — timeouts, rejected or
// truncated responses — are retried up to c.Retries times; the returned
// error wraps ErrTimeout when every attempt timed out, or the last
// rejection otherwise.
func (c *Client) Query(ctx context.Context, server netip.Addr, name dnsname.Name, qtype dnswire.Type) (*dnswire.Message, error) {
	resp, _, err := c.QueryTraced(ctx, server, name, qtype)
	return resp, err
}

// QueryTraced is Query plus the per-query fault trace. The trace is
// meaningful even when err is non-nil: it records what the wire did to
// this query.
func (c *Client) QueryTraced(ctx context.Context, server netip.Addr, name dnsname.Name, qtype dnswire.Type) (*dnswire.Message, Trace, error) {
	a := c.wirePool().Get()
	defer a.Finish()
	resp, tr, err := c.QueryArenaTraced(ctx, a, server, name, qtype)
	if resp != nil {
		resp = resp.Owned()
	}
	return resp, tr, err
}

// QueryArena is Query on a caller-supplied codec arena. The response
// borrows a: it is valid until the next decode on a or a.Finish,
// whichever comes first, and anything retained past that must go through
// Message.Owned, dnswire.CloneRRs, or dnsname.Name.Own. The iterator's
// referral walk runs on this path — one arena per delegation step, zero
// heap allocations per exchange.
func (c *Client) QueryArena(ctx context.Context, a *dnswire.Arena, server netip.Addr, name dnsname.Name, qtype dnswire.Type) (*dnswire.Message, error) {
	resp, _, err := c.QueryArenaTraced(ctx, a, server, name, qtype)
	return resp, err
}

// QueryArenaTraced is QueryArena plus the per-query fault trace, and the
// single implementation behind every query entry point. The response
// borrows a (see QueryArena).
func (c *Client) QueryArenaTraced(ctx context.Context, a *dnswire.Arena, server netip.Addr, name dnsname.Name, qtype dnswire.Type) (resp *dnswire.Message, tr Trace, err error) {
	rec, parent := trace.From(ctx)
	qspan := trace.NoSpan
	if rec != nil {
		qspan = rec.StartSpan(parent, trace.KindQuery,
			fmt.Sprintf("%s %s @%s", name, qtype, server))
		ctx = trace.ContextWith(ctx, rec, qspan)
		defer func() {
			rec.Annotate(qspan, trace.Int("attempts", int64(tr.Attempts)))
			rec.EndSpan(qspan, err)
		}()
	}
	attempts := 1 + c.retries()
	var lastErr error
	for i := 0; i < attempts; i++ {
		if cerr := ctx.Err(); cerr != nil {
			return nil, tr, cerr
		}
		tr.Attempts++
		actx := ctx
		aspan := trace.NoSpan
		rejectsBefore := 0
		if rec != nil {
			aspan = rec.StartSpan(qspan, trace.KindAttempt, "attempt "+strconv.Itoa(i+1))
			actx = trace.ContextWith(ctx, rec, aspan)
			rejectsBefore = tr.Rejects()
		}
		resp, aerr := c.attempt(actx, a, server, name, qtype, &tr)
		if rec != nil {
			if d := tr.Rejects() - rejectsBefore; d > 0 {
				rec.Annotate(aspan, trace.Int("discarded", int64(d)))
			}
			rec.EndSpan(aspan, aerr)
		}
		if aerr == nil {
			return resp, tr, nil
		}
		lastErr = aerr
		// Timeouts, mismatch budgets, and truncation are all transient
		// from the query's point of view: a fresh attempt draws a fresh
		// transaction ID and may land between the damage. Anything else
		// (an encode failure, a non-deadline transport error) is
		// deterministic and returned immediately.
		if !errors.Is(aerr, context.DeadlineExceeded) && !errors.Is(aerr, ErrTimeout) &&
			!errors.Is(aerr, ErrMismatch) && !errors.Is(aerr, ErrTruncated) {
			return nil, tr, aerr
		}
	}
	if errors.Is(lastErr, context.DeadlineExceeded) || errors.Is(lastErr, ErrTimeout) {
		return nil, tr, fmt.Errorf("%w: %s %s @%s after %d attempts: %v",
			ErrTimeout, name, qtype, server, attempts, lastErr)
	}
	return nil, tr, fmt.Errorf("resolver: %s %s @%s after %d attempts: %w",
		name, qtype, server, attempts, lastErr)
}

func (c *Client) maxDiscards() int {
	if c.MaxDiscards > 0 {
		return c.MaxDiscards
	}
	if c.MaxDiscards < 0 {
		return 0
	}
	return DefaultMaxDiscards
}

// attempt sends one query and listens until it gets a validated answer,
// exhausts its discard budget, or hits the attempt deadline. Responses
// that fail validation are counted by class and discarded — the socket
// stays open for the real answer, as a UDP resolver's must.
//
// Query, wire, and every decoded response ride the caller's arena. The
// encoded query stays valid across response decodes because Arena.Decode
// leaves the encoder output and query slot untouched.
func (c *Client) attempt(ctx context.Context, a *dnswire.Arena, server netip.Addr, name dnsname.Name, qtype dnswire.Type, tr *Trace) (*dnswire.Message, error) {
	id := uint16(c.nextID.Add(1))
	query := a.NewQuery(id, name, qtype)
	wire, err := a.Encode(query)
	if err != nil {
		return nil, fmt.Errorf("resolver: encoding query: %w", err)
	}

	m := c.metrics()
	rec, parent := trace.From(ctx)
	attemptCtx, cancel := context.WithTimeout(ctx, c.timeout())
	defer cancel()
	for discards := 0; ; discards++ {
		m.sent.Inc()
		sentAt := time.Now()
		// One exchange span per datagram on the wire; the chaos
		// transport annotates its injections onto this span via the
		// exchange-scoped context.
		exCtx := attemptCtx
		xspan := trace.NoSpan
		if rec != nil {
			xspan = rec.StartSpan(parent, trace.KindExchange, server.String())
			exCtx = trace.ContextWith(attemptCtx, rec, xspan)
		}
		c.releaserOnce.Do(func() { c.releaser, _ = c.Transport.(ResponseReleaser) })
		respWire, err := c.Transport.Exchange(exCtx, server, wire)
		m.observeRTT(sentAt)
		if rec != nil {
			rec.Annotate(xspan, trace.Dur("rtt", time.Since(sentAt)))
		}
		if err != nil {
			rec.EndSpan(xspan, err)
			m.timeouts.Inc()
			m.server(server).timeout.Inc()
			if attemptCtx.Err() != nil && ctx.Err() == nil {
				return nil, fmt.Errorf("%w: attempt deadline: %v", context.DeadlineExceeded, err)
			}
			return nil, err
		}
		resp, reject := c.classify(a, query, server, respWire, tr)
		// The decode inside classify copied everything it kept (names
		// onto the arena, addresses into values), so a pooled response
		// buffer goes home immediately — win or reject.
		if c.releaser != nil {
			c.releaser.ReleaseResponse(respWire)
		}
		rec.EndSpan(xspan, reject)
		if reject == nil {
			m.received.Inc()
			m.server(server).ok.Inc()
			c.remember(server, id)
			return resp, nil
		}
		m.mismatches.Inc()
		m.server(server).reject.Inc()
		// Truncation is a validated answer from the right server about
		// the right question; listening longer cannot improve on it.
		// Everything else is a stray datagram worth waiting past.
		if errors.Is(reject, ErrTruncated) || discards >= c.maxDiscards() {
			return nil, reject
		}
	}
}

// classify validates one wire image against the query, returning the
// decoded message for an acceptable answer or a classified rejection
// error. Counters (both aggregate and per-class, plus the trace) are
// bumped for rejects.
func (c *Client) classify(a *dnswire.Arena, query *dnswire.Message, server netip.Addr, respWire []byte, tr *Trace) (*dnswire.Message, error) {
	m := c.metrics()
	resp, err := a.Decode(respWire)
	if err != nil {
		m.malformed.Inc()
		tr.Malformed++
		return nil, fmt.Errorf("%w: decoding response: %v", ErrMismatch, err)
	}
	if !resp.Header.Response {
		m.malformed.Inc()
		tr.Malformed++
		return nil, fmt.Errorf("%w: QR bit clear", ErrMismatch)
	}
	// Rejection messages deliberately omit the transaction IDs: they
	// come from a process-wide counter, so embedding them would make
	// recorded error strings — and with them the scan digest — depend
	// on scheduling.
	if resp.Header.ID != query.Header.ID {
		if c.recentlyAccepted(server, resp.Header.ID) {
			m.duplicates.Inc()
			tr.Duplicates++
			return nil, fmt.Errorf("%w: duplicate of an answered query", ErrMismatch)
		}
		m.qidMismatches.Inc()
		tr.QIDMismatches++
		return nil, fmt.Errorf("%w: unknown transaction id", ErrMismatch)
	}
	if len(resp.Questions) > 0 {
		got, want := resp.Questions[0], query.Questions[0]
		if got.Name != want.Name || got.Type != want.Type || got.Class != want.Class {
			m.questionMismatches.Inc()
			tr.QuestionMismatches++
			return nil, fmt.Errorf("%w: question %v != %v", ErrMismatch, got, want)
		}
	}
	if resp.Header.Truncated {
		m.truncations.Inc()
		tr.Truncations++
		return nil, fmt.Errorf("%w: %s %s @%s", ErrTruncated,
			query.Questions[0].Name, query.Questions[0].Type, server)
	}
	return resp, nil
}

// remember records an accepted transaction ID for duplicate detection.
func (c *Client) remember(server netip.Addr, id uint16) {
	c.acceptedMu.Lock()
	defer c.acceptedMu.Unlock()
	if c.accepted == nil {
		c.accepted = make(map[netip.Addr][]uint16)
	}
	ids := append(c.accepted[server], id)
	if len(ids) > acceptedRing {
		ids = ids[len(ids)-acceptedRing:]
	}
	c.accepted[server] = ids
}

func (c *Client) recentlyAccepted(server netip.Addr, id uint16) bool {
	c.acceptedMu.Lock()
	defer c.acceptedMu.Unlock()
	for _, v := range c.accepted[server] {
		if v == id {
			return true
		}
	}
	return false
}

// validate checks the response against its query per classic resolver
// rules: matching ID, QR set, matching question. It is the counter-free
// core of classify, kept for direct use in tests.
func validate(query, resp *dnswire.Message) error {
	if resp.Header.ID != query.Header.ID {
		return fmt.Errorf("%w: id %d != %d", ErrMismatch, resp.Header.ID, query.Header.ID)
	}
	if !resp.Header.Response {
		return fmt.Errorf("%w: QR bit clear", ErrMismatch)
	}
	if len(resp.Questions) > 0 {
		got, want := resp.Questions[0], query.Questions[0]
		if got.Name != want.Name || got.Type != want.Type || got.Class != want.Class {
			return fmt.Errorf("%w: question %v != %v", ErrMismatch, got, want)
		}
	}
	return nil
}
