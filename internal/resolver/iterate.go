package resolver

import (
	"context"
	"errors"
	"fmt"
	"net/netip"
	"sort"
	"sync"

	"govdns/internal/dnsname"
	"govdns/internal/dnswire"
)

// Iterator errors.
var (
	// ErrNXDomain indicates the name does not exist.
	ErrNXDomain = errors.New("resolver: NXDOMAIN")
	// ErrNoServers indicates resolution could not proceed because no
	// nameserver address for the next zone could be obtained — every
	// server lame, or glue missing and unresolvable.
	ErrNoServers = errors.New("resolver: no reachable nameservers")
	// ErrDepth indicates the referral or alias chain exceeded the
	// iterator's depth limit (a cyclic dependency, usually).
	ErrDepth = errors.New("resolver: resolution depth exceeded")
	// ErrNoAnswer indicates resolution completed but yielded no usable
	// records (e.g. NODATA).
	ErrNoAnswer = errors.New("resolver: no answer")
)

const maxDepth = 12

// ZoneServers describes the authoritative server set of one zone as
// discovered during iteration.
type ZoneServers struct {
	// Zone is the apex of the zone.
	Zone dnsname.Name
	// Hosts are the NS hostnames, sorted.
	Hosts []dnsname.Name
	// Addrs maps each NS hostname to its IPv4 addresses (from glue or
	// explicit resolution). Hosts that could not be resolved map to nil.
	Addrs map[dnsname.Name][]netip.Addr
}

// AllAddrs returns the union of all server addresses, sorted.
func (zs *ZoneServers) AllAddrs() []netip.Addr {
	var out []netip.Addr
	seen := make(map[netip.Addr]bool)
	for _, addrs := range zs.Addrs {
		for _, a := range addrs {
			if !seen[a] {
				seen[a] = true
				out = append(out, a)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// Delegation is the result of walking the delegation chain to a domain:
// the parent zone's servers and the NS records they return for the
// domain. This is steps (1)-(2) of the paper's Fig. 1 measurement.
type Delegation struct {
	// Parent describes the zone that holds the delegation.
	Parent ZoneServers
	// NSRecords are the domain's NS records as seen from the parent
	// side (the paper's set P).
	NSRecords []dnswire.RR
	// Glue holds A records provided alongside the delegation.
	Glue []dnswire.RR
	// Authoritative is true when the parent-side server answered with
	// the AA bit — it hosts the child zone too, so no referral occurs.
	Authoritative bool
}

// Hosts returns the delegated NS hostnames, sorted and deduplicated.
func (d *Delegation) Hosts() []dnsname.Name {
	return nsHosts(d.NSRecords)
}

func nsHosts(records []dnswire.RR) []dnsname.Name {
	seen := make(map[dnsname.Name]bool, len(records))
	var out []dnsname.Name
	for _, rr := range records {
		ns, ok := rr.Data.(dnswire.NSData)
		if !ok || seen[ns.Host] {
			continue
		}
		seen[ns.Host] = true
		out = append(out, ns.Host)
	}
	sort.Slice(out, func(i, j int) bool { return dnsname.Compare(out[i], out[j]) < 0 })
	return out
}

// Iterator performs iterative resolution from root hints. It caches
// discovered zone-server sets and host addresses, which is what makes
// bulk scans over a hundred thousand domains tractable: provider
// nameservers shared by thousands of domains are resolved once.
type Iterator struct {
	client *Client
	roots  []netip.Addr

	mu        sync.Mutex
	hostCache map[dnsname.Name][]netip.Addr
	zoneCache map[dnsname.Name]*ZoneServers
}

// NewIterator creates an iterator over client starting from the given
// root server addresses.
func NewIterator(client *Client, roots []netip.Addr) *Iterator {
	it := &Iterator{
		client:    client,
		roots:     append([]netip.Addr(nil), roots...),
		hostCache: make(map[dnsname.Name][]netip.Addr),
		zoneCache: make(map[dnsname.Name]*ZoneServers),
	}
	rootZS := &ZoneServers{Zone: dnsname.Root, Addrs: map[dnsname.Name][]netip.Addr{}}
	for i, addr := range it.roots {
		host := dnsname.MustParse(fmt.Sprintf("%c.root-servers.net", 'a'+i))
		rootZS.Hosts = append(rootZS.Hosts, host)
		rootZS.Addrs[host] = []netip.Addr{addr}
	}
	it.zoneCache[dnsname.Root] = rootZS
	return it
}

// Client returns the underlying query client.
func (it *Iterator) Client() *Client { return it.client }

// cachedZone returns the deepest cached zone at or above name.
func (it *Iterator) cachedZone(name dnsname.Name) *ZoneServers {
	it.mu.Lock()
	defer it.mu.Unlock()
	for cur := name; ; cur = cur.Parent() {
		if zs, ok := it.zoneCache[cur]; ok {
			return zs
		}
		if cur.IsRoot() {
			// Root is always cached at construction.
			return it.zoneCache[dnsname.Root]
		}
	}
}

func (it *Iterator) storeZone(zs *ZoneServers) {
	it.mu.Lock()
	defer it.mu.Unlock()
	it.zoneCache[zs.Zone] = zs
}

// Delegation walks the delegation chain from the root to name and returns
// the parent-zone view of name's delegation. It fails with ErrNXDomain if
// some ancestor denies the name's existence, and ErrNoServers if the
// chain cannot be followed.
func (it *Iterator) Delegation(ctx context.Context, name dnsname.Name) (*Delegation, error) {
	return it.delegation(ctx, name, 0)
}

func (it *Iterator) delegation(ctx context.Context, name dnsname.Name, depth int) (*Delegation, error) {
	if depth > maxDepth {
		return nil, fmt.Errorf("%w: walking to %s", ErrDepth, name)
	}
	current := it.cachedZone(name)
	if current.Zone == name {
		// We need the *parent* view; restart one level up from cache.
		current = it.cachedZone(name.Parent())
		if current.Zone == name {
			current = it.cachedZone(dnsname.Root)
		}
	}

	for step := 0; step < maxDepth; step++ {
		resp, _, err := it.queryAny(ctx, current, name, dnswire.TypeNS, depth)
		if err != nil {
			return nil, fmt.Errorf("querying servers of %q for %q: %w", current.Zone, name, err)
		}
		switch {
		case resp.Header.RCode == dnswire.RCodeNXDomain:
			return nil, fmt.Errorf("%w: %s (denied by %s)", ErrNXDomain, name, current.Zone)
		case resp.Header.RCode != dnswire.RCodeNoError:
			return nil, fmt.Errorf("%w: %s returned %s for %s", ErrNoServers, current.Zone, resp.Header.RCode, name)
		}

		// Authoritative NS answer: the queried server hosts a zone
		// containing name (possibly name's own zone when parent and
		// child share servers).
		if ansNS := resp.AnswersOfType(dnswire.TypeNS); resp.Header.Authoritative && len(ansNS) > 0 {
			return &Delegation{
				Parent:        *current,
				NSRecords:     ansNS,
				Glue:          resp.AdditionalOfType(dnswire.TypeA),
				Authoritative: true,
			}, nil
		}

		if resp.IsReferral() {
			authNS := resp.AuthorityOfType(dnswire.TypeNS)
			owner := authNS[0].Name
			if owner == name {
				return &Delegation{
					Parent:    *current,
					NSRecords: authNS,
					Glue:      resp.AdditionalOfType(dnswire.TypeA),
				}, nil
			}
			// Intermediate zone cut: build its server set and descend.
			next, err := it.zoneFromReferral(ctx, owner, authNS, resp.AdditionalOfType(dnswire.TypeA), depth)
			if err != nil {
				return nil, err
			}
			it.storeZone(next)
			current = next
			continue
		}

		// NODATA for NS at an intermediate server: name exists but has
		// no delegation visible here. Give up with ErrNoAnswer so
		// callers can distinguish it from lameness.
		return nil, fmt.Errorf("%w: no NS for %s at %s", ErrNoAnswer, name, current.Zone)
	}
	return nil, fmt.Errorf("%w: referral chain too long for %s", ErrDepth, name)
}

// zoneFromReferral builds the server set of a zone from referral records,
// resolving out-of-bailiwick hosts that lack glue.
func (it *Iterator) zoneFromReferral(ctx context.Context, zoneName dnsname.Name, nsRecords, glue []dnswire.RR, depth int) (*ZoneServers, error) {
	zs := &ZoneServers{
		Zone:  zoneName,
		Hosts: nsHosts(nsRecords),
		Addrs: make(map[dnsname.Name][]netip.Addr, len(nsRecords)),
	}
	glueByHost := make(map[dnsname.Name][]netip.Addr)
	for _, rr := range glue {
		if a, ok := rr.Data.(dnswire.AData); ok {
			glueByHost[rr.Name] = append(glueByHost[rr.Name], a.Addr)
		}
	}
	anyAddr := false
	for _, host := range zs.Hosts {
		if addrs, ok := glueByHost[host]; ok {
			zs.Addrs[host] = addrs
			anyAddr = true
			continue
		}
		addrs, err := it.resolveHost(ctx, host, depth+1)
		if err != nil {
			zs.Addrs[host] = nil
			continue
		}
		zs.Addrs[host] = addrs
		anyAddr = true
	}
	if !anyAddr {
		return nil, fmt.Errorf("%w: zone %s has no resolvable nameservers", ErrNoServers, zoneName)
	}
	return zs, nil
}

// ResolveHost returns IPv4 addresses for host via full iterative
// resolution, using the cache.
func (it *Iterator) ResolveHost(ctx context.Context, host dnsname.Name) ([]netip.Addr, error) {
	return it.resolveHost(ctx, host, 0)
}

func (it *Iterator) resolveHost(ctx context.Context, host dnsname.Name, depth int) ([]netip.Addr, error) {
	it.mu.Lock()
	if addrs, ok := it.hostCache[host]; ok {
		it.mu.Unlock()
		if addrs == nil {
			return nil, fmt.Errorf("%w: cached failure for %s", ErrNoServers, host)
		}
		return addrs, nil
	}
	it.mu.Unlock()

	addrs, err := it.lookup(ctx, host, depth)
	it.mu.Lock()
	if err == nil {
		it.hostCache[host] = addrs
	} else {
		// Negative-cache resolution failures: bulk scans would
		// otherwise re-walk broken chains thousands of times.
		it.hostCache[host] = nil
	}
	it.mu.Unlock()
	return addrs, err
}

// lookup iteratively resolves host's A records.
func (it *Iterator) lookup(ctx context.Context, host dnsname.Name, depth int) ([]netip.Addr, error) {
	if depth > maxDepth {
		return nil, fmt.Errorf("%w: resolving %s", ErrDepth, host)
	}
	current := it.cachedZone(host)
	for step := 0; step < maxDepth; step++ {
		resp, _, err := it.queryAny(ctx, current, host, dnswire.TypeA, depth)
		if err != nil {
			return nil, fmt.Errorf("resolving %q via %q: %w", host, current.Zone, err)
		}
		switch {
		case resp.Header.RCode == dnswire.RCodeNXDomain:
			return nil, fmt.Errorf("%w: %s", ErrNXDomain, host)
		case resp.Header.RCode != dnswire.RCodeNoError:
			return nil, fmt.Errorf("%w: %s for %s", ErrNoServers, resp.Header.RCode, host)
		}
		if answers := resp.AnswersOfType(dnswire.TypeA); len(answers) > 0 {
			addrs := make([]netip.Addr, 0, len(answers))
			for _, rr := range answers {
				if rr.Name != host {
					continue
				}
				addrs = append(addrs, rr.Data.(dnswire.AData).Addr)
			}
			if len(addrs) > 0 {
				sort.Slice(addrs, func(i, j int) bool { return addrs[i].Less(addrs[j]) })
				return addrs, nil
			}
		}
		// CNAME chase.
		if cnames := resp.AnswersOfType(dnswire.TypeCNAME); len(cnames) > 0 {
			target := cnames[0].Data.(dnswire.CNAMEData).Target
			return it.resolveHost(ctx, target, depth+1)
		}
		if resp.IsReferral() {
			authNS := resp.AuthorityOfType(dnswire.TypeNS)
			next, err := it.zoneFromReferral(ctx, authNS[0].Name, authNS, resp.AdditionalOfType(dnswire.TypeA), depth)
			if err != nil {
				return nil, err
			}
			it.storeZone(next)
			current = next
			continue
		}
		return nil, fmt.Errorf("%w: %s has no A records", ErrNoAnswer, host)
	}
	return nil, fmt.Errorf("%w: referral chain too long for %s", ErrDepth, host)
}

// queryAny asks the zone's servers in order until one responds. Lame
// servers are skipped; if all are lame the last error is returned.
func (it *Iterator) queryAny(ctx context.Context, zs *ZoneServers, name dnsname.Name, qtype dnswire.Type, depth int) (*dnswire.Message, netip.Addr, error) {
	var lastErr error
	tried := false
	for _, host := range zs.Hosts {
		addrs := zs.Addrs[host]
		if addrs == nil && !host.IsSubdomainOf(zs.Zone) {
			// Out-of-bailiwick host that wasn't resolved when the zone
			// was cached; try now (it may have been a transient miss).
			var err error
			addrs, err = it.resolveHost(ctx, host, depth+1)
			if err != nil {
				continue
			}
		}
		for _, addr := range addrs {
			tried = true
			resp, err := it.client.Query(ctx, addr, name, qtype)
			if err != nil {
				lastErr = err
				continue
			}
			if resp.Header.RCode == dnswire.RCodeServFail || resp.Header.RCode == dnswire.RCodeRefused {
				lastErr = fmt.Errorf("%w: %s from %s", ErrNoServers, resp.Header.RCode, addr)
				continue
			}
			return resp, addr, nil
		}
	}
	if !tried {
		return nil, netip.Addr{}, fmt.Errorf("%w: zone %s", ErrNoServers, zs.Zone)
	}
	return nil, netip.Addr{}, lastErr
}
