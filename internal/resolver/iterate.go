package resolver

import (
	"context"
	"errors"
	"fmt"
	"net/netip"
	"slices"
	"sort"
	"sync"
	"time"

	"govdns/internal/dnsname"
	"govdns/internal/dnswire"
	"govdns/internal/trace"
)

// Iterator errors.
var (
	// ErrNXDomain indicates the name does not exist.
	ErrNXDomain = errors.New("resolver: NXDOMAIN")
	// ErrNoServers indicates resolution could not proceed because no
	// nameserver address for the next zone could be obtained — every
	// server lame, or glue missing and unresolvable.
	ErrNoServers = errors.New("resolver: no reachable nameservers")
	// ErrDepth indicates the referral or alias chain exceeded the
	// iterator's depth limit (a cyclic dependency, usually).
	ErrDepth = errors.New("resolver: resolution depth exceeded")
	// ErrNoAnswer indicates resolution completed but yielded no usable
	// records (e.g. NODATA).
	ErrNoAnswer = errors.New("resolver: no answer")
	// ErrServerFailure indicates a server answered with SERVFAIL or
	// REFUSED — it is up, but declined to be useful. Overload commonly
	// produces SERVFAIL, so the class is treated as transient.
	ErrServerFailure = errors.New("resolver: server failure")
)

// IsTransientErr reports whether err belongs to a failure class that a
// later retry — in particular the scanner's second round — may not
// reproduce: timeouts, rejected or truncated responses, and SERVFAIL-
// style server errors. Durable facts (NXDOMAIN, NODATA, a zone with no
// nameservers at all) are not transient.
func IsTransientErr(err error) bool {
	return errors.Is(err, ErrTimeout) || errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, ErrMismatch) || errors.Is(err, ErrTruncated) ||
		errors.Is(err, ErrServerFailure)
}

const maxDepth = 12

// DefaultBuildFanout is the default bound on concurrent NS-host
// resolutions within one zone build.
const DefaultBuildFanout = 4

// ZoneServers describes the authoritative server set of one zone as
// discovered during iteration.
//
// A ZoneServers returned by the Iterator (directly or inside a
// Delegation) is shared with the zone cache and with every other caller
// that hits the same zone: treat Hosts and Addrs — keys, values, and
// the slices behind them — as immutable. Derive mutated views through
// AllAddrs (which builds a fresh slice) or your own copy. The resolver
// itself never mutates a ZoneServers after publishing it, and
// TestZoneServersCachedAliasing enforces that a misbehaving caller is
// the only way to corrupt the cache.
type ZoneServers struct {
	// Zone is the apex of the zone.
	Zone dnsname.Name
	// Hosts are the NS hostnames, sorted.
	Hosts []dnsname.Name
	// Addrs maps each NS hostname to its IPv4 addresses (from glue or
	// explicit resolution). Hosts that could not be resolved map to nil.
	Addrs map[dnsname.Name][]netip.Addr
}

// AllAddrs returns the union of all server addresses, sorted.
func (zs *ZoneServers) AllAddrs() []netip.Addr {
	var out []netip.Addr
	seen := make(map[netip.Addr]bool)
	for _, addrs := range zs.Addrs {
		for _, a := range addrs {
			if !seen[a] {
				seen[a] = true
				out = append(out, a)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// Delegation is the result of walking the delegation chain to a domain:
// the parent zone's servers and the NS records they return for the
// domain. This is steps (1)-(2) of the paper's Fig. 1 measurement.
type Delegation struct {
	// Parent describes the zone that holds the delegation.
	Parent ZoneServers
	// NSRecords are the domain's NS records as seen from the parent
	// side (the paper's set P).
	NSRecords []dnswire.RR
	// Glue holds A records provided alongside the delegation.
	Glue []dnswire.RR
	// Authoritative is true when the parent-side server answered with
	// the AA bit — it hosts the child zone too, so no referral occurs.
	Authoritative bool
}

// Hosts returns the delegated NS hostnames, sorted and deduplicated.
func (d *Delegation) Hosts() []dnsname.Name {
	return nsHosts(d.NSRecords)
}

func nsHosts(records []dnswire.RR) []dnsname.Name {
	seen := make(map[dnsname.Name]bool, len(records))
	var out []dnsname.Name
	for _, rr := range records {
		ns, ok := rr.Data.(dnswire.NSData)
		if !ok || seen[ns.Host] {
			continue
		}
		seen[ns.Host] = true
		// The records may borrow a codec arena (zone builds pass referral
		// sections straight off the wire); the host list outlives the
		// packet — it is cached inside ZoneServers — so own each name here.
		out = append(out, ns.Host.Own())
	}
	sort.Slice(out, func(i, j int) bool { return dnsname.Compare(out[i], out[j]) < 0 })
	return out
}

// Iterator performs iterative resolution from root hints. It caches
// discovered zone-server sets and host addresses, which is what makes
// bulk scans over a hundred thousand domains tractable: provider
// nameservers shared by thousands of domains are resolved once. Both
// caches are mutex-sharded and fronted by singleflight groups, so
// concurrent workers neither contend on one lock nor duplicate in-flight
// resolutions.
type Iterator struct {
	client *Client
	roots  []netip.Addr

	// AdaptiveOrder makes walk queries try recently responsive server
	// addresses first (per-address consecutive-failure counts, reset on
	// success). Without it, a zone whose first-listed nameserver is dead
	// costs every query against that zone a full timeout before the
	// responsive server is asked. Defaults to true from NewIterator; only
	// the order of infrastructure queries changes — measurement probes go
	// through Client.Query directly and are never reordered.
	AdaptiveOrder bool

	// Coalesce routes concurrent resolutions of the same name through a
	// singleflight group so only one does the work. Defaults to true from
	// NewIterator; disabling it restores independent (duplicated)
	// lookups, which keeps per-caller query counts deterministic — useful
	// for debugging and for benchmarking the coalescing itself.
	Coalesce bool

	// BuildFanout bounds how many glue-less NS hosts a zone build
	// resolves concurrently. A zone whose nameservers are all
	// out-of-bailiwick and dangling otherwise serializes one timeout walk
	// per host. Defaults to DefaultBuildFanout from NewIterator; 1 is
	// fully serial.
	BuildFanout int

	hosts  hostCache
	zones  zoneCache
	health addrHealth

	hostFlight flightGroup[[]netip.Addr]
	zoneFlight flightGroup[*ZoneServers]

	// m holds the cache and coalescing instruments, shared with the
	// client's registry (bound at NewIterator, which is why a shared
	// registry must be attached to the client first).
	m *Metrics
}

// NewIterator creates an iterator over client starting from the given
// root server addresses.
func NewIterator(client *Client, roots []netip.Addr) *Iterator {
	it := &Iterator{
		client:        client,
		roots:         append([]netip.Addr(nil), roots...),
		AdaptiveOrder: true,
		Coalesce:      true,
		BuildFanout:   DefaultBuildFanout,
		m:             client.metrics(),
	}
	it.hostFlight.coalesced, it.hostFlight.bypassed = it.m.coalesced, it.m.bypassed
	it.zoneFlight.coalesced, it.zoneFlight.bypassed = it.m.coalesced, it.m.bypassed
	rootZS := &ZoneServers{Zone: dnsname.Root, Addrs: map[dnsname.Name][]netip.Addr{}}
	for i, addr := range it.roots {
		host := dnsname.MustParse(fmt.Sprintf("%c.root-servers.net", 'a'+i))
		rootZS.Hosts = append(rootZS.Hosts, host)
		rootZS.Addrs[host] = []netip.Addr{addr}
	}
	it.zones.put(dnsname.Root, zoneEntry{zs: rootZS})
	return it
}

// Client returns the underlying query client.
func (it *Iterator) Client() *Client { return it.client }

// Stats returns a point-in-time snapshot of the iterator's counters
// merged with the underlying client's query-load counters. All counters
// are sampled atomically (individually, not as a consistent cut).
func (it *Iterator) Stats() Stats {
	s := it.client.Stats()
	s.HostCacheHits = it.m.hostHits.Load()
	s.HostCacheMisses = it.m.hostMisses.Load()
	s.ZoneCacheHits = it.m.zoneHits.Load()
	s.ZoneCacheMisses = it.m.zoneMisses.Load()
	s.NegativeHits = it.m.negHits.Load()
	// The host and zone flight groups share one pair of handles.
	s.CoalescedWaits = it.m.coalesced.Load()
	s.FlightBypasses = it.m.bypassed.Load()
	return s
}

// flightWait returns the bound on how long this call chain may wait for
// another caller's in-flight resolution. A top-level caller leads no
// flight, cannot be part of a wait cycle, and waits as long as its
// context allows (0 = unbounded). A chain that is itself leading a
// flight is resolving a dependency of that work, and two such leaders
// can wait on each other's keys forever (host flight ↔ zone flight, see
// flightGroup.do); it gets a bound of a couple of full query budgets —
// long enough that the fallback stays rare under ordinary contention,
// short enough that a dependency cycle unwinds promptly.
func (it *Iterator) flightWait(ctx context.Context) time.Duration {
	if !leadsFlight(ctx) {
		return 0
	}
	return 2 * time.Duration(1+it.client.retries()) * it.client.timeout()
}

// cachedZone returns the deepest positively cached zone at or above name.
func (it *Iterator) cachedZone(name dnsname.Name) *ZoneServers {
	for cur := name; ; cur = cur.Parent() {
		if e, ok := it.zones.get(cur); ok && e.zs != nil {
			return e.zs
		}
		if cur.IsRoot() {
			// Root is always cached at construction.
			e, _ := it.zones.get(dnsname.Root)
			return e.zs
		}
	}
}

// Delegation walks the delegation chain from the root to name and returns
// the parent-zone view of name's delegation. It fails with ErrNXDomain if
// some ancestor denies the name's existence, and ErrNoServers if the
// chain cannot be followed.
func (it *Iterator) Delegation(ctx context.Context, name dnsname.Name) (*Delegation, error) {
	return it.delegation(ctx, name, 0)
}

func (it *Iterator) delegation(ctx context.Context, name dnsname.Name, depth int) (*Delegation, error) {
	if depth > maxDepth {
		return nil, fmt.Errorf("%w: walking to %s", ErrDepth, name)
	}
	current := it.cachedZone(name)
	if current.Zone == name {
		// We need the *parent* view; restart one level up from cache.
		current = it.cachedZone(name.Parent())
		if current.Zone == name {
			current = it.cachedZone(dnsname.Root)
		}
	}

	for step := 0; step < maxDepth; step++ {
		deleg, next, err := it.delegationStep(ctx, current, name, depth)
		if err != nil {
			return nil, err
		}
		if deleg != nil {
			return deleg, nil
		}
		current = next
	}
	return nil, fmt.Errorf("%w: referral chain too long for %s", ErrDepth, name)
}

// delegationStep performs one step of the delegation walk: ask the
// current zone's servers about name, then either finish (a delegation
// in hand, or a terminal error) or descend (the next zone's server
// set). Exactly one of deleg, next, err is non-zero. Each step is one
// referral span covering both the query and, on descent, the next
// zone's build.
func (it *Iterator) delegationStep(ctx context.Context, current *ZoneServers, name dnsname.Name, depth int) (deleg *Delegation, next *ZoneServers, err error) {
	rec, parent := trace.From(ctx)
	if rec != nil {
		span := rec.StartSpan(parent, trace.KindReferral, string(current.Zone))
		ctx = trace.ContextWith(ctx, rec, span)
		defer func() {
			if err == nil && next != nil {
				rec.Annotate(span, trace.Str("next", string(next.Zone)))
			}
			rec.EndSpan(span, err)
		}()
	}

	// One codec arena per step: the response borrows it, and everything
	// that outlives the step — the Delegation's record sections, the next
	// zone's host names — is deep-copied at the choke points below.
	a := it.client.wirePool().Get()
	defer a.Finish()

	resp, _, err := it.queryAny(ctx, a, current, name, dnswire.TypeNS, depth)
	if err != nil {
		return nil, nil, fmt.Errorf("querying servers of %q for %q: %w", current.Zone, name, err)
	}
	switch {
	case resp.Header.RCode == dnswire.RCodeNXDomain:
		return nil, nil, fmt.Errorf("%w: %s (denied by %s)", ErrNXDomain, name, current.Zone)
	case resp.Header.RCode != dnswire.RCodeNoError:
		return nil, nil, fmt.Errorf("%w: %s returned %s for %s", ErrNoServers, current.Zone, resp.Header.RCode, name)
	}

	// Authoritative NS answer: the queried server hosts a zone
	// containing name (possibly name's own zone when parent and
	// child share servers).
	if ansNS := resp.AnswersOfType(dnswire.TypeNS); resp.Header.Authoritative && len(ansNS) > 0 {
		return &Delegation{
			Parent:        *current,
			NSRecords:     dnswire.CloneRRs(ansNS),
			Glue:          dnswire.CloneRRs(resp.AdditionalOfType(dnswire.TypeA)),
			Authoritative: true,
		}, nil, nil
	}

	if resp.IsReferral() {
		authNS := resp.AuthorityOfType(dnswire.TypeNS)
		owner := authNS[0].Name
		if owner == name {
			return &Delegation{
				Parent:    *current,
				NSRecords: dnswire.CloneRRs(authNS),
				Glue:      dnswire.CloneRRs(resp.AdditionalOfType(dnswire.TypeA)),
			}, nil, nil
		}
		// Intermediate zone cut: build its server set and descend.
		nz, zerr := it.zoneServers(ctx, owner, authNS, resp.AdditionalOfType(dnswire.TypeA), depth)
		if zerr != nil {
			return nil, nil, zerr
		}
		return nil, nz, nil
	}

	// NODATA for NS at an intermediate server: name exists but has
	// no delegation visible here. Give up with ErrNoAnswer so
	// callers can distinguish it from lameness.
	return nil, nil, fmt.Errorf("%w: no NS for %s at %s", ErrNoAnswer, name, current.Zone)
}

// zoneServers returns the server set of zoneName, consulting the zone
// cache (including negative entries for zones whose walk already failed)
// and coalescing concurrent builds of the same zone into one.
func (it *Iterator) zoneServers(ctx context.Context, zoneName dnsname.Name, nsRecords, glue []dnswire.RR, depth int) (*ZoneServers, error) {
	// The zone name usually arrives borrowed (the owner of a referral's
	// authority records); everything below retains it — cache key, flight
	// key, zone-build span label, ZoneServers.Zone — so own it once here.
	zoneName = zoneName.Own()
	if e, ok := it.zones.get(zoneName); ok {
		if e.err != nil {
			it.m.negHits.Inc()
			traceCacheEvent(ctx, "zone", zoneName, true)
			return nil, e.err
		}
		it.m.zoneHits.Inc()
		traceCacheEvent(ctx, "zone", zoneName, false)
		return e.zs, nil
	}
	if !it.Coalesce || isInFlight(ctx, 'z', zoneName) {
		// Coalescing off, or this call chain is already building zoneName
		// (its NS host walk looped back into the zone); waiting on our own
		// flight would deadlock, so build directly — depth bounds the
		// recursion.
		return it.buildZone(ctx, zoneName, nsRecords, glue, depth)
	}
	// ran stays false when this chain received another chain's in-flight
	// result instead of executing fn itself (fn always runs on the
	// calling goroutine — as leader or as a bypassing waiter — so the
	// flag needs no synchronization).
	ran := false
	zs, err := it.zoneFlight.do(ctx, zoneName, it.flightWait(ctx), func() (*ZoneServers, error) {
		ran = true
		if e, ok := it.zones.get(zoneName); ok {
			// A previous leader finished between our cache check and
			// flight entry.
			if e.err != nil {
				it.m.negHits.Inc()
				traceCacheEvent(ctx, "zone", zoneName, true)
			} else {
				it.m.zoneHits.Inc()
				traceCacheEvent(ctx, "zone", zoneName, false)
			}
			return e.zs, e.err
		}
		return it.buildZone(markInFlight(ctx, 'z', zoneName), zoneName, nsRecords, glue, depth)
	})
	if !ran && ctx.Err() == nil {
		traceFlightWait(ctx, "zone", zoneName)
	}
	return zs, err
}

// buildZone runs one zone-set construction and records the outcome in the
// cache. Durable failures are negative-cached, so the thousands of
// domains under a broken intermediate zone fail fast instead of each
// re-walking it. Not every failure is durable, though: a dead context
// says nothing about the zone, a depth overrun is relative to the call
// chain, and a failure in the transient class (timeouts, rejected or
// truncated responses, SERVFAIL) may not recur — the scanner's second
// round exists precisely to re-probe those (§ III-B), so caching them
// would turn the retry into a replay of the first failure.
func (it *Iterator) buildZone(ctx context.Context, zoneName dnsname.Name, nsRecords, glue []dnswire.RR, depth int) (zs *ZoneServers, err error) {
	it.m.zoneMisses.Inc()
	rec, parent := trace.From(ctx)
	if rec != nil {
		span := rec.StartSpan(parent, trace.KindZoneBuild, string(zoneName))
		ctx = trace.ContextWith(ctx, rec, span)
		defer func() { rec.EndSpan(span, err) }()
	}
	zs, err = it.zoneFromReferral(ctx, zoneName, nsRecords, glue, depth)
	if err != nil {
		if ctx.Err() == nil && !errors.Is(err, ErrDepth) && !IsTransientErr(err) {
			it.zones.put(zoneName, zoneEntry{err: err})
		}
		return nil, err
	}
	it.zones.put(zoneName, zoneEntry{zs: zs})
	return zs, nil
}

// zoneFromReferral builds the server set of a zone from referral records,
// resolving out-of-bailiwick hosts that lack glue.
func (it *Iterator) zoneFromReferral(ctx context.Context, zoneName dnsname.Name, nsRecords, glue []dnswire.RR, depth int) (*ZoneServers, error) {
	zs := &ZoneServers{
		Zone:  zoneName,
		Hosts: nsHosts(nsRecords),
		Addrs: make(map[dnsname.Name][]netip.Addr, len(nsRecords)),
	}
	glueByHost := make(map[dnsname.Name][]netip.Addr)
	for _, rr := range glue {
		if a, ok := rr.Data.(dnswire.AData); ok {
			glueByHost[rr.Name] = append(glueByHost[rr.Name], a.Addr)
		}
	}
	// Glue-less hosts need full resolutions; run them with bounded
	// fan-out, writing into an index-ordered slice. Each resolution is
	// itself cached and coalesced, so the concurrency only overlaps
	// waits (mostly timeout walks for dangling hosts), never duplicates
	// work.
	resolved := make([][]netip.Addr, len(zs.Hosts))
	errs := make([]error, len(zs.Hosts))
	var need []int
	for i, host := range zs.Hosts {
		if addrs, ok := glueByHost[host]; ok {
			resolved[i] = addrs
			continue
		}
		need = append(need, i)
	}
	if rec, span := trace.From(ctx); rec != nil {
		rec.Annotate(span, trace.Int("hosts", int64(len(zs.Hosts))),
			trace.Int("glueless", int64(len(need))))
	}
	fan := it.BuildFanout
	if fan <= 0 {
		fan = DefaultBuildFanout
	}
	if fan > len(need) {
		fan = len(need)
	}
	if fan <= 1 {
		for _, i := range need {
			resolved[i], errs[i] = it.resolveHost(ctx, zs.Hosts[i], depth+1)
		}
	} else {
		var wg sync.WaitGroup
		jobs := make(chan int)
		for w := 0; w < fan; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range jobs {
					resolved[i], errs[i] = it.resolveHost(ctx, zs.Hosts[i], depth+1)
				}
			}()
		}
		for _, i := range need {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
	}
	anyAddr := false
	depthLimited := false
	var transientErr error
	for i, host := range zs.Hosts {
		if errs[i] != nil {
			resolved[i] = nil
			if errors.Is(errs[i], ErrDepth) {
				depthLimited = true
			}
			if transientErr == nil && IsTransientErr(errs[i]) {
				transientErr = errs[i]
			}
		}
		zs.Addrs[host] = resolved[i]
		if resolved[i] != nil {
			anyAddr = true
		}
	}
	if !anyAddr {
		if depthLimited {
			// At least one host only failed because this call chain ran
			// out of depth; report that so the failure isn't treated as
			// a durable fact about the zone.
			return nil, fmt.Errorf("%w: resolving nameservers of zone %s", ErrDepth, zoneName)
		}
		if transientErr != nil {
			// Surface the transient cause in the chain so buildZone can
			// tell this possibly-recoverable failure from a durable one.
			return nil, fmt.Errorf("%w: zone %s has no resolvable nameservers: %w", ErrNoServers, zoneName, transientErr)
		}
		return nil, fmt.Errorf("%w: zone %s has no resolvable nameservers", ErrNoServers, zoneName)
	}
	return zs, nil
}

// ResolveHost returns IPv4 addresses for host via full iterative
// resolution, using the cache. The caller owns the returned slice.
func (it *Iterator) ResolveHost(ctx context.Context, host dnsname.Name) ([]netip.Addr, error) {
	return it.resolveHost(ctx, host, 0)
}

// resolveHost is the single boundary through which host addresses leave
// the resolution machinery, and it returns a fresh slice every time.
// Behind it the same backing array is shared three ways — the host
// cache entry, the slice handed to every coalesced flight waiter, and
// the copy the leader returns to itself — so returning it directly
// would let one caller's in-place sort or truncation corrupt what every
// later cache hit sees. One small clone per call (host resolution is
// already amortised by the cache) buys an unaliased result.
func (it *Iterator) resolveHost(ctx context.Context, host dnsname.Name, depth int) ([]netip.Addr, error) {
	addrs, err := it.resolveHostShared(ctx, host, depth)
	return slices.Clone(addrs), err
}

func (it *Iterator) resolveHostShared(ctx context.Context, host dnsname.Name, depth int) ([]netip.Addr, error) {
	if e, ok := it.hosts.get(host); ok {
		traceCacheEvent(ctx, "host", host, e.err != nil)
		return it.cachedHost(host, e)
	}
	if !it.Coalesce || isInFlight(ctx, 'h', host) {
		// Coalescing off, or a CNAME loop back to a host this call chain
		// is already leading; bypass the flight (depth bounds the
		// recursion).
		return it.lookupAndCache(ctx, host, depth)
	}
	// ran: see zoneServers — false means a coalesced wait on another
	// chain's resolution.
	ran := false
	addrs, err := it.hostFlight.do(ctx, host, it.flightWait(ctx), func() ([]netip.Addr, error) {
		ran = true
		if e, ok := it.hosts.get(host); ok {
			traceCacheEvent(ctx, "host", host, e.err != nil)
			return it.cachedHost(host, e)
		}
		return it.lookupAndCache(markInFlight(ctx, 'h', host), host, depth)
	})
	if !ran && ctx.Err() == nil {
		traceFlightWait(ctx, "host", host)
	}
	return addrs, err
}

// cachedHost turns a cache entry into a result, counting the hit. A
// negative entry reproduces the original failure (wrapped, so callers can
// still classify its cause — e.g. a timeout — through errors.Is).
func (it *Iterator) cachedHost(host dnsname.Name, e hostEntry) ([]netip.Addr, error) {
	if e.err != nil {
		it.m.negHits.Inc()
		return nil, fmt.Errorf("%w: cached failure for %s: %w", ErrNoServers, host, e.err)
	}
	it.m.hostHits.Inc()
	return e.addrs, nil
}

// lookupAndCache runs one full host resolution and records the outcome.
func (it *Iterator) lookupAndCache(ctx context.Context, host dnsname.Name, depth int) (addrs []netip.Addr, err error) {
	it.m.hostMisses.Inc()
	rec, parent := trace.From(ctx)
	if rec != nil {
		span := rec.StartSpan(parent, trace.KindHostResolve, string(host))
		ctx = trace.ContextWith(ctx, rec, span)
		defer func() {
			if err == nil {
				rec.Annotate(span, trace.Int("addrs", int64(len(addrs))))
			}
			rec.EndSpan(span, err)
		}()
	}
	addrs, err = it.lookup(ctx, host, depth)
	switch {
	case err == nil:
		it.hosts.put(host, hostEntry{addrs: addrs})
	case ctx.Err() == nil && !errors.Is(err, ErrDepth) && !IsTransientErr(err):
		// Negative-cache durable resolution failures: bulk scans would
		// otherwise re-walk broken chains thousands of times. A
		// cancelled context is the caller's failure, not the host's, and
		// is not cached; neither is a depth overrun, which is relative
		// to the call chain (the same host can resolve fine from a
		// shallower one), nor a transient-class failure, which the
		// scanner's second round must be free to re-probe. The cause is
		// stored so consumers of the cached failure can classify it.
		it.hosts.put(host, hostEntry{err: err})
	}
	return addrs, err
}

// lookup iteratively resolves host's A records.
func (it *Iterator) lookup(ctx context.Context, host dnsname.Name, depth int) ([]netip.Addr, error) {
	if depth > maxDepth {
		return nil, fmt.Errorf("%w: resolving %s", ErrDepth, host)
	}
	// One arena for the whole walk: each step's decode invalidates the
	// previous response, which is exactly the loop's access pattern, and
	// every value that escapes (addresses, the CNAME target, zone names)
	// is copied or owned below.
	a := it.client.wirePool().Get()
	defer a.Finish()

	current := it.cachedZone(host)
	for step := 0; step < maxDepth; step++ {
		resp, _, err := it.queryAny(ctx, a, current, host, dnswire.TypeA, depth)
		if err != nil {
			return nil, fmt.Errorf("resolving %q via %q: %w", host, current.Zone, err)
		}
		switch {
		case resp.Header.RCode == dnswire.RCodeNXDomain:
			return nil, fmt.Errorf("%w: %s", ErrNXDomain, host)
		case resp.Header.RCode != dnswire.RCodeNoError:
			return nil, fmt.Errorf("%w: %s for %s", ErrNoServers, resp.Header.RCode, host)
		}
		if answers := resp.AnswersOfType(dnswire.TypeA); len(answers) > 0 {
			addrs := make([]netip.Addr, 0, len(answers))
			for _, rr := range answers {
				if rr.Name != host {
					continue
				}
				addrs = append(addrs, rr.Data.(dnswire.AData).Addr)
			}
			if len(addrs) > 0 {
				sort.Slice(addrs, func(i, j int) bool { return addrs[i].Less(addrs[j]) })
				return addrs, nil
			}
		}
		// CNAME chase. The target escapes into the host-resolution
		// machinery (flight key, cache key, span label), so own it.
		if cnames := resp.AnswersOfType(dnswire.TypeCNAME); len(cnames) > 0 {
			target := cnames[0].Data.(dnswire.CNAMEData).Target.Own()
			return it.resolveHost(ctx, target, depth+1)
		}
		if resp.IsReferral() {
			authNS := resp.AuthorityOfType(dnswire.TypeNS)
			next, err := it.zoneServers(ctx, authNS[0].Name, authNS, resp.AdditionalOfType(dnswire.TypeA), depth)
			if err != nil {
				return nil, err
			}
			current = next
			continue
		}
		return nil, fmt.Errorf("%w: %s has no A records", ErrNoAnswer, host)
	}
	return nil, fmt.Errorf("%w: referral chain too long for %s", ErrDepth, host)
}

// traceCacheEvent records a host/zone cache hit on the active span;
// negative marks a hit on a cached failure.
func traceCacheEvent(ctx context.Context, layer string, name dnsname.Name, negative bool) {
	rec, parent := trace.From(ctx)
	if rec == nil {
		return
	}
	rec.Event(parent, trace.KindCacheHit, string(name),
		trace.Str("layer", layer), trace.Bool("negative", negative))
}

// traceFlightWait records that this call chain received another
// chain's singleflight result instead of resolving name itself.
func traceFlightWait(ctx context.Context, layer string, name dnsname.Name) {
	rec, parent := trace.From(ctx)
	if rec == nil {
		return
	}
	rec.Event(parent, trace.KindFlightWait, string(name), trace.Str("layer", layer))
}

// queryAny asks the zone's servers until one responds. Lame servers are
// skipped; if all are lame, the failure of the lowest-addressed server
// is returned — every candidate was tried, so the failure *set* does not
// depend on try order, and picking a canonical representative keeps the
// reported error (which ends up in scan results) independent of the
// adaptive ordering's scheduling-fed health state. With AdaptiveOrder
// the known addresses are tried healthiest-first (stable, so a fresh
// iterator behaves exactly like the fixed order); out-of-bailiwick hosts
// whose addresses are not yet known are only resolved once every known
// address has failed.
// The returned message borrows a, like QueryArena's.
func (it *Iterator) queryAny(ctx context.Context, a *dnswire.Arena, zs *ZoneServers, name dnsname.Name, qtype dnswire.Type, depth int) (*dnswire.Message, netip.Addr, error) {
	type candidate struct {
		host dnsname.Name
		addr netip.Addr
	}
	var cands []candidate
	var unresolved []dnsname.Name
	for _, host := range zs.Hosts {
		addrs := zs.Addrs[host]
		if addrs == nil && !host.IsSubdomainOf(zs.Zone) {
			// Out-of-bailiwick host that wasn't resolved when the zone
			// was cached; it may have been a transient miss.
			unresolved = append(unresolved, host)
			continue
		}
		for _, addr := range addrs {
			cands = append(cands, candidate{host, addr})
		}
	}
	if it.AdaptiveOrder && len(cands) > 1 {
		rec, parent := trace.From(ctx)
		var before []candidate
		if rec != nil {
			before = append([]candidate(nil), cands...)
		}
		sort.SliceStable(cands, func(i, j int) bool {
			return it.health.failures(cands[i].addr) < it.health.failures(cands[j].addr)
		})
		if rec != nil {
			for i := range cands {
				if cands[i].addr != before[i].addr {
					rec.Event(parent, trace.KindReorder, string(zs.Zone),
						trace.Str("first", cands[0].addr.String()))
					break
				}
			}
		}
	}

	type failure struct {
		addr netip.Addr
		err  error
	}
	var fails []failure
	try := func(addr netip.Addr) *dnswire.Message {
		resp, err := it.client.QueryArena(ctx, a, addr, name, qtype)
		if err != nil {
			// A dead context says nothing about the server's health.
			if ctx.Err() == nil {
				it.health.recordFailure(addr)
			}
			fails = append(fails, failure{addr, err})
			return nil
		}
		if resp.Header.RCode == dnswire.RCodeServFail || resp.Header.RCode == dnswire.RCodeRefused {
			it.health.recordFailure(addr)
			fails = append(fails, failure{addr,
				fmt.Errorf("%w: %w: %s from %s", ErrNoServers, ErrServerFailure, resp.Header.RCode, addr)})
			return nil
		}
		it.health.recordSuccess(addr)
		return resp
	}
	for _, c := range cands {
		if resp := try(c.addr); resp != nil {
			return resp, c.addr, nil
		}
	}
	for _, host := range unresolved {
		addrs, err := it.resolveHost(ctx, host, depth+1)
		if err != nil {
			continue
		}
		for _, addr := range addrs {
			if resp := try(addr); resp != nil {
				return resp, addr, nil
			}
		}
	}
	if len(fails) == 0 {
		return nil, netip.Addr{}, fmt.Errorf("%w: zone %s", ErrNoServers, zs.Zone)
	}
	sort.Slice(fails, func(i, j int) bool { return fails[i].addr.Less(fails[j].addr) })
	return nil, netip.Addr{}, fails[0].err
}
