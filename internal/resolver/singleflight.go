package resolver

import (
	"context"
	"fmt"
	"sync"
	"time"

	"govdns/internal/dnsname"
	"govdns/internal/obs"
)

// flightGroup coalesces concurrent work for the same name: the first
// caller (the leader) runs fn, everyone else blocks on the leader's
// completion and shares its result. At scan concurrency in the hundreds,
// the provider nameservers shared by thousands of domains would otherwise
// be resolved by a stampede of identical walks before the first one lands
// in the cache.
//
// Callers must not re-enter do for a key already being led by their own
// call chain (the wait would deadlock); the Iterator guards against that
// with inFlightKey context markers. Waits *across* call chains can also
// cycle — a host flight and a zone flight can each depend on the other's
// result — which is why do takes a wait bound (see below).
type flightGroup[V any] struct {
	mu       sync.Mutex
	inflight map[dnsname.Name]*flightCall[V]
	// coalesced counts calls that received another caller's result;
	// bypassed counts waits abandoned at the wait bound, where the
	// caller fell back to doing the work itself. Both are registry
	// handles bound by NewIterator (the host and zone groups share one
	// pair); nil handles no-op, so a zero-value group still works.
	coalesced *obs.Counter
	bypassed  *obs.Counter
}

type flightCall[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// do returns fn's result for key, running it at most once across
// concurrent callers. Waiters abandon the wait (but not the leader's
// work) when their own context ends.
//
// A positive wait bounds how long a waiter blocks on someone else's
// flight before giving up and running fn itself. The Iterator passes a
// bound only for callers that are themselves leading a flight: two
// leaders can wait on each other's keys — goroutine A leads the host
// flight for a glue-less NS host whose resolution walks into zone Z
// while goroutine B leads the zone flight for Z and resolves that very
// host — and without a bound both (plus everyone coalesced behind them)
// would block forever. The fallback duplicates work at worst; recursion
// depth limits bound it exactly as they do the same-chain bypass path.
func (g *flightGroup[V]) do(ctx context.Context, key dnsname.Name, wait time.Duration, fn func() (V, error)) (V, error) {
	g.mu.Lock()
	if g.inflight == nil {
		g.inflight = make(map[dnsname.Name]*flightCall[V])
	}
	if c, ok := g.inflight[key]; ok {
		g.mu.Unlock()
		var bound <-chan time.Time
		if wait > 0 {
			t := time.NewTimer(wait)
			defer t.Stop()
			bound = t.C
		}
		select {
		case <-c.done:
			g.coalesced.Inc()
			return c.val, c.err
		case <-ctx.Done():
			var zero V
			return zero, fmt.Errorf("resolver: wait for in-flight resolution of %s abandoned: %w", key, ctx.Err())
		case <-bound:
			g.bypassed.Inc()
			return fn()
		}
	}
	c := &flightCall[V]{done: make(chan struct{})}
	g.inflight[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()

	g.mu.Lock()
	delete(g.inflight, key)
	g.mu.Unlock()
	close(c.done)
	return c.val, c.err
}

// inFlightKey marks, via context values, a (kind, name) whose flight this
// call chain is currently leading. Recursive resolution can revisit its
// own key — a CNAME loop back to the host being resolved, or a zone whose
// glue-less NS host walk runs into the zone itself — and must then bypass
// the flight group instead of waiting on itself. Recursion depth limits
// bound the bypassed path exactly as they did before coalescing existed.
type inFlightKey struct {
	kind byte // 'h' for host lookups, 'z' for zone builds
	name dnsname.Name
}

// leadsFlightKey marks a call chain that leads *some* flight, regardless
// of key. Only such chains can participate in a cross-chain wait cycle
// (every edge of a cycle is a leader waiting on another flight), so only
// they need the bounded wait in do; top-level callers coalesce without a
// bound.
type leadsFlightKey struct{}

func markInFlight(ctx context.Context, kind byte, name dnsname.Name) context.Context {
	ctx = context.WithValue(ctx, inFlightKey{kind, name}, true)
	return context.WithValue(ctx, leadsFlightKey{}, true)
}

func isInFlight(ctx context.Context, kind byte, name dnsname.Name) bool {
	return ctx.Value(inFlightKey{kind, name}) != nil
}

func leadsFlight(ctx context.Context) bool {
	return ctx.Value(leadsFlightKey{}) != nil
}
