package resolver

import (
	"context"
	"sync"
	"sync/atomic"

	"govdns/internal/dnsname"
)

// flightGroup coalesces concurrent work for the same name: the first
// caller (the leader) runs fn, everyone else blocks on the leader's
// completion and shares its result. At scan concurrency in the hundreds,
// the provider nameservers shared by thousands of domains would otherwise
// be resolved by a stampede of identical walks before the first one lands
// in the cache.
//
// Callers must not re-enter do for a key already being led by their own
// call chain (the wait would deadlock); the Iterator guards against that
// with inFlightKey context markers.
type flightGroup[V any] struct {
	mu       sync.Mutex
	inflight map[dnsname.Name]*flightCall[V]
	// coalesced counts calls that waited on another caller's work.
	coalesced atomic.Uint64
}

type flightCall[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// do returns fn's result for key, running it at most once across
// concurrent callers. Waiters abandon the wait (but not the leader's
// work) when their own context ends.
func (g *flightGroup[V]) do(ctx context.Context, key dnsname.Name, fn func() (V, error)) (V, error) {
	g.mu.Lock()
	if g.inflight == nil {
		g.inflight = make(map[dnsname.Name]*flightCall[V])
	}
	if c, ok := g.inflight[key]; ok {
		g.mu.Unlock()
		g.coalesced.Add(1)
		select {
		case <-c.done:
			return c.val, c.err
		case <-ctx.Done():
			var zero V
			return zero, ctx.Err()
		}
	}
	c := &flightCall[V]{done: make(chan struct{})}
	g.inflight[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()

	g.mu.Lock()
	delete(g.inflight, key)
	g.mu.Unlock()
	close(c.done)
	return c.val, c.err
}

// inFlightKey marks, via context values, a (kind, name) whose flight this
// call chain is currently leading. Recursive resolution can revisit its
// own key — a CNAME loop back to the host being resolved, or a zone whose
// glue-less NS host walk runs into the zone itself — and must then bypass
// the flight group instead of waiting on itself. Recursion depth limits
// bound the bypassed path exactly as they did before coalescing existed.
type inFlightKey struct {
	kind byte // 'h' for host lookups, 'z' for zone builds
	name dnsname.Name
}

func markInFlight(ctx context.Context, kind byte, name dnsname.Name) context.Context {
	return context.WithValue(ctx, inFlightKey{kind, name}, true)
}

func isInFlight(ctx context.Context, kind byte, name dnsname.Name) bool {
	return ctx.Value(inFlightKey{kind, name}) != nil
}
