package resolver

import (
	"net/netip"
	"sync"

	"govdns/internal/dnsname"
)

// cacheShards is the number of independently locked segments in each of
// the iterator's caches. Bulk scans run hundreds of workers that all
// consult the caches on every referral step; sharding by name hash keeps
// them from serializing on a single mutex. 32 shards is far beyond any
// worker count this repo configures while keeping the per-cache footprint
// trivial.
const cacheShards = 32

// shardIndex hashes a name (FNV-1a) onto a shard.
func shardIndex(n dnsname.Name) int {
	h := uint32(2166136261)
	for i := 0; i < len(n); i++ {
		h = (h ^ uint32(n[i])) * 16777619
	}
	return int(h % cacheShards)
}

// hostEntry is one host cache slot: resolved IPv4 addresses, or a
// negative entry recording why the resolution failed (err != nil).
// Keeping the cause lets consumers of a cached failure — in particular
// zone builds deciding whether their own failure is transient — classify
// it instead of seeing an opaque "cached failure".
type hostEntry struct {
	addrs []netip.Addr
	err   error
}

// hostCache maps NS hostnames to their resolution outcome.
type hostCache struct {
	shards [cacheShards]struct {
		mu sync.Mutex
		m  map[dnsname.Name]hostEntry
	}
}

func (c *hostCache) get(name dnsname.Name) (hostEntry, bool) {
	s := &c.shards[shardIndex(name)]
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.m[name]
	return e, ok
}

func (c *hostCache) put(name dnsname.Name, e hostEntry) {
	// Own the key: cache entries outlive any codec arena a caller's name
	// might still be borrowing (a no-op copy for already-owned names).
	name = name.Own()
	s := &c.shards[shardIndex(name)]
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.m == nil {
		s.m = make(map[dnsname.Name]hostEntry)
	}
	s.m[name] = e
}

// addrHealth tracks consecutive query failures per server address. The
// iterator's walk queries consult it to try healthy servers first: a
// zone whose first-listed nameserver is dead would otherwise cost every
// domain under it a full timeout before the responsive server is asked.
type addrHealth struct {
	mu    sync.RWMutex
	fails map[netip.Addr]int
}

func (h *addrHealth) failures(addr netip.Addr) int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.fails[addr]
}

func (h *addrHealth) recordFailure(addr netip.Addr) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.fails == nil {
		h.fails = make(map[netip.Addr]int)
	}
	h.fails[addr]++
}

func (h *addrHealth) recordSuccess(addr netip.Addr) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.fails[addr] != 0 {
		delete(h.fails, addr)
	}
}

// zoneEntry is one zone cache slot: either a discovered server set or a
// negative entry recording why the zone could not be built (err != nil).
// Negative entries let every domain under a broken intermediate zone fail
// fast instead of re-walking the chain.
type zoneEntry struct {
	zs  *ZoneServers
	err error
}

// zoneCache maps zone apexes to their server sets, sharded like hostCache.
type zoneCache struct {
	shards [cacheShards]struct {
		mu sync.Mutex
		m  map[dnsname.Name]zoneEntry
	}
}

func (c *zoneCache) get(name dnsname.Name) (zoneEntry, bool) {
	s := &c.shards[shardIndex(name)]
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.m[name]
	return e, ok
}

func (c *zoneCache) put(name dnsname.Name, e zoneEntry) {
	// Own the key; see hostCache.put.
	name = name.Own()
	s := &c.shards[shardIndex(name)]
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.m == nil {
		s.m = make(map[dnsname.Name]zoneEntry)
	}
	s.m[name] = e
}
