package resolver

import (
	"context"
	"errors"
	"net/netip"
	"testing"
	"time"

	"govdns/internal/chaos"
	"govdns/internal/dnsname"
	"govdns/internal/dnswire"
	"govdns/internal/miniworld"
	"govdns/internal/simnet"
)

func newFixture(t *testing.T) (*miniworld.World, *Client, *Iterator) {
	t.Helper()
	w := miniworld.Build()
	c := NewClient(w.Net)
	c.Timeout = 20 * time.Millisecond
	c.Retries = 1
	return w, c, NewIterator(c, w.Roots)
}

func ctxWithTimeout(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestClientQueryDirect(t *testing.T) {
	_, c, _ := newFixture(t)
	resp, err := c.Query(ctxWithTimeout(t), miniworld.GovNS1Addr, "gov.br.", dnswire.TypeNS)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if !resp.Header.Authoritative || len(resp.Answers) != 2 {
		t.Errorf("unexpected response: %s", resp)
	}
}

func TestClientQueryTimeout(t *testing.T) {
	_, c, _ := newFixture(t)
	start := time.Now()
	_, err := c.Query(ctxWithTimeout(t), miniworld.DeadAddr, "dead.gov.br.", dnswire.TypeNS)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("error = %v, want ErrTimeout", err)
	}
	// Two attempts of ~20ms each.
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Errorf("timed out after %v; retry did not happen", elapsed)
	}
}

func TestDelegationHealthyDomain(t *testing.T) {
	_, _, it := newFixture(t)
	d, err := it.Delegation(ctxWithTimeout(t), "city.gov.br.")
	if err != nil {
		t.Fatalf("Delegation: %v", err)
	}
	if d.Parent.Zone != "gov.br." {
		t.Errorf("parent zone = %q, want gov.br.", d.Parent.Zone)
	}
	hosts := d.Hosts()
	if len(hosts) != 2 || hosts[0] != "ns1.city.gov.br." || hosts[1] != "ns2.city.gov.br." {
		t.Errorf("hosts = %v", hosts)
	}
	if len(d.Glue) != 2 {
		t.Errorf("glue count = %d, want 2", len(d.Glue))
	}
	if d.Authoritative {
		t.Error("referral marked authoritative")
	}
}

func TestDelegationThirdPartyHosted(t *testing.T) {
	_, _, it := newFixture(t)
	d, err := it.Delegation(ctxWithTimeout(t), "hosted.gov.br.")
	if err != nil {
		t.Fatalf("Delegation: %v", err)
	}
	hosts := d.Hosts()
	if len(hosts) != 2 || hosts[0] != "ns1.provider.com." {
		t.Errorf("hosts = %v", hosts)
	}
}

func TestDelegationNXDomain(t *testing.T) {
	_, _, it := newFixture(t)
	_, err := it.Delegation(ctxWithTimeout(t), "nonexistent.gov.br.")
	if !errors.Is(err, ErrNXDomain) {
		t.Fatalf("error = %v, want ErrNXDomain", err)
	}
}

func TestResolveHostWithGlue(t *testing.T) {
	_, _, it := newFixture(t)
	addrs, err := it.ResolveHost(ctxWithTimeout(t), "ns1.city.gov.br.")
	if err != nil {
		t.Fatalf("ResolveHost: %v", err)
	}
	if len(addrs) != 1 || addrs[0] != miniworld.CityNS1Addr {
		t.Errorf("addrs = %v, want [%v]", addrs, miniworld.CityNS1Addr)
	}
}

func TestResolveHostThirdParty(t *testing.T) {
	_, _, it := newFixture(t)
	addrs, err := it.ResolveHost(ctxWithTimeout(t), "ns2.provider.com.")
	if err != nil {
		t.Fatalf("ResolveHost: %v", err)
	}
	if len(addrs) != 1 || addrs[0] != miniworld.ProviderNS2Addr {
		t.Errorf("addrs = %v, want [%v]", addrs, miniworld.ProviderNS2Addr)
	}
}

func TestResolveHostDanglingNXDomain(t *testing.T) {
	_, _, it := newFixture(t)
	_, err := it.ResolveHost(ctxWithTimeout(t), "ns.gone-provider.com.")
	if !errors.Is(err, ErrNXDomain) {
		t.Fatalf("error = %v, want ErrNXDomain", err)
	}
}

func TestResolveHostCaching(t *testing.T) {
	w, c, it := newFixture(t)
	ctx := ctxWithTimeout(t)
	if _, err := it.ResolveHost(ctx, "ns1.provider.com."); err != nil {
		t.Fatal(err)
	}
	// Kill the entire com. infrastructure: cached entries must still
	// resolve, proving no network round trip happens.
	w.Net.Blackhole(miniworld.TLDComAddr)
	w.Net.Blackhole(miniworld.ProviderNS1Addr)
	addrs, err := it.ResolveHost(ctx, "ns1.provider.com.")
	if err != nil || len(addrs) != 1 {
		t.Fatalf("cached ResolveHost = %v, %v", addrs, err)
	}
	_ = c
}

func TestNegativeCaching(t *testing.T) {
	_, _, it := newFixture(t)
	ctx := ctxWithTimeout(t)
	if _, err := it.ResolveHost(ctx, "ns.gone-provider.com."); err == nil {
		t.Fatal("expected failure")
	}
	start := time.Now()
	if _, err := it.ResolveHost(ctx, "ns.gone-provider.com."); err == nil {
		t.Fatal("expected cached failure")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Millisecond {
		t.Errorf("second failed resolution took %v; negative cache not used", elapsed)
	}
}

func TestDelegationSkipsLameParentServer(t *testing.T) {
	// Even with one gov.br server persistently dropping every query,
	// delegation succeeds via the other.
	w := miniworld.Build()
	tr := w.ChaosProfile(1, map[dnsname.Name][]chaos.Rule{
		"ns1.gov.br.": {chaos.Persistent(chaos.Drop, 1)},
	})
	c := NewClient(tr)
	c.Timeout = 20 * time.Millisecond
	c.Retries = 1
	it := NewIterator(c, w.Roots)
	d, err := it.Delegation(ctxWithTimeout(t), "city.gov.br.")
	if err != nil {
		t.Fatalf("Delegation with one lame parent server: %v", err)
	}
	if len(d.Hosts()) != 2 {
		t.Errorf("hosts = %v", d.Hosts())
	}
	if tr.Stats().Injected[chaos.Drop] == 0 {
		t.Error("chaos dropped nothing; the lame server was never consulted")
	}
}

func TestDelegationFailsWhenAllParentsLame(t *testing.T) {
	w, _, it := newFixture(t)
	w.Net.Blackhole(miniworld.GovNS1Addr)
	w.Net.Blackhole(miniworld.GovNS2Addr)
	_, err := it.Delegation(ctxWithTimeout(t), "city.gov.br.")
	if err == nil {
		t.Fatal("Delegation succeeded with every parent server dead")
	}
}

func TestZoneServersAllAddrs(t *testing.T) {
	zs := &ZoneServers{
		Zone:  "x.",
		Hosts: []dnsname.Name{"a.x.", "b.x."},
		Addrs: map[dnsname.Name][]netip.Addr{
			"a.x.": {netip.MustParseAddr("10.0.0.2"), netip.MustParseAddr("10.0.0.1")},
			"b.x.": {netip.MustParseAddr("10.0.0.1")}, // duplicate
		},
	}
	addrs := zs.AllAddrs()
	if len(addrs) != 2 || !addrs[0].Less(addrs[1]) {
		t.Errorf("AllAddrs = %v", addrs)
	}
}

func TestValidateRejectsWrongID(t *testing.T) {
	q := dnswire.NewQuery(5, "x.example.", dnswire.TypeA)
	r := dnswire.NewResponse(q)
	r.Header.ID = 6
	if err := validate(q, r); !errors.Is(err, ErrMismatch) {
		t.Errorf("error = %v, want ErrMismatch", err)
	}
}

func TestValidateRejectsNonResponse(t *testing.T) {
	q := dnswire.NewQuery(5, "x.example.", dnswire.TypeA)
	r := dnswire.NewResponse(q)
	r.Header.Response = false
	if err := validate(q, r); !errors.Is(err, ErrMismatch) {
		t.Errorf("error = %v, want ErrMismatch", err)
	}
}

func TestValidateRejectsWrongQuestion(t *testing.T) {
	q := dnswire.NewQuery(5, "x.example.", dnswire.TypeA)
	r := dnswire.NewResponse(q)
	r.Questions[0].Name = "y.example."
	if err := validate(q, r); !errors.Is(err, ErrMismatch) {
		t.Errorf("error = %v, want ErrMismatch", err)
	}
}

func TestResolveHostChasesCNAME(t *testing.T) {
	_, _, it := newFixture(t)
	addrs, err := it.ResolveHost(ctxWithTimeout(t), "cname-ns.gov.br.")
	if err != nil {
		t.Fatalf("ResolveHost via CNAME: %v", err)
	}
	if len(addrs) != 1 || addrs[0] != miniworld.GovNS1Addr {
		t.Errorf("addrs = %v, want [%v]", addrs, miniworld.GovNS1Addr)
	}
}

func TestResolverUnderPacketLoss(t *testing.T) {
	// With 20% loss, retries must still resolve healthy domains.
	w := miniworld.BuildWithNetwork(simnet.Config{Seed: 9, LossRate: 0.2})
	c := NewClient(w.Net)
	c.Timeout = 15 * time.Millisecond
	c.Retries = 4
	it := NewIterator(c, w.Roots)
	ctx := ctxWithTimeout(t)
	ok := 0
	for i := 0; i < 10; i++ {
		if _, err := it.Delegation(ctx, "city.gov.br."); err == nil {
			ok++
		}
		// Fresh iterator so the walk is not served from cache.
		it = NewIterator(c, w.Roots)
	}
	if ok < 8 {
		t.Errorf("only %d/10 walks succeeded under 20%% loss with retries", ok)
	}
}

func TestClientStats(t *testing.T) {
	_, c, _ := newFixture(t)
	ctx := ctxWithTimeout(t)
	if _, err := c.Query(ctx, miniworld.GovNS1Addr, "gov.br.", dnswire.TypeNS); err != nil {
		t.Fatal(err)
	}
	_, _ = c.Query(ctx, miniworld.DeadAddr, "dead.gov.br.", dnswire.TypeNS)
	s := c.Stats()
	if s.Received != 1 {
		t.Errorf("Received = %d, want 1", s.Received)
	}
	// One success + (1 + Retries) timed-out attempts.
	if s.Sent != 1+uint64(1+c.Retries) {
		t.Errorf("Sent = %d, want %d", s.Sent, 1+1+c.Retries)
	}
	if s.Timeouts != uint64(1+c.Retries) {
		t.Errorf("Timeouts = %d, want %d", s.Timeouts, 1+c.Retries)
	}
}

func TestClientRejectsTruncatedResponse(t *testing.T) {
	// A miniworld server that answers every query with the TC bit set.
	w := miniworld.Build()
	tr := w.ChaosProfile(2, map[dnsname.Name][]chaos.Rule{
		"ns1.gov.br.": {chaos.Persistent(chaos.Truncate, 1)},
	})
	c := NewClient(tr)
	c.Timeout = 20 * time.Millisecond
	_, err := c.Query(context.Background(), miniworld.GovNS1Addr, "gov.br.", dnswire.TypeNS)
	if !errors.Is(err, ErrTruncated) {
		t.Errorf("error = %v, want ErrTruncated", err)
	}
	if tr.Stats().Injected[chaos.Truncate] == 0 {
		t.Error("chaos truncated nothing; the test is vacuous")
	}
	if got := c.Stats().Truncations; got == 0 {
		t.Errorf("client truncation counter = %d, want > 0", got)
	}
}
