package resolver

import (
	"strings"
	"testing"
	"time"

	"govdns/internal/dnsname"
	"govdns/internal/dnswire"
	"govdns/internal/miniworld"
	"govdns/internal/trace"
)

// TestWirePathAliasSafety is the resolver-level borrow-contract
// regression test for the pooled codec path: everything the resolution
// machinery retains past an exchange — delegation records, cached zone
// server sets, host addresses, trace span labels — must be owned copies,
// not views into a codec arena. The test resolves through a dedicated
// pool, then hammers that pool so every arena used by the resolution is
// recycled and its scratch rewritten with distinctive junk; all retained
// state must survive bit-for-bit.
func TestWirePathAliasSafety(t *testing.T) {
	w := miniworld.Build()
	pool := dnswire.NewPool()
	c := NewClient(w.Net)
	c.Timeout = 20 * time.Millisecond
	c.Retries = 1
	c.WirePool = pool
	it := NewIterator(c, w.Roots)

	rec := trace.NewRecorder("city.gov.br.", 0)
	ctx := trace.ContextWith(ctxWithTimeout(t), rec, trace.NoSpan)

	d, err := it.Delegation(ctx, "city.gov.br.")
	if err != nil {
		t.Fatalf("Delegation: %v", err)
	}
	addrs, err := it.ResolveHost(ctx, "ns1.city.gov.br.")
	if err != nil || len(addrs) != 1 {
		t.Fatalf("ResolveHost = %v, %v", addrs, err)
	}

	// Snapshot the retained state with storage of our own, then seal the
	// trace and snapshot its span labels too.
	hostsSnap := ownNames(d.Hosts())
	var nsSnap []dnsname.Name
	for _, rr := range d.NSRecords {
		nsSnap = append(nsSnap, rr.Data.(dnswire.NSData).Host.Own())
	}
	parentSnap := deepCopyZoneServers(&d.Parent)
	dt := rec.Finish("", 1, "", false, false)
	if len(dt.Spans) == 0 {
		t.Fatal("no spans recorded; the trace assertions are vacuous")
	}
	labelSnap := make([]string, len(dt.Spans))
	for i, sp := range dt.Spans {
		labelSnap[i] = strings.Clone(sp.Name)
	}

	// Recycle the pool's arenas through decodes of an unrelated message
	// whose names fill the scratch with 'z's. Several arenas are held
	// open at once so the recycle reaches deeper than one slot.
	junk := dnswire.NewQuery(1, dnsname.MustParse(strings.Repeat("z", 60)+".example"), dnswire.TypeA)
	junkWire, err := dnswire.Encode(junk)
	if err != nil {
		t.Fatalf("Encode junk: %v", err)
	}
	for round := 0; round < 8; round++ {
		arenas := make([]*dnswire.Arena, 16)
		for i := range arenas {
			arenas[i] = pool.Get()
			if _, err := arenas[i].Decode(junkWire); err != nil {
				t.Fatalf("Decode junk: %v", err)
			}
		}
		for _, a := range arenas {
			a.Finish()
		}
	}
	if s := pool.Stats(); s.Recycles == 0 {
		t.Fatalf("pool never recycled an arena: %+v", s)
	}

	// Everything snapshotted above must be unaffected.
	for i, h := range d.Hosts() {
		if h != hostsSnap[i] {
			t.Errorf("delegation host %d changed after arena recycle: %q != %q", i, h, hostsSnap[i])
		}
	}
	for i, rr := range d.NSRecords {
		if got := rr.Data.(dnswire.NSData).Host; got != nsSnap[i] {
			t.Errorf("NS record %d changed after arena recycle: %q != %q", i, got, nsSnap[i])
		}
	}
	if d.Parent.Zone != parentSnap.Zone {
		t.Errorf("parent zone changed after arena recycle: %q != %q", d.Parent.Zone, parentSnap.Zone)
	}
	for i, sp := range dt.Spans {
		if sp.Name != labelSnap[i] {
			t.Errorf("span %d (%s) label changed after arena recycle: %q != %q",
				i, sp.Kind, sp.Name, labelSnap[i])
		}
	}

	// The caches must serve the same (intact) state on a fresh walk.
	d2, err := it.Delegation(ctxWithTimeout(t), "city.gov.br.")
	if err != nil {
		t.Fatalf("second Delegation: %v", err)
	}
	if d2.Parent.Zone != parentSnap.Zone {
		t.Errorf("cached parent zone changed: %q != %q", d2.Parent.Zone, parentSnap.Zone)
	}
	for i, h := range d2.Hosts() {
		if h != hostsSnap[i] {
			t.Errorf("cached delegation host %d changed: %q != %q", i, h, hostsSnap[i])
		}
	}
	again, err := it.ResolveHost(ctxWithTimeout(t), "ns1.city.gov.br.")
	if err != nil || len(again) != 1 || again[0] != addrs[0] {
		t.Errorf("cached host resolution changed: %v, %v (want %v)", again, err, addrs)
	}
}

func ownNames(in []dnsname.Name) []dnsname.Name {
	out := make([]dnsname.Name, len(in))
	for i, n := range in {
		out[i] = n.Own()
	}
	return out
}
