package worldgen

import (
	"fmt"
	"math/rand"

	"govdns/internal/dnsname"
)

// assignConditions draws each country's scan-time misconfiguration
// states. It runs after provider calibration so conditions can depend on
// the final hosting assignment.
func (w *World) assignConditions(idx int, rng *rand.Rand) {
	profile := w.Profiles[idx]
	country := w.Countries[idx]

	// Hijack-risk exposure is country-clustered: the paper found
	// registrable dangling records in only 49 countries. Countries with
	// dedicated profiles keep their configured exposure; of the rest,
	// roughly half run operations tight enough that dead delegations
	// never point at expired third-party domains.
	if country.ProfileName == "" {
		if nameHash(country.Suffix)%100 >= 50 {
			profile.Dangling = 0
			profile.TypoNS = 0
		} else {
			profile.Dangling *= 1.6
		}
	}

	// Per-country expired hoster domains shared by clusters of dangling
	// domains — the "dozens or even hundreds in the same d_gov" cases.
	sharedPool := []dnsname.Name{
		dnsname.MustParse(fmt.Sprintf("oldhost%s1.com", country.Code)),
		dnsname.MustParse(fmt.Sprintf("deaddns%s.net", country.Code)),
	}
	w.SharedDangling[idx] = sharedPool

	for _, d := range w.Domains {
		if d.CountryIdx != idx {
			continue
		}
		if d.Name == country.Suffix {
			continue // the apex stays healthy
		}
		switch {
		case d.Died != 0:
			// Domains that died early in the period were removed from
			// the parent zone; nothing to scan.
			if d.Died < w.Cfg.EndYear-2 {
				continue
			}
			// Domains that died near the end of the period may leave a
			// stale delegation behind.
			if rng.Float64() < 0.3 {
				d.Cond = CondStaleDelegation
				w.maybeDangle(d, profile, 4, sharedPool, rng)
				w.GhostNames = append(w.GhostNames, d.Name.MustPrepend("www"))
			}
		case d.SingleNS:
			if rng.Float64() < profile.SingleNSStale {
				d.Cond = CondStaleDelegation
				w.maybeDangle(d, profile, 4, sharedPool, rng)
			}
		default:
			w.assignMultiCondition(d, profile, sharedPool, rng)
		}
	}
}

// assignMultiCondition draws the condition for an alive multi-NS domain.
func (w *World) assignMultiCondition(d *Domain, profile Profile, sharedPool []dnsname.Name, rng *rand.Rand) {
	r := rng.Float64()
	switch {
	case r < profile.Stale:
		d.Cond = CondStaleDelegation
		w.maybeDangle(d, profile, 4, sharedPool, rng)
	case r < profile.Stale+profile.PartialLame:
		// Partially defective delegation.
		if rng.Float64() < profile.TypoNS {
			d.Cond = CondTypo
			d.DanglingDomain = typoDomain(d.Final().NS, rng)
			return
		}
		if rng.Float64() < profile.SharedLameBias && sharesServers(d.Final()) {
			d.Cond = CondPartialLameShared
		} else {
			d.Cond = CondPartialLameOwn
		}
		w.maybeDangle(d, profile, 1, sharedPool, rng)
	case r < profile.Stale+profile.PartialLame+profile.Inconsistent:
		// Pure inconsistency (all servers respond).
		roll := rng.Float64()
		switch {
		case roll < 0.45:
			d.Cond = CondInconsistentExtraParent
		case roll < 0.75:
			d.Cond = CondInconsistentExtraChild
		default:
			d.Cond = CondInconsistentDisjoint
		}
	case r < profile.Stale+profile.PartialLame+profile.Inconsistent+profile.Parked:
		d.Cond = CondParked
		d.DanglingDomain = dnsname.MustParse(
			fmt.Sprintf("parked-dns-%s%d.com", w.Countries[d.CountryIdx].Code, rng.Intn(4)+1))
	default:
		d.Cond = CondHealthy
	}
}

// maybeDangle marks the domain's dead nameserver as living under an
// expired, registrable domain. factor scales the profile rate: stale
// (fully dead) domains dangle far more often — their operators stopped
// paying attention long ago — which concentrates the hijackable
// population among unresponsive domains as the paper observed (625 of
// 1,121).
func (w *World) maybeDangle(d *Domain, profile Profile, factor float64, sharedPool []dnsname.Name, rng *rand.Rand) {
	a := d.Final()
	// Only third-party nameservers can dangle this way; in-government
	// hostnames are not registrable (the paper found most defective
	// delegations harmless for exactly this reason).
	if a.Kind != HostLocal && a.Kind != HostGlobal {
		return
	}
	if a.Kind == HostGlobal {
		// Catalog providers do not let their domains expire.
		return
	}
	if rng.Float64() >= profile.Dangling*factor {
		return
	}
	if rng.Float64() < 0.35 {
		d.DanglingDomain = sharedPool[rng.Intn(len(sharedPool))]
	} else {
		d.DanglingDomain = dnsname.MustParse(
			fmt.Sprintf("ns-%s.com", randomToken(rng)))
	}
}

// sharesServers reports whether the assignment rides shared
// infrastructure (central or hosted), where one dead server breaks many
// domains.
func sharesServers(a Assignment) bool {
	return a.Kind == HostCentral || a.Kind == HostLocal || a.Kind == HostGlobal
}

// typoDomain fabricates a registrable domain produced by a missing-dot
// typo of one of the real nameservers — the pns12cloudns.net pattern
// from the paper.
func typoDomain(ns []dnsname.Name, rng *rand.Rand) dnsname.Name {
	if len(ns) == 0 {
		return dnsname.MustParse(fmt.Sprintf("typo-%s.com", randomToken(rng)))
	}
	host := ns[rng.Intn(len(ns))]
	labels := host.Labels()
	if len(labels) < 3 {
		return dnsname.MustParse(fmt.Sprintf("typo-%s.com", randomToken(rng)))
	}
	// Fuse the first two labels: ns1.cloudns.net -> ns1cloudns.net.
	fused := labels[0] + labels[1]
	rest := labels[2:]
	out := fused
	for _, l := range rest {
		out += "." + l
	}
	n, err := dnsname.Parse(out)
	if err != nil {
		return dnsname.MustParse(fmt.Sprintf("typo-%s.com", randomToken(rng)))
	}
	return n
}

func randomToken(rng *rand.Rand) string {
	const letters = "abcdefghijklmnopqrstuvwxyz"
	b := make([]byte, 8)
	for i := range b {
		b[i] = letters[rng.Intn(len(letters))]
	}
	return string(b)
}
