package worldgen

import (
	"context"
	"testing"
	"time"

	"govdns/internal/dnsname"
	"govdns/internal/dnswire"
	"govdns/internal/pdns"
	"govdns/internal/resolver"
	"govdns/internal/stats"
)

// testConfig keeps generation fast: ~2% of paper scale.
func testConfig() Config {
	return Config{Seed: 7, Scale: 0.02}
}

var (
	_cachedWorld  *World
	_cachedActive *Active
)

// sharedWorld generates one world per test binary; generation is
// deterministic so sharing is safe for read-only tests.
func sharedWorld(t *testing.T) (*World, *Active) {
	t.Helper()
	if _cachedWorld == nil {
		_cachedWorld = Generate(testConfig())
		_cachedActive = Build(_cachedWorld)
	}
	return _cachedWorld, _cachedActive
}

func TestCountriesDataset(t *testing.T) {
	countries := Countries()
	if len(countries) != 193 {
		t.Fatalf("Countries() = %d entries, want 193 UN member states", len(countries))
	}
	seenCode := make(map[string]bool)
	seenSuffix := make(map[dnsname.Name]bool)
	subRegions := make(map[string]bool)
	for _, country := range countries {
		if seenCode[country.Code] {
			t.Errorf("duplicate country code %s", country.Code)
		}
		seenCode[country.Code] = true
		if seenSuffix[country.Suffix] {
			t.Errorf("duplicate suffix %s", country.Suffix)
		}
		seenSuffix[country.Suffix] = true
		if country.Weight <= 0 {
			t.Errorf("%s has non-positive weight", country.Code)
		}
		subRegions[country.SubRegion] = true
	}
	if len(subRegions) != 22 {
		t.Errorf("got %d sub-regions, want 22 UN M49 sub-regions", len(subRegions))
	}
	// Paper groups: 22 sub-regions + 10 singleton countries, where the
	// singletons leave their sub-region (which may then still contain
	// other countries) — in total 32 groups.
	groups := Groups(countries)
	distinct := make(map[string]bool)
	for _, g := range groups {
		distinct[g] = true
	}
	if len(distinct) != 32 {
		t.Errorf("got %d groups, want 32 (Table II footnote)", len(distinct))
	}
}

func TestTopByWeight(t *testing.T) {
	top := TopByWeight(Countries(), 10)
	if len(top) != 10 {
		t.Fatalf("TopByWeight returned %d", len(top))
	}
	if top[0].Code != "cn" {
		t.Errorf("largest country = %s, want cn", top[0].Code)
	}
	for i := 1; i < len(top); i++ {
		if top[i].Weight > top[i-1].Weight {
			t.Errorf("TopByWeight not descending at %d", i)
		}
	}
}

func TestProfilesResolve(t *testing.T) {
	for _, country := range Countries() {
		p := profileFor(country)
		if len(p.Growth) != 10 {
			t.Errorf("%s: growth curve has %d points", country.Code, len(p.Growth))
		}
		if p.SingleNS < 0 || p.SingleNS > 1 || p.MultiIP < 0 || p.MultiIP > 1 {
			t.Errorf("%s: rates out of range: %+v", country.Code, p)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	w1 := Generate(Config{Seed: 3, Scale: 0.005})
	w2 := Generate(Config{Seed: 3, Scale: 0.005})
	if len(w1.Domains) != len(w2.Domains) {
		t.Fatalf("domain counts differ: %d vs %d", len(w1.Domains), len(w2.Domains))
	}
	for i := range w1.Domains {
		a, b := w1.Domains[i], w2.Domains[i]
		if a.Name != b.Name || a.Born != b.Born || a.Died != b.Died || a.Cond != b.Cond {
			t.Fatalf("domain %d differs: %+v vs %+v", i, a, b)
		}
	}
	if w1.PDNS.Len() != w2.PDNS.Len() {
		t.Fatalf("PDNS sizes differ: %d vs %d", w1.PDNS.Len(), w2.PDNS.Len())
	}
}

func TestGenerateGrowthShape(t *testing.T) {
	w, _ := sharedWorld(t)
	countByYear := func(y int) int {
		n := 0
		for _, d := range w.Domains {
			if d.AliveIn(y) {
				n++
			}
		}
		return n
	}
	n2011, n2019, n2020 := countByYear(2011), countByYear(2019), countByYear(2020)
	if n2020 <= n2011 {
		t.Errorf("population did not grow: %d (2011) -> %d (2020)", n2011, n2020)
	}
	ratio := float64(n2020) / float64(n2011)
	// Paper: 192.6k/113.5k = 1.7.
	if ratio < 1.4 || ratio > 2.1 {
		t.Errorf("growth ratio = %.2f, want near 1.7", ratio)
	}
	_ = n2019
}

func TestGenerateSingleNSShare(t *testing.T) {
	w, _ := sharedWorld(t)
	singles, total := 0, 0
	for _, d := range w.Domains {
		if !d.AliveIn(2020) {
			continue
		}
		total++
		if d.SingleNS {
			singles++
		}
	}
	share := stats.Rate(singles, total)
	// Paper: 5.9k/192.6k = 3.1% in the 2020 PDNS.
	if share < 0.015 || share > 0.08 {
		t.Errorf("single-NS share 2020 = %.3f, want near 0.031", share)
	}
}

func TestGeneratePDNSPopulated(t *testing.T) {
	w, _ := sharedWorld(t)
	if w.PDNS.Len() == 0 {
		t.Fatal("PDNS store is empty")
	}
	// Every alive domain must have NS records in the store.
	missing := 0
	for _, d := range w.Domains {
		if d.Died != 0 {
			continue
		}
		if len(w.PDNS.Lookup(d.Name, dnswire.TypeNS)) == 0 {
			missing++
		}
	}
	if missing > 0 {
		t.Errorf("%d alive domains missing from PDNS", missing)
	}
}

func TestConditionRatesRoughlyMatchProfiles(t *testing.T) {
	w, _ := sharedWorld(t)
	brIdx := w.countryIndex("br")
	var partial, total int
	for _, d := range w.Domains {
		if d.CountryIdx != brIdx || d.Died != 0 || d.SingleNS {
			continue
		}
		total++
		switch d.Cond {
		case CondPartialLameShared, CondPartialLameOwn, CondTypo:
			partial++
		}
	}
	if total < 50 {
		t.Skipf("too few Brazilian domains at test scale: %d", total)
	}
	rate := stats.Rate(partial, total)
	want := w.Profiles[brIdx].PartialLame
	if rate < want*0.6 || rate > want*1.4 {
		t.Errorf("Brazil partial-lame rate = %.3f, want near %.3f", rate, want)
	}
}

func TestBuildActiveIsResolvable(t *testing.T) {
	w, active := sharedWorld(t)
	client := resolver.NewClient(active.Net)
	client.Timeout = 25 * time.Millisecond
	client.Retries = 1
	it := resolver.NewIterator(client, active.Roots)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Every healthy multi-NS domain must be fully resolvable via a
	// delegation walk from the root. Spot-check a sample.
	checked := 0
	for _, d := range w.Domains {
		if checked >= 25 {
			break
		}
		if d.Cond != CondHealthy || d.Died != 0 || d.SingleNS {
			continue
		}
		if d.Name == w.Countries[d.CountryIdx].Suffix {
			continue
		}
		checked++
		deleg, err := it.Delegation(ctx, d.Name)
		if err != nil {
			t.Errorf("Delegation(%s) [%s, %s]: %v", d.Name, w.Countries[d.CountryIdx].Code, d.Cond, err)
			continue
		}
		if len(deleg.Hosts()) != len(d.Final().NS) {
			t.Errorf("Delegation(%s): %d hosts, want %d", d.Name, len(deleg.Hosts()), len(d.Final().NS))
		}
	}
	if checked == 0 {
		t.Fatal("no healthy domains to check")
	}
}

func TestBuildStaleDomainsAreLame(t *testing.T) {
	w, active := sharedWorld(t)
	client := resolver.NewClient(active.Net)
	client.Timeout = 15 * time.Millisecond
	client.Retries = 0
	it := resolver.NewIterator(client, active.Roots)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	checked := 0
	for _, d := range w.Domains {
		if checked >= 8 {
			break
		}
		if d.Cond != CondStaleDelegation || !d.DelegatedAtScan() {
			continue
		}
		checked++
		deleg, err := it.Delegation(ctx, d.Name)
		if err != nil {
			continue // acceptable: resolution may fail outright
		}
		// The delegation exists, but no listed server may answer for
		// the zone.
		for _, host := range deleg.Hosts() {
			addrs, err := it.ResolveHost(ctx, host)
			if err != nil {
				continue
			}
			for _, addr := range addrs {
				resp, err := client.Query(ctx, addr, d.Name, dnswire.TypeNS)
				if err != nil {
					continue
				}
				if resp.Header.Authoritative && resp.Header.RCode == dnswire.RCodeNoError {
					t.Errorf("stale domain %s got an authoritative answer from %s", d.Name, addr)
				}
			}
		}
	}
	if checked == 0 {
		t.Skip("no stale domains at this scale")
	}
}

func TestBuildDanglingDomainsAvailable(t *testing.T) {
	// Dangling domains outside government suffixes must be registrable;
	// typo domains that fall inside a restricted government suffix must
	// not be (they are typos of in-government nameservers and pose no
	// hijacking risk, exactly as the paper observes).
	w, active := sharedWorld(t)
	suffixes := SuffixSet(w.Countries)
	found, restricted := 0, 0
	for _, d := range w.Domains {
		if d.DanglingDomain == "" || d.Cond == CondParked {
			continue
		}
		if _, underGov := suffixes.LongestSuffix(d.DanglingDomain); underGov {
			restricted++
			if active.Reg.Available(d.DanglingDomain) {
				t.Errorf("in-government typo domain %s is registrable", d.DanglingDomain)
			}
			continue
		}
		found++
		if !active.Reg.Available(d.DanglingDomain) {
			t.Errorf("dangling domain %s not available for registration", d.DanglingDomain)
		}
	}
	if found == 0 && restricted == 0 {
		t.Skip("no dangling domains at this scale")
	}
}

func TestBuildGeoIPCoversNameservers(t *testing.T) {
	w, active := sharedWorld(t)
	missing := 0
	for _, d := range w.Domains {
		if d.Died != 0 || d.Cond != CondHealthy {
			continue
		}
		for _, host := range d.Final().NS {
			for _, addr := range active.AddrsOf(host) {
				if _, ok := active.Geo.ASN(addr); !ok {
					missing++
				}
			}
		}
	}
	if missing > 0 {
		t.Errorf("%d nameserver addresses missing from GeoIP", missing)
	}
}

func TestBuildDiversityRealized(t *testing.T) {
	w, active := sharedWorld(t)
	for _, d := range w.Domains {
		if d.Died != 0 || d.SingleNS || d.Cond != CondHealthy {
			continue
		}
		final := d.Final()
		if final.Kind != HostPrivate && final.Kind != HostCentral {
			continue
		}
		ips := make(map[string]bool)
		p24 := make(map[uint32]bool)
		asns := make(map[uint32]bool)
		for _, host := range final.NS {
			for _, addr := range active.AddrsOf(host) {
				ips[addr.String()] = true
				rec, err := active.Geo.Lookup(addr)
				if err != nil {
					t.Fatalf("GeoIP miss for %v", addr)
				}
				asns[rec.ASN] = true
				p24[prefix24(addr)] = true
			}
		}
		switch d.Div {
		case DivSameIP:
			if len(ips) != 1 {
				t.Errorf("%s (same-ip): %d IPs", d.Name, len(ips))
			}
		case DivSame24:
			if len(ips) < 2 || len(p24) != 1 {
				t.Errorf("%s (same-24): %d IPs, %d prefixes", d.Name, len(ips), len(p24))
			}
		case DivMulti24:
			if len(p24) < 2 || len(asns) != 1 {
				t.Errorf("%s (multi-24): %d prefixes, %d ASNs", d.Name, len(p24), len(asns))
			}
		case DivMultiASN:
			if len(asns) < 2 {
				t.Errorf("%s (multi-asn): %d ASNs", d.Name, len(asns))
			}
		}
	}
}

func TestQueryListContainsAliveAndStale(t *testing.T) {
	w, active := sharedWorld(t)
	inList := make(map[dnsname.Name]bool, len(active.QueryList))
	for _, n := range active.QueryList {
		inList[n] = true
	}
	for _, d := range w.Domains {
		if d.Died == 0 && !inList[d.Name] {
			t.Errorf("alive domain %s missing from query list", d.Name)
		}
		if d.Died != 0 && d.Died < w.Cfg.EndYear-2 && inList[d.Name] {
			t.Errorf("long-dead domain %s in query list", d.Name)
		}
	}
}

func TestPDNSStabilityFilterRemovesTransients(t *testing.T) {
	w, _ := sharedWorld(t)
	all := pdns.NewView(w.PDNS.Snapshot())
	stable := all.Stable(pdns.StabilityFilterDays)
	if len(stable.Sets) >= len(all.Sets) {
		t.Errorf("stability filter removed nothing: %d -> %d", len(all.Sets), len(stable.Sets))
	}
	for _, rs := range stable.Sets {
		if rs.RData == "ns1.ddos-shield.net." || rs.RData == "ns2.ddos-shield.net." || rs.RData == "ns3.ddos-shield.net." {
			if rs.DurationDays() < pdns.StabilityFilterDays {
				t.Errorf("transient record survived the filter: %+v", rs)
			}
		}
	}
}

func prefix24(addr interface{ As4() [4]byte }) uint32 {
	b := addr.As4()
	return uint32(b[0])<<16 | uint32(b[1])<<8 | uint32(b[2])
}

func TestBuildDeterministic(t *testing.T) {
	mk := func() *Active {
		return Build(Generate(Config{Seed: 13, Scale: 0.004}))
	}
	a, b := mk(), mk()
	if len(a.QueryList) != len(b.QueryList) {
		t.Fatalf("query lists differ in length: %d vs %d", len(a.QueryList), len(b.QueryList))
	}
	for i := range a.QueryList {
		if a.QueryList[i] != b.QueryList[i] {
			t.Fatalf("query lists differ at %d: %s vs %s", i, a.QueryList[i], b.QueryList[i])
		}
	}
	if a.Geo.Len() != b.Geo.Len() {
		t.Errorf("GeoIP sizes differ: %d vs %d", a.Geo.Len(), b.Geo.Len())
	}
	if a.Net.NumServers() != b.Net.NumServers() {
		t.Errorf("server counts differ: %d vs %d", a.Net.NumServers(), b.Net.NumServers())
	}
	// Address plans must match exactly.
	for _, d := range a.World.Domains {
		if d.Died != 0 {
			continue
		}
		for _, host := range d.Final().NS {
			x, y := a.AddrsOf(host), b.AddrsOf(host)
			if len(x) != len(y) {
				t.Fatalf("%s: address counts differ", host)
			}
			for i := range x {
				if x[i] != y[i] {
					t.Fatalf("%s: addresses differ: %v vs %v", host, x[i], y[i])
				}
			}
		}
	}
}

func TestProviderMarkets(t *testing.T) {
	w, _ := sharedWorld(t)
	table := adoptionTable()
	var cloudflare, azure adoption
	for _, a := range table {
		switch a.key {
		case "cloudflare":
			cloudflare = a
		case "azure":
			azure = a
		}
	}
	early := w.providerMarkets(cloudflare, 0)
	late := w.providerMarkets(cloudflare, 1)
	if len(early) != cloudflare.markets2011 || len(late) != cloudflare.markets2020 {
		t.Errorf("cloudflare markets = %d -> %d, want %d -> %d",
			len(early), len(late), cloudflare.markets2011, cloudflare.markets2020)
	}
	// Markets grow monotonically: early markets remain in the late set.
	for idx := range early {
		if !late[idx] {
			t.Errorf("country %d left cloudflare's market", idx)
		}
	}
	// Azure starts with no markets at all.
	if got := w.providerMarkets(azure, 0); len(got) != 0 {
		t.Errorf("azure 2011 markets = %d, want 0", len(got))
	}
	// Deterministic ordering.
	a1 := w.marketOrder("cloudflare")
	a2 := w.marketOrder("cloudflare")
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatal("market order not deterministic")
		}
	}
}
