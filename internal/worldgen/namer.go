package worldgen

import (
	"fmt"
	"math/rand"

	"govdns/internal/dnsname"
)

// namer generates unique, plausible-looking government domain labels for
// one country: ministries and agencies at level 3, regional subdivisions
// at level 4, and offices within regions at level 5.
type namer struct {
	country Country
	rng     *rand.Rand
	used    map[dnsname.Name]bool
	regions []dnsname.Name
	seq     int
}

// Label fragments combined into agency-like names.
var (
	_namerPrefixes = []string{
		"min", "sec", "dep", "dir", "inst", "serv", "com", "ag", "sup", "reg",
	}
	_namerStems = []string{
		"fin", "edu", "sal", "jus", "agri", "san", "def", "trab", "cul",
		"amb", "tur", "plan", "port", "tec", "transp", "energ", "urb",
		"pesc", "migr", "aduan", "estat", "elec", "forest", "aqua", "metro",
	}
	_namerRegionStems = []string{
		"norte", "sur", "este", "oeste", "centro", "alto", "bajo", "nuevo",
		"villa", "puerto", "monte", "rio", "lago", "costa", "sierra", "valle",
	}
)

func newNamer(country Country, rng *rand.Rand) *namer {
	n := &namer{
		country: country,
		rng:     rng,
		used:    map[dnsname.Name]bool{country.Suffix: true},
	}
	// Pre-build the regional layer used by level-4/5 names.
	regionCount := 8 + rng.Intn(20)
	for i := 0; i < regionCount; i++ {
		stem := _namerRegionStems[rng.Intn(len(_namerRegionStems))]
		label := fmt.Sprintf("%s%d", stem, i+1)
		n.regions = append(n.regions, country.Suffix.MustPrepend(label))
	}
	return n
}

// next returns a fresh domain name and its DNS-hierarchy level.
func (n *namer) next(profile Profile) (dnsname.Name, int) {
	parent := n.country.Suffix
	r := n.rng.Float64()
	switch {
	case r < profile.Level5Share:
		region := n.regions[n.rng.Intn(len(n.regions))]
		sub := region.MustPrepend(fmt.Sprintf("d%d", n.rng.Intn(30)+1))
		parent = sub
	case r < profile.Level5Share+profile.Level4Share:
		parent = n.regions[n.rng.Intn(len(n.regions))]
	}
	for attempt := 0; ; attempt++ {
		label := n.agencyLabel()
		if attempt > 4 {
			n.seq++
			label = fmt.Sprintf("%s%d", label, n.seq)
		}
		name := parent.MustPrepend(label)
		if !n.used[name] {
			n.used[name] = true
			return name, name.Level()
		}
	}
}

func (n *namer) agencyLabel() string {
	label := _namerPrefixes[n.rng.Intn(len(_namerPrefixes))] +
		_namerStems[n.rng.Intn(len(_namerStems))]
	if n.rng.Float64() < 0.3 {
		label = fmt.Sprintf("%s%d", label, n.rng.Intn(90)+1)
	}
	return label
}
