// Package worldgen generates the synthetic world the study measures: a
// longitudinal population of government domains for 193 countries
// (2011-2020) with calibrated deployment strategies, provider adoption
// trends, and misconfigurations; a passive-DNS history of that
// population; and an "active" simulated Internet (zones, servers,
// topology) frozen at scan time (April 2021).
//
// Generation is deterministic: the same Config yields the same world.
package worldgen

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"govdns/internal/dnsname"
	"govdns/internal/pdns"
)

// Config controls generation.
type Config struct {
	// Seed drives every random choice.
	Seed int64
	// Scale multiplies all country weights. 1.0 reproduces the paper's
	// magnitudes (~190k PDNS domains); the default 0.1 keeps test and
	// example runs fast while preserving every rate.
	Scale float64
	// StartYear and EndYear bound the PDNS study period (inclusive).
	// Zero values default to 2011 and 2020.
	StartYear, EndYear int
	// HijackEvents injects that many historical hijacking episodes into
	// the PDNS record: for a couple of weeks a domain's NS records point
	// at attacker infrastructure, then revert. Zero disables injection
	// (the default); the § V-A forensics analysis hunts for these.
	HijackEvents int
}

func (c Config) withDefaults() Config {
	if c.Scale == 0 {
		c.Scale = 0.1
	}
	if c.StartYear == 0 {
		c.StartYear = 2011
	}
	if c.EndYear == 0 {
		c.EndYear = 2020
	}
	return c
}

// ScanDay is the active-measurement date (the paper scanned in April
// 2021).
var ScanDay = pdns.Date(2021, time.April, 15)

// HostingKind classifies how a domain's authoritative DNS is operated.
type HostingKind int

// Hosting kinds.
const (
	// HostPrivate means dedicated in-domain nameservers
	// (ns1.<domain>).
	HostPrivate HostingKind = iota + 1
	// HostCentral means the government's shared central nameservers
	// (ns1.<d_gov>).
	HostCentral
	// HostLocal means a country-local hosting company outside the
	// provider catalog.
	HostLocal
	// HostGlobal means a provider from the global catalog.
	HostGlobal
)

// Assignment is a domain's nameserver configuration during a span.
type Assignment struct {
	Kind HostingKind
	// Provider is the catalog key (HostGlobal) or hoster domain string
	// (HostLocal); empty otherwise.
	Provider string
	// NS are the delegated nameserver hostnames.
	NS []dnsname.Name
	// Mixed marks provider-hosted domains that kept one extra private
	// nameserver (these are not d_1P).
	Mixed bool
}

// Span is an assignment over [FromYear, ToYear], inclusive.
type Span struct {
	FromYear, ToYear int
	A                Assignment
}

// Condition is the misconfiguration state of a domain at scan time.
type Condition int

// Conditions observed by the active scan.
const (
	// CondHealthy domains answer consistently from every server.
	CondHealthy Condition = iota + 1
	// CondStaleDelegation: the domain is dead but its delegation
	// remains in the parent — a fully defective delegation.
	CondStaleDelegation
	// CondPartialLameShared: a shared nameserver (central or hoster) is
	// dead, breaking many domains at once.
	CondPartialLameShared
	// CondPartialLameOwn: one of the domain's dedicated nameservers is
	// dead.
	CondPartialLameOwn
	// CondTypo: the parent lists a typo'd nameserver hostname whose
	// (unregistered) domain does not exist.
	CondTypo
	// CondInconsistentExtraChild: the child zone lists an extra
	// nameserver the parent lacks (C ⊃ P).
	CondInconsistentExtraChild
	// CondInconsistentExtraParent: the parent lists an extra, dead
	// nameserver the child dropped (P ⊃ C).
	CondInconsistentExtraParent
	// CondInconsistentDisjoint: the domain migrated providers and the
	// parent was never updated (P ∩ C = ∅); the old servers refuse.
	CondInconsistentDisjoint
	// CondDangling: a nameserver lies under an expired, registrable
	// domain.
	CondDangling
	// CondParked: the parent lists a nameserver under an expired domain
	// now owned by a parking service that answers everything.
	CondParked
)

// String returns a short mnemonic for the condition.
func (c Condition) String() string {
	switch c {
	case CondHealthy:
		return "healthy"
	case CondStaleDelegation:
		return "stale"
	case CondPartialLameShared:
		return "partial-shared"
	case CondPartialLameOwn:
		return "partial-own"
	case CondTypo:
		return "typo"
	case CondInconsistentExtraChild:
		return "inc-extra-child"
	case CondInconsistentExtraParent:
		return "inc-extra-parent"
	case CondInconsistentDisjoint:
		return "inc-disjoint"
	case CondDangling:
		return "dangling"
	case CondParked:
		return "parked"
	default:
		return fmt.Sprintf("condition(%d)", int(c))
	}
}

// DiversityClass pins the Table I outcome for a multi-NS domain.
type DiversityClass int

// Diversity classes.
const (
	// DivSameIP: all nameservers resolve to one address.
	DivSameIP DiversityClass = iota + 1
	// DivSame24: multiple addresses within one /24.
	DivSame24
	// DivMulti24: multiple /24 prefixes, one AS.
	DivMulti24
	// DivMultiASN: multiple autonomous systems.
	DivMultiASN
)

// Domain is one government domain's full history.
type Domain struct {
	Name       dnsname.Name
	CountryIdx int
	Level      int
	// Born and Died are years; Died == 0 means alive at scan time.
	Born, Died int
	// Spans is the assignment history, contiguous and ordered.
	Spans []Span
	// SingleNS marks d_1NS domains.
	SingleNS bool
	// Cond is the scan-time condition (only meaningful if the domain is
	// alive or stale-delegated).
	Cond Condition
	// Div is the effective diversity class (multi-NS domains only);
	// provider migrations override it. DrawnDiv preserves the original
	// draw so a domain returning to local hosting recovers its class.
	Div      DiversityClass
	DrawnDiv DiversityClass
	// ProviderEligible marks locally-hosted domains that may be
	// recruited by the global-provider calibration, drawn per the
	// country's GlobalProviderShare.
	ProviderEligible bool
	// DanglingDomain is the expired registrable domain involved for
	// CondTypo/CondDangling/CondParked.
	DanglingDomain dnsname.Name
}

// Final returns the last assignment.
func (d *Domain) Final() Assignment {
	return d.Spans[len(d.Spans)-1].A
}

// AliveIn reports whether the domain existed during year y.
func (d *Domain) AliveIn(y int) bool {
	if y < d.Born {
		return false
	}
	return d.Died == 0 || y <= d.Died
}

// DelegatedAtScan reports whether the parent zone still delegates the
// domain at scan time: every living domain, plus stale delegations.
func (d *Domain) DelegatedAtScan() bool {
	return d.Died == 0 || d.Cond == CondStaleDelegation
}

// HijackEvent is one injected historical hijacking episode: ground truth
// for the § V-A forensics analysis.
type HijackEvent struct {
	// Domain is the victim.
	Domain dnsname.Name
	// AttackerDomain is the registered domain of the attacker's
	// nameservers.
	AttackerDomain dnsname.Name
	// From and To bound the takeover window.
	From, To pdns.Day
}

// World is the generated dataset before the active network is built.
type World struct {
	Cfg       Config
	Countries []Country
	Profiles  []Profile
	Domains   []*Domain
	PDNS      *pdns.Store
	// Hosters lists each country's local hosting companies.
	Hosters map[int][]localHoster
	// GhostNames are PDNS-visible names under stale delegations; their
	// parent zones never answer, reproducing the paper's
	// query-list-vs-responsive gap.
	GhostNames []dnsname.Name
	// SharedDangling are per-country expired hoster domains reused by
	// several dangling domains.
	SharedDangling map[int][]dnsname.Name
	// Hijacks is the ground truth for injected hijacking episodes.
	Hijacks []HijackEvent

	marketMu    sync.Mutex
	marketCache map[string][]int
}

// Generate builds the longitudinal world and its PDNS history.
func Generate(cfg Config) *World {
	cfg = cfg.withDefaults()
	countries := Countries()
	w := &World{
		Cfg:            cfg,
		Countries:      countries,
		Profiles:       make([]Profile, len(countries)),
		PDNS:           pdns.NewStore(),
		Hosters:        make(map[int][]localHoster, len(countries)),
		SharedDangling: make(map[int][]dnsname.Name, len(countries)),
	}
	for i, country := range countries {
		w.Profiles[i] = profileFor(country)
	}

	// Per-country population simulation.
	for i := range countries {
		rng := rand.New(rand.NewSource(cfg.Seed ^ int64(i)<<20 ^ 0x9e3779b9))
		w.Hosters[i] = localHostersFor(countries[i], rng)
		w.generateCountry(i, rng)
	}

	// Global provider-share calibration, year by year.
	w.calibrateProviders()

	// Scan-time conditions and dangling infrastructure.
	for i := range countries {
		rng := rand.New(rand.NewSource(cfg.Seed ^ int64(i)<<20 ^ 0x51f15e4d))
		w.assignConditions(i, rng)
	}

	// Realize shared infrastructure per diversity class, then emit the
	// PDNS history from the final histories.
	w.normalizeInfra()
	w.emitPDNS()
	return w
}

// yearIndex converts a calendar year to an index into Growth.
func (w *World) yearIndex(y int) int { return y - w.Cfg.StartYear }

// t01 maps a year into [0,1] across the study period.
func (w *World) t01(y int) float64 {
	span := w.Cfg.EndYear - w.Cfg.StartYear
	if span == 0 {
		return 1
	}
	return float64(y-w.Cfg.StartYear) / float64(span)
}

// generateCountry simulates one country's domain population year by
// year: deaths by churn, births to reach the growth target, and sticky
// hosting assignments.
func (w *World) generateCountry(idx int, rng *rand.Rand) {
	country := w.Countries[idx]
	profile := w.Profiles[idx]
	namer := newNamer(country, rng)

	// The country apex (d_gov itself) is a studied domain too: the
	// paper's <1% of second-level domains. It appears in PDNS from the
	// country's first year with any delegated domain, which makes the
	// number of countries with data grow across the decade (Fig. 2).
	firstYear := w.Cfg.EndYear
	for y := w.Cfg.StartYear; y <= w.Cfg.EndYear; y++ {
		if int(float64(country.Weight)*w.Cfg.Scale*profile.Growth[w.yearIndex(y)]) >= 1 {
			firstYear = y
			break
		}
	}
	apex := &Domain{
		Name:       country.Suffix,
		CountryIdx: idx,
		Level:      country.Suffix.Level(),
		Born:       firstYear,
		Cond:       CondHealthy,
		Div:        DivMulti24,
	}
	apex.Spans = []Span{{
		FromYear: firstYear,
		ToYear:   w.Cfg.EndYear,
		A: Assignment{
			Kind: HostCentral,
			NS:   centralNS(country),
		},
	}}
	w.Domains = append(w.Domains, apex)

	var alive []*Domain
	for y := w.Cfg.StartYear; y <= w.Cfg.EndYear; y++ {
		target := int(float64(country.Weight) * w.Cfg.Scale * profile.Growth[w.yearIndex(y)])
		// Deaths.
		var survivors []*Domain
		for _, d := range alive {
			death := profile.ChurnDeath
			if d.SingleNS {
				death = profile.SingleChurnDeath
			}
			if rng.Float64() < death {
				d.Died = y - 1
				d.Spans[len(d.Spans)-1].ToYear = y - 1
				continue
			}
			survivors = append(survivors, d)
		}
		alive = survivors
		// Births up to the target.
		for len(alive) < target {
			d := w.newDomain(idx, y, namer, rng)
			alive = append(alive, d)
			w.Domains = append(w.Domains, d)
		}
		// Extend every survivor's last span through this year.
		for _, d := range alive {
			if last := &d.Spans[len(d.Spans)-1]; last.ToYear < y {
				last.ToYear = y
			}
		}
	}
}

// centralNS returns the country's shared central nameserver pair.
func centralNS(country Country) []dnsname.Name {
	return []dnsname.Name{
		country.Suffix.MustPrepend("ns1"),
		country.Suffix.MustPrepend("ns2"),
	}
}

// newDomain creates a domain born in year y with its initial assignment.
func (w *World) newDomain(idx, y int, namer *namer, rng *rand.Rand) *Domain {
	country := w.Countries[idx]
	profile := w.Profiles[idx]
	name, level := namer.next(profile)

	d := &Domain{
		Name:       name,
		CountryIdx: idx,
		Level:      level,
		Born:       y,
		Cond:       CondHealthy,
	}
	d.SingleNS = rng.Float64() < profile.SingleNSHist
	a := w.drawAssignment(d, country, profile, rng)
	d.Spans = []Span{{FromYear: y, ToYear: y, A: a}}
	if !d.SingleNS {
		d.Div = drawDiversity(profile, rng)
		d.DrawnDiv = d.Div
		d.ProviderEligible = a.Kind == HostLocal && rng.Float64() < profile.GlobalProviderShare
	}
	return d
}

// drawAssignment picks a domain's initial hosting.
func (w *World) drawAssignment(d *Domain, country Country, profile Profile, rng *rand.Rand) Assignment {
	if d.SingleNS {
		if rng.Float64() < profile.SingleNSPrivate {
			return Assignment{Kind: HostPrivate, NS: []dnsname.Name{d.Name.MustPrepend("ns1")}}
		}
		h := w.Hosters[d.CountryIdx][rng.Intn(len(w.Hosters[d.CountryIdx]))]
		return Assignment{Kind: HostLocal, Provider: h.domain.String(), NS: h.ns[:1]}
	}
	if rng.Float64() < profile.PrivateMulti {
		if rng.Float64() < profile.CentralShare {
			return Assignment{Kind: HostCentral, NS: centralNS(country)}
		}
		n := 2
		if rng.Float64() < 0.25 {
			n = 3
		}
		ns := make([]dnsname.Name, 0, n)
		for i := 0; i < n; i++ {
			ns = append(ns, d.Name.MustPrepend(fmt.Sprintf("ns%d", i+1)))
		}
		return Assignment{Kind: HostPrivate, NS: ns}
	}
	// Third party: local hoster initially; the calibration pass promotes
	// domains into global providers to match each year's targets.
	h := w.Hosters[d.CountryIdx][rng.Intn(len(w.Hosters[d.CountryIdx]))]
	return Assignment{Kind: HostLocal, Provider: h.domain.String(), NS: h.ns}
}

// drawDiversity picks the Table I class from profile dials.
func drawDiversity(profile Profile, rng *rand.Rand) DiversityClass {
	if rng.Float64() >= profile.MultiIP {
		return DivSameIP
	}
	if rng.Float64() >= profile.Multi24GivenIP {
		return DivSame24
	}
	if rng.Float64() >= profile.MultiASNGiven24 {
		return DivMulti24
	}
	return DivMultiASN
}
