package worldgen

import (
	"context"
	"testing"
	"time"

	"govdns/internal/analysis"
	"govdns/internal/dnsname"
	"govdns/internal/measure"
	"govdns/internal/resolver"
	"govdns/internal/simnet"
)

// TestGeoFenceMultiVantage exercises the § V-A extension: a geo-fenced
// country's domains look dead from the default vantage but healthy from
// a domestic one.
func TestGeoFenceMultiVantage(t *testing.T) {
	w := Generate(Config{Seed: 17, Scale: 0.01})
	active := Build(w)

	const code = "ua"
	if err := active.GeoFence(code); err != nil {
		t.Fatalf("GeoFence: %v", err)
	}
	domestic, err := active.DomesticVantage(code)
	if err != nil {
		t.Fatalf("DomesticVantage: %v", err)
	}

	// Collect a handful of healthy in-country, privately-hosted domains
	// (third-party-hosted ones are not geo-fenced).
	idx := w.countryIndex(code)
	var targets []dnsname.Name
	for _, d := range w.DomainsOfCountry(idx) {
		if len(targets) >= 10 {
			break
		}
		if d.Died != 0 || d.Cond != CondHealthy || d.SingleNS {
			continue
		}
		if k := d.Final().Kind; k != HostPrivate && k != HostCentral {
			continue
		}
		if d.Name == w.Countries[idx].Suffix {
			continue
		}
		targets = append(targets, d.Name)
	}
	if len(targets) < 3 {
		t.Skipf("only %d suitable domains at this scale", len(targets))
	}

	scan := func(transport resolver.Transport) []*measure.DomainResult {
		client := resolver.NewClient(transport)
		client.Timeout = 10 * time.Millisecond
		client.Retries = 0
		s := measure.NewScanner(resolver.NewIterator(client, active.Roots))
		s.SecondRound = false
		return s.Scan(context.Background(), targets)
	}

	outside := scan(active.Net) // DefaultVantage
	inside := scan(active.Net.Vantage(domestic))

	diff := analysis.CompareVantages(outside, inside)
	if diff.OnlyB != len(targets) {
		t.Errorf("diff = %+v; want all %d domains visible only domestically", diff, len(targets))
	}
	for _, r := range outside {
		if r.Responsive() {
			t.Errorf("%s responsive from outside a geo-fence", r.Domain)
		}
	}
	for _, r := range inside {
		if !r.Responsive() {
			t.Errorf("%s not responsive from the domestic vantage", r.Domain)
		}
	}

	// Other countries are unaffected from the default vantage.
	var other dnsname.Name
	for _, d := range w.Domains {
		if d.Died == 0 && d.Cond == CondHealthy && !d.SingleNS &&
			w.Countries[d.CountryIdx].Code == "uk" && d.Name != w.Countries[d.CountryIdx].Suffix {
			other = d.Name
			break
		}
	}
	if other != "" {
		res := scanOne(t, active, other)
		if !res.Responsive() {
			t.Errorf("unfenced domain %s became unresponsive", other)
		}
	}
}

func scanOne(t *testing.T, active *Active, name dnsname.Name) *measure.DomainResult {
	t.Helper()
	client := resolver.NewClient(active.Net)
	client.Timeout = 10 * time.Millisecond
	s := measure.NewScanner(resolver.NewIterator(client, active.Roots))
	return s.ScanDomain(context.Background(), name)
}

func TestVantageSourceAndACL(t *testing.T) {
	w := Generate(Config{Seed: 17, Scale: 0.002})
	active := Build(w)
	v := active.Net.Vantage(simnet.DefaultVantage)
	if v.Source() != simnet.DefaultVantage {
		t.Errorf("Source = %v", v.Source())
	}
	if err := active.GeoFence("zz"); err == nil {
		t.Error("GeoFence accepted an unknown country")
	}
	if _, err := active.DomesticVantage("zz"); err == nil {
		t.Error("DomesticVantage accepted an unknown country")
	}
}
