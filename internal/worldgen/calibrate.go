package worldgen

import (
	"math/rand"
	"sort"

	"govdns/internal/dnsname"
)

// calibrateProviders walks the study years and migrates domains between
// local hosters and global catalog providers so that each provider's
// share of the population tracks its adoption curve. This is what turns
// the raw population into the Table II/III trajectories: Amazon and
// Cloudflare rise by orders of magnitude while everydns and
// ixwebhosting fade.
func (w *World) calibrateProviders() {
	rng := rand.New(rand.NewSource(w.Cfg.Seed ^ 0x70c0ffee))
	table := adoptionTable()
	cnIdx := w.countryIndex("cn")

	for y := w.Cfg.StartYear; y <= w.Cfg.EndYear; y++ {
		alive, aliveCN := w.aliveMultiNS(y)
		total := len(alive) + len(aliveCN) + 1 // avoid div-zero at tiny scales

		// Current holders per provider.
		holders := make(map[string][]*Domain)
		for _, d := range alive {
			if a := d.assignmentIn(y); a.Kind == HostGlobal {
				holders[a.Provider] = append(holders[a.Provider], d)
			}
		}
		for _, d := range aliveCN {
			if a := d.assignmentIn(y); a.Kind == HostGlobal {
				holders[a.Provider] = append(holders[a.Provider], d)
			}
		}

		// Flex pool: provider-eligible, locally-hosted domains.
		var flex, flexCN []*Domain
		for _, d := range alive {
			if d.ProviderEligible && d.assignmentIn(y).Kind == HostLocal {
				flex = append(flex, d)
			}
		}
		for _, d := range aliveCN {
			if d.ProviderEligible && d.assignmentIn(y).Kind == HostLocal {
				flexCN = append(flexCN, d)
			}
		}
		rng.Shuffle(len(flex), func(i, j int) { flex[i], flex[j] = flex[j], flex[i] })
		rng.Shuffle(len(flexCN), func(i, j int) { flexCN[i], flexCN[j] = flexCN[j], flexCN[i] })

		t := w.t01(y)
		for _, a := range table {
			pool := &flex
			if a.cnOnly {
				if cnIdx < 0 {
					continue
				}
				pool = &flexCN
			}
			markets := w.providerMarkets(a, t)
			// Shares (including the CN-only trio's) are expressed
			// against the global population, as in Table II.
			target := int(a.share(t) / 100 * float64(total))
			current := holders[a.key]
			switch {
			case len(current) < target:
				need := target - len(current)
				// Recruit only from the provider's markets: adoption is
				// country-clustered (Table III's country counts), not
				// uniform across the world.
				for i := len(*pool) - 1; i >= 0 && need > 0; i-- {
					d := (*pool)[i]
					if !a.cnOnly && !markets[d.CountryIdx] {
						continue
					}
					(*pool)[i] = (*pool)[len(*pool)-1]
					*pool = (*pool)[:len(*pool)-1]
					w.migrate(d, y, a, rng)
					need--
				}
			case len(current) > target:
				// Provider is shrinking: move surplus back to a local
				// hoster (customer left / provider shut down).
				surplus := len(current) - target
				rng.Shuffle(len(current), func(i, j int) { current[i], current[j] = current[j], current[i] })
				for i := 0; i < surplus; i++ {
					w.migrateToLocal(current[i], y, rng)
				}
			}
		}
	}
}

// providerMarkets returns the set of country indices where the provider
// operates at study progress t01, growing from markets2011 to
// markets2020. Country order is a deterministic provider-specific
// shuffle biased toward larger countries, so small market sets still
// contain enough eligible domains.
func (w *World) providerMarkets(a adoption, t01 float64) map[int]bool {
	n := int(float64(a.markets2011) + (float64(a.markets2020)-float64(a.markets2011))*t01 + 0.5)
	if n <= 0 {
		return map[int]bool{}
	}
	order := w.marketOrder(a.key)
	if n > len(order) {
		n = len(order)
	}
	out := make(map[int]bool, n)
	for _, idx := range order[:n] {
		out[idx] = true
	}
	return out
}

// marketOrder ranks countries for a provider: a deterministic hash
// shuffle scaled down by country size, so big markets come first without
// every provider sharing the same list.
func (w *World) marketOrder(key string) []int {
	w.marketMu.Lock()
	defer w.marketMu.Unlock()
	if w.marketCache == nil {
		w.marketCache = make(map[string][]int)
	}
	if order, ok := w.marketCache[key]; ok {
		return order
	}
	type ranked struct {
		idx   int
		score float64
	}
	rs := make([]ranked, len(w.Countries))
	for i, c := range w.Countries {
		h := float64(nameHash(dnsname.Name(key+"|"+c.Code))%100000) / 100000
		rs[i] = ranked{idx: i, score: h / float64(c.Weight)}
	}
	sort.Slice(rs, func(i, j int) bool { return rs[i].score < rs[j].score })
	order := make([]int, len(rs))
	for i, r := range rs {
		order[i] = r.idx
	}
	w.marketCache[key] = order
	return order
}

// aliveMultiNS partitions the alive multi-NS domains into non-Chinese
// and Chinese sets (the DNSPod/hichina/xincache trio only serves CN).
func (w *World) aliveMultiNS(y int) (rest, cn []*Domain) {
	cnIdx := w.countryIndex("cn")
	for _, d := range w.Domains {
		if !d.AliveIn(y) || d.SingleNS || d.Level <= d.suffixLevel(w) {
			continue
		}
		if d.CountryIdx == cnIdx {
			cn = append(cn, d)
		} else {
			rest = append(rest, d)
		}
	}
	return rest, cn
}

// suffixLevel returns the level of the domain's country suffix, so the
// apex domains are skipped during provider calibration.
func (d *Domain) suffixLevel(w *World) int {
	return w.Countries[d.CountryIdx].Suffix.Level()
}

// assignmentIn returns the domain's assignment during year y.
func (d *Domain) assignmentIn(y int) Assignment {
	for i := range d.Spans {
		if d.Spans[i].FromYear <= y && y <= d.Spans[i].ToYear {
			return d.Spans[i].A
		}
	}
	return d.Spans[len(d.Spans)-1].A
}

// migrate switches a domain to provider a starting in year y.
func (w *World) migrate(d *Domain, y int, a adoption, rng *rand.Rand) {
	ns := a.nsSetFor(rng.Intn(1 << 20))
	assignment := Assignment{Kind: HostGlobal, Provider: a.key, NS: ns}
	profile := w.Profiles[d.CountryIdx]
	if rng.Float64() < profile.MixedHosting {
		assignment.Mixed = true
		assignment.NS = append(append([]dnsname.Name(nil), ns...), d.Name.MustPrepend("ns1"))
	}
	d.pushSpan(y, assignment)
	// Provider-hosted diversity: one AS, several prefixes — unless the
	// domain keeps a private NS (mixed), which spans ASes.
	if assignment.Mixed {
		d.Div = DivMultiASN
	} else {
		d.Div = DivMulti24
	}
}

// migrateToLocal moves a domain back to a country-local hoster in year
// y, restoring its originally drawn diversity class.
func (w *World) migrateToLocal(d *Domain, y int, rng *rand.Rand) {
	hosters := w.Hosters[d.CountryIdx]
	h := hosters[rng.Intn(len(hosters))]
	d.pushSpan(y, Assignment{Kind: HostLocal, Provider: h.domain.String(), NS: h.ns})
	if d.DrawnDiv != 0 {
		d.Div = d.DrawnDiv
	}
}

// pushSpan terminates the current span at y-1 and starts a new one at y.
// A same-year replacement overwrites the current span's assignment.
func (d *Domain) pushSpan(y int, a Assignment) {
	last := &d.Spans[len(d.Spans)-1]
	if last.FromYear >= y {
		last.A = a
		return
	}
	endYear := last.ToYear
	last.ToYear = y - 1
	if endYear < y {
		endYear = y
	}
	d.Spans = append(d.Spans, Span{FromYear: y, ToYear: endYear, A: a})
}

// countryIndex finds a country by code.
func (w *World) countryIndex(code string) int {
	for i, c := range w.Countries {
		if c.Code == code {
			return i
		}
	}
	return -1
}

// DomainsOfCountry returns the histories for one country, sorted by
// name for determinism.
func (w *World) DomainsOfCountry(idx int) []*Domain {
	var out []*Domain
	for _, d := range w.Domains {
		if d.CountryIdx == idx {
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
