package worldgen

import (
	"net/netip"
	"sort"

	"govdns/internal/dnsname"
	"govdns/internal/dnswire"
	"govdns/internal/zone"
)

// buildCountry materializes one country's government DNS: the central
// nameserver farm, the d_gov parent zone with every delegation (healthy
// and broken alike), and a child zone per living domain.
func (a *Active) buildCountry(idx int) {
	country := a.World.Countries[idx]
	govASN := uint32(asCountry + 2*idx)
	telecomASN := govASN + 1
	suffix := country.Suffix

	a.buildPairFarm(suffix, govASN, telecomASN, false)

	// The parent zone. When the suffix is itself a TLD (the US "gov"),
	// the TLD zone built earlier doubles as the parent zone.
	parent, isTLD := a.tldZones[suffix]
	primary := suffix.MustPrepend("ns1")
	if !isTLD {
		parent = newZone(suffix, primary)
		parent.MustAdd(nsRR(suffix, primary))
		parent.MustAdd(nsRR(suffix, suffix.MustPrepend("ns2")))
	}
	for _, host := range a.pairFarmHosts(suffix) {
		for _, addr := range a.addrs[host] {
			parent.MustAdd(aRR(host, addr))
		}
	}

	a.parents[suffix] = parent

	for _, d := range a.World.DomainsOfCountry(idx) {
		if d.Name == suffix || !d.DelegatedAtScan() {
			continue
		}
		a.buildDomain(d, parent, govASN, telecomASN)
	}

	if !isTLD {
		a.serveZone(parent, primary, suffix.MustPrepend("ns2"))
		a.delegateInTLD(suffix, []dnsname.Name{primary, suffix.MustPrepend("ns2")})
	}
}

// buildDomain realizes one domain's delegation, servers, and (when
// alive) child zone according to its scan-time condition.
func (a *Active) buildDomain(d *Domain, parent *zone.Zone, govASN, telecomASN uint32) {
	p, c, serveOld := a.nsSetsFor(d)
	a.realizePrivateHosts(d, union(p, c), govASN, telecomASN)

	// Parent-side delegation with glue for in-bailiwick hosts.
	for _, host := range p {
		parent.MustAdd(nsRR(d.Name, host))
		if host.IsSubdomainOf(parent.Origin()) && !isPairFarmHost(host, parent.Origin()) {
			for _, addr := range a.addrs[host] {
				parent.MustAdd(aRR(host, addr))
			}
		}
	}

	if d.Cond == CondParked && d.DanglingDomain != "" {
		a.delegateInTLD(d.DanglingDomain,
			[]dnsname.Name{dnsname.MustParse(parkingHost), dnsname.MustParse(parkingHost2)})
	}

	if d.Cond == CondStaleDelegation {
		// Dead domain: private NS addresses exist (glue) but nothing
		// answers there.
		for _, host := range p {
			if host.IsSubdomainOf(d.Name) {
				for _, addr := range a.addrs[host] {
					a.Net.Blackhole(addr)
				}
			}
		}
		return
	}

	// Child zone.
	child := newZone(d.Name, c[0])
	for _, host := range c {
		child.MustAdd(nsRR(d.Name, host))
		if host.IsSubdomainOf(d.Name) {
			for _, addr := range a.addrs[host] {
				child.MustAdd(aRR(host, addr))
			}
		}
	}
	www, err := d.Name.Prepend("www")
	if err == nil {
		if addr, allocErr := a.Topo.AllocIP(govASN); allocErr == nil {
			child.MustAdd(aRR(www, addr))
		}
	}

	// Children whose operators know the parent is out of date publish a
	// CSYNC record (RFC 7477) so remediation tooling can synchronize
	// the delegation; about two thirds allow immediate processing.
	switch d.Cond {
	case CondInconsistentExtraChild, CondInconsistentExtraParent, CondInconsistentDisjoint, CondPartialLameOwn:
		flags := uint16(0)
		if nameHash(d.Name)%3 != 0 {
			flags = dnswire.CSYNCImmediate
		}
		child.MustAdd(dnswire.RR{Name: d.Name, Class: dnswire.ClassIN, TTL: 3600,
			Data: dnswire.CSYNCData{
				Serial: 2021041500,
				Flags:  flags,
				Types:  []dnswire.Type{dnswire.TypeNS, dnswire.TypeA},
			}})
	}

	serving := append([]dnsname.Name(nil), c...)
	if serveOld {
		serving = union(serving, p)
	}
	for _, host := range serving {
		if len(a.addrs[host]) == 0 {
			continue // dangling/typo hosts have no address
		}
		a.serveZone(child, host)
	}

	// Partial lameness on dedicated infrastructure: the extra host's
	// address goes dark.
	if d.Cond == CondPartialLameOwn {
		extra := d.Name.MustPrepend("ns-old")
		for _, addr := range a.addrs[extra] {
			a.Net.Blackhole(addr)
		}
	}
}

// nsSetsFor derives the parent-side (P) and child-side (C) NS sets from
// the domain's condition. serveOld reports whether the P-side servers
// must also serve the child zone (disjoint inconsistency, where the old
// provider still answers).
func (a *Active) nsSetsFor(d *Domain) (p, c []dnsname.Name, serveOld bool) {
	final := append([]dnsname.Name(nil), d.Final().NS...)
	switch d.Cond {
	case CondStaleDelegation, CondDangling:
		p, c = final, final
		if d.DanglingDomain != "" {
			// The nameservers live under an expired domain.
			p = danglingHosts(d.DanglingDomain, len(final))
			c = p
		}
	case CondPartialLameOwn:
		// The child operator already dropped the dead server; the
		// parent still lists it (P ⊃ C, and a partial defect) — the
		// co-occurrence behind the paper's 40.9% figure.
		extra := d.Name.MustPrepend("ns-old")
		if d.DanglingDomain != "" {
			extra = d.DanglingDomain.MustPrepend("ns1")
		}
		p = append(append([]dnsname.Name(nil), final...), extra)
		c = final
	case CondTypo:
		p = append(append([]dnsname.Name(nil), final...), d.DanglingDomain)
		c = final
	case CondInconsistentExtraParent:
		p = append(append([]dnsname.Name(nil), final...), d.Name.MustPrepend("ns-legacy"))
		c = final
		serveOld = true // the forgotten extra server still answers
	case CondInconsistentExtraChild:
		p = final
		c = append(append([]dnsname.Name(nil), final...), d.Name.MustPrepend("ns-new"))
	case CondInconsistentDisjoint:
		old := a.previousNS(d)
		p, c = old, final
		serveOld = true
	case CondParked:
		p = danglingHosts(d.DanglingDomain, 2)
		c = final
	default: // healthy, partial-shared (broken pair already in final)
		p, c = final, final
	}
	return p, c, serveOld
}

// previousNS returns the NS set the parent still remembers for a
// migrated domain: the penultimate span's set when it differs, or a
// fabricated legacy pair.
func (a *Active) previousNS(d *Domain) []dnsname.Name {
	if len(d.Spans) >= 2 {
		old := d.Spans[len(d.Spans)-2].A.NS
		if !sameNames(old, d.Final().NS) {
			return append([]dnsname.Name(nil), old...)
		}
	}
	return []dnsname.Name{d.Name.MustPrepend("ns-olda"), d.Name.MustPrepend("ns-oldb")}
}

// danglingHosts fabricates hostnames under an expired domain.
func danglingHosts(domain dnsname.Name, n int) []dnsname.Name {
	if n < 1 {
		n = 1
	}
	if n > 2 {
		n = 2
	}
	hosts := []dnsname.Name{domain.MustPrepend("ns1")}
	if n == 2 {
		hosts = append(hosts, domain.MustPrepend("ns2"))
	}
	return hosts
}

// realizePrivateHosts allocates addresses for the domain's dedicated
// hostnames, honouring the diversity class.
func (a *Active) realizePrivateHosts(d *Domain, hosts []dnsname.Name, govASN, telecomASN uint32) {
	var own []dnsname.Name
	for _, host := range hosts {
		if host.IsSubdomainOf(d.Name) {
			own = append(own, host)
		}
	}
	if len(own) == 0 {
		return
	}
	sort.Slice(own, func(i, j int) bool { return own[i] < own[j] })

	switch d.Div {
	case DivSameIP:
		// Everything shares one address. Live extra names (ns-legacy,
		// ns-new) alias the shared address; a dead extra (ns-old) stays
		// unresolvable — a single address cannot be half dead, and
		// aliasing it would blackhole the shared server for everyone.
		var live []dnsname.Name
		for _, host := range own {
			if labels := host.Labels(); len(labels) > 0 && labels[0] == "ns-old" {
				continue
			}
			live = append(live, host)
		}
		if len(live) == 0 {
			return
		}
		var shared []netip.Addr
		for _, host := range hosts {
			if !host.IsSubdomainOf(d.Name) && len(a.addrs[host]) > 0 {
				shared = a.addrs[host]
				break
			}
		}
		if len(shared) == 0 {
			shared = a.ensureAddr(live[0], govASN, true)
		}
		for _, host := range live {
			a.aliasAddr(host, shared[0])
		}
	case DivSame24:
		a.ensureAddr(own[0], govASN, true)
		for _, host := range own[1:] {
			a.ensureAddr(host, govASN, false)
		}
	case DivMultiASN:
		a.ensureAddr(own[0], govASN, true)
		for i, host := range own[1:] {
			asn := telecomASN
			if i > 0 {
				asn = govASN
			}
			a.ensureAddr(host, asn, true)
		}
	default: // DivMulti24 and single-NS domains
		for _, host := range own {
			a.ensureAddr(host, govASN, true)
		}
	}
}

// isPairFarmHost reports whether host is one of the shared pair-farm
// names directly under origin (their glue is added once per country).
func isPairFarmHost(host, origin dnsname.Name) bool {
	if host.Parent() != origin {
		return false
	}
	labels := host.Labels()
	l := labels[0]
	return len(l) >= 3 && l[:2] == "ns" && (l[2] >= '1' && l[2] <= '8' || l[2] == 'b')
}

// union merges name slices preserving order, dropping duplicates.
func union(a, b []dnsname.Name) []dnsname.Name {
	seen := make(map[dnsname.Name]bool, len(a)+len(b))
	var out []dnsname.Name
	for _, s := range [][]dnsname.Name{a, b} {
		for _, n := range s {
			if !seen[n] {
				seen[n] = true
				out = append(out, n)
			}
		}
	}
	return out
}

func sameNames(a, b []dnsname.Name) bool {
	if len(a) != len(b) {
		return false
	}
	set := make(map[dnsname.Name]bool, len(a))
	for _, n := range a {
		set[n] = true
	}
	for _, n := range b {
		if !set[n] {
			return false
		}
	}
	return true
}

// buildRegistrarState marks every living infrastructure domain as
// registered; dangling, typo and parked domains stay available.
func (a *Active) buildRegistrarState() {
	for _, d := range a.World.Domains {
		for _, span := range d.Spans {
			if span.A.Kind == HostGlobal {
				for _, host := range span.A.NS {
					a.Reg.MarkRegistered(nsDomainOf(host))
				}
			}
		}
	}
	for _, hosters := range a.World.Hosters {
		for _, h := range hosters {
			a.Reg.MarkRegistered(h.domain)
		}
	}
	a.Reg.MarkRegistered(dnsname.MustParse("parking-lot-services.com"))
	a.Reg.MarkRegistered(dnsname.MustParse("root-servers.net"))
	a.Reg.MarkRegistered(dnsname.MustParse("ddos-shield.net"))
}

// buildQueryList assembles the scanner's input by draining a
// QueryStream — the single source of truth for scan order, shared with
// the streaming scan path, so slice and stream scans see identical
// input by construction.
func (a *Active) buildQueryList() {
	qs := NewQueryStream(a.World)
	a.QueryList = make([]dnsname.Name, 0, qs.Len())
	for n, ok := qs.Next(); ok; n, ok = qs.Next() {
		a.QueryList = append(a.QueryList, n)
	}
}
