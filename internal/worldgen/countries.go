package worldgen

import "govdns/internal/dnsname"

// Country describes one UN member state in the synthetic world.
type Country struct {
	// Code is the ISO 3166-1 alpha-2 code, lowercase. It doubles as the
	// ccTLD label.
	Code string
	// Name is the short English name.
	Name string
	// SubRegion is the UN M49 sub-region, used to group countries in
	// Tables II and III exactly as the paper does.
	SubRegion string
	// Suffix is the government suffix seeded from the national portal
	// (the paper's d_gov), e.g. "gov.cn".
	Suffix dnsname.Name
	// Weight is the country's domain count in the 2020 PDNS snapshot at
	// scale 1.0. Top-10 weights follow the paper; the rest are tiered.
	Weight int
	// ProfileName selects the deployment profile preset ("" = tier
	// default chosen by weight).
	ProfileName string
}

// Tier weights (PDNS-2020 domain counts at scale 1.0).
const (
	weightLarge = 1400
	weightMid   = 600
	weightSmall = 280
	weightTiny  = 120
	weightMicro = 30
)

// c builds a country entry with a conventional gov.<cc> suffix.
func c(code, name, subRegion string, weight int, profile string) Country {
	return Country{
		Code: code, Name: name, SubRegion: subRegion,
		Suffix: dnsname.MustParse("gov." + code), Weight: weight, ProfileName: profile,
	}
}

// cs builds a country entry with an explicit government suffix.
func cs(code, name, subRegion, suffix string, weight int, profile string) Country {
	return Country{
		Code: code, Name: name, SubRegion: subRegion,
		Suffix: dnsname.MustParse(suffix), Weight: weight, ProfileName: profile,
	}
}

// UN M49 sub-region names.
const (
	srNorthernAfrica   = "Northern Africa"
	srEasternAfrica    = "Eastern Africa"
	srMiddleAfrica     = "Middle Africa"
	srSouthernAfrica   = "Southern Africa"
	srWesternAfrica    = "Western Africa"
	srCaribbean        = "Caribbean"
	srCentralAmerica   = "Central America"
	srSouthAmerica     = "South America"
	srNorthernAmerica  = "Northern America"
	srCentralAsia      = "Central Asia"
	srEasternAsia      = "Eastern Asia"
	srSouthEasternAsia = "South-eastern Asia"
	srSouthernAsia     = "Southern Asia"
	srWesternAsia      = "Western Asia"
	srEasternEurope    = "Eastern Europe"
	srNorthernEurope   = "Northern Europe"
	srSouthernEurope   = "Southern Europe"
	srWesternEurope    = "Western Europe"
	srAustraliaNZ      = "Australia and New Zealand"
	srMelanesia        = "Melanesia"
	srMicronesia       = "Micronesia"
	srPolynesia        = "Polynesia"
)

// Countries returns the 193 UN member states. The ten countries with the
// most PDNS records carry the paper's observed magnitudes and dedicated
// profiles; the others use tier weights and profile defaults.
func Countries() []Country {
	return []Country{
		// --- Top 10 by PDNS records (paper Table I order) ---
		c("cn", "China", srEasternAsia, 27000, "china"),
		cs("th", "Thailand", srSouthEasternAsia, "go.th", 18000, "thailand"),
		c("br", "Brazil", srSouthAmerica, 15000, "brazil"),
		cs("mx", "Mexico", srCentralAmerica, "gob.mx", 11000, "mexico"),
		c("uk", "United Kingdom", srNorthernEurope, 9500, "uk"),
		cs("tr", "Turkey", srWesternAsia, "gov.tr", 9000, "turkey"),
		c("in", "India", srSouthernAsia, 9000, "india"),
		c("au", "Australia", srAustraliaNZ, 7500, "australia"),
		c("ua", "Ukraine", srEasternEurope, 7000, "ukraine"),
		cs("ar", "Argentina", srSouthAmerica, "gob.ar", 5600, "argentina"),

		// --- Northern Africa ---
		c("dz", "Algeria", srNorthernAfrica, weightSmall, ""),
		c("eg", "Egypt", srNorthernAfrica, weightMid, ""),
		c("ly", "Libya", srNorthernAfrica, weightTiny, ""),
		c("ma", "Morocco", srNorthernAfrica, weightMid, ""),
		c("sd", "Sudan", srNorthernAfrica, weightTiny, ""),
		c("tn", "Tunisia", srNorthernAfrica, weightSmall, ""),

		// --- Eastern Africa ---
		c("bi", "Burundi", srEasternAfrica, weightMicro, ""),
		c("km", "Comoros", srEasternAfrica, weightMicro, ""),
		c("dj", "Djibouti", srEasternAfrica, weightMicro, ""),
		c("er", "Eritrea", srEasternAfrica, weightMicro, ""),
		c("et", "Ethiopia", srEasternAfrica, weightTiny, ""),
		c("ke", "Kenya", srEasternAfrica, weightMid, ""),
		c("mg", "Madagascar", srEasternAfrica, weightTiny, ""),
		c("mw", "Malawi", srEasternAfrica, weightTiny, ""),
		c("mu", "Mauritius", srEasternAfrica, weightSmall, ""),
		c("mz", "Mozambique", srEasternAfrica, weightTiny, ""),
		c("rw", "Rwanda", srEasternAfrica, weightSmall, ""),
		c("sc", "Seychelles", srEasternAfrica, weightMicro, ""),
		c("so", "Somalia", srEasternAfrica, weightMicro, ""),
		c("ss", "South Sudan", srEasternAfrica, weightMicro, ""),
		c("tz", "Tanzania", srEasternAfrica, weightSmall, ""),
		c("ug", "Uganda", srEasternAfrica, weightSmall, ""),
		c("zm", "Zambia", srEasternAfrica, weightTiny, ""),
		c("zw", "Zimbabwe", srEasternAfrica, weightTiny, ""),

		// --- Middle Africa ---
		c("ao", "Angola", srMiddleAfrica, weightTiny, ""),
		c("cm", "Cameroon", srMiddleAfrica, weightTiny, ""),
		c("cf", "Central African Republic", srMiddleAfrica, weightMicro, ""),
		c("td", "Chad", srMiddleAfrica, weightMicro, ""),
		c("cg", "Congo", srMiddleAfrica, weightMicro, ""),
		c("cd", "DR Congo", srMiddleAfrica, weightMicro, ""),
		c("gq", "Equatorial Guinea", srMiddleAfrica, weightMicro, ""),
		c("ga", "Gabon", srMiddleAfrica, weightMicro, ""),
		c("st", "Sao Tome and Principe", srMiddleAfrica, weightMicro, ""),

		// --- Southern Africa ---
		c("bw", "Botswana", srSouthernAfrica, weightTiny, ""),
		c("sz", "Eswatini", srSouthernAfrica, weightMicro, ""),
		c("ls", "Lesotho", srSouthernAfrica, weightMicro, ""),
		c("na", "Namibia", srSouthernAfrica, weightTiny, ""),
		cs("za", "South Africa", srSouthernAfrica, "gov.za", weightLarge, ""),

		// --- Western Africa ---
		c("bj", "Benin", srWesternAfrica, weightMicro, ""),
		c("bf", "Burkina Faso", srWesternAfrica, weightMicro, "sparse"),
		c("cv", "Cabo Verde", srWesternAfrica, weightMicro, ""),
		c("ci", "Cote d'Ivoire", srWesternAfrica, weightTiny, ""),
		c("gm", "Gambia", srWesternAfrica, weightMicro, ""),
		c("gh", "Ghana", srWesternAfrica, weightSmall, ""),
		c("gn", "Guinea", srWesternAfrica, weightMicro, ""),
		c("gw", "Guinea-Bissau", srWesternAfrica, weightMicro, ""),
		c("lr", "Liberia", srWesternAfrica, weightMicro, ""),
		c("ml", "Mali", srWesternAfrica, weightMicro, ""),
		c("mr", "Mauritania", srWesternAfrica, weightMicro, ""),
		c("ne", "Niger", srWesternAfrica, weightMicro, ""),
		c("ng", "Nigeria", srWesternAfrica, weightMid, ""),
		cs("sn", "Senegal", srWesternAfrica, "gouv.sn", weightTiny, ""),
		c("sl", "Sierra Leone", srWesternAfrica, weightMicro, ""),
		c("tg", "Togo", srWesternAfrica, weightMicro, ""),

		// --- Caribbean ---
		c("ag", "Antigua and Barbuda", srCaribbean, weightMicro, ""),
		c("bs", "Bahamas", srCaribbean, weightTiny, ""),
		c("bb", "Barbados", srCaribbean, weightTiny, ""),
		c("cu", "Cuba", srCaribbean, weightSmall, ""),
		c("dm", "Dominica", srCaribbean, weightMicro, ""),
		cs("do", "Dominican Republic", srCaribbean, "gob.do", weightSmall, ""),
		c("gd", "Grenada", srCaribbean, weightMicro, ""),
		c("ht", "Haiti", srCaribbean, weightMicro, ""),
		cs("jm", "Jamaica", srCaribbean, "jis.gov.jm", weightTiny, ""),
		c("kn", "Saint Kitts and Nevis", srCaribbean, weightMicro, ""),
		c("lc", "Saint Lucia", srCaribbean, weightMicro, ""),
		c("vc", "Saint Vincent and the Grenadines", srCaribbean, weightMicro, ""),
		c("tt", "Trinidad and Tobago", srCaribbean, weightTiny, ""),

		// --- Central America ---
		c("bz", "Belize", srCentralAmerica, weightMicro, ""),
		c("cr", "Costa Rica", srCentralAmerica, weightSmall, ""),
		cs("sv", "El Salvador", srCentralAmerica, "gob.sv", weightSmall, ""),
		cs("gt", "Guatemala", srCentralAmerica, "gob.gt", weightSmall, ""),
		c("hn", "Honduras", srCentralAmerica, weightTiny, ""),
		c("ni", "Nicaragua", srCentralAmerica, weightTiny, ""),
		cs("pa", "Panama", srCentralAmerica, "gob.pa", weightSmall, ""),

		// --- South America ---
		cs("bo", "Bolivia", srSouthAmerica, "gob.bo", weightMicro, "sparse"),
		cs("cl", "Chile", srSouthAmerica, "gob.cl", weightLarge, ""),
		c("co", "Colombia", srSouthAmerica, weightLarge, ""),
		cs("ec", "Ecuador", srSouthAmerica, "gob.ec", weightMid, ""),
		c("gy", "Guyana", srSouthAmerica, weightMicro, ""),
		c("py", "Paraguay", srSouthAmerica, weightSmall, ""),
		cs("pe", "Peru", srSouthAmerica, "gob.pe", weightLarge, ""),
		c("sr", "Suriname", srSouthAmerica, weightMicro, ""),
		c("uy", "Uruguay", srSouthAmerica, weightSmall, ""),
		cs("ve", "Venezuela", srSouthAmerica, "gob.ve", weightMid, ""),

		// --- Northern America ---
		cs("ca", "Canada", srNorthernAmerica, "gc.ca", weightMid, ""),
		cs("us", "United States", srNorthernAmerica, "gov", weightMid, ""),

		// --- Central Asia ---
		c("kz", "Kazakhstan", srCentralAsia, weightMid, ""),
		c("kg", "Kyrgyzstan", srCentralAsia, weightSmall, "stale-heavy"),
		c("tj", "Tajikistan", srCentralAsia, weightTiny, ""),
		c("tm", "Turkmenistan", srCentralAsia, weightMicro, ""),
		c("uz", "Uzbekistan", srCentralAsia, weightSmall, ""),

		// --- Eastern Asia ---
		c("jp", "Japan", srEasternAsia, weightLarge, ""),
		c("kp", "North Korea", srEasternAsia, weightMicro, ""),
		cs("kr", "South Korea", srEasternAsia, "go.kr", weightLarge, ""),
		c("mn", "Mongolia", srEasternAsia, weightTiny, ""),

		// --- South-eastern Asia ---
		c("bn", "Brunei", srSouthEasternAsia, weightTiny, ""),
		c("kh", "Cambodia", srSouthEasternAsia, weightTiny, ""),
		cs("id", "Indonesia", srSouthEasternAsia, "go.id", weightLarge, "stale-heavy"),
		c("la", "Laos", srSouthEasternAsia, weightMicro, ""),
		c("my", "Malaysia", srSouthEasternAsia, weightLarge, ""),
		c("mm", "Myanmar", srSouthEasternAsia, weightSmall, ""),
		cs("ph", "Philippines", srSouthEasternAsia, "gov.ph", weightLarge, ""),
		c("sg", "Singapore", srSouthEasternAsia, weightSmall, ""),
		c("tl", "Timor-Leste", srSouthEasternAsia, weightMicro, ""),
		c("vn", "Vietnam", srSouthEasternAsia, weightLarge, ""),

		// --- Southern Asia ---
		c("af", "Afghanistan", srSouthernAsia, weightTiny, ""),
		c("bd", "Bangladesh", srSouthernAsia, weightMid, ""),
		c("bt", "Bhutan", srSouthernAsia, weightMicro, ""),
		c("ir", "Iran", srSouthernAsia, weightMid, ""),
		c("mv", "Maldives", srSouthernAsia, weightMicro, ""),
		c("np", "Nepal", srSouthernAsia, weightSmall, ""),
		c("pk", "Pakistan", srSouthernAsia, weightMid, ""),
		c("lk", "Sri Lanka", srSouthernAsia, weightSmall, ""),

		// --- Western Asia ---
		c("am", "Armenia", srWesternAsia, weightTiny, ""),
		c("az", "Azerbaijan", srWesternAsia, weightSmall, ""),
		c("bh", "Bahrain", srWesternAsia, weightTiny, ""),
		c("cy", "Cyprus", srWesternAsia, weightTiny, ""),
		c("ge", "Georgia", srWesternAsia, weightSmall, ""),
		c("iq", "Iraq", srWesternAsia, weightTiny, ""),
		c("il", "Israel", srWesternAsia, weightSmall, ""),
		c("jo", "Jordan", srWesternAsia, weightSmall, ""),
		c("kw", "Kuwait", srWesternAsia, weightTiny, ""),
		c("lb", "Lebanon", srWesternAsia, weightTiny, ""),
		c("om", "Oman", srWesternAsia, weightTiny, ""),
		c("qa", "Qatar", srWesternAsia, weightTiny, ""),
		c("sa", "Saudi Arabia", srWesternAsia, weightMid, ""),
		c("sy", "Syria", srWesternAsia, weightTiny, ""),
		c("ae", "United Arab Emirates", srWesternAsia, weightMicro, "sparse"),
		c("ye", "Yemen", srWesternAsia, weightMicro, ""),

		// --- Eastern Europe ---
		c("by", "Belarus", srEasternEurope, weightSmall, ""),
		cs("bg", "Bulgaria", srEasternEurope, "government.bg", weightMicro, "sparse"),
		c("cz", "Czechia", srEasternEurope, weightSmall, ""),
		c("hu", "Hungary", srEasternEurope, weightSmall, ""),
		c("md", "Moldova", srEasternEurope, weightSmall, ""),
		c("pl", "Poland", srEasternEurope, weightLarge, ""),
		c("ro", "Romania", srEasternEurope, weightMid, ""),
		c("ru", "Russia", srEasternEurope, weightLarge, ""),
		c("sk", "Slovakia", srEasternEurope, weightSmall, ""),

		// --- Northern Europe ---
		c("dk", "Denmark", srNorthernEurope, weightSmall, ""),
		c("ee", "Estonia", srNorthernEurope, weightSmall, ""),
		c("fi", "Finland", srNorthernEurope, weightSmall, ""),
		c("is", "Iceland", srNorthernEurope, weightTiny, ""),
		c("ie", "Ireland", srNorthernEurope, weightSmall, ""),
		c("lv", "Latvia", srNorthernEurope, weightSmall, ""),
		c("lt", "Lithuania", srNorthernEurope, weightSmall, ""),
		cs("no", "Norway", srNorthernEurope, "regjeringen.no", weightTiny, ""),
		c("se", "Sweden", srNorthernEurope, weightSmall, ""),

		// --- Southern Europe ---
		c("al", "Albania", srSouthernEurope, weightTiny, ""),
		c("ad", "Andorra", srSouthernEurope, weightMicro, ""),
		c("ba", "Bosnia and Herzegovina", srSouthernEurope, weightTiny, ""),
		c("hr", "Croatia", srSouthernEurope, weightSmall, ""),
		c("gr", "Greece", srSouthernEurope, weightMid, ""),
		c("it", "Italy", srSouthernEurope, weightLarge, ""),
		c("mt", "Malta", srSouthernEurope, weightTiny, ""),
		c("me", "Montenegro", srSouthernEurope, weightTiny, ""),
		c("mk", "North Macedonia", srSouthernEurope, weightTiny, ""),
		c("pt", "Portugal", srSouthernEurope, weightMid, ""),
		c("sm", "San Marino", srSouthernEurope, weightMicro, ""),
		c("rs", "Serbia", srSouthernEurope, weightSmall, ""),
		c("si", "Slovenia", srSouthernEurope, weightSmall, ""),
		cs("es", "Spain", srSouthernEurope, "gob.es", weightLarge, ""),

		// --- Western Europe ---
		c("at", "Austria", srWesternEurope, weightSmall, ""),
		c("be", "Belgium", srWesternEurope, weightSmall, ""),
		cs("fr", "France", srWesternEurope, "gouv.fr", weightLarge, ""),
		c("de", "Germany", srWesternEurope, weightMid, ""),
		c("li", "Liechtenstein", srWesternEurope, weightMicro, ""),
		c("lu", "Luxembourg", srWesternEurope, weightTiny, ""),
		c("mc", "Monaco", srWesternEurope, weightMicro, ""),
		c("nl", "Netherlands", srWesternEurope, weightMid, ""),
		c("ch", "Switzerland", srWesternEurope, weightMid, ""),

		// --- Australia and New Zealand ---
		c("nz", "New Zealand", srAustraliaNZ, weightMid, ""),

		// --- Melanesia ---
		c("fj", "Fiji", srMelanesia, weightTiny, ""),
		c("pg", "Papua New Guinea", srMelanesia, weightMicro, ""),
		c("sb", "Solomon Islands", srMelanesia, weightMicro, ""),
		c("vu", "Vanuatu", srMelanesia, weightMicro, ""),

		// --- Micronesia ---
		c("fm", "Micronesia", srMicronesia, weightMicro, ""),
		c("ki", "Kiribati", srMicronesia, weightMicro, ""),
		c("mh", "Marshall Islands", srMicronesia, weightMicro, ""),
		c("nr", "Nauru", srMicronesia, weightMicro, ""),
		c("pw", "Palau", srMicronesia, weightMicro, ""),

		// --- Polynesia ---
		c("ws", "Samoa", srPolynesia, weightMicro, ""),
		c("to", "Tonga", srPolynesia, weightMicro, ""),
		c("tv", "Tuvalu", srPolynesia, weightMicro, ""),
	}
}

// SuffixSet returns the government suffixes of all countries, the set the
// paper verified against ccTLD registration policies.
func SuffixSet(countries []Country) *dnsname.SuffixSet {
	s := dnsname.NewSuffixSet()
	for _, country := range countries {
		s.Add(country.Suffix)
	}
	return s
}

// TopByWeight returns the n countries with the largest Weight, in
// descending order. The paper treats the top 10 as their own sub-regions.
func TopByWeight(countries []Country, n int) []Country {
	sorted := append([]Country(nil), countries...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j].Weight > sorted[j-1].Weight; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	if n > len(sorted) {
		n = len(sorted)
	}
	return sorted[:n]
}

// Groups assigns each country its Table II/III group: its UN sub-region,
// except that the top-10 countries form singleton groups named after the
// country. It returns country-code → group name.
func Groups(countries []Country) map[string]string {
	top := make(map[string]bool, 10)
	for _, country := range TopByWeight(countries, 10) {
		top[country.Code] = true
	}
	out := make(map[string]string, len(countries))
	for _, country := range countries {
		if top[country.Code] {
			out[country.Code] = country.Name
		} else {
			out[country.Code] = country.SubRegion
		}
	}
	return out
}
