package worldgen

import (
	"fmt"
	"net/netip"
	"sort"
	"strings"

	"govdns/internal/authserver"
	"govdns/internal/dnsname"
	"govdns/internal/dnswire"
	"govdns/internal/geoip"
	"govdns/internal/nettopo"
	"govdns/internal/registrar"
	"govdns/internal/simnet"
	"govdns/internal/zone"
)

// Active is the simulated Internet at scan time: the full DNS tree from
// the root down to every government child zone, servers attached to a
// simulated network, the topology-derived GeoIP database, and the
// registrar state for hijack-risk checks.
type Active struct {
	World *World
	Net   *simnet.Network
	Topo  *nettopo.Topology
	Geo   *geoip.DB
	Roots []netip.Addr
	Reg   *registrar.Registry

	// QueryList is the set of names the scanner probes: every name with
	// PDNS activity in the final study year (alive domains, stale
	// delegations, freshly dead domains, ghost children).
	QueryList []dnsname.Name

	addrs   map[dnsname.Name][]netip.Addr
	servers map[netip.Addr]*authserver.Server
	// tldZones indexes the TLD zones by TLD name for delegation edits.
	tldZones map[dnsname.Name]*zone.Zone
	rootZone *zone.Zone
	// parents indexes each country's parent zone by its origin, so
	// remediation tooling can edit delegations in place.
	parents map[dnsname.Name]*zone.Zone
}

// ParentZone returns the government parent zone rooted at origin (a
// country suffix), if one exists.
func (a *Active) ParentZone(origin dnsname.Name) (*zone.Zone, bool) {
	z, ok := a.parents[origin]
	return z, ok
}

// AS number layout for the synthetic topology.
const (
	asInfra      = 100
	asCountry    = 1000 // gov AS = asCountry + 2*idx, telecom = +1
	asProviders  = 5000
	asHosters    = 20000
	asParking    = 4000
	parkingHost  = "ns1.parking-lot-services.com."
	parkingHost2 = "ns2.parking-lot-services.com."
)

// Build constructs the active world from a generated history.
func Build(w *World) *Active {
	a := &Active{
		World:    w,
		Net:      simnet.New(simnet.Config{Seed: w.Cfg.Seed}),
		Topo:     nettopo.NewTopology(),
		Reg:      registrar.New(SuffixSet(w.Countries)),
		addrs:    make(map[dnsname.Name][]netip.Addr),
		servers:  make(map[netip.Addr]*authserver.Server),
		tldZones: make(map[dnsname.Name]*zone.Zone),
		parents:  make(map[dnsname.Name]*zone.Zone),
	}
	a.Reg.SetPriceSalt(uint64(w.Cfg.Seed))

	a.Topo.AddAS(asInfra, "Root & TLD Infrastructure")
	a.Topo.AddAS(asParking, "Parking Lot Services Inc")
	for i, country := range w.Countries {
		a.Topo.AddAS(uint32(asCountry+2*i), country.Name+" Government Network")
		a.Topo.AddAS(uint32(asCountry+2*i+1), country.Name+" National Telecom")
	}

	a.buildRootAndTLDs()
	a.buildProviders()
	a.buildHosters()
	a.buildParking()
	for i := range w.Countries {
		a.buildCountry(i)
	}
	a.buildRegistrarState()
	a.buildQueryList()

	a.Geo = geoip.FromTopology(a.Topo)
	return a
}

// ensureAddr allocates (once) and returns the addresses of a hostname.
func (a *Active) ensureAddr(host dnsname.Name, asn uint32, new24 bool) []netip.Addr {
	if addrs, ok := a.addrs[host]; ok {
		return addrs
	}
	var addr netip.Addr
	var err error
	if new24 {
		addr, err = a.Topo.AllocIPNew24(asn)
	} else {
		addr, err = a.Topo.AllocIP(asn)
	}
	if err != nil {
		panic(fmt.Sprintf("worldgen: allocating address for %s: %v", host, err))
	}
	a.addrs[host] = []netip.Addr{addr}
	return a.addrs[host]
}

// aliasAddr points host at an existing address (same-IP nameserver
// pairs).
func (a *Active) aliasAddr(host dnsname.Name, addr netip.Addr) {
	a.addrs[host] = []netip.Addr{addr}
}

// AddrsOf returns the ground-truth addresses of a hostname (empty when
// the host was never materialized — dangling and typo hosts).
func (a *Active) AddrsOf(host dnsname.Name) []netip.Addr {
	return a.addrs[host]
}

// serverAt returns (creating on demand) the server bound at addr.
func (a *Active) serverAt(addr netip.Addr, hostname dnsname.Name) *authserver.Server {
	if s, ok := a.servers[addr]; ok {
		return s
	}
	s := authserver.New(hostname)
	a.servers[addr] = s
	a.Net.Attach(addr, s)
	return s
}

// serveZone attaches z to every address of every given hostname.
func (a *Active) serveZone(z *zone.Zone, hosts ...dnsname.Name) {
	for _, host := range hosts {
		for _, addr := range a.addrs[host] {
			a.serverAt(addr, host).AddZone(z)
		}
	}
}

// newZone creates a zone with an SOA whose MNAME is the primary server
// (used by the provider-identification SOA fallback).
func newZone(origin, mname dnsname.Name) *zone.Zone {
	z := zone.New(origin)
	rname := origin.MustPrepend("hostmaster")
	z.MustAdd(dnswire.RR{Name: origin, Class: dnswire.ClassIN, TTL: 3600, Data: dnswire.SOAData{
		MName: mname, RName: rname,
		Serial: 2021041500, Refresh: 7200, Retry: 3600, Expire: 1209600, Minimum: 300,
	}})
	return z
}

func nsRR(owner, host dnsname.Name) dnswire.RR {
	return dnswire.RR{Name: owner, Class: dnswire.ClassIN, TTL: 3600, Data: dnswire.NSData{Host: host}}
}

func aRR(owner dnsname.Name, addr netip.Addr) dnswire.RR {
	return dnswire.RR{Name: owner, Class: dnswire.ClassIN, TTL: 3600, Data: dnswire.AData{Addr: addr}}
}

// gTLDs hosting provider and hoster domains.
var _gtlds = []string{"com", "net", "org", "info", "biz"}

// buildRootAndTLDs creates the root zone, the gTLD zones, and one ccTLD
// zone per country.
func (a *Active) buildRootAndTLDs() {
	rootHostA := dnsname.MustParse("a.root-servers.net")
	rootHostB := dnsname.MustParse("b.root-servers.net")
	a.ensureAddr(rootHostA, asInfra, true)
	a.ensureAddr(rootHostB, asInfra, true)
	a.Roots = append(a.Roots, a.addrs[rootHostA][0], a.addrs[rootHostB][0])

	root := zone.New(dnsname.Root)
	root.MustAdd(dnswire.RR{Name: dnsname.Root, Class: dnswire.ClassIN, TTL: 3600, Data: dnswire.SOAData{
		MName: rootHostA, RName: "nstld.verisign-grs.com.", Serial: 2021041500,
		Refresh: 1800, Retry: 900, Expire: 604800, Minimum: 86400,
	}})
	root.MustAdd(nsRR(dnsname.Root, rootHostA))
	root.MustAdd(nsRR(dnsname.Root, rootHostB))
	root.MustAdd(aRR(rootHostA, a.addrs[rootHostA][0]))
	root.MustAdd(aRR(rootHostB, a.addrs[rootHostB][0]))
	a.rootZone = root

	tlds := map[dnsname.Name]bool{}
	for _, g := range _gtlds {
		tlds[dnsname.MustParse(g)] = true
	}
	for _, country := range a.World.Countries {
		// The TLD of a country's suffix: its last label (gov.cn -> cn;
		// the US uses the gov TLD itself).
		labels := country.Suffix.Labels()
		tlds[dnsname.MustParse(labels[len(labels)-1])] = true
	}
	// The uk TLD hosts awsdns-NN.co.uk; the paper's study naturally
	// includes it via the UK's gov.uk too.
	tlds[dnsname.MustParse("uk")] = true

	sorted := make([]dnsname.Name, 0, len(tlds))
	for tld := range tlds {
		sorted = append(sorted, tld)
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

	for _, tld := range sorted {
		host := tld.MustPrepend("nic").MustPrepend("a")
		a.ensureAddr(host, asInfra, true)
		z := newZone(tld, host)
		z.MustAdd(nsRR(tld, host))
		z.MustAdd(aRR(host, a.addrs[host][0]))
		a.tldZones[tld] = z
		root.MustAdd(nsRR(tld, host))
		root.MustAdd(aRR(host, a.addrs[host][0]))
		a.serveZone(z, host)
	}
	a.serveZone(root, rootHostA, rootHostB)
}

// delegateInTLD adds a delegation (with glue) for domain into its TLD
// zone, creating nothing if the TLD is unknown.
func (a *Active) delegateInTLD(domain dnsname.Name, hosts []dnsname.Name) {
	labels := domain.Labels()
	tld := dnsname.MustParse(labels[len(labels)-1])
	z, ok := a.tldZones[tld]
	if !ok {
		return
	}
	for _, host := range hosts {
		z.MustAdd(nsRR(domain, host))
		if host.IsSubdomainOf(domain) {
			for _, addr := range a.addrs[host] {
				z.MustAdd(aRR(host, addr))
			}
		}
	}
}

// buildProviders materializes every global provider nameserver hostname
// used by any domain history, with a zone per provider nameserver
// domain.
func (a *Active) buildProviders() {
	table := adoptionTable()
	asnByKey := make(map[string]uint32, len(table))
	for i, p := range table {
		asn := uint32(asProviders + i)
		a.Topo.AddAS(asn, "Provider "+p.key)
		asnByKey[p.key] = asn
	}

	// Collect hostnames per provider from all spans (old spans matter:
	// disjoint-inconsistency domains point parents at old providers).
	hostsByKey := make(map[string]map[dnsname.Name]bool)
	for _, d := range a.World.Domains {
		for _, span := range d.Spans {
			if span.A.Kind != HostGlobal {
				continue
			}
			set, ok := hostsByKey[span.A.Provider]
			if !ok {
				set = make(map[dnsname.Name]bool)
				hostsByKey[span.A.Provider] = set
			}
			for _, host := range span.A.NS {
				if !host.IsSubdomainOf(d.Name) { // skip the mixed private NS
					set[host] = true
				}
			}
		}
	}

	for key, hostSet := range hostsByKey {
		asn := asnByKey[key]
		hosts := make([]dnsname.Name, 0, len(hostSet))
		for h := range hostSet {
			hosts = append(hosts, h)
		}
		sort.Slice(hosts, func(i, j int) bool { return hosts[i] < hosts[j] })

		// Group hosts into zones by registered nameserver domain.
		byZone := make(map[dnsname.Name][]dnsname.Name)
		for _, h := range hosts {
			byZone[nsDomainOf(h)] = append(byZone[nsDomainOf(h)], h)
		}
		zoneNames := make([]dnsname.Name, 0, len(byZone))
		for origin := range byZone {
			zoneNames = append(zoneNames, origin)
		}
		sort.Slice(zoneNames, func(i, j int) bool { return zoneNames[i] < zoneNames[j] })

		for _, origin := range zoneNames {
			zHosts := byZone[origin]
			for _, h := range zHosts {
				a.ensureAddr(h, asn, true)
			}
			z := newZone(origin, zHosts[0])
			apexNS := zHosts
			if len(apexNS) > 2 {
				apexNS = apexNS[:2]
			}
			for _, h := range apexNS {
				z.MustAdd(nsRR(origin, h))
			}
			for _, h := range zHosts {
				z.MustAdd(aRR(h, a.addrs[h][0]))
			}
			a.serveZone(z, zHosts...)
			a.delegateInTLD(origin, apexNS)
		}
	}
}

// nsDomainOf returns the registrable domain of a provider NS hostname:
// the last two labels, or three for co.uk-style hosts.
func nsDomainOf(host dnsname.Name) dnsname.Name {
	labels := host.Labels()
	n := 2
	if len(labels) >= 3 {
		second := labels[len(labels)-2]
		if second == "co" || second == "com" || second == "net" || second == "org" || second == "ac" {
			n = 3
		}
	}
	if len(labels) < n {
		return host
	}
	return dnsname.MustParse(strings.Join(labels[len(labels)-n:], "."))
}

// buildHosters creates each country's local hoster infrastructure: typed
// nameserver pairs within the hoster's AS, plus the broken pairs whose
// second server is dead.
func (a *Active) buildHosters() {
	counter := 0
	for i := range a.World.Countries {
		for _, h := range a.World.Hosters[i] {
			asn := uint32(asHosters + counter)
			counter++
			a.Topo.AddAS(asn, "Hoster "+strings.TrimSuffix(h.domain.String(), "."))
			a.buildPairFarm(h.domain, asn, uint32(asCountry+2*i+1), true)
		}
	}
}

// buildPairFarm allocates the typed nameserver pairs under an apex:
// ns1/ns2 multi-/24, ns3/ns4 same-IP, ns5/ns6 same-/24, ns7/ns8
// multi-AS (second host in altASN), nsb1..nsb8 broken variants. With
// makeZone it also creates and serves the apex zone (hosters); country
// suffixes pass false because their parent zone carries the records.
func (a *Active) buildPairFarm(apex dnsname.Name, asn, altASN uint32, makeZone bool) {
	// ns1/ns2: distinct /24s.
	a.ensureAddr(apex.MustPrepend("ns1"), asn, true)
	a.ensureAddr(apex.MustPrepend("ns2"), asn, true)
	// ns3/ns4: one shared address.
	shared := a.ensureAddr(apex.MustPrepend("ns3"), asn, true)
	a.aliasAddr(apex.MustPrepend("ns4"), shared[0])
	// ns5/ns6: same /24.
	a.ensureAddr(apex.MustPrepend("ns5"), asn, true)
	a.ensureAddr(apex.MustPrepend("ns6"), asn, false)
	// ns7/ns8: two ASes.
	a.ensureAddr(apex.MustPrepend("ns7"), asn, true)
	a.ensureAddr(apex.MustPrepend("ns8"), altASN, true)
	// Broken pairs: first server fine, second dead. Address allocation
	// mirrors each class so partially-lame domains keep their Table I
	// profile. The same-IP pair's dead name (nsb4) gets NO address at
	// all — one address cannot be half dead, and in the wild these
	// broken same-IP pairs pair a working server with an unresolvable
	// hostname, which keeps |IP_ns| = 1.
	for _, pair := range []struct {
		base    int
		deadASN uint32
		new24   bool
		noAddr  bool
	}{
		{base: 1, deadASN: asn, new24: true},  // multi-/24
		{base: 3, deadASN: asn, noAddr: true}, // same-IP
		{base: 5, deadASN: asn, new24: false}, // same /24
		{base: 7, deadASN: altASN, new24: true},
	} {
		a.ensureAddr(apex.MustPrepend(fmt.Sprintf("nsb%d", pair.base)), asn, true)
		if pair.noAddr {
			continue
		}
		dead := a.ensureAddr(apex.MustPrepend(fmt.Sprintf("nsb%d", pair.base+1)), pair.deadASN, pair.new24)
		a.Net.Blackhole(dead[0])
	}

	if !makeZone {
		return
	}
	// Hoster apex zone served by ns1/ns2 so its hostnames resolve.
	z := newZone(apex, apex.MustPrepend("ns1"))
	hosts := a.pairFarmHosts(apex)
	z.MustAdd(nsRR(apex, apex.MustPrepend("ns1")))
	z.MustAdd(nsRR(apex, apex.MustPrepend("ns2")))
	for _, h := range hosts {
		for _, addr := range a.addrs[h] {
			z.MustAdd(aRR(h, addr))
		}
	}
	a.serveZone(z, apex.MustPrepend("ns1"), apex.MustPrepend("ns2"))
	a.delegateInTLD(apex, []dnsname.Name{apex.MustPrepend("ns1"), apex.MustPrepend("ns2")})
}

// pairFarmHosts lists every hostname a pair farm creates under apex.
func (a *Active) pairFarmHosts(apex dnsname.Name) []dnsname.Name {
	var hosts []dnsname.Name
	for i := 1; i <= 8; i++ {
		hosts = append(hosts, apex.MustPrepend(fmt.Sprintf("ns%d", i)))
		hosts = append(hosts, apex.MustPrepend(fmt.Sprintf("nsb%d", i)))
	}
	return hosts
}

// buildParking creates the parking operator that answers for expired
// domains referenced by CondParked delegations.
func (a *Active) buildParking() {
	host1 := dnsname.MustParse(parkingHost)
	host2 := dnsname.MustParse(parkingHost2)
	a.ensureAddr(host1, asParking, true)
	a.ensureAddr(host2, asParking, true)

	// The parking target is the parking server itself: every hostname
	// under a parked domain resolves back to a parking server, which
	// answers any DNS query — so parked delegations are NOT lame, only
	// inconsistent (§ IV-D's stealthier hijacking variant).
	target := a.addrs[host1][0]
	for _, host := range []dnsname.Name{host1, host2} {
		for _, addr := range a.addrs[host] {
			s := a.serverAt(addr, host)
			s.SetBehavior(authserver.BehaviorParking)
			s.SetParkingTarget(target)
		}
	}

	// The parking operator's own domain must resolve so delegations to
	// parked hosts can be followed. Parking servers answer everything,
	// including their own names, so only the TLD delegation is needed.
	a.delegateInTLD(dnsname.MustParse("parking-lot-services.com"), []dnsname.Name{host1, host2})
	if z, ok := a.tldZones[dnsname.MustParse("com")]; ok {
		for _, host := range []dnsname.Name{host1, host2} {
			z.MustAdd(aRR(host, a.addrs[host][0]))
		}
	}
}
