package worldgen

import (
	"fmt"
	"net/netip"

	"govdns/internal/nettopo"
	"govdns/internal/simnet"
)

// GeoFence restricts every in-suffix government nameserver of a country
// to domestic sources (its government and telecom ASes) — the § V-A
// scenario where results depend on the measurement vantage. The study's
// default vantage will see those domains as unresponsive; a domestic
// vantage (DomesticVantage) sees them normally.
func (a *Active) GeoFence(code string) error {
	idx := a.World.countryIndex(code)
	if idx < 0 {
		return fmt.Errorf("worldgen: unknown country %q", code)
	}
	country := a.World.Countries[idx]
	allow := a.domesticACL(idx)

	for host, addrs := range a.addrs {
		if !host.IsSubdomainOf(country.Suffix) {
			continue
		}
		for _, addr := range addrs {
			a.Net.SetACL(addr, allow)
		}
	}
	return nil
}

// domesticACL admits sources inside the country's government and
// telecom AS ranges.
func (a *Active) domesticACL(idx int) simnet.ACL {
	govASN := uint32(asCountry + 2*idx)
	var prefixes []netip.Prefix
	for _, r := range a.Topo.Ranges() {
		if r.ASN == govASN || r.ASN == govASN+1 {
			prefixes = append(prefixes, netip.PrefixFrom(nettopo.IPv4(r.Start), 16))
		}
	}
	return func(src netip.Addr) bool {
		for _, p := range prefixes {
			if p.Contains(src) {
				return true
			}
		}
		return false
	}
}

// DomesticVantage allocates a measurement source address inside the
// country's telecom AS, for scanning geo-fenced infrastructure from the
// inside.
func (a *Active) DomesticVantage(code string) (netip.Addr, error) {
	idx := a.World.countryIndex(code)
	if idx < 0 {
		return netip.Addr{}, fmt.Errorf("worldgen: unknown country %q", code)
	}
	telecomASN := uint32(asCountry + 2*idx + 1)
	addr, err := a.Topo.AllocIP(telecomASN)
	if err != nil {
		return netip.Addr{}, fmt.Errorf("worldgen: allocating vantage: %w", err)
	}
	return addr, nil
}
