package worldgen

import (
	"strings"
	"testing"

	"govdns/internal/dnsname"
	"govdns/internal/dnswire"
	"govdns/internal/pdns"
)

// TestWorldInvariants validates structural properties of the generated
// world that every analysis implicitly depends on.
func TestWorldInvariants(t *testing.T) {
	w, active := sharedWorld(t)

	t.Run("spans are contiguous and ordered", func(t *testing.T) {
		for _, d := range w.Domains {
			if len(d.Spans) == 0 {
				t.Fatalf("%s has no spans", d.Name)
			}
			if d.Spans[0].FromYear != d.Born {
				t.Errorf("%s: first span starts %d, born %d", d.Name, d.Spans[0].FromYear, d.Born)
			}
			for i := 1; i < len(d.Spans); i++ {
				if d.Spans[i].FromYear != d.Spans[i-1].ToYear+1 {
					t.Errorf("%s: span gap between %d and %d", d.Name,
						d.Spans[i-1].ToYear, d.Spans[i].FromYear)
				}
			}
			last := d.Spans[len(d.Spans)-1]
			if d.Died != 0 && last.ToYear < d.Died {
				t.Errorf("%s: last span ends %d before death %d", d.Name, last.ToYear, d.Died)
			}
		}
	})

	t.Run("every span has nameservers", func(t *testing.T) {
		for _, d := range w.Domains {
			for _, span := range d.Spans {
				if len(span.A.NS) == 0 {
					t.Fatalf("%s: empty NS set in span %d-%d", d.Name, span.FromYear, span.ToYear)
				}
				if d.SingleNS && len(span.A.NS) != 1 {
					t.Errorf("%s: single-NS domain with %d nameservers", d.Name, len(span.A.NS))
				}
			}
		}
	})

	t.Run("domains map to their country suffix", func(t *testing.T) {
		for _, d := range w.Domains {
			suffix := w.Countries[d.CountryIdx].Suffix
			if !d.Name.IsSubdomainOf(suffix) {
				t.Errorf("%s not under %s", d.Name, suffix)
			}
		}
	})

	t.Run("domain names are unique", func(t *testing.T) {
		seen := make(map[dnsname.Name]bool, len(w.Domains))
		for _, d := range w.Domains {
			if seen[d.Name] {
				t.Errorf("duplicate domain %s", d.Name)
			}
			seen[d.Name] = true
		}
	})

	t.Run("healthy domains have servers for every nameserver", func(t *testing.T) {
		for _, d := range w.Domains {
			if d.Died != 0 || d.Cond != CondHealthy {
				continue
			}
			for _, host := range d.Final().NS {
				addrs := active.AddrsOf(host)
				if len(addrs) == 0 {
					t.Errorf("%s: healthy NS %s has no address", d.Name, host)
					continue
				}
				for _, addr := range addrs {
					if active.Net.IsBlackholed(addr) {
						t.Errorf("%s: healthy NS %s at %s is blackholed", d.Name, host, addr)
					}
					if _, ok := active.Net.ServerAt(addr); !ok {
						t.Errorf("%s: healthy NS %s at %s has no server", d.Name, host, addr)
					}
				}
			}
		}
	})

	t.Run("parent zone anomalies trace to injected defects", func(t *testing.T) {
		// Zone validation flags missing glue — which the generator
		// produces deliberately for partially-lame domains whose dead
		// nameserver is unresolvable. Every flagged problem must belong
		// to such a domain; anything else is a generator bug.
		brokenOK := make(map[dnsname.Name]bool)
		for _, d := range w.Domains {
			if d.Cond == CondPartialLameOwn || d.Cond == CondStaleDelegation {
				brokenOK[d.Name] = true
			}
		}
		for _, country := range w.Countries {
			parent, ok := active.ParentZone(country.Suffix)
			if !ok {
				// TLD-level suffixes (the US "gov") live in tldZones.
				continue
			}
			for _, problem := range parent.Validate() {
				matched := false
				for name := range brokenOK {
					if dnsname.Name(name).IsSubdomainOf(country.Suffix) &&
						containsName(problem.Error(), name) {
						matched = true
						break
					}
				}
				if !matched {
					t.Errorf("%s: unexplained zone problem: %v", country.Suffix, problem)
				}
			}
		}
	})

	t.Run("conditions imply dangling domains where required", func(t *testing.T) {
		for _, d := range w.Domains {
			switch d.Cond {
			case CondTypo, CondParked:
				if d.DanglingDomain == "" {
					t.Errorf("%s: %s without a dangling domain", d.Name, d.Cond)
				}
			}
		}
	})

	t.Run("PDNS windows stay inside the collection window", func(t *testing.T) {
		// Migration cache tails and transients may spill a few days
		// past December 31 of the final year, like real sensors that
		// keep reporting until the scan; nothing may exceed scan day.
		first, _ := pdns.YearRange(w.Cfg.StartYear)
		for _, rs := range w.PDNS.Snapshot() {
			if rs.RRType != dnswire.TypeNS {
				continue
			}
			if rs.FirstSeen < first || rs.LastSeen > ScanDay {
				t.Errorf("%s %q window %s..%s outside the collection window",
					rs.RRName, rs.RData, rs.FirstSeen, rs.LastSeen)
			}
			if rs.LastSeen < rs.FirstSeen {
				t.Errorf("%s: inverted window", rs.RRName)
			}
		}
	})
}

// containsName reports whether the error text mentions the domain.
func containsName(errText string, name dnsname.Name) bool {
	return len(errText) > 0 && strings.Contains(errText, string(name))
}
