package worldgen

import (
	"fmt"

	"govdns/internal/dnsname"
)

// normalizeInfra rewrites shared-infrastructure nameserver hostnames so
// that a domain's diversity class (Table I) is realized by the pair it
// actually uses. Countries and local hosters operate several typed
// nameserver pairs:
//
//	ns1/ns2 — addresses in distinct /24s, one AS
//	ns3/ns4 — both names resolve to one address (the Thailand pattern)
//	ns5/ns6 — two addresses in one /24
//	ns7/ns8 — addresses in two autonomous systems
//	nsb1/nsb2 (and per-class b-pairs) — a pair whose second server is
//	   dead, shared by every partially-lame domain on that
//	   infrastructure (the Turkey/Brazil/Mexico cluster pattern)
//
// It runs after condition assignment and before PDNS emission so the
// passive and active views stay coherent.
func (w *World) normalizeInfra() {
	for _, d := range w.Domains {
		country := w.Countries[d.CountryIdx]
		if d.Name == country.Suffix {
			continue // the apex keeps the primary pair
		}
		broken := d.Cond == CondPartialLameShared
		for i := range d.Spans {
			a := &d.Spans[i].A
			final := i == len(d.Spans)-1
			switch a.Kind {
			case HostCentral:
				if d.SingleNS {
					a.NS = []dnsname.Name{centralPair(country.Suffix, DivMulti24, false)[0]}
					continue
				}
				a.NS = centralPair(country.Suffix, d.Div, broken && final)
			case HostLocal:
				if d.SingleNS {
					continue
				}
				a.NS = w.hosterPair(d.CountryIdx, a.Provider, d.Div, broken && final)
			}
		}
	}
}

// pairBase maps a diversity class to its pair's first index.
func pairBase(class DiversityClass) int {
	switch class {
	case DivSameIP:
		return 3
	case DivSame24:
		return 5
	case DivMultiASN:
		return 7
	default: // DivMulti24 and unset
		return 1
	}
}

// centralPair returns the country's shared pair for a class.
func centralPair(suffix dnsname.Name, class DiversityClass, broken bool) []dnsname.Name {
	base := pairBase(class)
	prefix := "ns"
	if broken {
		prefix = "nsb"
	}
	return []dnsname.Name{
		suffix.MustPrepend(fmt.Sprintf("%s%d", prefix, base)),
		suffix.MustPrepend(fmt.Sprintf("%s%d", prefix, base+1)),
	}
}

// hosterPair returns a local hoster's typed pair. Multi-AS pairs span
// two hosters (distinct ASes); other classes stay within one hoster.
func (w *World) hosterPair(countryIdx int, hosterDomain string, class DiversityClass, broken bool) []dnsname.Name {
	hosters := w.Hosters[countryIdx]
	idx := 0
	for i, h := range hosters {
		if h.domain.String() == hosterDomain {
			idx = i
			break
		}
	}
	h := hosters[idx]
	if class == DivMultiASN && len(hosters) > 1 && !broken {
		other := hosters[(idx+1)%len(hosters)]
		return []dnsname.Name{
			h.domain.MustPrepend("ns1"),
			other.domain.MustPrepend("ns1"),
		}
	}
	base := pairBase(class)
	prefix := "ns"
	if broken {
		prefix = "nsb"
	}
	return []dnsname.Name{
		h.domain.MustPrepend(fmt.Sprintf("%s%d", prefix, base)),
		h.domain.MustPrepend(fmt.Sprintf("%s%d", prefix, base+1)),
	}
}
