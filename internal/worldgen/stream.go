package worldgen

import (
	"sort"

	"govdns/internal/dnsname"
)

// QueryStream yields the scanner's input — every domain with passive
// activity reaching the final study year, plus ghost children — one
// name at a time in canonical dnsname.Compare order, without
// materializing a []dnsname.Name. The stream holds one int32 per
// emitted name (an index into the world's own tables) instead of a
// slice header plus string per entry, which is what keeps a 10M-domain
// world's query list from becoming a second copy of the corpus.
//
// buildQueryList drains a QueryStream to fill Active.QueryList, so the
// slice-based and streaming scan paths see identical input order by
// construction.
type QueryStream struct {
	w     *World
	order []int32 // >= 0: index into w.Domains; < 0: ^i into w.GhostNames
	pos   int
}

// NewQueryStream builds the emitter's order index over w. The index is
// int32 (4 bytes/name): enough for two billion names, far past the
// 10M-domain tier.
func NewQueryStream(w *World) *QueryStream {
	order := make([]int32, 0, len(w.Domains)+len(w.GhostNames))
	for i, d := range w.Domains {
		if d.Died == 0 || d.Died >= w.Cfg.EndYear-2 {
			order = append(order, int32(i))
		}
	}
	for i := range w.GhostNames {
		order = append(order, int32(^i))
	}
	qs := &QueryStream{w: w, order: order}
	sort.Slice(order, func(i, j int) bool {
		return dnsname.Compare(qs.name(order[i]), qs.name(order[j])) < 0
	})
	return qs
}

func (q *QueryStream) name(o int32) dnsname.Name {
	if o >= 0 {
		return q.w.Domains[o].Name
	}
	return q.w.GhostNames[^o]
}

// Len is the total number of names the stream yields.
func (q *QueryStream) Len() int { return len(q.order) }

// Next yields the next name in canonical order, ok=false at the end.
// The signature matches measure.DomainSource, so a stream feeds the
// scanner directly: scanner.ScanStream(ctx, qs.Next, sw).
func (q *QueryStream) Next() (dnsname.Name, bool) {
	if q.pos >= len(q.order) {
		return "", false
	}
	n := q.name(q.order[q.pos])
	q.pos++
	return n, true
}

// Reset rewinds the stream to the first name.
func (q *QueryStream) Reset() { q.pos = 0 }
