package worldgen

import (
	"fmt"
	"math"
	"math/rand"

	"govdns/internal/dnsname"
)

// adoption describes one provider's share of all PDNS domains over the
// study period. Shares are percentages of the global domain population,
// taken from the paper's Tables II and III for 2011 and 2020; years in
// between are interpolated per the curve kind.
type adoption struct {
	key        string  // catalog key
	share2011  float64 // % of all domains, 2011
	share2020  float64 // % of all domains, 2020
	curve      curveKind
	cnOnly     bool // provider only serves Chinese domains (DNSPod trio)
	nsPerSet   int  // nameservers per customer delegation
	nameScheme string
	// markets2011 and markets2020 bound how many countries the provider
	// operates in (the paper's Table III "Countries" column); adoption is
	// country-clustered, not uniform.
	markets2011, markets2020 int
}

type curveKind int

const (
	curveLinear curveKind = iota + 1
	// curveCloud stays near zero until mid-decade then accelerates —
	// the Amazon/Cloudflare/Azure "multiple orders of magnitude" rise.
	curveCloud
	// curveDecay shrinks from an early peak (everydns, ixwebhosting).
	curveDecay
)

// share returns the provider's target share (percent) for year index
// t01 in [0,1] (0 = 2011, 1 = 2020).
func (a adoption) share(t01 float64) float64 {
	switch a.curve {
	case curveCloud:
		return a.share2011 + (a.share2020-a.share2011)*math.Pow(t01, 3)
	case curveDecay:
		return a.share2011 + (a.share2020-a.share2011)*math.Sqrt(t01)
	default:
		return a.share2011 + (a.share2020-a.share2011)*t01
	}
}

// adoptionTable is the calibration input for Tables II and III.
func adoptionTable() []adoption {
	return []adoption{
		{key: "amazon", share2011: 0.004, share2020: 2.70, curve: curveCloud, nsPerSet: 4, nameScheme: "amazon", markets2011: 3, markets2020: 67},
		{key: "cloudflare", share2011: 0.011, share2020: 2.15, curve: curveCloud, nsPerSet: 2, nameScheme: "cloudflare", markets2011: 6, markets2020: 85},
		{key: "azure", share2011: 0, share2020: 0.82, curve: curveCloud, nsPerSet: 4, nameScheme: "azure", markets2011: 0, markets2020: 37},
		{key: "godaddy", share2011: 0.25, share2020: 0.82, curve: curveLinear, nsPerSet: 2, nameScheme: "godaddy", markets2011: 47, markets2020: 63},
		{key: "dnspod", share2011: 0.33, share2020: 0.36, curve: curveLinear, cnOnly: true, nsPerSet: 2, nameScheme: "dnspod", markets2011: 1, markets2020: 1},
		{key: "dnsmadeeasy", share2011: 0.08, share2020: 0.13, curve: curveLinear, nsPerSet: 3, nameScheme: "pool", markets2011: 20, markets2020: 25},
		{key: "dyn", share2011: 0.006, share2020: 0.088, curve: curveLinear, nsPerSet: 2, nameScheme: "dyn", markets2011: 3, markets2020: 20},
		{key: "ultradns", share2011: 0.013, share2020: 0.034, curve: curveLinear, nsPerSet: 2, nameScheme: "pool", markets2011: 4, markets2020: 8},

		{key: "websitewelcome", share2011: 0.37, share2020: 0.39, curve: curveLinear, nsPerSet: 2, nameScheme: "pool", markets2011: 52, markets2020: 50},
		{key: "hostgator", share2011: 0.16, share2020: 0.80, curve: curveLinear, nsPerSet: 2, nameScheme: "pool", markets2011: 29, markets2020: 55},
		{key: "bluehost", share2011: 0.12, share2020: 0.22, curve: curveLinear, nsPerSet: 2, nameScheme: "pool", markets2011: 29, markets2020: 58},
		{key: "dreamhost", share2011: 0.21, share2020: 0.10, curve: curveDecay, nsPerSet: 2, nameScheme: "pool", markets2011: 29, markets2020: 20},
		{key: "zoneedit", share2011: 0.16, share2020: 0.05, curve: curveDecay, nsPerSet: 2, nameScheme: "pool", markets2011: 32, markets2020: 15},
		{key: "ixwebhosting", share2011: 0.09, share2020: 0.02, curve: curveDecay, nsPerSet: 2, nameScheme: "pool", markets2011: 28, markets2020: 10},
		{key: "hostmonster", share2011: 0.09, share2020: 0.04, curve: curveDecay, nsPerSet: 2, nameScheme: "pool", markets2011: 27, markets2020: 12},
		{key: "everydns", share2011: 0.23, share2020: 0.01, curve: curveDecay, nsPerSet: 2, nameScheme: "pool", markets2011: 26, markets2020: 5},
		{key: "pipedns", share2011: 0.04, share2020: 0.01, curve: curveDecay, nsPerSet: 2, nameScheme: "pool", markets2011: 24, markets2020: 4},
		{key: "stabletransit", share2011: 0.05, share2020: 0.02, curve: curveDecay, nsPerSet: 2, nameScheme: "pool", markets2011: 22, markets2020: 8},
		{key: "digitalocean", share2011: 0, share2020: 0.22, curve: curveCloud, nsPerSet: 3, nameScheme: "digitalocean", markets2011: 0, markets2020: 45},
		{key: "microsoftonline", share2011: 0, share2020: 0.07, curve: curveCloud, nsPerSet: 2, nameScheme: "pool", markets2011: 0, markets2020: 41},
		{key: "wixdns", share2011: 0, share2020: 0.17, curve: curveCloud, nsPerSet: 2, nameScheme: "pool", markets2011: 0, markets2020: 36},
		{key: "cloudns", share2011: 0.01, share2020: 0.12, curve: curveLinear, nsPerSet: 2, nameScheme: "cloudns", markets2011: 10, markets2020: 36},

		{key: "hichina", share2011: 5.70, share2020: 7.30, curve: curveLinear, cnOnly: true, nsPerSet: 2, nameScheme: "hichina", markets2011: 1, markets2020: 1},
		{key: "xincache", share2011: 2.30, share2020: 3.60, curve: curveLinear, cnOnly: true, nsPerSet: 2, nameScheme: "pool", markets2011: 1, markets2020: 1},
		{key: "dnsdiy", share2011: 1.30, share2020: 2.10, curve: curveLinear, cnOnly: true, nsPerSet: 2, nameScheme: "dnsdiy", markets2011: 1, markets2020: 1},
	}
}

// nsSetFor generates the NS hostname set a provider hands to customer
// slot: realistic naming per provider, quantized into a bounded pool so
// servers are shared by many customers (pool index = slot % poolSize).
func (a adoption) nsSetFor(slot int) []dnsname.Name {
	pool := slot % 64
	switch a.nameScheme {
	case "amazon":
		// Route 53 style: one server per TLD, numbered.
		tlds := []string{"com", "net", "org", "co.uk"}
		out := make([]dnsname.Name, 0, 4)
		for i, tld := range tlds {
			out = append(out, dnsname.MustParse(
				fmt.Sprintf("ns-%d.awsdns-%02d.%s", pool*16+i, pool, tld)))
		}
		return out
	case "azure":
		tlds := []string{"com", "net", "org", "info"}
		out := make([]dnsname.Name, 0, 4)
		for i, tld := range tlds {
			out = append(out, dnsname.MustParse(
				fmt.Sprintf("ns%d-%02d.azure-dns.%s", i+1, pool, tld)))
		}
		return out
	case "cloudflare":
		males := []string{"art", "bob", "cruz", "dan", "ed", "gene", "hank", "ivan"}
		females := []string{"amy", "beth", "cora", "dina", "eva", "gail", "hana", "iris"}
		return []dnsname.Name{
			dnsname.MustParse(males[pool%len(males)] + ".ns.cloudflare.com"),
			dnsname.MustParse(females[pool%len(females)] + ".ns.cloudflare.com"),
		}
	case "godaddy":
		base := (pool % 40) * 2
		return []dnsname.Name{
			dnsname.MustParse(fmt.Sprintf("ns%02d.domaincontrol.com", base+1)),
			dnsname.MustParse(fmt.Sprintf("ns%02d.domaincontrol.com", base+2)),
		}
	case "dnspod":
		g := pool%6 + 1
		return []dnsname.Name{
			dnsname.MustParse(fmt.Sprintf("f1g%dns1.dnspod.net", g)),
			dnsname.MustParse(fmt.Sprintf("f1g%dns2.dnspod.net", g)),
		}
	case "dyn":
		p := pool%10 + 1
		return []dnsname.Name{
			dnsname.MustParse(fmt.Sprintf("ns1.p%02d.dynect.net", p)),
			dnsname.MustParse(fmt.Sprintf("ns2.p%02d.dynect.net", p)),
		}
	case "digitalocean":
		return []dnsname.Name{
			dnsname.MustParse("ns1.digitalocean.com"),
			dnsname.MustParse("ns2.digitalocean.com"),
			dnsname.MustParse("ns3.digitalocean.com"),
		}
	case "cloudns":
		base := pool%4 + 1
		return []dnsname.Name{
			dnsname.MustParse(fmt.Sprintf("pns%d.cloudns.net", base)),
			dnsname.MustParse(fmt.Sprintf("pns%d.cloudns.net", base+4)),
		}
	case "hichina":
		d := pool%30 + 1
		return []dnsname.Name{
			dnsname.MustParse(fmt.Sprintf("dns%d.hichina.com", d)),
			dnsname.MustParse(fmt.Sprintf("dns%d.hichina.com", d+1)),
		}
	case "dnsdiy":
		return []dnsname.Name{
			dnsname.MustParse(fmt.Sprintf("ns%d.dns-diy.com", pool%5+1)),
			dnsname.MustParse(fmt.Sprintf("ns%d.dns-diy.net", pool%5+1)),
		}
	default: // "pool"
		domain := providerDomainFor(a.key)
		n := a.nsPerSet
		if n < 2 {
			n = 2
		}
		out := make([]dnsname.Name, 0, n)
		for i := 0; i < n; i++ {
			out = append(out, dnsname.MustParse(
				fmt.Sprintf("ns%d.%s", pool%20*n+i+1, domain)))
		}
		return out
	}
}

// providerDomainFor maps a catalog key to its primary nameserver domain
// for the generic pool naming scheme.
func providerDomainFor(key string) string {
	domains := map[string]string{
		"dnsmadeeasy":     "dnsmadeeasy.com",
		"ultradns":        "ultradns.net",
		"websitewelcome":  "websitewelcome.com",
		"hostgator":       "hostgator.com",
		"bluehost":        "bluehost.com",
		"dreamhost":       "dreamhost.com",
		"zoneedit":        "zoneedit.com",
		"ixwebhosting":    "ixwebhosting.com",
		"hostmonster":     "hostmonster.com",
		"everydns":        "everydns.net",
		"pipedns":         "pipedns.com",
		"stabletransit":   "stabletransit.com",
		"microsoftonline": "microsoftonline.com",
		"wixdns":          "wixdns.net",
		"xincache":        "xincache.com",
	}
	if d, ok := domains[key]; ok {
		return d
	}
	return key + ".com"
}

// localHoster is a country-local web hoster outside the provider catalog;
// the long tail that keeps the government DNS ecosystem heterogeneous.
type localHoster struct {
	domain dnsname.Name
	ns     []dnsname.Name
}

// localHostersFor fabricates a country's local hosting companies. Count
// scales with the country's size so no single local provider dominates
// large countries (the paper: at most 6% per provider in gov.br).
func localHostersFor(country Country, rng *rand.Rand) []localHoster {
	n := 3
	switch {
	case country.Weight >= 5000:
		n = 18
	case country.Weight >= weightLarge:
		n = 10
	case country.Weight >= weightMid:
		n = 6
	case country.Weight >= weightSmall:
		n = 4
	}
	styles := []string{"host%s%d.com", "dns%s%d.net", "web%s%d.com", "%shosting%d.com", "serv%s%d.net"}
	out := make([]localHoster, 0, n)
	for i := 0; i < n; i++ {
		style := styles[rng.Intn(len(styles))]
		domain := dnsname.MustParse(fmt.Sprintf(style, country.Code, i+1))
		out = append(out, localHoster{
			domain: domain,
			ns: []dnsname.Name{
				domain.MustPrepend("ns1"),
				domain.MustPrepend("ns2"),
			},
		})
	}
	return out
}
