package worldgen

// Profile holds the per-country deployment and misconfiguration rates the
// generator draws from. Rates for the ten largest countries are derived
// from the paper's per-country results (Table I, Figs. 8/10/14); the
// remaining countries use tier defaults calibrated so global aggregates
// land near the paper's totals.
type Profile struct {
	// --- replication (active world, § IV-A) ---

	// SingleNS is P(domain is delegated with exactly one NS).
	SingleNS float64
	// SingleNSPrivate is P(the NS is in-government | single NS). The
	// paper reports >71% each year (Fig. 7).
	SingleNSPrivate float64
	// SingleNSStale is P(no authoritative response | single NS) — the
	// stale-record signal of Fig. 8 (60.1% overall).
	SingleNSStale float64

	// PrivateMulti is P(private deployment | multi-NS domain).
	PrivateMulti float64
	// CentralShare is P(NS are the shared central government servers |
	// private): the pattern behind Thailand's same-IP pairs.
	CentralShare float64

	// --- diversity (Table I, conditioned on multi-NS) ---

	// MultiIP is P(|IP_ns| > 1).
	MultiIP float64
	// Multi24GivenIP is P(|24_ns| > 1 given |IP_ns| > 1).
	Multi24GivenIP float64
	// MultiASNGiven24 is P(|ASN_ns| > 1 given |24_ns| > 1).
	MultiASNGiven24 float64

	// --- third-party hosting (§ IV-B) ---

	// GlobalProviderShare is P(domain uses the global provider mix |
	// third-party hosted); the remainder use country-local hosters.
	GlobalProviderShare float64
	// MixedHosting is P(domain keeps an extra nameserver outside its
	// main provider | provider hosted) — these domains are not d_1P.
	MixedHosting float64

	// --- misconfiguration (active world, § IV-C/D) ---

	// Stale is P(domain is dead but still delegated in the parent) —
	// fully defective delegations from stale records.
	Stale float64
	// PartialLame is P(>=1 unresponsive/refusing NS | alive multi-NS).
	PartialLame float64
	// SharedLameBias is P(the lame server is a shared one | partial
	// lame), producing the few-servers-break-many-domains pattern the
	// paper observed for Turkey/Brazil/Mexico.
	SharedLameBias float64
	// Inconsistent is P(child NS set differs from parent | alive,
	// responsive) beyond what stale parent entries already cause.
	Inconsistent float64
	// TypoNS is P(a parent-side NS hostname is a typo | partial lame).
	TypoNS float64
	// Dangling is P(a lame NS host lies under an expired, registrable
	// domain | domain has a dead third-party NS).
	Dangling float64
	// Parked is P(domain's parent still lists an expired provider whose
	// parking service answers queries) — the § IV-D no-lameness
	// hijacking case. Kept very small (13 nameserver domains total).
	Parked float64

	// --- structure ---

	// Level4Share and Level5Share set where children sit in the DNS
	// hierarchy (remainder at level 3 relative to a 2-label suffix).
	Level4Share float64
	Level5Share float64

	// --- longitudinal (PDNS, 2011-2020) ---

	// Growth maps year index (0 = 2011) to the fraction of Weight
	// present that year. Must have one entry per study year.
	Growth []float64
	// ChurnDeath is the yearly probability that a multi-NS domain
	// disappears; single-NS domains use SingleChurnDeath.
	ChurnDeath float64
	// SingleChurnDeath is the yearly death rate of single-NS domains
	// (the paper's Fig. 6 churn: 16-26% of d_1NS vanish per year).
	SingleChurnDeath float64
	// SingleNSHist is the historical (PDNS) single-NS rate, higher than
	// the active-world rate because stale singles accumulate.
	SingleNSHist float64
}

// growthDefault is the global PDNS growth shape: 113.5k of 192.6k in 2011
// rising to the 2020 peak.
var growthDefault = []float64{0.59, 0.63, 0.68, 0.73, 0.78, 0.83, 0.88, 0.94, 1.00, 1.00}

// growthChina adds the 2019→2020 consolidation dip the paper attributes
// to Chinese government domain restructuring.
var growthChina = []float64{0.45, 0.52, 0.60, 0.68, 0.76, 0.84, 0.94, 1.12, 1.45, 1.00}

// growthLate models countries whose e-government footprint appears later
// in the decade; the initial zero keeps them out of the earliest PDNS
// snapshots entirely, so the number of countries with data grows.
var growthLate = []float64{0, 0.08, 0.18, 0.30, 0.44, 0.58, 0.72, 0.84, 0.94, 1.00}

// baseProfile is the tier default every preset is derived from.
func baseProfile() Profile {
	return Profile{
		SingleNS:        0.035,
		SingleNSPrivate: 0.78,
		SingleNSStale:   0.60,
		PrivateMulti:    0.33,
		CentralShare:    0.35,

		MultiIP:         0.93,
		Multi24GivenIP:  0.78,
		MultiASNGiven24: 0.45,

		GlobalProviderShare: 0.30,
		MixedHosting:        0.15,

		Stale:          0.025,
		PartialLame:    0.19,
		SharedLameBias: 0.45,
		Inconsistent:   0.13,
		TypoNS:         0.025,
		Dangling:       0.02,
		Parked:         0,

		Level4Share: 0.08,
		Level5Share: 0.02,

		Growth:           growthDefault,
		ChurnDeath:       0.05,
		SingleChurnDeath: 0.21,
		SingleNSHist:     0.042,
	}
}

// with applies f to a copy of the base profile.
func with(f func(*Profile)) Profile {
	p := baseProfile()
	f(&p)
	return p
}

// presets returns the named profile table. Diversity dials follow
// Table I; misconfiguration dials follow the per-country patterns of
// Figs. 8, 10 and 14.
func presets() map[string]Profile {
	return map[string]Profile{
		"default": baseProfile(),

		// China: near-universal replication and prefix diversity, the
		// highest AS diversity, heavy use of local commercial DNS
		// (hichina/xincache/dns-diy), 2019→2020 consolidation dip.
		"china": with(func(p *Profile) {
			p.SingleNS = 0.012
			p.MultiIP, p.Multi24GivenIP, p.MultiASNGiven24 = 0.973, 0.984, 0.548
			p.PrivateMulti = 0.20
			p.GlobalProviderShare = 0.92 // almost all third-party is the CN provider trio
			p.MixedHosting = 0.40        // provider + in-house NS: the multi-AS pattern
			p.PartialLame = 0.15
			p.Stale = 0.02
			p.Growth = growthChina
			p.Level4Share, p.Level5Share = 0.04, 0.01
		}),

		// Thailand: dominated by shared central pairs resolving to one
		// IP (|IP|>1 for only 36.1% of multi-NS domains).
		"thailand": with(func(p *Profile) {
			p.SingleNS = 0.02
			p.MultiIP, p.Multi24GivenIP, p.MultiASNGiven24 = 0.361, 0.878, 0.429
			p.PrivateMulti = 0.75
			p.CentralShare = 0.85
			p.GlobalProviderShare = 0.25
			p.PartialLame = 0.34
			p.SharedLameBias = 0.75
			p.Stale = 0.03
		}),

		// Brazil: high IP diversity but mostly a single AS (13.7%);
		// deep hierarchy (city.state.gov.br); many stale shared-lame
		// delegations.
		"brazil": with(func(p *Profile) {
			p.Parked = 0.0002
			p.SingleNS = 0.02
			p.MultiIP, p.Multi24GivenIP, p.MultiASNGiven24 = 0.957, 0.568, 0.252
			p.PrivateMulti = 0.45
			p.CentralShare = 0.30
			p.GlobalProviderShare = 0.22 // long tail of local hosters (max 6% per provider)
			p.PartialLame = 0.46
			p.SharedLameBias = 0.70
			p.Stale = 0.05
			p.Dangling = 0.04
			p.Level4Share, p.Level5Share = 0.78, 0.05
		}),

		// Mexico: over 10% single-NS domains, most of them stale.
		"mexico": with(func(p *Profile) {
			p.Parked = 0.0002
			p.SingleNS = 0.11
			p.SingleNSStale = 0.62
			p.MultiIP, p.Multi24GivenIP, p.MultiASNGiven24 = 0.90, 0.749, 0.381
			p.PrivateMulti = 0.40
			p.PartialLame = 0.42
			p.SharedLameBias = 0.65
			p.Stale = 0.06
			p.Dangling = 0.04
		}),

		// UK: excellent replication and prefix diversity, modest AS
		// diversity, few misconfigurations.
		"uk": with(func(p *Profile) {
			p.SingleNS = 0.004
			p.MultiIP, p.Multi24GivenIP, p.MultiASNGiven24 = 0.997, 0.964, 0.265
			p.PrivateMulti = 0.25
			p.GlobalProviderShare = 0.55
			p.PartialLame = 0.07
			p.Stale = 0.02
			p.Dangling = 0.02
		}),

		// Turkey: the most defective delegations; high AS diversity.
		"turkey": with(func(p *Profile) {
			p.Parked = 0.0002
			p.SingleNS = 0.03
			p.MultiIP, p.Multi24GivenIP, p.MultiASNGiven24 = 0.911, 0.797, 0.580
			p.PrivateMulti = 0.40
			p.PartialLame = 0.52
			p.SharedLameBias = 0.72
			p.Stale = 0.06
			p.Dangling = 0.05
			p.TypoNS = 0.04
		}),

		// India: strong prefix diversity, almost everything in NIC's
		// single AS (10.6% multi-AS).
		"india": with(func(p *Profile) {
			p.Parked = 0.0002
			p.SingleNS = 0.015
			p.MultiIP, p.Multi24GivenIP, p.MultiASNGiven24 = 0.934, 0.900, 0.126
			p.PrivateMulti = 0.70
			p.CentralShare = 0.70
			p.PartialLame = 0.22
			p.SharedLameBias = 0.55
			p.Stale = 0.04
		}),

		// Australia: highly replicated, lowest AS diversity (9.0%).
		"australia": with(func(p *Profile) {
			p.SingleNS = 0.005
			p.MultiIP, p.Multi24GivenIP, p.MultiASNGiven24 = 0.992, 0.924, 0.098
			p.PrivateMulti = 0.30
			p.GlobalProviderShare = 0.50
			p.PartialLame = 0.08
			p.Stale = 0.02
		}),

		// Ukraine: diverse IPs, half of multi-/24 domains span ASes.
		"ukraine": with(func(p *Profile) {
			p.SingleNS = 0.04
			p.MultiIP, p.Multi24GivenIP, p.MultiASNGiven24 = 0.990, 0.629, 0.724
			p.PrivateMulti = 0.35
			p.PartialLame = 0.18
			p.Stale = 0.05
			p.Parked = 0.0017 // the district-government cluster of § IV-D
		}),

		// Argentina.
		"argentina": with(func(p *Profile) {
			p.SingleNS = 0.03
			p.MultiIP, p.Multi24GivenIP, p.MultiASNGiven24 = 0.976, 0.736, 0.425
			p.PrivateMulti = 0.40
			p.PartialLame = 0.24
			p.Stale = 0.05
			p.Dangling = 0.07
		}),

		// stale-heavy: Indonesia/Kyrgyzstan-style — over 10% single-NS,
		// over half with no responding server.
		"stale-heavy": with(func(p *Profile) {
			p.SingleNS = 0.13
			p.SingleNSStale = 0.70
			p.SingleNSHist = 0.15
			p.Stale = 0.10
			p.PartialLame = 0.25
			p.Growth = growthLate
		}),

		// sparse: countries with under ten responsive domains, a few
		// of them single-NS (Bolivia, Bulgaria, Burkina Faso, UAE).
		"sparse": with(func(p *Profile) {
			p.SingleNS = 0.30
			p.SingleNSStale = 0.40
			p.SingleNSHist = 0.30
			p.Growth = growthLate
		}),
	}
}

// profileFor resolves a country's profile: its named preset, or the tier
// default.
func profileFor(country Country) Profile {
	table := presets()
	if country.ProfileName != "" {
		if p, ok := table[country.ProfileName]; ok {
			return p
		}
	}
	p := table["default"]
	// Small countries start later and churn more, which produces the
	// growing number of countries with data (Fig. 2) and keeps micro
	// states from looking like large deployments.
	if country.Weight <= weightTiny {
		p.Growth = growthLate
		p.SingleNS = 0.06
		p.SingleNSHist = 0.07
	}
	return p
}
