package worldgen

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"time"

	"govdns/internal/dnsname"
	"govdns/internal/dnswire"
	"govdns/internal/pdns"
)

// emitPDNS writes every domain history into the passive-DNS store as NS
// record sets with realistic first/last-seen windows, plus a sprinkling
// of transient records for the 7-day stability filter to remove.
func (w *World) emitPDNS() {
	for _, d := range w.Domains {
		rng := rand.New(rand.NewSource(w.Cfg.Seed ^ int64(nameHash(d.Name))))
		bornDay := dayInYear(d.Born, rng)
		var diedDay pdns.Day
		if d.Died != 0 {
			diedDay = dayInYear(d.Died, rng)
		}

		// Assignment changes happen on a migration day inside the new
		// span's first year, and the old records linger for a short
		// cache tail beyond it — so around each migration the daily NS
		// count briefly doubles, exactly the artifact the paper's
		// mode-of-daily-counts representative is robust against.
		migDays := make([]pdns.Day, len(d.Spans))
		for i := 1; i < len(d.Spans); i++ {
			migDays[i] = dayInYear(d.Spans[i].FromYear, rng)
		}
		for i, span := range d.Spans {
			from := pdns.Date(span.FromYear, time.January, 1)
			if span.FromYear == d.Born {
				from = bornDay
			}
			if i > 0 {
				from = migDays[i]
			}
			to := pdns.Date(span.ToYear, time.December, 31)
			if i+1 < len(d.Spans) {
				// Cache tail: the old set is still seen for a few days
				// after the migration.
				to = migDays[i+1] + pdns.Day(rng.Intn(10))
			}
			if d.Died != 0 && span.ToYear >= d.Died {
				to = diedDay
			}
			if to < from {
				to = from
			}
			for _, host := range span.A.NS {
				w.PDNS.ObserveRange(d.Name, dnswire.TypeNS, host.String(), from, to)
			}
		}

		// Stale delegations remain visible to sensors for a while after
		// "death" because the parent keeps answering with their NS
		// records; sightings tail off as nobody queries the dead
		// domain any more (roughly a year of decaying cache refreshes).
		if d.Cond == CondStaleDelegation && d.Died != 0 {
			final := d.Final()
			endDay := pdns.Date(w.Cfg.EndYear, time.December, 31)
			if tail := diedDay + 365; tail < endDay {
				endDay = tail
			}
			for _, host := range final.NS {
				w.PDNS.ObserveRange(d.Name, dnswire.TypeNS, host.String(), diedDay, endDay)
			}
		}

		// Transient record: a short-lived NS flip (DDoS protection
		// trial, misconfiguration) that the stability filter removes.
		if rng.Float64() < 0.03 {
			year := d.Born
			if d.Died != 0 && d.Died > d.Born {
				year = d.Born + rng.Intn(d.Died-d.Born)
			} else if w.Cfg.EndYear > d.Born {
				year = d.Born + rng.Intn(w.Cfg.EndYear-d.Born+1)
			}
			start := dayInYear(year, rng)
			w.PDNS.ObserveRange(d.Name, dnswire.TypeNS,
				"ns"+string(rune('1'+rng.Intn(3)))+".ddos-shield.net.",
				start, start+pdns.Day(rng.Intn(3)))
		}
	}

	// Ghost names: children of stale delegations, briefly observed by
	// sensors in the final year. Their short windows fall to the 7-day
	// stability filter (the paper's "disposable domain" cleanup), but
	// they still enter the active query list — where their dead parent
	// zones never answer, reproducing the paper's queried-vs-responsive
	// gap.
	for _, ghost := range w.GhostNames {
		rng := rand.New(rand.NewSource(w.Cfg.Seed ^ int64(nameHash(ghost))))
		start := dayInYear(w.Cfg.EndYear, rng)
		w.PDNS.ObserveRange(ghost, dnswire.TypeNS, ghost.Parent().MustPrepend("ns1").String(),
			start, start+pdns.Day(rng.Intn(4)))
	}

	w.injectHijacks()
}

// injectHijacks plants Cfg.HijackEvents historical takeover episodes:
// for 10-30 days a victim domain's NS records point at attacker
// nameservers under a fresh domain, then revert. Sensors record the
// attacker records exactly like any others — only forensic analysis of
// the PDNS (short-lived, unpopular, out-of-pattern NS domains) can
// surface them afterwards, which is the § V-A challenge.
func (w *World) injectHijacks() {
	if w.Cfg.HijackEvents <= 0 {
		return
	}
	rng := rand.New(rand.NewSource(w.Cfg.Seed ^ 0x41747461)) // "Atta"
	var victims []*Domain
	for _, d := range w.Domains {
		if d.SingleNS || d.Born >= w.Cfg.EndYear-1 {
			continue
		}
		if d.Died != 0 && d.Died-d.Born < 3 {
			continue
		}
		victims = append(victims, d)
	}
	if len(victims) == 0 {
		return
	}
	for i := 0; i < w.Cfg.HijackEvents; i++ {
		d := victims[rng.Intn(len(victims))]
		lastYear := w.Cfg.EndYear - 1
		if d.Died != 0 && d.Died-1 < lastYear {
			lastYear = d.Died - 1
		}
		if lastYear <= d.Born {
			continue
		}
		year := d.Born + 1 + rng.Intn(lastYear-d.Born)
		start := dayInYear(year, rng)
		end := start + pdns.Day(10+rng.Intn(21))
		attacker := dnsname.MustParse(fmt.Sprintf("ns-takeover-%02d.com", i))
		w.PDNS.ObserveRange(d.Name, dnswire.TypeNS, attacker.MustPrepend("ns1").String(), start, end)
		w.PDNS.ObserveRange(d.Name, dnswire.TypeNS, attacker.MustPrepend("ns2").String(), start, end)
		w.Hijacks = append(w.Hijacks, HijackEvent{
			Domain: d.Name, AttackerDomain: attacker, From: start, To: end,
		})
	}
}

// dayInYear picks a deterministic day within the year.
func dayInYear(year int, rng *rand.Rand) pdns.Day {
	first, last := pdns.YearRange(year)
	return first + pdns.Day(rng.Intn(int(last-first)+1))
}

func nameHash(n dnsname.Name) uint32 {
	h := fnv.New32a()
	_, _ = h.Write([]byte(n))
	return h.Sum32()
}
