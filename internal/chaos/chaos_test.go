package chaos

import (
	"bytes"
	"context"
	"errors"
	"net/netip"
	"testing"
	"time"

	"govdns/internal/dnsname"
	"govdns/internal/dnswire"
)

var (
	srvA = netip.MustParseAddr("192.0.2.1")
	srvB = netip.MustParseAddr("192.0.2.2")
)

// answering is a minimal inner transport: it answers every decodable
// query authoritatively with one A record for the queried name.
type answering struct{}

func (answering) Exchange(_ context.Context, _ netip.Addr, query []byte) ([]byte, error) {
	q, err := dnswire.Decode(query)
	if err != nil {
		return nil, err
	}
	resp := dnswire.NewResponse(q)
	resp.Header.Authoritative = true
	resp.Answers = []dnswire.RR{{
		Name:  q.Questions[0].Name,
		Class: dnswire.ClassIN,
		TTL:   60,
		Data:  dnswire.AData{Addr: netip.MustParseAddr("203.0.113.7")},
	}}
	return dnswire.Encode(resp)
}

func mustQuery(t *testing.T, id uint16, name dnsname.Name) []byte {
	t.Helper()
	wire, err := dnswire.Encode(dnswire.NewQuery(id, name, dnswire.TypeNS))
	if err != nil {
		t.Fatal(err)
	}
	return wire
}

func shortCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	t.Cleanup(cancel)
	return ctx
}

func TestWindowedRuleFiresPerKeyThenStops(t *testing.T) {
	tr := Wrap(answering{}, 1, Transient(CorruptQID, 2))
	ctx := context.Background()
	q := mustQuery(t, 7, "x.gov.br.")

	for i := 0; i < 2; i++ {
		resp, err := tr.Exchange(ctx, srvA, q)
		if err != nil {
			t.Fatalf("exchange %d: %v", i, err)
		}
		if m, err := dnswire.Decode(resp); err == nil && m.Header.ID == 7 {
			t.Fatalf("exchange %d inside window delivered a clean QID", i)
		}
	}
	// Window exhausted for this key: clean delivery.
	resp, err := tr.Exchange(ctx, srvA, q)
	if err != nil {
		t.Fatal(err)
	}
	if m, err := dnswire.Decode(resp); err != nil || m.Header.ID != 7 {
		t.Fatalf("post-window exchange still corrupted: %v %v", m, err)
	}
	// A different key has its own window.
	resp, err = tr.Exchange(ctx, srvA, mustQuery(t, 9, "y.gov.br."))
	if err != nil {
		t.Fatal(err)
	}
	if m, err := dnswire.Decode(resp); err == nil && m.Header.ID == 9 {
		t.Fatal("fresh key skipped its fault window")
	}
	if got := tr.Stats().Injected[CorruptQID]; got != 3 {
		t.Errorf("injected qid faults = %d, want 3", got)
	}
}

func TestDropBlocksUntilDeadline(t *testing.T) {
	tr := Wrap(answering{}, 1, Transient(Drop, 1))
	_, err := tr.Exchange(shortCtx(t), srvA, mustQuery(t, 1, "x.gov.br."))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	// Second exchange for the same key is past the window.
	if _, err := tr.Exchange(shortCtx(t), srvA, mustQuery(t, 2, "x.gov.br.")); err != nil {
		t.Fatalf("post-window exchange: %v", err)
	}
}

func TestFlapWindowIndexesServerNotKey(t *testing.T) {
	// Server dead for its exchanges [1, 3), regardless of question.
	tr := Wrap(answering{}, 1, FlapOutage(1, 2))
	ctx := context.Background()
	if _, err := tr.Exchange(ctx, srvA, mustQuery(t, 1, "a.gov.br.")); err != nil {
		t.Fatalf("exchange 0 (healthy): %v", err)
	}
	for i := 0; i < 2; i++ {
		if _, err := tr.Exchange(shortCtx(t), srvA, mustQuery(t, 2, "b.gov.br.")); !errors.Is(err, ErrInjected) {
			t.Fatalf("exchange %d inside outage: err = %v, want ErrInjected", 1+i, err)
		}
	}
	if _, err := tr.Exchange(ctx, srvA, mustQuery(t, 3, "c.gov.br.")); err != nil {
		t.Fatalf("exchange 3 (recovered): %v", err)
	}
	// Another server is unaffected by this one's counter.
	if _, err := tr.Exchange(ctx, srvB, mustQuery(t, 4, "b.gov.br.")); err != nil {
		t.Fatalf("other server during outage: %v", err)
	}
}

func TestDuplicateReplaysPreviousResponse(t *testing.T) {
	tr := Wrap(answering{}, 1, Rule{Class: Duplicate, First: 1})
	ctx := context.Background()
	first, err := tr.Exchange(ctx, srvA, mustQuery(t, 11, "a.gov.br."))
	if err != nil {
		t.Fatal(err)
	}
	stale, err := tr.Exchange(ctx, srvA, mustQuery(t, 12, "a.gov.br."))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, stale) {
		t.Error("duplicate fault did not replay the previous response")
	}
}

func TestDuplicateWithoutHistoryReflectsQuery(t *testing.T) {
	tr := Wrap(answering{}, 1, Transient(Duplicate, 1))
	q := mustQuery(t, 13, "a.gov.br.")
	resp, err := tr.Exchange(context.Background(), srvA, q)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp, q) {
		t.Error("first-contact duplicate should reflect the query bytes")
	}
	if m, err := dnswire.Decode(resp); err == nil && m.Header.Response {
		t.Error("reflected query has QR set; it would pass validation")
	}
}

func TestPersistentDrawIsContentKeyed(t *testing.T) {
	// Two transports with the same seed must make identical decisions;
	// the decision must not depend on how often the key was exchanged.
	mk := func() *Transport { return Wrap(answering{}, 42, Persistent(FlipRCode, 0.5)) }
	t1, t2 := mk(), mk()
	ctx := context.Background()
	names := []dnsname.Name{"a.gov.br.", "b.gov.br.", "c.gov.br.", "d.gov.br.", "e.gov.br.", "f.gov.br."}
	outcome := func(tr *Transport, n dnsname.Name) bool {
		resp, err := tr.Exchange(ctx, srvA, mustQuery(t, 5, n))
		if err != nil {
			t.Fatal(err)
		}
		m, err := dnswire.Decode(resp)
		if err != nil {
			t.Fatal(err)
		}
		return m.Header.RCode == dnswire.RCodeServFail
	}
	flipped := 0
	for _, n := range names {
		o1 := outcome(t1, n)
		for i := 0; i < 3; i++ { // repeats of the same key: same decision
			if outcome(t1, n) != o1 {
				t.Fatalf("%s: persistent decision changed across exchanges", n)
			}
		}
		if outcome(t2, n) != o1 {
			t.Fatalf("%s: same seed, different decision across transports", n)
		}
		if o1 {
			flipped++
		}
	}
	if flipped == 0 || flipped == len(names) {
		t.Logf("note: all-or-nothing draw (%d/%d) — legal but suspicious", flipped, len(names))
	}
}

func TestMutatorsAlwaysDetectable(t *testing.T) {
	q := dnswire.NewQuery(21, "probe.gov.br.", dnswire.TypeNS)
	resp := dnswire.NewResponse(q)
	resp.Header.Authoritative = true
	resp.Answers = []dnswire.RR{{Name: "probe.gov.br.", Class: dnswire.ClassIN, TTL: 60,
		Data: dnswire.NSData{Host: "ns1.probe.gov.br."}}}
	wire, err := dnswire.Encode(resp)
	if err != nil {
		t.Fatal(err)
	}

	// detectable reports whether a validating client would reject or
	// flag the mutated image against query q.
	detectable := func(mut []byte) bool {
		m, err := dnswire.Decode(mut)
		if err != nil {
			return true
		}
		if m.Header.ID != q.Header.ID || !m.Header.Response || m.Header.Truncated {
			return true
		}
		if m.Header.RCode != dnswire.RCodeNoError {
			return true
		}
		if len(m.Questions) > 0 {
			got, want := m.Questions[0], q.Questions[0]
			if got.Name != want.Name || got.Type != want.Type || got.Class != want.Class {
				return true
			}
		}
		return false
	}

	if !detectable(CorruptQIDWire(wire)) {
		t.Error("CorruptQID produced an acceptable response")
	}
	if !detectable(TruncateWire(wire)) {
		t.Error("TruncateWire produced an acceptable response")
	}
	if !detectable(MismatchQuestionWire(wire)) {
		t.Error("MismatchQuestion produced an acceptable response")
	}
	if !detectable(FlipRCodeWire(wire, dnswire.RCodeServFail)) {
		t.Error("FlipRCode produced an acceptable response")
	}
	for h := uint64(0); h < 64; h++ {
		if !detectable(MangleWire(h, wire)) {
			t.Errorf("MangleWire(h=%d) produced an acceptable response", h)
		}
	}
	// Mutators never touch their input.
	orig := append([]byte(nil), wire...)
	_ = CorruptQIDWire(wire)
	_ = TruncateWire(wire)
	_ = MismatchQuestionWire(wire)
	_ = FlipRCodeWire(wire, dnswire.RCodeServFail)
	_ = MangleWire(3, wire)
	if !bytes.Equal(orig, wire) {
		t.Error("a mutator modified its input slice")
	}
}

func TestTruncateWireKeepsQuestionDropsRecords(t *testing.T) {
	q := dnswire.NewQuery(31, "x.gov.br.", dnswire.TypeNS)
	resp := dnswire.NewResponse(q)
	resp.Answers = []dnswire.RR{{Name: "x.gov.br.", Class: dnswire.ClassIN, TTL: 60,
		Data: dnswire.NSData{Host: "ns1.x.gov.br."}}}
	wire, err := dnswire.Encode(resp)
	if err != nil {
		t.Fatal(err)
	}
	m, err := dnswire.Decode(TruncateWire(wire))
	if err != nil {
		t.Fatalf("truncated image must stay decodable: %v", err)
	}
	if !m.Header.Truncated {
		t.Error("TC bit not set")
	}
	if len(m.Answers)+len(m.Authority)+len(m.Additional) != 0 {
		t.Error("record sections survived truncation")
	}
	if len(m.Questions) != 1 || m.Questions[0].Name != "x.gov.br." {
		t.Errorf("question lost: %+v", m.Questions)
	}
}

func TestParseProfile(t *testing.T) {
	cases := []struct {
		spec    string
		classes []Class
		wantErr bool
	}{
		{spec: ""},
		{spec: "off"},
		{spec: "transient", classes: []Class{Drop, Delay, Truncate, FlipRCode, Duplicate, CorruptQID, MismatchQuestion, Mangle}},
		{spec: "persistent:0.3", classes: []Class{Drop, Duplicate, Truncate, CorruptQID, MismatchQuestion, Mangle, FlipRCode}},
		{spec: "flap:10", classes: []Class{Flap}},
		{spec: "truncate:0.5,qid", classes: []Class{Truncate, CorruptQID}},
		{spec: "bogus", wantErr: true},
		{spec: "truncate:nope", wantErr: true},
		{spec: "transient:0.5", wantErr: true},
	}
	for _, tc := range cases {
		rules, err := ParseProfile(tc.spec)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParseProfile(%q) succeeded, want error", tc.spec)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseProfile(%q): %v", tc.spec, err)
			continue
		}
		if len(rules) != len(tc.classes) {
			t.Errorf("ParseProfile(%q) = %d rules, want %d", tc.spec, len(rules), len(tc.classes))
			continue
		}
		for i, c := range tc.classes {
			if rules[i].Class != c {
				t.Errorf("ParseProfile(%q)[%d].Class = %s, want %s", tc.spec, i, rules[i].Class, c)
			}
		}
	}
}
