package chaos

import (
	"govdns/internal/dnswire"
)

// The exported wire mutators are pure functions over wire-format
// messages, exported separately from Transport so fuzz targets can seed
// their corpora with chaos-shaped packets. Each returns a fresh slice;
// the input is never modified. The Transport's own injections go through
// the *InPlace cores instead — it owns the response buffer its inner
// transport returned, so a header flip need not copy the packet. Each
// mutation is guaranteed *detectable*: a validating client can always
// reject the result by transaction ID, QR bit, question section, TC bit,
// or RCODE — corruption subtle enough to pass all of those is
// indistinguishable from a legitimate answer and no resolver can defend
// against it.

// wirePool supplies codec arenas for the mutators that re-encode
// (truncation, question rewriting) rather than patch bytes.
var wirePool = dnswire.NewPool()

// CorruptQIDWire flips bits in a copy of the message's transaction ID.
func CorruptQIDWire(wire []byte) []byte {
	return CorruptQIDWireInPlace(append([]byte(nil), wire...))
}

// CorruptQIDWireInPlace flips bits in the message's transaction ID,
// modifying and returning wire. The XOR patterns are non-zero in both
// bytes, so the result never equals the original ID.
func CorruptQIDWireInPlace(wire []byte) []byte {
	if len(wire) >= 2 {
		wire[0] ^= 0xA5
		wire[1] ^= 0x5A
	}
	return wire
}

// FlipRCodeWire rewrites the header RCODE nibble in a copy of wire.
func FlipRCodeWire(wire []byte, rcode dnswire.RCode) []byte {
	return FlipRCodeWireInPlace(append([]byte(nil), wire...), rcode)
}

// FlipRCodeWireInPlace rewrites the header RCODE nibble, modifying and
// returning wire.
func FlipRCodeWireInPlace(wire []byte, rcode dnswire.RCode) []byte {
	if len(wire) >= 4 {
		wire[3] = wire[3]&0xF0 | byte(rcode)&0x0F
	}
	return wire
}

// TruncateWire models truncation at the 512-byte UDP boundary: the TC
// bit is set and every record section is dropped, leaving only the
// header and question (what a server sends when nothing else fits).
// Wire images that do not decode just get the TC bit set on a copy.
func TruncateWire(wire []byte) []byte {
	a := wirePool.Get()
	defer a.Finish()
	m, err := a.Decode(wire)
	if err != nil {
		return setTCOnCopy(wire)
	}
	m.Header.Truncated = true
	m.Answers, m.Authority, m.Additional = nil, nil, nil
	out, err := a.Encode(m)
	if err != nil {
		return setTCOnCopy(wire)
	}
	return append([]byte(nil), out...)
}

func setTCOnCopy(wire []byte) []byte {
	out := append([]byte(nil), wire...)
	if len(out) >= 3 {
		out[2] |= 0x02
	}
	return out
}

// MismatchQuestionWire rewrites the echoed question so it no longer
// matches the query: the question type is XOR-perturbed (staying
// well-formed and encodable for any name length, unlike label
// rewriting). Undecodable wire images fall back to CorruptQID.
func MismatchQuestionWire(wire []byte) []byte {
	a := wirePool.Get()
	defer a.Finish()
	m, err := a.Decode(wire)
	if err != nil || len(m.Questions) == 0 {
		return CorruptQIDWire(wire)
	}
	m.Questions[0].Type ^= 0x55
	out, err := a.Encode(m)
	if err != nil {
		return CorruptQIDWire(wire)
	}
	return append([]byte(nil), out...)
}

// MangleWire applies seeded byte-level corruption to a copy of wire.
func MangleWire(h uint64, wire []byte) []byte {
	return MangleWireInPlace(h, append([]byte(nil), wire...))
}

// MangleWireInPlace applies seeded byte-level corruption, modifying and
// returning wire: the QR bit is cleared (so the packet can never be
// mistaken for a valid response) and up to three bytes chosen from h are
// XOR-flipped anywhere in the image — lengths, names, counts, RDATA —
// to exercise decoder robustness.
func MangleWireInPlace(h uint64, wire []byte) []byte {
	if len(wire) >= 3 {
		wire[2] &^= 0x80 // clear QR
	}
	if len(wire) == 0 {
		return wire
	}
	flips := 1 + int(h%3)
	for i := 0; i < flips; i++ {
		h ^= h >> 33
		h *= 0xff51afd7ed558ccd
		h ^= h >> 29
		pos := int(h % uint64(len(wire)))
		pat := byte(h>>8) | 1 // never a zero XOR
		wire[pos] ^= pat
		if pos == 2 {
			wire[2] &^= 0x80 // keep QR clear even if the flip landed here
		}
	}
	return wire
}
