package chaos

import (
	"govdns/internal/dnswire"
)

// The wire mutators are pure functions over wire-format messages,
// exported separately from Transport so fuzz targets can seed their
// corpora with chaos-shaped packets. Each returns a fresh slice; the
// input is never modified. Each mutation is guaranteed *detectable*: a
// validating client can always reject the result by transaction ID, QR
// bit, question section, TC bit, or RCODE — corruption subtle enough to
// pass all of those is indistinguishable from a legitimate answer and no
// resolver can defend against it.

// CorruptQID flips bits in the message's transaction ID. The XOR
// patterns are non-zero in both bytes, so the result never equals the
// original ID.
func CorruptQIDWire(wire []byte) []byte {
	out := append([]byte(nil), wire...)
	if len(out) >= 2 {
		out[0] ^= 0xA5
		out[1] ^= 0x5A
	}
	return out
}

// FlipRCode rewrites the header RCODE nibble.
func FlipRCodeWire(wire []byte, rcode dnswire.RCode) []byte {
	out := append([]byte(nil), wire...)
	if len(out) >= 4 {
		out[3] = out[3]&0xF0 | byte(rcode)&0x0F
	}
	return out
}

// TruncateWire models truncation at the 512-byte UDP boundary: the TC
// bit is set and every record section is dropped, leaving only the
// header and question (what a server sends when nothing else fits).
// Wire images that do not decode just get the TC bit set in place.
func TruncateWire(wire []byte) []byte {
	m, err := dnswire.Decode(wire)
	if err != nil {
		out := append([]byte(nil), wire...)
		if len(out) >= 3 {
			out[2] |= 0x02
		}
		return out
	}
	m.Header.Truncated = true
	m.Answers, m.Authority, m.Additional = nil, nil, nil
	out, err := dnswire.Encode(m)
	if err != nil {
		out = append([]byte(nil), wire...)
		if len(out) >= 3 {
			out[2] |= 0x02
		}
	}
	return out
}

// MismatchQuestion rewrites the echoed question so it no longer matches
// the query: the question type is XOR-perturbed (staying well-formed and
// encodable for any name length, unlike label rewriting). Undecodable
// wire images fall back to CorruptQID.
func MismatchQuestionWire(wire []byte) []byte {
	m, err := dnswire.Decode(wire)
	if err != nil || len(m.Questions) == 0 {
		return CorruptQIDWire(wire)
	}
	m.Questions[0].Type ^= 0x55
	out, err := dnswire.Encode(m)
	if err != nil {
		return CorruptQIDWire(wire)
	}
	return out
}

// MangleWire applies seeded byte-level corruption: the QR bit is cleared
// (so the packet can never be mistaken for a valid response) and up to
// three bytes chosen from h are XOR-flipped anywhere in the image —
// lengths, names, counts, RDATA — to exercise decoder robustness.
func MangleWire(h uint64, wire []byte) []byte {
	out := append([]byte(nil), wire...)
	if len(out) >= 3 {
		out[2] &^= 0x80 // clear QR
	}
	if len(out) == 0 {
		return out
	}
	flips := 1 + int(h%3)
	for i := 0; i < flips; i++ {
		h ^= h >> 33
		h *= 0xff51afd7ed558ccd
		h ^= h >> 29
		pos := int(h % uint64(len(out)))
		pat := byte(h>>8) | 1 // never a zero XOR
		out[pos] ^= pat
		if pos == 2 {
			out[2] &^= 0x80 // keep QR clear even if the flip landed here
		}
	}
	return out
}
