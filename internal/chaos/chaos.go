// Package chaos is a composable, seeded fault-injection layer for the
// resolver stack. It wraps any transport (simnet or UDP) and injects
// deterministic fault schedules — dropped and delayed packets, stale
// duplicate responses, TC-bit truncation, transaction-ID corruption,
// question-section mismatch, byte-level wire mangling, RCODE flips, and
// time-windowed server flapping. The simnet models the *statistics* of a
// hostile network (loss, jitter, blackholes); chaos models its
// *adversarial pathologies*, the ones § IV-C treats as measurement
// subject rather than noise.
//
// Determinism is the point: every fault decision is a pure function of
// the seed, the rule, and the query's content (server, qname, qtype) plus
// — for windowed rules — a per-key sequence number. Content-keyed
// persistent rules therefore answer the *same query* identically no
// matter how a scan is scheduled. Note what that does and does not give
// the differential harness in internal/measure: the transport is
// schedule-invariant, but a scan's *query set* is not — a resolver walk
// consults its zone cache, so whether a domain's walk queries an
// ancestor at all depends on which domain warmed the cache first. Under
// persistent chaos the harness therefore asserts serial reproducibility
// and monotone degradation, and reserves bit-identical cross-config
// digests for transient-free scans. Windowed (transient) rules and Flap
// additionally depend on arrival order; they exist to exercise the
// scanner's second-round recovery under serial scans.
package chaos

import (
	"context"
	"errors"
	"fmt"
	"net/netip"
	"sort"
	"strings"
	"sync"
	"time"

	"govdns/internal/dnsname"
	"govdns/internal/dnswire"
	"govdns/internal/obs"
	"govdns/internal/trace"
)

// ErrInjected marks transport errors produced by an injected fault, so
// tests and logs can tell manufactured failures from real ones.
var ErrInjected = errors.New("chaos: injected fault")

// Class identifies one fault taxonomy entry.
type Class int

const (
	// Drop loses the exchange: the query is never answered and the
	// caller waits out its deadline, exactly like a blackholed address.
	Drop Class = iota
	// Delay delivers the (clean) response only after Rule.Delay has
	// passed; a spike larger than the client timeout behaves like Drop
	// for that attempt.
	Delay
	// Duplicate delivers a stale copy of the previous response from the
	// same server instead of the fresh one — the late-datagram
	// misattribution a UDP resolver must discard by transaction ID. When
	// the server has not answered anything yet, the query itself is
	// reflected back (QR clear), which is equally rejectable.
	Duplicate
	// Truncate sets the TC bit and strips every record section, the
	// 512-byte-boundary behaviour of a server that cannot fit the
	// answer. Our EDNS-less NS probes always fit, so the client treats
	// truncation as damage, not as a TCP-fallback hint.
	Truncate
	// CorruptQID flips bits in the response's transaction ID.
	CorruptQID
	// MismatchQuestion rewrites the echoed question section so it no
	// longer matches the query.
	MismatchQuestion
	// Mangle applies seeded byte-level corruption to the wire image and
	// clears the QR bit so the damage is always detectable; silent
	// single-bit RDATA corruption is indefensible at the resolver and
	// deliberately out of scope.
	Mangle
	// FlipRCode rewrites the response code to SERVFAIL, the overloaded-
	// or-broken server that answers but refuses to be useful.
	FlipRCode
	// Flap makes the server unresponsive for a window of its own
	// exchange sequence — healthy, then dead mid-scan, then healthy
	// again. The window indexes the per-server counter, not the per-key
	// one.
	Flap

	numClasses
)

// String names the class for stats output and test failure messages.
func (c Class) String() string {
	switch c {
	case Drop:
		return "drop"
	case Delay:
		return "delay"
	case Duplicate:
		return "dup"
	case Truncate:
		return "truncate"
	case CorruptQID:
		return "qid"
	case MismatchQuestion:
		return "question"
	case Mangle:
		return "mangle"
	case FlipRCode:
		return "rcode"
	case Flap:
		return "flap"
	}
	return fmt.Sprintf("chaos.Class(%d)", int(c))
}

// Classes lists every fault class, for tests that iterate the taxonomy.
func Classes() []Class {
	out := make([]Class, 0, numClasses)
	for c := Class(0); c < numClasses; c++ {
		out = append(out, c)
	}
	return out
}

// Rule schedules one fault class.
//
// Windowing: a rule fires only while the fault index lies in
// [First, First+Count); Count == 0 leaves the window open-ended. The
// index is the per-(server, qname, qtype) exchange sequence for every
// class except Flap, which uses the per-server sequence (an outage is a
// property of the server, not of one question).
//
// Probability: within the window, Prob in (0, 1) gates the rule on a
// deterministic draw. For open-ended (persistent) rules the draw hashes
// only the seed, rule, and query content, so the decision is a constant
// per key — scans stay invariant across concurrency configs. Windowed
// rules include the index, so each exchange in the window draws afresh.
// Prob == 0 is treated as 1 (always fire inside the window).
type Rule struct {
	Class Class
	// Servers restricts the rule to these addresses; empty means every
	// server.
	Servers []netip.Addr
	// Prob gates firing inside the window; see the type comment.
	Prob float64
	// First and Count bound the firing window; see the type comment.
	First, Count int
	// Delay is the added latency for Class Delay.
	Delay time.Duration
}

// DefaultDelaySpike is the latency injected by Delay rules that leave
// Rule.Delay zero — large enough to blow the simulated-world client
// timeout (25ms), small against the real-world one (2s).
const DefaultDelaySpike = 100 * time.Millisecond

// Transient builds a rule that fires on the first count exchanges of
// each (server, qname, qtype) key and then stops — the fault a retry or
// the scanner's second round can outlast.
func Transient(class Class, count int) Rule {
	return Rule{Class: class, Count: count}
}

// Persistent builds an open-ended rule firing with probability prob,
// decided per query content (see Rule).
func Persistent(class Class, prob float64) Rule {
	return Rule{Class: class, Prob: prob}
}

// FlapOutage builds a Flap rule: each matched server drops its exchanges
// numbered [first, first+count).
func FlapOutage(first, count int) Rule {
	return Rule{Class: Flap, First: first, Count: count}
}

// DelaySpike builds an open-ended Delay rule with probability prob.
func DelaySpike(d time.Duration, prob float64) Rule {
	return Rule{Class: Delay, Prob: prob, Delay: d}
}

// Inner is the wrapped transport. It is structurally identical to
// resolver.Transport; chaos declares its own copy so the dependency
// points at dnswire only and test packages anywhere in the tree can
// import chaos without cycles.
type Inner interface {
	Exchange(ctx context.Context, server netip.Addr, query []byte) ([]byte, error)
}

// exKey identifies one query flow for sequence counting.
type exKey struct {
	server netip.Addr
	name   dnsname.Name
	qtype  dnswire.Type
}

// Transport injects scheduled faults into exchanges against an inner
// transport. It is safe for concurrent use.
type Transport struct {
	inner Inner
	seed  uint64
	rules []Rule

	mu     sync.Mutex
	keySeq map[exKey]int
	srvSeq map[netip.Addr]int
	last   map[netip.Addr][]byte

	// needLast is set at Wrap when some rule can replay a stale response
	// (Duplicate); without one there is no reason to copy every response
	// into the per-server replay buffer.
	needLast bool

	// releaser is the inner transport's buffer-release hook, cached at
	// Wrap (see ReleaseResponse).
	releaser interface{ ReleaseResponse([]byte) }

	// Counters live on an obs.Registry — a private one by default, or
	// the shared pipeline registry when AttachRegistry runs first —
	// so chaos injection shows up next to resolver and scanner metrics
	// in one snapshot instead of in a parallel counter system.
	metricsOnce sync.Once
	exchanges   *obs.Counter
	injected    [numClasses]*obs.Counter
}

// Wrap layers the fault schedule over inner. Rules are consulted in
// order and the first one that fires wins the exchange.
func Wrap(inner Inner, seed int64, rules ...Rule) *Transport {
	t := &Transport{
		inner:  inner,
		seed:   uint64(seed),
		rules:  append([]Rule(nil), rules...),
		keySeq: make(map[exKey]int),
		srvSeq: make(map[netip.Addr]int),
		last:   make(map[netip.Addr][]byte),
	}
	for _, r := range t.rules {
		if r.Class == Duplicate {
			t.needLast = true
		}
	}
	t.releaser, _ = inner.(interface{ ReleaseResponse([]byte) })
	return t
}

// ReleaseResponse forwards a pooled response buffer to the inner
// transport that produced it (resolver.ResponseReleaser, duck-typed to
// keep chaos free of a resolver import). Injections mutate pooled
// buffers in place and pass them through, so releasing through the
// chaos layer is releasing the inner transport's buffer; the one copy
// chaos itself makes — the Duplicate rule's replay buffer — is private,
// and pooling transports recognize and skip foreign buffers anyway.
func (t *Transport) ReleaseResponse(buf []byte) {
	if t.releaser != nil {
		t.releaser.ReleaseResponse(buf)
	}
}

// AttachRegistry binds the transport's counters onto r
// (chaos_exchanges_total and the chaos_injected_total{class} family).
// Call it before the first Exchange; afterwards the transport has
// already bound a private registry and the call is a no-op.
func (t *Transport) AttachRegistry(r *obs.Registry) {
	t.metricsOnce.Do(func() { t.bind(r) })
}

func (t *Transport) metrics() {
	t.metricsOnce.Do(func() { t.bind(obs.NewRegistry()) })
}

func (t *Transport) bind(r *obs.Registry) {
	t.exchanges = r.Counter("chaos_exchanges_total")
	vec := r.CounterVecKeyed("chaos_injected_total", "class")
	for c := Class(0); c < numClasses; c++ {
		t.injected[c] = vec.With(c.String())
	}
}

// Stats is a snapshot of injection counters.
type Stats struct {
	// Exchanges counts every Exchange call seen by the transport.
	Exchanges uint64
	// Injected counts fired faults per class.
	Injected map[Class]uint64
}

// Total sums the injected faults across classes.
func (s Stats) Total() uint64 {
	var n uint64
	for _, v := range s.Injected {
		n += v
	}
	return n
}

// String renders the snapshot compactly, classes in taxonomy order.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "exchanges=%d injected=%d", s.Exchanges, s.Total())
	classes := make([]Class, 0, len(s.Injected))
	for c := range s.Injected {
		classes = append(classes, c)
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })
	for _, c := range classes {
		fmt.Fprintf(&b, " %s=%d", c, s.Injected[c])
	}
	return b.String()
}

// Stats returns the current counters (only classes that fired appear in
// the map).
func (t *Transport) Stats() Stats {
	t.metrics()
	s := Stats{Exchanges: t.exchanges.Load(), Injected: make(map[Class]uint64)}
	for c := Class(0); c < numClasses; c++ {
		if n := t.injected[c].Load(); n > 0 {
			s.Injected[c] = n
		}
	}
	return s
}

// Exchange implements the resolver transport, injecting at most one
// scheduled fault per call.
func (t *Transport) Exchange(ctx context.Context, server netip.Addr, query []byte) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	t.metrics()
	t.exchanges.Inc()
	q, ok := dnswire.PeekQuestion(query)
	if !ok {
		// Not a query we can key a schedule on (undecodable or empty
		// question section); deliver untouched.
		return t.inner.Exchange(ctx, server, query)
	}
	k := exKey{server: server, name: q.Name, qtype: q.Type}
	t.mu.Lock()
	seq := t.keySeq[k]
	t.keySeq[k]++
	ssq := t.srvSeq[server]
	t.srvSeq[server]++
	t.mu.Unlock()

	rule := t.pick(server, k, seq, ssq)
	if rule != nil {
		switch rule.Class {
		case Drop, Flap:
			t.injected[rule.Class].Inc()
			annotateInjection(ctx, rule.Class)
			// Like a blackhole: the answer never comes.
			<-ctx.Done()
			return nil, fmt.Errorf("%w: %s: %v", ErrInjected, rule.Class, ctx.Err())
		case Delay:
			t.injected[Delay].Inc()
			annotateInjection(ctx, Delay)
			d := rule.Delay
			if d <= 0 {
				d = DefaultDelaySpike
			}
			timer := time.NewTimer(d)
			select {
			case <-ctx.Done():
				timer.Stop()
				return nil, fmt.Errorf("%w: delay: %v", ErrInjected, ctx.Err())
			case <-timer.C:
			}
			rule = nil // delivered clean, just late
		}
	}

	resp, err := t.inner.Exchange(ctx, server, query)
	if err != nil {
		return nil, err
	}
	// The inner transport hands over ownership of the response buffer
	// (both in-tree transports return a fresh slice per exchange), so the
	// byte-patching injections below mutate it in place; only the replay
	// buffer needs a private copy, and only when a Duplicate rule can
	// ever read it back.
	var stale []byte
	if t.needLast {
		t.mu.Lock()
		stale = t.last[server]
		t.last[server] = append([]byte(nil), resp...)
		t.mu.Unlock()
	}
	if rule == nil {
		return resp, nil
	}

	t.injected[rule.Class].Inc()
	annotateInjection(ctx, rule.Class)
	switch rule.Class {
	case Duplicate:
		if stale == nil {
			// Nothing from this server to replay yet: reflect the query
			// (QR clear), the garbage datagram every socket eventually
			// receives. The query buffer belongs to the caller (it may
			// borrow a codec arena), so the reflection is a copy.
			return append([]byte(nil), query...), nil
		}
		return stale, nil
	case Truncate:
		return TruncateWire(resp), nil
	case CorruptQID:
		return CorruptQIDWireInPlace(resp), nil
	case MismatchQuestion:
		return MismatchQuestionWire(resp), nil
	case Mangle:
		// The corruption pattern follows the same indexing as the firing
		// draw: open-ended rules derive it from content alone so two
		// exchanges of the same query are mangled identically no matter
		// how scheduling interleaved them with other traffic.
		mangleIdx := seq
		if rule.Count == 0 {
			mangleIdx = -1
		}
		return MangleWireInPlace(t.draw(0x6d616e67, server, k, mangleIdx), resp), nil
	case FlipRCode:
		return FlipRCodeWireInPlace(resp, dnswire.RCodeServFail), nil
	}
	return resp, nil
}

// annotateInjection marks a fired fault on the exchange span the
// resolver client scoped into ctx, so a trace shows which wire
// exchange suffered which injection. A no-op on untraced exchanges.
func annotateInjection(ctx context.Context, class Class) {
	rec, span := trace.From(ctx)
	if rec == nil {
		return
	}
	rec.Event(span, trace.KindChaos, class.String())
}

// pick returns the first rule that fires for this exchange, or nil.
func (t *Transport) pick(server netip.Addr, k exKey, seq, srvSeq int) *Rule {
	for i := range t.rules {
		r := &t.rules[i]
		if len(r.Servers) > 0 && !containsAddr(r.Servers, server) {
			continue
		}
		idx := seq
		if r.Class == Flap {
			idx = srvSeq
		}
		if idx < r.First {
			continue
		}
		if r.Count > 0 && idx >= r.First+r.Count {
			continue
		}
		if r.Prob > 0 && r.Prob < 1 {
			// Open-ended rules draw without the index so the decision is
			// a constant of the query content; windowed rules redraw per
			// exchange.
			drawIdx := -1
			if r.Count > 0 {
				drawIdx = idx
			}
			h := t.draw(uint64(i), server, k, drawIdx)
			if float64(h>>11)/(1<<53) >= r.Prob {
				continue
			}
		}
		return r
	}
	return nil
}

// draw hashes the seed, a salt, and the query content (plus idx when
// idx >= 0) into a deterministic 64-bit value.
func (t *Transport) draw(salt uint64, server netip.Addr, k exKey, idx int) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(b byte) { h = (h ^ uint64(b)) * prime64 }
	mix64 := func(v uint64) {
		for s := 0; s < 64; s += 8 {
			mix(byte(v >> s))
		}
	}
	mix64(t.seed)
	mix64(salt)
	a16 := server.As16()
	for _, b := range a16 {
		mix(b)
	}
	for i := 0; i < len(k.name); i++ {
		mix(k.name[i])
	}
	mix(byte(k.qtype))
	mix(byte(k.qtype >> 8))
	if idx >= 0 {
		mix64(uint64(idx))
	}
	// A final avalanche (splitmix64 tail) so low bits are usable.
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

func containsAddr(addrs []netip.Addr, a netip.Addr) bool {
	for _, x := range addrs {
		if x == a {
			return true
		}
	}
	return false
}
