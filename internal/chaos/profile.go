package chaos

import (
	"fmt"
	"strconv"
	"strings"
)

// Profiles map the govscan -chaos flag onto fault schedules. A spec is a
// comma-separated list of entries, each a preset or a single class,
// optionally parameterized:
//
//	transient          every class, windowed to the first exchanges of
//	                   each key — the shape the second round must recover
//	persistent[:p]     every response-corrupting class plus drop, each
//	                   open-ended at probability p (default 0.1)
//	flap[:n]           every server dead for exchanges [5, 5+n) of its
//	                   own sequence (default n=25)
//	drop[:p] delay[:p] dup[:p] truncate[:p] qid[:p]
//	question[:p] mangle[:p] rcode[:p]
//	                   one open-ended class at probability p (default 1)
//
// Examples: "transient", "persistent:0.3", "truncate:0.5,flap",
// "qid,question".

// transientMismatchWindow is sized past one full query budget
// (attempts × (1 + discard budget)) so a round-one probe burns the
// schedule out and the second round sees a clean server.
const (
	transientTimeoutWindow  = 3  // ≥ default attempts, each one exchange
	transientMismatchWindow = 15 // ≥ attempts × (1 + discards)
)

// ParseProfile translates a -chaos spec into a fault schedule. An empty
// spec (or "off") yields no rules.
func ParseProfile(spec string) ([]Rule, error) {
	var rules []Rule
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "off" {
		return nil, nil
	}
	for _, entry := range strings.Split(spec, ",") {
		name, arg, hasArg := strings.Cut(strings.TrimSpace(entry), ":")
		var prob float64
		if hasArg {
			p, err := strconv.ParseFloat(arg, 64)
			if err != nil || p <= 0 {
				return nil, fmt.Errorf("chaos: bad parameter %q in %q", arg, entry)
			}
			prob = p
		}
		switch name {
		case "transient":
			if hasArg {
				return nil, fmt.Errorf("chaos: %q takes no parameter", name)
			}
			rules = append(rules,
				Transient(Drop, transientTimeoutWindow),
				Transient(Delay, transientTimeoutWindow),
				Transient(Truncate, transientTimeoutWindow),
				Transient(FlipRCode, 1),
				Transient(Duplicate, 2),
				Transient(CorruptQID, transientMismatchWindow),
				Transient(MismatchQuestion, transientMismatchWindow),
				Transient(Mangle, transientMismatchWindow),
			)
		case "persistent":
			p := prob
			if p == 0 {
				p = 0.1
			}
			for _, c := range []Class{Drop, Duplicate, Truncate, CorruptQID, MismatchQuestion, Mangle, FlipRCode} {
				rules = append(rules, Persistent(c, p))
			}
		case "flap":
			n := 25
			if hasArg {
				v, err := strconv.Atoi(arg)
				if err != nil || v <= 0 {
					return nil, fmt.Errorf("chaos: bad flap window %q", arg)
				}
				n = v
			}
			rules = append(rules, FlapOutage(5, n))
		case "drop":
			rules = append(rules, Persistent(Drop, prob))
		case "delay":
			rules = append(rules, DelaySpike(DefaultDelaySpike, prob))
		case "dup":
			rules = append(rules, Persistent(Duplicate, prob))
		case "truncate":
			rules = append(rules, Persistent(Truncate, prob))
		case "qid":
			rules = append(rules, Persistent(CorruptQID, prob))
		case "question":
			rules = append(rules, Persistent(MismatchQuestion, prob))
		case "mangle":
			rules = append(rules, Persistent(Mangle, prob))
		case "rcode":
			rules = append(rules, Persistent(FlipRCode, prob))
		default:
			return nil, fmt.Errorf("chaos: unknown profile entry %q", entry)
		}
	}
	return rules, nil
}
