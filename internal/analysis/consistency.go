package analysis

import (
	"sort"

	"govdns/internal/dnsname"
	"govdns/internal/measure"
	"govdns/internal/registrar"
	"govdns/internal/stats"
)

// ConsistencyClass is the Sommese et al. parent/child classification the
// paper follows in § IV-D.
type ConsistencyClass int

// Consistency classes.
const (
	// ClassEqual: P == C.
	ClassEqual ConsistencyClass = iota + 1
	// ClassParentSuperset: P ⊃ C.
	ClassParentSuperset
	// ClassChildSuperset: C ⊃ P.
	ClassChildSuperset
	// ClassIntersect: the sets overlap but neither contains the other.
	ClassIntersect
	// ClassDisjointIPOverlap: P ∩ C = ∅ but their servers share
	// addresses.
	ClassDisjointIPOverlap
	// ClassDisjoint: no overlap at all.
	ClassDisjoint
	// ClassUnresponsive: no child view could be obtained.
	ClassUnresponsive
)

// String returns the class mnemonic.
func (c ConsistencyClass) String() string {
	switch c {
	case ClassEqual:
		return "P=C"
	case ClassParentSuperset:
		return "P>C"
	case ClassChildSuperset:
		return "C>P"
	case ClassIntersect:
		return "intersect"
	case ClassDisjointIPOverlap:
		return "disjoint-ip-overlap"
	case ClassDisjoint:
		return "disjoint"
	case ClassUnresponsive:
		return "unresponsive"
	default:
		return "unknown"
	}
}

// Classify determines the consistency class of one scan result.
func Classify(r *measure.DomainResult) ConsistencyClass {
	if !r.Responsive() {
		return ClassUnresponsive
	}
	p := nameSet(r.ParentNS)
	c := nameSet(r.ChildNS())
	if len(c) == 0 {
		return ClassUnresponsive
	}
	inter := 0
	for host := range c {
		if p[host] {
			inter++
		}
	}
	switch {
	case inter == len(p) && inter == len(c):
		return ClassEqual
	case inter == len(c) && len(p) > len(c):
		return ClassParentSuperset
	case inter == len(p) && len(c) > len(p):
		return ClassChildSuperset
	case inter > 0:
		return ClassIntersect
	}
	// Disjoint: compare the address sets of the two views.
	pAddrs := make(map[string]bool)
	for host := range p {
		for _, a := range r.Addrs[host] {
			pAddrs[a.String()] = true
		}
	}
	for host := range c {
		for _, a := range r.Addrs[host] {
			if pAddrs[a.String()] {
				return ClassDisjointIPOverlap
			}
		}
	}
	return ClassDisjoint
}

func nameSet(names []dnsname.Name) map[dnsname.Name]bool {
	out := make(map[dnsname.Name]bool, len(names))
	for _, n := range names {
		out[n] = true
	}
	return out
}

// ConsistencyStats summarizes Figs. 13 and 14.
type ConsistencyStats struct {
	// Responsive is the number of classified (responsive) domains.
	Responsive int
	// Counts tallies each class over responsive domains.
	Counts map[ConsistencyClass]int
	// EqualPct is the P=C share of responsive domains (76.8% in the
	// paper).
	EqualPct float64
	// ByLevel maps DNS hierarchy level to its P=C share (93.5% at level
	// 2 vs <=77% deeper).
	ByLevel map[int]float64
	// InconsistentWithDefectPct is the share of P≠C domains that also
	// have a partially defective delegation (40.9%).
	InconsistentWithDefectPct float64
	// DisagreementPerCountry maps country code to its P≠C share of
	// responsive domains (Fig. 14).
	DisagreementPerCountry map[string]float64
	// SingleLabelNS counts inconsistent domains exposing a non-FQDN
	// (single-label) nameserver — the trailing-dot typo artifact.
	SingleLabelNS int
}

// Consistency computes ConsistencyStats from scan results.
func Consistency(results []*measure.DomainResult, m *Mapper) *ConsistencyStats {
	cs := &ConsistencyStats{
		Counts:                 make(map[ConsistencyClass]int),
		ByLevel:                make(map[int]float64),
		DisagreementPerCountry: make(map[string]float64),
	}
	levelTotals := make(map[int]int)
	levelEqual := make(map[int]int)
	countryTotals := make(map[string]int)
	countryDisagree := make(map[string]int)
	inconsistent, inconsistentDefect := 0, 0

	for _, r := range results {
		if !r.HasData() {
			continue
		}
		class := Classify(r)
		if class == ClassUnresponsive {
			continue
		}
		cs.Responsive++
		cs.Counts[class]++

		level := r.Domain.Level()
		levelTotals[level]++
		code := ""
		if c, ok := m.CountryOf(r.Domain); ok {
			code = c.Code
		}
		countryTotals[code]++

		if class == ClassEqual {
			levelEqual[level]++
			continue
		}
		countryDisagree[code]++
		inconsistent++
		if r.PartiallyDefective() {
			inconsistentDefect++
		}
		for _, host := range append(append([]dnsname.Name{}, r.ParentNS...), r.ChildNS()...) {
			if host.Level() == 1 {
				cs.SingleLabelNS++
				break
			}
		}
	}

	cs.EqualPct = stats.Pct(cs.Counts[ClassEqual], cs.Responsive)
	for level, total := range levelTotals {
		cs.ByLevel[level] = stats.Pct(levelEqual[level], total)
	}
	cs.InconsistentWithDefectPct = stats.Pct(inconsistentDefect, inconsistent)
	for code, total := range countryTotals {
		cs.DisagreementPerCountry[code] = stats.Pct(countryDisagree[code], total)
	}
	return cs
}

// InconsistencyHijack is § IV-D's second hijack probe: dangling records
// reachable only through inconsistency — the parent (or child) points at
// a nameserver domain that is registrable even though the delegation is
// not defective (e.g. a parking service answers).
type InconsistencyHijack struct {
	// AvailableNSDomains are the registrable nameserver domains, sorted.
	AvailableNSDomains []dnsname.Name
	// AffectedDomains and Countries count the blast radius (26 domains
	// in 7 countries in the paper).
	AffectedDomains int
	Countries       int
	// MinPrice is the cheapest quote (300 USD in the paper).
	MinPrice registrar.Cents
	// Prices are all quotes, ascending.
	Prices []registrar.Cents
}

// InconsistencyHijacks checks the non-defective inconsistent domains for
// registrable nameserver domains among hosts not present in both views.
func InconsistencyHijacks(results []*measure.DomainResult, m *Mapper, reg *registrar.Registry) *InconsistencyHijack {
	ih := &InconsistencyHijack{}
	nsDomains := make(map[dnsname.Name]bool)
	countries := make(map[string]bool)

	for _, r := range results {
		if !r.HasData() || r.HasDefect() {
			continue
		}
		class := Classify(r)
		if class == ClassEqual || class == ClassUnresponsive {
			continue
		}
		p := nameSet(r.ParentNS)
		c := nameSet(r.ChildNS())
		affected := false
		for _, host := range append(append([]dnsname.Name{}, r.ParentNS...), r.ChildNS()...) {
			if p[host] && c[host] {
				continue // present in both views
			}
			if m.IsPrivateHost(r.Domain, host) {
				continue
			}
			nsDomain := NSDomain(host)
			if !reg.Available(nsDomain) {
				continue
			}
			nsDomains[nsDomain] = true
			affected = true
		}
		if affected {
			ih.AffectedDomains++
			if country, ok := m.CountryOf(r.Domain); ok {
				countries[country.Code] = true
			}
		}
	}

	for nsDomain := range nsDomains {
		ih.AvailableNSDomains = append(ih.AvailableNSDomains, nsDomain)
	}
	sort.Slice(ih.AvailableNSDomains, func(i, j int) bool {
		return dnsname.Compare(ih.AvailableNSDomains[i], ih.AvailableNSDomains[j]) < 0
	})
	ih.Countries = len(countries)
	ih.Prices = reg.Quote(ih.AvailableNSDomains)
	if len(ih.Prices) > 0 {
		ih.MinPrice = ih.Prices[0]
	}
	return ih
}
