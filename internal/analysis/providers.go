package analysis

import (
	"sort"

	"govdns/internal/dnsname"
	"govdns/internal/dnswire"
	"govdns/internal/pdns"
	"govdns/internal/providers"
	"govdns/internal/stats"
)

// ProviderUsage is one provider's footprint in one year (a Table II or
// Table III row).
type ProviderUsage struct {
	// Label identifies the provider (display name or nameserver-domain
	// group).
	Label string
	// Domains uses the provider for at least one nameserver.
	Domains int
	// DomainsPct is Domains over all domains active that year.
	DomainsPct float64
	// SingleProvider counts d_1P: domains relying on this provider for
	// every nameserver.
	SingleProvider int
	// SingleProviderPct is SingleProvider over all domains that year.
	SingleProviderPct float64
	// SubRegions is the number of Table II groups with at least one
	// using domain; SubRegionsPct is its share of all groups.
	SubRegions    int
	SubRegionsPct float64
	// Countries is the number of countries with at least one using
	// domain.
	Countries int
}

// nonProviderLabel marks hosts outside the label set of interest
// inside a domain's per-year label set: it makes such hosts defeat the
// single-provider test without ever being aggregated as a provider.
// The NUL prefix keeps it from colliding with any real label.
const nonProviderLabel = "\x00other"

// providerYear indexes one year of provider usage.
type providerYear struct {
	totalDomains int
	totalGroups  int
	// perLabel aggregates domains/d1P/groups/countries by label.
	domains   map[string]int
	d1p       map[string]int
	groups    map[string]map[string]bool
	countries map[string]map[string]bool
}

// ProviderAnalysis computes provider usage from PDNS data.
type ProviderAnalysis struct {
	catalog *providers.Catalog
	mapper  *Mapper
	grouper map[string]string
	nGroups int
}

// NewProviderAnalysis builds the analysis with the paper's grouping (top
// country codes become singleton groups).
func NewProviderAnalysis(catalog *providers.Catalog, m *Mapper, topCodes []string) *ProviderAnalysis {
	grouper, n := m.Groups(topCodes)
	return &ProviderAnalysis{catalog: catalog, mapper: m, grouper: grouper, nGroups: n}
}

// yearUsage scans one year of the view and indexes usage per label. The
// labeling function maps an NS hostname to a provider label ("" = not a
// provider / skip).
func (pa *ProviderAnalysis) yearUsage(view *pdns.View, year int, label func(dnsname.Name) string) *providerYear {
	py := &providerYear{
		totalGroups: pa.nGroups,
		domains:     make(map[string]int),
		d1p:         make(map[string]int),
		groups:      make(map[string]map[string]bool),
		countries:   make(map[string]map[string]bool),
	}
	idx := indexByDomain(view)
	first, last := pdns.YearRange(year)
	for _, name := range idx.names {
		sets := idx.sets[name]
		if _, ok := NSModeForYear(sets, year); !ok {
			continue
		}
		py.totalDomains++
		labels := make(map[string]bool)
		all := 0
		for i := range sets {
			rs := &sets[i]
			if rs.RRType != dnswire.TypeNS || !rs.Overlaps(first, last) {
				continue
			}
			all++
			host, err := dnsname.Parse(rs.RData)
			if err != nil {
				continue
			}
			if l := label(host); l != "" {
				labels[l] = true
			} else {
				labels[nonProviderLabel] = true
			}
		}
		_ = all
		code := ""
		group := ""
		if c, ok := pa.mapper.CountryOf(name); ok {
			code = c.Code
			group = pa.grouper[code]
		}
		single := len(labels) == 1
		for l := range labels {
			if l == nonProviderLabel {
				continue
			}
			py.domains[l]++
			if single {
				py.d1p[l]++
			}
			if group != "" {
				if py.groups[l] == nil {
					py.groups[l] = make(map[string]bool)
				}
				py.groups[l][group] = true
			}
			if code != "" {
				if py.countries[l] == nil {
					py.countries[l] = make(map[string]bool)
				}
				py.countries[l][code] = true
			}
		}
	}
	return py
}

func (py *providerYear) usage(label string) ProviderUsage {
	return ProviderUsage{
		Label:             label,
		Domains:           py.domains[label],
		DomainsPct:        stats.Pct(py.domains[label], py.totalDomains),
		SingleProvider:    py.d1p[label],
		SingleProviderPct: stats.Pct(py.d1p[label], py.totalDomains),
		SubRegions:        len(py.groups[label]),
		SubRegionsPct:     stats.Pct(len(py.groups[label]), py.totalGroups),
		Countries:         len(py.countries[label]),
	}
}

// majorRows turns one year's usage index into the Table II rows (one
// per major provider, sorted by label). Shared by the view and corpus
// paths.
func (pa *ProviderAnalysis) majorRows(py *providerYear) []ProviderUsage {
	var out []ProviderUsage
	for _, p := range pa.catalog.Major() {
		out = append(out, py.usage(p.Display))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Label < out[j].Label })
	return out
}

// topRows turns one year's usage index into the Table III rows (every
// group ranked by countries served, top n). Shared by the view and
// corpus paths.
func topRows(py *providerYear, n int) []ProviderUsage {
	var out []ProviderUsage
	for _, label := range sortedKeys(py.countries) {
		out = append(out, py.usage(label))
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Countries != out[j].Countries {
			return out[i].Countries > out[j].Countries
		}
		return out[i].Domains > out[j].Domains
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// MajorProviders computes Table II: usage of the catalog's major
// providers in the given year.
func (pa *ProviderAnalysis) MajorProviders(view *pdns.View, year int) []ProviderUsage {
	py := pa.yearUsage(view, year, func(host dnsname.Name) string {
		if p, ok := pa.catalog.Identify(host); ok {
			return p.Display
		}
		return ""
	})
	return pa.majorRows(py)
}

// TopProviders computes Table III: every nameserver-domain group ranked
// by the number of countries served, top n.
func (pa *ProviderAnalysis) TopProviders(view *pdns.View, year, n int) []ProviderUsage {
	py := pa.yearUsage(view, year, func(host dnsname.Name) string {
		label, _ := pa.catalog.GroupLabel(host)
		return label
	})
	return topRows(py, n)
}

// GovProviderShare returns, for one country, the share of that country's
// responsive domains using each provider group (the paper's gov.cn
// hichina 38% / xincache 19% / dns-diy 10.8% observation). Shares are
// over the country's domains in the given year.
func (pa *ProviderAnalysis) GovProviderShare(view *pdns.View, year int, code string) map[string]float64 {
	idx := indexByDomain(view)
	first, last := pdns.YearRange(year)
	counts := make(map[string]int)
	total := 0
	for _, name := range idx.names {
		c, ok := pa.mapper.CountryOf(name)
		if !ok || c.Code != code {
			continue
		}
		sets := idx.sets[name]
		if _, ok := NSModeForYear(sets, year); !ok {
			continue
		}
		total++
		labels := make(map[string]bool)
		for i := range sets {
			rs := &sets[i]
			if rs.RRType != dnswire.TypeNS || !rs.Overlaps(first, last) {
				continue
			}
			host, err := dnsname.Parse(rs.RData)
			if err != nil {
				continue
			}
			if label, known := pa.catalog.GroupLabel(host); known {
				labels[label] = true
			}
		}
		for l := range labels {
			counts[l]++
		}
	}
	out := make(map[string]float64, len(counts))
	for l, n := range counts {
		out[l] = stats.Pct(n, total)
	}
	return out
}
