package analysis

import (
	"sort"

	"govdns/internal/dnsname"
	"govdns/internal/dnswire"
	"govdns/internal/pdns"
	"govdns/internal/providers"
)

// The paper's § V-A leaves as future work the question of whether
// hijacking attacks can be detected in historical PDNS data, noting that
// legitimate infrastructure changes make verification hard. This
// analysis implements a conservative forensic heuristic over the RAW
// (unfiltered) passive-DNS view: a takeover candidate is a short-lived
// NS record set whose nameserver domain is
//
//   - outside the victim's government suffix (not an internal move),
//   - not a known provider from the catalog (not a managed-DNS trial),
//   - and used by almost no other domain in the dataset (real hosters
//     serve many customers; attacker infrastructure serves few).
//
// Legitimate short-lived records — DDoS-protection flips, provider
// trials — fail the popularity or catalog test, which is what keeps the
// false-positive rate workable.

// SuspiciousTransition is one takeover candidate.
type SuspiciousTransition struct {
	// Domain is the possible victim.
	Domain dnsname.Name
	// NSDomain is the suspicious nameserver domain.
	NSDomain dnsname.Name
	// From and To bound the window the records were seen.
	From, To pdns.Day
	// DurationDays is the window length.
	DurationDays int
}

// HijackForensicsConfig tunes the detector.
type HijackForensicsConfig struct {
	// MaxDurationDays is the longest window still considered transient
	// (default 45).
	MaxDurationDays int
	// MaxNSDomainSpread is the largest number of distinct domains a
	// nameserver domain may serve and still look like attacker
	// infrastructure (default 3).
	MaxNSDomainSpread int
}

func (c HijackForensicsConfig) withDefaults() HijackForensicsConfig {
	if c.MaxDurationDays == 0 {
		c.MaxDurationDays = 45
	}
	if c.MaxNSDomainSpread == 0 {
		c.MaxNSDomainSpread = 3
	}
	return c
}

// SuspiciousTransitions hunts the raw PDNS view for takeover candidates.
func SuspiciousTransitions(raw *pdns.View, m *Mapper, catalog *providers.Catalog, cfg HijackForensicsConfig) []SuspiciousTransition {
	cfg = cfg.withDefaults()

	// Pass 1: spread of each nameserver domain across owner domains.
	spread := make(map[dnsname.Name]map[dnsname.Name]bool)
	for _, rs := range raw.Sets {
		if rs.RRType != dnswire.TypeNS {
			continue
		}
		host, err := dnsname.Parse(rs.RData)
		if err != nil {
			continue
		}
		nsDomain := NSDomain(host)
		if spread[nsDomain] == nil {
			spread[nsDomain] = make(map[dnsname.Name]bool)
		}
		spread[nsDomain][rs.RRName] = true
	}

	// Pass 2: transient, out-of-pattern, unpopular NS records.
	type key struct {
		domain   dnsname.Name
		nsDomain dnsname.Name
	}
	windows := make(map[key]*SuspiciousTransition)
	for _, rs := range raw.Sets {
		if rs.RRType != dnswire.TypeNS || rs.DurationDays() > cfg.MaxDurationDays {
			continue
		}
		host, err := dnsname.Parse(rs.RData)
		if err != nil {
			continue
		}
		if m.IsPrivateHost(rs.RRName, host) {
			continue // internal infrastructure move
		}
		if _, known := catalog.Identify(host); known {
			continue // managed-DNS trial
		}
		nsDomain := NSDomain(host)
		if len(spread[nsDomain]) > cfg.MaxNSDomainSpread {
			continue // real hosters serve many domains
		}
		k := key{domain: rs.RRName, nsDomain: nsDomain}
		if existing, ok := windows[k]; ok {
			if rs.FirstSeen < existing.From {
				existing.From = rs.FirstSeen
			}
			if rs.LastSeen > existing.To {
				existing.To = rs.LastSeen
			}
			existing.DurationDays = int(existing.To-existing.From) + 1
			continue
		}
		windows[k] = &SuspiciousTransition{
			Domain:       rs.RRName,
			NSDomain:     nsDomain,
			From:         rs.FirstSeen,
			To:           rs.LastSeen,
			DurationDays: rs.DurationDays(),
		}
	}

	out := make([]SuspiciousTransition, 0, len(windows))
	for _, t := range windows {
		out = append(out, *t)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Domain != out[j].Domain {
			return dnsname.Compare(out[i].Domain, out[j].Domain) < 0
		}
		return out[i].NSDomain < out[j].NSDomain
	})
	return out
}
