package analysis

import (
	"sort"

	"govdns/internal/dnsname"
	"govdns/internal/dnswire"
	"govdns/internal/pdns"
	"govdns/internal/stats"
)

// NSDaily computes the paper's Fig. 5 representation: for one domain and
// one year, the number of nameservers active on each day that had any
// active NS record, from the domain's PDNS record sets.
func NSDaily(sets []pdns.RecordSet, year int) []int {
	first, last := pdns.YearRange(year)
	days := int(last-first) + 1
	counts := make([]int, days)
	for i := range sets {
		rs := &sets[i]
		if rs.RRType != dnswire.TypeNS || !rs.Overlaps(first, last) {
			continue
		}
		from, to := rs.FirstSeen, rs.LastSeen
		if from < first {
			from = first
		}
		if to > last {
			to = last
		}
		for d := from; d <= to; d++ {
			counts[d-first]++
		}
	}
	var active []int
	for _, c := range counts {
		if c > 0 {
			active = append(active, c)
		}
	}
	return active
}

// NSModeForYear returns the mode of NSDaily — the paper's per-year
// representative nameserver count for a domain. ok is false when the
// domain had no active NS records that year.
func NSModeForYear(sets []pdns.RecordSet, year int) (int, bool) {
	return stats.Mode(NSDaily(sets, year))
}

// YearStats aggregates one study year of PDNS data (Figs. 2, 3, 7).
type YearStats struct {
	Year int
	// Domains is the number of distinct names with active NS records.
	Domains int
	// Countries is the number of countries those names map to.
	Countries int
	// Nameservers is the number of distinct NS hostnames seen.
	Nameservers int
	// SingleNS is the number of d_1NS domains (NS-count mode == 1).
	SingleNS int
	// SingleNSPrivate counts d_1NS whose nameserver is in-government.
	SingleNSPrivate int
	// PrivateAll counts all domains whose nameservers that year are all
	// in-government.
	PrivateAll int
}

// SingleNSPct returns the d_1NS share of all domains.
func (y YearStats) SingleNSPct() float64 { return stats.Pct(y.SingleNS, y.Domains) }

// PrivateSinglePct returns the share of d_1NS using private deployments
// (Fig. 7's upper series).
func (y YearStats) PrivateSinglePct() float64 { return stats.Pct(y.SingleNSPrivate, y.SingleNS) }

// PrivateAllPct returns the share of all domains on private deployments
// (Fig. 7's lower series).
func (y YearStats) PrivateAllPct() float64 { return stats.Pct(y.PrivateAll, y.Domains) }

// domainYear holds one domain's records for reuse across years.
type domainIndex struct {
	names []dnsname.Name
	sets  map[dnsname.Name][]pdns.RecordSet
}

// indexByDomain groups a view's NS record sets by owner.
func indexByDomain(view *pdns.View) *domainIndex {
	idx := &domainIndex{sets: make(map[dnsname.Name][]pdns.RecordSet)}
	for _, rs := range view.Sets {
		if rs.RRType != dnswire.TypeNS {
			continue
		}
		if _, seen := idx.sets[rs.RRName]; !seen {
			idx.names = append(idx.names, rs.RRName)
		}
		idx.sets[rs.RRName] = append(idx.sets[rs.RRName], rs)
	}
	sort.Slice(idx.names, func(i, j int) bool { return dnsname.Compare(idx.names[i], idx.names[j]) < 0 })
	return idx
}

// PDNSYearly computes YearStats for every study year from a (stability
// filtered) PDNS view.
func PDNSYearly(view *pdns.View, m *Mapper, startYear, endYear int) []YearStats {
	idx := indexByDomain(view)
	out := make([]YearStats, 0, endYear-startYear+1)
	for year := startYear; year <= endYear; year++ {
		first, last := pdns.YearRange(year)
		ys := YearStats{Year: year}
		countries := make(map[string]bool)
		hosts := make(map[string]bool)
		for _, name := range idx.names {
			sets := idx.sets[name]
			mode, ok := NSModeForYear(sets, year)
			if !ok {
				continue
			}
			ys.Domains++
			if c, ok := m.CountryOf(name); ok {
				countries[c.Code] = true
			}
			private := true
			anyHost := false
			for i := range sets {
				rs := &sets[i]
				if !rs.Overlaps(first, last) {
					continue
				}
				hosts[rs.RData] = true
				anyHost = true
				host, err := dnsname.Parse(rs.RData)
				if err != nil || !m.IsPrivateHost(name, host) {
					private = false
				}
			}
			if anyHost && private {
				ys.PrivateAll++
			}
			if mode == 1 {
				ys.SingleNS++
				if anyHost && private {
					ys.SingleNSPrivate++
				}
			}
		}
		ys.Countries = len(countries)
		ys.Nameservers = len(hosts)
		out = append(out, ys)
	}
	return out
}

// NameserversPerYear returns the number of distinct NS rdata strings
// active in each year of [startYear, endYear] — Fig. 3's nameserver
// series over the whole view, with no per-domain mode gating.
func NameserversPerYear(view *pdns.View, startYear, endYear int) []int {
	out := make([]int, 0, endYear-startYear+1)
	for year := startYear; year <= endYear; year++ {
		first, last := pdns.YearRange(year)
		hosts := make(map[string]bool)
		for i := range view.Sets {
			rs := &view.Sets[i]
			if rs.RRType == dnswire.TypeNS && rs.Overlaps(first, last) {
				hosts[rs.RData] = true
			}
		}
		out = append(out, len(hosts))
	}
	return out
}

// DomainsPerCountry returns each country's domain count for one year
// (Fig. 4), keyed by country code.
func DomainsPerCountry(view *pdns.View, m *Mapper, year int) map[string]int {
	idx := indexByDomain(view)
	out := make(map[string]int)
	for _, name := range idx.names {
		if _, ok := NSModeForYear(idx.sets[name], year); !ok {
			continue
		}
		if c, ok := m.CountryOf(name); ok {
			out[c.Code]++
		}
	}
	return out
}

// SingleNSDomains returns the set of d_1NS for a year.
func SingleNSDomains(view *pdns.View, year int) map[dnsname.Name]bool {
	idx := indexByDomain(view)
	out := make(map[dnsname.Name]bool)
	for _, name := range idx.names {
		if mode, ok := NSModeForYear(idx.sets[name], year); ok && mode == 1 {
			out[name] = true
		}
	}
	return out
}

// ChurnStats tracks the paper's Fig. 6 series for one year.
type ChurnStats struct {
	Year int
	// Total is the number of d_1NS that year.
	Total int
	// New is how many were not d_1NS the previous year.
	New int
	// FromBase is how many were already d_1NS in the base year (2011).
	FromBase int
	// BaseGone is how many of the base year's d_1NS are no longer
	// active (any NS count) this year.
	BaseGone int
	// BaseTotal is the base-year d_1NS population size.
	BaseTotal int
}

// NewPct returns the share of this year's d_1NS that are new.
func (c ChurnStats) NewPct() float64 { return stats.Pct(c.New, c.Total) }

// FromBasePct returns the share of the base year's d_1NS still
// single-NS this year.
func (c ChurnStats) FromBasePct() float64 { return stats.Pct(c.FromBase, c.BaseTotal) }

// BaseGonePct returns the share of the base year's d_1NS no longer
// active.
func (c ChurnStats) BaseGonePct() float64 { return stats.Pct(c.BaseGone, c.BaseTotal) }

// SingleNSChurn computes the Fig. 6 overlap/churn series over
// [startYear, endYear], using startYear as the base year.
func SingleNSChurn(view *pdns.View, startYear, endYear int) []ChurnStats {
	idx := indexByDomain(view)
	singlesByYear := make(map[int]map[dnsname.Name]bool)
	activeByYear := make(map[int]map[dnsname.Name]bool)
	for year := startYear; year <= endYear; year++ {
		singles := make(map[dnsname.Name]bool)
		active := make(map[dnsname.Name]bool)
		for _, name := range idx.names {
			mode, ok := NSModeForYear(idx.sets[name], year)
			if !ok {
				continue
			}
			active[name] = true
			if mode == 1 {
				singles[name] = true
			}
		}
		singlesByYear[year] = singles
		activeByYear[year] = active
	}

	base := singlesByYear[startYear]
	var out []ChurnStats
	for year := startYear + 1; year <= endYear; year++ {
		cs := ChurnStats{Year: year, BaseTotal: len(base)}
		singles := singlesByYear[year]
		prev := singlesByYear[year-1]
		cs.Total = len(singles)
		for name := range singles {
			if !prev[name] {
				cs.New++
			}
			if base[name] {
				cs.FromBase++
			}
		}
		for name := range base {
			if !activeByYear[year][name] {
				cs.BaseGone++
			}
		}
		out = append(out, cs)
	}
	return out
}
