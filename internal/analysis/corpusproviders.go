package analysis

// Corpus-backed fast paths for the provider analyses (Tables II/III,
// the gov.cn share, the Fig. § IV-B migration flows) and the § V-A
// hijack forensics. Each mirrors its view-based reference
// implementation record for record; TestCorpusDifferential pins the
// equivalence. Provider identification (catalog.Identify, GroupLabel)
// and the nameserver registrable domain are year-invariant per rdata,
// so they are memoized once per (corpus, catalog) pair.

import (
	"sort"

	"govdns/internal/dnsname"
	"govdns/internal/providers"
	"govdns/internal/stats"
)

// rdataLabels memoizes the catalog verdicts for every interned rdata:
// each distinct NS hostname is classified exactly once per corpus.
type rdataLabels struct {
	// identified/display mirror catalog.Identify.
	identified []bool
	display    []string
	// group/groupKnown mirror catalog.GroupLabel.
	group      []string
	groupKnown []bool
	// nsDomain is NSDomain(host), the hijack detector's grouping key.
	nsDomain []dnsname.Name
}

// labelsFor returns the memoized per-rdata labels for one catalog,
// computing them (sharded) on first use. The study uses a single
// catalog; passing a different one recomputes and replaces the memo.
func (c *Corpus) labelsFor(catalog *providers.Catalog) *rdataLabels {
	c.labelMu.Lock()
	defer c.labelMu.Unlock()
	if c.labels != nil && c.labelCat == catalog {
		return c.labels
	}
	lb := &rdataLabels{
		identified: make([]bool, len(c.rdatas)),
		display:    make([]string, len(c.rdatas)),
		group:      make([]string, len(c.rdatas)),
		groupKnown: make([]bool, len(c.rdatas)),
		nsDomain:   make([]dnsname.Name, len(c.rdatas)),
	}
	parallelChunks(len(c.rdatas), func(lo, hi int) {
		for id := lo; id < hi; id++ {
			if !c.hostOK[id] {
				continue
			}
			host := c.hosts[id]
			if p, ok := catalog.Identify(host); ok {
				lb.identified[id] = true
				lb.display[id] = p.Display
			}
			lb.group[id], lb.groupKnown[id] = catalog.GroupLabel(host)
			lb.nsDomain[id] = NSDomain(host)
		}
	})
	c.labelCat, c.labels = catalog, lb
	return lb
}

// mustMatch guards the corpus provider paths against a mapper mismatch:
// the corpus memoized country and privateness columns under its own
// mapper, so serving a ProviderAnalysis built over a different one
// would silently mix mappings.
func (pa *ProviderAnalysis) mustMatch(c *Corpus) {
	if c.m != pa.mapper {
		panic("analysis: corpus was compiled with a different Mapper than this ProviderAnalysis")
	}
}

// yearUsageCorpus is yearUsage over the corpus: same per-domain label
// sets (records that fail to parse contribute nothing; non-provider
// hosts collapse to nonProviderLabel), same aggregation, no re-parsing
// and no NSDaily recomputation.
func (pa *ProviderAnalysis) yearUsageCorpus(c *Corpus, year int, label func(id int32) string) *providerYear {
	pa.mustMatch(c)
	y := c.yearIndex(year)
	py := &providerYear{
		totalGroups: pa.nGroups,
		domains:     make(map[string]int),
		d1p:         make(map[string]int),
		groups:      make(map[string]map[string]bool),
		countries:   make(map[string]map[string]bool),
	}
	for _, oi := range c.nsOwners {
		i := int(oi)
		if c.modeAt(i, y) == 0 {
			continue
		}
		py.totalDomains++
		labels := make(map[string]bool)
		for r := c.nsOff[i]; r < c.nsOff[i+1]; r++ {
			if !c.overlapsYear(r, y) {
				continue
			}
			id := c.nsRData[r]
			if !c.hostOK[id] {
				continue
			}
			if l := label(id); l != "" {
				labels[l] = true
			} else {
				labels[nonProviderLabel] = true
			}
		}
		code, group := "", ""
		if ci := c.country[i]; ci >= 0 {
			code = pa.mapper.countries[ci].Code
			group = pa.grouper[code]
		}
		single := len(labels) == 1
		for l := range labels {
			if l == nonProviderLabel {
				continue
			}
			py.domains[l]++
			if single {
				py.d1p[l]++
			}
			if group != "" {
				if py.groups[l] == nil {
					py.groups[l] = make(map[string]bool)
				}
				py.groups[l][group] = true
			}
			if code != "" {
				if py.countries[l] == nil {
					py.countries[l] = make(map[string]bool)
				}
				py.countries[l][code] = true
			}
		}
	}
	return py
}

// MajorProvidersCorpus is MajorProviders (Table II) over the corpus.
func (pa *ProviderAnalysis) MajorProvidersCorpus(c *Corpus, year int) []ProviderUsage {
	lb := c.labelsFor(pa.catalog)
	py := pa.yearUsageCorpus(c, year, func(id int32) string { return lb.display[id] })
	return pa.majorRows(py)
}

// TopProvidersCorpus is TopProviders (Table III) over the corpus.
func (pa *ProviderAnalysis) TopProvidersCorpus(c *Corpus, year, n int) []ProviderUsage {
	lb := c.labelsFor(pa.catalog)
	py := pa.yearUsageCorpus(c, year, func(id int32) string { return lb.group[id] })
	return topRows(py, n)
}

// GovProviderShareCorpus is GovProviderShare over the corpus.
func (pa *ProviderAnalysis) GovProviderShareCorpus(c *Corpus, year int, code string) map[string]float64 {
	pa.mustMatch(c)
	lb := c.labelsFor(pa.catalog)
	y := c.yearIndex(year)
	counts := make(map[string]int)
	total := 0
	for _, oi := range c.nsOwners {
		i := int(oi)
		ci := c.country[i]
		if ci < 0 || pa.mapper.countries[ci].Code != code {
			continue
		}
		if c.modeAt(i, y) == 0 {
			continue
		}
		total++
		labels := make(map[string]bool)
		for r := c.nsOff[i]; r < c.nsOff[i+1]; r++ {
			if !c.overlapsYear(r, y) {
				continue
			}
			id := c.nsRData[r]
			if c.hostOK[id] && lb.groupKnown[id] {
				labels[lb.group[id]] = true
			}
		}
		for l := range labels {
			counts[l]++
		}
	}
	out := make(map[string]float64, len(counts))
	for l, n := range counts {
		out[l] = stats.Pct(n, total)
	}
	return out
}

// hostingLabelAt mirrors hostingLabel over the corpus: records that
// fail to parse are skipped entirely (they neither identify a provider
// nor disqualify privateness — the flows analysis differs from
// PDNSYearly here, and the corpus path preserves that), found is the
// first identified provider in record order, and mode > 0 stands in
// for "any active NS record".
func (c *Corpus) hostingLabelAt(i, y int, lb *rdataLabels) (string, bool) {
	if c.modeAt(i, y) == 0 {
		return "", false
	}
	private := true
	found := ""
	for r := c.nsOff[i]; r < c.nsOff[i+1]; r++ {
		if !c.overlapsYear(r, y) {
			continue
		}
		id := c.nsRData[r]
		if !c.hostOK[id] {
			continue
		}
		if found == "" && lb.identified[id] {
			found = lb.display[id]
		}
		if !c.nsPrivate[r] {
			private = false
		}
	}
	switch {
	case found != "":
		return found, true
	case private:
		return LabelPrivate, true
	default:
		return LabelOther, true
	}
}

// ProviderFlows is the package-level ProviderFlows over the corpus:
// the § IV-B hosting-migration matrix between two study years.
func (c *Corpus) ProviderFlows(catalog *providers.Catalog, yearA, yearB int) []ProviderFlow {
	lb := c.labelsFor(catalog)
	ya, yb := c.yearIndex(yearA), c.yearIndex(yearB)
	counts := make(map[[2]string]int)
	for _, oi := range c.nsOwners {
		i := int(oi)
		from, okA := c.hostingLabelAt(i, ya, lb)
		to, okB := c.hostingLabelAt(i, yb, lb)
		if !okA || !okB || from == to {
			continue
		}
		counts[[2]string{from, to}]++
	}
	out := make([]ProviderFlow, 0, len(counts))
	for k, n := range counts {
		out = append(out, ProviderFlow{From: k[0], To: k[1], Domains: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Domains != out[j].Domains {
			return out[i].Domains > out[j].Domains
		}
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// SuspiciousTransitionsCorpus is SuspiciousTransitions over a corpus
// compiled from the RAW view (the stability filter would erase the
// evidence). The nameserver-domain spread is counted per owner group —
// the corpus stores each owner's records contiguously in ascending
// owner order, so one last-owner slot per nameserver domain counts
// distinct owners without a set. Record windows in the corpus are
// stored unclipped, so the merged [From, To] windows are exact.
func SuspiciousTransitionsCorpus(c *Corpus, catalog *providers.Catalog, cfg HijackForensicsConfig) []SuspiciousTransition {
	if c.m == nil {
		panic("analysis: hijack forensics needs a corpus compiled with a Mapper")
	}
	cfg = cfg.withDefaults()
	lb := c.labelsFor(catalog)

	// Intern the nameserver registrable domains.
	ndID := make(map[dnsname.Name]int32)
	var ndNames []dnsname.Name
	ndOf := make([]int32, len(c.rdatas))
	for id := range c.rdatas {
		if !c.hostOK[id] {
			ndOf[id] = -1
			continue
		}
		nd := lb.nsDomain[id]
		x, ok := ndID[nd]
		if !ok {
			x = int32(len(ndNames))
			ndID[nd] = x
			ndNames = append(ndNames, nd)
		}
		ndOf[id] = x
	}

	// Pass 1: spread of each nameserver domain across owner domains.
	spread := make([]int32, len(ndNames))
	lastOwner := make([]int32, len(ndNames))
	for i := range lastOwner {
		lastOwner[i] = -1
	}
	for _, oi := range c.nsOwners {
		i := int(oi)
		for r := c.nsOff[i]; r < c.nsOff[i+1]; r++ {
			nd := ndOf[c.nsRData[r]]
			if nd >= 0 && lastOwner[nd] != oi {
				lastOwner[nd] = oi
				spread[nd]++
			}
		}
	}

	// Pass 2: transient, out-of-pattern, unpopular NS records.
	type wkey struct{ owner, nd int32 }
	windows := make(map[wkey]*SuspiciousTransition)
	for _, oi := range c.nsOwners {
		i := int(oi)
		for r := c.nsOff[i]; r < c.nsOff[i+1]; r++ {
			if int(c.nsLast[r]-c.nsFirst[r])+1 > cfg.MaxDurationDays {
				continue
			}
			id := c.nsRData[r]
			if !c.hostOK[id] {
				continue
			}
			if c.nsPrivate[r] {
				continue // internal infrastructure move
			}
			if lb.identified[id] {
				continue // managed-DNS trial
			}
			nd := ndOf[id]
			if int(spread[nd]) > cfg.MaxNSDomainSpread {
				continue // real hosters serve many domains
			}
			k := wkey{owner: oi, nd: nd}
			if existing, ok := windows[k]; ok {
				if c.nsFirst[r] < existing.From {
					existing.From = c.nsFirst[r]
				}
				if c.nsLast[r] > existing.To {
					existing.To = c.nsLast[r]
				}
				existing.DurationDays = int(existing.To-existing.From) + 1
				continue
			}
			windows[k] = &SuspiciousTransition{
				Domain:       c.names[i],
				NSDomain:     ndNames[nd],
				From:         c.nsFirst[r],
				To:           c.nsLast[r],
				DurationDays: int(c.nsLast[r]-c.nsFirst[r]) + 1,
			}
		}
	}

	out := make([]SuspiciousTransition, 0, len(windows))
	for _, t := range windows {
		out = append(out, *t)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Domain != out[j].Domain {
			return dnsname.Compare(out[i].Domain, out[j].Domain) < 0
		}
		return out[i].NSDomain < out[j].NSDomain
	})
	return out
}
