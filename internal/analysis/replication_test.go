package analysis

import (
	"testing"
	"time"

	"govdns/internal/dnsname"
	"govdns/internal/dnswire"
	"govdns/internal/pdns"
)

func testMapper() *Mapper {
	return NewMapper([]Country{
		{Code: "br", Name: "Brazil", SubRegion: "South America", Suffix: "gov.br."},
		{Code: "cn", Name: "China", SubRegion: "Eastern Asia", Suffix: "gov.cn."},
		{Code: "mx", Name: "Mexico", SubRegion: "Central America", Suffix: "gob.mx."},
	})
}

func day(y int, m time.Month, d int) pdns.Day { return pdns.Date(y, m, d) }

func TestMapperCountryOf(t *testing.T) {
	m := testMapper()
	c, ok := m.CountryOf("x.gov.br.")
	if !ok || c.Code != "br" {
		t.Errorf("CountryOf(x.gov.br.) = %+v, %v", c, ok)
	}
	if c, ok := m.CountryOf("gov.br."); !ok || c.Code != "br" {
		t.Errorf("CountryOf(gov.br.) = %+v, %v", c, ok)
	}
	if _, ok := m.CountryOf("example.com."); ok {
		t.Error("CountryOf matched a non-government domain")
	}
}

func TestMapperIsPrivateHost(t *testing.T) {
	m := testMapper()
	if !m.IsPrivateHost("x.gov.br.", "ns1.x.gov.br.") {
		t.Error("in-domain host not private")
	}
	if !m.IsPrivateHost("x.gov.br.", "ns1.gov.br.") {
		t.Error("central host not private")
	}
	if m.IsPrivateHost("x.gov.br.", "ns1.provider.com.") {
		t.Error("provider host private")
	}
}

func TestMapperGroups(t *testing.T) {
	m := testMapper()
	groups, n := m.Groups([]string{"cn"})
	if groups["cn"] != "China" {
		t.Errorf("cn group = %q", groups["cn"])
	}
	if groups["br"] != "South America" {
		t.Errorf("br group = %q", groups["br"])
	}
	if n != 3 { // South America, Central America, China
		t.Errorf("group count = %d, want 3", n)
	}
}

func TestNSDomain(t *testing.T) {
	cases := []struct{ host, want string }{
		{"ns1.example.com.", "example.com."},
		{"a.b.example.com.", "example.com."},
		{"ns1.hoster.com.br.", "hoster.com.br."},
		{"ns-1.awsdns-00.co.uk.", "awsdns-00.co.uk."},
		{"short.com.", "short.com."},
	}
	for _, tc := range cases {
		if got := NSDomain(dnsname.MustParse(tc.host)); got.String() != tc.want {
			t.Errorf("NSDomain(%s) = %s, want %s", tc.host, got, tc.want)
		}
	}
}

func TestNSDailyAndMode(t *testing.T) {
	// A domain with two NS records most of the year, one of which
	// disappears in November.
	sets := []pdns.RecordSet{
		{RRName: "x.gov.br.", RRType: dnswire.TypeNS, RData: "ns1.x.gov.br.",
			FirstSeen: day(2020, time.January, 1), LastSeen: day(2020, time.December, 31)},
		{RRName: "x.gov.br.", RRType: dnswire.TypeNS, RData: "ns2.x.gov.br.",
			FirstSeen: day(2020, time.January, 1), LastSeen: day(2020, time.October, 31)},
	}
	daily := NSDaily(sets, 2020)
	if len(daily) != 366 {
		t.Fatalf("active days = %d, want 366", len(daily))
	}
	mode, ok := NSModeForYear(sets, 2020)
	if !ok || mode != 2 {
		t.Errorf("mode = %d, %v; want 2", mode, ok)
	}
	// Records outside the year are ignored.
	if _, ok := NSModeForYear(sets, 2010); ok {
		t.Error("mode reported for an inactive year")
	}
	// A record active only 10 days with a second active 300 days: the
	// mode is 1.
	sets2 := []pdns.RecordSet{
		{RRName: "y.gov.br.", RRType: dnswire.TypeNS, RData: "a.",
			FirstSeen: day(2019, time.January, 1), LastSeen: day(2019, time.December, 31)},
		{RRName: "y.gov.br.", RRType: dnswire.TypeNS, RData: "b.",
			FirstSeen: day(2019, time.June, 1), LastSeen: day(2019, time.June, 10)},
	}
	if mode, _ := NSModeForYear(sets2, 2019); mode != 1 {
		t.Errorf("mode = %d, want 1", mode)
	}
}

func buildTestPDNS() *pdns.Store {
	s := pdns.NewStore()
	// Stable 2-NS domain alive all decade.
	s.ObserveRange("a.gov.br.", dnswire.TypeNS, "ns1.a.gov.br.", day(2011, 1, 1), day(2020, 12, 31))
	s.ObserveRange("a.gov.br.", dnswire.TypeNS, "ns2.a.gov.br.", day(2011, 1, 1), day(2020, 12, 31))
	// Single-NS private domain, 2011-2015 only.
	s.ObserveRange("b.gov.br.", dnswire.TypeNS, "ns1.b.gov.br.", day(2011, 1, 1), day(2015, 6, 30))
	// Single-NS provider domain appearing in 2016.
	s.ObserveRange("c.gov.cn.", dnswire.TypeNS, "dns9.hichina.com.", day(2016, 3, 1), day(2020, 12, 31))
	// Domain that migrated from a local hoster to Cloudflare in 2018.
	s.ObserveRange("d.gob.mx.", dnswire.TypeNS, "ns1.hostmx1.com.", day(2012, 1, 1), day(2017, 12, 31))
	s.ObserveRange("d.gob.mx.", dnswire.TypeNS, "ns2.hostmx1.com.", day(2012, 1, 1), day(2017, 12, 31))
	s.ObserveRange("d.gob.mx.", dnswire.TypeNS, "art.ns.cloudflare.com.", day(2018, 1, 1), day(2020, 12, 31))
	s.ObserveRange("d.gob.mx.", dnswire.TypeNS, "amy.ns.cloudflare.com.", day(2018, 1, 1), day(2020, 12, 31))
	return s
}

func TestPDNSYearly(t *testing.T) {
	view := pdns.NewView(buildTestPDNS().Snapshot())
	m := testMapper()
	years := PDNSYearly(view, m, 2011, 2020)
	if len(years) != 10 {
		t.Fatalf("years = %d", len(years))
	}
	y2011 := years[0]
	if y2011.Domains != 2 || y2011.Countries != 1 {
		t.Errorf("2011 = %+v", y2011)
	}
	if y2011.SingleNS != 1 || y2011.SingleNSPrivate != 1 {
		t.Errorf("2011 singles = %+v", y2011)
	}
	y2020 := years[9]
	if y2020.Domains != 3 || y2020.Countries != 3 {
		t.Errorf("2020 = %+v", y2020)
	}
	// c.gov.cn is single-NS but hosted at hichina (not private).
	if y2020.SingleNS != 1 || y2020.SingleNSPrivate != 0 {
		t.Errorf("2020 singles = %+v", y2020)
	}
	// ns1/ns2.a.gov.br, dns9.hichina.com, art/amy.ns.cloudflare.com.
	if y2020.Nameservers != 5 {
		t.Errorf("2020 nameservers = %d, want 5", y2020.Nameservers)
	}
	if y2020.PrivateAll != 1 {
		t.Errorf("2020 private = %d, want 1 (a.gov.br)", y2020.PrivateAll)
	}
}

func TestDomainsPerCountry(t *testing.T) {
	view := pdns.NewView(buildTestPDNS().Snapshot())
	counts := DomainsPerCountry(view, testMapper(), 2020)
	if counts["br"] != 1 || counts["cn"] != 1 || counts["mx"] != 1 {
		t.Errorf("counts = %v", counts)
	}
	counts2013 := DomainsPerCountry(view, testMapper(), 2013)
	if counts2013["br"] != 2 || counts2013["cn"] != 0 {
		t.Errorf("2013 counts = %v", counts2013)
	}
}

func TestSingleNSChurn(t *testing.T) {
	s := pdns.NewStore()
	// Base-year single that survives as a single through 2013.
	s.ObserveRange("keep.gov.br.", dnswire.TypeNS, "ns1.keep.gov.br.", day(2011, 1, 1), day(2013, 12, 31))
	// Base-year single that dies after 2011.
	s.ObserveRange("gone.gov.br.", dnswire.TypeNS, "ns1.gone.gov.br.", day(2011, 1, 1), day(2011, 12, 31))
	// New single appearing in 2012.
	s.ObserveRange("new.gov.br.", dnswire.TypeNS, "ns1.new.gov.br.", day(2012, 2, 1), day(2013, 12, 31))

	churn := SingleNSChurn(pdns.NewView(s.Snapshot()), 2011, 2013)
	if len(churn) != 2 {
		t.Fatalf("churn entries = %d", len(churn))
	}
	c2012 := churn[0]
	if c2012.BaseTotal != 2 {
		t.Errorf("BaseTotal = %d", c2012.BaseTotal)
	}
	if c2012.Total != 2 || c2012.New != 1 || c2012.FromBase != 1 {
		t.Errorf("2012 churn = %+v", c2012)
	}
	if c2012.BaseGone != 1 {
		t.Errorf("2012 BaseGone = %d, want 1", c2012.BaseGone)
	}
	if c2012.NewPct() != 50 || c2012.FromBasePct() != 50 || c2012.BaseGonePct() != 50 {
		t.Errorf("2012 percentages: %v %v %v", c2012.NewPct(), c2012.FromBasePct(), c2012.BaseGonePct())
	}
}

func TestSingleNSDomains(t *testing.T) {
	view := pdns.NewView(buildTestPDNS().Snapshot())
	singles := SingleNSDomains(view, 2012)
	if !singles["b.gov.br."] || len(singles) != 1 {
		t.Errorf("2012 singles = %v", singles)
	}
}
