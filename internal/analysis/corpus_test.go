package analysis

import (
	"fmt"
	"reflect"
	"runtime"
	"testing"
	"time"

	"govdns/internal/dnsname"
	"govdns/internal/dnswire"
	"govdns/internal/pdns"
)

// TestCorpusModeHandCrafted pins the difference-array sweep on the
// windows that are easy to get wrong: year-boundary straddles,
// single-day records, mode ties (stats.Mode breaks toward the smaller
// count), and more concurrent records than the sweep's initial
// frequency scratch.
func TestCorpusModeHandCrafted(t *testing.T) {
	s := pdns.NewStore()
	obs := func(name dnsname.Name, host string, from, to pdns.Day) {
		s.ObserveRange(name, dnswire.TypeNS, host, from, to)
	}

	// straddle.gov.br.: one record across the 2014/2015 boundary, one
	// only in 2015.
	obs("straddle.gov.br.", "ns1.gov.br.", pdns.Date(2014, time.November, 1), pdns.Date(2015, time.March, 1))
	obs("straddle.gov.br.", "ns2.gov.br.", pdns.Date(2015, time.January, 10), pdns.Date(2015, time.December, 31))

	// tie.gov.br.: 2016 split exactly between 1-NS and 2-NS days —
	// the mode must break toward 1.
	obs("tie.gov.br.", "ns1.gov.br.", pdns.Date(2016, time.January, 1), pdns.Date(2016, time.January, 20))
	obs("tie.gov.br.", "ns2.gov.br.", pdns.Date(2016, time.January, 11), pdns.Date(2016, time.January, 30))

	// singleday.gov.br.: a one-day record on December 31.
	obs("singleday.gov.br.", "ns1.gov.br.", pdns.Date(2017, time.December, 31), pdns.Date(2017, time.December, 31))

	// wide.gov.br.: 10 concurrent records, past the sweep's initial
	// 8-slot frequency scratch.
	for i := 0; i < 10; i++ {
		obs("wide.gov.br.", fmt.Sprintf("ns%d.wide.gov.br.", i), pdns.Date(2018, time.March, 1), pdns.Date(2018, time.June, 1))
	}

	// outside.gov.br.: active only before the study span.
	obs("outside.gov.br.", "ns1.gov.br.", pdns.Date(2009, time.May, 1), pdns.Date(2010, time.May, 1))

	view := pdns.NewView(s.Snapshot())
	c := CompileCorpus(view, testMapper(), 2011, 2020)
	idx := indexByDomain(view)
	for _, name := range idx.names {
		for year := 2011; year <= 2020; year++ {
			want, ok := NSModeForYear(idx.sets[name], year)
			if !ok {
				want = 0
			}
			got := int(c.modeAt(int(c.nameID[name]), year-2011))
			if got != want {
				t.Errorf("mode(%s, %d) = %d, want %d", name, year, got, want)
			}
		}
	}
	if got := int(c.modeAt(int(c.nameID["tie.gov.br."]), 2016-2011)); got != 1 {
		t.Errorf("tie mode = %d, want 1 (smaller value wins ties)", got)
	}
	if got := int(c.modeAt(int(c.nameID["wide.gov.br."]), 2018-2011)); got != 10 {
		t.Errorf("wide mode = %d, want 10", got)
	}
}

// TestCorpusActiveNamesPerYear checks the pdnsq -counts series against
// the view's Between/Names reference, across all record types.
func TestCorpusActiveNamesPerYear(t *testing.T) {
	store := genStore(99)
	view := pdns.NewView(store.Snapshot())
	c := CompileCorpus(view, nil, 2011, 2020)
	got := c.ActiveNamesPerYear()
	for year := 2011; year <= 2020; year++ {
		from, to := pdns.YearRange(year)
		want := len(view.Between(from, to).Names())
		if got[year-2011] != want {
			t.Errorf("ActiveNamesPerYear[%d] = %d, want %d", year, got[year-2011], want)
		}
	}
}

// TestCorpusDeterministicAcrossGOMAXPROCS pins the index-ordered
// assembly discipline: the same view must compile to identical results
// at any parallelism.
func TestCorpusDeterministicAcrossGOMAXPROCS(t *testing.T) {
	store := genStore(5)
	view := pdns.NewView(store.Snapshot())
	m := testMapper()

	old := runtime.GOMAXPROCS(1)
	c1 := CompileCorpus(view, m, 2011, 2020)
	y1, n1, ch1 := c1.Yearly(), c1.NameserversPerYear(), c1.SingleNSChurn()
	runtime.GOMAXPROCS(4)
	c4 := CompileCorpus(view, m, 2011, 2020)
	y4, n4, ch4 := c4.Yearly(), c4.NameserversPerYear(), c4.SingleNSChurn()
	runtime.GOMAXPROCS(old)

	if !reflect.DeepEqual(y1, y4) {
		t.Errorf("Yearly differs across GOMAXPROCS:\n 1: %+v\n 4: %+v", y1, y4)
	}
	if !reflect.DeepEqual(n1, n4) {
		t.Errorf("NameserversPerYear differs across GOMAXPROCS")
	}
	if !reflect.DeepEqual(ch1, ch4) {
		t.Errorf("SingleNSChurn differs across GOMAXPROCS")
	}
}

// TestCorpusEmptyView checks the degenerate shapes.
func TestCorpusEmptyView(t *testing.T) {
	c := CompileCorpus(pdns.NewView(nil), testMapper(), 2011, 2020)
	if c.NumDomains() != 0 || c.NumNames() != 0 || c.NumRecords() != 0 {
		t.Errorf("empty view compiled to %d/%d/%d", c.NumNames(), c.NumDomains(), c.NumRecords())
	}
	years := c.Yearly()
	if len(years) != 10 {
		t.Fatalf("Yearly len = %d", len(years))
	}
	for _, y := range years {
		if y.Domains != 0 {
			t.Errorf("%d: domains = %d on empty view", y.Year, y.Domains)
		}
	}
	if got := c.ActiveNamesPerYear(); len(got) != 10 {
		t.Errorf("ActiveNamesPerYear len = %d", len(got))
	}
}

// TestCorpusYearIndexPanics: serving a year outside the compiled span
// must fail loudly, not return zeros.
func TestCorpusYearIndexPanics(t *testing.T) {
	c := CompileCorpus(pdns.NewView(nil), testMapper(), 2011, 2020)
	defer func() {
		if recover() == nil {
			t.Error("DomainsPerCountry(2021) did not panic")
		}
	}()
	c.DomainsPerCountry(2021)
}

// TestCorpusNilMapper: a corpus compiled without a mapper still serves
// the type-agnostic queries (the pdnsq -counts path).
func TestCorpusNilMapper(t *testing.T) {
	s := pdns.NewStore()
	s.ObserveRange("x.gov.br.", dnswire.TypeNS, "ns1.gov.br.", pdns.Date(2015, time.March, 1), pdns.Date(2015, time.June, 1))
	c := CompileCorpus(pdns.NewView(s.Snapshot()), nil, 2015, 2015)
	if got := c.ActiveNamesPerYear(); got[0] != 1 {
		t.Errorf("ActiveNamesPerYear = %v, want [1]", got)
	}
	if c.NumDomains() != 1 {
		t.Errorf("NumDomains = %d", c.NumDomains())
	}
}

// TestProviderAnalysisMapperMismatchPanics guards the corpus provider
// paths against mixing mappers.
func TestProviderAnalysisMapperMismatchPanics(t *testing.T) {
	c := CompileCorpus(pdns.NewView(nil), testMapper(), 2011, 2020)
	pa := NewProviderAnalysis(nil, testMapper(), nil) // a different Mapper instance
	defer func() {
		if recover() == nil {
			t.Error("corpus path accepted a mismatched mapper")
		}
	}()
	pa.GovProviderShareCorpus(c, 2020, "br")
}
