package analysis

import (
	"sort"

	"govdns/internal/geoip"
	"govdns/internal/measure"
	"govdns/internal/nettopo"
	"govdns/internal/stats"
)

// ActiveReplication summarizes the scan-based replication measurements
// (§ IV-A, Figs. 8 and 9).
type ActiveReplication struct {
	// Queried, ParentResponded and WithData reproduce the § III-B
	// funnel: probed names, names with any parent-zone response, and
	// names with a non-empty NS answer.
	Queried, ParentResponded, WithData int
	// NSCountCDF is Fig. 9: the CDF of nameserver counts per domain.
	NSCountCDF []stats.CDFPoint
	// AtLeastTwoPct is the share of domains with >= 2 nameservers.
	AtLeastTwoPct float64
	// CountriesNoSingle counts countries none of whose domains are
	// single-NS.
	CountriesNoSingle int
	// CountriesOver10PctSingle lists countries where >= 10% of
	// responsive domains are single-NS.
	CountriesOver10PctSingle []string
	// SingleStalePct is the share of d_1NS with no authoritative
	// response (60.1% in the paper).
	SingleStalePct float64
	// SingleStaleByCountry is Fig. 8: that share per country (only
	// countries with at least one d_1NS).
	SingleStaleByCountry map[string]float64
}

// ReplicationActive computes ActiveReplication from scan results.
func ReplicationActive(results []*measure.DomainResult, m *Mapper) *ActiveReplication {
	ar := &ActiveReplication{SingleStaleByCountry: make(map[string]float64)}
	var nsCounts []int
	singlesByCountry := make(map[string][2]int) // code -> [singles, staleSingles]
	countrySingles := make(map[string]int)
	countryDomains := make(map[string]int)

	singles, staleSingles := 0, 0
	atLeastTwo := 0
	for _, r := range results {
		ar.Queried++
		if !r.ParentResponded {
			continue
		}
		ar.ParentResponded++
		if !r.HasData() {
			continue
		}
		ar.WithData++

		n := r.NSCount()
		nsCounts = append(nsCounts, n)
		code := ""
		if c, ok := m.CountryOf(r.Domain); ok {
			code = c.Code
			countryDomains[code]++
		}
		if n >= 2 {
			atLeastTwo++
			continue
		}
		singles++
		if code != "" {
			countrySingles[code]++
		}
		stale := !r.Responsive()
		if stale {
			staleSingles++
		}
		if code != "" {
			entry := singlesByCountry[code]
			entry[0]++
			if stale {
				entry[1]++
			}
			singlesByCountry[code] = entry
		}
	}

	ar.NSCountCDF = stats.IntCDF(nsCounts)
	ar.AtLeastTwoPct = stats.Pct(atLeastTwo, len(nsCounts))
	ar.SingleStalePct = stats.Pct(staleSingles, singles)

	for code, entry := range singlesByCountry {
		ar.SingleStaleByCountry[code] = stats.Pct(entry[1], entry[0])
	}
	for _, c := range m.Countries() {
		total := countryDomains[c.Code]
		if total == 0 {
			continue
		}
		s := countrySingles[c.Code]
		if s == 0 {
			ar.CountriesNoSingle++
		} else if stats.Rate(s, total) >= 0.10 {
			ar.CountriesOver10PctSingle = append(ar.CountriesOver10PctSingle, c.Code)
		}
	}
	sort.Strings(ar.CountriesOver10PctSingle)
	return ar
}

// DiversityRow is one row of Table I.
type DiversityRow struct {
	// Scope is "Total" or a country name.
	Scope string
	// Domains is the number of responsive multi-NS domains considered.
	Domains int
	// MultiIPPct, Multi24Pct, MultiASNPct are the shares of those
	// domains whose nameservers span more than one IPv4 address, /24
	// prefix, and ASN.
	MultiIPPct, Multi24Pct, MultiASNPct float64
}

// diversityCounts tallies one scope.
type diversityCounts struct {
	domains, multiIP, multi24, multiASN int
}

func (d *diversityCounts) row(scope string) DiversityRow {
	return DiversityRow{
		Scope:       scope,
		Domains:     d.domains,
		MultiIPPct:  stats.Pct(d.multiIP, d.domains),
		Multi24Pct:  stats.Pct(d.multi24, d.domains),
		MultiASNPct: stats.Pct(d.multiASN, d.domains),
	}
}

// measureDiversity classifies one result's address set.
func measureDiversity(r *measure.DomainResult, geo *geoip.DB) (multiIP, multi24, multiASN, ok bool) {
	addrs := r.AllAddrs()
	if len(addrs) == 0 {
		return false, false, false, false
	}
	prefixes := make(map[uint32]bool)
	asns := make(map[uint32]bool)
	for _, addr := range addrs {
		prefixes[nettopo.Prefix24(addr)] = true
		if asn, found := geo.ASN(addr); found {
			asns[asn] = true
		}
	}
	return len(addrs) > 1, len(prefixes) > 1, len(asns) > 1, true
}

// Diversity computes Table I: the Total row plus one row per requested
// country code (the paper's top 10), considering responsive multi-NS
// domains.
func Diversity(results []*measure.DomainResult, geo *geoip.DB, m *Mapper, topCodes []string) []DiversityRow {
	total := &diversityCounts{}
	perCountry := make(map[string]*diversityCounts, len(topCodes))
	wanted := make(map[string]bool, len(topCodes))
	for _, code := range topCodes {
		perCountry[code] = &diversityCounts{}
		wanted[code] = true
	}

	for _, r := range results {
		if !r.HasData() || !r.Responsive() || r.NSCount() < 2 {
			continue
		}
		multiIP, multi24, multiASN, ok := measureDiversity(r, geo)
		if !ok {
			continue
		}
		tallies := []*diversityCounts{total}
		if c, found := m.CountryOf(r.Domain); found && wanted[c.Code] {
			tallies = append(tallies, perCountry[c.Code])
		}
		for _, t := range tallies {
			t.domains++
			if multiIP {
				t.multiIP++
			}
			if multi24 {
				t.multi24++
			}
			if multiASN {
				t.multiASN++
			}
		}
	}

	rows := []DiversityRow{total.row("Total")}
	for _, code := range topCodes {
		name := code
		for _, c := range m.Countries() {
			if c.Code == code {
				name = c.Name
				break
			}
		}
		rows = append(rows, perCountry[code].row(name))
	}
	return rows
}

// DiversityByLevel returns the share of responsive multi-NS domains with
// nameservers in multiple /24 prefixes, by DNS hierarchy level — the
// paper's 87.1%-at-level-2 vs <80%-deeper comparison.
func DiversityByLevel(results []*measure.DomainResult, geo *geoip.DB) map[int]DiversityRow {
	byLevel := make(map[int]*diversityCounts)
	for _, r := range results {
		if !r.HasData() || !r.Responsive() || r.NSCount() < 2 {
			continue
		}
		multiIP, multi24, multiASN, ok := measureDiversity(r, geo)
		if !ok {
			continue
		}
		level := r.Domain.Level()
		t, exists := byLevel[level]
		if !exists {
			t = &diversityCounts{}
			byLevel[level] = t
		}
		t.domains++
		if multiIP {
			t.multiIP++
		}
		if multi24 {
			t.multi24++
		}
		if multiASN {
			t.multiASN++
		}
	}
	out := make(map[int]DiversityRow, len(byLevel))
	for level, t := range byLevel {
		out[level] = t.row("")
	}
	return out
}

// LevelDistribution returns the share of scanned domains at each DNS
// hierarchy level (§ III-B: <1% level 2, 85.4% level 3, 10.9% level 4).
func LevelDistribution(results []*measure.DomainResult) map[int]float64 {
	counts := make(map[int]int)
	total := 0
	for _, r := range results {
		if !r.HasData() {
			continue
		}
		counts[r.Domain.Level()]++
		total++
	}
	out := make(map[int]float64, len(counts))
	for level, n := range counts {
		out[level] = stats.Pct(n, total)
	}
	return out
}
