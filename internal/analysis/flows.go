package analysis

import (
	"sort"

	"govdns/internal/dnsname"
	"govdns/internal/dnswire"
	"govdns/internal/pdns"
	"govdns/internal/providers"
)

// ProviderFlow counts domains that moved between two hosting labels
// between two years — the migration behind the § IV-B centralization
// story (who the cloud providers' customers came from).
type ProviderFlow struct {
	// From and To are hosting labels: a provider display name,
	// "private" (in-government), or "other" (unrecognized third party).
	From, To string
	// Domains is how many domains made this move.
	Domains int
}

// Hosting labels for domains outside the provider catalog.
const (
	LabelPrivate = "private"
	LabelOther   = "other"
)

// hostingLabel classifies a domain's hosting in one year by its active
// NS records: a catalog provider if any host matches one, else private
// if every host is in-government, else other.
func hostingLabel(sets []pdns.RecordSet, domain dnsname.Name, year int, m *Mapper, catalog *providers.Catalog) (string, bool) {
	first, last := pdns.YearRange(year)
	private := true
	found := ""
	any := false
	for i := range sets {
		rs := &sets[i]
		if rs.RRType != dnswire.TypeNS || !rs.Overlaps(first, last) {
			continue
		}
		any = true
		host, err := dnsname.Parse(rs.RData)
		if err != nil {
			continue
		}
		if p, ok := catalog.Identify(host); ok && found == "" {
			found = p.Display
		}
		if !m.IsPrivateHost(domain, host) {
			private = false
		}
	}
	switch {
	case !any:
		return "", false
	case found != "":
		return found, true
	case private:
		return LabelPrivate, true
	default:
		return LabelOther, true
	}
}

// ProviderFlows compares hosting labels between two years and returns
// the migration matrix, largest flows first. Domains present in only one
// of the years are ignored (births and deaths are not migrations).
func ProviderFlows(view *pdns.View, m *Mapper, catalog *providers.Catalog, yearA, yearB int) []ProviderFlow {
	idx := indexByDomain(view)
	counts := make(map[[2]string]int)
	for _, name := range idx.names {
		sets := idx.sets[name]
		from, okA := hostingLabel(sets, name, yearA, m, catalog)
		to, okB := hostingLabel(sets, name, yearB, m, catalog)
		if !okA || !okB || from == to {
			continue
		}
		counts[[2]string{from, to}]++
	}
	out := make([]ProviderFlow, 0, len(counts))
	for k, n := range counts {
		out = append(out, ProviderFlow{From: k[0], To: k[1], Domains: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Domains != out[j].Domains {
			return out[i].Domains > out[j].Domains
		}
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// InflowsTo sums the flows arriving at a label.
func InflowsTo(flows []ProviderFlow, label string) int {
	total := 0
	for _, f := range flows {
		if f.To == label {
			total += f.Domains
		}
	}
	return total
}
