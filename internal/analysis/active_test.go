package analysis

import (
	"context"
	"net/netip"
	"strings"
	"testing"
	"time"

	"govdns/internal/dnsname"
	"govdns/internal/geoip"
	"govdns/internal/measure"
	"govdns/internal/miniworld"
	"govdns/internal/registrar"
	"govdns/internal/resolver"
)

// scanMiniworld runs the scanner over the fixture and returns results
// plus a GeoIP database covering the fixture's address plan.
func scanMiniworld(t *testing.T) ([]*measure.DomainResult, *geoip.DB) {
	t.Helper()
	w := miniworld.Build()
	c := resolver.NewClient(w.Net)
	c.Timeout = 20 * time.Millisecond
	c.Retries = 1
	s := measure.NewScanner(resolver.NewIterator(c, w.Roots))
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	results := s.Scan(ctx, miniworld.Domains())
	return results, fixtureGeoDB(t)
}

// fixtureGeoDB covers the fixture's hand-picked address plan: each /16
// is its own AS.
func fixtureGeoDB(t *testing.T) *geoip.DB {
	t.Helper()
	csv := `4.0.0.0,4.0.255.255,64500,"Gov BR City"
4.1.0.0,4.1.255.255,64501,"Gov BR Lame"
4.2.0.0,4.2.255.255,64502,"Gov BR Dead"
4.3.0.0,4.3.255.255,64503,"Gov BR Single"
4.4.0.0,4.4.255.255,64504,"Gov BR Inc"
5.0.0.0,5.0.255.255,64510,"Provider"
`
	db, err := geoip.ReadCSV(strings.NewReader(csv))
	if err != nil {
		t.Fatalf("fixture GeoIP: %v", err)
	}
	return db
}

func miniMapper() *Mapper {
	return NewMapper([]Country{{Code: "br", Name: "Brazil", SubRegion: "South America", Suffix: "gov.br."}})
}

func TestReplicationActiveOnFixture(t *testing.T) {
	results, _ := scanMiniworld(t)
	ar := ReplicationActive(results, miniMapper())
	if ar.Queried != 7 {
		t.Errorf("Queried = %d", ar.Queried)
	}
	if ar.ParentResponded != 7 {
		t.Errorf("ParentResponded = %d", ar.ParentResponded)
	}
	if ar.WithData != 7 {
		t.Errorf("WithData = %d", ar.WithData)
	}
	// Single-NS domains: single (responds), dead and dangling (both
	// stale) — 2 of 3 have no authoritative response.
	if ar.SingleStalePct < 66 || ar.SingleStalePct > 67 {
		t.Errorf("SingleStalePct = %v, want 2/3", ar.SingleStalePct)
	}
	if len(ar.CountriesOver10PctSingle) != 1 || ar.CountriesOver10PctSingle[0] != "br" {
		t.Errorf("CountriesOver10PctSingle = %v", ar.CountriesOver10PctSingle)
	}
	if len(ar.NSCountCDF) == 0 {
		t.Fatal("empty CDF")
	}
	last := ar.NSCountCDF[len(ar.NSCountCDF)-1]
	if last.Fraction != 1 {
		t.Errorf("CDF does not reach 1: %v", last)
	}
}

func TestDiversityOnFixture(t *testing.T) {
	results, geo := scanMiniworld(t)
	rows := Diversity(results, geo, miniMapper(), []string{"br"})
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	total := rows[0]
	if total.Scope != "Total" || total.Domains == 0 {
		t.Fatalf("total row = %+v", total)
	}
	// Fixture multi-NS responsive domains: city (2 IPs same AS block
	// 4.0), lame (responsive, 2 IPs), hosted (provider, 2 IPs one AS),
	// inconsistent (3 hosts across parent+child). All have >1 IP.
	if total.MultiIPPct != 100 {
		t.Errorf("MultiIPPct = %v", total.MultiIPPct)
	}
	if rows[1].Scope != "Brazil" || rows[1].Domains != total.Domains {
		t.Errorf("country row = %+v", rows[1])
	}
}

func TestLevelDistributionOnFixture(t *testing.T) {
	results, _ := scanMiniworld(t)
	dist := LevelDistribution(results)
	if dist[3] != 100 {
		t.Errorf("level distribution = %v (all fixture domains are level 3)", dist)
	}
}

func TestDelegationsOnFixture(t *testing.T) {
	results, _ := scanMiniworld(t)
	ds := Delegations(results, miniMapper())
	if ds.WithData != 7 {
		t.Fatalf("WithData = %d", ds.WithData)
	}
	// lame = partial; dead + dangling = full.
	if ds.Partial != 1 {
		t.Errorf("Partial = %d, want 1", ds.Partial)
	}
	if ds.Full != 2 {
		t.Errorf("Full = %d, want 2", ds.Full)
	}
	if ds.AnyDefect != 3 {
		t.Errorf("AnyDefect = %d, want 3", ds.AnyDefect)
	}
	br := ds.PerCountry["br"]
	if br.Domains != 7 || br.AnyDefect != 3 {
		t.Errorf("per-country = %+v", br)
	}
}

func TestHijackRisksOnFixture(t *testing.T) {
	results, _ := scanMiniworld(t)
	reg := registrar.New(dnsname.NewSuffixSet("gov.br"))
	reg.MarkRegistered("provider.com.")
	hr := HijackRisks(results, miniMapper(), reg)
	// Only dangling.gov.br points at a registrable domain
	// (gone-provider.com); dead.gov.br's host is in-government.
	if len(hr.AvailableNSDomains) != 1 || hr.AvailableNSDomains[0] != "gone-provider.com." {
		t.Fatalf("AvailableNSDomains = %v", hr.AvailableNSDomains)
	}
	if hr.AffectedDomains != 1 || hr.Countries != 1 {
		t.Errorf("affected = %d, countries = %d", hr.AffectedDomains, hr.Countries)
	}
	if hr.FullyUnresponsiveAffected != 1 {
		t.Errorf("FullyUnresponsiveAffected = %d", hr.FullyUnresponsiveAffected)
	}
	if len(hr.Prices) != 1 || hr.MedianPrice != hr.Prices[0] {
		t.Errorf("prices = %v median %v", hr.Prices, hr.MedianPrice)
	}
}

func TestConsistencyOnFixture(t *testing.T) {
	results, _ := scanMiniworld(t)
	cs := Consistency(results, miniMapper())
	// Responsive domains: city, lame, single, hosted, inconsistent.
	if cs.Responsive != 5 {
		t.Fatalf("Responsive = %d", cs.Responsive)
	}
	if cs.Counts[ClassEqual] != 4 {
		t.Errorf("ClassEqual = %d, want 4", cs.Counts[ClassEqual])
	}
	if cs.Counts[ClassIntersect] != 1 {
		t.Errorf("ClassIntersect = %d, want 1 (inconsistent.gov.br)", cs.Counts[ClassIntersect])
	}
	if cs.EqualPct != 80 {
		t.Errorf("EqualPct = %v", cs.EqualPct)
	}
	if v := cs.DisagreementPerCountry["br"]; v != 20 {
		t.Errorf("DisagreementPerCountry = %v", v)
	}
}

func TestClassifyTable(t *testing.T) {
	mk := func(p, c []dnsname.Name) *measure.DomainResult {
		r := &measure.DomainResult{Domain: "x.gov.br.", ParentResponded: true, ParentNS: p}
		r.Servers = []measure.ServerResponse{{
			Host: p[0], OK: true, Authoritative: true, NS: c,
		}}
		return r
	}
	a, b, c, d := dnsname.Name("a.x.gov.br."), dnsname.Name("b.x.gov.br."), dnsname.Name("c.x.gov.br."), dnsname.Name("d.x.gov.br.")
	cases := []struct {
		p, c []dnsname.Name
		want ConsistencyClass
	}{
		{[]dnsname.Name{a, b}, []dnsname.Name{a, b}, ClassEqual},
		{[]dnsname.Name{a, b, c}, []dnsname.Name{a, b}, ClassParentSuperset},
		{[]dnsname.Name{a}, []dnsname.Name{a, b}, ClassChildSuperset},
		{[]dnsname.Name{a, b}, []dnsname.Name{b, c}, ClassIntersect},
		{[]dnsname.Name{a, b}, []dnsname.Name{c, d}, ClassDisjoint},
	}
	for _, tc := range cases {
		if got := Classify(mk(tc.p, tc.c)); got != tc.want {
			t.Errorf("Classify(P=%v, C=%v) = %v, want %v", tc.p, tc.c, got, tc.want)
		}
	}
}

func TestClassifyDisjointIPOverlap(t *testing.T) {
	// Parent and child NS sets share no hostname, but the hosts resolve
	// to the same address: the rename-only migration case.
	shared := netip.MustParseAddr("203.0.113.9")
	r := &measure.DomainResult{
		Domain:          "x.gov.br.",
		ParentResponded: true,
		ParentNS:        []dnsname.Name{"old.x.gov.br."},
		Addrs: map[dnsname.Name][]netip.Addr{
			"old.x.gov.br.": {shared},
			"new.x.gov.br.": {shared},
		},
	}
	r.Servers = []measure.ServerResponse{{
		Host: "old.x.gov.br.", Addr: shared, OK: true, Authoritative: true,
		NS: []dnsname.Name{"new.x.gov.br."},
	}}
	if got := Classify(r); got != ClassDisjointIPOverlap {
		t.Errorf("Classify = %v, want ClassDisjointIPOverlap", got)
	}
}

func TestDiversityByLevelOnFixture(t *testing.T) {
	results, geo := scanMiniworld(t)
	byLevel := DiversityByLevel(results, geo)
	// All fixture children are level 3.
	if _, ok := byLevel[3]; !ok {
		t.Fatalf("no level-3 entry: %v", byLevel)
	}
	if _, ok := byLevel[2]; ok {
		t.Errorf("unexpected level-2 entry: %v", byLevel)
	}
	row := byLevel[3]
	if row.Domains == 0 || row.MultiIPPct == 0 {
		t.Errorf("level-3 row = %+v", row)
	}
}

func TestAnalysesOnEmptyResults(t *testing.T) {
	m := miniMapper()
	if ar := ReplicationActive(nil, m); ar.Queried != 0 || len(ar.NSCountCDF) != 0 {
		t.Errorf("empty ReplicationActive = %+v", ar)
	}
	if ds := Delegations(nil, m); ds.WithData != 0 {
		t.Errorf("empty Delegations = %+v", ds)
	}
	if cs := Consistency(nil, m); cs.Responsive != 0 {
		t.Errorf("empty Consistency = %+v", cs)
	}
	rows := Diversity(nil, fixtureGeoDB(t), m, []string{"br"})
	if rows[0].Domains != 0 {
		t.Errorf("empty Diversity = %+v", rows[0])
	}
	if dist := LevelDistribution(nil); len(dist) != 0 {
		t.Errorf("empty LevelDistribution = %v", dist)
	}
}
