package analysis

import (
	"sort"

	"govdns/internal/dnsname"
	"govdns/internal/measure"
	"govdns/internal/registrar"
	"govdns/internal/stats"
)

// DelegationStats summarizes § IV-C: defective (lame) delegations.
type DelegationStats struct {
	// WithData is the number of domains with a non-empty parent NS set.
	WithData int
	// AnyDefect counts domains with at least one non-answering
	// nameserver (29.5% in the paper).
	AnyDefect int
	// Partial counts domains where some but not all nameservers answer
	// (25.4%).
	Partial int
	// Full counts domains where no nameserver answers.
	Full int
	// PerCountry maps country code to its per-country tally.
	PerCountry map[string]DelegationCountry
}

// DelegationCountry is one country's defective-delegation tally
// (Figs. 10a/10b).
type DelegationCountry struct {
	Domains, AnyDefect, Partial, Full int
}

// AnyDefectPct returns the country's defective share.
func (d DelegationCountry) AnyDefectPct() float64 { return stats.Pct(d.AnyDefect, d.Domains) }

// AnyDefectPct returns the global defective share.
func (d *DelegationStats) AnyDefectPct() float64 { return stats.Pct(d.AnyDefect, d.WithData) }

// PartialPct returns the global partial share.
func (d *DelegationStats) PartialPct() float64 { return stats.Pct(d.Partial, d.WithData) }

// FullPct returns the global fully-defective share.
func (d *DelegationStats) FullPct() float64 { return stats.Pct(d.Full, d.WithData) }

// Delegations computes DelegationStats from scan results.
func Delegations(results []*measure.DomainResult, m *Mapper) *DelegationStats {
	ds := &DelegationStats{PerCountry: make(map[string]DelegationCountry)}
	for _, r := range results {
		if !r.HasData() {
			continue
		}
		ds.WithData++
		code := ""
		if c, ok := m.CountryOf(r.Domain); ok {
			code = c.Code
		}
		entry := ds.PerCountry[code]
		entry.Domains++

		switch {
		case r.FullyDefective():
			ds.AnyDefect++
			ds.Full++
			entry.AnyDefect++
			entry.Full++
		case r.PartiallyDefective():
			ds.AnyDefect++
			ds.Partial++
			entry.AnyDefect++
			entry.Partial++
		}
		ds.PerCountry[code] = entry
	}
	return ds
}

// HijackRisk summarizes § IV-C's registrable dangling nameserver
// analysis (Figs. 11 and 12).
type HijackRisk struct {
	// AvailableNSDomains are the registrable nameserver domains found
	// in defective delegations, sorted.
	AvailableNSDomains []dnsname.Name
	// AffectedDomains counts government domains whose delegation points
	// into an available nameserver domain.
	AffectedDomains int
	// Countries counts countries with at least one affected domain.
	Countries int
	// FullyUnresponsiveAffected counts affected domains with no
	// authoritative response at all (the stale-record cluster: 625 in
	// the paper).
	FullyUnresponsiveAffected int
	// MultiCountryNSDomains counts available nameserver domains used by
	// domains of more than one country (2 in the paper).
	MultiCountryNSDomains int
	// Prices are the registration quotes for the available domains,
	// sorted ascending (Fig. 12).
	Prices []registrar.Cents
	// MedianPrice is the median quote.
	MedianPrice registrar.Cents
	// PerCountry maps country code to (affected domains, available
	// nameserver domains) for Fig. 11.
	PerCountry map[string]HijackCountry
}

// HijackCountry is one country's Fig. 11 entry.
type HijackCountry struct {
	AffectedDomains    int
	AvailableNSDomains int
}

// HijackRisks finds registrable nameserver domains behind defective
// delegations: for every defective nameserver host outside government
// suffixes, check whether its registrable domain is available.
func HijackRisks(results []*measure.DomainResult, m *Mapper, reg *registrar.Registry) *HijackRisk {
	hr := &HijackRisk{PerCountry: make(map[string]HijackCountry)}
	nsDomainCountries := make(map[dnsname.Name]map[string]bool)
	nsDomainsByCountry := make(map[string]map[dnsname.Name]bool)
	available := make(map[dnsname.Name]bool)

	for _, r := range results {
		if !r.HasDefect() {
			continue
		}
		code := ""
		if c, ok := m.CountryOf(r.Domain); ok {
			code = c.Code
		}
		affected := false
		for _, host := range r.DefectiveServerHosts() {
			if m.IsPrivateHost(r.Domain, host) {
				continue // in-government hosts pose no registration risk
			}
			nsDomain := NSDomain(host)
			known, checked := available[nsDomain]
			if !checked {
				known = reg.Available(nsDomain)
				available[nsDomain] = known
			}
			if !known {
				continue
			}
			affected = true
			if nsDomainCountries[nsDomain] == nil {
				nsDomainCountries[nsDomain] = make(map[string]bool)
			}
			nsDomainCountries[nsDomain][code] = true
			if nsDomainsByCountry[code] == nil {
				nsDomainsByCountry[code] = make(map[dnsname.Name]bool)
			}
			nsDomainsByCountry[code][nsDomain] = true
		}
		if !affected {
			continue
		}
		hr.AffectedDomains++
		entry := hr.PerCountry[code]
		entry.AffectedDomains++
		hr.PerCountry[code] = entry
		if !r.Responsive() {
			hr.FullyUnresponsiveAffected++
		}
	}

	for nsDomain, isAvailable := range available {
		if isAvailable && nsDomainCountries[nsDomain] != nil {
			hr.AvailableNSDomains = append(hr.AvailableNSDomains, nsDomain)
			if len(nsDomainCountries[nsDomain]) > 1 {
				hr.MultiCountryNSDomains++
			}
		}
	}
	sort.Slice(hr.AvailableNSDomains, func(i, j int) bool {
		return dnsname.Compare(hr.AvailableNSDomains[i], hr.AvailableNSDomains[j]) < 0
	})
	for code, domains := range nsDomainsByCountry {
		entry := hr.PerCountry[code]
		entry.AvailableNSDomains = len(domains)
		hr.PerCountry[code] = entry
	}
	hr.Countries = len(nsDomainsByCountry)
	hr.Prices = reg.Quote(hr.AvailableNSDomains)
	hr.MedianPrice = registrar.Median(hr.Prices)
	return hr
}
